#!/usr/bin/env bash
# crash_restart_smoke.sh — the crash-safety CI smoke job.
#
# Proves the persistent result store end to end against a real process and
# a real SIGKILL:
#
#   1. boot refidemd with -store, populate it, wait for the write-behind
#      records to land, then SIGKILL the process (no drain, no flush);
#   2. restart on the same directory and require byte-identical responses
#      served from warm-start hits with zero pipeline recomputes;
#   3. corrupt one record on disk, restart again, and require the record
#      to be quarantined (reported, never served) while the response stays
#      byte-identical via recompute.
#
# Usage: scripts/crash_restart_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go build -o /tmp/refidemd ./cmd/refidemd

out="$(mktemp -d)"
store="$out/store"
pid=""
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$out"' EXIT

# boot starts the daemon on an ephemeral port against $store and sets
# $url/$pid.
boot() {
  /tmp/refidemd -addr 127.0.0.1:0 -store "$store" >"$out/stdout" 2>"$out/stderr" &
  pid=$!
  url=""
  for _ in $(seq 1 100); do
    url="$(sed -n 's/^listening on \(http:\/\/[^ ]*\)$/\1/p' "$out/stdout" | head -n1)"
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "refidemd died:" >&2; cat "$out/stderr" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$url" ] || { echo "refidemd never announced its address" >&2; cat "$out/stderr" >&2; exit 1; }
}

req() { # req <path> <body> <outfile>
  curl -sfS -X POST -H 'Content-Type: application/json' -d "$2" "$url$1" >"$3"
}

# ---- 1. populate and SIGKILL -------------------------------------------
boot
grep -q "store $store" "$out/stderr" || { echo "recovery scan not announced" >&2; exit 1; }
echo "crash-smoke: populating daemon at $url (store $store)"

req /v1/label    '{"example": "fig2", "deps": true}'                 "$out/cold_label.json"
req /v1/simulate '{"example": "fig2", "procs": 8, "capacity": 64}'   "$out/cold_sim.json"
req /v1/label    '{"example": "fig3"}'                               "$out/cold_fig3.json"

# The store writes are write-behind; wait until all three are durable so
# the SIGKILL below tests crash recovery, not write-loss timing.
for _ in $(seq 1 100); do
  curl -sfS "$url/metricz" >"$out/metricz" || true
  grep -q '^store_writes 3$' "$out/metricz" && break
  sleep 0.1
done
grep -q '^store_writes 3$' "$out/metricz" || { echo "write-behind never persisted 3 records" >&2; cat "$out/metricz" >&2; exit 1; }

kill -9 "$pid"
wait "$pid" 2>/dev/null || true
echo "crash-smoke: daemon SIGKILLed with 3 records persisted"

# ---- 2. warm restart: byte-identical, zero recomputes ------------------
boot
req /v1/label    '{"example": "fig2", "deps": true}'                 "$out/warm_label.json"
req /v1/simulate '{"example": "fig2", "procs": 8, "capacity": 64}'   "$out/warm_sim.json"
req /v1/label    '{"example": "fig3"}'                               "$out/warm_fig3.json"
diff -u "$out/cold_label.json" "$out/warm_label.json"
diff -u "$out/cold_sim.json"   "$out/warm_sim.json"
diff -u "$out/cold_fig3.json"  "$out/warm_fig3.json"
# The live responses also still match the checked-in goldens.
diff -u cmd/refidemd/testdata/label_fig2.golden    "$out/warm_label.json"
diff -u cmd/refidemd/testdata/simulate_fig2.golden "$out/warm_sim.json"

curl -sfS "$url/healthz" >"$out/healthz"
grep -q '"store": "ok"' "$out/healthz"
grep -q '"store_warm_hits": 3' "$out/healthz"
curl -sfS "$url/metricz" >"$out/metricz"
grep -q '^tasks_computed 0$' "$out/metricz" || { echo "warm restart recomputed a persisted fingerprint" >&2; cat "$out/metricz" >&2; exit 1; }
grep -q '^store_warm_hits 3$' "$out/metricz"
echo "crash-smoke: warm restart byte-identical, 3 warm hits, 0 recomputes"

kill -9 "$pid"
wait "$pid" 2>/dev/null || true

# ---- 3. corrupt a record: quarantined, never served --------------------
rec="$(find "$store/records" -name '*.rec' | sort | head -n1)"
[ -n "$rec" ] || { echo "no record files found under $store/records" >&2; exit 1; }
# Flip bytes in the middle of the frame so the CRC must catch it.
printf 'XXXX' | dd of="$rec" bs=1 seek=32 conv=notrunc status=none

boot
grep -q '1 quarantined' "$out/stderr" || { echo "corrupt record not quarantined at recovery" >&2; cat "$out/stderr" >&2; exit 1; }
req /v1/label    '{"example": "fig2", "deps": true}'                 "$out/q_label.json"
req /v1/simulate '{"example": "fig2", "procs": 8, "capacity": 64}'   "$out/q_sim.json"
req /v1/label    '{"example": "fig3"}'                               "$out/q_fig3.json"
diff -u "$out/cold_label.json" "$out/q_label.json"
diff -u "$out/cold_sim.json"   "$out/q_sim.json"
diff -u "$out/cold_fig3.json"  "$out/q_fig3.json"

curl -sfS "$url/healthz" >"$out/healthz"
grep -q '"store_quarantined": 1' "$out/healthz"
curl -sfS "$url/metricz" >"$out/metricz"
grep -q '^store_quarantined 1$' "$out/metricz"
# Exactly the corrupted record recomputes; the other two stay warm hits.
grep -q '^tasks_computed 1$' "$out/metricz" || { echo "expected exactly 1 recompute after quarantine" >&2; cat "$out/metricz" >&2; exit 1; }
ls "$store/quarantine" | grep -q . || { echo "quarantine directory is empty (record silently deleted?)" >&2; exit 1; }
echo "crash-smoke: corrupt record quarantined and recomputed byte-identically"

# Graceful shutdown still works with a store attached.
kill -TERM "$pid"
wait "$pid"
grep -q 'drained, bye' "$out/stderr"
echo "crash-smoke: ok"
