#!/usr/bin/env bash
# doc_lint.sh — the documentation CI gate.
#
# Every package in the module must carry a package-level doc comment in a
# non-test file: a comment block ending on the line directly above the
# package clause. Library packages conventionally start it "Package
# <name> ..." and commands "Command <name> ..." but the gate only
# requires that the comment exists — godoc renders whatever it says.
#
# Usage: scripts/doc_lint.sh   (exit 1 and list offenders on failure)
set -euo pipefail
cd "$(dirname "$0")/.."

bad=0
for pkg in $(go list ./...); do
  dir=$(go list -f '{{.Dir}}' "$pkg")
  ok=0
  for f in "$dir"/*.go; do
    case "$f" in *_test.go) continue ;; esac
    [ -e "$f" ] || continue
    # A documented file has its package clause immediately preceded by a
    # comment line (// or a */ block end).
    if awk '
      /^package / { if (prev ~ /^\/\// || prev ~ /\*\/[[:space:]]*$/) found = 1; exit }
      { prev = $0 }
      END { exit !found }
    ' "$f"; then
      ok=1
      break
    fi
  done
  if [ "$ok" -eq 0 ]; then
    echo "doc_lint: $pkg has no package doc comment in any non-test file" >&2
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  echo "doc_lint: FAIL — add a package comment (// Package <name> ... or // Command <name> ...) above the package clause" >&2
  exit 1
fi
echo "doc_lint: all $(go list ./... | wc -l) packages documented"
