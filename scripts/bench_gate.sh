#!/usr/bin/env bash
# bench_gate.sh — the benchmark-regression CI gate.
#
# Runs the engine, analysis and service benchmarks and compares them
# (via `benchjson -gate`) against the checked-in BENCH_results.json
# baseline: the gate fails if any gated benchmark's ns/op regresses by
# more than 25% or its allocs/op grows beyond its limit. Gated:
# BenchmarkEngine* (the simulator hot path), BenchmarkAnalysisPipeline*
# (the labeling pipeline, exact-only and through the dependence
# ensemble), BenchmarkDepsQuery* (the dependence solver plus the dense
# CSR query sweep — its allocs gate is exact, pinning the
# allocation-free query-path claim for both the exact solver and the
# ensemble chain), BenchmarkSequentialBaseline (the uniprocessor
# reference run) and the service benchmarks — BenchmarkServiceLabel*
# (queue path with coalescing on/off plus the response-cache fast path)
# and BenchmarkServiceSimulateThroughput (label + simulate pipeline) —
# and the persistent-store benchmarks BenchmarkStore* (durable put,
# validated get, recovery scan), plus the router's routing hot path
# BenchmarkRouterRoute (ring walk + bounded-load pick, no network —
# gated exactly at 2 allocs/op so placement never grows a hidden
# allocation). BenchmarkServiceLabelDelta rides the BenchmarkServiceLabel
# prefix: the steady-state delta path (every unchanged region served
# from the fragment cache) is alloc-exact too. Allocation counts are
# machine-independent for the single-threaded benchmarks
# (BenchmarkServiceLabelSerial included), so their allocs gate is exact;
# the *Throughput service benchmarks run concurrent submitters whose
# per-op allocs depend on scheduling, and the BenchmarkStore* rows are
# fs-bound (directory listings and temp-file naming vary per kernel), so
# those get a 25% allocs allowance (benchjson -gate-alloc-slack). The
# ns/op threshold absorbs runner noise.
#
# Usage:
#   scripts/bench_gate.sh                  # gate against BENCH_results.json
#   BENCHTIME=2s scripts/bench_gate.sh     # steadier numbers
#   MAX_REGRESS=0.40 scripts/bench_gate.sh # looser ns/op threshold
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkEngine|BenchmarkAnalysisPipeline|BenchmarkDepsQuery|BenchmarkSequentialBaseline|BenchmarkService|BenchmarkStore|BenchmarkRouterRoute}"
BENCHTIME="${BENCHTIME:-1s}"
BASELINE="${BASELINE:-BENCH_results.json}"
MAX_REGRESS="${MAX_REGRESS:-0.25}"
PREFIXES="${PREFIXES:-BenchmarkEngine,BenchmarkAnalysisPipeline,BenchmarkDepsQuery,BenchmarkSequentialBaseline,BenchmarkServiceLabel,BenchmarkServiceSimulateThroughput,BenchmarkStore,BenchmarkRouterRoute}"
ALLOC_SLACK="${ALLOC_SLACK:-0.25}"

go build -o /tmp/benchjson ./cmd/benchjson
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . ./internal/service ./internal/store ./internal/cluster |
  tee /dev/stderr |
  /tmp/benchjson -gate "$BASELINE" -gate-prefix "$PREFIXES" -gate-max-regress "$MAX_REGRESS" \
    -gate-alloc-slack "$ALLOC_SLACK" \
    -gate-alloc-slack-prefix "BenchmarkServiceLabelThroughput,BenchmarkServiceSimulateThroughput,BenchmarkStore"
