#!/usr/bin/env bash
# bench_gate.sh — the benchmark-regression CI gate.
#
# Runs the engine and analysis benchmarks and compares them (via
# `benchjson -gate`) against the checked-in BENCH_results.json baseline:
# the gate fails if any gated benchmark's ns/op regresses by more than
# 25% or its allocs/op grows at all. Gated: BenchmarkEngine* (the
# simulator hot path), BenchmarkAnalysisPipeline (the labeling pipeline)
# and BenchmarkSequentialBaseline (the uniprocessor reference run).
# Allocation counts are machine-independent, so the allocs half of the
# gate is exact; the ns/op threshold absorbs runner noise.
#
# Usage:
#   scripts/bench_gate.sh                  # gate against BENCH_results.json
#   BENCHTIME=2s scripts/bench_gate.sh     # steadier numbers
#   MAX_REGRESS=0.40 scripts/bench_gate.sh # looser ns/op threshold
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkEngine|BenchmarkAnalysisPipeline|BenchmarkSequentialBaseline}"
BENCHTIME="${BENCHTIME:-1s}"
BASELINE="${BASELINE:-BENCH_results.json}"
MAX_REGRESS="${MAX_REGRESS:-0.25}"
PREFIXES="${PREFIXES:-BenchmarkEngine,BenchmarkAnalysisPipeline,BenchmarkSequentialBaseline}"

go build -o /tmp/benchjson ./cmd/benchjson
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . |
  tee /dev/stderr |
  /tmp/benchjson -gate "$BASELINE" -gate-prefix "$PREFIXES" -gate-max-regress "$MAX_REGRESS"
