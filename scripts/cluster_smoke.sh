#!/usr/bin/env bash
# cluster_smoke.sh — the multi-node CI smoke job.
#
# Boots three refidemd replicas plus a refidem-router on ephemeral
# ports, then exercises the cluster guarantees end to end:
#
#   1. Byte-identity through the router: a fig2 label via the router
#      must equal the single-daemon golden byte for byte — clients
#      cannot tell the router from a replica.
#   2. The delta protocol: label a program, extract its fingerprint
#      from the response, send a region patch as a delta request, and
#      require the delta response byte-identical to a full label of the
#      patched program.
#   3. Failover: SIGKILL the replica that owns the program's key (found
#      via per-replica /metricz counters), re-issue the full label, and
#      require the same bytes from the failover successor.
#   4. The documented unknown-base recovery: after the owner dies, the
#      delta fails over to a successor that never saw the base (404
#      "unknown base"); re-sending the full program and retrying the
#      delta must reproduce the original delta response byte for byte.
#   5. Probe ejection: the router's /healthz must mark the killed
#      replica dead and /metricz must count the ejection and failovers.
#   6. Graceful drain: SIGTERM on the router and surviving replicas
#      must exit cleanly.
#
# Usage: scripts/cluster_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go build -o /tmp/refidemd ./cmd/refidemd
go build -o /tmp/refidem-router ./cmd/refidem-router

out="$(mktemp -d)"
pids=()
trap 'for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$out"' EXIT

# await_url FILE VAR — parse the "listening on http://HOST:PORT" line a
# daemon prints once ready, into the named variable.
await_url() {
  local file="$1" var="$2" found=""
  for _ in $(seq 1 100); do
    found="$(sed -n 's/^listening on \(http:\/\/[^ ]*\)$/\1/p' "$file" | head -n1)"
    [ -n "$found" ] && break
    sleep 0.1
  done
  [ -n "$found" ] || { echo "daemon behind $file never announced its address" >&2; exit 1; }
  printf -v "$var" '%s' "$found"
}

# Three replicas.
urls=()
for i in 0 1 2; do
  /tmp/refidemd -addr 127.0.0.1:0 >"$out/rep$i.out" 2>"$out/rep$i.err" &
  pids+=($!)
done
for i in 0 1 2; do
  await_url "$out/rep$i.out" u
  urls+=("$u")
done
echo "smoke: replicas at ${urls[*]}"

# The router, probing fast enough that ejection shows within the run.
/tmp/refidem-router -addr 127.0.0.1:0 \
  -replicas "$(IFS=,; echo "${urls[*]}")" \
  -probe-interval 100ms -probe-timeout 500ms -fail-after 2 \
  >"$out/router.out" 2>"$out/router.err" &
router_pid=$!
pids+=("$router_pid")
await_url "$out/router.out" router
echo "smoke: router at $router"

post() { curl -sfS -X POST -H 'Content-Type: application/json' -d "$1" "$router$2"; }

# 1. Byte-identity through the router against the single-daemon golden.
post '{"example": "fig2", "deps": true}' /v1/label >"$out/fig2.json"
diff -u cmd/refidemd/testdata/label_fig2.golden "$out/fig2.json"
echo "smoke: fig2 via router matches the single-daemon golden"

# 2. The delta protocol. Region r0 shrinks by one trip; r1 is untouched
# and must be served from the owner's fragment cache.
hdr='program cluster_smoke\nvar a[8]\nvar b[8]\n'
base_req='{"program": "'"$hdr"'region r0 loop k = 0 to 7 {\na[k] = a[k] + 1\n}\nregion r1 loop k = 0 to 7 {\nb[k] = a[k] + b[k]\n}\n"}'
patched_req='{"program": "'"$hdr"'region r0 loop k = 0 to 6 {\na[k] = a[k] + 1\n}\nregion r1 loop k = 0 to 7 {\nb[k] = a[k] + b[k]\n}\n"}'
patch_src='region r0 loop k = 0 to 6 {\na[k] = a[k] + 1\n}\n'

# Snapshot per-replica label counters so the owner is identifiable.
for i in 0 1 2; do
  curl -sfS "${urls[$i]}/metricz" | sed -n 's/^requests_label \([0-9]*\)$/\1/p' >"$out/before$i"
done

post "$base_req" /v1/label >"$out/full.json"
fp="$(sed -n 's/.*"fingerprint": "\([0-9a-f]*\)".*/\1/p' "$out/full.json" | head -n1)"
[ -n "$fp" ] || { echo "no fingerprint in the label response" >&2; exit 1; }

owner=""
for i in 0 1 2; do
  curl -sfS "${urls[$i]}/metricz" | sed -n 's/^requests_label \([0-9]*\)$/\1/p' >"$out/after$i"
  if [ "$(cat "$out/before$i")" != "$(cat "$out/after$i")" ]; then owner="$i"; fi
done
[ -n "$owner" ] || { echo "no replica's label counter moved; cannot find the owner" >&2; exit 1; }
echo "smoke: program owner is replica $owner (${urls[$owner]})"

delta_req='{"base": "'"$fp"'", "patches": [{"region": "r0", "source": "'"$patch_src"'"}]}'
post "$delta_req" /v1/label >"$out/delta.json"
post "$patched_req" /v1/label >"$out/full_patched.json"
diff -u "$out/full_patched.json" "$out/delta.json"
echo "smoke: delta response byte-identical to a full re-label"

# 3. Kill the owner — no drain, no flush — and require the same bytes
# from the failover successor.
owner_pid="${pids[$owner]}"
kill -9 "$owner_pid"
wait "$owner_pid" 2>/dev/null || true

# 4. The delta's base lived only on the dead owner: the failover
# successor must answer 404 "unknown base" (passed through verbatim,
# not retried), and the documented recovery — re-send the full program,
# retry the delta — must restore byte-identical service.
code="$(curl -s -o "$out/delta_err.json" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d "$delta_req" "$router/v1/label")"
[ "$code" = "404" ] || { echo "post-kill delta answered $code, want 404" >&2; cat "$out/delta_err.json" >&2; exit 1; }
grep -q 'unknown base' "$out/delta_err.json"
echo "smoke: post-kill delta rejected with 404 unknown base"

post "$base_req" /v1/label >"$out/full2.json"
diff -u "$out/full.json" "$out/full2.json"
post "$delta_req" /v1/label >"$out/delta2.json"
diff -u "$out/delta.json" "$out/delta2.json"
echo "smoke: failover re-label and recovered delta byte-identical"

# 5. The prober must eject the dead replica and the counters must agree.
owner_name="${urls[$owner]#http://}"
ejected=""
for _ in $(seq 1 100); do
  if curl -sfS "$router/healthz" | grep -A2 "\"name\": \"$owner_name\"" | grep -q '"alive": false'; then
    ejected=yes
    break
  fi
  sleep 0.1
done
[ -n "$ejected" ] || { echo "router never marked $owner_name dead" >&2; curl -s "$router/healthz" >&2; exit 1; }
curl -sfS "$router/metricz" >"$out/metricz"
grep -q '^router_probe_ejections [1-9]' "$out/metricz"
if grep -q '^router_failovers 0$' "$out/metricz"; then
  echo "router_failovers stayed 0 despite a dead owner" >&2
  cat "$out/metricz" >&2
  exit 1
fi
echo "smoke: prober ejected the dead replica; failovers counted"

# 6. Graceful drain everywhere that is still alive.
kill -TERM "$router_pid"
wait "$router_pid"
for i in 0 1 2; do
  [ "$i" = "$owner" ] && continue
  kill -TERM "${pids[$i]}"
  wait "${pids[$i]}"
done
pids=()
echo "smoke: cluster OK"
