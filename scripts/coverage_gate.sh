#!/usr/bin/env bash
# Coverage floor gate: run the full test suite with a coverage profile
# and fail when total statement coverage drops below the checked-in
# floor (scripts/coverage_floor.txt). The profile lands in cover.out so
# CI can upload it as an artifact.
#
# Raising the floor is encouraged when coverage grows; lowering it is a
# reviewed decision, not a drive-by edit.
set -euo pipefail
cd "$(dirname "$0")/.."

profile="${1:-cover.out}"
go test -coverprofile="$profile" ./...

total=$(go tool cover -func="$profile" | tail -1 | awk '{print $NF}' | tr -d '%')
floor=$(tr -d '[:space:]' < scripts/coverage_floor.txt)

echo "total coverage: ${total}%  (floor: ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit (t + 0 >= f + 0) ? 0 : 1 }' || {
  echo "coverage ${total}% fell below the floor ${floor}% (scripts/coverage_floor.txt)" >&2
  exit 1
}
