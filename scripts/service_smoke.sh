#!/usr/bin/env bash
# service_smoke.sh — the refidemd CI smoke job.
#
# Boots the daemon on an ephemeral port, waits for /healthz, POSTs a fig2
# label request and diffs the body against the checked-in golden response
# (cmd/refidemd/testdata/label_fig2.golden — the byte-determinism
# guarantee, enforced against a live server), exercises /metricz and the
# /debug/tracez flight recorder, then sends SIGTERM and verifies the
# graceful drain exits cleanly.
#
# Usage: scripts/service_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go build -o /tmp/refidemd ./cmd/refidemd

out="$(mktemp -d)"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$out"' EXIT

/tmp/refidemd -addr 127.0.0.1:0 >"$out/stdout" 2>"$out/stderr" &
pid=$!

# The daemon announces "listening on http://HOST:PORT" once ready.
url=""
for _ in $(seq 1 100); do
  url="$(sed -n 's/^listening on \(http:\/\/[^ ]*\)$/\1/p' "$out/stdout" | head -n1)"
  [ -n "$url" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "refidemd died:" >&2; cat "$out/stderr" >&2; exit 1; }
  sleep 0.1
done
[ -n "$url" ] || { echo "refidemd never announced its address" >&2; cat "$out/stderr" >&2; exit 1; }
echo "smoke: daemon at $url"

# /healthz is a JSON document: status plus the store state (disabled —
# no -store flag here; crash_restart_smoke.sh covers the store states).
curl -sfS "$url/healthz" >"$out/healthz"
grep -q '"status": "ok"' "$out/healthz"
grep -q '"store": "disabled"' "$out/healthz"

# The label response must be byte-identical to the golden document.
curl -sfS -X POST -H 'Content-Type: application/json' \
  -d '{"example": "fig2", "deps": true}' \
  "$url/v1/label" >"$out/label_fig2.json"
diff -u cmd/refidemd/testdata/label_fig2.golden "$out/label_fig2.json"
echo "smoke: fig2 label response matches golden"

# Repeat request: still byte-identical (served from the response cache).
curl -sfS -X POST -H 'Content-Type: application/json' \
  -d '{"example": "fig2", "deps": true}' \
  "$url/v1/label" | diff -u cmd/refidemd/testdata/label_fig2.golden -

curl -sfS "$url/metricz" >"$out/metricz"
grep -q '^requests_label 2$' "$out/metricz"
grep -q '^response_cache_hits 1$' "$out/metricz"
echo "smoke: metricz counters consistent"

# The flight recorder (default -flight 256) must show the label spans:
# the text table carries op and outcome, the JSON form the same span.
curl -sfS "$url/debug/tracez" >"$out/tracez"
grep -q 'label' "$out/tracez"
grep -q 'ok' "$out/tracez"
curl -sfS "$url/debug/tracez?format=json" >"$out/tracez.json"
grep -q '"op": "label"' "$out/tracez.json"
grep -q '"outcome": "ok"' "$out/tracez.json"
echo "smoke: tracez shows the label spans"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
wait "$pid"
grep -q 'drained, bye' "$out/stderr"
echo "smoke: graceful drain ok"
