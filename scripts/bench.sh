#!/usr/bin/env bash
# bench.sh — run the benchmark suite and write BENCH_results.json
# (benchmark name -> ns/op, allocs/op, reported metrics), embedding the
# seed-commit baseline so every results file carries its reference point.
#
# Usage:
#   scripts/bench.sh            # engine + analysis benchmarks, 2s each
#   BENCH='.' scripts/bench.sh  # the full suite (slow: regenerates figures)
#   BENCHTIME=5s scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkEngineHOSE|BenchmarkEngineCASE|BenchmarkAnalysisPipeline|BenchmarkSequentialBaseline}"
BENCHTIME="${BENCHTIME:-2s}"
OUT="${OUT:-BENCH_results.json}"

go build -o /tmp/benchjson ./cmd/benchjson
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . |
  tee /dev/stderr |
  /tmp/benchjson -o "$OUT" -baseline scripts/seed_baseline.json -go "$(go version | awk '{print $3}')"
echo "wrote $OUT" >&2
