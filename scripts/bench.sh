#!/usr/bin/env bash
# bench.sh — run the benchmark suite and write BENCH_results.json
# (benchmark name -> ns/op, allocs/op, reported metrics), embedding the
# seed-commit baseline so every results file carries its reference point.
#
# Usage:
#   scripts/bench.sh            # engine + analysis benchmarks, 2s each
#   BENCH='.' scripts/bench.sh  # the full suite (slow: regenerates figures)
#   BENCHTIME=5s scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-BenchmarkEngineHOSE|BenchmarkEngineCASE|BenchmarkAnalysisPipeline|BenchmarkDepsQuery|BenchmarkSequentialBaseline|BenchmarkService|BenchmarkStore|BenchmarkRouterRoute}"
BENCHTIME="${BENCHTIME:-2s}"
OUT="${OUT:-BENCH_results.json}"
# LOADBENCH=0 skips the service load-harness rows (cmd/loadbench).
LOADBENCH="${LOADBENCH:-1}"

go build -o /tmp/benchjson ./cmd/benchjson
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" . ./internal/service ./internal/store ./internal/cluster |
  tee /dev/stderr |
  /tmp/benchjson -o "$OUT" -baseline scripts/seed_baseline.json -go "$(go version | awk '{print $3}')"
if [ "$LOADBENCH" != "0" ]; then
  # Merge served-throughput/latency rows (BenchmarkLoad*) into the same
  # document: in-process, over-HTTP, and through the self-hosted cluster
  # (router + replicas in one process) with a Zipf key mix and a delta
  # phase. The cluster rows measure the full stack on this machine —
  # aggregate scale-out across replicas needs as many cores as replicas.
  go run ./cmd/loadbench -n 2000 -merge "$OUT"
  go run ./cmd/loadbench -mode http -n 1000 -merge "$OUT"
  go run ./cmd/loadbench -mode cluster -replicas 4 -zipf 1.3 -n 1000 -n-delta 500 -merge "$OUT"
fi
echo "wrote $OUT" >&2
