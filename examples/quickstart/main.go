// Quickstart: parse a small program, run the idempotency analysis, and
// execute it under all three models of the paper — sequential, HOSE
// (hardware-only speculation) and CASE (compiler-assisted speculation).
package main

import (
	"fmt"
	"log"

	"refidem"
)

const src = `
program quickstart
var a[64]
var b[64]
var sum[40]
region main loop k = 0 to 31 {
  liveout a, sum
  # b is read-only; a[k] is a first write; the sum recurrence carries a
  # cross-segment flow dependence, so the compiler cannot prove the loop
  # parallel -- speculation has to do it.
  a[k] = b[k] * 2 + b[k+1]
  sum[k+6] = sum[k] + a[k]
}
`

func main() {
	p, err := refidem.ParseProgram(src)
	if err != nil {
		log.Fatal(err)
	}

	// The compiler half: label every reference.
	labs := refidem.LabelProgram(p)
	for _, r := range p.Regions {
		lab := labs[r]
		fmt.Printf("region %q:\n", r.Name)
		for _, ref := range r.Refs {
			fmt.Printf("  %-28v -> %-12v (%v)\n", ref, lab.Label(ref), lab.Category(ref))
		}
	}

	// The architecture half: run sequential / HOSE / CASE and compare.
	rs, err := refidem.Run(p, refidem.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsequential: %8d cycles\n", rs.Seq.Cycles)
	fmt.Printf("HOSE:       %8d cycles  (%.2fx)\n", rs.Hose.Cycles, rs.HoseSpeedup())
	fmt.Printf("CASE:       %8d cycles  (%.2fx)\n", rs.Case.Cycles, rs.CaseSpeedup())
	fmt.Printf("\n%.0f%% of dynamic references are idempotent and bypassed speculative storage.\n",
		rs.IdempotentFraction()*100)
	fmt.Printf("speculative storage peak: HOSE %d entries, CASE %d entries\n",
		rs.Hose.Stats.PeakSpecOccupancy, rs.Case.Stats.PeakSpecOccupancy)
}
