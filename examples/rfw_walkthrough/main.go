// Figure 3 walkthrough: the re-occurring-first-write analysis
// (Algorithm 1) on a seven-segment region, showing the per-variable node
// coloring exactly as the paper's figure does: the x writes in segments 6
// and 7 are not RFW because of the exposed read in segment 4; the z write
// in segment 6 is not RFW because of the exposed read in segment 2; every
// y write is RFW.
package main

import (
	"fmt"

	"refidem/internal/cfg"
	"refidem/internal/dataflow"
	"refidem/internal/deps"
	"refidem/internal/ir"
	"refidem/internal/rfw"
	"refidem/internal/workloads"
)

func main() {
	p := workloads.Figure3()
	r := p.Regions[0]
	fmt.Println(p.Format())

	g := cfg.FromRegion(r)
	info := dataflow.AnalyzeRegion(p, r, nil)
	da := deps.Analyze(r, g)
	res := rfw.Analyze(r, g, info, da)

	for _, name := range []string{"x", "y", "z"} {
		v := p.Var(name)
		fmt.Printf("variable %s:\n", name)
		fmt.Println("  segment  attr   color")
		for _, seg := range r.Segments {
			fmt.Printf("  %-8s %-6v %v\n", seg.Name, info.Attrs(seg.ID, v), res.Color(v, seg.ID))
		}
		var rfws []string
		for _, ref := range r.VarRefs(v) {
			if ref.Access == ir.Write && res.IsRFW(ref) {
				rfws = append(rfws, r.Seg(ref.SegID).Name)
			}
		}
		fmt.Printf("  re-occurring first writes in segments: %v\n\n", rfws)
	}
}
