// Overflow study: the paper's central bottleneck, measured. Sweeps the
// speculative storage capacity on the TOMCATV relaxation loop and on the
// MGRID residual sweep, showing the HOSE overflow cliff and CASE's
// insensitivity — idempotent references simply do not occupy speculative
// storage.
package main

import (
	"fmt"
	"log"

	"refidem/internal/engine"
	"refidem/internal/experiments"
	"refidem/internal/workloads"
)

func main() {
	cfg := engine.DefaultConfig()
	capacities := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	for _, name := range [][2]string{
		{"TOMCATV", "MAIN_DO80"},
		{"MGRID", "RESID_DO600"},
	} {
		spec, ok := workloads.FindLoop(name[0], name[1])
		if !ok {
			log.Fatalf("unknown loop %v", name)
		}
		pts, err := experiments.AblationCapacity(spec, capacities, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderCapacity(spec.String(), pts))
		fmt.Println()
	}
	fmt.Println("Reading the tables: HOSE needs capacity beyond the segment working set")
	fmt.Println("to stop overflowing; CASE holds its speedup even at 8 entries because")
	fmt.Println("idempotent references bypass speculative storage entirely.")
}
