// Figure 4 walkthrough: the APPLU BUTS_DO1 loop. The outermost k loop is
// the region, each iteration a segment, and v the only shared variable.
// The analysis labels the S1 gather reads idempotent (they are sources of
// anti dependences only) while the S2 read-modify-write write stays
// speculative — so most of the loop's references stay out of speculative
// storage even though the loop carries real cross-iteration dependences.
package main

import (
	"fmt"
	"log"

	"refidem"
	"refidem/internal/workloads"
)

func main() {
	p := workloads.ButsDO1(8)
	fmt.Println(p.Format())

	labs := refidem.LabelProgram(p)
	r := p.Regions[0]
	lab := labs[r]

	fmt.Println("reference labels (Theorems 1 and 2):")
	for _, ref := range r.Refs {
		fmt.Printf("  %-44v %-12v %v\n", ref, lab.Label(ref), lab.Category(ref))
	}

	frac, byCat := lab.IdempotentFraction()
	fmt.Printf("\nstatic idempotent fraction: %.0f%% (private %.0f%%, shared-dependent %.0f%%)\n",
		frac*100, byCat[refidem.CatPrivate]*100, byCat[refidem.CatSharedDependent]*100)

	rs, err := refidem.Run(p, refidem.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHOSE %.2fx, CASE %.2fx over the uniprocessor — dynamic idempotent fraction %.0f%%\n",
		rs.HoseSpeedup(), rs.CaseSpeedup(), rs.IdempotentFraction()*100)
	fmt.Println("both runs verified against the sequential memory state")
}
