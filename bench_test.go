package refidem

// The benchmark harness regenerates every figure of the paper's
// evaluation section under `go test -bench=.`: one benchmark per figure,
// reporting the headline series via b.ReportMetric so the shape of the
// paper's results (who wins, by what factor, where the crossovers are)
// can be read straight off the benchmark output. cmd/figures prints the
// full tables and bar charts.

import (
	"testing"

	"refidem/internal/cfg"
	"refidem/internal/deps"
	"refidem/internal/engine"
	"refidem/internal/experiments"
	"refidem/internal/idem"
	"refidem/internal/workloads"
)

// BenchmarkFigure5 regenerates Figure 5: the fraction of idempotent
// references in the non-parallelizable sections of the 13-benchmark
// suite. Reported metrics: benchmarks over the 60% line (the paper's
// headline says 7) and the mean idempotent fraction.
func BenchmarkFigure5(b *testing.B) {
	cfg := engine.DefaultConfig()
	var over60, mean float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		over60, mean = 0, 0
		n := 0
		for _, r := range rows {
			if r.FullyParallel {
				continue
			}
			n++
			mean += r.Total
			if r.Total > 0.6 {
				over60++
			}
		}
		mean /= float64(n)
	}
	b.ReportMetric(over60, "benchmarks>60%")
	b.ReportMetric(mean*100, "%idem-mean")
}

// benchFigLoops runs one loop figure and reports per-loop HOSE/CASE
// speedups and the figure's category fraction.
func benchFigLoops(b *testing.B, fig int) {
	cfg := engine.DefaultConfig()
	var results []experiments.LoopResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.FigureLoops(fig, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	var hose, caseSp float64
	for _, lr := range results {
		hose += lr.HoseSpeedup
		caseSp += lr.CaseSpeedup
	}
	n := float64(len(results))
	b.ReportMetric(hose/n, "HOSE-speedup")
	b.ReportMetric(caseSp/n, "CASE-speedup")
}

// BenchmarkFigure6 regenerates Figure 6 (read-only loops: TOMCATV
// MAIN_DO80, WAVE5 PARMVR_DO120/DO140).
func BenchmarkFigure6(b *testing.B) { benchFigLoops(b, 6) }

// BenchmarkFigure7 regenerates Figure 7 (private loops: TURB3D DRCFT_DO2,
// APPLU SETBV_DO2).
func BenchmarkFigure7(b *testing.B) { benchFigLoops(b, 7) }

// BenchmarkFigure8 regenerates Figure 8 (shared-dependent loops).
func BenchmarkFigure8(b *testing.B) { benchFigLoops(b, 8) }

// BenchmarkFigure9 regenerates Figure 9 (fully-independent MGRID regions).
func BenchmarkFigure9(b *testing.B) { benchFigLoops(b, 9) }

// BenchmarkAblationCapacity sweeps speculative storage capacity on the
// TOMCATV loop, reporting HOSE's recovery point and CASE's insensitivity.
func BenchmarkAblationCapacity(b *testing.B) {
	spec, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	cfg := engine.DefaultConfig()
	caps := []int{8, 32, 128, 512, 1024}
	var pts []experiments.CapacityPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.AblationCapacity(spec, caps, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].HoseSpeedup, "HOSE@8")
	b.ReportMetric(pts[len(pts)-1].HoseSpeedup, "HOSE@1024")
	b.ReportMetric(pts[0].CaseSpeedup, "CASE@8")
}

// BenchmarkAblationCategories measures each labeling category's
// contribution to the CASE speedup on the TOMCATV loop.
func BenchmarkAblationCategories(b *testing.B) {
	spec, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	cfg := engine.DefaultConfig()
	var rows []experiments.CategoryAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationCategories(spec, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Speedup, "none")
	b.ReportMetric(rows[1].Speedup, "read-only")
	b.ReportMetric(rows[len(rows)-1].Speedup, "all")
}

// BenchmarkAblationProcessors sweeps the processor count on the MGRID
// residual loop.
func BenchmarkAblationProcessors(b *testing.B) {
	spec, _ := workloads.FindLoop("MGRID", "RESID_DO600")
	cfg := engine.DefaultConfig()
	var pts []experiments.ProcessorPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.AblationProcessors(spec, []int{1, 4, 16}, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[1].CaseSpeedup, "CASE@4p")
	b.ReportMetric(pts[2].CaseSpeedup, "CASE@16p")
	b.ReportMetric(pts[2].HoseSpeedup, "HOSE@16p")
}

// BenchmarkAblationDepDirection compares the precise, execution-order
// directed dependence analysis against a direction-less one (static
// idempotent fractions; Figure 4's BUTS loop is the canonical case).
func BenchmarkAblationDepDirection(b *testing.B) {
	var rows []experiments.DirectionRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationDepDirection(experiments.DefaultDirectionPrograms())
	}
	b.ReportMetric(rows[0].PreciseFrac*100, "%BUTS-precise")
	b.ReportMetric(rows[0].ConservativeFrac*100, "%BUTS-conservative")
}

// BenchmarkAnalysisPipeline measures the compiler half alone: full
// labeling of the BUTS_DO1 loop (dataflow, dependences, RFW, Algorithm 2).
func BenchmarkAnalysisPipeline(b *testing.B) {
	p := workloads.ButsDO1(8)
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LabelProgram(p)
	}
}

// BenchmarkAnalysisPipelineEnsemble is BenchmarkAnalysisPipeline with the
// sound dependence-ensemble members (range pre-filter, must-write-first)
// in the chain: same labels by construction, plus per-reference
// P(idempotent). The gap to the exact-only row is the chain's overhead.
func BenchmarkAnalysisPipelineEnsemble(b *testing.B) {
	p := workloads.ButsDO1(8)
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	ens := deps.Ensemble{Range: true, MustWriteFirst: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idem.LabelProgramEnsemble(p, ens)
	}
}

// BenchmarkDepsQueryExact measures the dependence solver plus a full
// sweep of the dense CSR query surface (SinksAt/SourcesAt over every
// reference) on the BUTS loop. The query sweep allocates nothing — the
// CSR slices are views — so allocs/op is the solver's alone and the
// bench gate pins it exactly.
func BenchmarkDepsQueryExact(b *testing.B) { benchDepsQuery(b, nil) }

// BenchmarkDepsQueryEnsemble is the same sweep through the collaborative
// ensemble with the sound members enabled: identical dependence set and
// query results, with the range member short-circuiting pairs ahead of
// the exact solver.
func BenchmarkDepsQueryEnsemble(b *testing.B) {
	benchDepsQuery(b, &deps.Ensemble{Range: true, MustWriteFirst: true})
}

func benchDepsQuery(b *testing.B, ens *deps.Ensemble) {
	p := workloads.ButsDO1(8)
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	r := p.Regions[0]
	g := cfg.FromRegion(r)
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var a *deps.Analysis
		if ens == nil {
			a = deps.Analyze(r, g)
		} else {
			a = deps.AnalyzeWith(r, g, ens)
		}
		for _, ref := range r.Refs {
			sink += len(a.SinksAt(ref)) + len(a.SourcesAt(ref))
		}
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkEngineHOSE and BenchmarkEngineCASE measure the simulator alone
// on the TOMCATV loop.
func BenchmarkEngineHOSE(b *testing.B) { benchEngine(b, false, false) }

// BenchmarkEngineCASE is the CASE-mode counterpart of BenchmarkEngineHOSE.
func BenchmarkEngineCASE(b *testing.B) { benchEngine(b, true, false) }

// BenchmarkEngineHOSETraced and BenchmarkEngineCASETraced run the same
// loop with the trace JIT on: hot inner loops execute as guarded
// superblocks instead of per-instruction dispatch. In CASE mode the
// idempotency labels additionally elide guards (Definition 4 applied at
// host time), so its margin over the untraced engine is the larger one.
func BenchmarkEngineHOSETraced(b *testing.B) { benchEngine(b, false, true) }

// BenchmarkEngineCASETraced is the CASE-mode traced benchmark.
func BenchmarkEngineCASETraced(b *testing.B) { benchEngine(b, true, true) }

// BenchmarkEngineCASETimelineOff is BenchmarkEngineCASE with the default
// nil speculation timeline made explicit: its alloc gate pins that the
// timeline hooks cost the disabled event loop nothing but pointer checks
// (engine.Config.Timeline documents the contract; this row enforces it).
func BenchmarkEngineCASETimelineOff(b *testing.B) { benchEngine(b, true, false) }

func benchEngine(b *testing.B, useCase, traced bool) {
	spec, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	p := spec.Program()
	labs := LabelProgram(p)
	cfg := engine.DefaultConfig()
	cfg.Traced = traced
	// Warm one run outside the timer so every measured iteration sees the
	// compiled-region (and, when traced, superblock) caches hot.
	run := func() (err error) {
		if useCase {
			_, err = RunCASE(p, labs, cfg)
		} else {
			_, err = RunHOSE(p, labs, cfg)
		}
		return err
	}
	if err := run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialBaseline measures the uniprocessor reference run.
func BenchmarkSequentialBaseline(b *testing.B) {
	spec, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	p := spec.Program()
	cfg := engine.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSequential(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGranularity sweeps iterations-per-segment on the MGRID
// residual loop: larger segments exacerbate HOSE overflow far more than
// they cost CASE (the paper's "larger threads" argument).
func BenchmarkAblationGranularity(b *testing.B) {
	spec, _ := workloads.FindLoop("MGRID", "RESID_DO600")
	np := experiments.NamedProgram{Name: spec.String(), Make: func() *Program { return spec.Program() }}
	cfg := engine.DefaultConfig()
	var pts []experiments.GranularityPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.AblationGranularity(np, []int{1, 3, 6}, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].HoseSpeedup-pts[2].HoseSpeedup, "HOSE-drop")
	b.ReportMetric(pts[0].CaseSpeedup-pts[2].CaseSpeedup, "CASE-drop")
}

// BenchmarkAblationAssociativity compares speculative storage
// organizations at equal capacity on the TOMCATV loop.
func BenchmarkAblationAssociativity(b *testing.B) {
	spec, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	cfg := engine.DefaultConfig()
	var pts []experiments.AssocPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.AblationAssociativity(spec, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].HoseSpeedup, "HOSE-fullassoc")
	b.ReportMetric(pts[len(pts)-1].HoseSpeedup, "HOSE-directmapped")
	b.ReportMetric(pts[0].CaseSpeedup, "CASE")
}
