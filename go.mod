module refidem

go 1.23
