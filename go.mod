module refidem

go 1.24
