// Package refidem is a library reproduction of "Reference Idempotency
// Analysis: A Framework for Optimizing Speculative Execution" (Kim, Ooi,
// Eigenmann, Falsafi, Vijaykumar — PPoPP 2001).
//
// The paper's observation: in speculatively multithreaded execution, many
// memory references can never violate a data dependence on their own.
// Such *idempotent* references need not be tracked in the small hardware
// speculative storage — they can access the conventional memory hierarchy
// directly, even though they may temporarily write incorrect values while
// a segment is misspeculated. Filtering them out relieves speculative
// storage overflow, the key bottleneck of speculative CMPs.
//
// The package bundles:
//
//   - a program representation for regions/segments (internal/ir) and a
//     small Fortran-flavoured front end (internal/lang, ParseProgram);
//   - the prerequisite compiler analyses: per-segment attributes,
//     liveness, privatization, read-only detection (internal/dataflow)
//     and reference-by-reference may-dependences (internal/deps);
//   - the paper's algorithms: re-occurring-first-write analysis
//     (Algorithm 1, internal/rfw) and idempotency labeling
//     (Algorithm 2 / Theorems 1-2, internal/idem);
//   - a deterministic cycle-level simulator of a Multiplex-style chip
//     multiprocessor executing under the sequential, HOSE
//     (hardware-only) and CASE (compiler-assisted) models
//     (internal/engine, internal/specmem, internal/vm);
//   - the paper's benchmarks and worked examples (internal/workloads)
//     and the harness regenerating every evaluation figure
//     (internal/experiments, cmd/figures).
//
// # Quick start
//
//	p, err := refidem.ParseProgram(src)   // or build ir.Program directly
//	labs := refidem.LabelProgram(p)       // Algorithm 2 on every region
//	rs, err := refidem.Run(p, refidem.DefaultConfig())
//	fmt.Println(rs.CaseSpeedup())         // HOSE vs CASE vs sequential
//
// See the examples/ directory for complete programs.
package refidem

import (
	"fmt"

	"refidem/internal/engine"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/lang"
)

// Re-exported core types. The ir package defines the program model, idem
// the labeling results, engine the machine configuration and run results.
type (
	// Program is a sequence of regions over a shared variable table.
	Program = ir.Program
	// Region is a single-entry single-exit code section whose segments
	// execute speculatively in parallel.
	Region = ir.Region
	// Ref is a single textual memory reference.
	Ref = ir.Ref
	// Labeling is the per-region output of the idempotency analysis.
	Labeling = idem.Result
	// Label is Speculative or Idempotent.
	Label = idem.Label
	// Category is the idempotency category of §4.1 of the paper.
	Category = idem.Category
	// Config carries the simulated machine parameters.
	Config = engine.Config
	// Result is the outcome of one simulated run.
	Result = engine.Result
)

// Label values.
const (
	Speculative = idem.Speculative
	Idempotent  = idem.Idempotent
)

// Categories.
const (
	CatSpeculative      = idem.CatSpeculative
	CatFullyIndependent = idem.CatFullyIndependent
	CatReadOnly         = idem.CatReadOnly
	CatPrivate          = idem.CatPrivate
	CatSharedDependent  = idem.CatSharedDependent
)

// ParseProgram compiles mini-language source text (see internal/lang for
// the grammar) into a validated Program.
func ParseProgram(src string) (*Program, error) { return lang.Parse(src) }

// LabelProgram runs the full analysis pipeline — dataflow, dependences,
// re-occurring-first-write analysis, Algorithm 2 — on every region.
func LabelProgram(p *Program) map[*Region]*Labeling { return idem.LabelProgram(p) }

// LabelRegion labels a single region (nil liveOut uses the region's
// annotation, or conservatively keeps every referenced variable live).
func LabelRegion(p *Program, r *Region) *Labeling { return idem.LabelRegion(p, r, nil) }

// DefaultConfig returns the 4-processor machine the paper's evaluation
// uses: kilobyte-scale speculative storage over an L1/L2/DRAM hierarchy.
func DefaultConfig() Config { return engine.DefaultConfig() }

// RunSequential executes the program serially (the correctness oracle and
// the speedup baseline).
func RunSequential(p *Program, cfg Config) (*Result, error) {
	return engine.RunSequential(p, cfg)
}

// RunHOSE executes the program under hardware-only speculative execution
// (Definition 2 of the paper): every reference is tracked in speculative
// storage.
func RunHOSE(p *Program, labs map[*Region]*Labeling, cfg Config) (*Result, error) {
	return engine.RunSpeculative(p, labs, cfg, engine.HOSE)
}

// RunCASE executes the program under compiler-assisted speculative
// execution (Definition 4): references labeled idempotent bypass the
// speculative storage.
func RunCASE(p *Program, labs map[*Region]*Labeling, cfg Config) (*Result, error) {
	return engine.RunSpeculative(p, labs, cfg, engine.CASE)
}

// RunSet bundles the three runs of one program on one machine.
type RunSet struct {
	Program   *Program
	Labelings map[*Region]*Labeling
	Seq       *Result
	Hose      *Result
	Case      *Result
}

// Run labels the program, executes it under all three models, and
// verifies both speculative runs against the sequential memory state
// (Definition 3); a mismatch is returned as an error.
func Run(p *Program, cfg Config) (*RunSet, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	labs := idem.LabelProgram(p)
	for r, res := range labs {
		if errs := res.CheckTheorems(); len(errs) > 0 {
			return nil, fmt.Errorf("refidem: region %q: %v", r.Name, errs[0])
		}
	}
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		return nil, err
	}
	hose, err := engine.RunSpeculative(p, labs, cfg, engine.HOSE)
	if err != nil {
		return nil, err
	}
	caseR, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
	if err != nil {
		return nil, err
	}
	if err := engine.LiveOutMismatch(p, labs, seq, hose); err != nil {
		return nil, fmt.Errorf("refidem: HOSE run incorrect: %w", err)
	}
	if err := engine.LiveOutMismatch(p, labs, seq, caseR); err != nil {
		return nil, fmt.Errorf("refidem: CASE run incorrect: %w", err)
	}
	return &RunSet{Program: p, Labelings: labs, Seq: seq, Hose: hose, Case: caseR}, nil
}

// HoseSpeedup returns the HOSE speedup over the uniprocessor.
func (rs *RunSet) HoseSpeedup() float64 {
	return float64(rs.Seq.Cycles) / float64(rs.Hose.Cycles)
}

// CaseSpeedup returns the CASE speedup over the uniprocessor.
func (rs *RunSet) CaseSpeedup() float64 {
	return float64(rs.Seq.Cycles) / float64(rs.Case.Cycles)
}

// IdempotentFraction returns the dynamic fraction of references labeled
// idempotent, measured on the CASE run's retired executions.
func (rs *RunSet) IdempotentFraction() float64 {
	if rs.Case.Stats.DynRefs == 0 {
		return 0
	}
	return float64(rs.Case.Stats.IdemRefs) / float64(rs.Case.Stats.DynRefs)
}
