package engine

import (
	"sync"

	"refidem/internal/ir"
	"refidem/internal/vm"
)

// regionCode bundles the run-invariant artifacts of one region: compiled
// segment bytecode and the loop index values. Both are immutable after
// construction and safe to share across concurrent runs. traced holds the
// lazily built superblock tables of the traced execution tier, one per
// (mode, labeling) pair — the guard-elision decisions baked into a
// superblock depend on both, so the key is the region's exact idempotency
// bitset under that mode, not just the region identity.
type regionCode struct {
	codes map[int]*vm.Code
	iters []int64

	mu     sync.Mutex
	traced map[tracedKey]*tracedRegion
}

// tracedKey identifies one superblock table: the execution mode plus the
// byte-exact idempotent-reference bitset of the labeling (the region
// fingerprint the issue calls for — regions are cached by pointer, so
// identity plus the labeling bits pins the compiled trace exactly).
type tracedKey struct {
	mode   Mode
	labels string
}

// tracedRegion is the shared per-(region, mode, labeling) superblock
// table. done marks segments whose recording already ran, whether or not
// it produced a superblock (segments without a hot inner loop never do).
type tracedRegion struct {
	mu   sync.Mutex
	segs map[int]segTrace
}

type segTrace struct {
	sb   *vm.Superblock
	done bool
}

// tracedFor returns (creating on first use) the superblock table for one
// mode+labeling of this region.
func (rc *regionCode) tracedFor(key tracedKey) *tracedRegion {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.traced == nil {
		rc.traced = make(map[tracedKey]*tracedRegion)
	}
	tr := rc.traced[key]
	if tr == nil {
		tr = &tracedRegion{segs: make(map[int]segTrace)}
		rc.traced[key] = tr
	}
	return tr
}

// snapshot copies the table's current view into the caller's run-local
// maps, so the per-event hot path never takes the shared lock.
func (tr *tracedRegion) snapshot(segSB map[int]*vm.Superblock, segTried map[int]bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for segID, st := range tr.segs {
		if st.done {
			segTried[segID] = true
			if st.sb != nil {
				segSB[segID] = st.sb
			}
		}
	}
}

// store publishes one segment's recording outcome (sb may be nil: tried,
// no trace). Concurrent runs may race to record the same segment; either
// outcome is equivalent, so last write wins.
func (tr *tracedRegion) store(segID int, sb *vm.Superblock) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.segs[segID] = segTrace{sb: sb, done: true}
}

// codeCache memoizes regionCode per *ir.Region, so HOSE, CASE and
// sequential runs (and repeated runs across a sweep) compile each region
// exactly once. The cache is bounded: when it outgrows codeCacheLimit the
// oldest half is dropped (regions are identified by pointer, so entries
// for dead programs can never be rehydrated anyway).
const codeCacheLimit = 512

var codeCache struct {
	sync.Mutex
	m     map[*ir.Region]*regionCode
	order []*ir.Region
}

// cachedRegion returns the compiled form of r, compiling on first use.
func cachedRegion(r *ir.Region) *regionCode {
	codeCache.Lock()
	if rc, ok := codeCache.m[r]; ok {
		codeCache.Unlock()
		return rc
	}
	codeCache.Unlock()

	rc := &regionCode{codes: compileRegion(r), iters: r.IndexValues()}

	codeCache.Lock()
	defer codeCache.Unlock()
	if codeCache.m == nil {
		codeCache.m = make(map[*ir.Region]*regionCode)
	}
	if prior, ok := codeCache.m[r]; ok {
		// A concurrent run compiled it first; share that copy.
		return prior
	}
	if len(codeCache.order) >= codeCacheLimit {
		drop := codeCacheLimit / 2
		for _, old := range codeCache.order[:drop] {
			delete(codeCache.m, old)
		}
		codeCache.order = append(codeCache.order[:0], codeCache.order[drop:]...)
	}
	codeCache.m[r] = rc
	codeCache.order = append(codeCache.order, r)
	return rc
}
