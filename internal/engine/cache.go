package engine

import (
	"sync"

	"refidem/internal/ir"
	"refidem/internal/vm"
)

// regionCode bundles the run-invariant artifacts of one region: compiled
// segment bytecode and the loop index values. Both are immutable after
// construction and safe to share across concurrent runs.
type regionCode struct {
	codes map[int]*vm.Code
	iters []int64
}

// codeCache memoizes regionCode per *ir.Region, so HOSE, CASE and
// sequential runs (and repeated runs across a sweep) compile each region
// exactly once. The cache is bounded: when it outgrows codeCacheLimit the
// oldest half is dropped (regions are identified by pointer, so entries
// for dead programs can never be rehydrated anyway).
const codeCacheLimit = 512

var codeCache struct {
	sync.Mutex
	m     map[*ir.Region]*regionCode
	order []*ir.Region
}

// cachedRegion returns the compiled form of r, compiling on first use.
func cachedRegion(r *ir.Region) *regionCode {
	codeCache.Lock()
	if rc, ok := codeCache.m[r]; ok {
		codeCache.Unlock()
		return rc
	}
	codeCache.Unlock()

	rc := &regionCode{codes: compileRegion(r), iters: r.IndexValues()}

	codeCache.Lock()
	defer codeCache.Unlock()
	if codeCache.m == nil {
		codeCache.m = make(map[*ir.Region]*regionCode)
	}
	if prior, ok := codeCache.m[r]; ok {
		// A concurrent run compiled it first; share that copy.
		return prior
	}
	if len(codeCache.order) >= codeCacheLimit {
		drop := codeCacheLimit / 2
		for _, old := range codeCache.order[:drop] {
			delete(codeCache.m, old)
		}
		codeCache.order = append(codeCache.order[:0], codeCache.order[drop:]...)
	}
	codeCache.m[r] = rc
	codeCache.order = append(codeCache.order, r)
	return rc
}
