package engine

import (
	"fmt"

	"refidem/internal/deps"
	"refidem/internal/ir"
	"refidem/internal/vm"
)

// CollectProfile executes the program sequentially (same semantics as
// RunSequential, no timing accounting) and records, per region and dense
// reference ID, the inclusive range of flat addresses each static
// reference touched and how many dynamic instances ran. The result feeds
// the ensemble's profile member (deps.Profile): two references whose
// observed ranges are disjoint are speculatively "observed to never
// alias", with a confidence derived from the observation counts.
//
// The replay is the ground truth for the profiled input: the paper's
// programs are closed (memory is seeded deterministically from
// Config.Seed), so "observed on this input" and "observed on the
// training input" coincide, and the residual misspeculation risk the
// confidence models is the transfer to other seeds and configs.
func CollectProfile(p *ir.Program, cfg Config) (*deps.Profile, error) {
	if err := ir.CheckExecutable(p); err != nil {
		return nil, err
	}
	layout := NewLayout(p, nil, 1)
	mem := NewMemory(layout, cfg.Seed)
	prof := &deps.Profile{Obs: make(map[*ir.Region][]deps.RefObs, len(p.Regions))}

	var events int64
	var m *vm.Machine
	for _, r := range p.Regions {
		obs := make([]deps.RefObs, len(r.Refs))
		prof.Obs[r] = obs
		rc := cachedRegion(r)
		codes, iters := rc.codes, rc.iters
		segID := entrySegment(r)
		iterAt := 0
		for {
			var seg *ir.Segment
			var idxVal int64
			if r.Kind == ir.LoopRegion {
				if iterAt >= len(iters) {
					break
				}
				seg = r.Segments[0]
				idxVal = iters[iterAt]
			} else {
				if segID < 0 {
					break
				}
				seg = r.Seg(segID)
			}
			if m == nil {
				m = vm.NewMachine(codes[seg.ID], idxVal)
			} else {
				m.Reinit(codes[seg.ID], idxVal)
			}
			for {
				ev, _ := m.Step()
				events++
				if events > cfg.MaxEvents {
					return nil, fmt.Errorf("engine: profile run exceeded %d events", cfg.MaxEvents)
				}
				if ev.Kind == vm.EvDone {
					break
				}
				addr := layout.Addr(ev.Ref.Var, ev.Subs, false, 0)
				o := &obs[ev.Ref.ID]
				if o.Count == 0 || addr < o.Min {
					o.Min = addr
				}
				if o.Count == 0 || addr > o.Max {
					o.Max = addr
				}
				o.Count++
				if ev.Kind == vm.EvLoad {
					m.ResumeLoad(mem[addr])
				} else {
					mem[addr] = ev.Value
				}
			}
			if r.Kind == ir.LoopRegion {
				if m.ExitRequested {
					break
				}
				iterAt++
			} else {
				segID = nextSegment(seg, m)
				if m.ExitRequested {
					break
				}
			}
		}
	}
	return prof, nil
}
