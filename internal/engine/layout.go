package engine

import (
	"sync"
	"sync/atomic"

	"refidem/internal/idem"
	"refidem/internal/ir"
)

// Layout assigns every variable a flat word address range. Shared
// variables live in [0, SharedSize); privatized variables additionally get
// an offset inside a per-processor private stack frame, mirroring the
// paper's runtime, which "allocates a private stack for every segment".
// A variable that is private in some region uses its frame address while
// that region executes and its shared address elsewhere; since private
// variables are dead at region boundaries, the two copies never carry
// values across.
type Layout struct {
	Base       map[*ir.Var]int64
	SharedSize int64
	PrivOffset map[*ir.Var]int64
	FrameSize  int64
	Slots      int
	Total      int64
}

// NewLayout builds the layout for a program. labelings supplies the
// per-region private sets (nil labelings means nothing is privatized,
// e.g. for purely sequential runs of the original program). slots is the
// number of private frames (the processor count).
func NewLayout(p *ir.Program, labelings map[*ir.Region]*idem.Result, slots int) *Layout {
	l := &Layout{
		Base:       make(map[*ir.Var]int64),
		PrivOffset: make(map[*ir.Var]int64),
		Slots:      slots,
	}
	var off int64
	for _, v := range p.Vars {
		l.Base[v] = off
		off += int64(v.Size())
	}
	l.SharedSize = off
	var frame int64
	if labelings != nil {
		for _, v := range p.Vars {
			private := false
			for _, res := range labelings {
				if res.Info.Private(v) {
					private = true
					break
				}
			}
			if private {
				l.PrivOffset[v] = frame
				frame += int64(v.Size())
			}
		}
	}
	l.FrameSize = frame
	if slots < 1 {
		l.Slots = 1
	}
	l.Total = l.SharedSize + l.FrameSize*int64(l.Slots)
	return l
}

// Addr computes the flat address of a reference instance. subs are the
// evaluated subscript values; each is wrapped modulo its dimension so
// synthetic programs can never leave the variable's storage. privateHere
// selects frame addressing (the variable is private in the executing
// region), and slot picks the frame (the processor).
func (l *Layout) Addr(v *ir.Var, subs []int64, privateHere bool, slot int) int64 {
	var idx int64
	for i, d := range v.Dims {
		s := subs[i] % int64(d)
		if s < 0 {
			s += int64(d)
		}
		idx = idx*int64(d) + s
	}
	if privateHere {
		if slot < 0 || slot >= l.Slots {
			slot = 0
		}
		return l.SharedSize + int64(slot)*l.FrameSize + l.PrivOffset[v] + idx
	}
	return l.Base[v] + idx
}

// memTemplates caches seeded memory images by (size, seed), so repeated
// runs (sweeps, benchmarks) fill fresh memories with one copy instead of
// re-hashing every word. Bounded to keep pathological seed churn from
// pinning memory.
var (
	memTemplates     sync.Map // [2]int64{total, seed} -> []int64
	memTemplateCount atomic.Int64
	memTemplateLimit = int64(64)
)

// NewMemory allocates and deterministically fills the flat memory image.
// Values are small integers derived from the seed so programs compute on
// non-trivial data while staying far from overflow.
func NewMemory(l *Layout, seed int64) []int64 {
	key := [2]int64{l.Total, seed}
	mem := make([]int64, l.Total)
	if t, ok := memTemplates.Load(key); ok {
		copy(mem, t.([]int64))
		return mem
	}
	for i := range mem {
		mem[i] = seededValue(seed, int64(i))
	}
	if memTemplateCount.Load() < memTemplateLimit {
		t := make([]int64, len(mem))
		copy(t, mem)
		if _, loaded := memTemplates.LoadOrStore(key, t); !loaded {
			memTemplateCount.Add(1)
		}
	}
	return mem
}

// seededValue is a splitmix-style hash reduced to [-8, 8].
func seededValue(seed, addr int64) int64 {
	x := uint64(seed) + uint64(addr)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x%17) - 8
}

// VarValues extracts the current contents of a variable from memory
// (shared addressing).
func VarValues(mem []int64, l *Layout, v *ir.Var) []int64 {
	base := l.Base[v]
	out := make([]int64, v.Size())
	copy(out, mem[base:base+int64(v.Size())])
	return out
}
