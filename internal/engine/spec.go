package engine

import (
	"fmt"
	"sync"

	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/obs"
	"refidem/internal/specmem"
	"refidem/internal/vm"
)

// instState is the lifecycle of one segment instance.
type instState uint8

const (
	// stRunning: executing (or ready to execute) on its processor.
	stRunning instState = iota
	// stStalled: blocked on speculative storage overflow until oldest.
	stStalled
	// stDone: finished, waiting to become oldest and commit.
	stDone
	// stRetired: committed.
	stRetired
)

// unknownNext marks an instance whose successor is not yet known; exitNext
// marks the region exit.
const (
	unknownNext = -2
	exitNext    = -1
)

// refTally accumulates per-execution reference counts; it is discarded on
// squash and flushed into Stats at retirement, so the reported fractions
// describe final executions only (matching the paper's measurements).
type refTally struct {
	total  int64
	idem   int64
	promo  int64
	byCat  [8]int64
	instrs int64
}

// instance is one speculative segment execution (one loop iteration or one
// CFG segment). Instances — together with their machine and speculative
// buffer — are pooled on the runner's free list and recycled across
// spawns, regions, and (via runnerPool) whole runs.
type instance struct {
	age    int
	seg    *ir.Segment
	idxVal int64
	m      *vm.Machine
	buf    *specmem.Buffer
	proc   int
	state  instState
	clock  int64
	// spawnTime is the clock at dispatch (reset on squash restart), so
	// commit and squash timeline events can reach back to the start of
	// the execution they end.
	spawnTime int64

	doneTime   int64
	exitReq    bool
	actualNext int
	pendingEv  vm.Event
	hasPending bool
	stallStart int64
	tally      refTally
}

// RunSpeculative executes the program under HOSE or CASE. labelings must
// come from idem.LabelProgram on the same program: CASE uses the labels to
// route references, and both modes use the private sets to address the
// per-segment private stacks of the privatized program.
func RunSpeculative(p *ir.Program, labelings map[*ir.Region]*idem.Result, cfg Config, mode Mode) (*Result, error) {
	if mode != HOSE && mode != CASE {
		return nil, fmt.Errorf("engine: RunSpeculative wants HOSE or CASE, got %v", mode)
	}
	if cfg.Processors < 1 {
		return nil, fmt.Errorf("engine: need at least one processor")
	}
	if err := ir.CheckExecutable(p); err != nil {
		return nil, err
	}
	layout := NewLayout(p, labelings, cfg.Processors)
	mem := NewMemory(layout, cfg.Seed)
	hier := specmem.NewHierarchy(cfg.Processors, cfg.Hier)
	res := &Result{Mode: mode, Layout: layout, Memory: mem}

	var now int64
	var events int64
	sr := acquireRunner(&cfg, mode, layout, mem, hier, &res.Stats, &events)
	defer sr.release()
	for _, region := range p.Regions {
		lab := labelings[region]
		if lab == nil {
			return nil, fmt.Errorf("engine: no labeling for region %q", region.Name)
		}
		sr.setRegion(region, lab)
		if cfg.Timeline != nil {
			cfg.Timeline.BeginRegion(region.Name, now, timelineRefs(region, lab))
		}
		end, err := sr.run(now)
		if err != nil {
			return nil, fmt.Errorf("engine: region %q: %w", region.Name, err)
		}
		if cfg.Timeline != nil {
			cfg.Timeline.EndRegion(end)
		}
		now = end
	}
	res.Cycles = now
	return res, nil
}

// specRunner executes regions speculatively. One runner is reused across
// all regions of a run, and its allocation-heavy scratch (instances,
// machines, buffers, the window, the ready heap, per-processor state) is
// recycled across runs through runnerPool.
type specRunner struct {
	cfg    *Config
	mode   Mode
	r      *ir.Region
	lab    *idem.Result
	layout *Layout
	mem    []int64
	hier   *specmem.Hierarchy
	stats  *Stats
	codes  map[int]*vm.Code
	iters  []int64
	events *int64

	// window holds the live (non-retired) instances in age order;
	// window[0] has age baseAge. Its length is bounded by the processor
	// count, unlike the full spawn history.
	window  []*instance
	baseAge int
	// nextAge is the age the next spawned instance receives.
	nextAge int
	// lastRetiredNext caches the actual successor of the most recently
	// retired instance, the only fact spawning ever needs from retired
	// history.
	lastRetiredNext int
	stopSpawn       bool
	procFree        []int64
	procInst        []*instance
	commitFree      int64

	// heap is an indexed min-heap of the running instances keyed on
	// (clock, age): the event loop always advances heap[0]. Keys are
	// stored in the nodes so sift comparisons never chase the instance
	// pointers, and positions live in heapPos (indexed by processor — a
	// running instance always occupies exactly one), so sift swaps touch
	// only flat arrays.
	heap []heapNode
	// heapPos[proc] is the heap index of the instance on proc, -1 if not
	// enqueued.
	heapPos []int32
	// heapGen counts heap mutations; the event loop uses it to detect
	// that an advance left the heap untouched and the running instance is
	// still sitting at the root with a stale key.
	heapGen uint64

	// Hot scalars hoisted out of cfg/layout so the per-event path loads
	// them without pointer indirection.
	opCost     int64
	specLat    int64
	maxEvents  int64
	tracing    bool
	sharedSize int64
	frameSize  int64
	// tl mirrors cfg.Timeline: nil (the default) keeps every emission
	// site down to one pointer check.
	tl *obs.Timeline

	segPrivate map[int]bool
	free       []*instance
	commit     []specmem.Entry

	// Traced-tier state (see traced.go). jit mirrors cfg.Traced; segSB and
	// segTried are the run-local superblock view (no shared locks on the
	// event path); rec/recSeg/recOwner track the one in-flight recording;
	// tsubs is the subscript scratch of the trace executor.
	jit      bool
	tr       *tracedRegion
	segSB    map[int]*vm.Superblock
	segTried map[int]bool
	rec      *vm.Recorder
	recSeg   int
	recOwner *instance
	direct   func(*ir.Ref) bool
	tsubs    [8]int64

	// refMeta holds the per-reference facts of the current region,
	// indexed by the dense ref ID: the label, category, privatization and
	// address-computation data the hot path would otherwise chase through
	// four maps per memory event.
	refMeta []refMeta

	// specCap/specSets record the buffer geometry of the pooled buffers
	// on the free list; a config change invalidates them.
	specCap  int
	specSets int
}

// runnerPool recycles specRunner scratch across runs.
var runnerPool = sync.Pool{
	New: func() any {
		return &specRunner{segPrivate: make(map[int]bool)}
	},
}

// acquireRunner checks a pooled runner out for one run.
func acquireRunner(cfg *Config, mode Mode, layout *Layout, mem []int64, hier *specmem.Hierarchy, stats *Stats, events *int64) *specRunner {
	sr := runnerPool.Get().(*specRunner)
	sr.cfg, sr.mode = cfg, mode
	sr.layout, sr.mem, sr.hier, sr.stats, sr.events = layout, mem, hier, stats, events
	sr.opCost, sr.specLat, sr.maxEvents = cfg.OpCost, cfg.SpecLatency, cfg.MaxEvents
	sr.tracing = cfg.Trace != nil
	sr.jit = cfg.Traced
	sr.tl = cfg.Timeline
	sr.sharedSize, sr.frameSize = layout.SharedSize, layout.FrameSize
	if sr.specCap != cfg.SpecCapacity || sr.specSets != cfg.SpecSets {
		for _, in := range sr.free {
			in.buf = nil
		}
		sr.specCap, sr.specSets = cfg.SpecCapacity, cfg.SpecSets
	}
	if cap(sr.procFree) < cfg.Processors {
		sr.procFree = make([]int64, cfg.Processors)
		sr.procInst = make([]*instance, cfg.Processors)
		sr.heapPos = make([]int32, cfg.Processors)
	}
	sr.procFree = sr.procFree[:cfg.Processors]
	sr.procInst = sr.procInst[:cfg.Processors]
	sr.heapPos = sr.heapPos[:cfg.Processors]
	return sr
}

// release returns the runner's scratch to the pool, dropping references
// to run-scoped state. Pooled instances keep their machine and buffer.
func (sr *specRunner) release() {
	sr.drainWindow()
	for _, in := range sr.free {
		in.seg = nil
	}
	sr.cfg, sr.r, sr.lab = nil, nil, nil
	sr.layout, sr.mem, sr.hier, sr.stats, sr.events = nil, nil, nil, nil, nil
	sr.codes, sr.iters = nil, nil
	sr.tl = nil
	sr.tr, sr.recOwner, sr.direct = nil, nil, nil
	sr.recSeg = -1
	for i := range sr.procInst {
		sr.procInst[i] = nil
	}
	runnerPool.Put(sr)
}

// drainWindow recycles any live instances (left over after an error or a
// finished region) onto the free list.
func (sr *specRunner) drainWindow() {
	for _, in := range sr.window {
		sr.free = append(sr.free, in)
	}
	sr.window = sr.window[:0]
	sr.heap = sr.heap[:0]
	for i := range sr.heapPos {
		sr.heapPos[i] = -1
	}
}

// dimSpec is one array dimension with its wrap mask (-1 when the size is
// not a power of two and the wrap needs a modulo).
type dimSpec struct {
	size int64
	mask int64
}

// refMeta is the flattened per-reference metadata of one region under one
// labeling: what four map lookups per event (label, category, private
// set, layout base) collapse into a single slice index.
type refMeta struct {
	label   idem.Label
	cat     uint8
	private bool
	// bypass is set when this reference skips speculative storage under
	// the current mode (CASE and labeled idempotent).
	bypass bool
	// promoted is set when bypass came from the SpecThreshold policy
	// rather than a proved label (statistics only).
	promoted bool
	// readOnly is set when the region never writes the variable: no
	// ancestor buffer can hold a Written entry in its address range, so
	// loads skip the ancestor scan outright.
	readOnly bool
	// base is the shared-storage base of the variable, or its offset
	// inside the per-processor private frame when private is set.
	base int64
	dims []dimSpec
}

// setRegion points the runner at the next region of the run and rebuilds
// the per-reference metadata table.
func (sr *specRunner) setRegion(r *ir.Region, lab *idem.Result) {
	sr.r, sr.lab = r, lab
	rc := cachedRegion(r)
	sr.codes, sr.iters = rc.codes, rc.iters

	if cap(sr.refMeta) < len(r.Refs) {
		sr.refMeta = make([]refMeta, len(r.Refs))
	}
	sr.refMeta = sr.refMeta[:len(r.Refs)]
	varDims := make(map[*ir.Var][]dimSpec, 8)
	for _, ref := range r.Refs {
		md := &sr.refMeta[ref.ID]
		md.label = lab.Label(ref)
		md.cat = uint8(lab.Category(ref))
		md.private = lab.Info.Private(ref.Var)
		md.bypass = sr.mode == CASE && md.label == idem.Idempotent
		md.promoted = false
		if sr.mode == CASE && !md.bypass && sr.cfg.SpecThreshold > 0 &&
			lab.Prob(ref) >= sr.cfg.SpecThreshold {
			// Confidence-driven promotion: the ensemble could not prove the
			// reference idempotent but considers the blocking dependences
			// absent with probability past the threshold. Misspeculation is
			// the engine's (and the fuzz wall's) problem from here on.
			md.bypass = true
			md.promoted = true
		}
		md.readOnly = lab.Info.ReadOnly(ref.Var)
		if md.private {
			md.base = sr.layout.PrivOffset[ref.Var]
		} else {
			md.base = sr.layout.Base[ref.Var]
		}
		dims, ok := varDims[ref.Var]
		if !ok {
			dims = make([]dimSpec, len(ref.Var.Dims))
			for i, d := range ref.Var.Dims {
				dims[i] = dimSpec{size: int64(d), mask: -1}
				if d > 0 && d&(d-1) == 0 {
					dims[i].mask = int64(d) - 1
				}
			}
			varDims[ref.Var] = dims
		}
		md.dims = dims
	}
	if sr.jit {
		// After refMeta is built: the elision predicate reads it.
		sr.tracedSetRegion(rc)
	}
}

func (sr *specRunner) run(start int64) (int64, error) {
	sr.drainWindow()
	for i := range sr.procFree {
		sr.procFree[i] = start
		sr.procInst[i] = nil
	}
	sr.commitFree = start
	for i := range sr.heapPos {
		sr.heapPos[i] = -1
	}
	sr.baseAge, sr.nextAge = 0, 0
	sr.lastRetiredNext = unknownNext
	sr.stopSpawn = false
	clear(sr.segPrivate)
	for _, seg := range sr.r.Segments {
		sr.segPrivate[seg.ID] = sr.segmentUsesPrivate(seg)
	}
	sr.spawnAll()
	events := *sr.events
outer:
	for {
		inst := sr.heapMin()
		if inst == nil {
			if len(sr.window) == 0 && sr.stopSpawn {
				break
			}
			*sr.events = events
			return 0, fmt.Errorf("no runnable instance (oldest=%d insts=%d stop=%v)", sr.baseAge, sr.nextAge, sr.stopSpawn)
		}
		// Advance the minimum instance, and keep advancing it while the
		// heap stays untouched and its growing clock still beats the
		// root's children — the common run of consecutive events on one
		// processor costs no sift and no re-pick.
		for {
			events++
			if events > sr.maxEvents {
				*sr.events = events
				return 0, fmt.Errorf("exceeded %d events (livelock?)", sr.maxEvents)
			}
			gen := sr.heapGen
			if sr.jit {
				sr.advanceTraced(inst)
			} else {
				sr.advance(inst)
			}
			if inst.state != stRunning || sr.heapGen != gen {
				// The instance blocked, or the heap changed under it
				// (squash, stall, spawn): restore its key and re-pick.
				if inst.state == stRunning {
					if p := sr.heapPos[inst.proc]; p >= 0 {
						sr.heapFixAt(int(p))
					}
				}
				continue outer
			}
			// Heap untouched: inst is still at the root with a stale key.
			h := sr.heap
			nk := heapNode{clock: inst.clock, age: int32(inst.age)}
			h[0].clock = inst.clock
			if (len(h) > 1 && h[1].less(nk)) || (len(h) > 2 && h[2].less(nk)) {
				sr.heapDown(0)
				continue outer
			}
		}
	}
	*sr.events = events
	end := sr.commitFree
	if end < start {
		end = start
	}
	return end, nil
}

// heapNode is one ready-heap element: the ordering key plus the owning
// processor of the instance. Storing the processor index instead of the
// instance pointer keeps the node pointer-free — heap swaps skip the GC
// write barrier — and a live instance always occupies exactly one
// processor, so procInst resolves it in O(1).
type heapNode struct {
	clock int64
	age   int32
	proc  int32
}

// less orders the ready heap on (clock, age): the instance with the
// smallest clock runs next, ties to the oldest — exactly the pick order
// of the original linear scan.
func (a heapNode) less(b heapNode) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.age < b.age)
}

func (sr *specRunner) heapMin() *instance {
	if len(sr.heap) == 0 {
		return nil
	}
	return sr.procInst[sr.heap[0].proc]
}

func (sr *specRunner) heapPush(in *instance) {
	sr.heapGen++
	i := len(sr.heap)
	sr.heap = append(sr.heap, heapNode{clock: in.clock, age: int32(in.age), proc: int32(in.proc)})
	sr.heapPos[in.proc] = int32(i)
	sr.heapUp(i)
}

func (sr *specRunner) heapRemove(in *instance) {
	sr.heapGen++
	i := int(sr.heapPos[in.proc])
	if i < 0 {
		return
	}
	last := len(sr.heap) - 1
	sr.heap[i] = sr.heap[last]
	sr.heapPos[sr.heap[i].proc] = int32(i)
	sr.heap = sr.heap[:last]
	sr.heapPos[in.proc] = -1
	if i < last {
		sr.heapFixAt(i)
	}
}

// heapFixAt re-reads heap[i]'s key from its instance and restores the
// heap property.
func (sr *specRunner) heapFixAt(i int) {
	sr.heapGen++
	sr.heap[i].clock = sr.procInst[sr.heap[i].proc].clock
	if !sr.heapDown(i) {
		sr.heapUp(i)
	}
}

func (sr *specRunner) heapUp(i int) {
	h := sr.heap
	pos := sr.heapPos
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		pos[h[i].proc] = int32(i)
		pos[h[parent].proc] = int32(parent)
		i = parent
	}
}

// heapDown sifts heap[i] down and reports whether it moved.
func (sr *specRunner) heapDown(i int) bool {
	h := sr.heap
	pos := sr.heapPos
	n := len(h)
	start := i
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && h[r].less(h[l]) {
			least = r
		}
		if !h[least].less(h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		pos[h[i].proc] = int32(i)
		pos[h[least].proc] = int32(least)
		i = least
	}
	return i > start
}

// segmentUsesPrivate reports whether a segment references any privatized
// variable (such segments pay the stack setup cost).
func (sr *specRunner) segmentUsesPrivate(seg *ir.Segment) bool {
	for _, ref := range sr.r.Refs {
		if ref.SegID == seg.ID && sr.lab.Info.Private(ref.Var) {
			return true
		}
	}
	return false
}

// nextIdentity determines the segment the next spawned instance should
// execute: the actual successor when the predecessor has completed, the
// statically predicted successor (first CFG edge / next loop iteration)
// otherwise. It returns exitNext when the region is known or predicted to
// end.
func (sr *specRunner) nextIdentity() int {
	age := sr.nextAge
	if sr.r.Kind == ir.LoopRegion {
		if age >= len(sr.iters) {
			return exitNext
		}
		if age > 0 {
			if decided, next := sr.prevOutcome(age - 1); decided && next == exitNext {
				return exitNext
			}
		}
		return sr.r.Segments[0].ID
	}
	if age == 0 {
		return sr.r.Segments[0].ID
	}
	if decided, next := sr.prevOutcome(age - 1); decided {
		return next
	}
	prev := sr.window[age-1-sr.baseAge]
	if len(prev.seg.Succs) == 0 {
		return exitNext
	}
	return prev.seg.Succs[0] // static prediction: first edge
}

// prevOutcome reports whether the instance of the given age has a decided
// successor (it completed or retired) and, if so, which. Ages older than
// the window belong to retired instances, whose successor is the recorded
// lastRetiredNext (retirement is in age order, so the age directly below
// the window is always the most recently retired).
func (sr *specRunner) prevOutcome(age int) (bool, int) {
	wi := age - sr.baseAge
	if wi < 0 {
		return true, sr.lastRetiredNext
	}
	prev := sr.window[wi]
	if prev.state == stDone {
		return true, prev.actualNext
	}
	return false, unknownNext
}

// spawnAll creates instances for free processors, oldest first.
func (sr *specRunner) spawnAll() {
	for !sr.stopSpawn {
		segID := sr.nextIdentity()
		if segID == exitNext {
			sr.stopSpawn = true
			return
		}
		proc := -1
		for p := range sr.procInst {
			if sr.procInst[p] != nil {
				continue
			}
			if proc == -1 || sr.procFree[p] < sr.procFree[proc] {
				proc = p
			}
		}
		if proc == -1 {
			return
		}
		age := sr.nextAge
		var idxVal int64
		if sr.r.Kind == ir.LoopRegion {
			idxVal = sr.iters[age]
		}
		inst := sr.newInstance(segID, age, idxVal, proc)
		inst.clock = sr.procFree[proc] + sr.cfg.DispatchCost
		if sr.segPrivate[segID] {
			inst.clock += sr.cfg.StackSetupCost
		}
		inst.spawnTime = inst.clock
		if sr.tl != nil {
			sr.tl.Add(obs.Event{Kind: obs.EvSpawn, Time: inst.clock,
				Proc: int32(proc), Age: int32(age), Seg: int32(segID), Ref: -1})
		}
		sr.window = append(sr.window, inst)
		sr.nextAge++
		sr.procInst[proc] = inst
		sr.heapPush(inst)
	}
}

// newInstance takes an instance off the free list (or allocates one) and
// initializes it for a fresh spawn, recycling its machine and buffer.
func (sr *specRunner) newInstance(segID, age int, idxVal int64, proc int) *instance {
	var inst *instance
	if n := len(sr.free); n > 0 {
		inst = sr.free[n-1]
		sr.free[n-1] = nil
		sr.free = sr.free[:n-1]
	} else {
		inst = &instance{}
	}
	inst.age = age
	inst.seg = sr.r.Seg(segID)
	inst.idxVal = idxVal
	inst.proc = proc
	inst.state = stRunning
	inst.doneTime = 0
	inst.exitReq = false
	inst.actualNext = unknownNext
	inst.hasPending = false
	inst.pendingEv = vm.Event{}
	inst.stallStart = 0
	inst.tally = refTally{}
	code := sr.codes[segID]
	if inst.m == nil {
		inst.m = vm.NewMachine(code, idxVal)
	} else {
		inst.m.Reinit(code, idxVal)
	}
	if inst.buf == nil {
		inst.buf = sr.newBuffer()
	} else {
		inst.buf.Reset()
	}
	return inst
}

// recycle puts a dead (retired or truncated) instance back on the free
// list. The caller must already have detached it from the window, the
// heap, and its processor.
func (sr *specRunner) recycle(inst *instance) {
	inst.hasPending = false
	inst.pendingEv = vm.Event{}
	sr.free = append(sr.free, inst)
}

// newBuffer builds one segment's speculative storage per the configured
// organization.
func (sr *specRunner) newBuffer() *specmem.Buffer {
	if sr.cfg.SpecSets > 1 {
		ways := sr.cfg.SpecCapacity / sr.cfg.SpecSets
		if ways < 1 {
			ways = 1
		}
		return specmem.NewSetAssocBuffer(sr.cfg.SpecSets, ways)
	}
	return specmem.NewBuffer(sr.cfg.SpecCapacity)
}

// advance processes one event of the instance.
func (sr *specRunner) advance(inst *instance) {
	before := inst.clock
	var ev vm.Event
	if inst.hasPending {
		ev = inst.pendingEv
		inst.hasPending = false
	} else {
		ops := inst.m.StepInto(&ev)
		inst.clock += int64(ops) * sr.opCost
		inst.tally.instrs += int64(ops)
	}
	if ev.Kind == vm.EvDone {
		// Busy-cycle accounting must happen before complete(): retirement
		// may recycle the instance struct for a new spawn.
		if inst.clock > before {
			sr.stats.BusyCycles += inst.clock - before
		}
		sr.complete(inst)
		return
	}
	if ev.Kind == vm.EvLoad {
		sr.doLoad(inst, &ev)
	} else {
		sr.doStore(inst, &ev)
	}
	if inst.clock > before {
		sr.stats.BusyCycles += inst.clock - before
	}
}

// addrOf resolves a reference instance to a flat address, routing
// privatized variables to the processor's private stack frame. It is the
// map-free equivalent of Layout.Addr over the precomputed refMeta.
func (sr *specRunner) addrOf(inst *instance, md *refMeta, subs []int64) int64 {
	var idx int64
	for i := range md.dims {
		d := &md.dims[i]
		s := subs[i]
		// In-range subscripts (the overwhelmingly common case) skip the
		// wrap entirely; the unsigned compare also catches negatives.
		if uint64(s) >= uint64(d.size) {
			if d.mask >= 0 {
				s &= d.mask
			} else {
				s %= d.size
				if s < 0 {
					s += d.size
				}
			}
		}
		idx = idx*d.size + s
	}
	if md.private {
		return sr.sharedSize + int64(inst.proc)*sr.frameSize + md.base + idx
	}
	return md.base + idx
}

// isIdem reports whether the reference bypasses speculative storage.
func (sr *specRunner) isIdem(md *refMeta) bool {
	return md.bypass
}

func (sr *specRunner) tallyRef(inst *instance, md *refMeta) {
	inst.tally.total++
	if md.label == idem.Idempotent {
		inst.tally.idem++
	}
	if md.promoted {
		inst.tally.promo++
	}
	inst.tally.byCat[md.cat]++
}

func (sr *specRunner) trackOccupancy(inst *instance) {
	if n := inst.buf.Size(); n > sr.stats.PeakSpecOccupancy {
		sr.stats.PeakSpecOccupancy = n
	}
}

// doLoad resolves a read reference.
func (sr *specRunner) doLoad(inst *instance, ev *vm.Event) {
	md := &sr.refMeta[ev.Ref.ID]
	addr := sr.addrOf(inst, md, ev.Subs)
	if sr.isIdem(md) {
		// Idempotent reads completely bypass the speculative storage and
		// reference the non-speculative storage directly (Definition 4).
		inst.m.ResumeLoad(sr.mem[addr])
		inst.clock += sr.hier.Access(inst.proc, addr)
		sr.tallyRef(inst, md)
		return
	}
	// Speculative read: own buffer, then youngest ancestor, then
	// non-speculative storage (HOSE Property 4).
	if e := inst.buf.Lookup(addr); e != nil && (e.Written || e.ReadFromBelow) {
		inst.m.ResumeLoad(e.Value)
		inst.clock += sr.specLat
		sr.tallyRef(inst, md)
		return
	}
	val := int64(0)
	srcAge := -1
	var lat int64
	found := false
	if !md.readOnly {
		// Ancestor search is pointless for read-only variables: nothing
		// in the region ever writes their address range.
		for wi := inst.age - 1 - sr.baseAge; wi >= 0; wi-- {
			anc := sr.window[wi]
			if e := anc.buf.Lookup(addr); e != nil && e.Written {
				val, srcAge, lat, found = e.Value, anc.age, sr.specLat, true
				break
			}
		}
	}
	if !found {
		val = sr.mem[addr]
		lat = sr.hier.Access(inst.proc, addr)
	}
	if !inst.buf.NoteRead(addr, val, srcAge) {
		sr.stats.Overflows++
		if inst.age != sr.baseAge {
			sr.stall(inst, ev)
			return
		}
		// The oldest segment is non-speculative: proceed untracked.
	}
	sr.trackOccupancy(inst)
	inst.m.ResumeLoad(val)
	inst.clock += lat
	sr.tallyRef(inst, md)
}

// doStore resolves a write reference.
func (sr *specRunner) doStore(inst *instance, ev *vm.Event) {
	md := &sr.refMeta[ev.Ref.ID]
	addr := sr.addrOf(inst, md, ev.Subs)
	// Both speculative and idempotent writes first check for prematurely
	// executed speculative loads in younger segments (Definition 4 /
	// HOSE Property 5).
	sr.checkViolation(inst, addr, int32(ev.Ref.ID))
	if sr.isIdem(md) {
		// The value goes directly to non-speculative storage; nothing is
		// kept in speculative storage.
		sr.mem[addr] = ev.Value
		inst.clock += sr.hier.Access(inst.proc, addr)
		sr.tallyRef(inst, md)
		return
	}
	if !inst.buf.Write(addr, ev.Value) {
		sr.stats.Overflows++
		if inst.age != sr.baseAge {
			sr.stall(inst, ev)
			return
		}
		// Oldest: write through to non-speculative storage.
		sr.mem[addr] = ev.Value
		inst.clock += sr.hier.Access(inst.proc, addr)
	} else {
		inst.clock += sr.specLat
		sr.trackOccupancy(inst)
	}
	sr.tallyRef(inst, md)
}

// stall parks the instance until it becomes the oldest (speculative
// storage overflow: "execution halts until speculation is resolved").
func (sr *specRunner) stall(inst *instance, ev *vm.Event) {
	if sr.tracing {
		sr.trace("t=%d age %d stalls on overflow (buffer %d/%d)",
			inst.clock, inst.age, inst.buf.Size(), inst.buf.Capacity())
	}
	inst.pendingEv = *ev
	inst.hasPending = true
	inst.state = stStalled
	inst.stallStart = inst.clock
	if sr.tl != nil {
		sr.tl.Add(obs.Event{Kind: obs.EvStall, Time: inst.clock,
			Proc: int32(inst.proc), Age: int32(inst.age), Seg: int32(inst.seg.ID),
			Ref: -1, Aux: int64(inst.buf.Size()), Cause: obs.CauseOverflow})
	}
	sr.heapRemove(inst)
}

// checkViolation detects flow-dependence violations: a younger segment
// consumed this location from a source no younger than the writer. The
// speculation engine rolls back the violating segment and everything
// younger. refID is the writer's dense reference ID, carried into the
// squash timeline events so attribution can rank the refs whose writes
// trigger squash storms.
func (sr *specRunner) checkViolation(writer *instance, addr int64, refID int32) {
	for wi := writer.age + 1 - sr.baseAge; wi < len(sr.window); wi++ {
		v := sr.window[wi]
		if v.buf.PrematureRead(addr, writer.age) != nil {
			sr.stats.FlowViolations++
			if sr.tracing {
				sr.trace("t=%d age %d write to addr %d violates premature read by age %d",
					writer.clock, writer.age, addr, v.age)
			}
			sr.squashFrom(v.age, writer.clock, refID)
			return
		}
	}
}

// trace writes one engine-event line when tracing is enabled.
func (sr *specRunner) trace(format string, args ...any) {
	if sr.cfg.Trace != nil {
		fmt.Fprintf(sr.cfg.Trace, "[%s] "+format+"\n", append([]any{sr.r.Name}, args...)...)
	}
}

// squashFrom rolls back instances age..youngest: buffers cleared, machines
// reset, restart after the rollback penalty (HOSE Property 2). refID is
// the violating writer's reference, attributed to every squash event.
func (sr *specRunner) squashFrom(age int, t int64, refID int32) {
	if sr.tracing {
		sr.trace("t=%d squash ages %d..%d (flow violation)", t, age, sr.nextAge-1)
	}
	for wi := age - sr.baseAge; wi < len(sr.window); wi++ {
		inst := sr.window[wi]
		if inst.state == stStalled {
			sr.stats.OverflowStallCycles += t - inst.stallStart
		}
		if sr.tl != nil {
			sr.tl.Add(obs.Event{Kind: obs.EvSquash, Time: t,
				Dur:  sinceSpawn(t, inst.spawnTime),
				Proc: int32(inst.proc), Age: int32(inst.age), Seg: int32(inst.seg.ID),
				Ref: refID, Cause: obs.CauseFlowViolation})
		}
		wasRunning := inst.state == stRunning
		inst.m.Reset()
		inst.buf.Reset()
		inst.hasPending = false
		inst.exitReq = false
		inst.actualNext = unknownNext
		inst.state = stRunning
		inst.clock = t + sr.cfg.RollbackPenalty
		inst.spawnTime = inst.clock
		inst.doneTime = 0
		inst.tally = refTally{}
		sr.stats.SquashedSegments++
		if wasRunning {
			sr.heapFixAt(int(sr.heapPos[inst.proc]))
		} else {
			sr.heapPush(inst)
		}
	}
	// A squashed instance's completion outcome is void, including any
	// region-exit decision it contributed: if a misspeculated early exit
	// truncated the younger window and latched stopSpawn, the rolled-back
	// segment may well not exit on re-execution, and the dropped
	// iterations must be re-spawned (found by differential fuzzing: a
	// stale-read exit condition followed by this flow squash silently
	// lost the region tail). Clearing stopSpawn is always safe: spawnAll
	// re-derives it from surviving state, and decisions a squash cannot
	// touch — retired early exits, an exhausted iteration space — re-latch
	// immediately via nextIdentity.
	sr.stopSpawn = false
}

// complete handles segment completion: control-dependence verification
// against the speculatively spawned successor, then commit of the oldest
// chain.
func (sr *specRunner) complete(inst *instance) {
	sr.heapRemove(inst)
	inst.state = stDone
	inst.doneTime = inst.clock
	inst.exitReq = inst.m.ExitRequested
	inst.actualNext = sr.actualNext(inst)
	wi := inst.age - sr.baseAge
	if len(sr.window) > wi+1 {
		spawned := sr.window[wi+1]
		wrong := false
		if sr.r.Kind == ir.LoopRegion {
			wrong = inst.actualNext == exitNext
		} else {
			wrong = inst.actualNext != spawned.seg.ID
		}
		if wrong {
			// Control dependence violation: the successor segment is
			// different from the speculatively chosen one (HOSE
			// Property 5); roll back all younger segments.
			sr.stats.ControlViolations++
			if sr.tracing {
				sr.trace("t=%d age %d control violation (actual next %d)", inst.doneTime, inst.age, inst.actualNext)
			}
			sr.truncateAfter(inst)
		}
	}
	sr.retireChain()
	sr.spawnAll()
}

// actualNext computes the true successor of a completed instance.
func (sr *specRunner) actualNext(inst *instance) int {
	if inst.exitReq {
		return exitNext
	}
	if sr.r.Kind == ir.LoopRegion {
		if inst.age+1 >= len(sr.iters) {
			return exitNext
		}
		return sr.r.Segments[0].ID
	}
	return nextSegment(inst.seg, inst.m)
}

// truncateAfter discards the (wrongly speculated) instances younger than
// inst, freeing their processors.
func (sr *specRunner) truncateAfter(inst *instance) {
	t := inst.doneTime
	wi := inst.age - sr.baseAge
	for _, v := range sr.window[wi+1:] {
		if v.state == stStalled {
			sr.stats.OverflowStallCycles += t - v.stallStart
		}
		if v.state == stRunning {
			sr.heapRemove(v)
		}
		if sr.tl != nil {
			sr.tl.Add(obs.Event{Kind: obs.EvSquash, Time: t,
				Dur:  sinceSpawn(t, v.spawnTime),
				Proc: int32(v.proc), Age: int32(v.age), Seg: int32(v.seg.ID),
				Ref: -1, Cause: obs.CauseControlViolation})
		}
		sr.procFree[v.proc] = t + sr.cfg.RollbackPenalty
		sr.procInst[v.proc] = nil
		sr.stats.SquashedSegments++
		sr.recycle(v)
	}
	for i := wi + 1; i < len(sr.window); i++ {
		sr.window[i] = nil
	}
	sr.window = sr.window[:wi+1]
	sr.nextAge = inst.age + 1
	sr.stopSpawn = inst.actualNext == exitNext
}

// popOldest removes window[0] (which must be retired) while keeping the
// backing array in place, so the window never reallocates.
func (sr *specRunner) popOldest() {
	n := len(sr.window)
	copy(sr.window, sr.window[1:])
	sr.window[n-1] = nil
	sr.window = sr.window[:n-1]
	sr.baseAge++
}

// retireChain commits completed segments in age order (HOSE Property 6):
// only the oldest segment may commit, and commits are serialized.
func (sr *specRunner) retireChain() {
	for len(sr.window) > 0 && sr.window[0].state == stDone {
		inst := sr.window[0]
		entries := inst.buf.AppendWritten(sr.commit[:0])
		start := inst.doneTime
		if sr.commitFree > start {
			start = sr.commitFree
		}
		// Committed values drain through the memory hierarchy: each entry
		// pays the commit overhead plus the (possibly missing) cache
		// access, serialized on the commit chain. This is what makes
		// speculative-storage pressure expensive and what idempotent
		// references avoid by writing through during execution.
		t := start
		for _, e := range entries {
			t += sr.cfg.CommitPerEntry + sr.hier.Access(inst.proc, e.Addr)
			sr.mem[e.Addr] = e.Value
		}
		sr.stats.CommittedEntries += int64(len(entries))
		sr.commit = entries[:0]
		if sr.tracing {
			sr.trace("t=%d age %d retires (%d entries committed)", t, inst.age, len(entries))
		}
		if sr.tl != nil {
			sr.tl.Add(obs.Event{Kind: obs.EvCommit, Time: t,
				Dur:  sinceSpawn(t, inst.spawnTime),
				Proc: int32(inst.proc), Age: int32(inst.age), Seg: int32(inst.seg.ID),
				Ref: -1, Aux: int64(len(entries))})
		}
		sr.commitFree = t
		inst.state = stRetired
		inst.buf.Reset()

		sr.stats.DynRefs += inst.tally.total
		sr.stats.IdemRefs += inst.tally.idem
		sr.stats.SpecPromotedRefs += inst.tally.promo
		for c := range inst.tally.byCat {
			sr.stats.RefsByCategory[c] += inst.tally.byCat[c]
		}
		sr.stats.Instructions += inst.tally.instrs
		sr.stats.SegmentsRetired++

		sr.procFree[inst.proc] = t
		sr.procInst[inst.proc] = nil
		sr.lastRetiredNext = inst.actualNext
		earlyExit := inst.actualNext == exitNext
		sr.popOldest()
		sr.recycle(inst)

		// If the new oldest was stalled on overflow, it is now
		// non-speculative and may proceed.
		if len(sr.window) > 0 {
			n := sr.window[0]
			if n.state == stStalled {
				sr.stats.OverflowStallCycles += t - n.stallStart
				n.state = stRunning
				if n.clock < t {
					n.clock = t
				}
				sr.heapPush(n)
			}
		}
		// An early-exiting oldest segment ends the region: discard any
		// younger speculation that survived (it was squashed at
		// completion time already unless it completed later).
		if earlyExit && len(sr.window) > 0 {
			sr.truncateAfterRetired(t)
		}
	}
}

// truncateAfterRetired drops younger instances after a retired early-exit
// segment.
func (sr *specRunner) truncateAfterRetired(t int64) {
	for i, v := range sr.window {
		if v.state == stStalled {
			sr.stats.OverflowStallCycles += t - v.stallStart
		}
		if v.state == stRunning {
			sr.heapRemove(v)
		}
		if sr.tl != nil {
			sr.tl.Add(obs.Event{Kind: obs.EvSquash, Time: t,
				Dur:  sinceSpawn(t, v.spawnTime),
				Proc: int32(v.proc), Age: int32(v.age), Seg: int32(v.seg.ID),
				Ref: -1, Cause: obs.CauseEarlyExitRevoke})
		}
		sr.procFree[v.proc] = t
		sr.procInst[v.proc] = nil
		sr.stats.SquashedSegments++
		sr.recycle(v)
		sr.window[i] = nil
	}
	sr.window = sr.window[:0]
	sr.nextAge = sr.baseAge
	sr.stopSpawn = true
}
