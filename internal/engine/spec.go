package engine

import (
	"fmt"

	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/specmem"
	"refidem/internal/vm"
)

// instState is the lifecycle of one segment instance.
type instState uint8

const (
	// stRunning: executing (or ready to execute) on its processor.
	stRunning instState = iota
	// stStalled: blocked on speculative storage overflow until oldest.
	stStalled
	// stDone: finished, waiting to become oldest and commit.
	stDone
	// stRetired: committed.
	stRetired
)

// unknownNext marks an instance whose successor is not yet known; exitNext
// marks the region exit.
const (
	unknownNext = -2
	exitNext    = -1
)

// refTally accumulates per-execution reference counts; it is discarded on
// squash and flushed into Stats at retirement, so the reported fractions
// describe final executions only (matching the paper's measurements).
type refTally struct {
	total  int64
	idem   int64
	byCat  [8]int64
	instrs int64
}

// instance is one speculative segment execution (one loop iteration or one
// CFG segment).
type instance struct {
	age    int
	seg    *ir.Segment
	idxVal int64
	m      *vm.Machine
	buf    *specmem.Buffer
	proc   int
	state  instState
	clock  int64

	doneTime   int64
	exitReq    bool
	actualNext int
	pendingEv  *vm.Event
	stallStart int64
	tally      refTally
}

// RunSpeculative executes the program under HOSE or CASE. labelings must
// come from idem.LabelProgram on the same program: CASE uses the labels to
// route references, and both modes use the private sets to address the
// per-segment private stacks of the privatized program.
func RunSpeculative(p *ir.Program, labelings map[*ir.Region]*idem.Result, cfg Config, mode Mode) (*Result, error) {
	if mode != HOSE && mode != CASE {
		return nil, fmt.Errorf("engine: RunSpeculative wants HOSE or CASE, got %v", mode)
	}
	if cfg.Processors < 1 {
		return nil, fmt.Errorf("engine: need at least one processor")
	}
	layout := NewLayout(p, labelings, cfg.Processors)
	mem := NewMemory(layout, cfg.Seed)
	hier := specmem.NewHierarchy(cfg.Processors, cfg.Hier)
	res := &Result{Mode: mode, Layout: layout, Memory: mem}

	var now int64
	var events int64
	for _, region := range p.Regions {
		lab := labelings[region]
		if lab == nil {
			return nil, fmt.Errorf("engine: no labeling for region %q", region.Name)
		}
		run := &specRunner{
			cfg: &cfg, mode: mode, r: region, lab: lab,
			layout: layout, mem: mem, hier: hier, stats: &res.Stats,
			codes: compileRegion(region), iters: region.IndexValues(),
			events: &events,
		}
		end, err := run.run(now)
		if err != nil {
			return nil, fmt.Errorf("engine: region %q: %w", region.Name, err)
		}
		now = end
	}
	res.Cycles = now
	return res, nil
}

// specRunner executes one region speculatively.
type specRunner struct {
	cfg    *Config
	mode   Mode
	r      *ir.Region
	lab    *idem.Result
	layout *Layout
	mem    []int64
	hier   *specmem.Hierarchy
	stats  *Stats
	codes  map[int]*vm.Code
	iters  []int64
	events *int64

	insts      []*instance
	oldest     int
	stopSpawn  bool
	procFree   []int64
	procInst   []*instance
	commitFree int64

	segPrivate map[int]bool
}

func (sr *specRunner) run(start int64) (int64, error) {
	sr.procFree = make([]int64, sr.cfg.Processors)
	sr.procInst = make([]*instance, sr.cfg.Processors)
	for i := range sr.procFree {
		sr.procFree[i] = start
	}
	sr.commitFree = start
	sr.segPrivate = make(map[int]bool, len(sr.r.Segments))
	for _, seg := range sr.r.Segments {
		sr.segPrivate[seg.ID] = sr.segmentUsesPrivate(seg)
	}
	sr.spawnAll()
	for {
		inst := sr.pick()
		if inst == nil {
			if sr.oldest == len(sr.insts) && sr.stopSpawn {
				break
			}
			return 0, fmt.Errorf("no runnable instance (oldest=%d insts=%d stop=%v)", sr.oldest, len(sr.insts), sr.stopSpawn)
		}
		*sr.events++
		if *sr.events > sr.cfg.MaxEvents {
			return 0, fmt.Errorf("exceeded %d events (livelock?)", sr.cfg.MaxEvents)
		}
		sr.advance(inst)
	}
	end := sr.commitFree
	if end < start {
		end = start
	}
	return end, nil
}

// pick returns the running instance with the smallest clock (ties to the
// oldest), or nil.
func (sr *specRunner) pick() *instance {
	var best *instance
	for _, inst := range sr.insts[sr.oldest:] {
		if inst.state != stRunning {
			continue
		}
		if best == nil || inst.clock < best.clock {
			best = inst
		}
	}
	return best
}

// segmentUsesPrivate reports whether a segment references any privatized
// variable (such segments pay the stack setup cost).
func (sr *specRunner) segmentUsesPrivate(seg *ir.Segment) bool {
	for _, ref := range sr.r.SegRefs(seg.ID) {
		if sr.lab.Info.Private[ref.Var] {
			return true
		}
	}
	return false
}

// nextIdentity determines the segment the next spawned instance should
// execute: the actual successor when the predecessor has completed, the
// statically predicted successor (first CFG edge / next loop iteration)
// otherwise. It returns exitNext when the region is known or predicted to
// end.
func (sr *specRunner) nextIdentity() int {
	age := len(sr.insts)
	if sr.r.Kind == ir.LoopRegion {
		if age >= len(sr.iters) {
			return exitNext
		}
		if age > 0 {
			prev := sr.insts[age-1]
			if (prev.state == stDone || prev.state == stRetired) && prev.actualNext == exitNext {
				return exitNext
			}
		}
		return sr.r.Segments[0].ID
	}
	if age == 0 {
		return sr.r.Segments[0].ID
	}
	prev := sr.insts[age-1]
	if prev.state == stDone || prev.state == stRetired {
		return prev.actualNext
	}
	if len(prev.seg.Succs) == 0 {
		return exitNext
	}
	return prev.seg.Succs[0] // static prediction: first edge
}

// spawnAll creates instances for free processors, oldest first.
func (sr *specRunner) spawnAll() {
	for !sr.stopSpawn {
		segID := sr.nextIdentity()
		if segID == exitNext {
			sr.stopSpawn = true
			return
		}
		proc := -1
		for p := range sr.procInst {
			if sr.procInst[p] != nil {
				continue
			}
			if proc == -1 || sr.procFree[p] < sr.procFree[proc] {
				proc = p
			}
		}
		if proc == -1 {
			return
		}
		age := len(sr.insts)
		var idxVal int64
		if sr.r.Kind == ir.LoopRegion {
			idxVal = sr.iters[age]
		}
		inst := &instance{
			age: age, seg: sr.r.Seg(segID), idxVal: idxVal,
			m:          vm.NewMachine(sr.codes[segID], idxVal),
			buf:        sr.newBuffer(),
			proc:       proc,
			state:      stRunning,
			actualNext: unknownNext,
		}
		inst.clock = sr.procFree[proc] + sr.cfg.DispatchCost
		if sr.segPrivate[segID] {
			inst.clock += sr.cfg.StackSetupCost
		}
		sr.insts = append(sr.insts, inst)
		sr.procInst[proc] = inst
	}
}

// newBuffer builds one segment's speculative storage per the configured
// organization.
func (sr *specRunner) newBuffer() *specmem.Buffer {
	if sr.cfg.SpecSets > 1 {
		ways := sr.cfg.SpecCapacity / sr.cfg.SpecSets
		if ways < 1 {
			ways = 1
		}
		return specmem.NewSetAssocBuffer(sr.cfg.SpecSets, ways)
	}
	return specmem.NewBuffer(sr.cfg.SpecCapacity)
}

// advance processes one event of the instance.
func (sr *specRunner) advance(inst *instance) {
	before := inst.clock
	defer func() {
		if inst.clock > before {
			sr.stats.BusyCycles += inst.clock - before
		}
	}()
	var ev vm.Event
	if inst.pendingEv != nil {
		ev = *inst.pendingEv
		inst.pendingEv = nil
	} else {
		var ops int
		ev, ops = inst.m.Step()
		inst.clock += int64(ops) * sr.cfg.OpCost
		inst.tally.instrs += int64(ops)
	}
	switch ev.Kind {
	case vm.EvDone:
		sr.complete(inst)
	case vm.EvLoad:
		sr.doLoad(inst, ev)
	case vm.EvStore:
		sr.doStore(inst, ev)
	}
}

// addrOf resolves a reference instance to a flat address, routing
// privatized variables to the processor's private stack frame.
func (sr *specRunner) addrOf(inst *instance, ref *ir.Ref, subs []int64) int64 {
	priv := sr.lab.Info.Private[ref.Var]
	return sr.layout.Addr(ref.Var, subs, priv, inst.proc)
}

// isIdem reports whether the reference bypasses speculative storage.
func (sr *specRunner) isIdem(ref *ir.Ref) bool {
	return sr.mode == CASE && sr.lab.Labels[ref] == idem.Idempotent
}

func (sr *specRunner) tally(inst *instance, ref *ir.Ref) {
	inst.tally.total++
	if sr.lab.Labels[ref] == idem.Idempotent {
		inst.tally.idem++
	}
	inst.tally.byCat[int(sr.lab.Categories[ref])]++
}

func (sr *specRunner) trackOccupancy(inst *instance) {
	if n := inst.buf.Size(); n > sr.stats.PeakSpecOccupancy {
		sr.stats.PeakSpecOccupancy = n
	}
}

// doLoad resolves a read reference.
func (sr *specRunner) doLoad(inst *instance, ev vm.Event) {
	addr := sr.addrOf(inst, ev.Ref, ev.Subs)
	if sr.isIdem(ev.Ref) {
		// Idempotent reads completely bypass the speculative storage and
		// reference the non-speculative storage directly (Definition 4).
		inst.m.ResumeLoad(sr.mem[addr])
		inst.clock += sr.hier.Access(inst.proc, addr)
		sr.tally(inst, ev.Ref)
		return
	}
	// Speculative read: own buffer, then youngest ancestor, then
	// non-speculative storage (HOSE Property 4).
	if e := inst.buf.Lookup(addr); e != nil && (e.Written || e.ReadFromBelow) {
		inst.m.ResumeLoad(e.Value)
		inst.clock += sr.cfg.SpecLatency
		sr.tally(inst, ev.Ref)
		return
	}
	val := int64(0)
	srcAge := -1
	var lat int64
	found := false
	for a := inst.age - 1; a >= sr.oldest; a-- {
		anc := sr.insts[a]
		if anc.state == stRetired {
			break
		}
		if e := anc.buf.Lookup(addr); e != nil && e.Written {
			val, srcAge, lat, found = e.Value, a, sr.cfg.SpecLatency, true
			break
		}
	}
	if !found {
		val = sr.mem[addr]
		lat = sr.hier.Access(inst.proc, addr)
	}
	if !inst.buf.NoteRead(addr, val, srcAge) {
		sr.stats.Overflows++
		if inst.age != sr.oldest {
			sr.stall(inst, ev)
			return
		}
		// The oldest segment is non-speculative: proceed untracked.
	}
	sr.trackOccupancy(inst)
	inst.m.ResumeLoad(val)
	inst.clock += lat
	sr.tally(inst, ev.Ref)
}

// doStore resolves a write reference.
func (sr *specRunner) doStore(inst *instance, ev vm.Event) {
	addr := sr.addrOf(inst, ev.Ref, ev.Subs)
	// Both speculative and idempotent writes first check for prematurely
	// executed speculative loads in younger segments (Definition 4 /
	// HOSE Property 5).
	sr.checkViolation(inst, addr)
	if sr.isIdem(ev.Ref) {
		// The value goes directly to non-speculative storage; nothing is
		// kept in speculative storage.
		sr.mem[addr] = ev.Value
		inst.clock += sr.hier.Access(inst.proc, addr)
		sr.tally(inst, ev.Ref)
		return
	}
	if !inst.buf.Write(addr, ev.Value) {
		sr.stats.Overflows++
		if inst.age != sr.oldest {
			sr.stall(inst, ev)
			return
		}
		// Oldest: write through to non-speculative storage.
		sr.mem[addr] = ev.Value
		inst.clock += sr.hier.Access(inst.proc, addr)
	} else {
		inst.clock += sr.cfg.SpecLatency
		sr.trackOccupancy(inst)
	}
	sr.tally(inst, ev.Ref)
}

// stall parks the instance until it becomes the oldest (speculative
// storage overflow: "execution halts until speculation is resolved").
func (sr *specRunner) stall(inst *instance, ev vm.Event) {
	sr.trace("t=%d age %d stalls on overflow (buffer %d/%d)",
		inst.clock, inst.age, inst.buf.Size(), inst.buf.Capacity())
	inst.pendingEv = &ev
	inst.state = stStalled
	inst.stallStart = inst.clock
}

// checkViolation detects flow-dependence violations: a younger segment
// consumed this location from a source no younger than the writer. The
// speculation engine rolls back the violating segment and everything
// younger.
func (sr *specRunner) checkViolation(writer *instance, addr int64) {
	for a := writer.age + 1; a < len(sr.insts); a++ {
		v := sr.insts[a]
		if v.state == stRetired {
			continue
		}
		if v.buf.PrematureRead(addr, writer.age) != nil {
			sr.stats.FlowViolations++
			sr.trace("t=%d age %d write to addr %d violates premature read by age %d",
				writer.clock, writer.age, addr, a)
			sr.squashFrom(a, writer.clock)
			return
		}
	}
}

// trace writes one engine-event line when tracing is enabled.
func (sr *specRunner) trace(format string, args ...any) {
	if sr.cfg.Trace != nil {
		fmt.Fprintf(sr.cfg.Trace, "[%s] "+format+"\n", append([]any{sr.r.Name}, args...)...)
	}
}

// squashFrom rolls back instances age..youngest: buffers cleared, machines
// reset, restart after the rollback penalty (HOSE Property 2).
func (sr *specRunner) squashFrom(age int, t int64) {
	sr.trace("t=%d squash ages %d..%d (flow violation)", t, age, len(sr.insts)-1)
	for a := age; a < len(sr.insts); a++ {
		inst := sr.insts[a]
		if inst.state == stRetired {
			continue
		}
		if inst.state == stStalled {
			sr.stats.OverflowStallCycles += t - inst.stallStart
		}
		inst.m.Reset()
		inst.buf.Clear()
		inst.pendingEv = nil
		inst.exitReq = false
		inst.actualNext = unknownNext
		inst.state = stRunning
		inst.clock = t + sr.cfg.RollbackPenalty
		inst.doneTime = 0
		inst.tally = refTally{}
		sr.stats.SquashedSegments++
	}
}

// complete handles segment completion: control-dependence verification
// against the speculatively spawned successor, then commit of the oldest
// chain.
func (sr *specRunner) complete(inst *instance) {
	inst.state = stDone
	inst.doneTime = inst.clock
	inst.exitReq = inst.m.ExitRequested
	inst.actualNext = sr.actualNext(inst)
	if len(sr.insts) > inst.age+1 {
		spawned := sr.insts[inst.age+1]
		wrong := false
		if sr.r.Kind == ir.LoopRegion {
			wrong = inst.actualNext == exitNext
		} else {
			wrong = inst.actualNext != spawned.seg.ID
		}
		if wrong {
			// Control dependence violation: the successor segment is
			// different from the speculatively chosen one (HOSE
			// Property 5); roll back all younger segments.
			sr.stats.ControlViolations++
			sr.trace("t=%d age %d control violation (actual next %d)", inst.doneTime, inst.age, inst.actualNext)
			sr.truncateAfter(inst)
		}
	}
	sr.retireChain()
	sr.spawnAll()
}

// actualNext computes the true successor of a completed instance.
func (sr *specRunner) actualNext(inst *instance) int {
	if inst.exitReq {
		return exitNext
	}
	if sr.r.Kind == ir.LoopRegion {
		if inst.age+1 >= len(sr.iters) {
			return exitNext
		}
		return sr.r.Segments[0].ID
	}
	return nextSegment(inst.seg, inst.m)
}

// truncateAfter discards the (wrongly speculated) instances younger than
// inst, freeing their processors.
func (sr *specRunner) truncateAfter(inst *instance) {
	t := inst.doneTime
	for a := inst.age + 1; a < len(sr.insts); a++ {
		v := sr.insts[a]
		if v.state == stStalled {
			sr.stats.OverflowStallCycles += t - v.stallStart
		}
		sr.procFree[v.proc] = t + sr.cfg.RollbackPenalty
		sr.procInst[v.proc] = nil
		sr.stats.SquashedSegments++
	}
	sr.insts = sr.insts[:inst.age+1]
	sr.stopSpawn = inst.actualNext == exitNext
}

// retireChain commits completed segments in age order (HOSE Property 6):
// only the oldest segment may commit, and commits are serialized.
func (sr *specRunner) retireChain() {
	for sr.oldest < len(sr.insts) && sr.insts[sr.oldest].state == stDone {
		inst := sr.insts[sr.oldest]
		entries := inst.buf.WrittenEntries()
		start := inst.doneTime
		if sr.commitFree > start {
			start = sr.commitFree
		}
		// Committed values drain through the memory hierarchy: each entry
		// pays the commit overhead plus the (possibly missing) cache
		// access, serialized on the commit chain. This is what makes
		// speculative-storage pressure expensive and what idempotent
		// references avoid by writing through during execution.
		t := start
		for _, e := range entries {
			t += sr.cfg.CommitPerEntry + sr.hier.Access(inst.proc, e.Addr)
			sr.mem[e.Addr] = e.Value
		}
		sr.stats.CommittedEntries += int64(len(entries))
		sr.trace("t=%d age %d retires (%d entries committed)", t, inst.age, len(entries))
		sr.commitFree = t
		inst.state = stRetired
		inst.buf.Clear()

		sr.stats.DynRefs += inst.tally.total
		sr.stats.IdemRefs += inst.tally.idem
		for c := range inst.tally.byCat {
			sr.stats.RefsByCategory[c] += inst.tally.byCat[c]
		}
		sr.stats.Instructions += inst.tally.instrs
		sr.stats.SegmentsRetired++

		sr.procFree[inst.proc] = t
		sr.procInst[inst.proc] = nil
		sr.oldest++

		// If the new oldest was stalled on overflow, it is now
		// non-speculative and may proceed.
		if sr.oldest < len(sr.insts) {
			n := sr.insts[sr.oldest]
			if n.state == stStalled {
				sr.stats.OverflowStallCycles += t - n.stallStart
				n.state = stRunning
				if n.clock < t {
					n.clock = t
				}
			}
		}
		// An early-exiting oldest segment ends the region: discard any
		// younger speculation that survived (it was squashed at
		// completion time already unless it completed later).
		if inst.actualNext == exitNext && sr.oldest < len(sr.insts) {
			sr.truncateAfterRetired(inst, t)
		}
	}
}

// truncateAfterRetired drops younger instances after a retired early-exit
// segment.
func (sr *specRunner) truncateAfterRetired(inst *instance, t int64) {
	for a := sr.oldest; a < len(sr.insts); a++ {
		v := sr.insts[a]
		if v.state == stStalled {
			sr.stats.OverflowStallCycles += t - v.stallStart
		}
		sr.procFree[v.proc] = t
		sr.procInst[v.proc] = nil
		sr.stats.SquashedSegments++
	}
	sr.insts = sr.insts[:sr.oldest]
	sr.stopSpawn = true
}
