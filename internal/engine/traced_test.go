package engine

import (
	"testing"

	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/lang"
	"refidem/internal/workloads"
)

// runTracedPair labels p and runs it sequentially plus speculatively in
// the given mode with tracing on, asserting live-out equality.
func runTracedPair(t *testing.T, p *ir.Program, cfg Config, mode Mode) *Result {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	labs := idem.LabelProgram(p)
	seq, err := RunSequential(p, cfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	cfg.Traced = true
	res, err := RunSpeculative(p, labs, cfg, mode)
	if err != nil {
		t.Fatalf("traced %v: %v", mode, err)
	}
	if err := LiveOutMismatch(p, labs, seq, res); err != nil {
		t.Errorf("traced %v live-outs: %v", mode, err)
	}
	return res
}

// TestTracedLiveOutsMatchSequential runs every named workload loop under
// both traced engines and both machine configs: Definition 3 equivalence
// must survive the trace tier.
func TestTracedLiveOutsMatchSequential(t *testing.T) {
	var iters int64
	for _, cfgName := range []string{"default", "pressure"} {
		cfg := DefaultConfig()
		if cfgName == "pressure" {
			cfg = PressureConfig()
		}
		for _, spec := range workloads.NamedLoops() {
			for _, mode := range []Mode{HOSE, CASE} {
				res := runTracedPair(t, spec.Program(), cfg, mode)
				iters += res.Stats.TraceIterations
				if t.Failed() {
					t.Fatalf("first failure: %s under %s/%v", spec, cfgName, mode)
				}
			}
		}
	}
	if iters == 0 {
		t.Fatal("no trace iterations across the whole workload suite: the tier never engaged")
	}
}

// TestTracedGuardElision is the labels-ignored vs labels-honored
// ablation: HOSE traces (no labels consulted — nothing bypasses) must
// guard every memory op, CASE traces must elide the idempotent ones, and
// the guarded-op count must drop.
func TestTracedGuardElision(t *testing.T) {
	spec, ok := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	if !ok {
		t.Fatal("TOMCATV MAIN_DO80 missing")
	}
	hose := runTracedPair(t, spec.Program(), DefaultConfig(), HOSE)
	caseR := runTracedPair(t, spec.Program(), DefaultConfig(), CASE)

	if hose.Stats.TraceElidedOps != 0 {
		t.Errorf("HOSE traced elided %d ops; labels must not be consulted", hose.Stats.TraceElidedOps)
	}
	if hose.Stats.TraceGuardedOps == 0 {
		t.Fatal("HOSE traced guarded no ops: trace never ran")
	}
	if caseR.Stats.TraceElidedOps == 0 {
		t.Fatal("CASE traced elided nothing: labels bought no guards back")
	}
	if caseR.Stats.TraceGuardedOps >= hose.Stats.TraceGuardedOps {
		t.Errorf("guard elision: CASE guarded %d ops, HOSE %d — labels should reduce guards",
			caseR.Stats.TraceGuardedOps, hose.Stats.TraceGuardedOps)
	}
}

// TestTracedSuperblockCacheReuse runs the same program twice: the second
// run must reuse the published superblock instead of re-recording.
func TestTracedSuperblockCacheReuse(t *testing.T) {
	spec, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	p := spec.Program()
	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	cfg.Traced = true

	first, err := RunSpeculative(p, labs, cfg, CASE)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.TracesCompiled == 0 {
		t.Fatal("first run compiled no traces")
	}
	second, err := RunSpeculative(p, labs, cfg, CASE)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.TracesCompiled != 0 {
		t.Errorf("second run recompiled %d traces; want cache reuse", second.Stats.TracesCompiled)
	}
	if second.Stats.TraceIterations == 0 {
		t.Error("second run executed no trace iterations despite a cached superblock")
	}
}

// TestTracedLabelOverrideChangesKey flips one idempotent reference to
// speculative: the traced cache must not serve the superblock compiled
// for the original labeling (stale elision bits would bypass speculative
// storage for a now-speculative reference).
func TestTracedLabelOverrideChangesKey(t *testing.T) {
	spec, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	p := spec.Program()
	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	cfg.Traced = true
	if _, err := RunSpeculative(p, labs, cfg, CASE); err != nil {
		t.Fatal(err)
	}
	// Demote the first idempotent reference (always safe) and rerun.
	r := p.Regions[0]
	lab := labs[r]
	var flipped *ir.Ref
	for _, ref := range r.Refs {
		if lab.Label(ref) == idem.Idempotent {
			lab.SetLabel(ref, idem.Speculative)
			flipped = ref
			break
		}
	}
	if flipped == nil {
		t.Skip("no idempotent reference to flip")
	}
	seq, err := RunSequential(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSpeculative(p, labs, cfg, CASE)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TracesCompiled == 0 {
		t.Error("override did not force a fresh superblock (stale cache key)")
	}
	if err := LiveOutMismatch(p, labs, seq, res); err != nil {
		t.Errorf("live-outs after override: %v", err)
	}
}

// TestTracedEarlyExitRegion pins traced behavior on a region with a
// data-dependent exit: the exit statement stays outside any superblock
// (OpExit is uncompilable), the inner loop still traces, and results
// match the sequential engine.
func TestTracedEarlyExitRegion(t *testing.T) {
	src := `
program early
var a[64]
var s
region r loop j = 0 to 40 {
  liveout a, s
  for i = 0 to 15 {
    a[i] = a[i] + j
  }
  s = s + 1
  exit if s >= 25
}
`
	for _, mode := range []Mode{HOSE, CASE} {
		res := runTracedPair(t, lang.MustParse(src), DefaultConfig(), mode)
		if res.Stats.TraceIterations == 0 {
			t.Errorf("%v: inner loop should still trace (exit is outside it)", mode)
		}
	}
}
