package engine

import (
	"strings"
	"testing"

	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/obs"
	"refidem/internal/workloads"
)

// countKinds tallies a timeline's events by kind and by squash cause.
func countKinds(tl *obs.Timeline) (kinds map[obs.EventKind]int64, causes map[obs.Cause]int64) {
	kinds = map[obs.EventKind]int64{}
	causes = map[obs.Cause]int64{}
	for i := range tl.Events {
		e := &tl.Events[i]
		kinds[e.Kind]++
		if e.Kind == obs.EvSquash || e.Kind == obs.EvStall {
			causes[e.Cause]++
		}
	}
	return kinds, causes
}

// TestTimelineDoesNotPerturbRun is the load-bearing invariant: attaching
// a timeline must change nothing about the simulation — not cycles, not
// memory, not a single statistic.
func TestTimelineDoesNotPerturbRun(t *testing.T) {
	for _, traced := range []bool{false, true} {
		for _, mode := range []Mode{HOSE, CASE} {
			p := chain(32)
			labs := idem.LabelProgram(p)
			cfg := DefaultConfig()
			cfg.Traced = traced
			bare, err := RunSpeculative(p, labs, cfg, mode)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Timeline = &obs.Timeline{}
			timed, err := RunSpeculative(p, labs, cfg, mode)
			if err != nil {
				t.Fatal(err)
			}
			if bare.Cycles != timed.Cycles {
				t.Errorf("%v traced=%v: cycles %d != %d with timeline", mode, traced, bare.Cycles, timed.Cycles)
			}
			if bare.Stats != timed.Stats {
				t.Errorf("%v traced=%v: stats diverge with timeline:\n%+v\n%+v", mode, traced, bare.Stats, timed.Stats)
			}
			for i := range bare.Memory {
				if bare.Memory[i] != timed.Memory[i] {
					t.Fatalf("%v traced=%v: memory[%d] %d != %d with timeline", mode, traced, i, bare.Memory[i], timed.Memory[i])
				}
			}
		}
	}
}

// TestTimelineFlowViolationAttribution runs the serial dependence chain
// and checks the squash events carry the violating write with its label.
func TestTimelineFlowViolationAttribution(t *testing.T) {
	p := chain(32)
	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	tl := &obs.Timeline{}
	cfg.Timeline = tl
	res, err := RunSpeculative(p, labs, cfg, HOSE)
	if err != nil {
		t.Fatal(err)
	}
	kinds, causes := countKinds(tl)
	if kinds[obs.EvSpawn] == 0 {
		t.Error("no spawn events recorded")
	}
	if kinds[obs.EvCommit] != res.Stats.SegmentsRetired {
		t.Errorf("commit events = %d, want SegmentsRetired = %d", kinds[obs.EvCommit], res.Stats.SegmentsRetired)
	}
	if kinds[obs.EvSquash] != res.Stats.SquashedSegments {
		t.Errorf("squash events = %d, want SquashedSegments = %d", kinds[obs.EvSquash], res.Stats.SquashedSegments)
	}
	if causes[obs.CauseFlowViolation] == 0 {
		t.Fatal("serial chain squashes must be attributed to flow violations")
	}
	if len(tl.Regions) != 1 || tl.Regions[0].Name != "r" {
		t.Fatalf("regions = %+v, want the one chain region", tl.Regions)
	}
	if tl.Regions[0].End < tl.Regions[0].Start {
		t.Fatalf("region never closed: %+v", tl.Regions[0])
	}
	attributed := false
	for i := range tl.Events {
		e := &tl.Events[i]
		if e.Kind != obs.EvSquash || e.Cause != obs.CauseFlowViolation {
			continue
		}
		if e.Dur < 0 {
			t.Fatalf("negative squash duration: %+v", e)
		}
		info, ok := tl.RefInfo(e)
		if !ok {
			t.Fatalf("flow-violation squash with unresolvable ref: %+v", e)
		}
		if !strings.HasPrefix(info.Text, "write x") {
			t.Fatalf("violating ref rendered %q, want the write to x", info.Text)
		}
		if info.Label == "" || info.Category == "" {
			t.Fatalf("ref info missing labeling: %+v", info)
		}
		attributed = true
	}
	if !attributed {
		t.Fatal("no attributed flow-violation squash found")
	}
}

// TestTimelineOverflowStalls checks stall events under capacity pressure.
func TestTimelineOverflowStalls(t *testing.T) {
	p := workloads.ButsDO1(8)
	labs := idem.LabelProgram(p)
	cfg := PressureConfig()
	tl := &obs.Timeline{}
	cfg.Timeline = tl
	res, err := RunSpeculative(p, labs, cfg, HOSE)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Overflows == 0 {
		t.Skip("pressure config no longer overflows this workload")
	}
	kinds, causes := countKinds(tl)
	if kinds[obs.EvStall] == 0 {
		t.Fatal("overflowing run recorded no stall events")
	}
	if causes[obs.CauseOverflow] != kinds[obs.EvStall] {
		t.Errorf("stalls carry cause %v, want all overflow", causes)
	}
	for i := range tl.Events {
		if e := &tl.Events[i]; e.Kind == obs.EvStall && e.Aux <= 0 {
			t.Fatalf("stall without buffer occupancy: %+v", e)
		}
	}
}

// TestTimelineControlAndRevokeSquashes checks the non-flow squash causes:
// speculation past a mispredicted successor (control violation) and past
// a retired early exit (revoke).
func TestTimelineControlAndRevokeSquashes(t *testing.T) {
	p := ir.NewProgram("exit")
	a := p.AddVar("a", 40)
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: 31, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.AddE(ir.Idx("k"), ir.C(100))},
			&ir.ExitRegion{Cond: ir.Op(ir.Ge, ir.Idx("k"), ir.C(6))},
		}}}}
	r.Ann.LiveOut = map[string]bool{"a": true}
	r.Finalize()
	p.AddRegion(r)

	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	tl := &obs.Timeline{}
	cfg.Timeline = tl
	res, err := RunSpeculative(p, labs, cfg, HOSE)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ControlViolations == 0 {
		t.Fatal("early exit must register a control violation")
	}
	kinds, causes := countKinds(tl)
	if kinds[obs.EvSquash] != res.Stats.SquashedSegments {
		t.Errorf("squash events = %d, want %d", kinds[obs.EvSquash], res.Stats.SquashedSegments)
	}
	if causes[obs.CauseControlViolation]+causes[obs.CauseEarlyExitRevoke] == 0 {
		t.Fatalf("no control/revoke squash recorded: %v", causes)
	}
}

// TestTimelineTraceJITEvents checks the trace tier reports its activity.
func TestTimelineTraceJITEvents(t *testing.T) {
	spec, ok := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	if !ok {
		t.Fatal("workload TOMCATV/MAIN_DO80 missing")
	}
	p := spec.Program()
	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	cfg.Traced = true
	tl := &obs.Timeline{}
	cfg.Timeline = tl
	res, err := RunSpeculative(p, labs, cfg, CASE)
	if err != nil {
		t.Fatal(err)
	}
	kinds, _ := countKinds(tl)
	if kinds[obs.EvTraceCompile] != res.Stats.TracesCompiled {
		t.Errorf("compile events = %d, want TracesCompiled = %d", kinds[obs.EvTraceCompile], res.Stats.TracesCompiled)
	}
	if res.Stats.TracesCompiled == 0 {
		t.Fatal("trace tier never compiled on the tomcatv loop")
	}
	if kinds[obs.EvTraceEnter] == 0 {
		t.Error("no trace-enter events")
	}
	if kinds[obs.EvTraceBailout] != res.Stats.TraceBailouts {
		t.Errorf("bailout events = %d, want TraceBailouts = %d", kinds[obs.EvTraceBailout], res.Stats.TraceBailouts)
	}
}
