// Package engine executes programs under the paper's three execution
// models: sequential (the correctness ground truth and the uniprocessor
// baseline for speedups), HOSE (hardware-only speculative execution,
// Definition 2) and CASE (compiler-assisted speculative execution,
// Definition 4).
//
// The speculative engine is a deterministic discrete-event simulator of a
// Multiplex-style chip multiprocessor: P processors, one in-flight segment
// per processor, per-segment speculative buffers, an L1/L2/DRAM hierarchy
// as non-speculative storage, in-order segment commit, flow- and
// control-violation detection with rollback, and speculative-storage
// overflow that stalls a segment until it becomes the oldest (which
// serializes execution — the bottleneck the paper attacks). Speculation is
// simulated for real: segments execute eagerly on stale values, write
// temporarily incorrect results, get squashed and re-execute, so the final
// memory state genuinely validates Lemmas 1 and 2 against the sequential
// engine.
package engine

import (
	"io"

	"refidem/internal/obs"
	"refidem/internal/specmem"
)

// Mode selects the execution model.
type Mode uint8

const (
	// Sequential executes the program serially on one processor; all
	// references access the non-speculative hierarchy.
	Sequential Mode = iota
	// HOSE is hardware-only speculative execution: every reference is
	// tracked in speculative storage (Definition 2).
	HOSE
	// CASE is compiler-assisted speculative execution: references labeled
	// idempotent bypass speculative storage (Definition 4).
	CASE
)

func (m Mode) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case HOSE:
		return "HOSE"
	default:
		return "CASE"
	}
}

// Config carries the machine parameters. The defaults model a 4-processor
// chip multiprocessor with kilobyte-scale speculative storage, in the
// spirit of the paper's Multiplex evaluation.
type Config struct {
	// Processors is the number of processors (and the size of the
	// in-flight segment window).
	Processors int
	// SpecCapacity is the per-segment speculative storage capacity in
	// entries (tracked locations). The paper's systems use small (KB)
	// structures; 128 eight-byte entries is 1 KB of data.
	SpecCapacity int
	// SpecSets organizes the speculative storage set-associatively with
	// SpecSets address-indexed sets of SpecCapacity/SpecSets ways each
	// (like the speculative versioning cache); a set conflict overflows
	// even when total capacity remains. 0 means fully associative.
	SpecSets int
	// Hier configures the non-speculative memory hierarchy.
	Hier specmem.HierarchyConfig
	// SpecLatency is the access latency of speculative storage.
	SpecLatency int64
	// CommitPerEntry is the commit cost per written entry.
	CommitPerEntry int64
	// RollbackPenalty is charged to a squashed segment before restart.
	RollbackPenalty int64
	// DispatchCost is charged when a segment is assigned to a processor.
	DispatchCost int64
	// StackSetupCost is charged per segment that uses privatized
	// variables (the per-segment private stack setup the paper observes
	// in the private category, §5.1).
	StackSetupCost int64
	// OpCost is the cost of one non-memory instruction.
	OpCost int64
	// Seed fills the initial memory image deterministically.
	Seed int64
	// MaxEvents bounds the simulation as a livelock guard.
	MaxEvents int64
	// Trace, when non-nil, receives a line per engine event (spawn,
	// violation, squash, stall, commit) — a debugging aid; it does not
	// affect timing.
	Trace io.Writer
	// Timeline, when non-nil, receives the run's speculation timeline:
	// segment spawn/commit/squash events with their causes and the refs
	// involved, overflow stalls, and trace-JIT compile/enter/bailout
	// events, all stamped with simulated cycles (obs.WriteChromeTrace
	// exports the log as Perfetto-loadable Chrome trace JSON). Purely
	// observational: cycle counts, memory and statistics are identical
	// with a timeline attached, and the nil default costs the event loop
	// one pointer check. RunSequential ignores it — spawn, squash and
	// commit are speculation concepts. A Timeline must not be shared by
	// concurrent runs.
	Timeline *obs.Timeline
	// Traced enables the trace-JIT execution tier: hot loop paths inside
	// segment bodies are recorded, compiled into guarded superblocks
	// (package vm), and executed without per-event interpreter dispatch.
	// References the labeling proved idempotent run guard-free inside
	// traces. Live-out memory is identical to the untraced engines (the
	// fuzz wall asserts it); simulated cycle counts may differ slightly
	// because traced execution batches one loop iteration per scheduler
	// event, so byte-deterministic consumers (goldens, the service cache)
	// keep it off by default.
	Traced bool
	// SpecThreshold enables confidence-driven speculation under CASE: a
	// reference whose ensemble-derived P(idempotent) (idem.Result.Prob)
	// is at least the threshold bypasses speculative storage even when
	// Algorithm 2 could not prove it idempotent; below it, the reference
	// follows the conservative speculative protocol as usual. 0 disables
	// the policy, and 1.0 is an exact no-op (P reaches 1 only for proved
	// references). Promotion trades guard traffic for misspeculation
	// risk — the threshold is the knob the ensemble ablation sweeps.
	SpecThreshold float64
}

// DefaultConfig returns the baseline machine used by the experiments.
func DefaultConfig() Config {
	return Config{
		Processors:      4,
		SpecCapacity:    128,
		Hier:            specmem.DefaultHierarchy(),
		SpecLatency:     1,
		CommitPerEntry:  2,
		RollbackPenalty: 12,
		DispatchCost:    4,
		StackSetupCost:  16,
		OpCost:          1,
		Seed:            0x9E3779B9,
		MaxEvents:       500_000_000,
	}
}

// PressureConfig returns the baseline machine shrunk to a tiny
// speculative storage and a narrow processor window. Overflow, stall and
// bypass paths dominate under it, which is exactly what the pressure
// property tests and the fuzzer's pressure probe want to exercise.
func PressureConfig() Config {
	c := DefaultConfig()
	c.SpecCapacity = 3
	c.Processors = 3
	return c
}

// Stats aggregates what happened during a run.
type Stats struct {
	// DynRefs counts dynamic references in retired (final) executions.
	DynRefs int64
	// IdemRefs counts retired references that bypassed speculative
	// storage (CASE only).
	IdemRefs int64
	// SpecPromotedRefs counts retired references that bypassed only
	// because Config.SpecThreshold promoted them (their label stayed
	// Speculative but P(idempotent) cleared the threshold).
	SpecPromotedRefs int64
	// RefsByCategory counts retired references per idempotency category
	// (indexed by idem.Category converted to int).
	RefsByCategory [8]int64
	// FlowViolations counts data-dependence violations detected.
	FlowViolations int64
	// ControlViolations counts mispredicted segment successors.
	ControlViolations int64
	// SquashedSegments counts segment executions thrown away.
	SquashedSegments int64
	// Overflows counts speculative storage overflow events.
	Overflows int64
	// OverflowStallCycles accumulates cycles segments spent stalled on
	// overflow.
	OverflowStallCycles int64
	// CommittedEntries counts entries moved to non-speculative storage.
	CommittedEntries int64
	// PeakSpecOccupancy is the maximum entries observed in any segment
	// buffer.
	PeakSpecOccupancy int
	// SegmentsRetired counts committed segment executions.
	SegmentsRetired int64
	// Instructions counts non-memory instructions in retired executions.
	Instructions int64
	// BusyCycles accumulates, over all processors, the cycles spent
	// executing segment instances (including squashed work); dividing by
	// Processors*Cycles gives machine utilization.
	BusyCycles int64
	// TracesCompiled counts superblocks compiled by this run (traces
	// reused from the shared cache are not recounted).
	TracesCompiled int64
	// TraceIterations counts loop iterations that ran to the backedge
	// inside a compiled trace.
	TraceIterations int64
	// TraceBailouts counts trace exits back to the interpreter: failed
	// guards (including the designed loop-exit bail) and speculative
	// storage overflows inside a trace.
	TraceBailouts int64
	// TraceGuardedOps counts traced memory operations that went through
	// the speculative protocol (buffered, bail-capable); TraceElidedOps
	// counts those the idempotency labels let run direct against
	// non-speculative storage with no guard at all. Their ratio is the
	// guard-elision win the labels bought.
	TraceGuardedOps int64
	TraceElidedOps  int64
}

// Result of a run.
type Result struct {
	Mode   Mode
	Cycles int64
	Memory []int64
	Layout *Layout
	Stats  Stats
}
