package engine

import (
	"strings"
	"testing"

	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/workloads"
)

// TestCASEWithoutLabelsEqualsHOSE: when every reference is labeled
// speculative, the CASE engine must behave cycle-for-cycle like HOSE —
// the two models differ only in how labeled references are routed.
func TestCASEWithoutLabelsEqualsHOSE(t *testing.T) {
	for _, mk := range []func() *ir.Program{
		workloads.Figure2,
		func() *ir.Program { return workloads.ButsDO1(8) },
		func() *ir.Program { s, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80"); return s.Program() },
	} {
		p := mk()
		labs := idem.LabelProgram(p)
		for _, res := range labs {
			for _, ref := range res.Region.Refs {
				res.SetLabel(ref, idem.Speculative)
			}
		}
		cfg := DefaultConfig()
		hose, err := RunSpeculative(p, labs, cfg, HOSE)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		caseR, err := RunSpeculative(p, labs, cfg, CASE)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if hose.Cycles != caseR.Cycles {
			t.Errorf("%s: label-free CASE %d cycles != HOSE %d cycles", p.Name, caseR.Cycles, hose.Cycles)
		}
		if hose.Stats.Overflows != caseR.Stats.Overflows ||
			hose.Stats.FlowViolations != caseR.Stats.FlowViolations ||
			hose.Stats.CommittedEntries != caseR.Stats.CommittedEntries {
			t.Errorf("%s: stats diverge: %+v vs %+v", p.Name, hose.Stats, caseR.Stats)
		}
	}
}

// TestSingleProcessorSpeculative: with one processor the speculative
// engine degenerates to serial execution (plus overheads) and must still
// be correct.
func TestSingleProcessorSpeculative(t *testing.T) {
	p := workloads.ButsDO1(8)
	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	cfg.Processors = 1
	seq, err := RunSequential(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{HOSE, CASE} {
		res, err := RunSpeculative(p, labs, cfg, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := LiveOutMismatch(p, labs, seq, res); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
		if res.Stats.FlowViolations != 0 {
			t.Errorf("%v: one processor cannot violate dependences, got %d", mode, res.Stats.FlowViolations)
		}
	}
}

// TestTinyCapacity: a 1-entry speculative storage is pathological but
// must stay correct (everything overflows and serializes).
func TestTinyCapacity(t *testing.T) {
	p := workloads.ButsDO1(6)
	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	cfg.SpecCapacity = 1
	seq, err := RunSequential(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hose, err := RunSpeculative(p, labs, cfg, HOSE)
	if err != nil {
		t.Fatal(err)
	}
	if err := LiveOutMismatch(p, labs, seq, hose); err != nil {
		t.Error(err)
	}
	if hose.Stats.Overflows == 0 {
		t.Error("1-entry storage must overflow")
	}
}

// TestRunSpeculativeParameterValidation covers the error paths.
func TestRunSpeculativeParameterValidation(t *testing.T) {
	p := workloads.IntroExample()
	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	if _, err := RunSpeculative(p, labs, cfg, Sequential); err == nil {
		t.Error("Sequential mode accepted by RunSpeculative")
	}
	cfg.Processors = 0
	if _, err := RunSpeculative(p, labs, cfg, HOSE); err == nil {
		t.Error("zero processors accepted")
	}
	cfg = DefaultConfig()
	if _, err := RunSpeculative(p, nil, cfg, HOSE); err == nil {
		t.Error("missing labelings accepted")
	}
}

// TestMaxEventsGuard: the livelock guard trips instead of hanging.
func TestMaxEventsGuard(t *testing.T) {
	p := workloads.ButsDO1(8)
	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	cfg.MaxEvents = 10
	if _, err := RunSpeculative(p, labs, cfg, HOSE); err == nil {
		t.Error("event guard did not trip")
	}
	if _, err := RunSequential(p, cfg); err == nil {
		t.Error("sequential event guard did not trip")
	}
}

// TestLayoutAddressing covers the private-frame addressing and subscript
// wrapping rules.
func TestLayoutAddressing(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 4, 4)
	s := p.AddVar("s")
	labsStub := map[*ir.Region]*idem.Result{}
	l := NewLayout(p, labsStub, 2)
	if l.SharedSize != 17 {
		t.Errorf("shared size = %d, want 17", l.SharedSize)
	}
	// Row-major linearization.
	if got := l.Addr(a, []int64{1, 2}, false, 0); got != l.Base[a]+6 {
		t.Errorf("a[1,2] = %d, want base+6", got)
	}
	// Wrapping: subscript 5 on dim 4 wraps to 1; negative wraps upward.
	if got := l.Addr(a, []int64{5, 0}, false, 0); got != l.Base[a]+4 {
		t.Errorf("a[5,0] = %d, want base+4", got)
	}
	if got := l.Addr(a, []int64{-1, 0}, false, 0); got != l.Base[a]+12 {
		t.Errorf("a[-1,0] = %d, want base+12", got)
	}
	if got := l.Addr(s, nil, false, 0); got != l.Base[s] {
		t.Errorf("scalar = %d, want base", got)
	}
}

// TestPrivateFrameSeparation: private variables resolve to per-slot
// frames above the shared area.
func TestPrivateFrameSeparation(t *testing.T) {
	p := ir.NewProgram("t")
	w := p.AddVar("w", 8)
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: 3, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(w, ir.Idx("k")), RHS: ir.C(1)},
		}}}}
	r.Ann.Private = map[string]bool{"w": true}
	r.Finalize()
	p.AddRegion(r)
	labs := idem.LabelProgram(p)
	l := NewLayout(p, labs, 4)
	if l.FrameSize != 8 || l.Total != l.SharedSize+4*8 {
		t.Errorf("frame layout: frame=%d total=%d shared=%d", l.FrameSize, l.Total, l.SharedSize)
	}
	a0 := l.Addr(w, []int64{0}, true, 0)
	a1 := l.Addr(w, []int64{0}, true, 1)
	if a0 == a1 {
		t.Error("slots must not alias")
	}
	if a0 < l.SharedSize || a1 < l.SharedSize {
		t.Error("frames must live above the shared area")
	}
	// Out-of-range slot clamps to 0.
	if l.Addr(w, []int64{0}, true, 99) != a0 {
		t.Error("slot clamping broken")
	}
}

// TestMemorySeedDeterminism: the initial image is a pure function of the
// seed.
func TestMemorySeedDeterminism(t *testing.T) {
	p := ir.NewProgram("t")
	p.AddVar("a", 64)
	l := NewLayout(p, nil, 1)
	m1 := NewMemory(l, 42)
	m2 := NewMemory(l, 42)
	m3 := NewMemory(l, 43)
	same, diff := true, false
	for i := range m1 {
		if m1[i] != m2[i] {
			same = false
		}
		if m1[i] != m3[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed should give same memory")
	}
	if !diff {
		t.Error("different seeds should differ somewhere")
	}
	for _, v := range m1 {
		if v < -8 || v > 8 {
			t.Errorf("seeded value %d out of [-8,8]", v)
		}
	}
}

// TestTraceOutput: the trace writer receives the engine's event log
// without affecting the simulation.
func TestTraceOutput(t *testing.T) {
	p := workloads.ButsDO1(6)
	labs := idem.LabelProgram(p)
	var buf strings.Builder
	cfg := DefaultConfig()
	cfg.SpecCapacity = 8 // force overflow traffic
	cfg.Trace = &buf
	traced, err := RunSpeculative(p, labs, cfg, HOSE)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = nil
	plain, err := RunSpeculative(p, labs, cfg, HOSE)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Cycles != plain.Cycles {
		t.Errorf("tracing changed timing: %d vs %d", traced.Cycles, plain.Cycles)
	}
	out := buf.String()
	for _, want := range []string{"retires", "stalls on overflow"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}
