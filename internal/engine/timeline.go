package engine

// Timeline support: the helpers the speculative event loop uses to feed
// an attached obs.Timeline. Everything here is observational — nothing
// reads back into the simulation — and nothing runs when Config.Timeline
// is nil.

import (
	"fmt"

	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/obs"
)

// timelineRefs renders a region's reference table for timeline
// attribution, indexed by dense ref ID (the same ID timeline events carry
// in Event.Ref). Text matches the service/report rendering ("access
// var[subs]") so squash-attribution tables line up with label tables.
func timelineRefs(r *ir.Region, lab *idem.Result) []obs.RefInfo {
	out := make([]obs.RefInfo, len(r.Refs))
	for i, ref := range r.Refs {
		out[i] = obs.RefInfo{
			Text:     timelineRefText(ref),
			Label:    lab.Label(ref).String(),
			Category: lab.Category(ref).String(),
		}
	}
	return out
}

// timelineRefText renders one reference as "access var[subs]".
func timelineRefText(ref *ir.Ref) string {
	s := ref.Var.Name
	if len(ref.Subs) > 0 {
		s += "["
		for i, sub := range ref.Subs {
			if i > 0 {
				s += ","
			}
			s += sub.String()
		}
		s += "]"
	}
	return fmt.Sprintf("%s %s", ref.Access, s)
}

// sinceSpawn is the cycles an instance has been running at time t, used
// as the duration of commit and squash slices. Squash-restart resets the
// spawn stamp, so a re-executed instance's slice covers only its latest
// attempt; the clamp guards the degenerate same-cycle case.
func sinceSpawn(t, spawn int64) int64 {
	if d := t - spawn; d > 0 {
		return d
	}
	return 0
}
