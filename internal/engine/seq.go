package engine

import (
	"fmt"

	"refidem/internal/ir"
	"refidem/internal/specmem"
	"refidem/internal/vm"
)

// RunSequential executes the original (un-privatized) program serially and
// returns the final memory plus cycle count. It is both the correctness
// oracle (Definition 3 compares every execution against it) and the
// uniprocessor baseline the paper's speedups are relative to.
func RunSequential(p *ir.Program, cfg Config) (*Result, error) {
	if err := ir.CheckExecutable(p); err != nil {
		return nil, err
	}
	layout := NewLayout(p, nil, 1)
	mem := NewMemory(layout, cfg.Seed)
	hier := specmem.NewHierarchy(1, cfg.Hier)
	res := &Result{Mode: Sequential, Layout: layout, Memory: mem}

	var events int64
	var m *vm.Machine
	for _, r := range p.Regions {
		rc := cachedRegion(r)
		codes, iters := rc.codes, rc.iters
		segID := entrySegment(r)
		iterAt := 0
		for {
			var seg *ir.Segment
			var idxVal int64
			if r.Kind == ir.LoopRegion {
				if iterAt >= len(iters) {
					break
				}
				seg = r.Segments[0]
				idxVal = iters[iterAt]
			} else {
				if segID < 0 {
					break
				}
				seg = r.Seg(segID)
			}
			if m == nil {
				m = vm.NewMachine(codes[seg.ID], idxVal)
			} else {
				m.Reinit(codes[seg.ID], idxVal)
			}
			for {
				ev, ops := m.Step()
				res.Cycles += int64(ops) * cfg.OpCost
				res.Stats.Instructions += int64(ops)
				events++
				if events > cfg.MaxEvents {
					return nil, fmt.Errorf("engine: sequential run exceeded %d events", cfg.MaxEvents)
				}
				if ev.Kind == vm.EvDone {
					break
				}
				addr := layout.Addr(ev.Ref.Var, ev.Subs, false, 0)
				res.Cycles += hier.Access(0, addr)
				res.Stats.DynRefs++
				if ev.Kind == vm.EvLoad {
					m.ResumeLoad(mem[addr])
				} else {
					mem[addr] = ev.Value
				}
			}
			if r.Kind == ir.LoopRegion {
				if m.ExitRequested {
					break
				}
				iterAt++
			} else {
				segID = nextSegment(seg, m)
				if m.ExitRequested {
					break
				}
			}
		}
	}
	return res, nil
}

// compileRegion compiles every segment of a region once.
func compileRegion(r *ir.Region) map[int]*vm.Code {
	out := make(map[int]*vm.Code, len(r.Segments))
	idx := ""
	if r.Kind == ir.LoopRegion {
		idx = r.Index
	}
	for _, seg := range r.Segments {
		out[seg.ID] = vm.Compile(seg, idx)
	}
	return out
}

func entrySegment(r *ir.Region) int {
	if len(r.Segments) == 0 {
		return -1
	}
	return r.Segments[0].ID
}

// nextSegment resolves a CFG segment's actual successor from the machine's
// branch outcome. It returns -1 at the region exit.
func nextSegment(seg *ir.Segment, m *vm.Machine) int {
	switch len(seg.Succs) {
	case 0:
		return -1
	case 1:
		return seg.Succs[0]
	default:
		if m.Branched && m.BranchVal == 0 {
			return seg.Succs[1]
		}
		return seg.Succs[0]
	}
}
