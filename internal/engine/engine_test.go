package engine

import (
	"testing"

	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/workloads"
)

// runAll labels the program and executes it under all three models.
func runAll(t *testing.T, p *ir.Program, cfg Config) (map[*ir.Region]*idem.Result, *Result, *Result, *Result) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	labs := idem.LabelProgram(p)
	for r, res := range labs {
		if errs := res.CheckTheorems(); len(errs) > 0 {
			t.Fatalf("region %s: theorem check: %v", r.Name, errs)
		}
	}
	seq, err := RunSequential(p, cfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	hose, err := RunSpeculative(p, labs, cfg, HOSE)
	if err != nil {
		t.Fatalf("HOSE: %v", err)
	}
	caseR, err := RunSpeculative(p, labs, cfg, CASE)
	if err != nil {
		t.Fatalf("CASE: %v", err)
	}
	return labs, seq, hose, caseR
}

// checkCorrect validates Lemma 1 and Lemma 2 for the program.
func checkCorrect(t *testing.T, p *ir.Program, labs map[*ir.Region]*idem.Result, seq, hose, caseR *Result) {
	t.Helper()
	if err := LiveOutMismatch(p, labs, seq, hose); err != nil {
		t.Errorf("Lemma 1 violated (HOSE != sequential): %v", err)
	}
	if err := LiveOutMismatch(p, labs, seq, caseR); err != nil {
		t.Errorf("Lemma 2 violated (CASE != sequential): %v", err)
	}
}

func TestIntroExampleCorrectness(t *testing.T) {
	p := workloads.IntroExample()
	labs, seq, hose, caseR := runAll(t, p, DefaultConfig())
	checkCorrect(t, p, labs, seq, hose, caseR)
}

func TestFigure2Correctness(t *testing.T) {
	p := workloads.Figure2()
	labs, seq, hose, caseR := runAll(t, p, DefaultConfig())
	checkCorrect(t, p, labs, seq, hose, caseR)
}

func TestFigure3Correctness(t *testing.T) {
	p := workloads.Figure3()
	labs, seq, hose, caseR := runAll(t, p, DefaultConfig())
	checkCorrect(t, p, labs, seq, hose, caseR)
}

func TestButsCorrectness(t *testing.T) {
	p := workloads.ButsDO1(8)
	labs, seq, hose, caseR := runAll(t, p, DefaultConfig())
	checkCorrect(t, p, labs, seq, hose, caseR)
	if seq.Stats.DynRefs == 0 || hose.Stats.DynRefs == 0 {
		t.Error("no references executed")
	}
}

// chain builds x[k] = x[k-1] + 1 — a serial cross-iteration flow chain
// that must trigger dependence violations under eager speculation.
func chain(n int) *ir.Program {
	p := ir.NewProgram("chain")
	x := p.AddVar("x", n+2)
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 1, To: n, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x, ir.Idx("k")),
				RHS: ir.AddE(ir.Rd(x, ir.SubE(ir.Idx("k"), ir.C(1))), ir.C(1))},
		}}}}
	r.Ann.LiveOut = map[string]bool{"x": true}
	r.Finalize()
	p.AddRegion(r)
	return p
}

func TestFlowViolationsDetectedAndCorrected(t *testing.T) {
	p := chain(32)
	labs, seq, hose, caseR := runAll(t, p, DefaultConfig())
	checkCorrect(t, p, labs, seq, hose, caseR)
	if hose.Stats.FlowViolations == 0 {
		t.Error("a serial dependence chain must cause flow violations under HOSE")
	}
	if hose.Stats.SquashedSegments == 0 {
		t.Error("violations must squash segments")
	}
	// The final value proves all N increments happened in order.
	x := p.Var("x")
	vals := VarValues(seq.Memory, seq.Layout, x)
	base := vals[0]
	if vals[32] != base+32 {
		t.Errorf("x[32] = %d, want %d", vals[32], base+32)
	}
}

func TestEarlyExitControlViolation(t *testing.T) {
	// The loop writes a[k] and exits at k == 6; speculation beyond the
	// exit must be squashed and the final state must match sequential.
	p := ir.NewProgram("exit")
	a := p.AddVar("a", 40)
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: 31, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.AddE(ir.Idx("k"), ir.C(100))},
			&ir.ExitRegion{Cond: ir.Op(ir.Ge, ir.Idx("k"), ir.C(6))},
		}}}}
	r.Ann.LiveOut = map[string]bool{"a": true}
	r.Finalize()
	p.AddRegion(r)
	labs, seq, hose, caseR := runAll(t, p, DefaultConfig())
	checkCorrect(t, p, labs, seq, hose, caseR)
	if hose.Stats.ControlViolations == 0 {
		t.Error("early exit must register a control violation under speculation")
	}
	// Cells beyond the exit keep their initial values.
	sv := VarValues(seq.Memory, seq.Layout, a)
	hv := VarValues(hose.Memory, hose.Layout, a)
	for i := 7; i < 32; i++ {
		if hv[i] != sv[i] {
			t.Errorf("a[%d] differs after early exit: %d vs %d", i, hv[i], sv[i])
		}
	}
}

func TestCFGBranchMisprediction(t *testing.T) {
	// The branch takes the second successor (condition is 0), while the
	// engine predicts the first: a control violation must occur and the
	// result must still match sequential execution.
	p := ir.NewProgram("branch")
	x := p.AddVar("x")
	y := p.AddVar("y")
	segs := []*ir.Segment{
		{ID: 0, Name: "head", Succs: []int{1, 2}, Branch: ir.Rd(x), Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(0)},
		}},
		{ID: 1, Name: "taken", Succs: []int{3}, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(y), RHS: ir.C(111)},
		}},
		{ID: 2, Name: "fallthrough", Succs: []int{3}, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(y), RHS: ir.C(222)},
		}},
		{ID: 3, Name: "tail", Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(y), ir.C(1))},
		}},
	}
	r := &ir.Region{Name: "r", Kind: ir.CFGRegion, Segments: segs}
	r.Ann.LiveOut = map[string]bool{"x": true, "y": true}
	r.Finalize()
	p.AddRegion(r)
	labs, seq, hose, caseR := runAll(t, p, DefaultConfig())
	checkCorrect(t, p, labs, seq, hose, caseR)
	if hose.Stats.ControlViolations == 0 {
		t.Error("mispredicted branch must register a control violation")
	}
	y2 := VarValues(seq.Memory, seq.Layout, y)
	if y2[0] != 222 {
		t.Errorf("sequential y = %d, want 222 (branch value is 0)", y2[0])
	}
}

func TestOverflowStallsAndCASERelief(t *testing.T) {
	// A fully-independent loop with a working set far beyond the
	// speculative capacity: HOSE overflows and serializes; CASE labels
	// everything idempotent and never touches speculative storage.
	p := ir.NewProgram("overflow")
	n := 16
	a := p.AddVar("a", n*40)
	b := p.AddVar("b", n*40)
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: n - 1, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.For{Index: "j", From: 0, To: 39, Step: 1, Body: []ir.Stmt{
				&ir.Assign{LHS: ir.Wr(a, ir.AddE(ir.MulE(ir.Idx("k"), ir.C(40)), ir.Idx("j"))),
					RHS: ir.AddE(ir.Rd(b, ir.AddE(ir.MulE(ir.Idx("k"), ir.C(40)), ir.Idx("j"))), ir.C(1))},
			}},
		}}}}
	r.Ann.LiveOut = map[string]bool{"a": true}
	r.Finalize()
	p.AddRegion(r)

	cfg := DefaultConfig()
	cfg.SpecCapacity = 16 // each iteration touches 80 locations
	labs, seq, hose, caseR := runAll(t, p, cfg)
	checkCorrect(t, p, labs, seq, hose, caseR)
	if hose.Stats.Overflows == 0 || hose.Stats.OverflowStallCycles == 0 {
		t.Errorf("HOSE should overflow: %+v", hose.Stats)
	}
	if caseR.Stats.Overflows != 0 {
		t.Errorf("fully-independent CASE run should never overflow, got %d", caseR.Stats.Overflows)
	}
	if caseR.Stats.PeakSpecOccupancy != 0 {
		t.Errorf("CASE peak occupancy = %d, want 0", caseR.Stats.PeakSpecOccupancy)
	}
	if caseR.Cycles >= hose.Cycles {
		t.Errorf("CASE (%d cycles) should beat overflowing HOSE (%d cycles)", caseR.Cycles, hose.Cycles)
	}
	if seq.Cycles <= caseR.Cycles {
		t.Errorf("4-processor CASE (%d) should beat sequential (%d)", caseR.Cycles, seq.Cycles)
	}
}

func TestCASEOccupancyNeverExceedsHOSE(t *testing.T) {
	for _, mk := range []func() *ir.Program{
		workloads.IntroExample, workloads.Figure2, workloads.Figure3,
		func() *ir.Program { return workloads.ButsDO1(8) },
		func() *ir.Program { return chain(16) },
	} {
		p := mk()
		_, _, hose, caseR := runAll(t, p, DefaultConfig())
		if caseR.Stats.PeakSpecOccupancy > hose.Stats.PeakSpecOccupancy {
			t.Errorf("%s: CASE peak %d > HOSE peak %d", p.Name,
				caseR.Stats.PeakSpecOccupancy, hose.Stats.PeakSpecOccupancy)
		}
	}
}

func TestMislabelingBreaksExecution(t *testing.T) {
	// Necessity direction of Lemma 2: forcibly mislabeling the sinks of
	// the serial chain as idempotent lets stale values escape to
	// non-speculative storage, and the final state diverges from
	// sequential. This demonstrates the labeling conditions are not
	// vacuous: the engine really does bypass dependence tracking for
	// idempotent references.
	p := chain(32)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	labs := idem.LabelProgram(p)
	r := p.Regions[0]
	for _, ref := range r.Refs {
		labs[r].SetLabel(ref, idem.Idempotent) // WRONG on purpose
	}
	cfg := DefaultConfig()
	seq, err := RunSequential(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	caseR, err := RunSpeculative(p, labs, cfg, CASE)
	if err != nil {
		t.Fatal(err)
	}
	if err := LiveOutMismatch(p, labs, seq, caseR); err == nil {
		t.Error("mislabeled serial chain still matched sequential; the engine is not actually bypassing dependence tracking")
	}
}

func TestSpeculativeSpeedupOnParallelLoop(t *testing.T) {
	// A wide independent loop should show real speedup on 4 processors
	// under both HOSE (capacity fits) and CASE.
	p := ir.NewProgram("parallel")
	n := 64
	a := p.AddVar("a", n)
	b := p.AddVar("b", n)
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: n - 1, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.For{Index: "j", From: 0, To: 7, Step: 1, Body: []ir.Stmt{
				&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")),
					RHS: ir.AddE(ir.Rd(a, ir.Idx("k")), ir.Rd(b, ir.Idx("k")))},
			}},
		}}}}
	r.Ann.LiveOut = map[string]bool{"a": true}
	r.Finalize()
	p.AddRegion(r)
	labs, seq, hose, caseR := runAll(t, p, DefaultConfig())
	checkCorrect(t, p, labs, seq, hose, caseR)
	for _, res := range []*Result{hose, caseR} {
		speedup := float64(seq.Cycles) / float64(res.Cycles)
		if speedup < 1.5 {
			t.Errorf("%v speedup = %.2f, want > 1.5", res.Mode, speedup)
		}
	}
}

func TestMultiRegionExecution(t *testing.T) {
	// Region 1 produces, region 2 consumes: memory must carry across.
	p := ir.NewProgram("tworegions")
	a := p.AddVar("a", 16)
	b := p.AddVar("b", 16)
	r1 := &ir.Region{Name: "r1", Kind: ir.LoopRegion, Index: "k", From: 0, To: 15, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.MulE(ir.Idx("k"), ir.C(3))},
		}}}}
	r1.Finalize()
	p.AddRegion(r1)
	r2 := &ir.Region{Name: "r2", Kind: ir.LoopRegion, Index: "k", From: 0, To: 15, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(b, ir.Idx("k")), RHS: ir.AddE(ir.Rd(a, ir.Idx("k")), ir.C(1))},
		}}}}
	r2.Ann.LiveOut = map[string]bool{"b": true}
	r2.Finalize()
	p.AddRegion(r2)
	labs, seq, hose, caseR := runAll(t, p, DefaultConfig())
	checkCorrect(t, p, labs, seq, hose, caseR)
	bv := VarValues(caseR.Memory, caseR.Layout, b)
	for i := 0; i < 16; i++ {
		if bv[i] != int64(i*3+1) {
			t.Errorf("b[%d] = %d, want %d", i, bv[i], i*3+1)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := workloads.ButsDO1(8)
	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	a, err := RunSpeculative(p, labs, cfg, CASE)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpeculative(p, labs, cfg, CASE)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Stats != b.Stats {
		t.Errorf("non-deterministic simulation: %v vs %v", a.Stats, b.Stats)
	}
}

func TestModeString(t *testing.T) {
	if Sequential.String() != "sequential" || HOSE.String() != "HOSE" || CASE.String() != "CASE" {
		t.Error("Mode.String broken")
	}
}
