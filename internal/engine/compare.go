package engine

import (
	"fmt"

	"refidem/internal/idem"
	"refidem/internal/ir"
)

// LiveOutMismatch compares the final values of the program's live-out
// variables between two runs, returning a descriptive error on the first
// difference. Definition 3 of the paper defines correct execution as "all
// live program variables in the non-speculative storage have the same
// value as in a sequential execution", which is exactly this check; the
// test suite uses it to validate Lemma 1 (HOSE vs sequential) and Lemma 2
// (CASE vs sequential).
func LiveOutMismatch(p *ir.Program, labelings map[*ir.Region]*idem.Result, a, b *Result) error {
	if len(p.Regions) == 0 {
		return nil
	}
	last := p.Regions[len(p.Regions)-1]
	lab := labelings[last]
	if lab == nil {
		return fmt.Errorf("engine: no labeling for final region")
	}
	for _, v := range p.Vars {
		if !lab.Info.LiveOut(v) {
			continue
		}
		av := VarValues(a.Memory, a.Layout, v)
		bv := VarValues(b.Memory, b.Layout, v)
		for i := range av {
			if av[i] != bv[i] {
				return fmt.Errorf("live-out %s[%d]: %v run has %d, %v run has %d",
					v.Name, i, a.Mode, av[i], b.Mode, bv[i])
			}
		}
	}
	return nil
}
