//go:build !race

package engine

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
