package engine

import (
	"testing"

	"refidem/internal/deps"
	"refidem/internal/gen"
	"refidem/internal/idem"
	"refidem/internal/ir"
)

// disjointIndirect builds the honest-speculation workload: a first region
// seeds index arrays with provably disjoint targets, then a loop updates
// through them — a[ia[k]] = a[ib[k]] + 1 with ia[k] = k and ib[k] =
// k + 10. Exact analysis cannot refute the a-vs-a pairs (the subscripts
// are not affine), but a profile replay observes write addresses 0..3
// against read addresses 10..13 and answers "never aliases" at 4/5.
func disjointIndirect() *ir.Program {
	p := ir.NewProgram("di")
	a := p.AddVar("a", 16)
	ia := p.AddVar("ia", 4)
	ib := p.AddVar("ib", 4)
	seedR := &ir.Region{Name: "seed", Kind: ir.LoopRegion, Index: "k", From: 0, To: 3, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(ia, ir.Idx("k")), RHS: ir.Idx("k")},
			&ir.Assign{LHS: ir.Wr(ib, ir.Idx("k")), RHS: ir.AddE(ir.Idx("k"), ir.C(10))},
		}}}}
	seedR.Ann.LiveOut = map[string]bool{"ia": true, "ib": true}
	seedR.Finalize()
	p.AddRegion(seedR)
	loop := &ir.Region{Name: "loop", Kind: ir.LoopRegion, Index: "k", From: 0, To: 3, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(a, ir.Rd(ia, ir.Idx("k"))),
				RHS: ir.AddE(ir.Rd(a, ir.Rd(ib, ir.Idx("k"))), ir.C(1))},
		}}}}
	loop.Ann.LiveOut = map[string]bool{"a": true}
	loop.Finalize()
	p.AddRegion(loop)
	return p
}

func sameMemory(a, b *Result) bool {
	if len(a.Memory) != len(b.Memory) {
		return false
	}
	for i := range a.Memory {
		if a.Memory[i] != b.Memory[i] {
			return false
		}
	}
	return true
}

// TestSpecThresholdOneMatchesBaseline: with the full ensemble (profile
// included) and SpecThreshold = 1.0, CASE is cycle- and byte-identical to
// CASE under the plain labeler, and nothing is promoted — P = 1 only on
// proved references, so the bypass set is exactly the label set.
func TestSpecThresholdOneMatchesBaseline(t *testing.T) {
	progs := []*ir.Program{disjointIndirect()}
	for _, prof := range gen.Profiles() {
		for seed := int64(0); seed < 2; seed++ {
			progs = append(progs, gen.Generate(seed*29+11, prof.Cfg).Program)
		}
	}
	cfg := DefaultConfig()
	for i, p := range progs {
		if err := p.Validate(); err != nil {
			t.Fatalf("prog %d: %v", i, err)
		}
		if err := ir.CheckExecutable(p); err != nil {
			continue
		}
		base, err := RunSpeculative(p, idem.LabelProgram(p), cfg, CASE)
		if err != nil {
			t.Fatalf("prog %d baseline: %v", i, err)
		}
		replay, err := CollectProfile(p, cfg)
		if err != nil {
			t.Fatalf("prog %d profile: %v", i, err)
		}
		labs := idem.LabelProgramEnsemble(p, deps.Ensemble{
			Range: true, MustWriteFirst: true, Profile: replay,
		})
		tcfg := cfg
		tcfg.SpecThreshold = 1.0
		got, err := RunSpeculative(p, labs, tcfg, CASE)
		if err != nil {
			t.Fatalf("prog %d threshold: %v", i, err)
		}
		if got.Cycles != base.Cycles || !sameMemory(got, base) {
			t.Errorf("prog %d (%s): threshold-1.0 run diverged from baseline (cycles %d vs %d)",
				i, p.Name, got.Cycles, base.Cycles)
		}
		if got.Stats.SpecPromotedRefs != 0 {
			t.Errorf("prog %d (%s): %d refs promoted at threshold 1.0",
				i, p.Name, got.Stats.SpecPromotedRefs)
		}
	}
}

// TestSpecThresholdPromotes: at a threshold below the profile member's
// confidence, the uncertain read is promoted to the guard-elided path
// (observable in Stats.SpecPromotedRefs), and because the observation is
// honest the final memory still matches sequential execution.
func TestSpecThresholdPromotes(t *testing.T) {
	p := disjointIndirect()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	replay, err := CollectProfile(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	labs := idem.LabelProgramEnsemble(p, deps.Ensemble{Range: true, Profile: replay})

	loop := p.Regions[1]
	var aRead *ir.Ref
	for _, ref := range loop.Refs {
		if ref.Var == p.Var("a") && ref.Access == ir.Read {
			aRead = ref
		}
	}
	if aRead == nil {
		t.Fatal("a-read not found")
	}
	if got, want := labs[loop].Prob(aRead), 4.0/5.0; got != want {
		t.Fatalf("P(a-read) = %v, want %v", got, want)
	}
	if labs[loop].Label(aRead) != idem.Speculative {
		t.Fatal("the base label must stay Speculative")
	}

	cfg.SpecThreshold = 0.75
	seq, err := RunSequential(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSpeculative(p, labs, cfg, CASE)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.SpecPromotedRefs == 0 {
		t.Error("expected promoted dynamic references at threshold 0.75")
	}
	if !sameMemory(got, seq) {
		t.Error("honest promotion must preserve final memory")
	}
}

// TestCollectProfileObservations: the replay's per-reference observation
// ranges and counts match the program by construction, and the whole
// collection is deterministic.
func TestCollectProfileObservations(t *testing.T) {
	p := chain(8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	prof, err := CollectProfile(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Regions[0]
	obs := prof.Obs[r]
	if len(obs) != len(r.Refs) {
		t.Fatalf("obs length %d, want %d", len(obs), len(r.Refs))
	}
	for _, ref := range r.Refs {
		o := obs[ref.ID]
		if o.Count != 8 {
			t.Errorf("ref %v: count %d, want 8", ref, o.Count)
		}
		// x[k] for k in 1..8 and x[k-1] for k in 1..8 each span 8 slots.
		if o.Max-o.Min != 7 {
			t.Errorf("ref %v: range [%d,%d], want a span of 7", ref, o.Min, o.Max)
		}
	}
	again, err := CollectProfile(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range r.Refs {
		if again.Obs[r][ref.ID] != obs[ref.ID] {
			t.Errorf("ref %v: profile replay is not deterministic", ref)
		}
	}
}
