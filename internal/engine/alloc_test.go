package engine

import (
	"testing"

	"refidem/internal/idem"
	"refidem/internal/ir"
)

// allocProgram builds a small parallel loop for steady-state allocation
// measurements.
func allocProgram(iters int) *ir.Program {
	p := ir.NewProgram("alloc_probe")
	a := p.AddVar("a", 64)
	b := p.AddVar("b", 64)
	seg := &ir.Segment{ID: 0, Name: "body", Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(a, ir.Idx("i")), RHS: ir.AddE(ir.Rd(b, ir.Idx("i")), ir.C(1))},
	}}
	r := &ir.Region{Name: "loop", Kind: ir.LoopRegion, Index: "i", From: 0, To: iters - 1, Step: 1,
		Segments: []*ir.Segment{seg}}
	r.Finalize()
	p.AddRegion(r)
	return p
}

// runSpecAllocs measures steady-state allocations of one RunSpeculative
// call after warming the pools.
func runSpecAllocs(t *testing.T, iters int) float64 {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector (sync.Pool sheds items)")
	}
	p := allocProgram(iters)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	labs := idem.LabelProgram(p)
	cfg := DefaultConfig()
	run := func() {
		if _, err := RunSpeculative(p, labs, cfg, HOSE); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the runner pool, code cache and memory template
	return testing.AllocsPerRun(20, run)
}

// TestRunSpeculativeSteadyStateAllocBound guards the engine's pooling:
// steady-state allocations per run are bounded by a small per-run
// constant (result, layout, memory image, hierarchy) and must not scale
// with the number of spawned segment instances. The seed engine spent
// hundreds of allocations on this workload (one machine + one map-backed
// buffer per iteration).
func TestRunSpeculativeSteadyStateAllocBound(t *testing.T) {
	const bound = 60
	if got := runSpecAllocs(t, 64); got > bound {
		t.Errorf("RunSpeculative(64 iters) allocates %.1f times per run, want <= %d", got, bound)
	}
}

// TestRunSpeculativeAllocsIndependentOfIterations is the scaling half of
// the guard: 4x the iterations may not add allocations (instances,
// machines and buffers are recycled, not rebuilt).
func TestRunSpeculativeAllocsIndependentOfIterations(t *testing.T) {
	small := runSpecAllocs(t, 32)
	large := runSpecAllocs(t, 128)
	// The larger run touches the same pooled structures; allow a couple
	// of allocations of slack for map growth inside the shared caches.
	if large > small+4 {
		t.Errorf("allocations grew with iteration count: %.1f at 32 iters vs %.1f at 128 iters", small, large)
	}
}
