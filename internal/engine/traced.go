package engine

// The traced execution tier: Config.Traced routes the event loop through
// advanceTraced, which layers the VM's trace-JIT (internal/vm/trace.go)
// onto speculative execution.
//
// Per segment, the tier moves through three phases:
//
//  1. Record. The oldest in-flight instance — the one instance that can
//     never be squashed or stalled, so its dynamic path is part of the
//     real final execution — interprets under vm.StepRecorded until a
//     backedge turns
//     hot and the recorder's window fills (or the segment ends).
//  2. Compile. The hottest inter-backedge path becomes a guarded
//     superblock. The guard-elision predicate is the refMeta bypass bit:
//     exactly the references that skip speculative storage under the
//     current mode and labeling run direct inside the trace. Superblocks
//     are published to the shared per-(region, mode, labeling) cache, so
//     repeated runs (benchmark iterations, service traffic) skip phases
//     1-2 entirely.
//  3. Execute. Machines interpret under vm.StepTraced, which pauses at
//     the trace entry; runTrace then executes one full loop iteration
//     with no per-instruction event dispatch. Memory references resolve
//     inline with byte-for-byte the same semantics as doLoad/doStore.
//
// Bailouts need no undo machinery: traces execute in original program
// order with every register effect replicated, so machine state at any
// trace point equals interpreter state at the corresponding original pc.
// A failed guard sets the machine's PC to the branch's other target; a
// speculative-storage overflow sets it to the memory op's own pc without
// applying the op, and the interpreter re-executes it down the ordinary
// stall path. Only live-out memory is guaranteed identical to the
// untraced engines — cycle counts may differ, because a traced iteration
// is one scheduler event instead of one event per memory reference.

import (
	"refidem/internal/ir"
	"refidem/internal/obs"
	"refidem/internal/vm"
)

// tracedSetRegion prepares the runner's trace state for a region: the
// run-local superblock view, the shared cache handle, and the elision
// predicate derived from the labeling.
func (sr *specRunner) tracedSetRegion(rc *regionCode) {
	if sr.segSB == nil {
		sr.segSB = make(map[int]*vm.Superblock, 4)
		sr.segTried = make(map[int]bool, 4)
	} else {
		clear(sr.segSB)
		clear(sr.segTried)
	}
	sr.recSeg = -1
	sr.recOwner = nil
	sr.tr = rc.tracedFor(tracedKey{mode: sr.mode, labels: sr.bypassKey()})
	sr.tr.snapshot(sr.segSB, sr.segTried)
	if sr.rec == nil {
		sr.rec = vm.NewRecorder(vm.DefaultTraceConfig())
	}
	meta := sr.refMeta
	sr.direct = func(ref *ir.Ref) bool { return meta[ref.ID].bypass }
}

// bypassKey encodes which references bypass speculative storage under the
// current mode, labeling and speculation policy — byte-exact, so two
// configurations differing in a single reference never share superblocks.
// The bits are read back from refMeta (already built when this runs)
// rather than idem.Result.IdempotentBits: the SpecThreshold policy can
// promote references past their labels, and a promoted bypass set must
// key its own traces.
func (sr *specRunner) bypassKey() string {
	if sr.mode != CASE {
		return ""
	}
	bits := ir.MakeBits(len(sr.refMeta))
	for i := range sr.refMeta {
		if sr.refMeta[i].bypass {
			bits.Set(int32(i))
		}
	}
	buf := make([]byte, 0, len(bits)*8)
	for _, w := range bits {
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>s))
		}
	}
	return string(buf)
}

// advanceTraced is advance with the trace tier layered in. The event
// bookkeeping (pending events, busy cycles, completion) matches advance
// exactly; only instruction execution differs.
func (sr *specRunner) advanceTraced(inst *instance) {
	before := inst.clock
	var ev vm.Event
	if inst.hasPending {
		ev = inst.pendingEv
		inst.hasPending = false
	} else {
		segID := inst.seg.ID
		if sb := sr.segSB[segID]; sb != nil {
			ops := inst.m.StepTraced(&ev, sb.Entry)
			inst.clock += int64(ops) * sr.opCost
			inst.tally.instrs += int64(ops)
			if ev.Kind == vm.EvTraceEntry {
				sr.runTrace(inst, sb)
				if inst.clock > before {
					sr.stats.BusyCycles += inst.clock - before
				}
				return
			}
		} else if !sr.segTried[segID] && inst.age == sr.baseAge {
			// Record on the oldest instance: it can never be squashed or
			// stalled, so the captured window is part of the real (final)
			// execution.
			if sr.recSeg != segID {
				sr.rec.Reset(inst.m.Code)
				sr.recSeg = segID
				sr.recOwner = inst
			}
			if sr.recOwner == inst {
				ops := inst.m.StepRecorded(&ev, sr.rec)
				inst.clock += int64(ops) * sr.opCost
				inst.tally.instrs += int64(ops)
				if sr.rec.Full() {
					sr.finishRecording()
				}
			} else {
				ops := inst.m.StepInto(&ev)
				inst.clock += int64(ops) * sr.opCost
				inst.tally.instrs += int64(ops)
			}
		} else {
			ops := inst.m.StepInto(&ev)
			inst.clock += int64(ops) * sr.opCost
			inst.tally.instrs += int64(ops)
		}
	}
	if ev.Kind == vm.EvDone {
		if inst == sr.recOwner {
			// The recording instance finished its segment: build from
			// whatever the window holds (a full segment execution is
			// plenty for loops worth tracing).
			sr.finishRecording()
		}
		if inst.clock > before {
			sr.stats.BusyCycles += inst.clock - before
		}
		sr.complete(inst)
		return
	}
	if ev.Kind == vm.EvLoad {
		sr.doLoad(inst, &ev)
	} else {
		sr.doStore(inst, &ev)
	}
	if inst.clock > before {
		sr.stats.BusyCycles += inst.clock - before
	}
}

// finishRecording compiles the recorder's capture (nil when the segment
// has no hot compilable loop), publishes the outcome, and disarms the
// recorder.
func (sr *specRunner) finishRecording() {
	segID := sr.recSeg
	owner := sr.recOwner
	sb := sr.rec.Build(sr.direct)
	sr.recSeg = -1
	sr.recOwner = nil
	if segID < 0 {
		return
	}
	sr.segTried[segID] = true
	if sb != nil {
		sr.segSB[segID] = sb
		sr.stats.TracesCompiled++
		if sr.tl != nil && owner != nil {
			elided := int64(0)
			for i := range sb.Instrs {
				in := &sb.Instrs[i]
				if (in.Op == vm.TLoad || in.Op == vm.TStore) && in.Direct {
					elided++
				}
			}
			sr.tl.Add(obs.Event{
				Kind: obs.EvTraceCompile, Time: owner.clock,
				Proc: int32(owner.proc), Age: int32(owner.age),
				Seg: int32(segID), Ref: -1, Aux: elided,
			})
		}
	}
	sr.tr.store(segID, sb)
}

// runTrace executes one compiled loop iteration for inst. On a completed
// iteration the machine is left at the trace entry (the next advance
// re-enters the trace immediately); on a bailout the machine's PC is the
// original address where interpretation must resume. Cycle and tally
// accounting reproduces the interpreter's: every trace instruction
// carries the op count of the original instructions it stands for, and
// memory latencies are charged exactly as doLoad/doStore charge them.
func (sr *specRunner) runTrace(inst *instance, sb *vm.Superblock) {
	if sr.tl != nil {
		sr.tl.Add(obs.Event{
			Kind: obs.EvTraceEnter, Time: inst.clock,
			Proc: int32(inst.proc), Age: int32(inst.age),
			Seg: int32(inst.seg.ID), Ref: -1,
		})
	}
	regs := inst.m.Regs
	var ops int64
	flush := func() {
		inst.clock += ops * sr.opCost
		inst.tally.instrs += ops
	}
	bail := func(pc int32) {
		flush()
		inst.m.PC = int(pc)
		sr.stats.TraceBailouts++
		if sr.tl != nil {
			sr.tl.Add(obs.Event{
				Kind: obs.EvTraceBailout, Time: inst.clock,
				Proc: int32(inst.proc), Age: int32(inst.age),
				Seg: int32(inst.seg.ID), Ref: -1, Aux: int64(pc),
			})
		}
	}
	for i := range sb.Instrs {
		in := &sb.Instrs[i]
		switch in.Op {
		case vm.TConst:
			regs[in.Dst] = in.Val
		case vm.TBin:
			a, b := regs[in.A], regs[in.B]
			var v int64
			switch in.BinOp {
			case ir.Add:
				v = a + b
			case ir.Sub:
				v = a - b
			case ir.Mul:
				v = a * b
			default:
				v = in.BinOp.Apply(a, b)
			}
			regs[in.Dst] = v
		case vm.TImmR:
			regs[in.SubR] = in.Val
			regs[in.Dst] = in.BinOp.Apply(regs[in.A], in.Val)
		case vm.TImmL:
			regs[in.SubR] = in.Val
			regs[in.Dst] = in.BinOp.Apply(in.Val, regs[in.B])
		case vm.TGuardZ:
			ops += int64(in.Cost)
			if (regs[in.A] == 0) != in.ExpectZero {
				bail(in.Bail)
				return
			}
			continue
		case vm.TGuardTest:
			regs[in.SubR] = in.Val
			cond := in.BinOp.Apply(regs[in.A], in.Val)
			regs[in.Dst] = cond
			ops += int64(in.Cost)
			if (cond == 0) != in.ExpectZero {
				bail(in.Bail)
				return
			}
			continue
		case vm.TLoad:
			md := &sr.refMeta[in.RefID]
			subs := sr.tsubs[:len(in.Subs)]
			for k, r := range in.Subs {
				subs[k] = regs[r]
			}
			addr := sr.addrOf(inst, md, subs)
			if in.Direct {
				// Elided: the label proved the read idempotent, so it
				// references non-speculative storage with no tracking and
				// no bail path (Definition 4, now as host-time speed).
				regs[in.Dst] = sr.mem[addr]
				inst.clock += sr.hier.Access(inst.proc, addr)
				sr.tallyRef(inst, md)
				sr.stats.TraceElidedOps++
			} else {
				if e := inst.buf.Lookup(addr); e != nil && (e.Written || e.ReadFromBelow) {
					regs[in.Dst] = e.Value
					inst.clock += sr.specLat
				} else {
					val := int64(0)
					srcAge := -1
					var lat int64
					found := false
					if !md.readOnly {
						for wi := inst.age - 1 - sr.baseAge; wi >= 0; wi-- {
							anc := sr.window[wi]
							if e := anc.buf.Lookup(addr); e != nil && e.Written {
								val, srcAge, lat, found = e.Value, anc.age, sr.specLat, true
								break
							}
						}
					}
					if !found {
						val = sr.mem[addr]
						lat = sr.hier.Access(inst.proc, addr)
					}
					if !inst.buf.NoteRead(addr, val, srcAge) {
						// Overflow: leave the load unexecuted and hand it
						// to the interpreter, whose doLoad runs the
						// ordinary stall-or-untracked protocol.
						bail(in.OrigPC)
						return
					}
					sr.trackOccupancy(inst)
					regs[in.Dst] = val
					inst.clock += lat
				}
				sr.tallyRef(inst, md)
				sr.stats.TraceGuardedOps++
			}
		case vm.TStore:
			md := &sr.refMeta[in.RefID]
			subs := sr.tsubs[:len(in.Subs)]
			for k, r := range in.Subs {
				subs[k] = regs[r]
			}
			addr := sr.addrOf(inst, md, subs)
			sr.checkViolation(inst, addr, in.RefID)
			if in.Direct {
				sr.mem[addr] = regs[in.A]
				inst.clock += sr.hier.Access(inst.proc, addr)
				sr.tallyRef(inst, md)
				sr.stats.TraceElidedOps++
			} else {
				if !inst.buf.Write(addr, regs[in.A]) {
					// Overflow, same protocol as loads: re-execute under
					// the interpreter. The violation check above may have
					// squashed younger instances already; re-running it
					// there is harmless (their premature reads are gone).
					bail(in.OrigPC)
					return
				}
				inst.clock += sr.specLat
				sr.trackOccupancy(inst)
				sr.tallyRef(inst, md)
				sr.stats.TraceGuardedOps++
			}
		case vm.TStepInner:
			regs[in.SubR] = in.Val
			regs[in.Dst] += in.Val
		case vm.TStep:
			regs[in.SubR] = in.Val
			regs[in.Dst] += in.Val
			ops += int64(in.Cost)
			inst.m.PC = sb.Entry
			flush()
			sr.stats.TraceIterations++
			return
		case vm.TEnd:
			ops += int64(in.Cost)
			inst.m.PC = sb.Entry
			flush()
			sr.stats.TraceIterations++
			return
		}
		ops += int64(in.Cost)
	}
	panic("engine: superblock without a terminating backedge")
}
