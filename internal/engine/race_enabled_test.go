//go:build race

package engine

// raceEnabled reports that this test binary runs under the race
// detector, where sync.Pool deliberately sheds items and allocation
// counts become nondeterministic — the alloc-regression guards skip.
const raceEnabled = true
