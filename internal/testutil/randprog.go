// Package testutil provides the seeded random program generator behind the
// property-based tests: random regions exercise the analysis pipeline and
// both execution engines far beyond the hand-written workloads.
//
// Generated affine subscripts are always within array bounds: the analysis
// contract (as for any Fortran-style compiler, and as in the paper) is
// that analyzable subscripts do not overflow their declared dimensions.
// Indirect (subscripted-subscript) accesses may take any value — the
// engine wraps them into bounds, and the dependence analysis treats them
// conservatively, exactly like the paper's K(E) references.
package testutil

import (
	"fmt"
	"math/rand"

	"refidem/internal/ir"
)

// GenConfig bounds the shape of generated programs.
type GenConfig struct {
	MaxScalars   int
	MaxArrays    int
	MaxArrayDim  int
	MaxStmts     int
	MaxIters     int
	MaxInnerTrip int
	// Regions sets how many regions the program contains (default 1).
	Regions int
	// AllowEarlyExit enables ExitRegion statements.
	AllowEarlyExit bool
	// AllowCFG enables CFG-region generation (otherwise loop regions).
	AllowCFG bool
	// AllowIndirect enables subscripted subscripts (uncertain addresses).
	AllowIndirect bool
}

// DefaultGen is a balanced configuration.
func DefaultGen() GenConfig {
	return GenConfig{
		MaxScalars: 4, MaxArrays: 3, MaxArrayDim: 24,
		MaxStmts: 6, MaxIters: 10, MaxInnerTrip: 4, Regions: 1,
		AllowEarlyExit: true, AllowCFG: true, AllowIndirect: true,
	}
}

// idxInfo describes an in-scope loop index and its maximum value (all
// generated loops run upward from 0).
type idxInfo struct {
	name string
	max  int
}

// gen carries generation state.
type gen struct {
	rng     *rand.Rand
	cfg     GenConfig
	p       *ir.Program
	scalars []*ir.Var
	arrays  []*ir.Var
	depth   int
}

// Program generates a deterministic pseudo-random one-region program for
// the seed.
func Program(seed int64, cfg GenConfig) *ir.Program {
	rng := rand.New(rand.NewSource(seed))
	g := &gen{rng: rng, cfg: cfg, p: ir.NewProgram("rand")}
	ns := 1 + rng.Intn(cfg.MaxScalars)
	for i := 0; i < ns; i++ {
		g.scalars = append(g.scalars, g.p.AddVar(scalarName(i)))
	}
	na := 1 + rng.Intn(cfg.MaxArrays)
	for i := 0; i < na; i++ {
		// Dimensions comfortably larger than the iteration counts so
		// in-bounds affine subscripts exist for any scale <= 2.
		dim := cfg.MaxIters*2 + rng.Intn(cfg.MaxArrayDim)
		g.arrays = append(g.arrays, g.p.AddVar(arrayName(i), dim))
	}
	regions := cfg.Regions
	if regions < 1 {
		regions = 1
	}
	for ri := 0; ri < regions; ri++ {
		var r *ir.Region
		if cfg.AllowCFG && rng.Intn(3) == 0 {
			r = g.cfgRegion()
		} else {
			r = g.loopRegion()
		}
		r.Name = fmt.Sprintf("r%d", ri)
		if ri == regions-1 {
			// Half the variables are live out of the program
			// (deterministically by index); earlier regions get their
			// live-out sets from the inter-region liveness pass.
			live := map[string]bool{}
			for i, v := range g.scalars {
				if i%2 == 0 {
					live[v.Name] = true
				}
			}
			for i, v := range g.arrays {
				if i%2 == 0 {
					live[v.Name] = true
				}
			}
			r.Ann.LiveOut = live
		}
		r.Finalize()
		g.p.AddRegion(r)
	}
	return g.p
}

// AffineLoopProgram generates a straight-line loop region with purely
// affine subscripts, no conditionals, no indirect accesses and no early
// exits — the restricted shape the brute-force trace oracles (dependence
// ground truth, Definition 5 RFW checking) can enumerate exactly.
func AffineLoopProgram(seed int64) *ir.Program {
	rng := rand.New(rand.NewSource(seed))
	p := ir.NewProgram("oracle")
	iters := 3 + rng.Intn(6)
	arrays := make([]*ir.Var, 1+rng.Intn(3))
	for i := range arrays {
		arrays[i] = p.AddVar("a"+string(rune('0'+i)), iters*3+8)
	}
	scalars := make([]*ir.Var, 1+rng.Intn(2))
	for i := range scalars {
		scalars[i] = p.AddVar("s" + string(rune('0'+i)))
	}
	affine := func(indices []string, dim int) ir.Expr {
		if len(indices) > 0 && rng.Intn(3) != 0 {
			idx := indices[rng.Intn(len(indices))]
			scale := 1 + rng.Intn(2)
			off := rng.Intn(5)
			return ir.AddE(ir.MulE(ir.C(int64(scale)), ir.Idx(idx)), ir.C(int64(off)))
		}
		return ir.C(int64(rng.Intn(dim)))
	}
	mkRef := func(indices []string, write bool) *ir.Ref {
		if rng.Intn(4) == 0 {
			v := scalars[rng.Intn(len(scalars))]
			if write {
				return ir.Wr(v)
			}
			return ir.Rd(v).(*ir.Load).Ref
		}
		v := arrays[rng.Intn(len(arrays))]
		if write {
			return ir.Wr(v, affine(indices, v.Dims[0]))
		}
		return ir.Rd(v, affine(indices, v.Dims[0])).(*ir.Load).Ref
	}
	var stmts func(n int, indices []string, depth int) []ir.Stmt
	stmts = func(n int, indices []string, depth int) []ir.Stmt {
		var out []ir.Stmt
		for i := 0; i < n; i++ {
			if depth < 2 && rng.Intn(4) == 0 {
				idx := "j" + string(rune('0'+depth))
				out = append(out, &ir.For{
					Index: idx, From: 0, To: rng.Intn(3) + 1, Step: 1,
					Body: stmts(1+rng.Intn(2), append(append([]string{}, indices...), idx), depth+1),
				})
				continue
			}
			out = append(out, &ir.Assign{
				LHS: mkRef(indices, true),
				RHS: ir.AddE(&ir.Load{Ref: mkRef(indices, false)}, ir.C(1)),
			})
		}
		return out
	}
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: iters - 1, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: stmts(1+rng.Intn(4), []string{"k"}, 0)}}}
	live := map[string]bool{}
	for i, v := range p.Vars {
		if i%2 == 0 {
			live[v.Name] = true
		}
	}
	r.Ann.LiveOut = live
	r.Finalize()
	p.AddRegion(r)
	return p
}

func scalarName(i int) string { return string(rune('s')) + string(rune('0'+i)) }
func arrayName(i int) string  { return string(rune('a')) + string(rune('0'+i)) }

func (g *gen) loopRegion() *ir.Region {
	iters := 2 + g.rng.Intn(g.cfg.MaxIters-1)
	body := g.stmts(1+g.rng.Intn(g.cfg.MaxStmts), []idxInfo{{"k", iters - 1}}, true)
	return &ir.Region{
		Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: iters - 1, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: body}},
	}
}

func (g *gen) cfgRegion() *ir.Region {
	n := 3 + g.rng.Intn(3)
	segs := make([]*ir.Segment, n)
	for i := 0; i < n; i++ {
		segs[i] = &ir.Segment{
			ID:   i,
			Name: "s" + string(rune('0'+i)),
			Body: g.stmts(1+g.rng.Intn(g.cfg.MaxStmts), nil, false),
		}
	}
	// Edges: forward-only. Each segment links to the next; some branch to
	// a random later segment.
	for i := 0; i < n-1; i++ {
		segs[i].Succs = []int{i + 1}
		if i+2 < n && g.rng.Intn(3) == 0 {
			other := i + 2 + g.rng.Intn(n-i-2)
			segs[i].Succs = append(segs[i].Succs, other)
			segs[i].Branch = g.expr(nil, 1)
		}
	}
	return &ir.Region{Name: "r", Kind: ir.CFGRegion, Segments: segs}
}

// stmts generates a statement list. indices are the in-scope loop indices.
func (g *gen) stmts(n int, indices []idxInfo, allowExit bool) []ir.Stmt {
	var out []ir.Stmt
	for i := 0; i < n; i++ {
		switch g.rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			out = append(out, g.assign(indices))
		case 6, 7:
			if g.depth < 2 {
				g.depth++
				s := &ir.If{
					Cond: g.expr(indices, 1),
					Then: g.stmts(1+g.rng.Intn(2), indices, false),
				}
				if g.rng.Intn(2) == 0 {
					s.Else = g.stmts(1+g.rng.Intn(2), indices, false)
				}
				g.depth--
				out = append(out, s)
			} else {
				out = append(out, g.assign(indices))
			}
		case 8:
			if g.depth < 2 {
				g.depth++
				trip := g.rng.Intn(g.cfg.MaxInnerTrip) + 1
				idx := idxInfo{name: "j" + string(rune('0'+g.depth)), max: trip}
				inner := append(append([]idxInfo{}, indices...), idx)
				out = append(out, &ir.For{
					Index: idx.name, From: 0, To: trip, Step: 1,
					Body: g.stmts(1+g.rng.Intn(2), inner, false),
				})
				g.depth--
			} else {
				out = append(out, g.assign(indices))
			}
		case 9:
			if allowExit && g.cfg.AllowEarlyExit && g.rng.Intn(4) == 0 {
				out = append(out, &ir.ExitRegion{Cond: g.expr(indices, 1)})
			} else {
				out = append(out, g.assign(indices))
			}
		}
	}
	return out
}

func (g *gen) assign(indices []idxInfo) ir.Stmt {
	return &ir.Assign{LHS: g.writeRef(indices), RHS: g.expr(indices, 0)}
}

func (g *gen) writeRef(indices []idxInfo) *ir.Ref {
	if g.rng.Intn(3) == 0 {
		return ir.Wr(g.scalars[g.rng.Intn(len(g.scalars))])
	}
	a := g.arrays[g.rng.Intn(len(g.arrays))]
	return ir.Wr(a, g.subscript(indices, a.Dims[0]))
}

// subscript produces an in-bounds affine index expression, or occasionally
// an indirect one (whose value the engine wraps and the analysis treats
// conservatively).
func (g *gen) subscript(indices []idxInfo, dim int) ir.Expr {
	if g.cfg.AllowIndirect && g.rng.Intn(8) == 0 {
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		return ir.Rd(a, g.affine(indices, a.Dims[0]))
	}
	return g.affine(indices, dim)
}

// affine builds scale*idx + c with scale*idxMax + c <= dim-1.
func (g *gen) affine(indices []idxInfo, dim int) ir.Expr {
	if len(indices) > 0 && g.rng.Intn(4) != 0 {
		idx := indices[g.rng.Intn(len(indices))]
		maxScale := 0
		if idx.max > 0 {
			maxScale = (dim - 1) / idx.max
		}
		if maxScale > 2 {
			maxScale = 2
		}
		if maxScale >= 1 {
			scale := 1 + g.rng.Intn(maxScale)
			room := dim - 1 - scale*idx.max
			c := 0
			if room > 0 {
				c = g.rng.Intn(room + 1)
			}
			return ir.AddE(ir.MulE(ir.C(int64(scale)), ir.Idx(idx.name)), ir.C(int64(c)))
		}
	}
	return ir.C(int64(g.rng.Intn(dim)))
}

// expr generates a right-hand-side expression; depth bounds recursion.
func (g *gen) expr(indices []idxInfo, depth int) ir.Expr {
	if depth > 2 {
		return ir.C(int64(g.rng.Intn(7) - 3))
	}
	switch g.rng.Intn(6) {
	case 0:
		return ir.C(int64(g.rng.Intn(9) - 4))
	case 1:
		if len(indices) > 0 {
			return ir.Idx(indices[g.rng.Intn(len(indices))].name)
		}
		return ir.C(1)
	case 2:
		return ir.Rd(g.scalars[g.rng.Intn(len(g.scalars))])
	case 3:
		a := g.arrays[g.rng.Intn(len(g.arrays))]
		return ir.Rd(a, g.subscript(indices, a.Dims[0]))
	default:
		ops := []ir.BinOp{ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Lt, ir.Gt, ir.Eq, ir.And}
		return ir.Op(ops[g.rng.Intn(len(ops))],
			g.expr(indices, depth+1), g.expr(indices, depth+1))
	}
}
