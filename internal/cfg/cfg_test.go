package cfg

import (
	"testing"

	"refidem/internal/ir"
)

// diamond builds 0 -> {1,2} -> 3 -> exit.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g, err := New([]int{0, 1, 2, 3}, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReaches(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 3, true}, {0, 1, true}, {1, 2, false}, {2, 1, false},
		{3, 0, false}, {1, 3, true}, {0, 0, true}, {3, Exit, true},
	}
	for _, c := range cases {
		if got := g.Reaches(c.a, c.b); got != c.want {
			t.Errorf("Reaches(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOnCommonPath(t *testing.T) {
	g := diamond(t)
	if g.OnCommonPath(1, 2) {
		t.Error("exclusive branches 1,2 should not share a path")
	}
	if !g.OnCommonPath(0, 3) || !g.OnCommonPath(3, 0) {
		t.Error("0 and 3 share every path")
	}
}

func TestBFSOrder(t *testing.T) {
	g := diamond(t)
	var order []int
	g.BFS(func(n int) { order = append(order, n) })
	if len(order) != 4 || order[0] != 0 || order[3] != 3 {
		t.Errorf("BFS order = %v", order)
	}
}

func TestPathsEnumeration(t *testing.T) {
	g := diamond(t)
	paths := g.Paths(0, 0)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(paths), paths)
	}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Errorf("path %v should start at 0 and end at 3", p)
		}
	}
	// maxPaths bounds enumeration.
	if got := g.Paths(0, 1); len(got) != 1 {
		t.Errorf("bounded enumeration returned %d paths", len(got))
	}
}

func TestAgeAndYounger(t *testing.T) {
	g := diamond(t)
	if g.Age(0) != 0 || g.Age(3) != 3 || g.Age(Exit) != 4 {
		t.Errorf("ages: %d %d %d", g.Age(0), g.Age(3), g.Age(Exit))
	}
	y := g.NodesYoungerThan(1)
	if len(y) != 2 || y[0] != 2 || y[1] != 3 {
		t.Errorf("NodesYoungerThan(1) = %v", y)
	}
}

func TestDescendants(t *testing.T) {
	g := diamond(t)
	d := g.Descendants(0)
	if len(d) != 3 || !d[1] || !d[2] || !d[3] {
		t.Errorf("Descendants(0) = %v", d)
	}
	if len(g.Descendants(3)) != 0 {
		t.Errorf("Descendants(3) = %v", g.Descendants(3))
	}
}

func TestHasBranch(t *testing.T) {
	g := diamond(t)
	if !g.HasBranch() {
		t.Error("diamond has a branch")
	}
	chain, err := New([]int{0, 1}, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if chain.HasBranch() {
		t.Error("chain has no branch")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New([]int{0, 0}, nil); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := New([]int{Exit}, nil); err == nil {
		t.Error("reserved exit ID accepted")
	}
	if _, err := New([]int{0}, [][2]int{{0, 5}}); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if _, err := New([]int{0}, [][2]int{{5, 0}}); err == nil {
		t.Error("edge from unknown node accepted")
	}
}

func TestFromRegionLoop(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 4)
	r := &ir.Region{
		Name: "r", Kind: ir.LoopRegion, Index: "k", From: 1, To: 4, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.C(1)},
		}}},
	}
	r.Finalize()
	g := FromRegion(r)
	if len(g.Nodes) != 1 || len(g.Succs(0)) != 1 || g.Succs(0)[0] != Exit {
		t.Errorf("loop region graph wrong: nodes=%v succs=%v", g.Nodes, g.Succs(0))
	}
}

func TestFromRegionCFG(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	segs := []*ir.Segment{
		{ID: 0, Name: "a", Succs: []int{1, 2}, Branch: ir.Rd(x)},
		{ID: 1, Name: "b", Succs: []int{3}},
		{ID: 2, Name: "c", Succs: []int{3}},
		{ID: 3, Name: "d"},
	}
	r := &ir.Region{Name: "r", Kind: ir.CFGRegion, Segments: segs}
	r.Finalize()
	g := FromRegion(r)
	if !g.HasBranch() {
		t.Error("branch lost")
	}
	if !g.Reaches(0, 3) || g.Reaches(1, 2) {
		t.Error("edges wrong")
	}
	if got := g.Succs(3); len(got) != 1 || got[0] != Exit {
		t.Errorf("segment without successors should point at Exit, got %v", got)
	}
}

func TestEntryEmptyGraph(t *testing.T) {
	g := newGraph(0)
	g.finalize()
	if g.Entry() != Exit {
		t.Error("empty graph entry should be Exit")
	}
	g.BFS(func(int) { t.Error("BFS on empty graph should not visit") })
}
