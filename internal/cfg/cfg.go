// Package cfg provides the segment control-flow graph used by the
// re-occurring-first-write analysis (Algorithm 1 of the paper) and by the
// dependence analysis. Nodes are segments plus a distinguished synthetic
// exit node placed at the region exit, exactly as the paper's algorithm
// prescribes ("An extra node v_exit is placed at the exit of R").
package cfg

import (
	"fmt"
	"sort"

	"refidem/internal/ir"
)

// Exit is the node ID of the synthetic exit node v_exit.
const Exit = -1

// Graph is a directed graph over segment IDs. For CFG regions it mirrors
// the region's segment edges; for loop regions it is the two-node
// template→exit chain (the iteration chain is handled symbolically by the
// analyses). Every node with no explicit successor gets an edge to Exit.
type Graph struct {
	// Nodes lists the real (non-exit) node IDs in age order.
	Nodes []int
	succs map[int][]int
	preds map[int][]int
	age   map[int]int
}

// FromRegion builds the segment graph of a region. For a CFG region the
// graph has one node per segment with the declared edges; segments without
// successors point at Exit. For a loop region the graph is the single
// template segment with an edge to Exit.
func FromRegion(r *ir.Region) *Graph {
	g := &Graph{succs: make(map[int][]int), preds: make(map[int][]int), age: make(map[int]int)}
	for i, s := range r.Segments {
		g.Nodes = append(g.Nodes, s.ID)
		g.age[s.ID] = i
	}
	for _, s := range r.Segments {
		if len(s.Succs) == 0 {
			g.addEdge(s.ID, Exit)
			continue
		}
		for _, succ := range s.Succs {
			g.addEdge(s.ID, succ)
		}
	}
	return g
}

// New builds a graph from explicit nodes (in age order) and edges; edges to
// Exit are permitted. Used by tests and by the random program generator.
func New(nodes []int, edges [][2]int) (*Graph, error) {
	g := &Graph{succs: make(map[int][]int), preds: make(map[int][]int), age: make(map[int]int)}
	for i, n := range nodes {
		if n == Exit {
			return nil, fmt.Errorf("cfg: node ID %d is reserved for the exit node", Exit)
		}
		if _, dup := g.age[n]; dup {
			return nil, fmt.Errorf("cfg: duplicate node %d", n)
		}
		g.Nodes = append(g.Nodes, n)
		g.age[n] = i
	}
	for _, e := range edges {
		if _, ok := g.age[e[0]]; !ok {
			return nil, fmt.Errorf("cfg: edge from unknown node %d", e[0])
		}
		if e[1] != Exit {
			if _, ok := g.age[e[1]]; !ok {
				return nil, fmt.Errorf("cfg: edge to unknown node %d", e[1])
			}
		}
		g.addEdge(e[0], e[1])
	}
	for _, n := range g.Nodes {
		if len(g.succs[n]) == 0 {
			g.addEdge(n, Exit)
		}
	}
	return g, nil
}

func (g *Graph) addEdge(from, to int) {
	for _, s := range g.succs[from] {
		if s == to {
			return
		}
	}
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
}

// Succs returns the successors of n (possibly including Exit).
func (g *Graph) Succs(n int) []int { return g.succs[n] }

// Preds returns the predecessors of n.
func (g *Graph) Preds(n int) []int { return g.preds[n] }

// Age returns the age rank of a node: older segments have smaller ranks.
// The exit node is younger than everything.
func (g *Graph) Age(n int) int {
	if n == Exit {
		return len(g.Nodes)
	}
	return g.age[n]
}

// Entry returns the oldest node (age 0).
func (g *Graph) Entry() int {
	if len(g.Nodes) == 0 {
		return Exit
	}
	return g.Nodes[0]
}

// Reaches reports whether there is a directed path from a to b (of length
// zero or more; a node reaches itself).
func (g *Graph) Reaches(a, b int) bool {
	if a == b {
		return true
	}
	seen := map[int]bool{a: true}
	work := []int{a}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, s := range g.succs[n] {
			if s == b {
				return true
			}
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return false
}

// OnCommonPath reports whether some control-flow path through the region
// contains both a and b. Since the graph is a DAG in age order, that is
// equivalent to one reaching the other. Dependences only exist between
// references whose segments can co-occur on a path (e.g. the two exclusive
// branch arms of Figure 2 carry no mutual dependence).
func (g *Graph) OnCommonPath(a, b int) bool {
	return g.Reaches(a, b) || g.Reaches(b, a)
}

// BFS visits nodes breadth-first from the entry node, calling f on each
// real node (not Exit). This is the traversal order of Algorithm 1.
func (g *Graph) BFS(f func(n int)) {
	if len(g.Nodes) == 0 {
		return
	}
	seen := map[int]bool{g.Entry(): true}
	queue := []int{g.Entry()}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		f(n)
		for _, s := range g.succs[n] {
			if s != Exit && !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
}

// Descendants returns the set of nodes reachable from n by one or more
// edges (Exit excluded).
func (g *Graph) Descendants(n int) map[int]bool {
	out := make(map[int]bool)
	work := append([]int(nil), g.succs[n]...)
	for len(work) > 0 {
		x := work[0]
		work = work[1:]
		if x == Exit || out[x] {
			continue
		}
		out[x] = true
		work = append(work, g.succs[x]...)
	}
	return out
}

// Paths enumerates every path from the node `from` to the exit node, as
// slices of real node IDs (Exit omitted). It is exponential and intended
// only for tests and the RFW property checker on small graphs; maxPaths
// bounds the enumeration (0 means unlimited).
func (g *Graph) Paths(from int, maxPaths int) [][]int {
	var out [][]int
	var cur []int
	var rec func(n int) bool
	rec = func(n int) bool {
		if n == Exit {
			path := append([]int(nil), cur...)
			out = append(out, path)
			return maxPaths > 0 && len(out) >= maxPaths
		}
		cur = append(cur, n)
		for _, s := range g.succs[n] {
			if rec(s) {
				return true
			}
		}
		cur = cur[:len(cur)-1]
		return false
	}
	rec(from)
	return out
}

// NodesYoungerThan returns all real nodes with age strictly greater than
// the age of n, sorted by age.
func (g *Graph) NodesYoungerThan(n int) []int {
	var out []int
	for _, m := range g.Nodes {
		if g.Age(m) > g.Age(n) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return g.Age(out[i]) < g.Age(out[j]) })
	return out
}

// HasBranch reports whether any node has more than one successor, which
// for a region means cross-segment control dependence exists.
func (g *Graph) HasBranch() bool {
	for _, n := range g.Nodes {
		if len(g.succs[n]) > 1 {
			return true
		}
	}
	return false
}
