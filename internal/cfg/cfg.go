// Package cfg provides the segment control-flow graph used by the
// re-occurring-first-write analysis (Algorithm 1 of the paper) and by the
// dependence analysis. Nodes are segments plus a distinguished synthetic
// exit node placed at the region exit, exactly as the paper's algorithm
// prescribes ("An extra node v_exit is placed at the exit of R").
//
// The graph is finalized at construction into dense position-indexed
// adjacency plus a reachability closure and a precomputed BFS order, so
// the per-pair queries the dependence analysis issues (OnCommonPath,
// Reaches) are O(1) and allocation-free.
package cfg

import (
	"fmt"
	"sort"

	"refidem/internal/ir"
)

// Exit is the node ID of the synthetic exit node v_exit.
const Exit = -1

// Graph is a directed graph over segment IDs. For CFG regions it mirrors
// the region's segment edges; for loop regions it is the two-node
// template→exit chain (the iteration chain is handled symbolically by the
// analyses). Every node with no explicit successor gets an edge to Exit.
type Graph struct {
	// Nodes lists the real (non-exit) node IDs in age order.
	Nodes []int

	pos   map[int]int // node ID -> age position; Exit handled separately
	succs [][]int     // by position (Exit row at len(Nodes))
	preds [][]int
	// reach[a*(n+1)+b] reports a path of length >= 1 from position a to
	// position b, where position n is Exit.
	reach     []bool
	bfsOrder  []int // node IDs in Algorithm 1's BFS order from the entry
	hasBranch bool
}

// FromRegion builds the segment graph of a region. For a CFG region the
// graph has one node per segment with the declared edges; segments without
// successors point at Exit. For a loop region the graph is the single
// template segment with an edge to Exit.
func FromRegion(r *ir.Region) *Graph {
	g := newGraph(len(r.Segments))
	for i, s := range r.Segments {
		g.Nodes = append(g.Nodes, s.ID)
		g.pos[s.ID] = i
	}
	for _, s := range r.Segments {
		if len(s.Succs) == 0 {
			g.addEdge(s.ID, Exit)
			continue
		}
		for _, succ := range s.Succs {
			g.addEdge(s.ID, succ)
		}
	}
	g.finalize()
	return g
}

// New builds a graph from explicit nodes (in age order) and edges; edges to
// Exit are permitted. Used by tests and by the random program generator.
func New(nodes []int, edges [][2]int) (*Graph, error) {
	g := newGraph(len(nodes))
	for i, n := range nodes {
		if n == Exit {
			return nil, fmt.Errorf("cfg: node ID %d is reserved for the exit node", Exit)
		}
		if _, dup := g.pos[n]; dup {
			return nil, fmt.Errorf("cfg: duplicate node %d", n)
		}
		g.Nodes = append(g.Nodes, n)
		g.pos[n] = i
	}
	for _, e := range edges {
		if _, ok := g.pos[e[0]]; !ok {
			return nil, fmt.Errorf("cfg: edge from unknown node %d", e[0])
		}
		if e[1] != Exit {
			if _, ok := g.pos[e[1]]; !ok {
				return nil, fmt.Errorf("cfg: edge to unknown node %d", e[1])
			}
		}
		g.addEdge(e[0], e[1])
	}
	for i, n := range g.Nodes {
		if len(g.succs[i]) == 0 {
			g.addEdge(n, Exit)
		}
	}
	g.finalize()
	return g, nil
}

func newGraph(n int) *Graph {
	return &Graph{
		pos:   make(map[int]int, n),
		succs: make([][]int, n+1),
		preds: make([][]int, n+1),
	}
}

// posOf returns the dense position of a node ID: its age rank, len(Nodes)
// for Exit, and -1 for unknown IDs.
func (g *Graph) posOf(n int) int {
	if n == Exit {
		return len(g.Nodes)
	}
	if p, ok := g.pos[n]; ok {
		return p
	}
	return -1
}

func (g *Graph) addEdge(from, to int) {
	pf, pt := g.posOf(from), g.posOf(to)
	for _, s := range g.succs[pf] {
		if s == to {
			return
		}
	}
	g.succs[pf] = append(g.succs[pf], to)
	g.preds[pt] = append(g.preds[pt], from)
}

// finalize computes the derived structures: the reachability closure, the
// BFS order and the branch flag. Edges must not be added afterwards.
func (g *Graph) finalize() {
	n := len(g.Nodes)
	g.reach = make([]bool, (n+1)*(n+1))
	// Per-source BFS over positions; graphs are tiny (segments of one
	// region) and this also covers non-DAG inputs to New.
	work := make([]int, 0, n+1)
	for src := 0; src <= n; src++ {
		row := g.reach[src*(n+1) : (src+1)*(n+1)]
		work = work[:0]
		work = append(work, src)
		for len(work) > 0 {
			p := work[0]
			work = work[1:]
			for _, succ := range g.succs[p] {
				sp := g.posOf(succ)
				if !row[sp] {
					row[sp] = true
					work = append(work, sp)
				}
			}
		}
	}
	for i := range g.Nodes {
		if len(g.succs[i]) > 1 {
			g.hasBranch = true
		}
	}
	if n == 0 {
		return
	}
	// Algorithm 1's traversal: FIFO from the entry node, successors in
	// edge order, Exit excluded.
	seen := make([]bool, n)
	g.bfsOrder = make([]int, 0, n)
	queue := work[:0]
	queue = append(queue, 0)
	seen[0] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		g.bfsOrder = append(g.bfsOrder, g.Nodes[p])
		for _, succ := range g.succs[p] {
			if succ == Exit {
				continue
			}
			sp := g.posOf(succ)
			if !seen[sp] {
				seen[sp] = true
				queue = append(queue, sp)
			}
		}
	}
}

// Succs returns the successors of n (possibly including Exit).
func (g *Graph) Succs(n int) []int {
	p := g.posOf(n)
	if p < 0 {
		return nil
	}
	return g.succs[p]
}

// Preds returns the predecessors of n.
func (g *Graph) Preds(n int) []int {
	p := g.posOf(n)
	if p < 0 {
		return nil
	}
	return g.preds[p]
}

// Age returns the age rank of a node: older segments have smaller ranks.
// The exit node is younger than everything.
func (g *Graph) Age(n int) int {
	if n == Exit {
		return len(g.Nodes)
	}
	return g.pos[n]
}

// Entry returns the oldest node (age 0).
func (g *Graph) Entry() int {
	if len(g.Nodes) == 0 {
		return Exit
	}
	return g.Nodes[0]
}

// Reaches reports whether there is a directed path from a to b (of length
// zero or more; a node reaches itself).
func (g *Graph) Reaches(a, b int) bool {
	if a == b {
		return true
	}
	pa, pb := g.posOf(a), g.posOf(b)
	if pa < 0 || pb < 0 {
		return false
	}
	return g.reach[pa*(len(g.Nodes)+1)+pb]
}

// OnCommonPath reports whether some control-flow path through the region
// contains both a and b. Since the graph is a DAG in age order, that is
// equivalent to one reaching the other. Dependences only exist between
// references whose segments can co-occur on a path (e.g. the two exclusive
// branch arms of Figure 2 carry no mutual dependence).
func (g *Graph) OnCommonPath(a, b int) bool {
	return g.Reaches(a, b) || g.Reaches(b, a)
}

// BFS visits nodes breadth-first from the entry node, calling f on each
// real node (not Exit). This is the traversal order of Algorithm 1.
func (g *Graph) BFS(f func(n int)) {
	for _, n := range g.bfsOrder {
		f(n)
	}
}

// Descendants returns the set of nodes reachable from n by one or more
// edges (Exit excluded).
func (g *Graph) Descendants(n int) map[int]bool {
	out := make(map[int]bool)
	p := g.posOf(n)
	if p < 0 {
		return out
	}
	row := g.reach[p*(len(g.Nodes)+1):]
	for i, id := range g.Nodes {
		if row[i] {
			out[id] = true
		}
	}
	return out
}

// Paths enumerates every path from the node `from` to the exit node, as
// slices of real node IDs (Exit omitted). It is exponential and intended
// only for tests and the RFW property checker on small graphs; maxPaths
// bounds the enumeration (0 means unlimited).
func (g *Graph) Paths(from int, maxPaths int) [][]int {
	var out [][]int
	var cur []int
	var rec func(n int) bool
	rec = func(n int) bool {
		if n == Exit {
			path := append([]int(nil), cur...)
			out = append(out, path)
			return maxPaths > 0 && len(out) >= maxPaths
		}
		cur = append(cur, n)
		for _, s := range g.Succs(n) {
			if rec(s) {
				return true
			}
		}
		cur = cur[:len(cur)-1]
		return false
	}
	rec(from)
	return out
}

// NodesYoungerThan returns all real nodes with age strictly greater than
// the age of n, sorted by age.
func (g *Graph) NodesYoungerThan(n int) []int {
	var out []int
	for _, m := range g.Nodes {
		if g.Age(m) > g.Age(n) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return g.Age(out[i]) < g.Age(out[j]) })
	return out
}

// HasBranch reports whether any node has more than one successor, which
// for a region means cross-segment control dependence exists.
func (g *Graph) HasBranch() bool { return g.hasBranch }
