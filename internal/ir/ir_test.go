package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestVarSizeAndKind(t *testing.T) {
	p := NewProgram("t")
	s := p.AddVar("s")
	a := p.AddVar("a", 4, 5)
	if !s.IsScalar() || s.Size() != 1 {
		t.Errorf("scalar: IsScalar=%v Size=%d", s.IsScalar(), s.Size())
	}
	if a.IsScalar() || a.Size() != 20 {
		t.Errorf("array: IsScalar=%v Size=%d", a.IsScalar(), a.Size())
	}
	if p.Var("a") != a || p.Var("nope") != nil {
		t.Error("Var lookup broken")
	}
}

func TestAddVarPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate variable")
		}
	}()
	p := NewProgram("t")
	p.AddVar("x")
	p.AddVar("x")
}

func TestAddVarPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive dimension")
		}
	}()
	p := NewProgram("t")
	p.AddVar("x", 0)
}

func TestLoopInfoTrips(t *testing.T) {
	cases := []struct {
		from, to, step, want int
	}{
		{1, 10, 1, 10},
		{10, 1, -1, 10},
		{1, 10, 2, 5},
		{1, 9, 2, 5},
		{5, 5, 1, 1},
		{5, 4, 1, 0},
		{4, 5, -1, 0},
		{0, 10, 3, 4},
		{1, 1, -1, 1},
		{3, 3, 0, 0},
	}
	for _, c := range cases {
		got := LoopInfo{From: c.from, To: c.to, Step: c.step}.Trips()
		if got != c.want {
			t.Errorf("Trips(%d,%d,%d) = %d, want %d", c.from, c.to, c.step, got, c.want)
		}
	}
}

func TestIndexValues(t *testing.T) {
	r := &Region{Kind: LoopRegion, Index: "k", From: 5, To: 1, Step: -2}
	got := r.IndexValues()
	want := []int64{5, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("IndexValues = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IndexValues = %v, want %v", got, want)
		}
	}
	if (&Region{Kind: CFGRegion}).IndexValues() != nil {
		t.Error("CFG region should have no index values")
	}
}

// makeLoopRegion builds the region:
//
//	region r loop k = 1 to 4 {
//	  t = b[k] + b[k+1]
//	  if t > 0 { a[k] = t }
//	  for j = 1 to 3 { c[j,k] = a[k] * j }
//	}
func makeLoopRegion(t *testing.T) (*Program, *Region) {
	t.Helper()
	p := NewProgram("t")
	a := p.AddVar("a", 8)
	b := p.AddVar("b", 8)
	c := p.AddVar("c", 4, 8)
	tv := p.AddVar("t")
	body := []Stmt{
		&Assign{LHS: Wr(tv), RHS: AddE(Rd(b, Idx("k")), Rd(b, AddE(Idx("k"), C(1))))},
		&If{Cond: Op(Gt, Rd(tv), C(0)), Then: []Stmt{
			&Assign{LHS: Wr(a, Idx("k")), RHS: Rd(tv)},
		}},
		&For{Index: "j", From: 1, To: 3, Step: 1, Body: []Stmt{
			&Assign{LHS: Wr(c, Idx("j"), Idx("k")), RHS: MulE(Rd(a, Idx("k")), Idx("j"))},
		}},
	}
	r := &Region{
		Name: "r", Kind: LoopRegion, Index: "k", From: 1, To: 4, Step: 1,
		Segments: []*Segment{{ID: 0, Name: "body", Body: body}},
	}
	r.Finalize()
	p.AddRegion(r)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p, r
}

func TestFinalizeNumbersRefsInTextualOrder(t *testing.T) {
	_, r := makeLoopRegion(t)
	// Expected reference order: read b[k], read b[k+1], write t, read t
	// (cond), read t, write a[k], read a[k], write c[j,k].
	wantVars := []string{"b", "b", "t", "t", "t", "a", "a", "c"}
	wantAcc := []AccessType{Read, Read, Write, Read, Read, Write, Read, Write}
	if len(r.Refs) != len(wantVars) {
		t.Fatalf("got %d refs, want %d: %v", len(r.Refs), len(wantVars), r.Refs)
	}
	for i, ref := range r.Refs {
		if ref.Var.Name != wantVars[i] || ref.Access != wantAcc[i] {
			t.Errorf("ref %d = %s %s, want %s %s", i, ref.Access, ref.Var.Name, wantAcc[i], wantVars[i])
		}
		if ref.ID != i || ref.Pos != i {
			t.Errorf("ref %d has ID=%d Pos=%d", i, ref.ID, ref.Pos)
		}
	}
}

func TestFinalizeContexts(t *testing.T) {
	_, r := makeLoopRegion(t)
	// The a[k] write (index 5) is conditional; the c write (index 7) is
	// inside inner loop j.
	if !r.Refs[4].Ctx.Conditional || !r.Refs[5].Ctx.Conditional {
		t.Error("refs inside if should be conditional")
	}
	if r.Refs[0].Ctx.Conditional {
		t.Error("top-level ref should not be conditional")
	}
	w := r.Refs[7]
	if len(w.Ctx.Loops) != 1 || w.Ctx.Loops[0].Index != "j" {
		t.Errorf("c write loop context = %+v", w.Ctx.Loops)
	}
	if len(r.Refs[0].Ctx.Loops) != 0 {
		t.Error("top-level ref should have no loop context")
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	_, r := makeLoopRegion(t)
	ids := make([]int, len(r.Refs))
	for i, ref := range r.Refs {
		ids[i] = ref.ID
	}
	r.Finalize()
	if len(r.Refs) != len(ids) {
		t.Fatalf("second Finalize changed ref count: %d vs %d", len(r.Refs), len(ids))
	}
	for i, ref := range r.Refs {
		if ref.ID != ids[i] {
			t.Errorf("ref %d changed ID after re-Finalize", i)
		}
	}
}

func TestSegRefsAndVarRefs(t *testing.T) {
	p, r := makeLoopRegion(t)
	if n := len(r.SegRefs(0)); n != 8 {
		t.Errorf("SegRefs(0) = %d refs, want 8", n)
	}
	if n := len(r.VarRefs(p.Var("b"))); n != 2 {
		t.Errorf("VarRefs(b) = %d, want 2", n)
	}
	if n := len(r.VarRefs(p.Var("t"))); n != 3 {
		t.Errorf("VarRefs(t) = %d, want 3", n)
	}
	vars := r.RegionVars()
	if len(vars) != 4 {
		t.Errorf("RegionVars = %v, want 4 vars", vars)
	}
}

func TestHasEarlyExit(t *testing.T) {
	_, r := makeLoopRegion(t)
	if r.HasEarlyExit() {
		t.Error("region without exit reported early exit")
	}
	r.Segments[0].Body = append(r.Segments[0].Body, &ExitRegion{Cond: C(0)})
	r.Finalize()
	if !r.HasEarlyExit() {
		t.Error("region with exit not reported")
	}
}

func TestValidateCatchesCFGErrors(t *testing.T) {
	p := NewProgram("t")
	x := p.AddVar("x")
	mk := func(segs []*Segment) *Region {
		r := &Region{Name: "r", Kind: CFGRegion, Segments: segs}
		r.Finalize()
		return r
	}
	// Edge violating age order.
	bad := NewProgram("bad")
	y := bad.AddVar("y")
	r := mk([]*Segment{
		{ID: 0, Name: "a", Succs: []int{1}},
		{ID: 1, Name: "b", Succs: []int{0}, Body: []Stmt{&Assign{LHS: Wr(y), RHS: C(1)}}},
	})
	bad.AddRegion(r)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "age order") {
		t.Errorf("cycle not rejected: %v", err)
	}
	// Branch with one successor.
	p2 := NewProgram("p2")
	z := p2.AddVar("z")
	r2 := mk([]*Segment{
		{ID: 0, Name: "a", Succs: []int{1}, Branch: C(1)},
		{ID: 1, Name: "b", Body: []Stmt{&Assign{LHS: Wr(z), RHS: C(1)}}},
	})
	p2.AddRegion(r2)
	if err := p2.Validate(); err == nil {
		t.Error("branch arity not rejected")
	}
	_ = x
}

func TestValidateCatchesSubscriptArity(t *testing.T) {
	p := NewProgram("t")
	a := p.AddVar("a", 4, 4)
	r := &Region{
		Name: "r", Kind: LoopRegion, Index: "k", From: 1, To: 2, Step: 1,
		Segments: []*Segment{{ID: 0, Body: []Stmt{
			&Assign{LHS: Wr(a, Idx("k")), RHS: C(0)}, // one subscript for 2-D array
		}}},
	}
	r.Finalize()
	p.AddRegion(r)
	if err := p.Validate(); err == nil {
		t.Error("subscript arity mismatch not rejected")
	}
}

func TestValidateCatchesUnknownIndex(t *testing.T) {
	p := NewProgram("t")
	a := p.AddVar("a", 4)
	r := &Region{
		Name: "r", Kind: LoopRegion, Index: "k", From: 1, To: 2, Step: 1,
		Segments: []*Segment{{ID: 0, Body: []Stmt{
			&Assign{LHS: Wr(a, Idx("nope")), RHS: C(0)},
		}}},
	}
	r.Finalize()
	p.AddRegion(r)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown index not rejected: %v", err)
	}
}

func TestBinOpApply(t *testing.T) {
	cases := []struct {
		op   BinOp
		a, b int64
		want int64
	}{
		{Add, 3, 4, 7}, {Sub, 3, 4, -1}, {Mul, 3, 4, 12},
		{Div, 12, 4, 3}, {Div, 7, 0, 0}, {Div, -7, 2, -3},
		{Mod, 7, 3, 1}, {Mod, 7, 0, 0},
		{Lt, 1, 2, 1}, {Lt, 2, 1, 0},
		{Le, 2, 2, 1}, {Gt, 3, 2, 1}, {Ge, 2, 3, 0},
		{Eq, 5, 5, 1}, {Ne, 5, 5, 0},
		{And, 1, 0, 0}, {And, 2, 3, 1},
		{Or, 0, 0, 0}, {Or, 0, 9, 1},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v.Apply(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestAffineOf(t *testing.T) {
	// 2*k + j - 3
	e := SubE(AddE(MulE(C(2), Idx("k")), Idx("j")), C(3))
	a, ok := AffineOf(e)
	if !ok {
		t.Fatal("expected affine")
	}
	if a.Const != -3 || a.Coefficient("k") != 2 || a.Coefficient("j") != 1 {
		t.Errorf("affine = %+v", a)
	}
	// k*k is not affine.
	if _, ok := AffineOf(MulE(Idx("k"), Idx("k"))); ok {
		t.Error("k*k should not be affine")
	}
	// Loads are not affine.
	p := NewProgram("t")
	v := p.AddVar("v", 4)
	if _, ok := AffineOf(Rd(v, C(0))); ok {
		t.Error("load should not be affine")
	}
	// Coefficients that cancel disappear.
	a2, ok := AffineOf(SubE(Idx("k"), Idx("k")))
	if !ok || a2.Coefficient("k") != 0 || a2.Const != 0 {
		t.Errorf("k-k = %+v ok=%v", a2, ok)
	}
}

func TestAddrCertain(t *testing.T) {
	p := NewProgram("t")
	v := p.AddVar("v", 8)
	e := p.AddVar("e", 8)
	if !AddrCertain(Wr(v, AddE(Idx("k"), C(1)))) {
		t.Error("affine subscript should be certain")
	}
	// v[e[k]] — subscripted subscript, like K(E) in the paper.
	if AddrCertain(Wr(v, Rd(e, Idx("k")))) {
		t.Error("subscripted subscript should be uncertain")
	}
	if !AddrCertain(Wr(p.AddVar("s"))) {
		t.Error("scalar should be certain")
	}
}

func TestExprRefsOrder(t *testing.T) {
	p := NewProgram("t")
	a := p.AddVar("a", 4)
	b := p.AddVar("b")
	// a[b] + b: reads are b (subscript), a[b], b.
	e := AddE(Rd(a, Rd(b)), Rd(b))
	refs := ExprRefs(e)
	if len(refs) != 3 {
		t.Fatalf("got %d refs", len(refs))
	}
	if refs[0].Var.Name != "b" || refs[1].Var.Name != "a" || refs[2].Var.Name != "b" {
		t.Errorf("order = %v", refs)
	}
}

func TestAffineAddScaleProperties(t *testing.T) {
	// Affine decomposition of c1*k + c2 round-trips the coefficients.
	f := func(c1, c2 int16) bool {
		e := AddE(MulE(C(int64(c1)), Idx("k")), C(int64(c2)))
		a, ok := AffineOf(e)
		return ok && a.Coefficient("k") == int64(c1) && a.Const == int64(c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatRoundTripShape(t *testing.T) {
	p, _ := makeLoopRegion(t)
	s := p.Format()
	for _, want := range []string{"program t", "var a[8]", "var c[4,8]", "region r loop k = 1 to 4", "for j = 1 to 3", "if (t > 0)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q in:\n%s", want, s)
		}
	}
}

func TestRefString(t *testing.T) {
	p := NewProgram("t")
	v := p.AddVar("v", 4)
	r := Wr(v, Idx("k"))
	r.ID = 7
	r.SegID = 2
	if got := r.String(); !strings.Contains(got, "write") || !strings.Contains(got, "v[k]") {
		t.Errorf("String = %q", got)
	}
}
