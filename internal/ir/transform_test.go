package ir

import (
	"strings"
	"testing"
)

func blockTestRegion(t *testing.T) (*Program, *Region) {
	t.Helper()
	p := NewProgram("t")
	a := p.AddVar("a", 64)
	b := p.AddVar("b", 64)
	body := []Stmt{
		&Assign{LHS: Wr(a, Idx("k")), RHS: AddE(Rd(b, Idx("k")), C(1))},
		&For{Index: "j", From: 0, To: 2, Step: 1, Body: []Stmt{
			&Assign{LHS: Wr(a, AddE(Idx("k"), C(32))), RHS: Idx("j")},
		}},
	}
	r := &Region{Name: "r", Kind: LoopRegion, Index: "k", From: 0, To: 11, Step: 1,
		Segments: []*Segment{{ID: 0, Body: body}}}
	r.Ann.LiveOut = map[string]bool{"a": true}
	r.Finalize()
	p.AddRegion(r)
	return p, r
}

func TestCloneStmtsIndependence(t *testing.T) {
	_, r := blockTestRegion(t)
	clone := CloneStmts(r.Segments[0].Body)
	orig := r.Segments[0].Body[0].(*Assign)
	copied := clone[0].(*Assign)
	if orig.LHS == copied.LHS {
		t.Error("clone shares LHS ref")
	}
	if orig.LHS.Var != copied.LHS.Var {
		t.Error("clone should share variables")
	}
	// Mutating the clone must not affect the original.
	copied.LHS.Subs[0] = C(99)
	if orig.LHS.Subs[0].String() == "99" {
		t.Error("clone aliases original subscripts")
	}
}

func TestSubstituteIndex(t *testing.T) {
	_, r := blockTestRegion(t)
	body := CloneStmts(r.Segments[0].Body)
	SubstituteIndex(body, "k", AddE(Idx("kb"), C(5)))
	s := (&Region{Name: "x", Kind: LoopRegion, Index: "kb", From: 0, To: 1, Step: 1,
		Segments: []*Segment{{ID: 0, Body: body}}}).Format()
	if strings.Contains(s, "a[k]") {
		t.Errorf("substitution missed a use:\n%s", s)
	}
	if !strings.Contains(s, "(kb + 5)") {
		t.Errorf("substituted expression missing:\n%s", s)
	}
	// Inner loop index j untouched.
	if !strings.Contains(s, "for j = 0 to 2") {
		t.Errorf("inner loop damaged:\n%s", s)
	}
}

func TestSubstituteIndexShadowing(t *testing.T) {
	p := NewProgram("t")
	a := p.AddVar("a", 8)
	body := []Stmt{
		&For{Index: "k", From: 0, To: 3, Step: 1, Body: []Stmt{
			&Assign{LHS: Wr(a, Idx("k")), RHS: C(1)},
		}},
	}
	SubstituteIndex(body, "k", C(7))
	inner := body[0].(*For).Body[0].(*Assign)
	if inner.LHS.Subs[0].String() != "k" {
		t.Errorf("shadowed index was substituted: %s", inner.LHS.Subs[0])
	}
}

func TestBlockLoopRegion(t *testing.T) {
	p, r := blockTestRegion(t)
	blocked, err := BlockLoopRegion(r, 3)
	if err != nil {
		t.Fatal(err)
	}
	if blocked.InstanceCount() != 4 {
		t.Errorf("12 iterations / block 3 = 4 segments, got %d", blocked.InstanceCount())
	}
	p2 := &Program{Name: "t2", Vars: p.Vars}
	p2.AddRegion(blocked)
	if err := p2.Validate(); err != nil {
		t.Fatalf("blocked region invalid: %v", err)
	}
	// The body appears once inside the block loop: the static reference
	// count is unchanged (each ref now executes `block` times per
	// segment).
	if len(blocked.Refs) != len(r.Refs) {
		t.Errorf("blocked refs = %d, want %d", len(blocked.Refs), len(r.Refs))
	}
	// Every reference sits under the block loop.
	for _, ref := range blocked.Refs {
		if len(ref.Ctx.Loops) == 0 || ref.Ctx.Loops[0].Index != "k_sub" {
			t.Errorf("ref %v not nested under the block loop: %+v", ref, ref.Ctx.Loops)
		}
	}
}

func TestBlockLoopRegionIdentity(t *testing.T) {
	_, r := blockTestRegion(t)
	b1, err := BlockLoopRegion(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b1.InstanceCount() != r.InstanceCount() {
		t.Error("block=1 should keep the iteration count")
	}
	if b1.Segments[0] == r.Segments[0] {
		t.Error("block=1 must still clone")
	}
}

func TestBlockLoopRegionErrors(t *testing.T) {
	p, r := blockTestRegion(t)
	if _, err := BlockLoopRegion(r, 5); err == nil {
		t.Error("non-dividing block accepted")
	}
	if _, err := BlockLoopRegion(r, 0); err == nil {
		t.Error("zero block accepted")
	}
	cfgR := &Region{Name: "c", Kind: CFGRegion, Segments: []*Segment{{ID: 0}}}
	if _, err := BlockLoopRegion(cfgR, 2); err == nil {
		t.Error("CFG region accepted")
	}
	exitR := &Region{Name: "e", Kind: LoopRegion, Index: "k", From: 0, To: 11, Step: 1,
		Segments: []*Segment{{ID: 0, Body: []Stmt{&ExitRegion{Cond: C(0)}}}}}
	exitR.Finalize()
	if _, err := BlockLoopRegion(exitR, 2); err == nil {
		t.Error("early-exit region accepted")
	}
	_ = p
}

func TestBlockProgram(t *testing.T) {
	p, _ := blockTestRegion(t)
	bp, err := BlockProgram(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.Validate(); err != nil {
		t.Fatal(err)
	}
	if bp.Regions[0].InstanceCount() != 3 {
		t.Errorf("instances = %d, want 3", bp.Regions[0].InstanceCount())
	}
	if len(bp.Vars) != len(p.Vars) {
		t.Error("variable table should be shared")
	}
}
