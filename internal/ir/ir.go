// Package ir defines the program representation used throughout the
// reproduction: programs made of regions, regions made of segments, and
// segments made of structured statements whose variable accesses are
// explicit Ref nodes.
//
// The model follows Definition 1 of the paper: a program is structured into
// regions (single entry, single exit) which execute sequentially with
// respect to one another, and regions are sub-structured into segments, the
// units of speculative parallel execution. Two region shapes are supported:
//
//   - LoopRegion: one segment template; the segment instances are the
//     iterations of the region loop (the paper's evaluation setting,
//     "regions are loops and segments are loop iterations").
//   - CFGRegion: an explicit DAG of segments with control-flow edges
//     (the setting of Figures 2 and 3 in the paper). Age order is the
//     topological order of the DAG, which equals sequential program order.
package ir

import (
	"fmt"
	"sort"
)

// AccessType distinguishes read references from write references.
type AccessType uint8

const (
	// Read is a load reference.
	Read AccessType = iota
	// Write is a store reference.
	Write
)

// String returns "read" or "write".
func (a AccessType) String() string {
	if a == Read {
		return "read"
	}
	return "write"
}

// Var is a program variable: a scalar or a rectangular array of int64
// cells. Variables live in the program-wide variable table and are shared
// by all regions of the program; memory persists across regions.
type Var struct {
	Name string
	// Dims holds the array dimensions; nil or empty means scalar.
	// Subscripts are 0-based and are wrapped modulo the dimension at
	// execution time so that synthetic programs can never index out of
	// bounds (see vm package).
	Dims []int
}

// IsScalar reports whether v has no array dimensions.
func (v *Var) IsScalar() bool { return len(v.Dims) == 0 }

// Size returns the number of int64 cells the variable occupies.
func (v *Var) Size() int {
	n := 1
	for _, d := range v.Dims {
		n *= d
	}
	return n
}

func (v *Var) String() string { return v.Name }

// Ref is a single textual memory reference: one read or write occurrence
// of a variable, with its subscript expressions. Every occurrence in the
// program text is a distinct Ref with a unique ID; the dependence analysis,
// the RFW analysis and the labeling algorithm all operate reference by
// reference, as in the paper.
type Ref struct {
	ID     int
	Var    *Var
	Access AccessType
	// Subs holds one subscript expression per array dimension; empty for
	// scalars.
	Subs []Expr

	// SegID is the ID of the enclosing segment. Pos is the textual
	// (program-order) position of the reference within its segment; for
	// references not nested in a common inner loop this is also the
	// execution order.
	SegID int
	Pos   int

	// Ctx describes the loop nest and conditional context enclosing the
	// reference inside its segment; it is filled in by Region.Finalize.
	Ctx RefCtx
}

// RefCtx records where inside a segment a reference sits: the enclosing
// inner loops (innermost last) and whether any enclosing statement is a
// conditional, in which case the reference is not guaranteed to execute on
// all paths through the segment.
type RefCtx struct {
	Loops       []LoopInfo
	Conditional bool
}

// LoopInfo describes one inner loop of a segment body. ID identifies the
// loop statement uniquely within the region (assigned by Finalize), so two
// references share an enclosing loop exactly when the LoopInfo IDs in their
// contexts match.
type LoopInfo struct {
	ID    int
	Index string
	From  int
	To    int
	Step  int
}

// Trips returns the number of iterations of the loop (0 if empty).
func (l LoopInfo) Trips() int {
	if l.Step == 0 {
		return 0
	}
	if l.Step > 0 {
		if l.To < l.From {
			return 0
		}
		return (l.To-l.From)/l.Step + 1
	}
	if l.From < l.To {
		return 0
	}
	return (l.From-l.To)/(-l.Step) + 1
}

func (r *Ref) String() string {
	s := r.Var.Name
	if len(r.Subs) > 0 {
		s += "["
		for i, e := range r.Subs {
			if i > 0 {
				s += ","
			}
			s += e.String()
		}
		s += "]"
	}
	return fmt.Sprintf("%s %s@S%d#%d", r.Access, s, r.SegID, r.ID)
}

// Stmt is a structured statement in a segment body.
type Stmt interface {
	isStmt()
}

// Assign is an assignment statement: LHS := RHS. LHS must be a Write ref
// and RHS may contain Load expressions (Read refs).
type Assign struct {
	LHS *Ref
	RHS Expr
}

// If is a two-way conditional over statement lists. A zero condition value
// selects Else, any non-zero value selects Then.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// For is an inner loop with static bounds, fully contained in one segment.
// Step must be non-zero; negative steps iterate downwards.
type For struct {
	Index string
	From  int
	To    int
	Step  int
	Body  []Stmt
}

// ExitRegion terminates the region early (after the current segment
// completes) when Cond evaluates non-zero. In a LoopRegion it gives the
// region a data-dependent trip count and therefore introduces cross-segment
// control dependence; the speculative engine treats a taken exit under a
// not-taken prediction as a control-dependence violation.
type ExitRegion struct {
	Cond Expr
}

func (*Assign) isStmt()     {}
func (*If) isStmt()         {}
func (*For) isStmt()        {}
func (*ExitRegion) isStmt() {}

// Segment is a speculative unit (Definition 1). For LoopRegions there is a
// single template segment; CFGRegions list several, connected by Succs.
type Segment struct {
	ID   int
	Name string
	Body []Stmt

	// Succs lists CFG successor segment IDs (CFGRegion only). An empty
	// list means the segment exits the region. With two successors,
	// Branch selects between them: non-zero takes Succs[0], zero takes
	// Succs[1]. With one successor, Branch must be nil.
	Succs  []int
	Branch Expr
}

// RegionKind distinguishes the two supported region shapes.
type RegionKind uint8

const (
	// LoopRegion is a counted loop whose iterations are the segments.
	LoopRegion RegionKind = iota
	// CFGRegion is an explicit DAG of segments.
	CFGRegion
)

func (k RegionKind) String() string {
	if k == LoopRegion {
		return "loop"
	}
	return "cfg"
}

// Region is a single-entry single-exit program section whose segments may
// execute speculatively in parallel (Definitions 1 and 2).
type Region struct {
	Name     string
	Kind     RegionKind
	Segments []*Segment

	// Loop region parameters: the index variable name and the static
	// iteration domain From..To by Step (Step != 0).
	Index string
	From  int
	To    int
	Step  int

	// Ann holds front-end annotations; analyses may refine them.
	Ann Annotations

	// Refs lists every reference of the region in ID order; it is
	// populated by Finalize.
	Refs []*Ref

	// dense is the region's dense analysis index, rebuilt by Finalize.
	dense *RegionIndex
}

// Annotations carries optional front-end declarations attached to a region.
type Annotations struct {
	// Private names variables declared segment-private by the front end
	// (the paper assumes a Polaris-style privatization pass; our dataflow
	// package can also infer privacy, and the declared set is unioned in).
	Private map[string]bool
	// LiveOut names variables declared live after the region. When a
	// program has several regions the liveness pass computes this set;
	// stand-alone regions can declare it.
	LiveOut map[string]bool
}

// Program is a sequence of regions over a shared variable table, plus the
// procedures the regions may call (see proc.go).
type Program struct {
	Name    string
	Vars    []*Var
	Procs   []*Proc
	Regions []*Region

	byName     map[string]*Var
	procByName map[string]*Proc
}

// NewProgram returns an empty program with the given name.
func NewProgram(name string) *Program {
	return &Program{Name: name, byName: make(map[string]*Var)}
}

// AddVar creates and registers a variable. Dims may be empty for scalars.
// It panics if the name is already taken: variable names are unique per
// program.
func (p *Program) AddVar(name string, dims ...int) *Var {
	if p.byName == nil {
		p.byName = make(map[string]*Var)
	}
	if _, ok := p.byName[name]; ok {
		panic(fmt.Sprintf("ir: duplicate variable %q", name))
	}
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("ir: variable %q has non-positive dimension %d", name, d))
		}
	}
	v := &Var{Name: name, Dims: dims}
	p.byName[name] = v
	p.Vars = append(p.Vars, v)
	return v
}

// Var returns the variable with the given name, or nil.
func (p *Program) Var(name string) *Var {
	if p.byName == nil {
		p.byName = make(map[string]*Var)
		for _, v := range p.Vars {
			p.byName[v.Name] = v
		}
	}
	return p.byName[name]
}

// AddRegion appends a region to the program.
func (p *Program) AddRegion(r *Region) {
	p.Regions = append(p.Regions, r)
}

// InstanceCount returns how many segment instances the region spawns in a
// full (non-early-exited) execution: the loop trip count for LoopRegions,
// or the number of segments on the longest path for CFGRegions (the actual
// dynamic count depends on branches; this is an upper bound used for
// sizing).
func (r *Region) InstanceCount() int {
	if r.Kind == LoopRegion {
		return LoopInfo{Index: r.Index, From: r.From, To: r.To, Step: r.Step}.Trips()
	}
	return len(r.Segments)
}

// IndexValues returns the loop index values of a LoopRegion in iteration
// (age) order.
func (r *Region) IndexValues() []int64 {
	if r.Kind != LoopRegion {
		return nil
	}
	n := r.InstanceCount()
	vals := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		vals = append(vals, int64(r.From+i*r.Step))
	}
	return vals
}

// Segment returns the segment with the given ID, or nil.
func (r *Region) Seg(id int) *Segment {
	for _, s := range r.Segments {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// Finalize numbers every reference of the region (IDs and textual
// positions), records each reference's loop/conditional context, and sorts
// r.Refs by ID. Calls are expanded first: each resolved Call gets a fresh
// per-callsite Inlined body (see proc.go) whose references are numbered in
// place of the call, so every downstream analysis sees through procedure
// boundaries. Calls inside a recursive cycle are left unexpanded
// (Validate rejects such programs). It must be called once after the
// region body is complete and before any analysis runs. Finalize is
// idempotent.
func (r *Region) Finalize() {
	r.Refs = r.Refs[:0]
	id := 0
	loopID := 0
	var expanding map[string]bool
	for _, seg := range r.Segments {
		pos := 0
		var walk func(stmts []Stmt, loops []LoopInfo, cond bool)
		walk = func(stmts []Stmt, loops []LoopInfo, cond bool) {
			for _, st := range stmts {
				switch s := st.(type) {
				case *Assign:
					// RHS reads execute before the LHS write.
					for _, ref := range ExprRefs(s.RHS) {
						r.number(ref, seg.ID, &id, &pos, loops, cond)
					}
					for _, sub := range s.LHS.Subs {
						for _, ref := range ExprRefs(sub) {
							r.number(ref, seg.ID, &id, &pos, loops, cond)
						}
					}
					r.number(s.LHS, seg.ID, &id, &pos, loops, cond)
				case *If:
					for _, ref := range ExprRefs(s.Cond) {
						r.number(ref, seg.ID, &id, &pos, loops, cond)
					}
					walk(s.Then, loops, true)
					walk(s.Else, loops, true)
				case *For:
					li := LoopInfo{ID: loopID, Index: s.Index, From: s.From, To: s.To, Step: s.Step}
					loopID++
					walk(s.Body, append(loops[:len(loops):len(loops)], li), cond)
				case *ExitRegion:
					for _, ref := range ExprRefs(s.Cond) {
						r.number(ref, seg.ID, &id, &pos, loops, cond)
					}
				case *Call:
					// Arguments are load-free, so the call itself
					// contributes no references; the expansion does.
					s.Inlined = nil
					if s.Proc == nil || expanding[s.Proc.Name] {
						continue
					}
					scope := make(map[string]bool, len(loops)+1)
					if r.Kind == LoopRegion && r.Index != "" {
						scope[r.Index] = true
					}
					for _, li := range loops {
						scope[li.Index] = true
					}
					s.Inlined = expandCall(s, scope)
					if expanding == nil {
						expanding = make(map[string]bool)
					}
					expanding[s.Proc.Name] = true
					walk(s.Inlined, loops, cond)
					delete(expanding, s.Proc.Name)
				}
			}
		}
		walk(seg.Body, nil, false)
		// Branch condition reads execute at the very end of the segment.
		if seg.Branch != nil {
			for _, ref := range ExprRefs(seg.Branch) {
				r.number(ref, seg.ID, &id, &pos, nil, false)
			}
		}
	}
	sort.Slice(r.Refs, func(i, j int) bool { return r.Refs[i].ID < r.Refs[j].ID })
	r.buildDenseIndex()
}

func (r *Region) number(ref *Ref, segID int, id, pos *int, loops []LoopInfo, cond bool) {
	ref.ID = *id
	ref.SegID = segID
	ref.Pos = *pos
	ref.Ctx = RefCtx{Loops: loops, Conditional: cond}
	*id++
	*pos++
	r.Refs = append(r.Refs, ref)
}

// HasEarlyExit reports whether any statement of the region — including
// statements reached through procedure calls — is an ExitRegion, which
// makes the region's trip count data dependent. The walk is allocation
// free (it sits on the labeling hot path).
func (r *Region) HasEarlyExit() bool {
	for _, seg := range r.Segments {
		if stmtsHaveExit(seg.Body, 0) {
			return true
		}
	}
	return false
}

// stmtsHaveExit is the allocation-free exit scan behind HasEarlyExit. The
// depth cap bounds the unexpanded-callee walk on (invalid) recursive
// programs.
func stmtsHaveExit(stmts []Stmt, depth int) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ExitRegion:
			return true
		case *If:
			if stmtsHaveExit(s.Then, depth) || stmtsHaveExit(s.Else, depth) {
				return true
			}
		case *For:
			if stmtsHaveExit(s.Body, depth) {
				return true
			}
		case *Call:
			if s.Inlined != nil {
				if stmtsHaveExit(s.Inlined, depth) {
					return true
				}
			} else if s.Proc != nil && depth < 64 {
				if stmtsHaveExit(s.Proc.Body, depth+1) {
					return true
				}
			}
		}
	}
	return false
}

// WalkStmts visits every statement in the list, depth first.
func WalkStmts(stmts []Stmt, f func(Stmt)) {
	for _, st := range stmts {
		f(st)
		switch s := st.(type) {
		case *If:
			WalkStmts(s.Then, f)
			WalkStmts(s.Else, f)
		case *For:
			WalkStmts(s.Body, f)
		}
	}
}

// SegRefs returns the references of segment segID in textual order.
func (r *Region) SegRefs(segID int) []*Ref {
	var out []*Ref
	for _, ref := range r.Refs {
		if ref.SegID == segID {
			out = append(out, ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// VarRefs returns all references to v in the region, in ID order.
func (r *Region) VarRefs(v *Var) []*Ref {
	var out []*Ref
	for _, ref := range r.Refs {
		if ref.Var == v {
			out = append(out, ref)
		}
	}
	return out
}

// RegionVars returns the set of variables referenced in the region, in
// first-use order.
func (r *Region) RegionVars() []*Var {
	seen := make(map[*Var]bool)
	var out []*Var
	for _, ref := range r.Refs {
		if !seen[ref.Var] {
			seen[ref.Var] = true
			out = append(out, ref.Var)
		}
	}
	return out
}
