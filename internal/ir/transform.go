package ir

import "fmt"

// BlockLoopRegion re-partitions a loop region into segments of `block`
// consecutive iterations each: the returned region iterates over blocks,
// and each segment executes the original body `block` times through an
// inner loop. Segment granularity is exactly the knob the paper's
// introduction discusses: "larger threads exacerbate the overflow problem
// but are preferable to smaller threads, as larger threads uncover more
// parallelism" — the granularity ablation quantifies it.
//
// The block size must divide the trip count, and the region must not exit
// early (blocking would change which iterations run after the exit
// condition fires).
func BlockLoopRegion(r *Region, block int) (*Region, error) {
	if r.Kind != LoopRegion {
		return nil, fmt.Errorf("ir: BlockLoopRegion wants a loop region")
	}
	if block < 1 {
		return nil, fmt.Errorf("ir: block size %d", block)
	}
	if r.HasEarlyExit() {
		return nil, fmt.Errorf("ir: cannot block a region with early exits")
	}
	n := r.InstanceCount()
	if n%block != 0 {
		return nil, fmt.Errorf("ir: block %d does not divide trip count %d", block, n)
	}
	if block == 1 {
		out := &Region{
			Name: r.Name, Kind: LoopRegion, Index: r.Index,
			From: r.From, To: r.To, Step: r.Step,
			Segments: []*Segment{{ID: 0, Name: "iter", Body: CloneStmts(r.Segments[0].Body)}},
			Ann:      cloneAnn(r.Ann),
		}
		out.Finalize()
		return out, nil
	}
	// Original index value = From + Step*(kb*block + j).
	blockIdx := r.Index + "_blk"
	sub := r.Index + "_sub"
	body := CloneStmts(r.Segments[0].Body)
	val := AddE(
		C(int64(r.From)),
		MulE(C(int64(r.Step)), AddE(MulE(Idx(blockIdx), C(int64(block))), Idx(sub))),
	)
	SubstituteIndex(body, r.Index, val)
	out := &Region{
		Name:  r.Name,
		Kind:  LoopRegion,
		Index: blockIdx,
		From:  0, To: n/block - 1, Step: 1,
		Segments: []*Segment{{ID: 0, Name: "block", Body: []Stmt{
			&For{Index: sub, From: 0, To: block - 1, Step: 1, Body: body},
		}}},
		Ann: cloneAnn(r.Ann),
	}
	out.Finalize()
	return out, nil
}

func cloneAnn(a Annotations) Annotations {
	out := Annotations{}
	if a.Private != nil {
		out.Private = make(map[string]bool, len(a.Private))
		for k, v := range a.Private {
			out.Private[k] = v
		}
	}
	if a.LiveOut != nil {
		out.LiveOut = make(map[string]bool, len(a.LiveOut))
		for k, v := range a.LiveOut {
			out.LiveOut[k] = v
		}
	}
	return out
}

// BlockProgram returns a copy of the program with every loop region
// re-blocked by the factor (other regions are cloned unchanged). The
// variable table is shared with the original program.
func BlockProgram(p *Program, block int) (*Program, error) {
	out := &Program{Name: p.Name, Vars: p.Vars, Procs: p.Procs}
	for _, r := range p.Regions {
		if r.Kind != LoopRegion {
			return nil, fmt.Errorf("ir: BlockProgram supports loop regions only (region %q)", r.Name)
		}
		nr, err := BlockLoopRegion(r, block)
		if err != nil {
			return nil, fmt.Errorf("region %q: %w", r.Name, err)
		}
		out.AddRegion(nr)
	}
	return out, nil
}
