package ir

import (
	"strings"
	"testing"
)

// buildCallProgram assembles, programmatically, a program with two
// procedures and one loop region:
//
//	proc add(x) { a[x] = s + 1 }
//	proc both(x) { call add(x); call add(x + 1) }
//	region r loop i = 0..7 { call both(2 * i) }
func buildCallProgram(t *testing.T) (*Program, *Var, *Var) {
	t.Helper()
	p := NewProgram("calls")
	a := p.AddVar("a", 32)
	s := p.AddVar("s")
	p.AddProc("add", []string{"x"}, []Stmt{
		&Assign{LHS: Wr(a, Idx("x")), RHS: AddE(Rd(s), C(1))},
	})
	p.AddProc("both", []string{"x"}, []Stmt{
		&Call{Callee: "add", Args: []Expr{Idx("x")}},
		&Call{Callee: "add", Args: []Expr{AddE(Idx("x"), C(1))}},
	})
	r := &Region{
		Name: "r", Kind: LoopRegion, Index: "i", From: 0, To: 7, Step: 1,
		Segments: []*Segment{{ID: 0, Body: []Stmt{
			&Call{Callee: "both", Args: []Expr{MulE(C(2), Idx("i"))}},
		}}},
	}
	p.AddRegion(r)
	if err := p.ResolveCalls(); err != nil {
		t.Fatalf("ResolveCalls: %v", err)
	}
	r.Finalize()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return p, a, s
}

func TestCallExpansionRefsAndAffineBinding(t *testing.T) {
	p, a, s := buildCallProgram(t)
	r := p.Regions[0]
	// both(2i) -> add(2i); add(2i+1) -> each add contributes read s,
	// write a[..]: 4 refs total.
	if len(r.Refs) != 4 {
		t.Fatalf("expanded refs = %d, want 4; refs: %v", len(r.Refs), r.Refs)
	}
	idx := r.DenseIndex()
	var writes []*Ref
	for _, ref := range r.Refs {
		if ref.Var == a && ref.Access == Write {
			writes = append(writes, ref)
		}
	}
	if len(writes) != 2 {
		t.Fatalf("want 2 writes to a, got %d", len(writes))
	}
	// The substituted subscripts must be affine in the region index with
	// the composed coefficients: 2*i and 2*i + 1.
	wantConst := map[int64]bool{0: false, 1: false}
	for _, w := range writes {
		if !idx.AddrCertain[w.ID] {
			t.Fatalf("write %v not address-certain after affine binding", w)
		}
		aff := idx.Aff[w.ID][0]
		if !aff.OK || aff.Slow || aff.Reg != 2 {
			t.Fatalf("write %v: affine form %+v, want Reg=2", w, aff)
		}
		if _, ok := wantConst[aff.Const]; !ok {
			t.Fatalf("write %v: unexpected constant %d", w, aff.Const)
		}
		wantConst[aff.Const] = true
	}
	for c, seen := range wantConst {
		if !seen {
			t.Fatalf("no write with constant offset %d", c)
		}
	}
	for _, ref := range r.Refs {
		if ref.Var == s && ref.Access != Read {
			t.Fatalf("s must only be read, got %v", ref)
		}
	}
	// Finalize is idempotent: re-running renumbers to the same shape.
	before := len(r.Refs)
	r.Finalize()
	if len(r.Refs) != before {
		t.Fatalf("re-Finalize changed ref count %d -> %d", before, len(r.Refs))
	}
}

func TestCallExpansionRenamesCapturedLoopIndex(t *testing.T) {
	p := NewProgram("capture")
	a := p.AddVar("a", 64)
	p.AddProc("f", []string{"x"}, []Stmt{
		&For{Index: "j", From: 0, To: 1, Step: 1, Body: []Stmt{
			&Assign{LHS: Wr(a, AddE(Idx("x"), Idx("j"))), RHS: C(1)},
		}},
	})
	r := &Region{
		Name: "r", Kind: LoopRegion, Index: "i", From: 0, To: 3, Step: 1,
		Segments: []*Segment{{ID: 0, Body: []Stmt{
			// The callsite sits inside its own "for j": the proc's inner
			// "for j" must be renamed or the argument j would be captured.
			&For{Index: "j", From: 0, To: 2, Step: 1, Body: []Stmt{
				&Call{Callee: "f", Args: []Expr{MulE(C(4), Idx("j"))}},
			}},
		}}},
	}
	p.AddRegion(r)
	if err := p.ResolveCalls(); err != nil {
		t.Fatal(err)
	}
	r.Finalize()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate after rename: %v", err)
	}
	// The write subscript must be 4*j_outer + j_renamed: two distinct
	// enclosing loops in its context.
	var w *Ref
	for _, ref := range r.Refs {
		if ref.Access == Write {
			w = ref
		}
	}
	if w == nil || len(w.Ctx.Loops) != 2 {
		t.Fatalf("write context loops = %+v, want 2 enclosing loops", w)
	}
	if w.Ctx.Loops[0].Index == w.Ctx.Loops[1].Index {
		t.Fatalf("inner loop not renamed: both indices %q", w.Ctx.Loops[0].Index)
	}
	aff := r.DenseIndex().Aff[w.ID][0]
	if !aff.OK || aff.Slow || aff.Depth[0] != 4 || aff.Depth[1] != 1 {
		t.Fatalf("affine form %+v, want Depth[0]=4 Depth[1]=1", aff)
	}
}

// TestSimultaneousParamSubstitution: an argument referencing a caller
// index whose name equals a *later* parameter must not be rewritten by
// that parameter's substitution (sequential substitution would turn
// a[x] into a[0] here; the simultaneous pass keeps it a[i]).
func TestSimultaneousParamSubstitution(t *testing.T) {
	p := NewProgram("capture2")
	a := p.AddVar("a", 16)
	b := p.AddVar("b", 16)
	p.AddProc("f", []string{"x", "i"}, []Stmt{
		&Assign{LHS: Wr(a, Idx("x")), RHS: C(1)},
		&Assign{LHS: Wr(b, Idx("i")), RHS: C(2)},
	})
	r := &Region{
		Name: "r", Kind: LoopRegion, Index: "i", From: 0, To: 3, Step: 1,
		Segments: []*Segment{{ID: 0, Body: []Stmt{
			&Call{Callee: "f", Args: []Expr{Idx("i"), C(0)}},
		}}},
	}
	p.AddRegion(r)
	if err := p.ResolveCalls(); err != nil {
		t.Fatal(err)
	}
	r.Finalize()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	idx := r.DenseIndex()
	for _, ref := range r.Refs {
		aff := idx.Aff[ref.ID][0]
		switch ref.Var {
		case a:
			// x := i (the caller's region index), untouched by i := 0.
			if !aff.OK || aff.Slow || aff.Reg != 1 || aff.Const != 0 {
				t.Fatalf("a's subscript captured: %+v (want the region index)", aff)
			}
		case b:
			if !aff.OK || aff.Slow || aff.Reg != 0 || aff.Const != 0 {
				t.Fatalf("b's subscript %+v, want constant 0", aff)
			}
		}
	}
}

func TestRecursionDetectedAndNotExpanded(t *testing.T) {
	p := NewProgram("rec")
	s := p.AddVar("s")
	f := p.AddProc("f", []string{"x"}, nil)
	p.AddProc("g", []string{"y"}, []Stmt{
		&Call{Callee: "f", Args: []Expr{Idx("y")}},
	})
	f.Body = []Stmt{
		&Assign{LHS: Wr(s), RHS: C(1)},
		&Call{Callee: "g", Args: []Expr{Idx("x")}},
	}
	r := &Region{
		Name: "r", Kind: LoopRegion, Index: "i", From: 0, To: 1, Step: 1,
		Segments: []*Segment{{ID: 0, Body: []Stmt{
			&Call{Callee: "f", Args: []Expr{Idx("i")}},
		}}},
	}
	p.AddRegion(r)
	if err := p.ResolveCalls(); err != nil {
		t.Fatal(err)
	}
	r.Finalize() // must terminate despite the cycle
	cyc := p.RecursionCycle()
	if len(cyc) != 3 || cyc[0] != cyc[2] {
		t.Fatalf("RecursionCycle = %v, want a closed f/g cycle", cyc)
	}
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "recursive procedure call cycle") {
		t.Fatalf("Validate = %v, want recursion error", err)
	}
	// The region call expanded one level (f's body) but the cyclic call
	// back into the chain stayed unexpanded.
	call := r.Segments[0].Body[0].(*Call)
	if call.Inlined == nil {
		t.Fatalf("outer call should expand one level")
	}
	nested := call.Inlined[1].(*Call)
	if nested.Inlined == nil || len(nested.Inlined) != 1 {
		t.Fatalf("g should expand inside f")
	}
	back := nested.Inlined[0].(*Call)
	if back.Inlined != nil {
		t.Fatalf("cyclic call back into f must stay unexpanded")
	}
}

func TestHasEarlyExitThroughCall(t *testing.T) {
	p := NewProgram("exit")
	s := p.AddVar("s")
	p.AddProc("f", nil, []Stmt{
		&ExitRegion{Cond: Rd(s)},
	})
	r := &Region{
		Name: "r", Kind: LoopRegion, Index: "i", From: 0, To: 3, Step: 1,
		Segments: []*Segment{{ID: 0, Body: []Stmt{
			&Call{Callee: "f"},
		}}},
	}
	p.AddRegion(r)
	if err := p.ResolveCalls(); err != nil {
		t.Fatal(err)
	}
	if !r.HasEarlyExit() {
		t.Fatalf("exit inside callee not detected before Finalize")
	}
	r.Finalize()
	if !r.HasEarlyExit() {
		t.Fatalf("exit inside callee not detected after Finalize")
	}
}

func TestValidateCallErrors(t *testing.T) {
	build := func(mutate func(p *Program, r *Region)) error {
		p := NewProgram("bad")
		a := p.AddVar("a", 8)
		p.AddProc("f", []string{"x"}, []Stmt{
			&Assign{LHS: Wr(a, Idx("x")), RHS: C(1)},
		})
		r := &Region{
			Name: "r", Kind: LoopRegion, Index: "i", From: 0, To: 1, Step: 1,
			Segments: []*Segment{{ID: 0, Body: []Stmt{
				&Call{Callee: "f", Args: []Expr{Idx("i")}},
			}}},
		}
		p.AddRegion(r)
		mutate(p, r)
		if err := p.ResolveCalls(); err != nil {
			return err
		}
		r.Finalize()
		return p.Validate()
	}
	cases := []struct {
		name   string
		mutate func(p *Program, r *Region)
		want   string
	}{
		{"unknown", func(p *Program, r *Region) {
			r.Segments[0].Body[0].(*Call).Callee = "nope"
		}, `unknown procedure "nope"`},
		{"arity", func(p *Program, r *Region) {
			c := r.Segments[0].Body[0].(*Call)
			c.Args = append(c.Args, C(1))
		}, `1 parameters`},
		{"load-arg", func(p *Program, r *Region) {
			c := r.Segments[0].Body[0].(*Call)
			c.Args[0] = Rd(p.Var("a"), C(0))
		}, "must be index expressions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := build(tc.mutate)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestBlockProgramWithCalls(t *testing.T) {
	p, _, _ := buildCallProgram(t)
	blocked, err := BlockProgram(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := blocked.ResolveCalls(); err != nil {
		t.Fatal(err)
	}
	for _, r := range blocked.Regions {
		r.Finalize()
	}
	if err := blocked.Validate(); err != nil {
		t.Fatalf("blocked program invalid: %v", err)
	}
	// Blocking wraps the original body in an inner loop: the textual
	// reference set is unchanged, only subscripts are re-expressed.
	if got, want := len(blocked.Regions[0].Refs), len(p.Regions[0].Refs); got != want {
		t.Fatalf("blocked refs = %d, want %d", got, want)
	}
}
