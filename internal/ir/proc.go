package ir

import "fmt"

// This file adds procedures to the program representation. A Proc is a
// top-level, named statement list with by-value integer parameters; a Call
// is a statement invoking one. Procedures make the analyses
// interprocedural without giving up the dense-index pipeline: every Call
// carries a per-callsite expansion (Inlined) built by Region.Finalize —
// the callee body cloned, inner-loop indices renamed where they would
// capture an enclosing index, and parameters substituted by the argument
// expressions. Because arguments are restricted to memory-load-free index
// expressions, by-value and by-name evaluation coincide, and an argument
// that is affine in the enclosing loop indices keeps every callee
// subscript that is affine in the parameters affine in the caller's
// indices — the affine parameter binding that lets the dependence solver
// and Algorithm 2 label call-containing regions precisely.
//
// The surface program keeps the Call statement: printing and
// fingerprinting render `call f(args)` and the `proc` declaration, never
// the expansion, so round-trips and content hashes see the
// interprocedural structure. Recursive call cycles cannot be expanded;
// Validate rejects them, and analyses fall back conservatively (see
// package callgraph and idem.LabelProgram).

// Proc is a top-level procedure: a named statement list over the
// program's shared variable table, parameterized by integer values.
// Parameters act as loop-index names inside the body (they are
// non-speculative values, like loop indices).
type Proc struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Call is a statement invoking a procedure. Args must be memory-load-free
// index expressions (constants, enclosing loop indices and parameters,
// and integer arithmetic over them); Validate enforces this.
type Call struct {
	Callee string
	// Args holds one expression per callee parameter.
	Args []Expr

	// Proc is the resolved callee, set by the parser, by builders, or by
	// Program.ResolveCalls. A nil Proc makes the program invalid.
	Proc *Proc

	// Inlined is the per-callsite expansion, rebuilt by Region.Finalize:
	// a clone of the callee body with colliding inner-loop indices renamed
	// and parameters substituted by Args. It is derived state — printing
	// and fingerprinting ignore it — and is nil for calls inside a
	// recursive cycle (which Validate rejects).
	Inlined []Stmt
}

func (*Call) isStmt() {}

// AddProc creates and registers a procedure. It panics if the name is
// already taken: procedure names are unique per program.
func (p *Program) AddProc(name string, params []string, body []Stmt) *Proc {
	if p.procByName == nil {
		p.procByName = make(map[string]*Proc)
	}
	if _, ok := p.procByName[name]; ok {
		panic(fmt.Sprintf("ir: duplicate procedure %q", name))
	}
	pr := &Proc{Name: name, Params: params, Body: body}
	p.procByName[name] = pr
	p.Procs = append(p.Procs, pr)
	return pr
}

// Proc returns the procedure with the given name, or nil.
func (p *Program) Proc(name string) *Proc {
	if p.procByName == nil {
		p.procByName = make(map[string]*Proc)
		for _, pr := range p.Procs {
			p.procByName[pr.Name] = pr
		}
	}
	return p.procByName[name]
}

// ResolveCalls links every Call statement (in procedure bodies and region
// segments) to the program's procedure of the same name and invalidates
// stale expansions. Builders that assemble programs from cloned or
// generated statements call it before Finalize.
func (p *Program) ResolveCalls() error {
	var resolve func(stmts []Stmt) error
	resolve = func(stmts []Stmt) error {
		for _, st := range stmts {
			switch s := st.(type) {
			case *If:
				if err := resolve(s.Then); err != nil {
					return err
				}
				if err := resolve(s.Else); err != nil {
					return err
				}
			case *For:
				if err := resolve(s.Body); err != nil {
					return err
				}
			case *Call:
				pr := p.Proc(s.Callee)
				if pr == nil {
					return fmt.Errorf("ir: call to unknown procedure %q", s.Callee)
				}
				s.Proc = pr
				s.Inlined = nil
			}
		}
		return nil
	}
	for _, pr := range p.Procs {
		if err := resolve(pr.Body); err != nil {
			return fmt.Errorf("procedure %q: %w", pr.Name, err)
		}
	}
	for _, r := range p.Regions {
		for _, seg := range r.Segments {
			if err := resolve(seg.Body); err != nil {
				return fmt.Errorf("region %q: %w", r.Name, err)
			}
		}
	}
	return nil
}

// RecursionCycle returns one cycle of procedure names ("f" calling "g"
// calling "f" yields [f g f]) when the call graph is cyclic, or nil.
// Recursive programs cannot be expanded or executed; Validate rejects
// them and idem.LabelProgram falls back to a conservative labeling.
func (p *Program) RecursionCycle() []string {
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := make(map[string]int, len(p.Procs))
	var stack []string
	var cycle []string
	var visit func(pr *Proc) bool
	visit = func(pr *Proc) bool {
		state[pr.Name] = onStack
		stack = append(stack, pr.Name)
		for _, c := range procCalls(pr) {
			callee := c.Proc
			if callee == nil {
				callee = p.Proc(c.Callee)
			}
			if callee == nil {
				continue
			}
			switch state[callee.Name] {
			case onStack:
				for i, name := range stack {
					if name == callee.Name {
						cycle = append(append([]string{}, stack[i:]...), callee.Name)
						return true
					}
				}
			case unvisited:
				if visit(callee) {
					return true
				}
			}
		}
		state[pr.Name] = done
		stack = stack[:len(stack)-1]
		return false
	}
	for _, pr := range p.Procs {
		if state[pr.Name] == unvisited && visit(pr) {
			return cycle
		}
	}
	return nil
}

// procCalls collects the Call statements of the procedure body in
// declaration order (surface calls only, not expansions).
func procCalls(pr *Proc) []*Call {
	var out []*Call
	WalkStmts(pr.Body, func(s Stmt) {
		if c, ok := s.(*Call); ok {
			out = append(out, c)
		}
	})
	return out
}

// WalkStmtsExpanded visits every statement like WalkStmts and
// additionally descends through calls: for each Call it visits the
// statement itself and then its expansion (or, before Finalize has built
// one, the callee body — each procedure at most once, so recursive cycles
// terminate).
func WalkStmtsExpanded(stmts []Stmt, f func(Stmt)) {
	var visited map[*Proc]bool
	var walk func(list []Stmt)
	walk = func(list []Stmt) {
		for _, st := range list {
			f(st)
			switch s := st.(type) {
			case *If:
				walk(s.Then)
				walk(s.Else)
			case *For:
				walk(s.Body)
			case *Call:
				if s.Inlined != nil {
					walk(s.Inlined)
					break
				}
				if s.Proc != nil {
					if visited == nil {
						visited = make(map[*Proc]bool)
					}
					if !visited[s.Proc] {
						visited[s.Proc] = true
						walk(s.Proc.Body)
					}
				}
			}
		}
	}
	walk(stmts)
}

// CheckExecutable reports whether every call in the program's regions
// has an expansion to execute. Unresolved calls and recursive cycles
// have none: analyses fall back conservatively for them (see
// idem.LabelProgram), but the engines cannot simulate them, so they
// surface this error instead of panicking in the bytecode compiler.
func CheckExecutable(p *Program) error {
	if len(p.Procs) == 0 {
		return nil
	}
	for _, r := range p.Regions {
		var bad *Call
		for _, seg := range r.Segments {
			WalkStmtsExpanded(seg.Body, func(st Stmt) {
				if c, ok := st.(*Call); ok && c.Inlined == nil && bad == nil {
					bad = c
				}
			})
		}
		if bad != nil {
			return fmt.Errorf("ir: region %q: call to %q has no expansion (unresolved or recursive procedures are not executable)", r.Name, bad.Callee)
		}
	}
	return nil
}

// expandCall builds the per-callsite expansion of a resolved call: the
// callee body cloned, inner loops whose index would capture a name in
// scope renamed to fresh names, and parameters substituted by the
// argument expressions. scope holds the loop-index names live at the
// callsite and is mutated during the walk (callers pass a fresh map).
func expandCall(c *Call, scope map[string]bool) []Stmt {
	body := CloneStmts(c.Proc.Body)
	// The avoid set for fresh names: everything in scope, the callee's
	// parameters, and every loop index the body itself declares — a fresh
	// name colliding with any of those would re-introduce capture.
	avoid := make(map[string]bool, len(scope)+len(c.Proc.Params)+8)
	for k := range scope {
		avoid[k] = true
	}
	for _, prm := range c.Proc.Params {
		avoid[prm] = true
	}
	WalkStmts(body, func(s Stmt) {
		if f, ok := s.(*For); ok {
			avoid[f.Index] = true
		}
	})
	renameCollidingLoops(body, scope, avoid)
	repl := make(map[string]Expr, len(c.Proc.Params))
	for i, prm := range c.Proc.Params {
		if i < len(c.Args) {
			repl[prm] = c.Args[i]
		}
	}
	substituteParams(body, repl)
	return body
}

// substituteParams replaces every parameter use with its argument
// expression in one simultaneous pass. Replacements are never themselves
// re-substituted, so an argument mentioning a caller index that happens
// to share a (later) parameter's name cannot be captured — sequential
// SubstituteIndex calls would rewrite it.
func substituteParams(stmts []Stmt, repl map[string]Expr) {
	if len(repl) == 0 {
		return
	}
	var subst func(e Expr) Expr
	subst = func(e Expr) Expr {
		switch x := e.(type) {
		case *Const:
			return x
		case *Index:
			if r, ok := repl[x.Name]; ok {
				return CloneExpr(r)
			}
			return x
		case *Load:
			for i, sub := range x.Ref.Subs {
				x.Ref.Subs[i] = subst(sub)
			}
			return x
		case *Bin:
			x.L = subst(x.L)
			x.R = subst(x.R)
			return x
		}
		panic("ir: unknown expression in substituteParams")
	}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, st := range stmts {
			switch s := st.(type) {
			case *Assign:
				s.RHS = subst(s.RHS)
				for i, sub := range s.LHS.Subs {
					s.LHS.Subs[i] = subst(sub)
				}
			case *If:
				s.Cond = subst(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *For:
				if saved, shadowed := repl[s.Index]; shadowed {
					// A loop rebinding a parameter name shadows it
					// (validation rejects this; tolerated here).
					delete(repl, s.Index)
					walk(s.Body)
					repl[s.Index] = saved
				} else {
					walk(s.Body)
				}
			case *ExitRegion:
				s.Cond = subst(s.Cond)
			case *Call:
				for i, a := range s.Args {
					s.Args[i] = subst(a)
				}
				s.Inlined = nil
			}
		}
	}
	walk(stmts)
}

// renameCollidingLoops alpha-renames every For whose index name is
// already in scope, keeping the expansion free of shadowing. scope is
// extended while walking each loop body and restored afterwards.
func renameCollidingLoops(stmts []Stmt, scope, avoid map[string]bool) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *If:
			renameCollidingLoops(s.Then, scope, avoid)
			renameCollidingLoops(s.Else, scope, avoid)
		case *For:
			if scope[s.Index] {
				old := s.Index
				fresh := freshIndexName(old, avoid)
				avoid[fresh] = true
				s.Index = fresh
				SubstituteIndex(s.Body, old, &Index{Name: fresh})
			}
			scope[s.Index] = true
			renameCollidingLoops(s.Body, scope, avoid)
			delete(scope, s.Index)
		}
	}
}

// freshIndexName derives the first name of the form base_N not in the
// avoid set. The result is a plain identifier, so expansions spliced back
// into surface programs (the shrinker's call-inlining reduction) still
// print and reparse.
func freshIndexName(base string, avoid map[string]bool) string {
	for n := 2; ; n++ {
		cand := fmt.Sprintf("%s_%d", base, n)
		if !avoid[cand] {
			return cand
		}
	}
}
