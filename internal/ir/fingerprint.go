package ir

import (
	"crypto/sha256"
	"fmt"
	"strings"
)

// Fingerprint is a content hash of a program: two programs with equal
// fingerprints are structurally identical (same variables, regions,
// segments, statements, annotations) even when built as distinct object
// graphs. It keys caches that memoize per-program analysis results — the
// execution-fingerprint idiom — so sweeps that rebuild the same program
// per point can share one labeling.
type Fingerprint [sha256.Size]byte

// FingerprintOf computes the content fingerprint. It hashes the
// program's canonical mini-language rendering: Format round-trips through
// the parser (property-tested), which makes it a faithful serialization
// of everything the analyses see.
func FingerprintOf(p *Program) Fingerprint {
	return sha256.Sum256([]byte(p.Format()))
}

// RegionFingerprintOf computes the analysis fingerprint of one region of
// p: a hash over every program-level input the region's labeling depends
// on —
//
//   - the region's canonical rendering (structure, annotations, early
//     exits, the statements of every segment);
//   - the procedure table (calls inline procedure bodies into the
//     region's reference stream, so a procedure edit must change the
//     fingerprint of every region calling it);
//   - the declared dimensions of every variable the region references,
//     in region-local (first-use) order;
//   - the region's live-out bit for each of those variables, supplied by
//     liveOut (nil means no variable is live out).
//
// The labeling pipeline (dataflow attributes, dependence analysis, RFW,
// Algorithm 2) reads nothing else about the enclosing program, so two
// regions with equal fingerprints — even in different programs — label
// identically. The service's delta re-labeling path keys its per-region
// result cache on this.
func RegionFingerprintOf(p *Program, r *Region, liveOut func(*Var) bool) Fingerprint {
	var b strings.Builder
	for _, pr := range p.Procs {
		fmt.Fprintf(&b, "proc %s(%s) {\n", pr.Name, strings.Join(pr.Params, ", "))
		writeStmts(&b, pr.Body, "  ")
		b.WriteString("}\n")
	}
	b.WriteString(r.Format())
	for _, v := range r.DenseIndex().Vars {
		fmt.Fprintf(&b, "var %s", v.Name)
		for _, d := range v.Dims {
			fmt.Fprintf(&b, "[%d]", d)
		}
		if liveOut != nil && liveOut(v) {
			b.WriteString(" live")
		}
		b.WriteString("\n")
	}
	return sha256.Sum256([]byte(b.String()))
}
