package ir

import "crypto/sha256"

// Fingerprint is a content hash of a program: two programs with equal
// fingerprints are structurally identical (same variables, regions,
// segments, statements, annotations) even when built as distinct object
// graphs. It keys caches that memoize per-program analysis results — the
// execution-fingerprint idiom — so sweeps that rebuild the same program
// per point can share one labeling.
type Fingerprint [sha256.Size]byte

// FingerprintOf computes the content fingerprint. It hashes the
// program's canonical mini-language rendering: Format round-trips through
// the parser (property-tested), which makes it a faithful serialization
// of everything the analyses see.
func FingerprintOf(p *Program) Fingerprint {
	return sha256.Sum256([]byte(p.Format()))
}
