package ir

// CloneExpr deep-copies an expression, allocating fresh Ref nodes for
// every load. Clones are used by program transformations: reference
// identity matters to the analyses, so transformed code must never share
// Ref nodes with the original.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *Const:
		return &Const{Val: x.Val}
	case *Index:
		return &Index{Name: x.Name}
	case *Load:
		return &Load{Ref: CloneRef(x.Ref)}
	case *Bin:
		return &Bin{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	}
	panic("ir: unknown expression in CloneExpr")
}

// CloneRef deep-copies a reference (identity and context fields reset;
// Finalize re-derives them).
func CloneRef(r *Ref) *Ref {
	subs := make([]Expr, len(r.Subs))
	for i, s := range r.Subs {
		subs[i] = CloneExpr(s)
	}
	return &Ref{Var: r.Var, Access: r.Access, Subs: subs}
}

// CloneStmts deep-copies a statement list.
func CloneStmts(stmts []Stmt) []Stmt {
	out := make([]Stmt, 0, len(stmts))
	for _, st := range stmts {
		switch s := st.(type) {
		case *Assign:
			out = append(out, &Assign{LHS: CloneRef(s.LHS), RHS: CloneExpr(s.RHS)})
		case *If:
			out = append(out, &If{
				Cond: CloneExpr(s.Cond),
				Then: CloneStmts(s.Then),
				Else: CloneStmts(s.Else),
			})
		case *For:
			out = append(out, &For{
				Index: s.Index, From: s.From, To: s.To, Step: s.Step,
				Body: CloneStmts(s.Body),
			})
		case *ExitRegion:
			out = append(out, &ExitRegion{Cond: CloneExpr(s.Cond)})
		case *Call:
			args := make([]Expr, len(s.Args))
			for i, a := range s.Args {
				args[i] = CloneExpr(a)
			}
			// The resolved Proc is shared (like Vars); the per-callsite
			// expansion is derived state and is rebuilt by Finalize.
			out = append(out, &Call{Callee: s.Callee, Args: args, Proc: s.Proc})
		default:
			panic("ir: unknown statement in CloneStmts")
		}
	}
	return out
}

// SubstituteIndex replaces every use of the named loop index in the
// statement list with the given expression (the statements must already
// be clones; the substitution mutates in place). Inner loops that rebind
// the same name shadow the substitution.
func SubstituteIndex(stmts []Stmt, name string, repl Expr) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *Assign:
			s.RHS = substExpr(s.RHS, name, repl)
			for i, sub := range s.LHS.Subs {
				s.LHS.Subs[i] = substExpr(sub, name, repl)
			}
		case *If:
			s.Cond = substExpr(s.Cond, name, repl)
			SubstituteIndex(s.Then, name, repl)
			SubstituteIndex(s.Else, name, repl)
		case *For:
			if s.Index == name {
				continue // shadowed
			}
			SubstituteIndex(s.Body, name, repl)
		case *ExitRegion:
			s.Cond = substExpr(s.Cond, name, repl)
		case *Call:
			for i, a := range s.Args {
				s.Args[i] = substExpr(a, name, repl)
			}
			// The expansion embeds the old argument values; Finalize
			// rebuilds it from the substituted ones.
			s.Inlined = nil
		}
	}
}

func substExpr(e Expr, name string, repl Expr) Expr {
	switch x := e.(type) {
	case *Const:
		return x
	case *Index:
		if x.Name == name {
			return CloneExpr(repl)
		}
		return x
	case *Load:
		for i, sub := range x.Ref.Subs {
			x.Ref.Subs[i] = substExpr(sub, name, repl)
		}
		return x
	case *Bin:
		x.L = substExpr(x.L, name, repl)
		x.R = substExpr(x.R, name, repl)
		return x
	}
	panic("ir: unknown expression in substExpr")
}
