package ir

// Bits is a word-packed bitset used by the dense analysis pipeline.
type Bits []uint64

// MakeBits returns a zeroed bitset holding n bits.
func MakeBits(n int) Bits { return make(Bits, (n+63)/64) }

// Get reports bit i; out-of-range indices read as false.
func (b Bits) Get(i int32) bool {
	w := int(i) >> 6
	if i < 0 || w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i (which must be in range).
func (b Bits) Set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i (which must be in range).
func (b Bits) Clear(i int32) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Reset zeroes the whole set.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// GrowBits returns b resized to hold n bits, reusing the backing array
// when possible; the returned set is zeroed either way.
func GrowBits(b Bits, n int) Bits {
	w := (n + 63) / 64
	if cap(b) < w {
		return make(Bits, w)
	}
	b = b[:w]
	b.Reset()
	return b
}
