package ir

import (
	"fmt"
	"strings"
)

// Validate checks structural invariants of the program and returns the
// first violation found. It must pass before analyses or execution run.
func (p *Program) Validate() error {
	seen := make(map[string]bool)
	for _, v := range p.Vars {
		if v.Name == "" {
			return fmt.Errorf("ir: unnamed variable")
		}
		if seen[v.Name] {
			return fmt.Errorf("ir: duplicate variable %q", v.Name)
		}
		seen[v.Name] = true
		for _, d := range v.Dims {
			if d <= 0 {
				return fmt.Errorf("ir: variable %q: non-positive dimension %d", v.Name, d)
			}
		}
	}
	procNames := make(map[string]bool)
	for _, pr := range p.Procs {
		if pr.Name == "" {
			return fmt.Errorf("ir: unnamed procedure")
		}
		if procNames[pr.Name] {
			return fmt.Errorf("ir: duplicate procedure %q", pr.Name)
		}
		procNames[pr.Name] = true
		if err := p.validateProc(pr); err != nil {
			return fmt.Errorf("procedure %q: %w", pr.Name, err)
		}
	}
	if cyc := p.RecursionCycle(); cyc != nil {
		return fmt.Errorf("ir: recursive procedure call cycle: %s", strings.Join(cyc, " -> "))
	}
	names := make(map[string]bool)
	for _, r := range p.Regions {
		if names[r.Name] {
			return fmt.Errorf("ir: duplicate region %q", r.Name)
		}
		names[r.Name] = true
		if err := p.validateRegion(r); err != nil {
			return fmt.Errorf("region %q: %w", r.Name, err)
		}
	}
	return nil
}

func (p *Program) validateRegion(r *Region) error {
	if len(r.Segments) == 0 {
		return fmt.Errorf("ir: no segments")
	}
	if len(r.Refs) == 0 {
		// Finalize not run or empty region; run it so Refs is populated.
		r.Finalize()
	}
	switch r.Kind {
	case LoopRegion:
		if len(r.Segments) != 1 {
			return fmt.Errorf("ir: loop region must have exactly one segment template, has %d", len(r.Segments))
		}
		if r.Step == 0 {
			return fmt.Errorf("ir: loop region step is zero")
		}
		if r.Index == "" {
			return fmt.Errorf("ir: loop region has no index variable")
		}
		if r.InstanceCount() == 0 {
			return fmt.Errorf("ir: loop region %d..%d step %d has zero iterations", r.From, r.To, r.Step)
		}
	case CFGRegion:
		ids := make(map[int]bool)
		for _, s := range r.Segments {
			if ids[s.ID] {
				return fmt.Errorf("ir: duplicate segment id %d", s.ID)
			}
			ids[s.ID] = true
		}
		for _, s := range r.Segments {
			for _, succ := range s.Succs {
				if !ids[succ] {
					return fmt.Errorf("ir: segment %d: unknown successor %d", s.ID, succ)
				}
			}
			switch {
			case len(s.Succs) > 2:
				return fmt.Errorf("ir: segment %d: more than two successors", s.ID)
			case len(s.Succs) == 2 && s.Branch == nil:
				return fmt.Errorf("ir: segment %d: two successors but no branch condition", s.ID)
			case len(s.Succs) < 2 && s.Branch != nil:
				return fmt.Errorf("ir: segment %d: branch condition with %d successors", s.ID, len(s.Succs))
			}
		}
		if err := checkDAG(r); err != nil {
			return err
		}
	default:
		return fmt.Errorf("ir: unknown region kind %d", r.Kind)
	}
	// Check statements and references.
	for _, s := range r.Segments {
		if err := p.validateStmts(r, s.Body, map[string]bool{r.Index: r.Kind == LoopRegion}); err != nil {
			return fmt.Errorf("segment %d: %w", s.ID, err)
		}
	}
	for _, ref := range r.Refs {
		if ref.Var == nil {
			return fmt.Errorf("ir: reference #%d has no variable", ref.ID)
		}
		if p.Var(ref.Var.Name) != ref.Var {
			return fmt.Errorf("ir: reference #%d: variable %q not in program table", ref.ID, ref.Var.Name)
		}
		if len(ref.Subs) != len(ref.Var.Dims) {
			return fmt.Errorf("ir: reference #%d: %d subscripts for %d-dimensional %q",
				ref.ID, len(ref.Subs), len(ref.Var.Dims), ref.Var.Name)
		}
	}
	return nil
}

func (p *Program) validateStmts(r *Region, stmts []Stmt, indices map[string]bool) error {
	for _, st := range stmts {
		switch s := st.(type) {
		case *Assign:
			if s.LHS == nil || s.LHS.Access != Write {
				return fmt.Errorf("ir: assignment LHS must be a write reference")
			}
			if err := p.validateExpr(s.RHS, indices); err != nil {
				return err
			}
			for _, sub := range s.LHS.Subs {
				if err := p.validateExpr(sub, indices); err != nil {
					return err
				}
			}
		case *If:
			if err := p.validateExpr(s.Cond, indices); err != nil {
				return err
			}
			if err := p.validateStmts(r, s.Then, indices); err != nil {
				return err
			}
			if err := p.validateStmts(r, s.Else, indices); err != nil {
				return err
			}
		case *For:
			if s.Step == 0 {
				return fmt.Errorf("ir: inner loop %q has zero step", s.Index)
			}
			if s.Index == "" {
				return fmt.Errorf("ir: inner loop without index name")
			}
			if (LoopInfo{From: s.From, To: s.To, Step: s.Step}).Trips() == 0 {
				return fmt.Errorf("ir: inner loop %q executes zero iterations", s.Index)
			}
			if indices[s.Index] {
				return fmt.Errorf("ir: inner loop index %q shadows an enclosing index", s.Index)
			}
			inner := make(map[string]bool, len(indices)+1)
			for k, v := range indices {
				inner[k] = v
			}
			inner[s.Index] = true
			if err := p.validateStmts(r, s.Body, inner); err != nil {
				return err
			}
		case *ExitRegion:
			if err := p.validateExpr(s.Cond, indices); err != nil {
				return err
			}
		case *Call:
			if err := p.validateCall(r, s, indices); err != nil {
				return err
			}
		default:
			return fmt.Errorf("ir: unknown statement %T", st)
		}
	}
	return nil
}

// validateProc checks one procedure: distinct parameter names that do not
// collide with program variables (a bare name inside the body must
// resolve unambiguously), and a valid body with the parameters in scope
// as index names.
func (p *Program) validateProc(pr *Proc) error {
	seen := make(map[string]bool, len(pr.Params))
	indices := make(map[string]bool, len(pr.Params))
	for _, prm := range pr.Params {
		if prm == "" {
			return fmt.Errorf("ir: empty parameter name")
		}
		if seen[prm] {
			return fmt.Errorf("ir: duplicate parameter %q", prm)
		}
		seen[prm] = true
		if p.Var(prm) != nil {
			return fmt.Errorf("ir: parameter %q collides with a variable", prm)
		}
		indices[prm] = true
	}
	return p.validateStmts(nil, pr.Body, indices)
}

// validateCall checks one call statement: the callee resolves into the
// program's procedure table, arity matches, arguments are load-free index
// expressions, and — after Finalize — the expansion itself is valid.
func (p *Program) validateCall(r *Region, s *Call, indices map[string]bool) error {
	pr := s.Proc
	if pr == nil {
		return fmt.Errorf("ir: call to unknown procedure %q", s.Callee)
	}
	if p.Proc(s.Callee) != pr {
		return fmt.Errorf("ir: call to %q resolves outside the program's procedure table", s.Callee)
	}
	if len(s.Args) != len(pr.Params) {
		return fmt.Errorf("ir: call to %q: %d arguments for %d parameters", s.Callee, len(s.Args), len(pr.Params))
	}
	for i, a := range s.Args {
		if err := p.validateExpr(a, indices); err != nil {
			return err
		}
		if HasLoad(a) {
			return fmt.Errorf("ir: call to %q: argument %d reads memory (arguments must be index expressions)", s.Callee, i+1)
		}
	}
	if s.Inlined != nil {
		if err := p.validateStmts(r, s.Inlined, indices); err != nil {
			return fmt.Errorf("inlined call to %q: %w", s.Callee, err)
		}
	}
	return nil
}

// HasLoad reports whether the expression contains a memory load. Call
// arguments must be load-free (the front end and Validate both enforce
// it): substitution then preserves by-value semantics and affine forms.
func HasLoad(e Expr) bool {
	switch x := e.(type) {
	case *Load:
		return true
	case *Bin:
		return HasLoad(x.L) || HasLoad(x.R)
	}
	return false
}

func (p *Program) validateExpr(e Expr, indices map[string]bool) error {
	if e == nil {
		return fmt.Errorf("ir: nil expression")
	}
	switch x := e.(type) {
	case *Const:
		return nil
	case *Index:
		if !indices[x.Name] {
			return fmt.Errorf("ir: unknown loop index %q", x.Name)
		}
		return nil
	case *Load:
		if x.Ref == nil || x.Ref.Access != Read {
			return fmt.Errorf("ir: load must wrap a read reference")
		}
		for _, sub := range x.Ref.Subs {
			if err := p.validateExpr(sub, indices); err != nil {
				return err
			}
		}
		return nil
	case *Bin:
		if err := p.validateExpr(x.L, indices); err != nil {
			return err
		}
		return p.validateExpr(x.R, indices)
	}
	return fmt.Errorf("ir: unknown expression %T", e)
}

// checkDAG verifies the CFG region's segment graph is acyclic and that age
// (declaration) order is a valid topological order, i.e. every edge goes
// from an older to a younger segment, matching sequential program order.
func checkDAG(r *Region) error {
	pos := make(map[int]int, len(r.Segments))
	for i, s := range r.Segments {
		pos[s.ID] = i
	}
	for _, s := range r.Segments {
		for _, succ := range s.Succs {
			if pos[succ] <= pos[s.ID] {
				return fmt.Errorf("ir: edge %d->%d violates age order (segments must be declared oldest first)", s.ID, succ)
			}
		}
	}
	return nil
}
