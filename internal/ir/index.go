package ir

// This file implements the dense region index: a compact numbering of the
// variables, references and segments of one region, computed once by
// Finalize and shared by every analysis pass. The analyses (dataflow,
// deps, rfw, idem) index flat slices and bitsets with these numbers
// instead of hashing pointers, which is what makes the labeling pipeline
// allocation-free in steady state.

// MaxAffDepth is the deepest loop nest the dense affine forms can
// represent. References nested deeper fall back to the map-based affine
// machinery (AffineOf), which has no depth limit.
const MaxAffDepth = 8

// AffForm is the dense affine decomposition of one subscript dimension:
//
//	Const + Reg*regionIndex + sum_k Depth[k]*Ctx.Loops[k].Index
//
// with coefficients attached to the loop *positions* of the enclosing
// nest rather than to index names. OK mirrors AffineOf's second result.
// Slow marks forms that are affine but not densely representable (an
// index name that is not an enclosing loop or the region index — only
// possible in unvalidated programs — or a nest deeper than MaxAffDepth);
// consumers must route such references through the map-based path.
type AffForm struct {
	OK    bool
	Slow  bool
	Const int64
	Reg   int64
	Depth [MaxAffDepth]int64
}

// HasVars reports whether the form has any non-zero coefficient. Only
// meaningful when !Slow.
func (a AffForm) HasVars() bool {
	if a.Reg != 0 {
		return true
	}
	for _, c := range a.Depth {
		if c != 0 {
			return true
		}
	}
	return false
}

// RegionIndex is the dense numbering of one finalized region.
type RegionIndex struct {
	// Vars lists the referenced variables in first-use order; the slice
	// position is the variable's region-local index.
	Vars []*Var
	// VarOf maps ref ID to the region-local index of its variable.
	VarOf []int32
	// SegOf maps ref ID to the age position of its segment (the position
	// of the segment in Region.Segments, which is age order).
	SegOf []int32
	// NumSegs is len(Region.Segments).
	NumSegs int

	// AddrCertain caches ir.AddrCertain per ref ID.
	AddrCertain []bool
	// Aff holds the dense affine forms of every subscript dimension, per
	// ref ID (nil inner slice for scalar references).
	Aff [][]AffForm
	// SlowAff marks refs with at least one Slow affine dimension; pair
	// tests involving them must use the map-based solver.
	SlowAff []bool

	localOf   map[*Var]int32
	segPos    map[int]int32
	refsByVar [][]int32 // region-local var index -> ref IDs ascending
}

// DenseIndex returns the region's dense index, building it if the region
// was finalized before this accessor existed. Finalize (re)builds the
// index, so the returned value is stale only if the region body was
// mutated without re-running Finalize — which invalidates every analysis
// anyway.
func (r *Region) DenseIndex() *RegionIndex {
	if r.dense == nil {
		r.buildDenseIndex()
	}
	return r.dense
}

// LocalOf returns the region-local index of v, or -1 when the region has
// no reference to v.
func (ix *RegionIndex) LocalOf(v *Var) int32 {
	if i, ok := ix.localOf[v]; ok {
		return i
	}
	return -1
}

// SegPos returns the age position of the segment with the given ID, or -1
// for unknown IDs.
func (ix *RegionIndex) SegPos(segID int) int32 {
	if i, ok := ix.segPos[segID]; ok {
		return i
	}
	return -1
}

// RefsOf returns the IDs of every reference to the variable with the
// given region-local index, ascending. The slice is shared; do not
// mutate.
func (ix *RegionIndex) RefsOf(local int32) []int32 {
	if local < 0 || int(local) >= len(ix.refsByVar) {
		return nil
	}
	return ix.refsByVar[local]
}

func (r *Region) buildDenseIndex() {
	n := len(r.Refs)
	ix := &RegionIndex{
		VarOf:       make([]int32, n),
		SegOf:       make([]int32, n),
		NumSegs:     len(r.Segments),
		AddrCertain: make([]bool, n),
		Aff:         make([][]AffForm, n),
		SlowAff:     make([]bool, n),
		localOf:     make(map[*Var]int32),
		segPos:      make(map[int]int32, len(r.Segments)),
	}
	for i, s := range r.Segments {
		ix.segPos[s.ID] = int32(i)
	}
	regionIdx := ""
	if r.Kind == LoopRegion {
		regionIdx = r.Index
	}
	counts := make([]int32, 0, 16)
	for _, ref := range r.Refs {
		local, ok := ix.localOf[ref.Var]
		if !ok {
			local = int32(len(ix.Vars))
			ix.localOf[ref.Var] = local
			ix.Vars = append(ix.Vars, ref.Var)
			counts = append(counts, 0)
		}
		counts[local]++
		ix.VarOf[ref.ID] = local
		ix.SegOf[ref.ID] = ix.segPos[ref.SegID]

		certain := true
		var aff []AffForm
		if len(ref.Subs) > 0 {
			aff = make([]AffForm, len(ref.Subs))
			for d, sub := range ref.Subs {
				f := resolveAff(sub, ref.Ctx.Loops, regionIdx)
				if f.Slow {
					// The dense resolver could not decide; fall back to
					// the exact map-based test for OK so AddrCertain
					// stays byte-compatible with AffineOf.
					_, f.OK = AffineOf(sub)
					ix.SlowAff[ref.ID] = true
				}
				aff[d] = f
				if !f.OK {
					certain = false
				}
			}
		}
		ix.Aff[ref.ID] = aff
		ix.AddrCertain[ref.ID] = certain
	}
	// Refs-by-var CSR: one backing array, per-var windows, IDs ascending
	// (Refs is sorted by ID).
	backing := make([]int32, n)
	ix.refsByVar = make([][]int32, len(ix.Vars))
	off := int32(0)
	for v := range ix.refsByVar {
		ix.refsByVar[v] = backing[off : off : off+counts[v]]
		off += counts[v]
	}
	for _, ref := range r.Refs {
		local := ix.VarOf[ref.ID]
		ix.refsByVar[local] = append(ix.refsByVar[local], int32(ref.ID))
	}
	r.dense = ix
}

// resolveAff is the dense mirror of AffineOf: it decomposes e into an
// affine form over the enclosing loop positions and the region index.
func resolveAff(e Expr, loops []LoopInfo, regionIdx string) AffForm {
	switch x := e.(type) {
	case *Const:
		return AffForm{OK: true, Const: x.Val}
	case *Index:
		for k := range loops {
			if loops[k].Index == x.Name {
				if k >= MaxAffDepth {
					return AffForm{OK: true, Slow: true}
				}
				f := AffForm{OK: true}
				f.Depth[k] = 1
				return f
			}
		}
		if regionIdx != "" && x.Name == regionIdx {
			return AffForm{OK: true, Reg: 1}
		}
		// Not an enclosing index: unvalidated program. Affine per
		// AffineOf, but the dense solver cannot bound the name.
		return AffForm{OK: true, Slow: true}
	case *Load:
		return AffForm{}
	case *Bin:
		l := resolveAff(x.L, loops, regionIdx)
		r := resolveAff(x.R, loops, regionIdx)
		if !l.OK || !r.OK {
			return AffForm{}
		}
		if l.Slow || r.Slow {
			switch x.Op {
			case Add, Sub, Mul:
				return AffForm{OK: true, Slow: true}
			default:
				return AffForm{}
			}
		}
		switch x.Op {
		case Add:
			return affFormAdd(l, r, 1)
		case Sub:
			return affFormAdd(l, r, -1)
		case Mul:
			if !l.HasVars() {
				return affFormScale(r, l.Const)
			}
			if !r.HasVars() {
				return affFormScale(l, r.Const)
			}
			return AffForm{}
		default:
			return AffForm{}
		}
	}
	return AffForm{}
}

func affFormAdd(a, b AffForm, sign int64) AffForm {
	out := AffForm{OK: true, Const: a.Const + sign*b.Const, Reg: a.Reg + sign*b.Reg}
	for k := range out.Depth {
		out.Depth[k] = a.Depth[k] + sign*b.Depth[k]
	}
	return out
}

func affFormScale(a AffForm, c int64) AffForm {
	out := AffForm{OK: true, Const: a.Const * c, Reg: a.Reg * c}
	for k := range out.Depth {
		out.Depth[k] = a.Depth[k] * c
	}
	return out
}
