package ir

import "testing"

func fpProgram(bound int) *Program {
	p := NewProgram("fp_test")
	a := p.AddVar("a", 16)
	seg := &Segment{ID: 0, Name: "body", Body: []Stmt{
		&Assign{LHS: Wr(a, Idx("i")), RHS: AddE(Rd(a, Idx("i")), C(1))},
	}}
	r := &Region{Name: "loop", Kind: LoopRegion, Index: "i", From: 0, To: bound, Step: 1,
		Segments: []*Segment{seg}}
	r.Finalize()
	p.AddRegion(r)
	return p
}

func TestFingerprintStableAcrossRebuilds(t *testing.T) {
	if FingerprintOf(fpProgram(7)) != FingerprintOf(fpProgram(7)) {
		t.Error("structurally identical programs got different fingerprints")
	}
}

func TestFingerprintSeparatesContent(t *testing.T) {
	if FingerprintOf(fpProgram(7)) == FingerprintOf(fpProgram(8)) {
		t.Error("programs with different trip counts share a fingerprint")
	}
}
