package ir

import (
	"fmt"
	"strings"
)

// Format renders the program as mini-language source text. The output is
// accepted by the lang package parser, which is exercised by round-trip
// tests.
func (p *Program) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, v := range p.Vars {
		if v.IsScalar() {
			fmt.Fprintf(&b, "var %s\n", v.Name)
		} else {
			dims := make([]string, len(v.Dims))
			for i, d := range v.Dims {
				dims[i] = fmt.Sprint(d)
			}
			fmt.Fprintf(&b, "var %s[%s]\n", v.Name, strings.Join(dims, ","))
		}
	}
	for _, pr := range p.Procs {
		fmt.Fprintf(&b, "proc %s(%s) {\n", pr.Name, strings.Join(pr.Params, ", "))
		writeStmts(&b, pr.Body, "  ")
		b.WriteString("}\n")
	}
	for _, r := range p.Regions {
		b.WriteString(r.Format())
	}
	return b.String()
}

// Format renders the region as mini-language source text.
func (r *Region) Format() string {
	var b strings.Builder
	switch r.Kind {
	case LoopRegion:
		fmt.Fprintf(&b, "region %s loop %s = %s {\n", r.Name, r.Index, rangeStr(r.From, r.To, r.Step))
		writeAnnotations(&b, r, "  ")
		writeStmts(&b, r.Segments[0].Body, "  ")
		b.WriteString("}\n")
	case CFGRegion:
		fmt.Fprintf(&b, "region %s cfg {\n", r.Name)
		writeAnnotations(&b, r, "  ")
		for _, s := range r.Segments {
			fmt.Fprintf(&b, "  segment %s {\n", s.Name)
			writeStmts(&b, s.Body, "    ")
			b.WriteString("  }")
			if len(s.Succs) > 0 {
				names := make([]string, len(s.Succs))
				for i, id := range s.Succs {
					names[i] = r.Seg(id).Name
				}
				if s.Branch != nil {
					fmt.Fprintf(&b, " goto %s if %s else %s", names[0], s.Branch.String(), names[1])
				} else {
					fmt.Fprintf(&b, " goto %s", names[0])
				}
			}
			b.WriteString("\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func writeAnnotations(b *strings.Builder, r *Region, indent string) {
	if len(r.Ann.Private) > 0 {
		fmt.Fprintf(b, "%sprivate %s\n", indent, strings.Join(sortedKeys(r.Ann.Private), ", "))
	}
	if len(r.Ann.LiveOut) > 0 {
		fmt.Fprintf(b, "%sliveout %s\n", indent, strings.Join(sortedKeys(r.Ann.LiveOut), ", "))
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func rangeStr(from, to, step int) string {
	switch step {
	case 1:
		return fmt.Sprintf("%d to %d", from, to)
	case -1:
		return fmt.Sprintf("%d downto %d", from, to)
	default:
		if step > 0 {
			return fmt.Sprintf("%d to %d step %d", from, to, step)
		}
		return fmt.Sprintf("%d downto %d step %d", from, to, -step)
	}
}

func writeStmts(b *strings.Builder, stmts []Stmt, indent string) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s\n", indent, refStr(s.LHS), s.RHS.String())
		case *If:
			fmt.Fprintf(b, "%sif %s {\n", indent, s.Cond.String())
			writeStmts(b, s.Then, indent+"  ")
			if len(s.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				writeStmts(b, s.Else, indent+"  ")
			}
			fmt.Fprintf(b, "%s}\n", indent)
		case *For:
			fmt.Fprintf(b, "%sfor %s = %s {\n", indent, s.Index, rangeStr(s.From, s.To, s.Step))
			writeStmts(b, s.Body, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		case *ExitRegion:
			fmt.Fprintf(b, "%sexit if %s\n", indent, s.Cond.String())
		case *Call:
			args := make([]string, len(s.Args))
			for i, a := range s.Args {
				args[i] = a.String()
			}
			fmt.Fprintf(b, "%scall %s(%s)\n", indent, s.Callee, strings.Join(args, ", "))
		}
	}
}

func refStr(r *Ref) string {
	if len(r.Subs) == 0 {
		return r.Var.Name
	}
	subs := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		subs[i] = s.String()
	}
	return fmt.Sprintf("%s[%s]", r.Var.Name, strings.Join(subs, ","))
}
