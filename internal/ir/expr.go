package ir

import (
	"fmt"
	"strconv"
)

// Expr is an expression tree node. Expressions appear as assignment
// right-hand sides, conditions, and array subscripts. Values are int64;
// comparison and logical operators yield 0 or 1.
type Expr interface {
	isExpr()
	String() string
}

// Const is an integer literal.
type Const struct{ Val int64 }

// Index reads a loop index variable: the region index of a LoopRegion or
// an inner For loop index. Loop indices are maintained by the execution
// engine outside speculative storage (the paper's architecture guarantees
// loop variables are non-speculative).
type Index struct{ Name string }

// Load reads memory through a Ref (which must have Access == Read).
type Load struct{ Ref *Ref }

// Bin applies a binary operator.
type Bin struct {
	Op BinOp
	L  Expr
	R  Expr
}

func (*Const) isExpr() {}
func (*Index) isExpr() {}
func (*Load) isExpr()  {}
func (*Bin) isExpr()   {}

func (e *Const) String() string { return strconv.FormatInt(e.Val, 10) }
func (e *Index) String() string { return e.Name }

func (e *Load) String() string {
	s := e.Ref.Var.Name
	if len(e.Ref.Subs) > 0 {
		s += "["
		for i, sub := range e.Ref.Subs {
			if i > 0 {
				s += ","
			}
			s += sub.String()
		}
		s += "]"
	}
	return s
}

func (e *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L.String(), e.Op.String(), e.R.String())
}

// BinOp enumerates the binary operators of the expression language.
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div // integer division; division by zero yields 0 (defined semantics for synthetic programs)
	Mod // remainder; x mod 0 yields 0
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	And // logical: non-zero operands
	Or
)

var binOpNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%",
	Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "==", Ne: "!=",
	And: "&&", Or: "||",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("op(%d)", op)
}

// Apply evaluates the operator on two values with the language's total
// semantics (division and modulo by zero yield zero).
func (op BinOp) Apply(a, b int64) int64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	case Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case Lt:
		return b2i(a < b)
	case Le:
		return b2i(a <= b)
	case Gt:
		return b2i(a > b)
	case Ge:
		return b2i(a >= b)
	case Eq:
		return b2i(a == b)
	case Ne:
		return b2i(a != b)
	case And:
		return b2i(a != 0 && b != 0)
	case Or:
		return b2i(a != 0 || b != 0)
	}
	panic(fmt.Sprintf("ir: unknown operator %d", op))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ExprRefs returns the Read references contained in the expression, in
// left-to-right (evaluation) order.
func ExprRefs(e Expr) []*Ref {
	var out []*Ref
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Load:
			for _, sub := range x.Ref.Subs {
				walk(sub)
			}
			out = append(out, x.Ref)
		case *Bin:
			walk(x.L)
			walk(x.R)
		}
	}
	walk(e)
	return out
}

// Affine is the canonical form c0 + sum(Coeff[idx] * idx) of a subscript
// expression that is linear in loop index variables and contains no memory
// loads. References whose every subscript has an Affine form have certain
// addresses: re-executing the segment recomputes the same address, because
// loop indices are non-speculative (paper §4.2.2).
type Affine struct {
	Const int64
	Coeff map[string]int64
}

// AffineOf decomposes e into affine form. The second result is false when
// the expression is not affine (contains loads, non-linear terms, division,
// or comparisons).
func AffineOf(e Expr) (Affine, bool) {
	switch x := e.(type) {
	case *Const:
		return Affine{Const: x.Val}, true
	case *Index:
		return Affine{Coeff: map[string]int64{x.Name: 1}}, true
	case *Load:
		return Affine{}, false
	case *Bin:
		l, lok := AffineOf(x.L)
		r, rok := AffineOf(x.R)
		if !lok || !rok {
			return Affine{}, false
		}
		switch x.Op {
		case Add:
			return affAdd(l, r, 1), true
		case Sub:
			return affAdd(l, r, -1), true
		case Mul:
			if len(l.Coeff) == 0 {
				return affScale(r, l.Const), true
			}
			if len(r.Coeff) == 0 {
				return affScale(l, r.Const), true
			}
			return Affine{}, false
		default:
			return Affine{}, false
		}
	}
	return Affine{}, false
}

func affAdd(a, b Affine, sign int64) Affine {
	out := Affine{Const: a.Const + sign*b.Const, Coeff: map[string]int64{}}
	for k, v := range a.Coeff {
		out.Coeff[k] += v
	}
	for k, v := range b.Coeff {
		out.Coeff[k] += sign * v
	}
	for k, v := range out.Coeff {
		if v == 0 {
			delete(out.Coeff, k)
		}
	}
	return out
}

func affScale(a Affine, c int64) Affine {
	out := Affine{Const: a.Const * c, Coeff: map[string]int64{}}
	for k, v := range a.Coeff {
		if v*c != 0 {
			out.Coeff[k] = v * c
		}
	}
	return out
}

// Coefficient returns the coefficient of the named index (0 if absent).
func (a Affine) Coefficient(idx string) int64 {
	if a.Coeff == nil {
		return 0
	}
	return a.Coeff[idx]
}

// AddrCertain reports whether every subscript of the reference is affine in
// loop indices, so that the reference is guaranteed to access the same
// location in a misspeculated and in the final execution. Scalar
// references are always certain.
func AddrCertain(r *Ref) bool {
	for _, sub := range r.Subs {
		if _, ok := AffineOf(sub); !ok {
			return false
		}
	}
	return true
}

// RefAffine returns the per-dimension affine forms of the reference's
// subscripts, or nil if any dimension is not affine.
func RefAffine(r *Ref) []Affine {
	out := make([]Affine, 0, len(r.Subs))
	for _, sub := range r.Subs {
		a, ok := AffineOf(sub)
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}

// Convenience constructors, used heavily by workloads and tests.

// C returns a constant expression.
func C(v int64) Expr { return &Const{Val: v} }

// Idx returns a loop-index expression.
func Idx(name string) Expr { return &Index{Name: name} }

// Rd returns a Load of a new Read reference to v with the given subscripts.
func Rd(v *Var, subs ...Expr) Expr {
	return &Load{Ref: &Ref{Var: v, Access: Read, Subs: subs}}
}

// Wr returns a new Write reference to v with the given subscripts.
func Wr(v *Var, subs ...Expr) *Ref {
	return &Ref{Var: v, Access: Write, Subs: subs}
}

// Op builds a binary expression.
func Op(op BinOp, l, r Expr) Expr { return &Bin{Op: op, L: l, R: r} }

// AddE builds l + r.
func AddE(l, r Expr) Expr { return Op(Add, l, r) }

// SubE builds l - r.
func SubE(l, r Expr) Expr { return Op(Sub, l, r) }

// MulE builds l * r.
func MulE(l, r Expr) Expr { return Op(Mul, l, r) }
