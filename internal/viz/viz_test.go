package viz

import (
	"strings"
	"testing"

	"refidem/internal/idem"
	"refidem/internal/workloads"
)

func TestSegmentGraphDOT(t *testing.T) {
	p := workloads.Figure3()
	s := SegmentGraphDOT(p.Regions[0])
	for _, want := range []string{"digraph segments", "exit", "s1 ->", "taken", "else"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	// Every segment must appear.
	for _, seg := range p.Regions[0].Segments {
		if !strings.Contains(s, seg.Name) {
			t.Errorf("segment %s missing", seg.Name)
		}
	}
}

func TestDependenceGraphDOT(t *testing.T) {
	p := workloads.Figure2()
	res := idem.LabelRegion(p, p.Regions[0], nil)
	s := DependenceGraphDOT(res)
	for _, want := range []string{"digraph deps", "palegreen", "salmon", "penwidth=2", "dashed"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Node count equals reference count.
	if got := strings.Count(s, "fillcolor"); got != len(p.Regions[0].Refs) {
		t.Errorf("%d nodes for %d refs", got, len(p.Regions[0].Refs))
	}
	// Edge count equals dependence count.
	if got := strings.Count(s, " -> "); got != len(res.Deps.All) {
		t.Errorf("%d edges for %d deps", got, len(res.Deps.All))
	}
}

func TestDOTIsDeterministic(t *testing.T) {
	p := workloads.Figure2()
	res := idem.LabelRegion(p, p.Regions[0], nil)
	if DependenceGraphDOT(res) != DependenceGraphDOT(res) {
		t.Error("DOT output not deterministic")
	}
}
