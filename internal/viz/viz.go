// Package viz renders analysis results as Graphviz DOT: the segment
// control-flow graph of a region (Figure 2/3 style, with per-variable
// Algorithm 1 attributes) and the reference-level dependence graph with
// idempotency labels. cmd/idemlabel -dot prints them.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"refidem/internal/deps"
	"refidem/internal/idem"
	"refidem/internal/ir"
)

// SegmentGraphDOT renders the region's segment graph. Each node lists the
// segment name; edges follow the declared control flow, with the exit as
// a doublecircle.
func SegmentGraphDOT(r *ir.Region) string {
	var b strings.Builder
	b.WriteString("digraph segments {\n  rankdir=TB;\n  node [shape=box];\n")
	fmt.Fprintf(&b, "  exit [shape=doublecircle, label=%q];\n", "exit")
	for _, seg := range r.Segments {
		name := seg.Name
		if name == "" {
			name = fmt.Sprintf("S%d", seg.ID)
		}
		fmt.Fprintf(&b, "  s%d [label=%q];\n", seg.ID, name)
	}
	for _, seg := range r.Segments {
		if len(seg.Succs) == 0 {
			fmt.Fprintf(&b, "  s%d -> exit;\n", seg.ID)
			continue
		}
		for i, succ := range seg.Succs {
			attr := ""
			if seg.Branch != nil {
				if i == 0 {
					attr = " [label=\"taken\"]"
				} else {
					attr = " [label=\"else\"]"
				}
			}
			fmt.Fprintf(&b, "  s%d -> s%d%s;\n", seg.ID, succ, attr)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// refNode returns a stable DOT identifier and display label for a ref.
func refNode(ref *ir.Ref) (id, label string) {
	text := ref.Var.Name
	if len(ref.Subs) > 0 {
		parts := make([]string, len(ref.Subs))
		for i, s := range ref.Subs {
			parts[i] = s.String()
		}
		text += "[" + strings.Join(parts, ",") + "]"
	}
	return fmt.Sprintf("r%d", ref.ID), fmt.Sprintf("%s %s\\n#%d S%d", ref.Access, text, ref.ID, ref.SegID)
}

// DependenceGraphDOT renders the reference-by-reference dependence graph
// with idempotency labels: idempotent references are green boxes,
// speculative ones red; edge styles distinguish flow (solid), anti
// (dashed) and output (dotted); cross-segment edges are bold.
func DependenceGraphDOT(res *idem.Result) string {
	var b strings.Builder
	b.WriteString("digraph deps {\n  rankdir=LR;\n  node [shape=box, style=filled];\n")
	refs := append([]*ir.Ref(nil), res.Region.Refs...)
	sort.Slice(refs, func(i, j int) bool { return refs[i].ID < refs[j].ID })
	for _, ref := range refs {
		id, label := refNode(ref)
		color := "salmon"
		if res.Label(ref) == idem.Idempotent {
			color = "palegreen"
		}
		fmt.Fprintf(&b, "  %s [label=%q, fillcolor=%q, tooltip=%q];\n",
			id, label, color, res.Category(ref).String())
	}
	for _, d := range res.Deps.All {
		src, _ := refNode(d.Src)
		dst, _ := refNode(d.Dst)
		style := "solid"
		switch d.Kind {
		case deps.Anti:
			style = "dashed"
		case deps.Output:
			style = "dotted"
		}
		weight := ""
		if d.Cross {
			weight = ", penwidth=2"
		}
		fmt.Fprintf(&b, "  %s -> %s [style=%s%s, label=%q];\n", src, dst, style, weight, d.Kind.String())
	}
	b.WriteString("}\n")
	return b.String()
}
