// Package rfw implements the re-occurring-first-write analysis of the
// paper: Definition 5 and Algorithm 1.
//
// A write reference to x in segment Ri is a RFW if, following any rollback
// of Ri, a live x is guaranteed to be written before the end of the
// enclosing region without a preceding read reference. The RFW property is
// what lets a write be labeled idempotent even though it may store a
// temporarily incorrect value during misspeculation: the value is
// guaranteed to be corrected before any final execution consumes it.
//
// Two implementations cover the two region shapes:
//
//   - CFG regions use Algorithm 1 verbatim: per-variable node coloring
//     (White/Black) over the segment graph with the Write/Read/Null
//     attributes from the dataflow package, a breadth-first search, and
//     recursive blackening of the successors of any node that reaches an
//     exposed read through Null nodes.
//
//   - Loop regions use the location-wise specialization of the same path
//     condition on the iteration-chain segment graph: a write is a RFW iff
//     its address is certain (affine in non-speculative loop indices), it
//     executes on every path through the segment, the region has no early
//     exit, and no read of the same location executes before it — either
//     earlier in the same iteration (an intra-segment anti dependence with
//     the write as sink) or in an older iteration (a cross-segment anti
//     dependence with the write as sink, which would be re-executed
//     between the rollback point and the re-occurring write).
package rfw

import (
	"refidem/internal/cfg"
	"refidem/internal/dataflow"
	"refidem/internal/deps"
	"refidem/internal/ir"
)

// Color is the node color of Algorithm 1.
type Color uint8

const (
	// White marks nodes whose write references to the variable are RFW.
	White Color = iota
	// Black marks nodes whose write references are not RFW.
	Black
)

func (c Color) String() string {
	if c == White {
		return "White"
	}
	return "Black"
}

// Result carries the RFW classification of a region's write references.
type Result struct {
	// IsRFW maps every write reference to its RFW status.
	IsRFW map[*ir.Ref]bool
	// Colors holds, for CFG regions, the per-variable final node colors
	// (segment ID → color), matching Figure 3 of the paper. Nil for loop
	// regions.
	Colors map[*ir.Var]map[int]Color
}

// Analyze computes the RFW set of the region. The dataflow info and
// dependence analysis must belong to the same region.
func Analyze(r *ir.Region, g *cfg.Graph, info *dataflow.RegionInfo, da *deps.Analysis) *Result {
	if r.Kind == ir.CFGRegion {
		return analyzeCFG(r, g, info)
	}
	return analyzeLoop(r, da)
}

// analyzeCFG is Algorithm 1.
func analyzeCFG(r *ir.Region, g *cfg.Graph, info *dataflow.RegionInfo) *Result {
	res := &Result{
		IsRFW:  make(map[*ir.Ref]bool),
		Colors: make(map[*ir.Var]map[int]Color),
	}
	for _, v := range r.RegionVars() {
		colors := colorVariable(r, g, info, v)
		res.Colors[v] = colors
		for _, ref := range r.VarRefs(v) {
			if ref.Access != ir.Write {
				continue
			}
			// The paper's algorithm assumes the compiler can prove the
			// reference re-executes to the same address; references like
			// K(E) are excluded ("not guaranteed to access the same
			// address").
			res.IsRFW[ref] = colors[ref.SegID] == White && ir.AddrCertain(ref)
		}
	}
	return res
}

// colorVariable runs the coloring of Algorithm 1 for one variable.
func colorVariable(r *ir.Region, g *cfg.Graph, info *dataflow.RegionInfo, v *ir.Var) map[int]Color {
	// Step 1: attributes. v_exit is Read iff v is live out of R.
	attr := make(map[int]dataflow.Attr, len(r.Segments)+1)
	for _, seg := range r.Segments {
		attr[seg.ID] = info.Attrs[seg.ID][v] // zero value NullAttr when absent
	}
	if info.LiveOut[v] {
		attr[cfg.Exit] = dataflow.ReadAttr
	} else {
		attr[cfg.Exit] = dataflow.NullAttr
	}

	colors := make(map[int]Color, len(r.Segments))
	for _, seg := range r.Segments {
		colors[seg.ID] = White
	}

	// Step 2: breadth-first search; blacken successors of any White node
	// that reaches a Read node through zero or more Null nodes.
	g.BFS(func(n int) {
		if colors[n] != White {
			return
		}
		if reachesReadThroughNulls(g, attr, n) {
			blackenDescendants(g, colors, n)
		}
	})
	return colors
}

// reachesReadThroughNulls reports whether some path starting at the
// successors of n reaches a Read-attributed node traversing only
// Null-attributed nodes. Write-attributed nodes block the search: on any
// path through them the variable is rewritten before it can be read.
func reachesReadThroughNulls(g *cfg.Graph, attr map[int]dataflow.Attr, n int) bool {
	seen := make(map[int]bool)
	work := append([]int(nil), g.Succs(n)...)
	for len(work) > 0 {
		m := work[0]
		work = work[1:]
		if seen[m] {
			continue
		}
		seen[m] = true
		switch attr[m] {
		case dataflow.ReadAttr:
			return true
		case dataflow.WriteAttr:
			// Blocked: the node must-defines the variable before any
			// internal read.
		default:
			if m != cfg.Exit {
				work = append(work, g.Succs(m)...)
			}
		}
	}
	return false
}

// blackenDescendants recursively colors all White successors of n Black.
func blackenDescendants(g *cfg.Graph, colors map[int]Color, n int) {
	for _, s := range g.Succs(n) {
		if s == cfg.Exit || colors[s] == Black {
			continue
		}
		colors[s] = Black
		blackenDescendants(g, colors, s)
	}
}

// analyzeLoop is the location-wise RFW test for loop regions.
func analyzeLoop(r *ir.Region, da *deps.Analysis) *Result {
	res := &Result{IsRFW: make(map[*ir.Ref]bool)}
	earlyExit := r.HasEarlyExit()
	for _, ref := range r.Refs {
		if ref.Access != ir.Write {
			continue
		}
		res.IsRFW[ref] = isLoopRFW(ref, da, earlyExit)
	}
	return res
}

func isLoopRFW(w *ir.Ref, da *deps.Analysis, earlyExit bool) bool {
	if earlyExit {
		// A data-dependent trip count makes re-execution of any given
		// iteration impossible to guarantee.
		return false
	}
	if !ir.AddrCertain(w) {
		return false
	}
	if w.Ctx.Conditional {
		// The write is not guaranteed to re-occur on all paths through
		// the segment.
		return false
	}
	for _, d := range da.SinksAt(w) {
		if d.Kind != deps.Anti {
			continue
		}
		// A read of the same location executes before the write: earlier
		// in the same iteration (intra-segment) or in an older iteration,
		// which re-executes between the rollback point and this write
		// (cross-segment). That read consumes the stale value — unless it
		// is itself covered by a must-write to the same location earlier
		// in its own segment execution, in which case every path still
		// rewrites the location before any read (Definition 5 holds).
		if !isCoveredRead(d.Src, da.Region) {
			return false
		}
	}
	return true
}

// isCoveredRead reports whether every execution of the read r is preceded,
// within the same segment execution, by a write to the same location. The
// check is a must-analysis: it looks for an unconditional, certain-address
// write w to the same variable that (a) textually precedes r's innermost
// diverging subtree (structured code executes same-level statements in
// textual order, so all instances of w complete before any instance of r
// within a common-loop iteration), (b) mirrors r's loop nest beyond their
// common prefix with identical ranges, and (c) has subscripts whose affine
// forms equal r's after positionally mapping w's non-common loop indices
// onto r's. Under those conditions, for every address r reads, w wrote the
// same address earlier in the segment.
func isCoveredRead(r *ir.Ref, region *ir.Region) bool {
	if r.Access != ir.Read || !ir.AddrCertain(r) {
		return false
	}
	for _, w := range region.VarRefs(r.Var) {
		if w.Access != ir.Write || w.SegID != r.SegID {
			continue
		}
		if coversRead(w, r) {
			return true
		}
	}
	return false
}

func coversRead(w, r *ir.Ref) bool {
	if w.Ctx.Conditional || !ir.AddrCertain(w) || w.Pos >= r.Pos {
		return false
	}
	// Common loop prefix; the remaining chains must mirror each other.
	n := 0
	for n < len(w.Ctx.Loops) && n < len(r.Ctx.Loops) && w.Ctx.Loops[n].ID == r.Ctx.Loops[n].ID {
		n++
	}
	wRest := w.Ctx.Loops[n:]
	rRest := r.Ctx.Loops[n:]
	if len(wRest) != len(rRest) {
		return false
	}
	rename := make(map[string]string, len(wRest))
	for i := range wRest {
		if wRest[i].From != rRest[i].From || wRest[i].To != rRest[i].To || wRest[i].Step != rRest[i].Step {
			return false
		}
		rename[wRest[i].Index] = rRest[i].Index
	}
	wAff := ir.RefAffine(w)
	rAff := ir.RefAffine(r)
	for dim := range wAff {
		if !affineEqualRenamed(wAff[dim], rAff[dim], rename) {
			return false
		}
	}
	return true
}

// affineEqualRenamed compares two affine forms after renaming a's
// variables through the rename map (identity for unmapped names).
func affineEqualRenamed(a, b ir.Affine, rename map[string]string) bool {
	if a.Const != b.Const {
		return false
	}
	mapped := make(map[string]int64, len(a.Coeff))
	for v, c := range a.Coeff {
		if nv, ok := rename[v]; ok {
			v = nv
		}
		mapped[v] += c
	}
	if len(mapped) != len(b.Coeff) {
		return false
	}
	for v, c := range b.Coeff {
		if mapped[v] != c {
			return false
		}
	}
	return true
}
