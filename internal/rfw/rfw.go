// Package rfw implements the re-occurring-first-write analysis of the
// paper: Definition 5 and Algorithm 1.
//
// A write reference to x in segment Ri is a RFW if, following any rollback
// of Ri, a live x is guaranteed to be written before the end of the
// enclosing region without a preceding read reference. The RFW property is
// what lets a write be labeled idempotent even though it may store a
// temporarily incorrect value during misspeculation: the value is
// guaranteed to be corrected before any final execution consumes it.
//
// Two implementations cover the two region shapes:
//
//   - CFG regions use Algorithm 1 verbatim: per-variable node coloring
//     (White/Black) over the segment graph with the Write/Read/Null
//     attributes from the dataflow package, a breadth-first search, and
//     recursive blackening of the successors of any node that reaches an
//     exposed read through Null nodes.
//
//   - Loop regions use the location-wise specialization of the same path
//     condition on the iteration-chain segment graph: a write is a RFW iff
//     its address is certain (affine in non-speculative loop indices), it
//     executes on every path through the segment, the region has no early
//     exit, and no read of the same location executes before it — either
//     earlier in the same iteration (an intra-segment anti dependence with
//     the write as sink) or in an older iteration (a cross-segment anti
//     dependence with the write as sink, which would be re-executed
//     between the rollback point and the re-occurring write).
//
// Both run on the dense region index: the RFW set is a bitset over
// reference IDs, CFG colorings live in one flat segment-by-variable
// array, and the traversal scratch is pooled, so Analyze allocates only
// the returned Result.
package rfw

import (
	"sync"

	"refidem/internal/cfg"
	"refidem/internal/dataflow"
	"refidem/internal/deps"
	"refidem/internal/ir"
)

// Color is the node color of Algorithm 1.
type Color uint8

const (
	// White marks nodes whose write references to the variable are RFW.
	White Color = iota
	// Black marks nodes whose write references are not RFW.
	Black
)

func (c Color) String() string {
	if c == White {
		return "White"
	}
	return "Black"
}

// Result carries the RFW classification of a region's write references.
type Result struct {
	idx   *ir.RegionIndex
	isRFW ir.Bits
	// colors holds, for CFG regions, the per-variable final node colors
	// (local var × age position), matching Figure 3 of the paper. Nil for
	// loop regions.
	colors []Color
}

// IsRFW reports the RFW status of a write reference.
func (res *Result) IsRFW(ref *ir.Ref) bool { return res.isRFW.Get(int32(ref.ID)) }

// Color returns the final Algorithm 1 color of the segment for the given
// variable (CFG regions; White for unknown variables or segments,
// matching the map zero value of the paper's presentation).
func (res *Result) Color(v *ir.Var, segID int) Color {
	if res.colors == nil {
		return White
	}
	local := res.idx.LocalOf(v)
	seg := res.idx.SegPos(segID)
	if local < 0 || seg < 0 {
		return White
	}
	return res.colors[int(local)*res.idx.NumSegs+int(seg)]
}

// Analyze computes the RFW set of the region. The dataflow info and
// dependence analysis must belong to the same region.
func Analyze(r *ir.Region, g *cfg.Graph, info *dataflow.RegionInfo, da *deps.Analysis) *Result {
	if r.Kind == ir.CFGRegion {
		return analyzeCFG(r, g, info)
	}
	return analyzeLoop(r, da)
}

// cfgScratch pools the per-variable traversal state of analyzeCFG.
var cfgPool = sync.Pool{New: func() any { return &cfgScratch{} }}

type cfgScratch struct {
	seen []bool
	work []int32
}

// analyzeCFG is Algorithm 1.
func analyzeCFG(r *ir.Region, g *cfg.Graph, info *dataflow.RegionInfo) *Result {
	idx := r.DenseIndex()
	nv, ns := len(idx.Vars), idx.NumSegs
	res := &Result{
		idx:    idx,
		isRFW:  ir.MakeBits(len(r.Refs)),
		colors: make([]Color, nv*ns),
	}
	sc := cfgPool.Get().(*cfgScratch)
	if cap(sc.seen) < ns+1 {
		sc.seen = make([]bool, ns+1)
		sc.work = make([]int32, 0, ns+1)
	}
	for local := int32(0); local < int32(nv); local++ {
		colors := res.colors[int(local)*ns : (int(local)+1)*ns]
		colorVariable(g, info, local, colors, sc)
	}
	for _, ref := range r.Refs {
		if ref.Access != ir.Write {
			continue
		}
		// The paper's algorithm assumes the compiler can prove the
		// reference re-executes to the same address; references like
		// K(E) are excluded ("not guaranteed to access the same
		// address").
		local := idx.VarOf[ref.ID]
		if res.colors[int(local)*ns+int(idx.SegOf[ref.ID])] == White && idx.AddrCertain[ref.ID] {
			res.isRFW.Set(int32(ref.ID))
		}
	}
	cfgPool.Put(sc)
	return res
}

// colorVariable runs the coloring of Algorithm 1 for one variable.
// colors is the variable's row (by segment age position), initially all
// White (the zero value).
func colorVariable(g *cfg.Graph, info *dataflow.RegionInfo, local int32, colors []Color, sc *cfgScratch) {
	// Step 1: attributes come from the dataflow info; v_exit is Read iff
	// the variable is live out of R. Step 2: breadth-first search;
	// blacken successors of any White node that reaches a Read node
	// through zero or more Null nodes.
	g.BFS(func(n int) {
		pos := g.Age(n)
		if colors[pos] != White {
			return
		}
		if reachesReadThroughNulls(g, info, local, n, sc) {
			blackenDescendants(g, colors, n)
		}
	})
}

// attrAt returns the Algorithm 1 attribute of the node for the variable,
// with the synthetic exit node Read iff the variable is live out.
func attrAt(g *cfg.Graph, info *dataflow.RegionInfo, local int32, n int) dataflow.Attr {
	if n == cfg.Exit {
		if info.LiveOutAt(local) {
			return dataflow.ReadAttr
		}
		return dataflow.NullAttr
	}
	return info.AttrAt(int32(g.Age(n)), local)
}

// reachesReadThroughNulls reports whether some path starting at the
// successors of n reaches a Read-attributed node traversing only
// Null-attributed nodes. Write-attributed nodes block the search: on any
// path through them the variable is rewritten before it can be read.
func reachesReadThroughNulls(g *cfg.Graph, info *dataflow.RegionInfo, local int32, n int, sc *cfgScratch) bool {
	ns := len(g.Nodes)
	seen := sc.seen[:ns+1]
	for i := range seen {
		seen[i] = false
	}
	work := sc.work[:0]
	for _, s := range g.Succs(n) {
		work = append(work, int32(g.Age(s)))
	}
	for head := 0; head < len(work); head++ {
		mp := work[head]
		if seen[mp] {
			continue
		}
		seen[mp] = true
		m := cfg.Exit
		if int(mp) < ns {
			m = g.Nodes[mp]
		}
		switch attrAt(g, info, local, m) {
		case dataflow.ReadAttr:
			sc.work = work[:0]
			return true
		case dataflow.WriteAttr:
			// Blocked: the node must-defines the variable before any
			// internal read.
		default:
			if m != cfg.Exit {
				for _, s := range g.Succs(m) {
					work = append(work, int32(g.Age(s)))
				}
			}
		}
	}
	sc.work = work[:0]
	return false
}

// blackenDescendants recursively colors all White successors of n Black.
func blackenDescendants(g *cfg.Graph, colors []Color, n int) {
	for _, s := range g.Succs(n) {
		if s == cfg.Exit || colors[g.Age(s)] == Black {
			continue
		}
		colors[g.Age(s)] = Black
		blackenDescendants(g, colors, s)
	}
}

// analyzeLoop is the location-wise RFW test for loop regions.
func analyzeLoop(r *ir.Region, da *deps.Analysis) *Result {
	idx := r.DenseIndex()
	res := &Result{idx: idx, isRFW: ir.MakeBits(len(r.Refs))}
	earlyExit := r.HasEarlyExit()
	for _, ref := range r.Refs {
		if ref.Access != ir.Write {
			continue
		}
		if isLoopRFW(ref, da, earlyExit, idx) {
			res.isRFW.Set(int32(ref.ID))
		}
	}
	return res
}

func isLoopRFW(w *ir.Ref, da *deps.Analysis, earlyExit bool, idx *ir.RegionIndex) bool {
	if earlyExit {
		// A data-dependent trip count makes re-execution of any given
		// iteration impossible to guarantee.
		return false
	}
	if !idx.AddrCertain[w.ID] {
		return false
	}
	if w.Ctx.Conditional {
		// The write is not guaranteed to re-occur on all paths through
		// the segment.
		return false
	}
	for _, d := range da.SinksAt(w) {
		if d.Kind != deps.Anti {
			continue
		}
		// A read of the same location executes before the write: earlier
		// in the same iteration (intra-segment) or in an older iteration,
		// which re-executes between the rollback point and this write
		// (cross-segment). That read consumes the stale value — unless it
		// is itself covered by a must-write to the same location earlier
		// in its own segment execution, in which case every path still
		// rewrites the location before any read (Definition 5 holds).
		if !isCoveredRead(d.Src, da.Region, idx) {
			return false
		}
	}
	return true
}

// isCoveredRead reports whether every execution of the read r is preceded,
// within the same segment execution, by a write to the same location. The
// check is a must-analysis: it looks for an unconditional, certain-address
// write w to the same variable that (a) textually precedes r's innermost
// diverging subtree (structured code executes same-level statements in
// textual order, so all instances of w complete before any instance of r
// within a common-loop iteration), (b) mirrors r's loop nest beyond their
// common prefix with identical ranges, and (c) has subscripts whose affine
// forms equal r's after positionally mapping w's non-common loop indices
// onto r's. Under those conditions, for every address r reads, w wrote the
// same address earlier in the segment.
func isCoveredRead(r *ir.Ref, region *ir.Region, idx *ir.RegionIndex) bool {
	if r.Access != ir.Read || !idx.AddrCertain[r.ID] {
		return false
	}
	for _, wid := range idx.RefsOf(idx.VarOf[r.ID]) {
		w := region.Refs[wid]
		if w.Access != ir.Write || w.SegID != r.SegID {
			continue
		}
		if coversRead(w, r, idx) {
			return true
		}
	}
	return false
}

func coversRead(w, r *ir.Ref, idx *ir.RegionIndex) bool {
	if w.Ctx.Conditional || !idx.AddrCertain[w.ID] || w.Pos >= r.Pos {
		return false
	}
	// Common loop prefix; the remaining chains must mirror each other.
	n := 0
	for n < len(w.Ctx.Loops) && n < len(r.Ctx.Loops) && w.Ctx.Loops[n].ID == r.Ctx.Loops[n].ID {
		n++
	}
	wRest := w.Ctx.Loops[n:]
	rRest := r.Ctx.Loops[n:]
	if len(wRest) != len(rRest) {
		return false
	}
	for i := range wRest {
		if wRest[i].From != rRest[i].From || wRest[i].To != rRest[i].To || wRest[i].Step != rRest[i].Step {
			return false
		}
	}
	if idx.SlowAff[w.ID] || idx.SlowAff[r.ID] {
		return coversReadSlow(w, r)
	}
	// Positional affine equality: the common prefix shares loop IDs and
	// the mirrored chains map depth-to-depth, so the dense forms must
	// match coefficient by coefficient.
	wAff := idx.Aff[w.ID]
	rAff := idx.Aff[r.ID]
	for dim := range wAff {
		if wAff[dim].Const != rAff[dim].Const ||
			wAff[dim].Reg != rAff[dim].Reg ||
			wAff[dim].Depth != rAff[dim].Depth {
			return false
		}
	}
	return true
}

// coversReadSlow is the map-based affine comparison used when a reference
// has no dense affine form.
func coversReadSlow(w, r *ir.Ref) bool {
	n := 0
	for n < len(w.Ctx.Loops) && n < len(r.Ctx.Loops) && w.Ctx.Loops[n].ID == r.Ctx.Loops[n].ID {
		n++
	}
	rename := make(map[string]string, len(w.Ctx.Loops)-n)
	wRest := w.Ctx.Loops[n:]
	rRest := r.Ctx.Loops[n:]
	for i := range wRest {
		rename[wRest[i].Index] = rRest[i].Index
	}
	wAff := ir.RefAffine(w)
	rAff := ir.RefAffine(r)
	for dim := range wAff {
		if !affineEqualRenamed(wAff[dim], rAff[dim], rename) {
			return false
		}
	}
	return true
}

// affineEqualRenamed compares two affine forms after renaming a's
// variables through the rename map (identity for unmapped names).
func affineEqualRenamed(a, b ir.Affine, rename map[string]string) bool {
	if a.Const != b.Const {
		return false
	}
	mapped := make(map[string]int64, len(a.Coeff))
	for v, c := range a.Coeff {
		if nv, ok := rename[v]; ok {
			v = nv
		}
		mapped[v] += c
	}
	if len(mapped) != len(b.Coeff) {
		return false
	}
	for v, c := range b.Coeff {
		if mapped[v] != c {
			return false
		}
	}
	return true
}
