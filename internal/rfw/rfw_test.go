package rfw

import (
	"testing"

	"refidem/internal/cfg"
	"refidem/internal/dataflow"
	"refidem/internal/deps"
	"refidem/internal/ir"
	"refidem/internal/workloads"
)

// analyzeFirstRegion runs the full prerequisite pipeline on program p's
// first region and returns everything a test needs.
func analyzeFirstRegion(p *ir.Program) (*ir.Region, *Result) {
	r := p.Regions[0]
	g := cfg.FromRegion(r)
	info := dataflow.AnalyzeRegion(p, r, nil)
	da := deps.Analyze(r, g)
	return r, Analyze(r, g, info, da)
}

// rfwVars collects, per segment ID, the set of variable names with at
// least one RFW write reference in that segment.
func rfwVars(r *ir.Region, res *Result) map[int]map[string]bool {
	out := make(map[int]map[string]bool)
	for _, ref := range r.Refs {
		if ref.Access != ir.Write || !res.IsRFW(ref) {
			continue
		}
		if out[ref.SegID] == nil {
			out[ref.SegID] = make(map[string]bool)
		}
		out[ref.SegID][ref.Var.Name] = true
	}
	return out
}

func TestFigure3RFW(t *testing.T) {
	p := workloads.Figure3()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r, res := analyzeFirstRegion(p)

	// Paper: x writes in segments 6 and 7 are NOT RFW (exposed read in
	// segment 4); all y writes are RFW; z's write in segment 6 is NOT RFW
	// (exposed read in segment 2).
	for _, ref := range r.Refs {
		if ref.Access != ir.Write {
			continue
		}
		want := true
		switch ref.Var.Name {
		case "x":
			want = ref.SegID != 6 && ref.SegID != 7
		case "z":
			want = ref.SegID != 6
		}
		if res.IsRFW(ref) != want {
			t.Errorf("RFW(%s in segment %d) = %v, want %v", ref.Var.Name, ref.SegID, res.IsRFW(ref), want)
		}
	}
}

func TestFigure3Colors(t *testing.T) {
	p := workloads.Figure3()
	r, res := analyzeFirstRegion(p)
	x := p.Var("x")
	y := p.Var("y")
	z := p.Var("z")

	wantX := map[int]Color{1: White, 2: White, 3: White, 4: Black, 5: White, 6: Black, 7: Black}
	for seg, want := range wantX {
		if got := res.Color(x, seg); got != want {
			t.Errorf("color(x, seg %d) = %v, want %v", seg, got, want)
		}
	}
	// All y nodes White except 7 (blackened because 6 reaches the
	// live-out read at the exit).
	for _, seg := range r.Segments {
		want := White
		if seg.ID == 7 {
			want = Black
		}
		if got := res.Color(y, seg.ID); got != want {
			t.Errorf("color(y, seg %d) = %v, want %v", seg.ID, got, want)
		}
	}
	// z: segment 1 White, everything else blackened by segment 1's reach
	// of the exposed read in segment 2.
	for _, seg := range r.Segments {
		want := Black
		if seg.ID == 1 {
			want = White
		}
		if got := res.Color(z, seg.ID); got != want {
			t.Errorf("color(z, seg %d) = %v, want %v", seg.ID, got, want)
		}
	}
}

func TestFigure2RFWSets(t *testing.T) {
	p := workloads.Figure2()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r, res := analyzeFirstRegion(p)
	got := rfwVars(r, res)

	// Paper: RFW(R0)={C,N,J}, RFW(R1)={E,J}, RFW(R2)={A}, RFW(R3)={A},
	// RFW(R4)={F}. (Scratch temporaries t0..t7 are also trivially RFW;
	// the paper's example does not model them.)
	want := map[int][]string{
		0: {"C", "N", "J"},
		1: {"E", "J"},
		2: {"A"},
		3: {"A"},
		4: {"F"},
	}
	paperVars := map[string]bool{
		"A": true, "B": true, "C": true, "E": true, "F": true,
		"G": true, "H": true, "J": true, "N": true, "K": true,
	}
	for seg, vars := range want {
		for _, v := range vars {
			if !got[seg][v] {
				t.Errorf("RFW(R%d) missing %s", seg, v)
			}
		}
		for v := range got[seg] {
			if !paperVars[v] {
				continue // scratch temporary
			}
			found := false
			for _, w := range vars {
				if w == v {
					found = true
				}
			}
			if !found {
				t.Errorf("RFW(R%d) contains unexpected %s", seg, v)
			}
		}
	}
}

func TestFigure2NonRFWReasons(t *testing.T) {
	p := workloads.Figure2()
	r, res := analyzeFirstRegion(p)
	for _, ref := range r.Refs {
		if ref.Access != ir.Write {
			continue
		}
		switch ref.Var.Name {
		case "B":
			if res.IsRFW(ref) {
				t.Errorf("B write in R%d must not be RFW", ref.SegID)
			}
		case "K":
			if res.IsRFW(ref) {
				t.Errorf("K(E) write in R%d must not be RFW (uncertain address)", ref.SegID)
			}
		case "H":
			if res.IsRFW(ref) {
				t.Error("H write in R4 must not be RFW (preceded by a read)")
			}
		}
	}
}

func TestLoopRFWBasics(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 16)
	x := p.AddVar("x")
	c := p.AddVar("c", 16)
	e := p.AddVar("e", 16)
	body := []ir.Stmt{
		// a[k] = c[k]: certain address, unconditional, no prior read: RFW.
		&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.Rd(c, ir.Idx("k"))},
		// x = x + 1: the write is preceded by its own read (intra anti)
		// and by older iterations' reads (cross anti): not RFW.
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(x), ir.C(1))},
		// e[c[k]] = 1: uncertain address: not RFW.
		&ir.Assign{LHS: ir.Wr(e, ir.Rd(c, ir.Idx("k"))), RHS: ir.C(1)},
		// conditional write: not RFW.
		&ir.If{Cond: ir.Rd(c, ir.Idx("k")), Then: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(a, ir.AddE(ir.Idx("k"), ir.C(8))), RHS: ir.C(2)},
		}},
	}
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: 7, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: body}}}
	r.Finalize()
	p.AddRegion(r)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	_, res := analyzeFirstRegion(p)
	wantByID := []bool{
		// refs in textual order: rd c[k], wr a[k], rd x, wr x,
		// rd c[k] (subscript), wr e[...], rd c[k] (cond),
		// wr a[k+8] (conditional)
	}
	_ = wantByID
	for _, ref := range p.Regions[0].Refs {
		if ref.Access != ir.Write {
			continue
		}
		var want bool
		switch {
		case ref.Var == a && !ref.Ctx.Conditional:
			want = true
		default:
			want = false
		}
		if res.IsRFW(ref) != want {
			t.Errorf("RFW(%v) = %v, want %v", ref, res.IsRFW(ref), want)
		}
	}
}

func TestLoopRFWCrossAntiSink(t *testing.T) {
	// a[k] = a[k+1] ascending: iteration k reads cell k+1 which iteration
	// k+1 rewrites. The write is a cross anti sink: after a rollback of
	// iteration k+1 to the end of iteration k-1, iteration k re-reads the
	// stale cell before the write re-occurs. Not RFW.
	p := ir.NewProgram("t")
	a := p.AddVar("a", 16)
	body := []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.Rd(a, ir.AddE(ir.Idx("k"), ir.C(1)))},
	}
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 1, To: 8, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: body}}}
	r.Finalize()
	p.AddRegion(r)
	_, res := analyzeFirstRegion(p)
	for _, ref := range p.Regions[0].Refs {
		if ref.Access == ir.Write && res.IsRFW(ref) {
			t.Errorf("anti-sink write %v must not be RFW", ref)
		}
	}
}

func TestLoopRFWEarlyExit(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 16)
	body := []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.C(1)},
		&ir.ExitRegion{Cond: ir.Rd(a, ir.Idx("k"))},
	}
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 1, To: 8, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: body}}}
	r.Finalize()
	p.AddRegion(r)
	_, res := analyzeFirstRegion(p)
	for _, ref := range p.Regions[0].Refs {
		if ref.Access == ir.Write && res.IsRFW(ref) {
			t.Errorf("write %v in early-exit region must not be RFW", ref)
		}
	}
}

func TestButsRFW(t *testing.T) {
	p := workloads.ButsDO1(6)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r, res := analyzeFirstRegion(p)
	v := p.Var("v")
	tv := p.Var("t")
	for _, ref := range r.Refs {
		if ref.Access != ir.Write {
			continue
		}
		switch ref.Var {
		case v:
			// S2's write reads the same cell first (intra anti) and is a
			// cross anti sink: not RFW.
			if res.IsRFW(ref) {
				t.Errorf("S2 write %v must not be RFW", ref)
			}
		case tv:
			// t[m] is written before it is read in every iteration.
			if !res.IsRFW(ref) {
				t.Errorf("t write %v should be RFW", ref)
			}
		}
	}
}

func TestColorString(t *testing.T) {
	if White.String() != "White" || Black.String() != "Black" {
		t.Error("Color.String broken")
	}
}
