package gen

import (
	"fmt"
	"sort"
)

// Profile is a named scenario configuration: a generation regime aimed at
// one corner of the behaviour space. Profiles are the fuzzing driver's
// unit of rotation — `cmd/fuzz -profile pressure` pins one, the default
// rotates through all of them.
type Profile struct {
	Name string
	Desc string
	Cfg  Config
}

// profiles is the registry, in rotation order. Order is part of the
// fuzzer's determinism contract: (seed, n) fixes the exact program
// sequence.
var profiles = []Profile{
	{
		Name: "default",
		Desc: "balanced mix over every feature",
		Cfg:  Default(),
	},
	{
		Name: "affine",
		Desc: "purely affine subscripts, loop regions only, no exits",
		Cfg: func() Config {
			c := Default()
			c.Subs = SubscriptMix{Affine: 1}
			c.CFGPct, c.ExitPct, c.BurstPct = 0, 0, 0
			c.PrivateScalars, c.ReadOnlyArrays = 0, 0
			return c
		}(),
	},
	{
		Name: "indirect",
		Desc: "heavy subscripted-subscript (uncertain address) traffic",
		Cfg: func() Config {
			c := Default()
			c.Subs = SubscriptMix{Affine: 2, Indirect: 3, Coupled: 1}
			return c
		}(),
	},
	{
		Name: "coupled",
		Desc: "two-index coupled subscripts with deep inner loops",
		Cfg: func() Config {
			c := Default()
			c.Subs = SubscriptMix{Affine: 2, Indirect: 0, Coupled: 5}
			c.LoopPct, c.MaxDepth = 30, 3
			c.CFGPct = 0
			return c
		}(),
	},
	{
		Name: "deep",
		Desc: "nesting depth 3, long conditional-dense bodies",
		Cfg: func() Config {
			c := Default()
			c.MaxDepth, c.MaxStmts = 3, 9
			c.CondPct, c.LoopPct = 30, 15
			return c
		}(),
	},
	{
		Name: "cfg",
		Desc: "explicit CFG DAG regions only (branchy control flow)",
		Cfg: func() Config {
			c := Default()
			c.CFGPct = 100
			return c
		}(),
	},
	{
		Name: "multiregion",
		Desc: "four regions sharing memory through inter-region liveness",
		Cfg: func() Config {
			c := Default()
			c.Regions = 4
			c.LiveOutEvery = 1
			return c
		}(),
	},
	{
		Name: "exits",
		Desc: "early-exit heavy loop regions (control speculation)",
		Cfg: func() Config {
			c := Default()
			c.ExitPct, c.CFGPct = 12, 0
			return c
		}(),
	},
	{
		Name: "private",
		Desc: "privatization mix: declared segment-private scalars",
		Cfg: func() Config {
			c := Default()
			c.PrivateScalars, c.MaxScalars = 3, 2
			return c
		}(),
	},
	{
		Name: "readonly",
		Desc: "read-only array mix (no-write idempotent category)",
		Cfg: func() Config {
			c := Default()
			c.ReadOnlyArrays, c.MaxArrays = 3, 1
			c.Subs = SubscriptMix{Affine: 4, Indirect: 2, Coupled: 1}
			return c
		}(),
	},
	{
		Name: "pressure",
		Desc: "buffer-pressure regime: dense write bursts, long trips",
		Cfg: func() Config {
			c := Default()
			c.BurstPct, c.MaxInnerTrip, c.MaxStmts = 25, 8, 8
			c.MaxIters = 14
			c.CFGPct = 0
			return c
		}(),
	},
	{
		Name: "liveout",
		Desc: "everything live-out (maximal differential surface)",
		Cfg: func() Config {
			c := Default()
			c.LiveOutEvery = 1
			return c
		}(),
	},
	{
		Name: "calls",
		Desc: "procedure calls with affine parameter binding",
		Cfg: func() Config {
			c := Default()
			c.Procs, c.MaxParams, c.CallPct = 2, 2, 25
			c.ExitPct = 0
			return c
		}(),
	},
	{
		Name: "calls-nested",
		Desc: "nested call chains: procs calling earlier procs",
		Cfg: func() Config {
			c := Default()
			c.Procs, c.MaxParams, c.CallPct = 4, 2, 35
			c.MaxStmts = 7
			c.CFGPct, c.ExitPct = 0, 0
			return c
		}(),
	},
	{
		Name: "calls-mixed",
		Desc: "calls mixed with early exits, bursts and indirect traffic",
		Cfg: func() Config {
			c := Default()
			c.Procs, c.MaxParams, c.CallPct = 3, 1, 20
			c.CFGPct, c.ExitPct, c.BurstPct = 0, 8, 10
			c.Subs = SubscriptMix{Affine: 4, Indirect: 2, Coupled: 1}
			return c
		}(),
	},
}

// Profiles returns the registry in rotation order.
func Profiles() []Profile {
	return append([]Profile{}, profiles...)
}

// ProfileNames lists the registered profile names, sorted.
func ProfileNames() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

// ProfileByName looks a profile up.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("gen: unknown profile %q (have %v)", name, ProfileNames())
}

// FromProfile generates one scenario under the named profile.
func FromProfile(p Profile, seed int64) *Scenario {
	return generate(seed, p.Cfg, p.Name)
}
