package gen

import (
	"math/rand"

	"refidem/internal/ir"
)

// AffineLoop generates a straight-line loop region with purely affine
// subscripts, no conditionals, no indirect accesses and no early exits —
// the restricted shape the brute-force trace oracles (dependence ground
// truth, Definition 5 RFW checking) can enumerate exactly.
func AffineLoop(seed int64) *ir.Program {
	rng := rand.New(rand.NewSource(seed))
	p := ir.NewProgram("oracle")
	iters := 3 + rng.Intn(6)
	arrays := make([]*ir.Var, 1+rng.Intn(3))
	for i := range arrays {
		arrays[i] = p.AddVar("a"+string(rune('0'+i)), iters*3+8)
	}
	scalars := make([]*ir.Var, 1+rng.Intn(2))
	for i := range scalars {
		scalars[i] = p.AddVar("s" + string(rune('0'+i)))
	}
	affine := func(indices []string, dim int) ir.Expr {
		if len(indices) > 0 && rng.Intn(3) != 0 {
			idx := indices[rng.Intn(len(indices))]
			scale := 1 + rng.Intn(2)
			off := rng.Intn(5)
			return ir.AddE(ir.MulE(ir.C(int64(scale)), ir.Idx(idx)), ir.C(int64(off)))
		}
		return ir.C(int64(rng.Intn(dim)))
	}
	mkRef := func(indices []string, write bool) *ir.Ref {
		if rng.Intn(4) == 0 {
			v := scalars[rng.Intn(len(scalars))]
			if write {
				return ir.Wr(v)
			}
			return ir.Rd(v).(*ir.Load).Ref
		}
		v := arrays[rng.Intn(len(arrays))]
		if write {
			return ir.Wr(v, affine(indices, v.Dims[0]))
		}
		return ir.Rd(v, affine(indices, v.Dims[0])).(*ir.Load).Ref
	}
	var stmts func(n int, indices []string, depth int) []ir.Stmt
	stmts = func(n int, indices []string, depth int) []ir.Stmt {
		var out []ir.Stmt
		for i := 0; i < n; i++ {
			if depth < 2 && rng.Intn(4) == 0 {
				idx := "j" + string(rune('0'+depth))
				out = append(out, &ir.For{
					Index: idx, From: 0, To: rng.Intn(3) + 1, Step: 1,
					Body: stmts(1+rng.Intn(2), append(append([]string{}, indices...), idx), depth+1),
				})
				continue
			}
			out = append(out, &ir.Assign{
				LHS: mkRef(indices, true),
				RHS: ir.AddE(&ir.Load{Ref: mkRef(indices, false)}, ir.C(1)),
			})
		}
		return out
	}
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: iters - 1, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: stmts(1+rng.Intn(4), []string{"k"}, 0)}}}
	live := map[string]bool{}
	for i, v := range p.Vars {
		if i%2 == 0 {
			live[v.Name] = true
		}
	}
	r.Ann.LiveOut = live
	r.Finalize()
	p.AddRegion(r)
	return p
}
