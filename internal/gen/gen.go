// Package gen is the seeded, grammar-driven program generator behind the
// property tests and the differential fuzzer. It grew out of the private
// generator in internal/testutil: generation is now a first-class
// subsystem with tunable scenario profiles (subscript classes, nesting
// depth, conditionals, multi-region programs, privatization/read-only/
// live-out mixes, buffer-pressure regimes) and every generated program
// comes wrapped in a self-describing Scenario record, so a failing fuzz
// case can be replayed byte-exactly from its seed and profile name alone.
//
// Generated affine subscripts are always within array bounds: the
// analysis contract (as for any Fortran-style compiler, and as in the
// paper) is that analyzable subscripts do not overflow their declared
// dimensions. Indirect (subscripted-subscript) accesses may take any
// value — the engine wraps them into bounds, and the dependence analysis
// treats them conservatively, exactly like the paper's K(E) references.
package gen

import (
	"fmt"
	"math/rand"

	"refidem/internal/ir"
)

// SubscriptMix weights the three subscript classes the generator emits
// for array accesses. A class with weight 0 never appears; weights are
// relative, not percentages.
type SubscriptMix struct {
	// Affine subscripts are scale*idx + c, in bounds by construction.
	Affine int
	// Indirect subscripts are loads of another array (uncertain address,
	// the paper's K(E) class).
	Indirect int
	// Coupled subscripts combine two in-scope loop indices,
	// s1*i1 + s2*i2 + c, creating cross-iteration dependence patterns a
	// single-index subscript cannot express.
	Coupled int
}

// Config bounds the shape of generated programs. The zero value is not
// usable; start from Default() or a named profile and adjust.
type Config struct {
	MaxScalars  int
	MaxArrays   int
	MaxArrayDim int
	MaxStmts    int
	MaxIters    int
	// MaxInnerTrip bounds inner-loop trip counts.
	MaxInnerTrip int
	// MaxDepth bounds statement nesting (if/for) inside a segment body.
	MaxDepth int
	// Regions sets how many regions the program contains (min 1).
	Regions int

	// CFGPct is the percentage of regions generated as explicit CFG DAGs
	// rather than counted loops.
	CFGPct int
	// DowntoPct is the percentage of loop regions that iterate downward.
	DowntoPct int
	// CondPct is the percentage chance a statement slot becomes an
	// if/else (subject to MaxDepth).
	CondPct int
	// LoopPct is the percentage chance a statement slot becomes an inner
	// loop (subject to MaxDepth).
	LoopPct int
	// ExitPct is the percentage chance a top-level loop-region statement
	// slot becomes an early exit (exit if ...).
	ExitPct int
	// BurstPct is the percentage chance a statement slot becomes a dense
	// write burst — an inner loop storing to a fresh array cell every
	// iteration. Bursts inflate per-segment speculative footprints and
	// are the lever of the buffer-pressure profiles.
	BurstPct int

	// Subs weights the subscript classes.
	Subs SubscriptMix

	// Procs declares that many procedures before the regions; their
	// bodies are generated with the same statement grammar (parameters in
	// scope as bounded index names). 0 disables procedures.
	Procs int
	// MaxParams bounds the per-procedure parameter count (each procedure
	// rolls 0..MaxParams parameters).
	MaxParams int
	// CallPct is the percentage chance a statement slot becomes a
	// procedure call (region bodies and procedure bodies alike; a
	// procedure can only call procedures generated before it, so the
	// call graph is acyclic by construction).
	CallPct int

	// PrivateScalars adds that many scalars which are written (defined)
	// at the top of every segment body and declared private, exercising
	// the privatization category soundly: every use is preceded by the
	// unconditional segment-local definition.
	PrivateScalars int
	// ReadOnlyArrays reserves that many arrays as read-only: the
	// generator never writes them, exercising the read-only category.
	ReadOnlyArrays int
	// LiveOutEvery marks every k-th non-private variable live out of the
	// program (0 disables the mix; at least one variable is always kept
	// live so differential comparison has something to compare).
	LiveOutEvery int
}

// Default is a balanced configuration exercising every feature a little.
func Default() Config {
	return Config{
		MaxScalars: 4, MaxArrays: 3, MaxArrayDim: 24,
		MaxStmts: 6, MaxIters: 10, MaxInnerTrip: 4, MaxDepth: 2,
		Regions: 1,
		CFGPct:  33, DowntoPct: 15, CondPct: 20, LoopPct: 10,
		ExitPct: 2, BurstPct: 5,
		Subs:           SubscriptMix{Affine: 7, Indirect: 1, Coupled: 2},
		PrivateScalars: 1, ReadOnlyArrays: 1, LiveOutEvery: 2,
	}
}

// Scenario is the self-describing record wrapping one generated program:
// everything needed to regenerate it byte-exactly (seed + profile/config)
// plus a summary of the features it actually contains.
type Scenario struct {
	Seed    int64
	Profile string // profile name, or "custom" for ad-hoc configs
	Config  Config
	Program *ir.Program

	// Fingerprint is the content fingerprint of the generated program;
	// two runs with the same seed and config must produce equal values.
	Fingerprint ir.Fingerprint

	// Shape counters.
	Regions    int
	CFGRegions int
	Stmts      int
	Refs       int

	// Feature flags: what the program actually exercises.
	Indirect   bool
	Coupled    bool
	EarlyExit  bool
	WriteBurst bool
	Downto     bool
	Calls      bool

	PrivateScalars int
	ReadOnlyArrays int
	// Procs counts the declared procedures.
	Procs   int
	LiveOut int
}

// String renders a one-line self-description.
func (s *Scenario) String() string {
	feats := ""
	mark := func(on bool, tag string) {
		if on {
			feats += " " + tag
		}
	}
	mark(s.CFGRegions > 0, "cfg")
	mark(s.Indirect, "indirect")
	mark(s.Coupled, "coupled")
	mark(s.EarlyExit, "exit")
	mark(s.WriteBurst, "burst")
	mark(s.Downto, "downto")
	mark(s.Calls, "calls")
	mark(s.PrivateScalars > 0, "private")
	mark(s.ReadOnlyArrays > 0, "readonly")
	return fmt.Sprintf("seed=%d profile=%s regions=%d stmts=%d refs=%d liveout=%d%s",
		s.Seed, s.Profile, s.Regions, s.Stmts, s.Refs, s.LiveOut, feats)
}

// idxInfo describes an in-scope loop index and its maximum value.
type idxInfo struct {
	name string
	max  int
}

// gen carries generation state.
type gen struct {
	rng      *rand.Rand
	cfg      Config
	p        *ir.Program
	scalars  []*ir.Var // shared scalars (write + read)
	privates []*ir.Var // declared-private scalars (def-before-use)
	arrays   []*ir.Var // writable arrays
	roArrays []*ir.Var // read-only arrays
	procs    []*ir.Proc
	paramMax int // inclusive value bound callers guarantee per argument
	depth    int
	sc       *Scenario
}

// Generate builds one program under the given configuration and returns
// its scenario record. Identical (seed, cfg) pairs always produce
// identical programs.
func Generate(seed int64, cfg Config) *Scenario {
	return generate(seed, cfg, "custom")
}

func generate(seed int64, cfg Config, profile string) *Scenario {
	// Clamp every sizing knob a partially-filled Config may leave zero;
	// the generator must never panic on a custom configuration.
	if cfg.Regions < 1 {
		cfg.Regions = 1
	}
	if cfg.MaxScalars < 1 {
		cfg.MaxScalars = 1
	}
	if cfg.MaxArrays < 1 {
		cfg.MaxArrays = 1
	}
	if cfg.MaxArrayDim < 1 {
		cfg.MaxArrayDim = 1
	}
	if cfg.MaxIters < 2 {
		cfg.MaxIters = 2
	}
	if cfg.MaxStmts < 1 {
		cfg.MaxStmts = 1
	}
	if cfg.MaxInnerTrip < 1 {
		cfg.MaxInnerTrip = 1
	}
	sc := &Scenario{Seed: seed, Profile: profile, Config: cfg}
	g := &gen{
		rng: rand.New(rand.NewSource(seed)),
		cfg: cfg,
		p:   ir.NewProgram("rand"),
		sc:  sc,
	}
	ns := 1 + g.rng.Intn(cfg.MaxScalars)
	for i := 0; i < ns; i++ {
		g.scalars = append(g.scalars, g.p.AddVar(fmt.Sprintf("s%d", i)))
	}
	for i := 0; i < cfg.PrivateScalars; i++ {
		g.privates = append(g.privates, g.p.AddVar(fmt.Sprintf("p%d", i)))
	}
	na := 1 + g.rng.Intn(cfg.MaxArrays)
	for i := 0; i < na; i++ {
		// Dimensions comfortably larger than the iteration counts so
		// in-bounds affine subscripts exist for any scale <= 2.
		dim := cfg.MaxIters*2 + g.rng.Intn(cfg.MaxArrayDim)
		g.arrays = append(g.arrays, g.p.AddVar(fmt.Sprintf("a%d", i), dim))
	}
	for i := 0; i < cfg.ReadOnlyArrays; i++ {
		dim := cfg.MaxIters*2 + g.rng.Intn(cfg.MaxArrayDim)
		g.roArrays = append(g.roArrays, g.p.AddVar(fmt.Sprintf("r%d", i), dim))
	}
	if cfg.Procs > 0 {
		// Parameters behave like an extra loop index bounded by the same
		// iteration range, so the existing in-bounds subscript machinery
		// covers them; callers must pass arguments within [0, paramMax].
		g.paramMax = cfg.MaxIters - 1
		for i := 0; i < cfg.Procs; i++ {
			g.genProc(i)
		}
	}
	for ri := 0; ri < cfg.Regions; ri++ {
		var r *ir.Region
		if g.pct(cfg.CFGPct) {
			r = g.cfgRegion()
			sc.CFGRegions++
		} else {
			r = g.loopRegion()
		}
		r.Name = fmt.Sprintf("r%d", ri)
		if len(g.privates) > 0 {
			r.Ann.Private = map[string]bool{}
			for _, v := range g.privates {
				r.Ann.Private[v.Name] = true
			}
		}
		if ri == cfg.Regions-1 {
			// The final region declares the program's live-out set;
			// earlier regions get theirs from the inter-region liveness
			// pass. Private scalars are never live-out (their value after
			// the region is per-segment and undefined).
			r.Ann.LiveOut = g.liveOutSet()
			sc.LiveOut = len(r.Ann.LiveOut)
		}
		r.Finalize()
		g.p.AddRegion(r)
	}
	sc.Program = g.p
	sc.Fingerprint = ir.FingerprintOf(g.p)
	sc.Regions = len(g.p.Regions)
	for _, r := range g.p.Regions {
		sc.Refs += len(r.Refs)
		for _, seg := range r.Segments {
			ir.WalkStmts(seg.Body, func(ir.Stmt) { sc.Stmts++ })
		}
	}
	sc.PrivateScalars = len(g.privates)
	sc.ReadOnlyArrays = len(g.roArrays)
	sc.Procs = len(g.p.Procs)
	return sc
}

// genProc generates one procedure. Bodies use the shared statement
// grammar with the parameters in scope as bounded indices; a procedure
// may call any procedure generated before it (the call graph is acyclic
// by construction). Early exits inside procedures are only generated
// when every region is a loop region (CFGPct == 0), matching where the
// top-level grammar emits them.
func (g *gen) genProc(i int) {
	nparams := 0
	if g.cfg.MaxParams > 0 {
		nparams = g.rng.Intn(g.cfg.MaxParams + 1)
	}
	params := make([]string, nparams)
	indices := make([]idxInfo, nparams)
	for j := range params {
		params[j] = fmt.Sprintf("q%d", j)
		indices[j] = idxInfo{name: params[j], max: g.paramMax}
	}
	allowExit := g.cfg.ExitPct > 0 && g.cfg.CFGPct == 0
	n := 1 + g.rng.Intn(maxOf(1, g.cfg.MaxStmts/2))
	body := g.stmts(n, indices, allowExit)
	pr := g.p.AddProc(fmt.Sprintf("f%d", i), params, body)
	g.procs = append(g.procs, pr)
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// call emits a call to a random generated procedure with arguments that
// stay within [0, paramMax] for every in-scope index value, so callee
// subscripts built from parameters remain in bounds.
func (g *gen) call(indices []idxInfo) ir.Stmt {
	pr := g.procs[g.rng.Intn(len(g.procs))]
	args := make([]ir.Expr, len(pr.Params))
	for i := range args {
		args[i] = g.boundedArg(indices)
	}
	g.sc.Calls = true
	return &ir.Call{Callee: pr.Name, Args: args, Proc: pr}
}

// boundedArg builds an affine argument expression with value range
// within [0, paramMax]: a constant, an in-scope index that fits, or
// index + offset with the offset capped by the remaining headroom.
func (g *gen) boundedArg(indices []idxInfo) ir.Expr {
	var fits []idxInfo
	for _, ix := range indices {
		if ix.max <= g.paramMax {
			fits = append(fits, ix)
		}
	}
	if len(fits) == 0 || g.rng.Intn(4) == 0 {
		return ir.C(int64(g.rng.Intn(g.paramMax + 1)))
	}
	ix := fits[g.rng.Intn(len(fits))]
	if room := g.paramMax - ix.max; room > 0 && g.rng.Intn(2) == 0 {
		return ir.AddE(ir.Idx(ix.name), ir.C(int64(g.rng.Intn(room+1))))
	}
	return ir.Idx(ix.name)
}

// pct rolls a percentage chance.
func (g *gen) pct(p int) bool {
	if p <= 0 {
		return false
	}
	if p >= 100 {
		return true
	}
	return g.rng.Intn(100) < p
}

// liveOutSet marks every LiveOutEvery-th non-private variable live,
// always keeping at least one so differential comparison is meaningful.
func (g *gen) liveOutSet() map[string]bool {
	live := map[string]bool{}
	k := g.cfg.LiveOutEvery
	pool := append(append([]*ir.Var{}, g.scalars...), g.arrays...)
	pool = append(pool, g.roArrays...)
	if k > 0 {
		for i, v := range pool {
			if i%k == 0 {
				live[v.Name] = true
			}
		}
	}
	if len(live) == 0 && len(pool) > 0 {
		live[pool[0].Name] = true
	}
	return live
}

// privateDefs emits the unconditional segment-top definitions of the
// declared-private scalars: each is assigned before any possible use, so
// the declared privatization is sound by construction.
func (g *gen) privateDefs() []ir.Stmt {
	var out []ir.Stmt
	for _, v := range g.privates {
		out = append(out, &ir.Assign{LHS: ir.Wr(v), RHS: g.sharedExpr(nil, 1)})
	}
	return out
}

func (g *gen) loopRegion() *ir.Region {
	iters := 2 + g.rng.Intn(g.cfg.MaxIters-1)
	from, to, step := 0, iters-1, 1
	if g.pct(g.cfg.DowntoPct) {
		from, to, step = iters-1, 0, -1
		g.sc.Downto = true
	}
	body := append(g.privateDefs(),
		g.stmts(1+g.rng.Intn(g.cfg.MaxStmts), []idxInfo{{"k", iters - 1}}, true)...)
	return &ir.Region{
		Name: "r", Kind: ir.LoopRegion, Index: "k", From: from, To: to, Step: step,
		Segments: []*ir.Segment{{ID: 0, Body: body}},
	}
}

func (g *gen) cfgRegion() *ir.Region {
	n := 3 + g.rng.Intn(3)
	segs := make([]*ir.Segment, n)
	for i := 0; i < n; i++ {
		segs[i] = &ir.Segment{
			ID:   i,
			Name: fmt.Sprintf("s%d", i),
			Body: append(g.privateDefs(), g.stmts(1+g.rng.Intn(g.cfg.MaxStmts), nil, false)...),
		}
	}
	// Edges: forward-only. Each segment links to the next; some branch to
	// a random later segment.
	for i := 0; i < n-1; i++ {
		segs[i].Succs = []int{i + 1}
		if i+2 < n && g.rng.Intn(3) == 0 {
			other := i + 2 + g.rng.Intn(n-i-2)
			segs[i].Succs = append(segs[i].Succs, other)
			segs[i].Branch = g.expr(nil, 1)
		}
	}
	return &ir.Region{Name: "r", Kind: ir.CFGRegion, Segments: segs}
}

// stmts generates a statement list. indices are the in-scope loop
// indices; allowExit permits early-exit statements (loop regions only).
func (g *gen) stmts(n int, indices []idxInfo, allowExit bool) []ir.Stmt {
	var out []ir.Stmt
	for i := 0; i < n; i++ {
		roll := g.rng.Intn(100)
		switch {
		case roll < g.cfg.CondPct && g.depth < g.cfg.MaxDepth:
			g.depth++
			s := &ir.If{
				Cond: g.expr(indices, 1),
				Then: g.stmts(1+g.rng.Intn(2), indices, false),
			}
			if g.rng.Intn(2) == 0 {
				s.Else = g.stmts(1+g.rng.Intn(2), indices, false)
			}
			g.depth--
			out = append(out, s)
		case roll < g.cfg.CondPct+g.cfg.LoopPct && g.depth < g.cfg.MaxDepth:
			g.depth++
			trip := g.rng.Intn(g.cfg.MaxInnerTrip) + 1
			idx := idxInfo{name: fmt.Sprintf("j%d", g.depth), max: trip}
			inner := append(append([]idxInfo{}, indices...), idx)
			out = append(out, &ir.For{
				Index: idx.name, From: 0, To: trip, Step: 1,
				Body: g.stmts(1+g.rng.Intn(2), inner, false),
			})
			g.depth--
		case roll < g.cfg.CondPct+g.cfg.LoopPct+g.cfg.BurstPct && g.depth < g.cfg.MaxDepth:
			out = append(out, g.writeBurst(indices))
		case roll < g.cfg.CondPct+g.cfg.LoopPct+g.cfg.BurstPct+g.cfg.ExitPct && allowExit:
			out = append(out, &ir.ExitRegion{Cond: g.expr(indices, 1)})
			g.sc.EarlyExit = true
		case roll < g.cfg.CondPct+g.cfg.LoopPct+g.cfg.BurstPct+g.cfg.ExitPct+g.cfg.CallPct && len(g.procs) > 0:
			out = append(out, g.call(indices))
		default:
			out = append(out, g.assign(indices))
		}
	}
	return out
}

// writeBurst emits a dense store loop: every iteration writes a distinct
// cell of one array, inflating the segment's speculative footprint (the
// buffer-pressure regime).
func (g *gen) writeBurst(indices []idxInfo) ir.Stmt {
	a := g.arrays[g.rng.Intn(len(g.arrays))]
	dim := a.Dims[0]
	trip := 2 * g.cfg.MaxInnerTrip
	if trip > dim-1 {
		trip = dim - 1
	}
	if trip < 1 {
		trip = 1
	}
	base := 0
	if room := dim - 1 - trip; room > 0 {
		base = g.rng.Intn(room + 1)
	}
	g.depth++
	idx := idxInfo{name: fmt.Sprintf("j%d", g.depth), max: trip}
	sub := ir.AddE(ir.Idx(idx.name), ir.C(int64(base)))
	burst := &ir.For{
		Index: idx.name, From: 0, To: trip, Step: 1,
		Body: []ir.Stmt{&ir.Assign{
			LHS: ir.Wr(a, sub),
			RHS: g.expr(append(append([]idxInfo{}, indices...), idx), 1),
		}},
	}
	g.depth--
	g.sc.WriteBurst = true
	return burst
}

func (g *gen) assign(indices []idxInfo) ir.Stmt {
	return &ir.Assign{LHS: g.writeRef(indices), RHS: g.expr(indices, 0)}
}

// writeRef picks a store target: a shared or private scalar, or a
// writable array cell. Read-only arrays are never written.
func (g *gen) writeRef(indices []idxInfo) *ir.Ref {
	if g.rng.Intn(3) == 0 {
		pool := g.scalars
		if len(g.privates) > 0 && g.rng.Intn(3) == 0 {
			pool = g.privates
		}
		return ir.Wr(pool[g.rng.Intn(len(pool))])
	}
	a := g.arrays[g.rng.Intn(len(g.arrays))]
	return ir.Wr(a, g.subscript(indices, a.Dims[0]))
}

// subscript produces a subscript expression of one of the configured
// classes: in-bounds affine, in-bounds coupled (two indices), or
// indirect (whose value the engine wraps and the analysis treats
// conservatively).
func (g *gen) subscript(indices []idxInfo, dim int) ir.Expr {
	total := g.cfg.Subs.Affine + g.cfg.Subs.Indirect + g.cfg.Subs.Coupled
	if total <= 0 {
		return g.affine(indices, dim)
	}
	roll := g.rng.Intn(total)
	switch {
	case roll < g.cfg.Subs.Indirect:
		pool := append(append([]*ir.Var{}, g.arrays...), g.roArrays...)
		a := pool[g.rng.Intn(len(pool))]
		g.sc.Indirect = true
		return ir.Rd(a, g.affine(indices, a.Dims[0]))
	case roll < g.cfg.Subs.Indirect+g.cfg.Subs.Coupled && len(indices) >= 2:
		return g.coupled(indices, dim)
	default:
		return g.affine(indices, dim)
	}
}

// coupled builds s1*i1 + s2*i2 + c over two distinct in-scope indices
// with s1*max1 + s2*max2 + c <= dim-1.
func (g *gen) coupled(indices []idxInfo, dim int) ir.Expr {
	i1 := indices[g.rng.Intn(len(indices))]
	i2 := i1
	for tries := 0; i2.name == i1.name && tries < 4; tries++ {
		i2 = indices[g.rng.Intn(len(indices))]
	}
	if i2.name == i1.name || i1.max+i2.max > dim-1 {
		return g.affine(indices, dim)
	}
	s1 := 1
	if i1.max > 0 && 2*i1.max+i2.max <= dim-1 && g.rng.Intn(2) == 0 {
		s1 = 2
	}
	room := dim - 1 - s1*i1.max - i2.max
	c := 0
	if room > 0 {
		c = g.rng.Intn(room + 1)
	}
	g.sc.Coupled = true
	e := ir.AddE(ir.MulE(ir.C(int64(s1)), ir.Idx(i1.name)), ir.Idx(i2.name))
	if c != 0 {
		e = ir.AddE(e, ir.C(int64(c)))
	}
	return e
}

// affine builds scale*idx + c with scale*idxMax + c <= dim-1.
func (g *gen) affine(indices []idxInfo, dim int) ir.Expr {
	if len(indices) > 0 && g.rng.Intn(4) != 0 {
		idx := indices[g.rng.Intn(len(indices))]
		maxScale := 0
		if idx.max > 0 {
			maxScale = (dim - 1) / idx.max
		}
		if maxScale > 2 {
			maxScale = 2
		}
		if maxScale >= 1 {
			scale := 1 + g.rng.Intn(maxScale)
			room := dim - 1 - scale*idx.max
			c := 0
			if room > 0 {
				c = g.rng.Intn(room + 1)
			}
			return ir.AddE(ir.MulE(ir.C(int64(scale)), ir.Idx(idx.name)), ir.C(int64(c)))
		}
	}
	return ir.C(int64(g.rng.Intn(dim)))
}

// readableScalars is the pool an expression may load from: shared
// scalars always, private scalars too (their unconditional segment-top
// definition precedes every use).
func (g *gen) readableScalars() []*ir.Var {
	if len(g.privates) == 0 {
		return g.scalars
	}
	return append(append([]*ir.Var{}, g.scalars...), g.privates...)
}

// expr generates a right-hand-side expression; depth bounds recursion.
func (g *gen) expr(indices []idxInfo, depth int) ir.Expr {
	if depth > 2 {
		return ir.C(int64(g.rng.Intn(7) - 3))
	}
	switch g.rng.Intn(6) {
	case 0:
		return ir.C(int64(g.rng.Intn(9) - 4))
	case 1:
		if len(indices) > 0 {
			return ir.Idx(indices[g.rng.Intn(len(indices))].name)
		}
		return ir.C(1)
	case 2:
		pool := g.readableScalars()
		return ir.Rd(pool[g.rng.Intn(len(pool))])
	case 3:
		pool := append(append([]*ir.Var{}, g.arrays...), g.roArrays...)
		a := pool[g.rng.Intn(len(pool))]
		return ir.Rd(a, g.subscript(indices, a.Dims[0]))
	default:
		ops := []ir.BinOp{ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Lt, ir.Gt, ir.Eq, ir.And}
		return ir.Op(ops[g.rng.Intn(len(ops))],
			g.expr(indices, depth+1), g.expr(indices, depth+1))
	}
}

// sharedExpr is expr restricted to non-private operands (used for the
// private-scalar definitions themselves).
func (g *gen) sharedExpr(indices []idxInfo, depth int) ir.Expr {
	saved := g.privates
	g.privates = nil
	e := g.expr(indices, depth)
	g.privates = saved
	return e
}
