package gen

import (
	"testing"

	"refidem/internal/ir"
	"refidem/internal/lang"
)

// TestGeneratedProgramsValidate: every profile emits valid programs for
// many seeds.
func TestGeneratedProgramsValidate(t *testing.T) {
	for _, prof := range Profiles() {
		for seed := int64(0); seed < 120; seed++ {
			sc := FromProfile(prof, seed)
			if err := sc.Program.Validate(); err != nil {
				t.Fatalf("profile %s seed %d: invalid program: %v\n%s",
					prof.Name, seed, err, sc.Program.Format())
			}
		}
	}
}

// TestGenerateDeterministic: identical (seed, config) pairs produce
// byte-identical programs and fingerprints.
func TestGenerateDeterministic(t *testing.T) {
	for _, prof := range Profiles() {
		for seed := int64(0); seed < 25; seed++ {
			a := FromProfile(prof, seed)
			b := FromProfile(prof, seed)
			if a.Fingerprint != b.Fingerprint {
				t.Fatalf("profile %s seed %d: fingerprints differ", prof.Name, seed)
			}
			if a.Program.Format() != b.Program.Format() {
				t.Fatalf("profile %s seed %d: formatted programs differ", prof.Name, seed)
			}
			if a.String() != b.String() {
				t.Fatalf("profile %s seed %d: scenario records differ", prof.Name, seed)
			}
		}
	}
}

// TestPrinterRoundTrip: the printed program reparses to a program with
// the same content fingerprint — the generator, printer and parser agree
// on the language.
func TestPrinterRoundTrip(t *testing.T) {
	for _, prof := range Profiles() {
		for seed := int64(0); seed < 60; seed++ {
			sc := FromProfile(prof, seed)
			text := sc.Program.Format()
			q, err := lang.Parse(text)
			if err != nil {
				t.Fatalf("profile %s seed %d: reparse failed: %v\n%s", prof.Name, seed, err, text)
			}
			if ir.FingerprintOf(q) != sc.Fingerprint {
				t.Fatalf("profile %s seed %d: round trip changed the program\n%s",
					prof.Name, seed, text)
			}
		}
	}
}

// TestProfileFeatureCoverage: each profile actually produces the features
// it is named after, somewhere in a modest seed range.
func TestProfileFeatureCoverage(t *testing.T) {
	within := func(name string, hit func(*Scenario) bool) {
		t.Helper()
		prof, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 200; seed++ {
			if hit(FromProfile(prof, seed)) {
				return
			}
		}
		t.Errorf("profile %s never produced its feature in 200 seeds", name)
	}
	within("indirect", func(s *Scenario) bool { return s.Indirect })
	within("coupled", func(s *Scenario) bool { return s.Coupled })
	within("cfg", func(s *Scenario) bool { return s.CFGRegions == s.Regions && s.Regions > 0 })
	within("multiregion", func(s *Scenario) bool { return s.Regions == 4 })
	within("exits", func(s *Scenario) bool { return s.EarlyExit })
	within("private", func(s *Scenario) bool { return s.PrivateScalars == 3 })
	within("readonly", func(s *Scenario) bool { return s.ReadOnlyArrays == 3 })
	within("pressure", func(s *Scenario) bool { return s.WriteBurst })
	within("default", func(s *Scenario) bool { return s.Downto })
}

// TestAffineProfileIsRestricted: the affine profile never emits CFG
// regions, exits, indirect or coupled subscripts.
func TestAffineProfileIsRestricted(t *testing.T) {
	prof, err := ProfileByName("affine")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 150; seed++ {
		sc := FromProfile(prof, seed)
		if sc.CFGRegions > 0 || sc.EarlyExit || sc.Indirect || sc.Coupled {
			t.Fatalf("seed %d: affine profile produced excluded feature: %s", seed, sc)
		}
	}
}

// TestGenerateToleratesPartialConfig: zero-valued sizing knobs are
// clamped, never panicking rand.Intn.
func TestGenerateToleratesPartialConfig(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Regions: 2, CFGPct: 100},
		{MaxScalars: 1, MaxArrays: 1, LoopPct: 100, MaxDepth: 2},
		{MaxStmts: 3, CondPct: 100, MaxDepth: 1, BurstPct: 100},
	} {
		for seed := int64(0); seed < 30; seed++ {
			sc := Generate(seed, cfg)
			if err := sc.Program.Validate(); err != nil {
				t.Fatalf("cfg %+v seed %d: %v", cfg, seed, err)
			}
		}
	}
}

// TestAffineLoopShape: the oracle generator emits only straight-line
// assignments and counted inner loops (the shape the exhaustive trace
// oracles require), with purely affine subscripts.
func TestAffineLoopShape(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := AffineLoop(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := p.Regions[0]
		if r.Kind != ir.LoopRegion {
			t.Fatalf("seed %d: not a loop region", seed)
		}
		ir.WalkStmts(r.Segments[0].Body, func(s ir.Stmt) {
			switch s.(type) {
			case *ir.Assign, *ir.For:
			default:
				t.Fatalf("seed %d: forbidden statement %T", seed, s)
			}
		})
		for _, ref := range r.Refs {
			if !ir.AddrCertain(ref) {
				t.Fatalf("seed %d: non-affine reference %v", seed, ref)
			}
		}
	}
}
