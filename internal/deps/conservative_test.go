package deps

import (
	"testing"

	"refidem/internal/cfg"
	"refidem/internal/ir"
)

func TestConservativeMirrorsEveryDep(t *testing.T) {
	p := ir.NewProgram("t")
	av := p.AddVar("a", 16)
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 1, To: 8, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(av, ir.Idx("k")), RHS: ir.Rd(av, ir.SubE(ir.Idx("k"), ir.C(1)))},
		}}}}
	r.Finalize()
	p.AddRegion(r)
	a := Analyze(r, cfg.FromRegion(r))
	c := Conservative(a)
	// Every original dep and its mirror must be present.
	for _, d := range a.All {
		found, mirrored := false, false
		for _, e := range c.All {
			if e.Src == d.Src && e.Dst == d.Dst && e.Cross == d.Cross {
				found = true
			}
			if e.Src == d.Dst && e.Dst == d.Src && e.Cross == d.Cross {
				mirrored = true
			}
		}
		if !found || !mirrored {
			t.Errorf("dep %v: found=%v mirrored=%v", d, found, mirrored)
		}
	}
	// Both endpoints become sinks.
	rd, wr := r.Refs[0], r.Refs[1]
	if !c.IsCrossSink(rd) || !c.IsCrossSink(wr) {
		t.Error("conservative analysis should make both endpoints cross sinks")
	}
	// Mirrored kinds follow the access types: the reversed flow (w->r)
	// becomes an anti (r->w).
	hasAnti := false
	for _, e := range c.SinksAt(wr) {
		if e.Kind == Anti && e.Src == rd {
			hasAnti = true
		}
	}
	if !hasAnti {
		t.Error("mirror of the flow dep should be an anti dep")
	}
}

func TestConservativeOnDependenceFreeRegion(t *testing.T) {
	p := ir.NewProgram("t")
	av := p.AddVar("a", 16)
	bv := p.AddVar("b", 16)
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: 7, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(av, ir.Idx("k")), RHS: ir.Rd(bv, ir.Idx("k"))},
		}}}}
	r.Finalize()
	p.AddRegion(r)
	c := Conservative(Analyze(r, cfg.FromRegion(r)))
	if len(c.All) != 0 || c.HasCrossDeps() {
		t.Errorf("independent loop should stay dependence-free: %v", c.All)
	}
}
