package deps

import (
	"testing"

	"refidem/internal/cfg"
	"refidem/internal/ir"
)

// loopRegion builds a single-template loop region over k with the given
// body and returns the analysis plus the region.
func loopRegion(t *testing.T, p *ir.Program, from, to, step int, body ...ir.Stmt) (*Analysis, *ir.Region) {
	t.Helper()
	r := &ir.Region{
		Name: "r", Kind: ir.LoopRegion, Index: "k", From: from, To: to, Step: step,
		Segments: []*ir.Segment{{ID: 0, Body: body}},
	}
	r.Finalize()
	p.AddRegion(r)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return Analyze(r, cfg.FromRegion(r)), r
}

// has reports whether a dependence src->dst with the kind/cross exists.
func has(a *Analysis, src, dst *ir.Ref, kind Kind, cross bool) bool {
	for _, d := range a.All {
		if d.Src == src && d.Dst == dst && d.Kind == kind && d.Cross == cross {
			return true
		}
	}
	return false
}

func TestScalarAccumulator(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	a, r := loopRegion(t, p, 1, 4, 1,
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(x), ir.C(1))})
	rd, wr := r.Refs[0], r.Refs[1]
	if rd.Access != ir.Read || wr.Access != ir.Write {
		t.Fatal("ref order unexpected")
	}
	want := []struct {
		src, dst *ir.Ref
		kind     Kind
		cross    bool
	}{
		{rd, wr, Anti, true},   // read in older iteration, write in younger
		{wr, rd, Flow, true},   // write feeds read of younger iteration
		{wr, wr, Output, true}, // write-write across iterations
		{rd, wr, Anti, false},  // textual read-before-write same iteration
	}
	for _, w := range want {
		if !has(a, w.src, w.dst, w.kind, w.cross) {
			t.Errorf("missing dep %v->%v %v cross=%v in %v", w.src, w.dst, w.kind, w.cross, a.All)
		}
	}
	if len(a.All) != len(want) {
		t.Errorf("got %d deps, want %d: %v", len(a.All), len(want), a.All)
	}
	if !a.IsCrossSink(wr) || !a.IsCrossSink(rd) {
		t.Error("both refs are cross-segment sinks")
	}
}

func TestIndependentStreaming(t *testing.T) {
	p := ir.NewProgram("t")
	av := p.AddVar("a", 16)
	bv := p.AddVar("b", 16)
	a, _ := loopRegion(t, p, 1, 8, 1,
		&ir.Assign{LHS: ir.Wr(av, ir.Idx("k")), RHS: ir.Rd(bv, ir.Idx("k"))})
	if len(a.All) != 0 {
		t.Errorf("a[k]=b[k] should be dependence-free, got %v", a.All)
	}
	if a.HasCrossDeps() {
		t.Error("HasCrossDeps should be false")
	}
}

func TestDistanceOneFlow(t *testing.T) {
	p := ir.NewProgram("t")
	av := p.AddVar("a", 16)
	a, r := loopRegion(t, p, 1, 8, 1,
		&ir.Assign{LHS: ir.Wr(av, ir.Idx("k")), RHS: ir.Rd(av, ir.SubE(ir.Idx("k"), ir.C(1)))})
	rd, wr := r.Refs[0], r.Refs[1]
	if !has(a, wr, rd, Flow, true) {
		t.Errorf("missing cross flow w->r: %v", a.All)
	}
	if has(a, rd, wr, Anti, true) || has(a, rd, wr, Anti, false) {
		t.Errorf("spurious anti dep: %v", a.All)
	}
	if has(a, wr, wr, Output, true) {
		t.Errorf("spurious output self dep: %v", a.All)
	}
	if len(a.All) != 1 {
		t.Errorf("got %d deps, want 1: %v", len(a.All), a.All)
	}
}

func TestDescendingLoopFlowDirection(t *testing.T) {
	// do k = 8 downto 1: a[k] = a[k+1]: iteration k reads the plane
	// written by iteration k+1, which executed EARLIER. So the write is
	// the (older) source.
	p := ir.NewProgram("t")
	av := p.AddVar("a", 16)
	a, r := loopRegion(t, p, 8, 1, -1,
		&ir.Assign{LHS: ir.Wr(av, ir.Idx("k")), RHS: ir.Rd(av, ir.AddE(ir.Idx("k"), ir.C(1)))})
	rd, wr := r.Refs[0], r.Refs[1]
	if !has(a, wr, rd, Flow, true) {
		t.Errorf("missing cross flow w->r on descending loop: %v", a.All)
	}
	if len(a.All) != 1 {
		t.Errorf("got %v", a.All)
	}
}

func TestAscendingLoopAntiDirection(t *testing.T) {
	// do k = 1 to 8: a[k] = a[k+1]: iteration k reads the plane that
	// iteration k+1 (younger) will write: anti dependence read->write.
	p := ir.NewProgram("t")
	av := p.AddVar("a", 16)
	a, r := loopRegion(t, p, 1, 8, 1,
		&ir.Assign{LHS: ir.Wr(av, ir.Idx("k")), RHS: ir.Rd(av, ir.AddE(ir.Idx("k"), ir.C(1)))})
	rd, wr := r.Refs[0], r.Refs[1]
	if !has(a, rd, wr, Anti, true) {
		t.Errorf("missing cross anti r->w on ascending loop: %v", a.All)
	}
	if len(a.All) != 1 {
		t.Errorf("got %v", a.All)
	}
}

func TestInnerLoopLevelDependence(t *testing.T) {
	// Region k; inner ascending j: v[j,k] = v[j+1,k]. Within one segment
	// the read at inner iteration j touches the cell written at j+1
	// (later): intra-segment anti dependence. No cross-segment deps
	// because the k subscripts match only at equal k.
	p := ir.NewProgram("t")
	v := p.AddVar("v", 10, 10)
	a, r := loopRegion(t, p, 1, 8, 1,
		&ir.For{Index: "j", From: 1, To: 8, Step: 1, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(v, ir.Idx("j"), ir.Idx("k")),
				RHS: ir.Rd(v, ir.AddE(ir.Idx("j"), ir.C(1)), ir.Idx("k"))},
		}})
	rd, wr := r.Refs[0], r.Refs[1]
	if !has(a, rd, wr, Anti, false) {
		t.Errorf("missing intra anti: %v", a.All)
	}
	if a.HasCrossDeps() {
		t.Errorf("no cross deps expected: %v", a.All)
	}
	if len(a.All) != 1 {
		t.Errorf("got %v", a.All)
	}
}

func TestInnerLoopDescendingFlow(t *testing.T) {
	// Descending inner j: the write at j+1 executes before the read at
	// j reads cell j+1: intra flow w->r.
	p := ir.NewProgram("t")
	v := p.AddVar("v", 10, 10)
	a, r := loopRegion(t, p, 1, 8, 1,
		&ir.For{Index: "j", From: 8, To: 1, Step: -1, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(v, ir.Idx("j"), ir.Idx("k")),
				RHS: ir.Rd(v, ir.AddE(ir.Idx("j"), ir.C(1)), ir.Idx("k"))},
		}})
	rd, wr := r.Refs[0], r.Refs[1]
	if !has(a, wr, rd, Flow, false) {
		t.Errorf("missing intra flow on descending inner loop: %v", a.All)
	}
	if len(a.All) != 1 {
		t.Errorf("got %v", a.All)
	}
}

func TestReadModifyWriteSameCell(t *testing.T) {
	// a[k] = a[k] - 1: the only dependence is the textual intra-segment
	// anti (read executes before the write of the same cell).
	p := ir.NewProgram("t")
	av := p.AddVar("a", 16)
	a, r := loopRegion(t, p, 1, 8, 1,
		&ir.Assign{LHS: ir.Wr(av, ir.Idx("k")), RHS: ir.SubE(ir.Rd(av, ir.Idx("k")), ir.C(1))})
	rd, wr := r.Refs[0], r.Refs[1]
	if !has(a, rd, wr, Anti, false) {
		t.Errorf("missing intra anti: %v", a.All)
	}
	if len(a.All) != 1 {
		t.Errorf("got %v", a.All)
	}
}

func TestSubscriptedSubscriptConservative(t *testing.T) {
	// K[E[k]] = ... : the address is not analyzable, so the write
	// conservatively conflicts with itself across iterations.
	p := ir.NewProgram("t")
	kv := p.AddVar("K", 16)
	ev := p.AddVar("E", 16)
	a, r := loopRegion(t, p, 1, 8, 1,
		&ir.Assign{LHS: ir.Wr(kv, ir.Rd(ev, ir.Idx("k"))), RHS: ir.C(1)})
	var wr *ir.Ref
	for _, ref := range r.Refs {
		if ref.Var == kv {
			wr = ref
		}
	}
	if !has(a, wr, wr, Output, true) {
		t.Errorf("missing conservative output self-dep: %v", a.All)
	}
}

func TestNoDepsBetweenExclusiveBranches(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	c := p.AddVar("c")
	segs := []*ir.Segment{
		{ID: 0, Name: "head", Succs: []int{1, 2}, Branch: ir.Rd(c)},
		{ID: 1, Name: "left", Succs: []int{3}, Body: []ir.Stmt{&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(1)}}},
		{ID: 2, Name: "right", Succs: []int{3}, Body: []ir.Stmt{&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(2)}}},
		{ID: 3, Name: "join", Body: []ir.Stmt{&ir.Assign{LHS: ir.Wr(c), RHS: ir.Rd(x)}}},
	}
	r := &ir.Region{Name: "r", Kind: ir.CFGRegion, Segments: segs}
	r.Finalize()
	p.AddRegion(r)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	a := Analyze(r, cfg.FromRegion(r))
	var w1, w2, rd *ir.Ref
	for _, ref := range r.Refs {
		if ref.Var == x {
			switch {
			case ref.SegID == 1:
				w1 = ref
			case ref.SegID == 2:
				w2 = ref
			case ref.Access == ir.Read:
				rd = ref
			}
		}
	}
	if has(a, w1, w2, Output, true) || has(a, w2, w1, Output, true) {
		t.Errorf("exclusive branches must not depend on each other: %v", a.All)
	}
	if !has(a, w1, rd, Flow, true) || !has(a, w2, rd, Flow, true) {
		t.Errorf("join read depends on both writes: %v", a.All)
	}
}

func TestCFGDirectionByAge(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	segs := []*ir.Segment{
		{ID: 0, Name: "a", Succs: []int{1}, Body: []ir.Stmt{&ir.Assign{LHS: ir.Wr(p.AddVar("y")), RHS: ir.Rd(x)}}},
		{ID: 1, Name: "b", Body: []ir.Stmt{&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(1)}}},
	}
	r := &ir.Region{Name: "r", Kind: ir.CFGRegion, Segments: segs}
	r.Finalize()
	p.AddRegion(r)
	a := Analyze(r, cfg.FromRegion(r))
	var rd, wr *ir.Ref
	for _, ref := range r.Refs {
		if ref.Var == x {
			if ref.Access == ir.Read {
				rd = ref
			} else {
				wr = ref
			}
		}
	}
	if !has(a, rd, wr, Anti, true) {
		t.Errorf("missing anti old->young: %v", a.All)
	}
	if has(a, wr, rd, Flow, true) {
		t.Errorf("flow young->old is impossible in a DAG: %v", a.All)
	}
}

func TestSingleIterationRegionHasNoCrossDeps(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	a, _ := loopRegion(t, p, 1, 1, 1,
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(x), ir.C(1))})
	if a.HasCrossDeps() {
		t.Errorf("one iteration cannot have cross-segment deps: %v", a.All)
	}
}

func TestSourcesAndSinksIndex(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	a, r := loopRegion(t, p, 1, 4, 1,
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(x), ir.C(1))})
	rd, wr := r.Refs[0], r.Refs[1]
	if len(a.SinksAt(wr)) == 0 || len(a.SourcesAt(wr)) == 0 {
		t.Error("write should be both source and sink here")
	}
	if !a.IsSink(rd) {
		t.Error("read is a flow sink")
	}
}

func TestMayZero(t *testing.T) {
	b := map[string][2]int64{"x": {0, 10}, "y": {0, 10}}
	// x - y == 0 is satisfiable.
	if !mayZero(linExpr{terms: map[string]int64{"x": 1, "y": -1}}, b) {
		t.Error("x-y=0 should be satisfiable")
	}
	// x - y + 100 is not (interval).
	if mayZero(linExpr{c: 100, terms: map[string]int64{"x": 1, "y": -1}}, b) {
		t.Error("interval test failed")
	}
	// 2x - 2y + 1 = 0 is not (gcd).
	if mayZero(linExpr{c: 1, terms: map[string]int64{"x": 2, "y": -2}}, b) {
		t.Error("gcd test failed")
	}
	// Constant zero.
	if !mayZero(linExpr{}, b) {
		t.Error("0=0 should be satisfiable")
	}
	if mayZero(linExpr{c: 5}, b) {
		t.Error("5=0 should be refuted")
	}
}

func TestKindString(t *testing.T) {
	if Flow.String() != "flow" || Anti.String() != "anti" || Output.String() != "output" {
		t.Error("Kind.String broken")
	}
}

func TestDepString(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	_, r := loopRegion(t, p, 1, 4, 1,
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(x), ir.C(1))})
	d := Dep{Src: r.Refs[0], Dst: r.Refs[1], Kind: Anti, Cross: true}
	if s := d.String(); s == "" {
		t.Error("empty Dep string")
	}
}
