package deps

// This file is the collaborative dependence-analysis ensemble (SCAF-style,
// ROADMAP direction 2): an ordered, cheap-first chain of member analyses
// cooperating behind the one query interface Analyze already exposes.
//
// Member roles and ordering:
//
//   - Range (sound, confidence 1): a value-range/interval pre-filter that
//     bounds every loop and region-index variable independently per side
//     (an interval "box") and applies the Banerjee interval + GCD tests to
//     the resulting single equation per subscript dimension. A refutation
//     at the box level implies a refutation of every exact per-level test
//     (the box relaxation's value set is a superset of each level
//     equation's, its interval hull is exact for independent boxes, and
//     its coefficient gcd divides every level gcd with congruent
//     constants), so the member may short-circuit the whole pair with zero
//     effect on the emitted dependence set. TestRangeMemberConsistency and
//     fuzz stage 9 enforce that claim.
//   - Exact (sound, confidence 1): the existing Banerjee+GCD per-level
//     solver in deps.go. It decides which dependences exist; nothing
//     below it may remove an edge.
//   - MustWriteFirst (speculative): lifts interprocedural must-write-first
//     facts from the callgraph summaries. When every segment of the
//     region re-initializes a scalar through an unconditional leading
//     call before anything else can read it, a cross-segment flow into a
//     read of that scalar almost surely never materializes; the member
//     marks such edges speculatively refuted at a fixed confidence.
//   - Profile (speculative): "observed never-aliases" facts from a
//     sequential replay (engine.CollectProfile): two references whose
//     observed address ranges are disjoint speculatively refute their
//     dependence with a rule-of-succession confidence n/(n+1) derived
//     from the replay counts.
//
// Speculative members never remove edges: the exact solver's dependence
// set is emitted unchanged (so every sound consumer — Algorithm 2, RFW,
// the lemma oracles — is untouched), and speculative answers ride along
// as Dep.SpecConf/Dep.SpecBy, the per-edge probability that the
// dependence does not actually occur. internal/idem folds those
// confidences into a per-reference P(idempotent); the engine's
// Config.SpecThreshold speculation policy acts on that probability.

import (
	"sync/atomic"

	"refidem/internal/callgraph"
	"refidem/internal/cfg"
	"refidem/internal/ir"
)

// Member identifies one analysis in the ensemble chain, in query order.
type Member uint8

const (
	// MemberRange is the interval/value-range pre-filter (sound).
	MemberRange Member = iota
	// MemberExact is the per-level Banerjee+GCD solver (sound).
	MemberExact
	// MemberMustWriteFirst is the callgraph must-write-first lift
	// (speculative).
	MemberMustWriteFirst
	// MemberProfile is the replay-derived observed-never-aliases member
	// (speculative).
	MemberProfile
	// NumMembers is the member count (for dense per-member arrays).
	NumMembers
)

var memberNames = [NumMembers]string{"range", "exact", "mwf", "profile"}

func (m Member) String() string {
	if int(m) < len(memberNames) {
		return memberNames[m]
	}
	return "member?"
}

// MemberNames lists the ensemble members in chain order, for renderers
// that iterate the dense per-member counters.
func MemberNames() [NumMembers]string { return memberNames }

// Verdict is one member's answer to a dependence query.
type Verdict uint8

const (
	// MayDepend: the member cannot refute the dependence (or abstains).
	MayDepend Verdict = iota
	// NoDep: the member refutes the dependence.
	NoDep
)

func (v Verdict) String() string {
	if v == NoDep {
		return "no-dep"
	}
	return "may-depend"
}

// Answer is one member's reply: the verdict, the member's confidence in
// it (1 for the sound members; < 1 marks the answer speculative), and
// which member produced it.
type Answer struct {
	Verdict Verdict
	Conf    float64
	Member  Member
}

// mwfConf is the MustWriteFirst member's fixed confidence. It is < 1 by
// design: the fact is lifted across a call boundary under a syntactic
// leading-call condition, so the member answers speculatively and only
// the P(idempotent) overlay — never the base labels — sees it.
const mwfConf = 0.98

// maxSpecConf caps every speculative confidence strictly below 1, keeping
// "SpecConf == 1" impossible and "P(idempotent) == 1" an exact-analysis
// certificate.
const maxSpecConf = 0.999999

// RefObs is one reference's observed address statistics from a
// sequential replay: the inclusive [Min, Max] range of flat addresses it
// touched and how many dynamic instances were observed.
type RefObs struct {
	Min, Max int64
	Count    int64
}

// Profile holds replay observations, keyed by region and dense reference
// ID (engine.CollectProfile builds one). A nil entry or a zero Count
// makes the profile member abstain for that reference.
type Profile struct {
	Obs map[*ir.Region][]RefObs
}

// Ensemble configures which members join the chain. The zero value (and a
// nil *Ensemble) is the exact solver alone — bit-identical to Analyze.
type Ensemble struct {
	// Range enables the sound interval pre-filter member.
	Range bool
	// MustWriteFirst enables the callgraph lift member; it needs
	// Summaries.
	MustWriteFirst bool
	// Summaries is the program's callgraph analysis, consulted by the
	// MustWriteFirst member.
	Summaries *callgraph.Analysis
	// Profile, when non-nil, enables the observed-never-aliases member.
	Profile *Profile
	// BreakCrossReads deliberately corrupts the ensemble for the fuzz
	// wall's self-test: every dependence into every read that sinks a
	// cross-iteration dependence is marked speculatively refuted at high
	// confidence regardless of the facts, so an engine speculating on
	// P(idempotent) bypasses genuine flow dependences and must be caught
	// by the live-out oracles.
	BreakCrossReads bool
}

// enabled reports whether any member beyond the exact solver is on.
func (e *Ensemble) enabled() bool {
	return e != nil && (e.Range || e.MustWriteFirst || e.Profile != nil || e.BreakCrossReads)
}

// MemberStats is a snapshot of the package-wide ensemble counters:
// Queries counts chain consultations per member, Hits counts produced
// answers (a refutation for Range, a resolved pair for Exact, a
// speculative refutation for MustWriteFirst/Profile), ShortCircuits
// counts answers that ended the chain early, skipping every more
// expensive member. The service renders these on /metricz.
type MemberStats struct {
	Queries       [NumMembers]int64
	Hits          [NumMembers]int64
	ShortCircuits [NumMembers]int64
}

var (
	memberQueries       [NumMembers]atomic.Int64
	memberHits          [NumMembers]atomic.Int64
	memberShortCircuits [NumMembers]atomic.Int64
)

// MemberStatsNow snapshots the package-wide ensemble counters.
func MemberStatsNow() MemberStats {
	var s MemberStats
	for m := 0; m < int(NumMembers); m++ {
		s.Queries[m] = memberQueries[m].Load()
		s.Hits[m] = memberHits[m].Load()
		s.ShortCircuits[m] = memberShortCircuits[m].Load()
	}
	return s
}

// ResetMemberStats zeroes the package-wide ensemble counters (tests).
func ResetMemberStats() {
	for m := 0; m < int(NumMembers); m++ {
		memberQueries[m].Store(0)
		memberHits[m].Store(0)
		memberShortCircuits[m].Store(0)
	}
}

// flushStats adds the analysis-local tallies to the package counters in
// one batch, keeping atomics off the per-pair path.
func (a *Analysis) flushStats() {
	for m := 0; m < int(NumMembers); m++ {
		if a.stats.Queries[m] != 0 {
			memberQueries[m].Add(a.stats.Queries[m])
		}
		if a.stats.Hits[m] != 0 {
			memberHits[m].Add(a.stats.Hits[m])
		}
		if a.stats.ShortCircuits[m] != 0 {
			memberShortCircuits[m].Add(a.stats.ShortCircuits[m])
		}
	}
}

// AnalyzeWith computes the may-dependences of the region through the
// member chain configured by ens. The emitted dependence set is always
// exactly Analyze's (speculative members only annotate edges with
// SpecConf/SpecBy); a nil or zero ens degenerates to Analyze.
func AnalyzeWith(r *ir.Region, g *cfg.Graph, ens *Ensemble) *Analysis {
	if !ens.enabled() {
		return Analyze(r, g)
	}
	a := &Analysis{Region: r, ens: ens}
	if ens.MustWriteFirst && ens.Summaries != nil {
		a.mwfVars = mustWriteFirstVars(r, ens.Summaries)
	}
	if ens.Profile != nil {
		a.obs = ens.Profile.Obs[r]
	}
	a.analyze(g)
	if ens.BreakCrossReads {
		a.breakCrossReads()
	}
	a.flushStats()
	a.ens, a.mwfVars, a.obs = nil, nil, nil
	return a
}

// rangeRefutesPair is the Range member: one interval-box equation per
// affine subscript dimension, every region-index and loop variable bound
// independently per side. A refutation here implies every exact per-level
// test of the pair refutes (see the file comment), so the caller may skip
// them all.
//
// Soundness of the short-circuit demands care with bounds: the exact
// cross-iteration tests over-approximate the sink side (the distance
// variable d can push the sink's loop value up to Step·(trips-1) past the
// last real iteration), so each side is bounded by the *extended* value
// set {From + Step·k : k in [0, 2·(trips-1)]} — a superset of every
// per-level equation's value set. The interval over that box is then a
// true hull of each exact test's diff range, and the box gcd divides
// every exact test's gcd with congruent constants, so a box refutation
// transfers to all of them.
func (a *Analysis) rangeRefutesPair(r1, r2 *ir.Ref, idx *ir.RegionIndex) bool {
	if idx.SlowAff[r1.ID] || idx.SlowAff[r2.ID] {
		return false // no dense form: abstain, let the exact solver decide
	}
	r := a.Region
	var rlo, rhi int64
	if r.Kind == ir.LoopRegion {
		rlo, rhi = extRange(int64(r.From), int64(r.Step), int64(r.InstanceCount()))
	}
	sa, da := idx.Aff[r1.ID], idx.Aff[r2.ID]
	for dim := 0; dim < len(r1.Subs); dim++ {
		sf, df := sa[dim], da[dim]
		if !sf.OK || !df.OK {
			continue // non-affine: cannot refute this dimension
		}
		var eq acc
		eq.c = sf.Const - df.Const
		if r.Kind == ir.LoopRegion {
			eq.add(sf.Reg, rlo, rhi)
			eq.add(-df.Reg, rlo, rhi)
		}
		addSideLoopsExt(&eq, r1, sf, 1)
		addSideLoopsExt(&eq, r2, df, -1)
		if !eq.mayZero() {
			return true
		}
	}
	return false
}

// extRange returns the interval hull of {from + step·k : k in
// [0, 2·(trips-1)]} — the loop's value range widened by the distance-
// variable slop the exact tests admit.
func extRange(from, step, trips int64) (int64, int64) {
	if trips < 1 {
		return from, from
	}
	last := from + 2*(trips-1)*step
	if from > last {
		return last, from
	}
	return from, last
}

// addSideLoopsExt introduces the reference's own enclosing loops as
// independent solver variables over their extended value ranges.
func addSideLoopsExt(eq *acc, ref *ir.Ref, f ir.AffForm, sign int64) {
	for k := 0; k < len(ref.Ctx.Loops) && k < ir.MaxAffDepth; k++ {
		l := ref.Ctx.Loops[k]
		lo, hi := extRange(int64(l.From), int64(l.Step), int64(l.Trips()))
		eq.add(sign*f.Depth[k], lo, hi)
	}
}

// mustWriteFirstVars collects the scalars that every segment of the
// region re-initializes through an unconditional leading call: the first
// top-level statement of each segment body must be a resolved call whose
// callee summary proves MustWriteFirst, and no call argument may read the
// variable. Loop regions have one segment, so the leading call of the
// body covers every iteration.
func mustWriteFirstVars(r *ir.Region, cg *callgraph.Analysis) map[*ir.Var]bool {
	var out map[*ir.Var]bool
	for i, seg := range r.Segments {
		segVars := map[*ir.Var]bool{}
		if len(seg.Body) > 0 {
			if c, ok := seg.Body[0].(*ir.Call); ok && c.Proc != nil {
				if sum := cg.Summary(c.Proc); sum != nil {
					for v := range sum.MustWriteFirst {
						segVars[v] = true
					}
					for _, arg := range c.Args {
						for _, ref := range ir.ExprRefs(arg) {
							delete(segVars, ref.Var)
						}
					}
				}
			}
		}
		if i == 0 {
			out = segVars
			continue
		}
		for v := range out {
			if !segVars[v] {
				delete(out, v)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// annotate runs the speculative members on one freshly emitted edge,
// recording the strongest confidence that the dependence does not occur.
// It never removes the edge.
func (a *Analysis) annotate(d *Dep) {
	if a.mwfVars != nil && d.Cross && d.Kind == Flow &&
		d.Dst.Access == ir.Read && len(d.Dst.Subs) == 0 {
		a.stats.Queries[MemberMustWriteFirst]++
		if a.mwfVars[d.Dst.Var] {
			a.stats.Hits[MemberMustWriteFirst]++
			d.SpecConf, d.SpecBy = mwfConf, MemberMustWriteFirst
		}
	}
	if a.obs != nil && int(d.Src.ID) < len(a.obs) && int(d.Dst.ID) < len(a.obs) {
		so, do := a.obs[d.Src.ID], a.obs[d.Dst.ID]
		if so.Count > 0 && do.Count > 0 {
			a.stats.Queries[MemberProfile]++
			if so.Max < do.Min || do.Max < so.Min {
				n := so.Count
				if do.Count < n {
					n = do.Count
				}
				conf := float64(n) / float64(n+1)
				if conf > maxSpecConf {
					conf = maxSpecConf
				}
				if conf > d.SpecConf {
					a.stats.Hits[MemberProfile]++
					d.SpecConf, d.SpecBy = conf, MemberProfile
				}
			}
		}
	}
}

// breakFirstCrossSink is the deliberate fault injection behind the fuzz
// driver's -break-ensemble self-test: it picks the first cross-segment
// sink (preferring a read — reads carry no RFW side condition, so the
// forced probability actually promotes) and marks every dependence into
// it speculatively refuted at high confidence. Honest members never
// produce these answers; an engine speculating on them must be caught by
// the live-out oracles.
func (a *Analysis) breakCrossReads() {
	victims := make(map[*ir.Ref]bool)
	for _, d := range a.All {
		if d.Cross && d.Dst.Access == ir.Read {
			victims[d.Dst] = true
		}
	}
	if len(victims) == 0 {
		return
	}
	for i := range a.All {
		if victims[a.All[i].Dst] {
			a.All[i].SpecConf, a.All[i].SpecBy = 0.99, MemberProfile
		}
	}
	// The CSR views copy Dep values; rebuild them so SinksAt/SourcesAt
	// see the forced annotations.
	a.buildIndexes()
}
