package deps

// Differential test keeping the dense alias solver (deps.go) and the
// map-based fallback solver (slow.go) in lockstep: for every reference
// pair of a population of generated programs, each level test must agree
// between the two implementations.

import (
	"testing"

	"refidem/internal/cfg"
	"refidem/internal/gen"
	"refidem/internal/ir"
)

func TestDenseSolverMatchesSlow(t *testing.T) {
	for _, prof := range gen.Profiles() {
		for seed := int64(1); seed <= 25; seed++ {
			sc := gen.Generate(seed, prof.Cfg)
			p := sc.Program
			if err := p.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", prof.Name, seed, err)
			}
			for _, r := range p.Regions {
				comparePairTests(t, r, prof.Name, seed)
			}
		}
	}
}

func comparePairTests(t *testing.T, r *ir.Region, prof string, seed int64) {
	t.Helper()
	g := cfg.FromRegion(r)
	idx := r.DenseIndex()
	refs := r.Refs
	for i := 0; i < len(refs); i++ {
		for j := i; j < len(refs); j++ {
			r1, r2 := refs[i], refs[j]
			if r1.Var != r2.Var {
				continue
			}
			if r1.Access == ir.Read && r2.Access == ir.Read {
				continue
			}
			if i == j && r1.Access == ir.Read {
				continue
			}
			check := func(what string, dense, slow bool) {
				if dense != slow {
					t.Fatalf("%s seed %d region %s: %s on %v / %v: dense=%v slow=%v",
						prof, seed, r.Name, what, r1, r2, dense, slow)
				}
			}
			if r.Kind == ir.CFGRegion {
				if r1.SegID != r2.SegID {
					if !g.OnCommonPath(r1.SegID, r2.SegID) {
						continue
					}
					src, dst := r1, r2
					if g.Age(r2.SegID) < g.Age(r1.SegID) {
						src, dst = r2, r1
					}
					check("independent", mayAliasIndependent(r, src, dst, idx), slowIndependent(r, src, dst))
					continue
				}
			} else if r.InstanceCount() >= 2 {
				check("region-level fwd", mayAliasRegionLevel(r, r1, r2, idx), slowRegionLevel(r, r1, r2))
				if r1 != r2 {
					check("region-level rev", mayAliasRegionLevel(r, r2, r1, idx), slowRegionLevel(r, r2, r1))
				}
			}
			if r1.SegID != r2.SegID {
				continue
			}
			nCommon := commonLen(r1, r2)
			common := r1.Ctx.Loops[:nCommon]
			for level := 0; level < nCommon; level++ {
				check("inner fwd", mayAliasInnerLevel(r, r1, r2, nCommon, level, true, idx),
					slowInnerLevel(r, r1, r2, common, level))
				if r1 != r2 {
					check("inner rev", mayAliasInnerLevel(r, r1, r2, nCommon, level, false, idx),
						slowInnerLevel(r, r2, r1, common, level))
				}
			}
			if r1 != r2 {
				check("same-iter", mayAliasSameIteration(r, r1, r2, nCommon, idx),
					slowSameIteration(r, r1, r2, common))
			}
		}
	}
}
