package deps

import (
	"testing"

	"refidem/internal/callgraph"
	"refidem/internal/cfg"
	"refidem/internal/gen"
	"refidem/internal/ir"
)

// stripSpec clears the speculative annotations of a dependence list so it
// can be compared against the exact solver's output field by field.
func stripSpec(all []Dep) []Dep {
	out := make([]Dep, len(all))
	for i, d := range all {
		d.SpecConf, d.SpecBy = 0, 0
		out[i] = d
	}
	return out
}

func sameDeps(a, b []Dep) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAnalyzeWithNilMatchesAnalyze pins the degenerate cases: a nil and a
// zero-value ensemble must produce the exact solver's result unchanged.
func TestAnalyzeWithNilMatchesAnalyze(t *testing.T) {
	p := ir.NewProgram("t")
	av := p.AddVar("a", 16)
	a, r := loopRegion(t, p, 1, 8, 1,
		&ir.Assign{LHS: ir.Wr(av, ir.Idx("k")), RHS: ir.Rd(av, ir.SubE(ir.Idx("k"), ir.C(1)))})
	g := cfg.FromRegion(r)
	for _, ens := range []*Ensemble{nil, {}} {
		got := AnalyzeWith(r, g, ens)
		if !sameDeps(got.All, a.All) {
			t.Errorf("ens=%+v: got %v, want %v", ens, got.All, a.All)
		}
	}
}

// TestRangeMemberShortCircuit: constant-disjoint subscript ranges are
// refuted by the range member before the exact solver runs, and the
// short-circuit is counted.
func TestRangeMemberShortCircuit(t *testing.T) {
	ResetMemberStats()
	p := ir.NewProgram("t")
	av := p.AddVar("a", 256)
	r := &ir.Region{
		Name: "r", Kind: ir.LoopRegion, Index: "k", From: 1, To: 4, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(av, ir.Idx("k")), RHS: ir.Rd(av, ir.AddE(ir.Idx("k"), ir.C(100)))},
		}}},
	}
	r.Finalize()
	p.AddRegion(r)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	g := cfg.FromRegion(r)
	exact := Analyze(r, g)
	got := AnalyzeWith(r, g, &Ensemble{Range: true})
	if len(got.All) != 0 || !sameDeps(got.All, exact.All) {
		t.Fatalf("disjoint ranges: ensemble %v, exact %v, want both empty", got.All, exact.All)
	}
	// Pairs consulted: (read, write) refuted by range; (write, write)
	// self-pair falls through to the exact solver.
	s := MemberStatsNow()
	if s.Queries[MemberRange] != 2 || s.Hits[MemberRange] != 1 || s.ShortCircuits[MemberRange] != 1 {
		t.Errorf("range stats = %+v, want 2 queries / 1 hit / 1 short-circuit", s)
	}
	if s.Queries[MemberExact] != 1 || s.Hits[MemberExact] != 1 {
		t.Errorf("exact stats = %+v, want 1 query / 1 hit", s)
	}
}

// TestRangeMemberGCD: interleaved strides (a[2k] vs a[2k+1]) are refuted
// by the box GCD test even though their intervals overlap.
func TestRangeMemberGCD(t *testing.T) {
	p := ir.NewProgram("t")
	av := p.AddVar("a", 64)
	a, r := loopRegion(t, p, 0, 7, 1,
		&ir.Assign{
			LHS: ir.Wr(av, ir.MulE(ir.C(2), ir.Idx("k"))),
			RHS: ir.Rd(av, ir.AddE(ir.MulE(ir.C(2), ir.Idx("k")), ir.C(1))),
		})
	if len(a.All) != 0 {
		t.Fatalf("exact solver should refute interleaved strides, got %v", a.All)
	}
	ResetMemberStats()
	got := AnalyzeWith(r, cfg.FromRegion(r), &Ensemble{Range: true})
	if len(got.All) != 0 {
		t.Fatalf("range member should refute interleaved strides, got %v", got.All)
	}
	if s := MemberStatsNow(); s.ShortCircuits[MemberRange] == 0 {
		t.Errorf("expected a range short-circuit, stats %+v", s)
	}
}

// TestRangeMemberSlopBoundary pins the subtle bound: the exact
// cross-iteration test over-approximates the sink's loop value past the
// last iteration (here a[j+3] vs a[2j] "alias" only at the phantom
// iteration j=2 of a two-iteration loop), so the exact solver emits a
// dependence no real execution exhibits. The range member must widen its
// box the same way — refuting here would be cheaper, but it would change
// the emitted dependence set, and the short-circuit contract is exact
// equality.
func TestRangeMemberSlopBoundary(t *testing.T) {
	p := ir.NewProgram("t")
	av := p.AddVar("a", 8)
	a, r := loopRegion(t, p, 1, 1, 1,
		&ir.For{Index: "j", From: 0, To: 1, Step: 1, Body: []ir.Stmt{
			&ir.Assign{
				LHS: ir.Wr(av, ir.AddE(ir.Idx("j"), ir.C(3))),
				RHS: ir.AddE(ir.Rd(av, ir.MulE(ir.C(2), ir.Idx("j"))), ir.C(1)),
			},
		}})
	if len(a.All) != 1 || a.All[0].Kind != Flow || a.All[0].Cross {
		t.Fatalf("expected exactly the conservative intra flow dep, got %v", a.All)
	}
	got := AnalyzeWith(r, cfg.FromRegion(r), &Ensemble{Range: true})
	if !sameDeps(got.All, a.All) {
		t.Fatalf("range member diverged from exact on the slop boundary: got %v, want %v", got.All, a.All)
	}
}

// TestRangeMemberConsistencyRandom is the short-circuit soundness sweep:
// across generator profiles and seeds, the range-enabled ensemble must
// emit byte-identical dependence sets to the exact solver on every
// region.
func TestRangeMemberConsistencyRandom(t *testing.T) {
	seeds := int64(25)
	if testing.Short() {
		seeds = 5
	}
	for _, prof := range gen.Profiles() {
		for seed := int64(0); seed < seeds; seed++ {
			sc := gen.Generate(seed*31+7, prof.Cfg)
			if err := sc.Program.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", prof.Name, seed, err)
			}
			for _, r := range sc.Program.Regions {
				g := cfg.FromRegion(r)
				exact := Analyze(r, g)
				got := AnalyzeWith(r, g, &Ensemble{Range: true})
				if !sameDeps(got.All, exact.All) {
					t.Fatalf("%s seed %d region %s: ensemble %v != exact %v",
						prof.Name, seed, r.Name, got.All, exact.All)
				}
			}
		}
	}
}

// TestMustWriteFirstLift: a segment whose unconditional leading call
// provably re-initializes a scalar gets its cross flow edges into reads
// of that scalar annotated as speculatively refuted — and nothing else
// changes.
func TestMustWriteFirstLift(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	p.AddProc("init", nil, []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(0)},
	})
	r := &ir.Region{
		Name: "r", Kind: ir.LoopRegion, Index: "k", From: 1, To: 4, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Call{Callee: "init"},
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(x), ir.C(1))},
		}}},
	}
	p.AddRegion(r)
	if err := p.ResolveCalls(); err != nil {
		t.Fatal(err)
	}
	r.Finalize()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	g := cfg.FromRegion(r)
	exact := Analyze(r, g)
	got := AnalyzeWith(r, g, &Ensemble{MustWriteFirst: true, Summaries: callgraph.Analyze(p)})
	if !sameDeps(stripSpec(got.All), exact.All) {
		t.Fatalf("MWF changed the dep set: got %v, want %v", got.All, exact.All)
	}
	annotated, crossFlows := 0, 0
	for _, d := range got.All {
		isCrossFlowRead := d.Cross && d.Kind == Flow && d.Dst.Access == ir.Read
		if isCrossFlowRead {
			crossFlows++
		}
		if d.SpecConf > 0 {
			annotated++
			if !isCrossFlowRead || d.SpecBy != MemberMustWriteFirst || d.SpecConf != mwfConf {
				t.Errorf("unexpected annotation on %v (conf %v by %v)", d, d.SpecConf, d.SpecBy)
			}
		}
	}
	if crossFlows == 0 || annotated != crossFlows {
		t.Errorf("annotated %d of %d cross flow edges into reads of x", annotated, crossFlows)
	}
}

// TestMustWriteFirstArgReadExcluded: a variable read by the leading
// call's arguments must not be lifted even when the callee would
// re-initialize it.
func TestMustWriteFirstArgReadExcluded(t *testing.T) {
	build := func(argOf func(x *ir.Var) ir.Expr) (*ir.Region, *callgraph.Analysis) {
		p := ir.NewProgram("t")
		x := p.AddVar("x")
		p.AddProc("init", []string{"q"}, []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.Idx("q")},
		})
		r := &ir.Region{
			Name: "r", Kind: ir.LoopRegion, Index: "k", From: 1, To: 4, Step: 1,
			Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
				&ir.Call{Callee: "init", Args: []ir.Expr{argOf(x)}},
				&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(x), ir.C(1))},
			}}},
		}
		p.AddRegion(r)
		if err := p.ResolveCalls(); err != nil {
			t.Fatal(err)
		}
		r.Finalize()
		return r, callgraph.Analyze(p)
	}
	// A constant argument: x is re-initialized before any read, lifted.
	r, cg := build(func(*ir.Var) ir.Expr { return ir.C(7) })
	if mwf := mustWriteFirstVars(r, cg); len(mwf) != 1 {
		t.Fatalf("constant arg: lifted vars = %v, want exactly x", mwf)
	}
	// An argument loading x: the call reads x's incoming value before the
	// re-initialization, so the lift would be wrong and must be excluded.
	r, cg = build(func(x *ir.Var) ir.Expr { return ir.Rd(x) })
	if mwf := mustWriteFirstVars(r, cg); mwf != nil {
		t.Errorf("x is loaded by the call arguments and must not be lifted, got %v", mwf)
	}
}

// TestProfileMemberAnnotates: two indirect references with disjoint
// observed address ranges get their dependences marked speculatively
// refuted at the rule-of-succession confidence; overlapping observations
// (the write against itself) stay unannotated.
func TestProfileMemberAnnotates(t *testing.T) {
	p := ir.NewProgram("t")
	av := p.AddVar("a", 64)
	ia := p.AddVar("ia", 8)
	ib := p.AddVar("ib", 8)
	a, r := loopRegion(t, p, 0, 3, 1,
		&ir.Assign{
			LHS: ir.Wr(av, ir.Rd(ia, ir.Idx("k"))),
			RHS: ir.AddE(ir.Rd(av, ir.Rd(ib, ir.Idx("k"))), ir.C(1)),
		})
	var aRead, aWrite *ir.Ref
	for _, ref := range r.Refs {
		if ref.Var != av {
			continue
		}
		if ref.Access == ir.Read {
			aRead = ref
		} else {
			aWrite = ref
		}
	}
	if aRead == nil || aWrite == nil {
		t.Fatal("refs not found")
	}
	obs := make([]RefObs, len(r.Refs))
	obs[aWrite.ID] = RefObs{Min: 0, Max: 3, Count: 4}
	obs[aRead.ID] = RefObs{Min: 10, Max: 13, Count: 4}
	prof := &Profile{Obs: map[*ir.Region][]RefObs{r: obs}}
	got := AnalyzeWith(r, cfg.FromRegion(r), &Ensemble{Profile: prof})
	if !sameDeps(stripSpec(got.All), a.All) {
		t.Fatalf("profile member changed the dep set: got %v, want %v", got.All, a.All)
	}
	wantConf := 4.0 / 5.0
	for _, d := range got.All {
		betweenPair := (d.Src == aRead && d.Dst == aWrite) || (d.Src == aWrite && d.Dst == aRead)
		switch {
		case betweenPair && (d.SpecConf != wantConf || d.SpecBy != MemberProfile):
			t.Errorf("edge %v: conf %v by %v, want %v by profile", d, d.SpecConf, d.SpecBy, wantConf)
		case !betweenPair && d.SpecConf != 0:
			t.Errorf("edge %v: unexpected annotation (conf %v)", d, d.SpecConf)
		}
	}
}

// TestBreakCrossReads: the fault-injection mode forces high-
// confidence refutations onto every edge into one cross-segment read
// sink, and the rebuilt CSR views expose them.
func TestBreakCrossReads(t *testing.T) {
	p := ir.NewProgram("t")
	av := p.AddVar("a", 64)
	ia := p.AddVar("ia", 8)
	_, r := loopRegion(t, p, 0, 3, 1,
		&ir.Assign{
			LHS: ir.Wr(av, ir.Rd(ia, ir.Idx("k"))),
			RHS: ir.AddE(ir.Rd(av, ir.Rd(ia, ir.AddE(ir.Idx("k"), ir.C(1)))), ir.C(1)),
		})
	got := AnalyzeWith(r, cfg.FromRegion(r), &Ensemble{BreakCrossReads: true})
	var victim *ir.Ref
	for _, d := range got.All {
		if d.Cross && d.Dst.Access == ir.Read {
			victim = d.Dst
			break
		}
	}
	if victim == nil {
		t.Fatal("no cross read sink in test region")
	}
	for _, d := range got.All {
		if d.Dst == victim && (d.SpecConf != 0.99 || d.SpecBy != MemberProfile) {
			t.Errorf("edge into victim not forced: %v (conf %v)", d, d.SpecConf)
		}
		if d.Dst != victim && d.SpecConf != 0 {
			t.Errorf("edge %v annotated but not into victim", d)
		}
	}
	forced := 0
	for _, d := range got.SinksAt(victim) {
		if d.SpecConf != 0.99 {
			t.Errorf("SinksAt view stale after break: %v", d)
		}
		forced++
	}
	if forced == 0 {
		t.Error("victim has no sink-view edges")
	}
}
