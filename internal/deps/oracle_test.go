package deps

// Brute-force soundness oracle: for randomly generated loop regions with
// purely affine subscripts and no control flow, enumerate the concrete
// execution trace (every reference instance with its evaluated address),
// derive the ground-truth dependences, and check that the may-dependence
// analysis reports a superset, with the right directions and
// cross/intra-segment classification.

import (
	"math/rand"
	"testing"

	"refidem/internal/cfg"
	"refidem/internal/ir"
)

// traceEvent is one executed reference instance.
type traceEvent struct {
	ref  *ir.Ref
	addr int64
	iter int // region iteration number
	seq  int // global execution order
}

// enumerate walks the region body for every iteration, evaluating affine
// subscripts (the generator guarantees there are no loads in subscripts
// and no conditionals).
func enumerate(t *testing.T, r *ir.Region) []traceEvent {
	t.Helper()
	var out []traceEvent
	seq := 0
	evalAffine := func(e ir.Expr, env map[string]int64) int64 {
		a, ok := ir.AffineOf(e)
		if !ok {
			t.Fatalf("oracle requires affine subscripts, got %s", e)
		}
		v := a.Const
		for name, c := range a.Coeff {
			val, ok := env[name]
			if !ok {
				t.Fatalf("unbound index %q", name)
			}
			v += c * val
		}
		return v
	}
	var walk func(stmts []ir.Stmt, env map[string]int64, iter int)
	emit := func(ref *ir.Ref, env map[string]int64, iter int) {
		var addr int64
		if len(ref.Subs) > 0 {
			// Single-dimension arrays in the oracle generator.
			addr = evalAffine(ref.Subs[0], env)
		}
		out = append(out, traceEvent{ref: ref, addr: addr, iter: iter, seq: seq})
		seq++
	}
	walk = func(stmts []ir.Stmt, env map[string]int64, iter int) {
		for _, st := range stmts {
			switch s := st.(type) {
			case *ir.Assign:
				for _, ref := range ir.ExprRefs(s.RHS) {
					emit(ref, env, iter)
				}
				emit(s.LHS, env, iter)
			case *ir.For:
				trips := ir.LoopInfo{From: s.From, To: s.To, Step: s.Step}.Trips()
				for i := 0; i < trips; i++ {
					env[s.Index] = int64(s.From + i*s.Step)
					walk(s.Body, env, iter)
				}
				delete(env, s.Index)
			default:
				t.Fatalf("oracle does not support %T", st)
			}
		}
	}
	for i, idxVal := range r.IndexValues() {
		env := map[string]int64{r.Index: idxVal}
		walk(r.Segments[0].Body, env, i)
	}
	return out
}

// groundTruth derives the set of dependences realized by the trace.
type gtDep struct {
	src, dst *ir.Ref
	cross    bool
}

func groundTruth(events []traceEvent) map[gtDep]bool {
	out := make(map[gtDep]bool)
	// Index events by variable.
	byVar := make(map[*ir.Var][]traceEvent)
	for _, e := range events {
		byVar[e.ref.Var] = append(byVar[e.ref.Var], e)
	}
	for _, evs := range byVar {
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				a, b := evs[i], evs[j] // a executes before b
				if a.addr != b.addr {
					continue
				}
				if a.ref.Access == ir.Read && b.ref.Access == ir.Read {
					continue
				}
				out[gtDep{src: a.ref, dst: b.ref, cross: a.iter != b.iter}] = true
			}
		}
	}
	return out
}

// genOracleRegion builds a random straight-line loop region with affine
// subscripts only.
func genOracleRegion(rng *rand.Rand) (*ir.Program, *ir.Region) {
	p := ir.NewProgram("oracle")
	iters := 3 + rng.Intn(6)
	arrays := make([]*ir.Var, 1+rng.Intn(3))
	for i := range arrays {
		arrays[i] = p.AddVar("a"+string(rune('0'+i)), iters*3+8)
	}
	scalars := make([]*ir.Var, 1+rng.Intn(2))
	for i := range scalars {
		scalars[i] = p.AddVar("s" + string(rune('0'+i)))
	}
	affine := func(indices []string, dim int) ir.Expr {
		if len(indices) > 0 && rng.Intn(3) != 0 {
			idx := indices[rng.Intn(len(indices))]
			scale := 1 + rng.Intn(2)
			off := rng.Intn(5)
			_ = dim
			return ir.AddE(ir.MulE(ir.C(int64(scale)), ir.Idx(idx)), ir.C(int64(off)))
		}
		return ir.C(int64(rng.Intn(dim)))
	}
	ref := func(indices []string, write bool) *ir.Ref {
		if rng.Intn(4) == 0 {
			v := scalars[rng.Intn(len(scalars))]
			if write {
				return ir.Wr(v)
			}
			r := ir.Rd(v).(*ir.Load)
			return r.Ref
		}
		v := arrays[rng.Intn(len(arrays))]
		if write {
			return ir.Wr(v, affine(indices, v.Dims[0]))
		}
		r := ir.Rd(v, affine(indices, v.Dims[0])).(*ir.Load)
		return r.Ref
	}
	var stmts func(n int, indices []string, depth int) []ir.Stmt
	stmts = func(n int, indices []string, depth int) []ir.Stmt {
		var out []ir.Stmt
		for i := 0; i < n; i++ {
			if depth < 2 && rng.Intn(4) == 0 {
				idx := "j" + string(rune('0'+depth))
				out = append(out, &ir.For{
					Index: idx, From: 0, To: rng.Intn(3) + 1, Step: 1,
					Body: stmts(1+rng.Intn(2), append(append([]string{}, indices...), idx), depth+1),
				})
				continue
			}
			rd := ref(indices, false)
			out = append(out, &ir.Assign{
				LHS: ref(indices, true),
				RHS: ir.AddE(&ir.Load{Ref: rd}, ir.C(1)),
			})
		}
		return out
	}
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: iters - 1, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: stmts(1+rng.Intn(4), []string{"k"}, 0)}}}
	r.Finalize()
	p.AddRegion(r)
	return p, r
}

// TestAnalysisIsSoundAgainstBruteForce: every ground-truth dependence
// (same address, at least one write, execution ordered) must appear in
// the analysis with matching direction and cross/intra classification.
func TestAnalysisIsSoundAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, r := genOracleRegion(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a := Analyze(r, cfg.FromRegion(r))
		have := make(map[gtDep]bool, len(a.All))
		for _, d := range a.All {
			have[gtDep{src: d.Src, dst: d.Dst, cross: d.Cross}] = true
		}
		for gt := range groundTruth(enumerate(t, r)) {
			if !have[gt] {
				t.Errorf("seed %d: missed dependence %v -> %v (cross=%v)\n%s",
					seed, gt.src, gt.dst, gt.cross, p.Format())
			}
		}
	}
}

// TestAnalysisPrecisionOnAffine: on purely affine programs the analysis
// should not be wildly imprecise — measure the false-positive rate across
// the corpus and require that at least 60% of reported dependences are
// realized by some execution. (This is a precision canary, not a
// soundness requirement; conservative extras are legal.)
func TestAnalysisPrecisionOnAffine(t *testing.T) {
	var reported, realized int
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, r := genOracleRegion(rng)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		a := Analyze(r, cfg.FromRegion(r))
		gt := groundTruth(enumerate(t, r))
		for _, d := range a.All {
			reported++
			if gt[gtDep{src: d.Src, dst: d.Dst, cross: d.Cross}] {
				realized++
			}
		}
	}
	if reported == 0 {
		t.Fatal("corpus produced no dependences")
	}
	ratio := float64(realized) / float64(reported)
	t.Logf("precision: %d/%d = %.1f%% of reported dependences are realized", realized, reported, ratio*100)
	if ratio < 0.6 {
		t.Errorf("precision %.2f below 0.6 — the interval/GCD tests look broken", ratio)
	}
}
