package deps

// This file holds the map-based linear alias tests the dense solver in
// deps.go falls back to when a reference's subscripts have no dense
// affine form (an index name that is not an enclosing loop — only
// possible in unvalidated programs — or a nest deeper than
// ir.MaxAffDepth). The two solvers are semantically identical on shared
// inputs; TestDenseSolverMatchesSlow keeps them in lockstep.

import (
	"fmt"

	"refidem/internal/ir"
)

// linExpr is c + sum(terms[v] * v) over solver variables.
type linExpr struct {
	c     int64
	terms map[string]int64
}

func (e linExpr) add(o linExpr, sign int64) linExpr {
	out := linExpr{c: e.c + sign*o.c, terms: map[string]int64{}}
	for k, v := range e.terms {
		out.terms[k] += v
	}
	for k, v := range o.terms {
		out.terms[k] += sign * v
	}
	for k, v := range out.terms {
		if v == 0 {
			delete(out.terms, k)
		}
	}
	return out
}

// env maps the program's index-variable names to solver linExprs, plus
// solver-variable bounds.
type env struct {
	subst  map[string]linExpr
	bounds map[string][2]int64
}

func newEnv() *env {
	return &env{subst: map[string]linExpr{}, bounds: map[string][2]int64{}}
}

// freeVar introduces a solver variable with the given inclusive bounds.
func (e *env) freeVar(name string, lo, hi int64) linExpr {
	e.bounds[name] = [2]int64{lo, hi}
	return linExpr{terms: map[string]int64{name: 1}}
}

// bind maps a program index name to a solver expression.
func (e *env) bind(idx string, le linExpr) { e.subst[idx] = le }

// lower converts an affine subscript into a solver linExpr under the
// substitution. Unbound names (should not happen for validated programs)
// become fresh unbounded-ish variables, keeping the test conservative.
func (e *env) lower(a ir.Affine, side string) linExpr {
	out := linExpr{c: a.Const, terms: map[string]int64{}}
	for idx, coeff := range a.Coeff {
		le, ok := e.subst[idx]
		if !ok {
			le = e.freeVar("unbound_"+side+"_"+idx, -1<<30, 1<<30)
			e.bind(idx, le)
		}
		out.c += coeff * le.c
		for v, c := range le.terms {
			out.terms[v] += coeff * c
		}
	}
	for k, v := range out.terms {
		if v == 0 {
			delete(out.terms, k)
		}
	}
	return out
}

// mayZero applies the interval and GCD tests; it returns false only when
// the equation expr == 0 provably has no solution within bounds.
func mayZero(e linExpr, bounds map[string][2]int64) bool {
	lo, hi := e.c, e.c
	for v, c := range e.terms {
		b := bounds[v]
		if c > 0 {
			lo += c * b[0]
			hi += c * b[1]
		} else {
			lo += c * b[1]
			hi += c * b[0]
		}
	}
	if lo > 0 || hi < 0 {
		return false
	}
	var g int64
	for _, c := range e.terms {
		g = gcd(g, abs64(c))
	}
	if g != 0 && e.c%g != 0 {
		return false
	}
	return true
}

// bindSideLoops introduces independent solver variables for every loop
// enclosing the reference, skipping the first `skip` loops (already bound
// as shared/level variables).
func bindSideLoops(e *env, ref *ir.Ref, side string, skip int) {
	for i := skip; i < len(ref.Ctx.Loops); i++ {
		l := ref.Ctx.Loops[i]
		lo, hi := loopRange(l)
		e.bind(l.Index, e.freeVar(fmt.Sprintf("%s_%d_%s", side, i, l.Index), lo, hi))
	}
}

// testDims checks every affine dimension pair for simultaneous equality.
// srcEnv and dstEnv carry the per-side substitutions; shared bounds are
// merged. Non-affine dimensions cannot refute.
func testDims(src, dst *ir.Ref, srcEnv, dstEnv *env) bool {
	for dim := 0; dim < len(src.Subs); dim++ {
		sa, sOK := ir.AffineOf(src.Subs[dim])
		da, dOK := ir.AffineOf(dst.Subs[dim])
		if !sOK || !dOK {
			continue // non-affine: cannot refute this dimension
		}
		diff := srcEnv.lower(sa, "s").add(dstEnv.lower(da, "d"), -1)
		// lower may add fresh unbound vars; gather bounds afterwards.
		bounds := map[string][2]int64{}
		for k, v := range srcEnv.bounds {
			bounds[k] = v
		}
		for k, v := range dstEnv.bounds {
			bounds[k] = v
		}
		if !mayZero(diff, bounds) {
			return false
		}
	}
	return true
}

// slowRegionLevel is the map-based form of mayAliasRegionLevel.
func slowRegionLevel(r *ir.Region, src, dst *ir.Ref) bool {
	n := int64(r.InstanceCount())
	if n < 2 {
		return false
	}
	srcEnv, dstEnv := newEnv(), newEnv()
	ts := srcEnv.freeVar("t_s", 0, n-2)
	d := srcEnv.freeVar("t_shift", 1, n-1)
	// index_src = From + Step*t_s ; index_dst = From + Step*(t_s + d)
	idxSrc := linExpr{c: int64(r.From), terms: map[string]int64{}}
	for v, c := range ts.terms {
		idxSrc.terms[v] = c * int64(r.Step)
	}
	idxDst := linExpr{c: int64(r.From), terms: map[string]int64{}}
	for v, c := range ts.terms {
		idxDst.terms[v] += c * int64(r.Step)
	}
	for v, c := range d.terms {
		idxDst.terms[v] += c * int64(r.Step)
	}
	srcEnv.bind(r.Index, idxSrc)
	// The dst env shares the solver variables of ts and d.
	for k, v := range srcEnv.bounds {
		dstEnv.bounds[k] = v
	}
	dstEnv.bind(r.Index, idxDst)
	bindSideLoops(srcEnv, src, "s", 0)
	bindSideLoops(dstEnv, dst, "d", 0)
	return testDims(src, dst, srcEnv, dstEnv)
}

// slowInnerLevel is the map-based form of mayAliasInnerLevel; src and dst
// are already ordered (dst iterates later in the level loop).
func slowInnerLevel(r *ir.Region, src, dst *ir.Ref, common []ir.LoopInfo, level int) bool {
	srcEnv, dstEnv := newEnv(), newEnv()
	bindRegionIndexShared(r, srcEnv, dstEnv)
	// Outer common loops: shared variables.
	for i := 0; i < level; i++ {
		l := common[i]
		lo, hi := loopRange(l)
		v := srcEnv.freeVar(fmt.Sprintf("c_%d_%s", i, l.Index), lo, hi)
		srcEnv.bind(l.Index, v)
		dstEnv.bounds[fmt.Sprintf("c_%d_%s", i, l.Index)] = [2]int64{lo, hi}
		dstEnv.bind(l.Index, v)
	}
	// Level loop: dst iterates later: value_dst = value_src + Step*d, d>=1.
	l := common[level]
	lo, hi := loopRange(l)
	trips := int64(l.Trips())
	if trips < 2 {
		return false
	}
	base := srcEnv.freeVar(fmt.Sprintf("L%d_%s", level, l.Index), lo, hi)
	shift := srcEnv.freeVar(fmt.Sprintf("L%d_d", level), 1, trips-1)
	srcEnv.bind(l.Index, base)
	for k, v := range srcEnv.bounds {
		dstEnv.bounds[k] = v
	}
	later := linExpr{c: 0, terms: map[string]int64{}}
	for v, c := range base.terms {
		later.terms[v] += c
	}
	for v, c := range shift.terms {
		later.terms[v] += c * int64(l.Step)
	}
	dstEnv.bind(l.Index, later)
	// Remaining loops per side are independent.
	bindSideLoops(srcEnv, src, "s", level+1)
	bindSideLoops(dstEnv, dst, "d", level+1)
	return testDims(src, dst, srcEnv, dstEnv)
}

// slowSameIteration is the map-based form of mayAliasSameIteration.
func slowSameIteration(r *ir.Region, r1, r2 *ir.Ref, common []ir.LoopInfo) bool {
	srcEnv, dstEnv := newEnv(), newEnv()
	bindRegionIndexShared(r, srcEnv, dstEnv)
	for i, l := range common {
		lo, hi := loopRange(l)
		name := fmt.Sprintf("c_%d_%s", i, l.Index)
		v := srcEnv.freeVar(name, lo, hi)
		srcEnv.bind(l.Index, v)
		dstEnv.bounds[name] = [2]int64{lo, hi}
		dstEnv.bind(l.Index, v)
	}
	bindSideLoops(srcEnv, r1, "s", len(common))
	bindSideLoops(dstEnv, r2, "d", len(common))
	return testDims(r1, r2, srcEnv, dstEnv)
}

// slowIndependent is the map-based form of mayAliasIndependent.
func slowIndependent(r *ir.Region, src, dst *ir.Ref) bool {
	srcEnv, dstEnv := newEnv(), newEnv()
	bindSideLoops(srcEnv, src, "s", 0)
	bindSideLoops(dstEnv, dst, "d", 0)
	return testDims(src, dst, srcEnv, dstEnv)
}

// bindRegionIndexShared binds the region index of a loop region to one
// shared solver variable on both sides (intra-segment tests happen within
// a single iteration of the region loop).
func bindRegionIndexShared(r *ir.Region, srcEnv, dstEnv *env) {
	if r.Kind != ir.LoopRegion {
		return
	}
	n := int64(r.InstanceCount())
	t := srcEnv.freeVar("t_shared", 0, n-1)
	idx := linExpr{c: int64(r.From), terms: map[string]int64{}}
	for v, c := range t.terms {
		idx.terms[v] = c * int64(r.Step)
	}
	srcEnv.bind(r.Index, idx)
	dstEnv.bounds["t_shared"] = srcEnv.bounds["t_shared"]
	dstEnv.bind(r.Index, idx)
}
