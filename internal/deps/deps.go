// Package deps computes the reference-by-reference may-dependences the
// paper's analyses consume (§4.2.1: "Data dependences are may-dependences
// ... analyzed for the region on a reference by reference basis").
//
// Dependences are directed by execution order. For loop regions the
// direction is established per dependence level: region level (cross-
// segment, i.e. cross-iteration of the region loop), each common inner
// loop level, and the innermost same-iteration level (textual order). The
// tests are the classic conservative combination of a dimension-wise
// interval (Banerjee) test and a GCD test on affine subscripts; any
// non-affine subscript dimension (e.g. the paper's subscripted subscript
// K(E)) is assumed to may-alias.
package deps

import (
	"fmt"
	"sort"

	"refidem/internal/cfg"
	"refidem/internal/ir"
)

// Kind classifies a dependence by the access types of source and sink.
type Kind uint8

const (
	// Flow is write→read (true dependence).
	Flow Kind = iota
	// Anti is read→write.
	Anti
	// Output is write→write.
	Output
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	default:
		return "output"
	}
}

// Dep is one directed may-dependence: Src executes before Dst in some
// sequential execution and they may access the same storage location.
type Dep struct {
	Src  *ir.Ref
	Dst  *ir.Ref
	Kind Kind
	// Cross reports a cross-segment dependence (between different segment
	// instances); intra-segment dependences have Cross == false.
	Cross bool
}

func (d Dep) String() string {
	scope := "intra"
	if d.Cross {
		scope = "cross"
	}
	return fmt.Sprintf("%s %s: %s -> %s", scope, d.Kind, d.Src, d.Dst)
}

// Analysis holds the dependences of one region, indexed by endpoint.
type Analysis struct {
	Region *ir.Region
	All    []Dep

	sinks   map[*ir.Ref][]Dep
	sources map[*ir.Ref][]Dep
}

// SinksAt returns the dependences whose sink is ref.
func (a *Analysis) SinksAt(ref *ir.Ref) []Dep { return a.sinks[ref] }

// SourcesAt returns the dependences whose source is ref.
func (a *Analysis) SourcesAt(ref *ir.Ref) []Dep { return a.sources[ref] }

// IsSink reports whether ref is the sink of any dependence.
func (a *Analysis) IsSink(ref *ir.Ref) bool { return len(a.sinks[ref]) > 0 }

// IsCrossSink reports whether ref is the sink of a cross-segment
// dependence (the references Lemma 3 forces to stay speculative).
func (a *Analysis) IsCrossSink(ref *ir.Ref) bool {
	for _, d := range a.sinks[ref] {
		if d.Cross {
			return true
		}
	}
	return false
}

// HasCrossDeps reports whether the region carries any cross-segment data
// dependence, one half of the fully-independent test of Lemma 7.
func (a *Analysis) HasCrossDeps() bool {
	for _, d := range a.All {
		if d.Cross {
			return true
		}
	}
	return false
}

// Conservative returns a copy of the analysis in which every dependence
// is treated as bidirectional (both endpoints become sinks). This models
// a compiler without execution-order direction information — useful as an
// ablation: labeling under it is strictly more conservative, so fewer
// references become idempotent.
func Conservative(a *Analysis) *Analysis {
	out := &Analysis{
		Region:  a.Region,
		sinks:   make(map[*ir.Ref][]Dep),
		sources: make(map[*ir.Ref][]Dep),
	}
	for _, d := range a.All {
		out.emit(d.Src, d.Dst, d.Cross)
		out.emit(d.Dst, d.Src, d.Cross)
	}
	return out
}

// kindOf classifies a source/sink access pair.
func kindOf(src, dst *ir.Ref) Kind {
	switch {
	case src.Access == ir.Write && dst.Access == ir.Read:
		return Flow
	case src.Access == ir.Read && dst.Access == ir.Write:
		return Anti
	default:
		return Output
	}
}

// Analyze computes the may-dependences of the region. The graph must be
// cfg.FromRegion(r) (passed in so callers can share it).
func Analyze(r *ir.Region, g *cfg.Graph) *Analysis {
	a := &Analysis{
		Region:  r,
		sinks:   make(map[*ir.Ref][]Dep),
		sources: make(map[*ir.Ref][]Dep),
	}
	refs := r.Refs
	for i := 0; i < len(refs); i++ {
		for j := i; j < len(refs); j++ {
			r1, r2 := refs[i], refs[j]
			if r1.Var != r2.Var {
				continue
			}
			if r1.Access == ir.Read && r2.Access == ir.Read {
				continue
			}
			if i == j && r1.Access == ir.Read {
				continue
			}
			a.pair(r1, r2, g)
		}
	}
	// Deterministic order for printing and tests.
	sort.SliceStable(a.All, func(i, j int) bool {
		x, y := a.All[i], a.All[j]
		if x.Src.ID != y.Src.ID {
			return x.Src.ID < y.Src.ID
		}
		if x.Dst.ID != y.Dst.ID {
			return x.Dst.ID < y.Dst.ID
		}
		return x.Kind < y.Kind
	})
	return a
}

func (a *Analysis) emit(src, dst *ir.Ref, cross bool) {
	d := Dep{Src: src, Dst: dst, Kind: kindOf(src, dst), Cross: cross}
	for _, e := range a.All {
		if e == d {
			return
		}
	}
	a.All = append(a.All, d)
	a.sinks[dst] = append(a.sinks[dst], d)
	a.sources[src] = append(a.sources[src], d)
}

// pair tests one unordered reference pair in every direction and level.
func (a *Analysis) pair(r1, r2 *ir.Ref, g *cfg.Graph) {
	r := a.Region
	if r.Kind == ir.CFGRegion {
		if r1.SegID != r2.SegID {
			if !g.OnCommonPath(r1.SegID, r2.SegID) {
				return
			}
			src, dst := r1, r2
			if g.Age(r2.SegID) < g.Age(r1.SegID) {
				src, dst = r2, r1
			}
			if mayAliasIndependent(r, src, dst) {
				a.emit(src, dst, true)
			}
			return
		}
		a.intraSegment(r1, r2)
		return
	}

	// Loop region. Region level first: iterations are the segments.
	n := r.InstanceCount()
	if n >= 2 {
		if mayAliasRegionLevel(r, r1, r2) {
			a.emit(r1, r2, true)
		}
		if r1 != r2 {
			if mayAliasRegionLevel(r, r2, r1) {
				a.emit(r2, r1, true)
			}
		}
	}
	if r1 != r2 || r1.Access == ir.Write {
		a.intraSegment(r1, r2)
	}
}

// intraSegment emits same-instance dependences between r1 and r2 at each
// common loop level and at the same-iteration level.
func (a *Analysis) intraSegment(r1, r2 *ir.Ref) {
	if r1.SegID != r2.SegID {
		return
	}
	common := commonLoops(r1, r2)
	// Cross-iteration of each common inner loop.
	for level := range common {
		if mayAliasInnerLevel(a.Region, r1, r2, common, level, true) {
			a.emit(r1, r2, false)
		}
		if r1 != r2 && mayAliasInnerLevel(a.Region, r1, r2, common, level, false) {
			a.emit(r2, r1, false)
		}
	}
	// Same iteration of all common loops: textual order directs the edge.
	if r1 == r2 {
		return
	}
	if mayAliasSameIteration(a.Region, r1, r2, common) {
		src, dst := r1, r2
		if r2.Pos < r1.Pos {
			src, dst = r2, r1
		}
		a.emit(src, dst, false)
	}
}

// commonLoops returns the shared enclosing-loop prefix of two references.
func commonLoops(r1, r2 *ir.Ref) []ir.LoopInfo {
	var out []ir.LoopInfo
	for i := 0; i < len(r1.Ctx.Loops) && i < len(r2.Ctx.Loops); i++ {
		if r1.Ctx.Loops[i].ID != r2.Ctx.Loops[i].ID {
			break
		}
		out = append(out, r1.Ctx.Loops[i])
	}
	return out
}

// --- linear alias testing ---------------------------------------------

// linExpr is c + sum(terms[v] * v) over solver variables.
type linExpr struct {
	c     int64
	terms map[string]int64
}

func (e linExpr) add(o linExpr, sign int64) linExpr {
	out := linExpr{c: e.c + sign*o.c, terms: map[string]int64{}}
	for k, v := range e.terms {
		out.terms[k] += v
	}
	for k, v := range o.terms {
		out.terms[k] += sign * v
	}
	for k, v := range out.terms {
		if v == 0 {
			delete(out.terms, k)
		}
	}
	return out
}

// env maps the program's index-variable names to solver linExprs, plus
// solver-variable bounds.
type env struct {
	subst  map[string]linExpr
	bounds map[string][2]int64
}

func newEnv() *env {
	return &env{subst: map[string]linExpr{}, bounds: map[string][2]int64{}}
}

// freeVar introduces a solver variable with the given inclusive bounds.
func (e *env) freeVar(name string, lo, hi int64) linExpr {
	e.bounds[name] = [2]int64{lo, hi}
	return linExpr{terms: map[string]int64{name: 1}}
}

// bind maps a program index name to a solver expression.
func (e *env) bind(idx string, le linExpr) { e.subst[idx] = le }

// lower converts an affine subscript into a solver linExpr under the
// substitution. Unbound names (should not happen for validated programs)
// become fresh unbounded-ish variables, keeping the test conservative.
func (e *env) lower(a ir.Affine, side string) linExpr {
	out := linExpr{c: a.Const, terms: map[string]int64{}}
	for idx, coeff := range a.Coeff {
		le, ok := e.subst[idx]
		if !ok {
			le = e.freeVar("unbound_"+side+"_"+idx, -1<<30, 1<<30)
			e.bind(idx, le)
		}
		out.c += coeff * le.c
		for v, c := range le.terms {
			out.terms[v] += coeff * c
		}
	}
	for k, v := range out.terms {
		if v == 0 {
			delete(out.terms, k)
		}
	}
	return out
}

// mayZero applies the interval and GCD tests; it returns false only when
// the equation expr == 0 provably has no solution within bounds.
func mayZero(e linExpr, bounds map[string][2]int64) bool {
	lo, hi := e.c, e.c
	for v, c := range e.terms {
		b := bounds[v]
		if c > 0 {
			lo += c * b[0]
			hi += c * b[1]
		} else {
			lo += c * b[1]
			hi += c * b[0]
		}
	}
	if lo > 0 || hi < 0 {
		return false
	}
	var g int64
	for _, c := range e.terms {
		g = gcd(g, abs64(c))
	}
	if g != 0 && e.c%g != 0 {
		return false
	}
	return true
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// loopRange returns the min and max values the loop variable takes.
func loopRange(l ir.LoopInfo) (int64, int64) {
	trips := l.Trips()
	if trips == 0 {
		return int64(l.From), int64(l.From)
	}
	last := int64(l.From) + int64(trips-1)*int64(l.Step)
	lo, hi := int64(l.From), last
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

// bindSideLoops introduces independent solver variables for every loop
// enclosing the reference, skipping the first `skip` loops (already bound
// as shared/level variables).
func bindSideLoops(e *env, ref *ir.Ref, side string, skip int) {
	for i := skip; i < len(ref.Ctx.Loops); i++ {
		l := ref.Ctx.Loops[i]
		lo, hi := loopRange(l)
		e.bind(l.Index, e.freeVar(fmt.Sprintf("%s_%d_%s", side, i, l.Index), lo, hi))
	}
}

// testDims checks every affine dimension pair for simultaneous equality.
// srcEnv and dstEnv carry the per-side substitutions; shared bounds are
// merged. Non-affine dimensions cannot refute.
func testDims(src, dst *ir.Ref, srcEnv, dstEnv *env) bool {
	for dim := 0; dim < len(src.Subs); dim++ {
		sa, sOK := ir.AffineOf(src.Subs[dim])
		da, dOK := ir.AffineOf(dst.Subs[dim])
		if !sOK || !dOK {
			continue // non-affine: cannot refute this dimension
		}
		diff := srcEnv.lower(sa, "s").add(dstEnv.lower(da, "d"), -1)
		// lower may add fresh unbound vars; gather bounds afterwards.
		bounds := map[string][2]int64{}
		for k, v := range srcEnv.bounds {
			bounds[k] = v
		}
		for k, v := range dstEnv.bounds {
			bounds[k] = v
		}
		if !mayZero(diff, bounds) {
			return false
		}
	}
	return true
}

// mayAliasRegionLevel tests whether src (in an older iteration) and dst
// (in a strictly younger iteration) of a loop region may access the same
// location. Iterations are numbered t = 0..n-1 in execution order, with
// index value From + Step*t; the younger side is shifted by d >= 1.
func mayAliasRegionLevel(r *ir.Region, src, dst *ir.Ref) bool {
	n := int64(r.InstanceCount())
	if n < 2 {
		return false
	}
	srcEnv, dstEnv := newEnv(), newEnv()
	ts := srcEnv.freeVar("t_s", 0, n-2)
	d := srcEnv.freeVar("t_shift", 1, n-1)
	// index_src = From + Step*t_s ; index_dst = From + Step*(t_s + d)
	idxSrc := linExpr{c: int64(r.From), terms: map[string]int64{}}
	for v, c := range ts.terms {
		idxSrc.terms[v] = c * int64(r.Step)
	}
	idxDst := linExpr{c: int64(r.From), terms: map[string]int64{}}
	for v, c := range ts.terms {
		idxDst.terms[v] += c * int64(r.Step)
	}
	for v, c := range d.terms {
		idxDst.terms[v] += c * int64(r.Step)
	}
	srcEnv.bind(r.Index, idxSrc)
	// The dst env shares the solver variables of ts and d.
	for k, v := range srcEnv.bounds {
		dstEnv.bounds[k] = v
	}
	dstEnv.bind(r.Index, idxDst)
	bindSideLoops(srcEnv, src, "s", 0)
	bindSideLoops(dstEnv, dst, "d", 0)
	return testDims(src, dst, srcEnv, dstEnv)
}

// mayAliasInnerLevel tests a cross-iteration dependence of the common
// inner loop at the given level, with all outer common loops at equal
// iterations. srcEarlier selects the direction: when true, r1 is the
// source executing in an earlier iteration of the level loop.
func mayAliasInnerLevel(r *ir.Region, r1, r2 *ir.Ref, common []ir.LoopInfo, level int, srcEarlier bool) bool {
	src, dst := r1, r2
	if !srcEarlier {
		src, dst = r2, r1
	}
	srcEnv, dstEnv := newEnv(), newEnv()
	bindRegionIndexShared(r, srcEnv, dstEnv)
	// Outer common loops: shared variables.
	for i := 0; i < level; i++ {
		l := common[i]
		lo, hi := loopRange(l)
		v := srcEnv.freeVar(fmt.Sprintf("c_%d_%s", i, l.Index), lo, hi)
		srcEnv.bind(l.Index, v)
		dstEnv.bounds[fmt.Sprintf("c_%d_%s", i, l.Index)] = [2]int64{lo, hi}
		dstEnv.bind(l.Index, v)
	}
	// Level loop: dst iterates later: value_dst = value_src + Step*d, d>=1.
	l := common[level]
	lo, hi := loopRange(l)
	trips := int64(l.Trips())
	if trips < 2 {
		return false
	}
	base := srcEnv.freeVar(fmt.Sprintf("L%d_%s", level, l.Index), lo, hi)
	shift := srcEnv.freeVar(fmt.Sprintf("L%d_d", level), 1, trips-1)
	srcEnv.bind(l.Index, base)
	for k, v := range srcEnv.bounds {
		dstEnv.bounds[k] = v
	}
	later := linExpr{c: 0, terms: map[string]int64{}}
	for v, c := range base.terms {
		later.terms[v] += c
	}
	for v, c := range shift.terms {
		later.terms[v] += c * int64(l.Step)
	}
	dstEnv.bind(l.Index, later)
	// Remaining loops per side are independent.
	bindSideLoops(srcEnv, src, "s", level+1)
	bindSideLoops(dstEnv, dst, "d", level+1)
	return testDims(src, dst, srcEnv, dstEnv)
}

// mayAliasSameIteration tests equality with all common loops at the same
// iteration and remaining loops independent.
func mayAliasSameIteration(r *ir.Region, r1, r2 *ir.Ref, common []ir.LoopInfo) bool {
	srcEnv, dstEnv := newEnv(), newEnv()
	bindRegionIndexShared(r, srcEnv, dstEnv)
	for i, l := range common {
		lo, hi := loopRange(l)
		name := fmt.Sprintf("c_%d_%s", i, l.Index)
		v := srcEnv.freeVar(name, lo, hi)
		srcEnv.bind(l.Index, v)
		dstEnv.bounds[name] = [2]int64{lo, hi}
		dstEnv.bind(l.Index, v)
	}
	bindSideLoops(srcEnv, r1, "s", len(common))
	bindSideLoops(dstEnv, r2, "d", len(common))
	return testDims(r1, r2, srcEnv, dstEnv)
}

// mayAliasIndependent tests equality with every loop variable independent
// on each side (used for cross-segment pairs in CFG regions).
func mayAliasIndependent(r *ir.Region, src, dst *ir.Ref) bool {
	srcEnv, dstEnv := newEnv(), newEnv()
	bindSideLoops(srcEnv, src, "s", 0)
	bindSideLoops(dstEnv, dst, "d", 0)
	return testDims(src, dst, srcEnv, dstEnv)
}

// bindRegionIndexShared binds the region index of a loop region to one
// shared solver variable on both sides (intra-segment tests happen within
// a single iteration of the region loop).
func bindRegionIndexShared(r *ir.Region, srcEnv, dstEnv *env) {
	if r.Kind != ir.LoopRegion {
		return
	}
	n := int64(r.InstanceCount())
	t := srcEnv.freeVar("t_shared", 0, n-1)
	idx := linExpr{c: int64(r.From), terms: map[string]int64{}}
	for v, c := range t.terms {
		idx.terms[v] = c * int64(r.Step)
	}
	srcEnv.bind(r.Index, idx)
	dstEnv.bounds["t_shared"] = srcEnv.bounds["t_shared"]
	dstEnv.bind(r.Index, idx)
}
