// Package deps computes the reference-by-reference may-dependences the
// paper's analyses consume (§4.2.1: "Data dependences are may-dependences
// ... analyzed for the region on a reference by reference basis").
//
// Dependences are directed by execution order. For loop regions the
// direction is established per dependence level: region level (cross-
// segment, i.e. cross-iteration of the region loop), each common inner
// loop level, and the innermost same-iteration level (textual order). The
// tests are the classic conservative combination of a dimension-wise
// interval (Banerjee) test and a GCD test on affine subscripts; any
// non-affine subscript dimension (e.g. the paper's subscripted subscript
// K(E)) is assumed to may-alias.
//
// The pair tests run on the dense affine forms precomputed in the region
// index (ir.RegionIndex): each test accumulates the interval and GCD
// refutations directly from positional loop coefficients, with no
// per-pair allocation. References whose subscripts the dense forms cannot
// represent (only possible in unvalidated programs or nests deeper than
// ir.MaxAffDepth) fall back to the equivalent map-based solver in
// slow.go.
package deps

import (
	"fmt"
	"sort"
	"sync"

	"refidem/internal/cfg"
	"refidem/internal/ir"
)

// Kind classifies a dependence by the access types of source and sink.
type Kind uint8

const (
	// Flow is write→read (true dependence).
	Flow Kind = iota
	// Anti is read→write.
	Anti
	// Output is write→write.
	Output
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	default:
		return "output"
	}
}

// Dep is one directed may-dependence: Src executes before Dst in some
// sequential execution and they may access the same storage location.
type Dep struct {
	Src  *ir.Ref
	Dst  *ir.Ref
	Kind Kind
	// Cross reports a cross-segment dependence (between different segment
	// instances); intra-segment dependences have Cross == false.
	Cross bool
	// SpecConf, when > 0, is a speculative ensemble member's confidence
	// that this dependence does not actually occur (it stays strictly
	// below 1: confidence 1 would be a soundness claim only the exact
	// members may make, and they refute by omitting the edge). The edge
	// itself is still emitted, so purely sound consumers are unaffected;
	// SpecBy names the member that produced the annotation.
	SpecConf float64
	SpecBy   Member
}

func (d Dep) String() string {
	scope := "intra"
	if d.Cross {
		scope = "cross"
	}
	return fmt.Sprintf("%s %s: %s -> %s", scope, d.Kind, d.Src, d.Dst)
}

// Analysis holds the dependences of one region. Endpoint indexes are
// stored as CSR groups over reference IDs, so SinksAt/SourcesAt return
// zero-allocation views.
type Analysis struct {
	Region *ir.Region
	All    []Dep

	bySink  []Dep // grouped by Dst.ID
	sinkOff []int32
	bySrc   []Dep // grouped by Src.ID
	srcOff  []int32
	cross   ir.Bits // ref is the sink of a cross-segment dependence

	// emitted dedups directions within the pair currently being tested:
	// [0] src==r1, [1] src==r2; second index is Cross.
	emitted [2][2]bool
	pairR1  *ir.Ref

	// Ensemble state (nil/zero outside AnalyzeWith; see ensemble.go).
	ens     *Ensemble
	stats   MemberStats
	mwfVars map[*ir.Var]bool
	obs     []RefObs
}

// SinksAt returns the dependences whose sink is ref. The slice is a view
// into the analysis; do not mutate.
func (a *Analysis) SinksAt(ref *ir.Ref) []Dep {
	return a.bySink[a.sinkOff[ref.ID]:a.sinkOff[ref.ID+1]]
}

// SourcesAt returns the dependences whose source is ref. The slice is a
// view into the analysis; do not mutate.
func (a *Analysis) SourcesAt(ref *ir.Ref) []Dep {
	return a.bySrc[a.srcOff[ref.ID]:a.srcOff[ref.ID+1]]
}

// IsSink reports whether ref is the sink of any dependence.
func (a *Analysis) IsSink(ref *ir.Ref) bool {
	return a.sinkOff[ref.ID] != a.sinkOff[ref.ID+1]
}

// IsCrossSink reports whether ref is the sink of a cross-segment
// dependence (the references Lemma 3 forces to stay speculative).
func (a *Analysis) IsCrossSink(ref *ir.Ref) bool {
	return a.cross.Get(int32(ref.ID))
}

// HasCrossDeps reports whether the region carries any cross-segment data
// dependence, one half of the fully-independent test of Lemma 7.
func (a *Analysis) HasCrossDeps() bool {
	for _, d := range a.All {
		if d.Cross {
			return true
		}
	}
	return false
}

// Conservative returns a copy of the analysis in which every dependence
// is treated as bidirectional (both endpoints become sinks). This models
// a compiler without execution-order direction information — useful as an
// ablation: labeling under it is strictly more conservative, so fewer
// references become idempotent.
func Conservative(a *Analysis) *Analysis {
	out := &Analysis{Region: a.Region}
	for _, d := range a.All {
		out.emitDedupScan(d.Src, d.Dst, d.Cross)
		out.emitDedupScan(d.Dst, d.Src, d.Cross)
	}
	out.buildIndexes()
	return out
}

// emitDedupScan appends a dependence unless an identical one exists; the
// linear scan is fine for the ablation-only Conservative path.
func (a *Analysis) emitDedupScan(src, dst *ir.Ref, cross bool) {
	d := Dep{Src: src, Dst: dst, Kind: kindOf(src, dst), Cross: cross}
	for _, e := range a.All {
		if e == d {
			return
		}
	}
	a.All = append(a.All, d)
}

// kindOf classifies a source/sink access pair.
func kindOf(src, dst *ir.Ref) Kind {
	switch {
	case src.Access == ir.Write && dst.Access == ir.Read:
		return Flow
	case src.Access == ir.Read && dst.Access == ir.Write:
		return Anti
	default:
		return Output
	}
}

var cursorPool = sync.Pool{New: func() any { return &[]int32{} }}

// Analyze computes the may-dependences of the region. The graph must be
// cfg.FromRegion(r) (passed in so callers can share it). It is the
// exact-solver-only degenerate case of AnalyzeWith (ensemble.go).
func Analyze(r *ir.Region, g *cfg.Graph) *Analysis {
	a := &Analysis{Region: r}
	a.analyze(g)
	return a
}

// analyze runs the pair loop, orders the result deterministically, and
// builds the CSR endpoint views.
func (a *Analysis) analyze(g *cfg.Graph) {
	r := a.Region
	idx := r.DenseIndex()
	refs := r.Refs
	for i := 0; i < len(refs); i++ {
		for j := i; j < len(refs); j++ {
			r1, r2 := refs[i], refs[j]
			if r1.Var != r2.Var {
				continue
			}
			if r1.Access == ir.Read && r2.Access == ir.Read {
				continue
			}
			if i == j && r1.Access == ir.Read {
				continue
			}
			a.pair(r1, r2, g, idx)
		}
	}
	// Deterministic order for printing and tests.
	sort.SliceStable(a.All, func(i, j int) bool {
		x, y := a.All[i], a.All[j]
		if x.Src.ID != y.Src.ID {
			return x.Src.ID < y.Src.ID
		}
		if x.Dst.ID != y.Dst.ID {
			return x.Dst.ID < y.Dst.ID
		}
		return x.Kind < y.Kind
	})
	a.buildIndexes()
}

// buildIndexes fills the CSR endpoint groups and the cross-sink bitset
// from All.
func (a *Analysis) buildIndexes() {
	n := len(a.Region.Refs)
	a.sinkOff = make([]int32, n+1)
	a.srcOff = make([]int32, n+1)
	a.cross = ir.MakeBits(n)
	for _, d := range a.All {
		a.sinkOff[d.Dst.ID+1]++
		a.srcOff[d.Src.ID+1]++
		if d.Cross {
			a.cross.Set(int32(d.Dst.ID))
		}
	}
	for i := 0; i < n; i++ {
		a.sinkOff[i+1] += a.sinkOff[i]
		a.srcOff[i+1] += a.srcOff[i]
	}
	a.bySink = make([]Dep, len(a.All))
	a.bySrc = make([]Dep, len(a.All))
	cp := cursorPool.Get().(*[]int32)
	cursor := *cp
	if cap(cursor) < n {
		cursor = make([]int32, n)
	}
	cursor = cursor[:n]
	copy(cursor, a.sinkOff[:n])
	for _, d := range a.All {
		a.bySink[cursor[d.Dst.ID]] = d
		cursor[d.Dst.ID]++
	}
	copy(cursor, a.srcOff[:n])
	for _, d := range a.All {
		a.bySrc[cursor[d.Src.ID]] = d
		cursor[d.Src.ID]++
	}
	*cp = cursor
	cursorPool.Put(cp)
}

// emit records one directed dependence, deduplicating within the current
// pair (the same direction can be discovered at several loop levels).
// Duplicates across pairs are impossible: each unordered reference pair is
// tested exactly once and the kind is a function of the endpoints.
func (a *Analysis) emit(src, dst *ir.Ref, cross bool) {
	dir := 0
	if src != a.pairR1 {
		dir = 1
	}
	ci := 0
	if cross {
		ci = 1
	}
	if a.emitted[dir][ci] {
		return
	}
	a.emitted[dir][ci] = true
	d := Dep{Src: src, Dst: dst, Kind: kindOf(src, dst), Cross: cross}
	a.All = append(a.All, d)
	if a.ens != nil {
		a.annotate(&a.All[len(a.All)-1])
	}
}

// pair tests one unordered reference pair in every direction and level.
func (a *Analysis) pair(r1, r2 *ir.Ref, g *cfg.Graph, idx *ir.RegionIndex) {
	if a.ens != nil {
		if a.ens.Range {
			a.stats.Queries[MemberRange]++
			if a.rangeRefutesPair(r1, r2, idx) {
				// Sound refutation of every level test at once: the whole
				// pair short-circuits past the exact solver.
				a.stats.Hits[MemberRange]++
				a.stats.ShortCircuits[MemberRange]++
				return
			}
		}
		a.stats.Queries[MemberExact]++
		a.stats.Hits[MemberExact]++
	}
	a.pairR1 = r1
	a.emitted = [2][2]bool{}
	r := a.Region
	if r.Kind == ir.CFGRegion {
		if r1.SegID != r2.SegID {
			if !g.OnCommonPath(r1.SegID, r2.SegID) {
				return
			}
			src, dst := r1, r2
			if g.Age(r2.SegID) < g.Age(r1.SegID) {
				src, dst = r2, r1
			}
			if mayAliasIndependent(r, src, dst, idx) {
				a.emit(src, dst, true)
			}
			return
		}
		a.intraSegment(r1, r2, idx)
		return
	}

	// Loop region. Region level first: iterations are the segments.
	n := r.InstanceCount()
	if n >= 2 {
		if mayAliasRegionLevel(r, r1, r2, idx) {
			a.emit(r1, r2, true)
		}
		if r1 != r2 {
			if mayAliasRegionLevel(r, r2, r1, idx) {
				a.emit(r2, r1, true)
			}
		}
	}
	if r1 != r2 || r1.Access == ir.Write {
		a.intraSegment(r1, r2, idx)
	}
}

// intraSegment emits same-instance dependences between r1 and r2 at each
// common loop level and at the same-iteration level.
func (a *Analysis) intraSegment(r1, r2 *ir.Ref, idx *ir.RegionIndex) {
	if r1.SegID != r2.SegID {
		return
	}
	nCommon := commonLen(r1, r2)
	// Cross-iteration of each common inner loop.
	for level := 0; level < nCommon; level++ {
		if mayAliasInnerLevel(a.Region, r1, r2, nCommon, level, true, idx) {
			a.emit(r1, r2, false)
		}
		if r1 != r2 && mayAliasInnerLevel(a.Region, r1, r2, nCommon, level, false, idx) {
			a.emit(r2, r1, false)
		}
	}
	// Same iteration of all common loops: textual order directs the edge.
	if r1 == r2 {
		return
	}
	if mayAliasSameIteration(a.Region, r1, r2, nCommon, idx) {
		src, dst := r1, r2
		if r2.Pos < r1.Pos {
			src, dst = r2, r1
		}
		a.emit(src, dst, false)
	}
}

// commonLen returns the length of the shared enclosing-loop prefix of two
// references.
func commonLen(r1, r2 *ir.Ref) int {
	n := 0
	for n < len(r1.Ctx.Loops) && n < len(r2.Ctx.Loops) && r1.Ctx.Loops[n].ID == r2.Ctx.Loops[n].ID {
		n++
	}
	return n
}

// --- dense alias testing ----------------------------------------------

// acc accumulates the interval and GCD tests of one subscript-dimension
// equation diff == 0 (diff in solver variables).
type acc struct {
	lo, hi int64 // interval of the variable part
	g      int64 // gcd of the non-zero coefficients
	c      int64 // constant part
}

// add introduces a solver variable with the given coefficient and
// inclusive bounds.
func (a *acc) add(coeff, lo, hi int64) {
	if coeff == 0 {
		return
	}
	if coeff > 0 {
		a.lo += coeff * lo
		a.hi += coeff * hi
	} else {
		a.lo += coeff * hi
		a.hi += coeff * lo
	}
	a.g = gcd(a.g, abs64(coeff))
}

// mayZero reports whether diff == 0 may have a solution within bounds;
// false is a refutation.
func (a *acc) mayZero() bool {
	if a.lo+a.c > 0 || a.hi+a.c < 0 {
		return false
	}
	if a.g != 0 && a.c%a.g != 0 {
		return false
	}
	return true
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// loopRange returns the min and max values the loop variable takes.
func loopRange(l ir.LoopInfo) (int64, int64) {
	trips := l.Trips()
	if trips == 0 {
		return int64(l.From), int64(l.From)
	}
	last := int64(l.From) + int64(trips-1)*int64(l.Step)
	lo, hi := int64(l.From), last
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

// addSideLoops introduces the reference's own enclosing loops from depth
// `skip` on as independent solver variables with the given sign.
func (a *acc) addSideLoops(ref *ir.Ref, f ir.AffForm, sign int64, skip int) {
	for k := skip; k < len(ref.Ctx.Loops) && k < ir.MaxAffDepth; k++ {
		lo, hi := loopRange(ref.Ctx.Loops[k])
		a.add(sign*f.Depth[k], lo, hi)
	}
}

// mayAliasRegionLevel tests whether src (in an older iteration) and dst
// (in a strictly younger iteration) of a loop region may access the same
// location. Iterations are numbered t = 0..n-1 in execution order, with
// index value From + Step*t; the younger side is shifted by d >= 1.
func mayAliasRegionLevel(r *ir.Region, src, dst *ir.Ref, idx *ir.RegionIndex) bool {
	if idx.SlowAff[src.ID] || idx.SlowAff[dst.ID] {
		return slowRegionLevel(r, src, dst)
	}
	n := int64(r.InstanceCount())
	if n < 2 {
		return false
	}
	sa, da := idx.Aff[src.ID], idx.Aff[dst.ID]
	for dim := 0; dim < len(src.Subs); dim++ {
		sf, df := sa[dim], da[dim]
		if !sf.OK || !df.OK {
			continue // non-affine: cannot refute this dimension
		}
		var eq acc
		// index_src = From + Step*t ; index_dst = From + Step*(t + d)
		eq.c = sf.Const - df.Const + (sf.Reg-df.Reg)*int64(r.From)
		eq.add((sf.Reg-df.Reg)*int64(r.Step), 0, n-2)
		eq.add(-df.Reg*int64(r.Step), 1, n-1)
		eq.addSideLoops(src, sf, 1, 0)
		eq.addSideLoops(dst, df, -1, 0)
		if !eq.mayZero() {
			return false
		}
	}
	return true
}

// mayAliasInnerLevel tests a cross-iteration dependence of the common
// inner loop at the given level, with all outer common loops at equal
// iterations. srcEarlier selects the direction: when true, r1 is the
// source executing in an earlier iteration of the level loop.
func mayAliasInnerLevel(r *ir.Region, r1, r2 *ir.Ref, nCommon, level int, srcEarlier bool, idx *ir.RegionIndex) bool {
	src, dst := r1, r2
	if !srcEarlier {
		src, dst = r2, r1
	}
	if idx.SlowAff[src.ID] || idx.SlowAff[dst.ID] {
		return slowInnerLevel(r, src, dst, r1.Ctx.Loops[:nCommon], level)
	}
	l := r1.Ctx.Loops[level]
	trips := int64(l.Trips())
	if trips < 2 {
		return false
	}
	sa, da := idx.Aff[src.ID], idx.Aff[dst.ID]
	for dim := 0; dim < len(src.Subs); dim++ {
		sf, df := sa[dim], da[dim]
		if !sf.OK || !df.OK {
			continue
		}
		var eq acc
		eq.c = sf.Const - df.Const
		addRegionIndexShared(&eq, r, sf, df)
		// Outer common loops: shared variables.
		for k := 0; k < level; k++ {
			lo, hi := loopRange(r1.Ctx.Loops[k])
			eq.add(sf.Depth[k]-df.Depth[k], lo, hi)
		}
		// Level loop: dst iterates later: value_dst = value_src + Step*d, d>=1.
		lo, hi := loopRange(l)
		eq.add(sf.Depth[level]-df.Depth[level], lo, hi)
		eq.add(-df.Depth[level]*int64(l.Step), 1, trips-1)
		// Remaining loops per side are independent.
		eq.addSideLoops(src, sf, 1, level+1)
		eq.addSideLoops(dst, df, -1, level+1)
		if !eq.mayZero() {
			return false
		}
	}
	return true
}

// mayAliasSameIteration tests equality with all common loops at the same
// iteration and remaining loops independent.
func mayAliasSameIteration(r *ir.Region, r1, r2 *ir.Ref, nCommon int, idx *ir.RegionIndex) bool {
	if idx.SlowAff[r1.ID] || idx.SlowAff[r2.ID] {
		return slowSameIteration(r, r1, r2, r1.Ctx.Loops[:nCommon])
	}
	sa, da := idx.Aff[r1.ID], idx.Aff[r2.ID]
	for dim := 0; dim < len(r1.Subs); dim++ {
		sf, df := sa[dim], da[dim]
		if !sf.OK || !df.OK {
			continue
		}
		var eq acc
		eq.c = sf.Const - df.Const
		addRegionIndexShared(&eq, r, sf, df)
		for k := 0; k < nCommon; k++ {
			lo, hi := loopRange(r1.Ctx.Loops[k])
			eq.add(sf.Depth[k]-df.Depth[k], lo, hi)
		}
		eq.addSideLoops(r1, sf, 1, nCommon)
		eq.addSideLoops(r2, df, -1, nCommon)
		if !eq.mayZero() {
			return false
		}
	}
	return true
}

// mayAliasIndependent tests equality with every loop variable independent
// on each side (used for cross-segment pairs in CFG regions).
func mayAliasIndependent(r *ir.Region, src, dst *ir.Ref, idx *ir.RegionIndex) bool {
	if idx.SlowAff[src.ID] || idx.SlowAff[dst.ID] {
		return slowIndependent(r, src, dst)
	}
	sa, da := idx.Aff[src.ID], idx.Aff[dst.ID]
	for dim := 0; dim < len(src.Subs); dim++ {
		sf, df := sa[dim], da[dim]
		if !sf.OK || !df.OK {
			continue
		}
		var eq acc
		eq.c = sf.Const - df.Const
		eq.addSideLoops(src, sf, 1, 0)
		eq.addSideLoops(dst, df, -1, 0)
		if !eq.mayZero() {
			return false
		}
	}
	return true
}

// addRegionIndexShared binds the region index of a loop region to one
// shared solver variable on both sides (intra-segment tests happen within
// a single iteration of the region loop).
func addRegionIndexShared(eq *acc, r *ir.Region, sf, df ir.AffForm) {
	if r.Kind != ir.LoopRegion {
		return
	}
	n := int64(r.InstanceCount())
	eq.c += (sf.Reg - df.Reg) * int64(r.From)
	eq.add((sf.Reg-df.Reg)*int64(r.Step), 0, n-1)
}
