package specmem

import (
	"testing"
	"testing/quick"
)

func TestBufferReadWriteLookup(t *testing.T) {
	b := NewBuffer(4)
	if b.Lookup(10) != nil {
		t.Error("empty buffer lookup should be nil")
	}
	if !b.Write(10, 99) {
		t.Fatal("write rejected")
	}
	e := b.Lookup(10)
	if e == nil || !e.Written || e.Value != 99 {
		t.Errorf("entry = %+v", e)
	}
	// Rewrites do not consume capacity.
	for i := 0; i < 10; i++ {
		if !b.Write(10, int64(i)) {
			t.Fatal("rewrite rejected")
		}
	}
	if b.Size() != 1 {
		t.Errorf("size = %d, want 1", b.Size())
	}
}

func TestBufferOverflow(t *testing.T) {
	b := NewBuffer(2)
	if !b.Write(1, 1) || !b.Write(2, 2) {
		t.Fatal("writes rejected early")
	}
	if b.Write(3, 3) {
		t.Error("third location should overflow")
	}
	if b.NoteRead(4, 0, -1) {
		t.Error("read of new location should overflow")
	}
	// Existing locations still work.
	if !b.Write(1, 5) || !b.NoteRead(2, 0, -1) {
		t.Error("existing locations must not overflow")
	}
	if !b.Full() {
		t.Error("buffer should be full")
	}
}

func TestNoteReadTracksSource(t *testing.T) {
	b := NewBuffer(4)
	if !b.NoteRead(7, 42, 3) {
		t.Fatal("read rejected")
	}
	e := b.Lookup(7)
	if e == nil || !e.ReadFromBelow || e.SourceAge != 3 || e.Value != 42 {
		t.Errorf("entry = %+v", e)
	}
	// A read after an own write does not mark ReadFromBelow.
	b2 := NewBuffer(4)
	b2.Write(7, 1)
	b2.NoteRead(7, 1, -1)
	if b2.Lookup(7).ReadFromBelow {
		t.Error("read of own value must not be premature-read evidence")
	}
}

func TestPrematureRead(t *testing.T) {
	b := NewBuffer(4)
	b.NoteRead(7, 0, -1) // consumed from memory
	if b.PrematureRead(7, 2) == nil {
		t.Error("memory-sourced read is premature for any older writer")
	}
	b2 := NewBuffer(4)
	b2.NoteRead(7, 0, 5) // consumed from ancestor age 5
	if b2.PrematureRead(7, 3) != nil {
		t.Error("read sourced from age 5 is not premature for a write at age 3")
	}
	if b2.PrematureRead(7, 6) == nil {
		t.Error("read sourced from age 5 is premature for a write at age 6")
	}
	if b2.PrematureRead(7, 5) == nil {
		t.Error("a re-write by the forwarding source (age 5) makes the read premature")
	}
	if b2.PrematureRead(8, 6) != nil {
		t.Error("unrelated address")
	}
	// A written entry is not a premature read.
	b3 := NewBuffer(4)
	b3.Write(7, 1)
	if b3.PrematureRead(7, 0) != nil {
		t.Error("own write is not a premature read")
	}
}

func TestClearAndWrittenEntries(t *testing.T) {
	b := NewBuffer(8)
	b.Write(5, 50)
	b.Write(3, 30)
	b.NoteRead(9, 0, -1)
	entries := b.WrittenEntries()
	if len(entries) != 2 || entries[0].Addr != 3 || entries[1].Addr != 5 {
		t.Errorf("written entries = %v", entries)
	}
	b.Clear()
	if b.Size() != 0 || b.Lookup(5) != nil {
		t.Error("Clear did not empty the buffer")
	}
}

func TestCacheLRU(t *testing.T) {
	// Direct-mapped, 2 sets, 1 word blocks: addresses 0,2,4 map to set 0.
	c := NewCache(2, 1, 1)
	if c.Access(0) {
		t.Error("cold miss expected")
	}
	if !c.Access(0) {
		t.Error("hit expected")
	}
	c.Access(2) // evicts 0
	if c.Access(0) {
		t.Error("0 should have been evicted")
	}
	// 2-way: 0 and 2 coexist.
	c2 := NewCache(2, 2, 1)
	c2.Access(0)
	c2.Access(2)
	if !c2.Access(0) || !c2.Access(2) {
		t.Error("both blocks should fit in 2 ways")
	}
	// LRU eviction: touch 0, then 2, then insert 4: evicts 0.
	c2.Access(0)
	c2.Access(2)
	c2.Access(4)
	if c2.Access(0) {
		t.Error("0 was LRU and should be gone")
	}
}

func TestCacheBlockGranularity(t *testing.T) {
	c := NewCache(4, 1, 4)
	c.Access(0)
	if !c.Access(3) {
		t.Error("same block should hit")
	}
	if c.Access(4) {
		t.Error("next block should miss")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := HierarchyConfig{
		L1Sets: 1, L1Ways: 1, L2Sets: 2, L2Ways: 1, BlockWords: 1,
		L1Latency: 1, L2Latency: 10, MemLatency: 100,
	}
	h := NewHierarchy(2, cfg)
	if got := h.Access(0, 0); got != 100 {
		t.Errorf("cold access = %d, want 100 (mem)", got)
	}
	if got := h.Access(0, 0); got != 1 {
		t.Errorf("repeat = %d, want 1 (L1)", got)
	}
	// Another processor misses its L1 but hits shared L2.
	if got := h.Access(1, 0); got != 10 {
		t.Errorf("other proc = %d, want 10 (L2)", got)
	}
	// Evict block 0 from the one-line L1 with block 1 (which maps to the
	// other L2 set), then re-access: L1 miss, L2 hit.
	h.Access(0, 1)
	if got := h.Access(0, 0); got != 10 {
		t.Errorf("after eviction = %d, want 10 (L2 hit)", got)
	}
	if h.L1MissRate() <= 0 {
		t.Error("miss rate should be positive")
	}
}

func TestBufferSizeNeverExceedsCapacity(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewBuffer(4)
		for i, op := range ops {
			addr := int64(op % 16)
			if op%2 == 0 {
				b.Write(addr, int64(i))
			} else {
				b.NoteRead(addr, int64(i), int(op%5)-1)
			}
			if b.Size() > b.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheAccessIsDeterministic(t *testing.T) {
	f := func(addrs []int16) bool {
		c1 := NewCache(8, 2, 4)
		c2 := NewCache(8, 2, 4)
		for _, a := range addrs {
			if c1.Access(int64(a)) != c2.Access(int64(a)) {
				return false
			}
		}
		return c1.Hits == c2.Hits && c1.Misses == c2.Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetAssocBufferConflicts(t *testing.T) {
	// 4 sets x 2 ways: addresses congruent mod 4 share a set.
	b := NewSetAssocBuffer(4, 2)
	if b.Capacity() != 8 {
		t.Fatalf("capacity = %d, want 8", b.Capacity())
	}
	if !b.Write(0, 1) || !b.Write(4, 1) {
		t.Fatal("set 0 should hold two entries")
	}
	if b.Write(8, 1) {
		t.Error("third entry in set 0 must conflict")
	}
	// Other sets unaffected.
	if !b.Write(1, 1) || !b.Write(2, 1) {
		t.Error("other sets should accept entries")
	}
	// Existing entries always writable.
	if !b.Write(0, 9) || !b.NoteRead(4, 0, -1) {
		t.Error("existing entries must not conflict")
	}
	// Clear resets set occupancy.
	b.Clear()
	if !b.Write(8, 1) || !b.Write(12, 1) {
		t.Error("clear should reset set counters")
	}
}

func TestSetAssocBufferNegativeAddr(t *testing.T) {
	b := NewSetAssocBuffer(4, 1)
	if !b.Write(-3, 1) {
		t.Error("negative addresses must map to a valid set")
	}
}

func TestSetAssocDegenerateParams(t *testing.T) {
	b := NewSetAssocBuffer(0, 0)
	if b.Capacity() != 1 {
		t.Errorf("degenerate buffer capacity = %d, want 1", b.Capacity())
	}
	if !b.Write(5, 1) || b.Write(6, 1) {
		t.Error("1-entry buffer semantics broken")
	}
}
