package specmem

import "testing"

// TestBufferInsertAllocationFree pins the open-addressed buffer's hot
// operations at zero allocations: inserts, lookups, upgrades and resets
// must never touch the heap once the buffer is built.
func TestBufferInsertAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector")
	}
	b := NewBuffer(64)
	allocs := testing.AllocsPerRun(100, func() {
		for a := int64(0); a < 64; a++ {
			if !b.Write(a*7, a) {
				t.Fatal("unexpected overflow")
			}
		}
		for a := int64(0); a < 64; a++ {
			if b.Lookup(a*7) == nil {
				t.Fatal("lost entry")
			}
		}
		b.Reset()
	})
	if allocs != 0 {
		t.Errorf("Buffer write/lookup/reset cycle allocates %.1f times per run, want 0", allocs)
	}
}

// TestBufferNoteReadAllocationFree covers the read-tracking path.
func TestBufferNoteReadAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector")
	}
	b := NewSetAssocBuffer(8, 4)
	allocs := testing.AllocsPerRun(100, func() {
		for a := int64(0); a < 32; a++ {
			b.NoteRead(a, a, -1)
		}
		b.PrematureRead(3, 1)
		b.Reset()
	})
	if allocs != 0 {
		t.Errorf("Buffer note-read/reset cycle allocates %.1f times per run, want 0", allocs)
	}
}

// TestAppendWrittenReusesScratch pins the commit path: with a
// pre-grown scratch slice, draining written entries allocates nothing.
func TestAppendWrittenReusesScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector")
	}
	b := NewBuffer(32)
	scratch := make([]Entry, 0, 32)
	allocs := testing.AllocsPerRun(100, func() {
		for a := int64(0); a < 32; a++ {
			b.Write(31-a, a)
		}
		scratch = b.AppendWritten(scratch[:0])
		if len(scratch) != 32 {
			t.Fatalf("got %d written entries, want 32", len(scratch))
		}
		b.Reset()
	})
	if allocs != 0 {
		t.Errorf("AppendWritten allocates %.1f times per run, want 0", allocs)
	}
}

// TestCacheAccessAllocationFree pins the hierarchy timing model.
func TestCacheAccessAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector")
	}
	h := NewHierarchy(2, DefaultHierarchy())
	allocs := testing.AllocsPerRun(100, func() {
		for a := int64(0); a < 512; a++ {
			h.Access(int(a)&1, a*3)
		}
	})
	if allocs != 0 {
		t.Errorf("Hierarchy.Access allocates %.1f times per run, want 0", allocs)
	}
}
