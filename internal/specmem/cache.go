package specmem

import "math/bits"

// Cache is a set-associative LRU cache model used for timing only (values
// live in the flat memory array). Addresses are in words. Tags and
// recency counters live in flat ways-strided arrays (better locality than
// per-set slices), and each set remembers its most-recently-used way so
// the common repeated-hit case skips the way scan entirely.
type Cache struct {
	sets       int
	ways       int
	blockWords int64
	// lines[set*ways+way] holds block tags; lru[set*ways+way] holds
	// recency counters (higher = more recent).
	lines []int64
	lru   []uint64
	mru   []int32
	tick  uint64

	// blockShift/setMask are fast-path equivalents of the block division
	// and set modulo when blockWords/sets are powers of two (-1 when not).
	blockShift int
	setMask    int64

	Hits   int64
	Misses int64
}

// NewCache builds a cache with the given geometry. sets and ways must be
// at least 1; blockWords at least 1.
func NewCache(sets, ways int, blockWords int64) *Cache {
	if sets < 1 {
		sets = 1
	}
	if ways < 1 {
		ways = 1
	}
	if blockWords < 1 {
		blockWords = 1
	}
	c := &Cache{sets: sets, ways: ways, blockWords: blockWords, blockShift: -1, setMask: -1}
	if blockWords&(blockWords-1) == 0 {
		c.blockShift = bits.TrailingZeros64(uint64(blockWords))
	}
	if s := int64(sets); s&(s-1) == 0 {
		c.setMask = s - 1
	}
	c.lines = make([]int64, sets*ways)
	c.lru = make([]uint64, sets*ways)
	c.mru = make([]int32, sets)
	for i := range c.lines {
		c.lines[i] = -1
	}
	return c
}

// Access touches addr and reports whether it hit. Misses allocate
// (write-allocate for writes too), evicting the LRU way. The body is the
// inlinable MRU fast path (the overwhelmingly common repeated-hit case);
// way scan and eviction live in accessSlow.
//
// Addresses are expected to be non-negative (engine layouts only produce
// addresses >= 0); the floor semantics in blockOf/setIndex are defensive,
// but a negative address in [-blockWords, -1] would map to block -1 and
// collide with the empty-line sentinel (a cold lookup would count as a
// hit), so callers must not rely on negative-address behavior.
func (c *Cache) Access(addr int64) bool {
	block := c.blockOf(addr)
	set := c.setIndex(block)
	c.tick++
	base := set * c.ways
	if m := base + int(c.mru[set]); c.lines[m] == block {
		c.lru[m] = c.tick
		c.Hits++
		return true
	}
	return c.accessSlow(block, set, base)
}

// blockOf maps an address to its block number (floor division).
func (c *Cache) blockOf(addr int64) int64 {
	if c.blockShift >= 0 {
		return addr >> c.blockShift // floor division for any sign
	}
	if addr < 0 {
		return (addr - c.blockWords + 1) / c.blockWords
	}
	return addr / c.blockWords
}

// setIndex maps a block to its set (floor modulo).
func (c *Cache) setIndex(block int64) int {
	if c.setMask >= 0 {
		return int(block & c.setMask) // two's-complement low bits == floor mod
	}
	set := int(block % int64(c.sets))
	if set < 0 {
		set += c.sets
	}
	return set
}

// accessSlow is the non-MRU tail of Access: scan the ways, or evict LRU.
func (c *Cache) accessSlow(block int64, set, base int) bool {
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w] == block {
			c.lru[base+w] = c.tick
			c.mru[set] = int32(w)
			c.Hits++
			return true
		}
	}
	// Miss: evict LRU.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if c.lru[base+w] < c.lru[base+victim] {
			victim = w
		}
	}
	c.lines[base+victim] = block
	c.lru[base+victim] = c.tick
	c.mru[set] = int32(victim)
	c.Misses++
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.tick = 0
	c.Hits = 0
	c.Misses = 0
	for i := range c.lines {
		c.lines[i] = -1
		c.lru[i] = 0
	}
	for i := range c.mru {
		c.mru[i] = 0
	}
}

// HierarchyConfig describes the non-speculative storage timing model.
type HierarchyConfig struct {
	L1Sets     int
	L1Ways     int
	L2Sets     int
	L2Ways     int
	BlockWords int64
	L1Latency  int64 // L1 hit
	L2Latency  int64 // L1 miss, L2 hit
	MemLatency int64 // L2 miss
}

// DefaultHierarchy is a small hierarchy in the spirit of year-2000 chip
// multiprocessors: 2 KB 2-way L1s, a 32 KB 4-way shared L2 (sizes in
// 8-byte words), 1/8/60-cycle latencies.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1Sets: 32, L1Ways: 2, L2Sets: 256, L2Ways: 4, BlockWords: 4,
		L1Latency: 1, L2Latency: 8, MemLatency: 60,
	}
}

// Hierarchy is the non-speculative storage: per-processor L1 caches over a
// shared L2 over DRAM. It returns access latencies; data values live in
// the engine's flat memory.
type Hierarchy struct {
	cfg HierarchyConfig
	// l1 holds the per-processor L1 caches by value: one indexed load in
	// Access instead of chasing a pointer per event.
	l1 []Cache
	l2 *Cache

	Accesses int64
}

// NewHierarchy builds the hierarchy for the given processor count.
func NewHierarchy(procs int, cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{cfg: cfg, l2: NewCache(cfg.L2Sets, cfg.L2Ways, cfg.BlockWords)}
	h.l1 = make([]Cache, procs)
	for i := 0; i < procs; i++ {
		h.l1[i] = *NewCache(cfg.L1Sets, cfg.L1Ways, cfg.BlockWords)
	}
	return h
}

// Access models processor proc touching addr and returns the latency in
// cycles.
func (h *Hierarchy) Access(proc int, addr int64) int64 {
	h.Accesses++
	if proc < 0 || proc >= len(h.l1) {
		proc = 0
	}
	if h.l1[proc].Access(addr) {
		return h.cfg.L1Latency
	}
	if h.l2.Access(addr) {
		return h.cfg.L2Latency
	}
	return h.cfg.MemLatency
}

// L1MissRate returns the aggregate L1 miss rate (0 when unused).
func (h *Hierarchy) L1MissRate() float64 {
	var hits, misses int64
	for i := range h.l1 {
		hits += h.l1[i].Hits
		misses += h.l1[i].Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(misses) / float64(hits+misses)
}
