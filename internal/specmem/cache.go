package specmem

// Cache is a set-associative LRU cache model used for timing only (values
// live in the flat memory array). Addresses are in words.
type Cache struct {
	sets       int
	ways       int
	blockWords int64
	// lines[set][way] holds block tags; lru[set][way] holds recency
	// counters (higher = more recent).
	lines [][]int64
	lru   [][]uint64
	tick  uint64

	Hits   int64
	Misses int64
}

// NewCache builds a cache with the given geometry. sets and ways must be
// at least 1; blockWords at least 1.
func NewCache(sets, ways int, blockWords int64) *Cache {
	if sets < 1 {
		sets = 1
	}
	if ways < 1 {
		ways = 1
	}
	if blockWords < 1 {
		blockWords = 1
	}
	c := &Cache{sets: sets, ways: ways, blockWords: blockWords}
	c.lines = make([][]int64, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.lines {
		c.lines[i] = make([]int64, ways)
		c.lru[i] = make([]uint64, ways)
		for w := range c.lines[i] {
			c.lines[i][w] = -1
		}
	}
	return c
}

// Access touches addr and reports whether it hit. Misses allocate
// (write-allocate for writes too), evicting the LRU way.
func (c *Cache) Access(addr int64) bool {
	block := addr / c.blockWords
	if addr < 0 {
		block = (addr - c.blockWords + 1) / c.blockWords
	}
	set := int(block % int64(c.sets))
	if set < 0 {
		set += c.sets
	}
	c.tick++
	for w, tag := range c.lines[set] {
		if tag == block {
			c.lru[set][w] = c.tick
			c.Hits++
			return true
		}
	}
	// Miss: evict LRU.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.lines[set][victim] = block
	c.lru[set][victim] = c.tick
	c.Misses++
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.tick = 0
	c.Hits = 0
	c.Misses = 0
	for i := range c.lines {
		for w := range c.lines[i] {
			c.lines[i][w] = -1
			c.lru[i][w] = 0
		}
	}
}

// HierarchyConfig describes the non-speculative storage timing model.
type HierarchyConfig struct {
	L1Sets     int
	L1Ways     int
	L2Sets     int
	L2Ways     int
	BlockWords int64
	L1Latency  int64 // L1 hit
	L2Latency  int64 // L1 miss, L2 hit
	MemLatency int64 // L2 miss
}

// DefaultHierarchy is a small hierarchy in the spirit of year-2000 chip
// multiprocessors: 2 KB 2-way L1s, a 32 KB 4-way shared L2 (sizes in
// 8-byte words), 1/8/60-cycle latencies.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1Sets: 32, L1Ways: 2, L2Sets: 256, L2Ways: 4, BlockWords: 4,
		L1Latency: 1, L2Latency: 8, MemLatency: 60,
	}
}

// Hierarchy is the non-speculative storage: per-processor L1 caches over a
// shared L2 over DRAM. It returns access latencies; data values live in
// the engine's flat memory.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*Cache
	l2  *Cache

	Accesses int64
}

// NewHierarchy builds the hierarchy for the given processor count.
func NewHierarchy(procs int, cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{cfg: cfg, l2: NewCache(cfg.L2Sets, cfg.L2Ways, cfg.BlockWords)}
	for i := 0; i < procs; i++ {
		h.l1 = append(h.l1, NewCache(cfg.L1Sets, cfg.L1Ways, cfg.BlockWords))
	}
	return h
}

// Access models processor proc touching addr and returns the latency in
// cycles.
func (h *Hierarchy) Access(proc int, addr int64) int64 {
	h.Accesses++
	if proc < 0 || proc >= len(h.l1) {
		proc = 0
	}
	if h.l1[proc].Access(addr) {
		return h.cfg.L1Latency
	}
	if h.l2.Access(addr) {
		return h.cfg.L2Latency
	}
	return h.cfg.MemLatency
}

// L1MissRate returns the aggregate L1 miss rate (0 when unused).
func (h *Hierarchy) L1MissRate() float64 {
	var hits, misses int64
	for _, c := range h.l1 {
		hits += c.Hits
		misses += c.Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(misses) / float64(hits+misses)
}
