//go:build !race

package specmem

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
