// Package specmem models the two storages of the paper's execution models:
// the per-segment speculative storage (small, capacity-limited hardware
// buffers that hold a segment's speculative data and reference-tracking
// information) and the non-speculative storage (a conventional L1/L2/DRAM
// memory hierarchy).
package specmem

import (
	"sort"
)

// Entry is one speculative-storage record: the data value plus the access
// information the speculation engine needs to track dependences (HOSE
// Property 5).
type Entry struct {
	Addr  int64
	Value int64
	// Written reports the segment produced this value.
	Written bool
	// ReadFromBelow reports the segment consumed this location from an
	// ancestor or from non-speculative storage before writing it — the
	// record a later (program-order-earlier) write uses to detect a
	// premature read.
	ReadFromBelow bool
	// SourceAge is the age of the ancestor segment that supplied the
	// value of a ReadFromBelow entry, or -1 when it came from
	// non-speculative storage.
	SourceAge int
}

// Buffer is one segment's speculative storage. Capacity is in entries; a
// full buffer rejects new locations (speculative storage overflow, the
// paper's key bottleneck). With sets > 1 the buffer is organized as a
// set-associative structure — like the speculative versioning cache or
// the Multiscalar ARB — and a new location is also rejected when its
// address-indexed set is full, even if total capacity remains.
type Buffer struct {
	capacity int
	sets     int
	ways     int
	entries  map[int64]*Entry
	setCount []int
}

// NewBuffer returns an empty fully-associative buffer with the given
// capacity (entries).
func NewBuffer(capacity int) *Buffer {
	return &Buffer{capacity: capacity, sets: 1, entries: make(map[int64]*Entry)}
}

// NewSetAssocBuffer returns an empty set-associative buffer with
// sets × ways entries.
func NewSetAssocBuffer(sets, ways int) *Buffer {
	if sets < 1 {
		sets = 1
	}
	if ways < 1 {
		ways = 1
	}
	return &Buffer{
		capacity: sets * ways,
		sets:     sets,
		ways:     ways,
		entries:  make(map[int64]*Entry),
		setCount: make([]int, sets),
	}
}

func (b *Buffer) setOf(addr int64) int {
	s := int(addr % int64(b.sets))
	if s < 0 {
		s += b.sets
	}
	return s
}

// canAllocate reports whether a new entry for addr fits.
func (b *Buffer) canAllocate(addr int64) bool {
	if len(b.entries) >= b.capacity {
		return false
	}
	if b.sets > 1 && b.setCount[b.setOf(addr)] >= b.ways {
		return false
	}
	return true
}

func (b *Buffer) allocate(addr int64, e *Entry) {
	b.entries[addr] = e
	if b.sets > 1 {
		b.setCount[b.setOf(addr)]++
	}
}

// Lookup returns the entry for addr, or nil.
func (b *Buffer) Lookup(addr int64) *Entry { return b.entries[addr] }

// Size returns the number of occupied entries.
func (b *Buffer) Size() int { return len(b.entries) }

// Capacity returns the configured capacity.
func (b *Buffer) Capacity() int { return b.capacity }

// Full reports whether total capacity is exhausted (set conflicts can
// reject a specific address even when Full is false).
func (b *Buffer) Full() bool { return len(b.entries) >= b.capacity }

// NoteRead records a read of addr that was satisfied from sourceAge (-1
// for non-speculative storage) with the given value. It reports false on
// overflow (no room for a new entry).
func (b *Buffer) NoteRead(addr, value int64, sourceAge int) bool {
	if e, ok := b.entries[addr]; ok {
		// The location is already tracked; reads of the segment's own
		// value or repeated reads change nothing.
		if !e.Written && !e.ReadFromBelow {
			e.ReadFromBelow = true
			e.SourceAge = sourceAge
			e.Value = value
		}
		return true
	}
	if !b.canAllocate(addr) {
		return false
	}
	b.allocate(addr, &Entry{Addr: addr, Value: value, ReadFromBelow: true, SourceAge: sourceAge})
	return true
}

// Write records a write of value to addr. It reports false on overflow.
func (b *Buffer) Write(addr, value int64) bool {
	if e, ok := b.entries[addr]; ok {
		e.Value = value
		e.Written = true
		return true
	}
	if !b.canAllocate(addr) {
		return false
	}
	b.allocate(addr, &Entry{Addr: addr, Value: value, Written: true})
	return true
}

// Clear discards all entries (rollback: HOSE Property 4).
func (b *Buffer) Clear() {
	b.entries = make(map[int64]*Entry)
	if b.sets > 1 {
		for i := range b.setCount {
			b.setCount[i] = 0
		}
	}
}

// WrittenEntries returns the segment-produced entries in address order
// (the values a commit transfers to non-speculative storage).
func (b *Buffer) WrittenEntries() []*Entry {
	out := make([]*Entry, 0, len(b.entries))
	for _, e := range b.entries {
		if e.Written {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// PrematureRead returns the entry proving a premature read of addr
// relative to a write by the segment of age writerAge: the buffer's owner
// consumed the location from memory or from a source no younger than the
// writer, so after the write the consumed value is stale. (Equality counts:
// a value forwarded from the writer's own earlier version is stale once
// the writer stores again.) Returns nil when no violation exists.
func (b *Buffer) PrematureRead(addr int64, writerAge int) *Entry {
	e := b.entries[addr]
	if e == nil || !e.ReadFromBelow {
		return nil
	}
	if e.SourceAge <= writerAge {
		return e
	}
	return nil
}
