// Package specmem models the two storages of the paper's execution models:
// the per-segment speculative storage (small, capacity-limited hardware
// buffers that hold a segment's speculative data and reference-tracking
// information) and the non-speculative storage (a conventional L1/L2/DRAM
// memory hierarchy).
package specmem

import (
	"slices"
	"sort"
)

// Entry is one speculative-storage record: the data value plus the access
// information the speculation engine needs to track dependences (HOSE
// Property 5).
type Entry struct {
	Addr  int64
	Value int64
	// Written reports the segment produced this value.
	Written bool
	// ReadFromBelow reports the segment consumed this location from an
	// ancestor or from non-speculative storage before writing it — the
	// record a later (program-order-earlier) write uses to detect a
	// premature read.
	ReadFromBelow bool
	// SourceAge is the age of the ancestor segment that supplied the
	// value of a ReadFromBelow entry, or -1 when it came from
	// non-speculative storage.
	SourceAge int
}

// slot is one open-addressing index cell. A slot is live only when its
// epoch matches the buffer's current epoch, which lets Reset invalidate
// the whole index in O(1) instead of zeroing it.
type slot struct {
	epoch uint32
	ref   int32
}

// Buffer is one segment's speculative storage. Capacity is in entries; a
// full buffer rejects new locations (speculative storage overflow, the
// paper's key bottleneck). With sets > 1 the buffer is organized as a
// set-associative structure — like the speculative versioning cache or
// the Multiscalar ARB — and a new location is also rejected when its
// address-indexed set is full, even if total capacity remains.
//
// Entries live in a dense, preallocated store indexed by an epoch-stamped
// open-addressed hash table, so the squash/commit-heavy simulator hot path
// never allocates: inserts append into the store, lookups probe the index,
// and Reset recycles everything by bumping the epoch. Entry pointers
// returned by Lookup and PrematureRead stay valid until the next Reset
// (the store never grows past its preallocated capacity).
type Buffer struct {
	capacity int
	sets     int
	ways     int
	entries  []Entry
	slots    []slot
	mask     uint32
	// hashShift selects the high bits of the multiplicative hash that
	// index the slot table (64 - log2(len(slots))).
	hashShift uint32
	epoch     uint32
	setCount  []int32
}

// NewBuffer returns an empty fully-associative buffer with the given
// capacity (entries).
func NewBuffer(capacity int) *Buffer {
	return newBuffer(capacity, 1, 0)
}

// NewSetAssocBuffer returns an empty set-associative buffer with
// sets × ways entries.
func NewSetAssocBuffer(sets, ways int) *Buffer {
	if sets < 1 {
		sets = 1
	}
	if ways < 1 {
		ways = 1
	}
	return newBuffer(sets*ways, sets, ways)
}

func newBuffer(capacity, sets, ways int) *Buffer {
	b := &Buffer{capacity: capacity, sets: sets, ways: ways, epoch: 1}
	n := 8
	shift := uint32(61)
	for n < 2*capacity {
		n <<= 1
		shift--
	}
	b.slots = make([]slot, n)
	b.mask = uint32(n - 1)
	b.hashShift = shift
	if capacity > 0 {
		b.entries = make([]Entry, 0, capacity)
	}
	if sets > 1 {
		b.setCount = make([]int32, sets)
	}
	return b
}

// probe returns the slot index holding addr (found=true) or the first
// free slot of its chain (found=false). The table is kept at most half
// full, so a free slot always exists. Slots are indexed by the high bits
// of a Fibonacci (multiplicative) hash — one multiply and one shift.
func (b *Buffer) probe(addr int64) (idx uint32, found bool) {
	h := uint32(uint64(addr)*0x9E3779B97F4A7C15>>b.hashShift) & b.mask
	for {
		s := b.slots[h]
		if s.epoch != b.epoch {
			return h, false
		}
		if b.entries[s.ref].Addr == addr {
			return h, true
		}
		h = (h + 1) & b.mask
	}
}

func (b *Buffer) setOf(addr int64) int {
	s := int(addr % int64(b.sets))
	if s < 0 {
		s += b.sets
	}
	return s
}

// canAllocate reports whether a new entry for addr fits.
func (b *Buffer) canAllocate(addr int64) bool {
	if len(b.entries) >= b.capacity {
		return false
	}
	if b.sets > 1 && b.setCount[b.setOf(addr)] >= int32(b.ways) {
		return false
	}
	return true
}

// allocate appends a new entry and indexes it at the (free) slot idx.
func (b *Buffer) allocate(idx uint32, e Entry) *Entry {
	b.entries = append(b.entries, e)
	b.slots[idx] = slot{epoch: b.epoch, ref: int32(len(b.entries) - 1)}
	if b.sets > 1 {
		b.setCount[b.setOf(e.Addr)]++
	}
	return &b.entries[len(b.entries)-1]
}

// Lookup returns the entry for addr, or nil.
func (b *Buffer) Lookup(addr int64) *Entry {
	idx, ok := b.probe(addr)
	if !ok {
		return nil
	}
	return &b.entries[b.slots[idx].ref]
}

// Size returns the number of occupied entries.
func (b *Buffer) Size() int { return len(b.entries) }

// Capacity returns the configured capacity.
func (b *Buffer) Capacity() int { return b.capacity }

// Sets returns the number of address-indexed sets (1 when fully
// associative).
func (b *Buffer) Sets() int { return b.sets }

// Full reports whether total capacity is exhausted (set conflicts can
// reject a specific address even when Full is false).
func (b *Buffer) Full() bool { return len(b.entries) >= b.capacity }

// NoteRead records a read of addr that was satisfied from sourceAge (-1
// for non-speculative storage) with the given value. It reports false on
// overflow (no room for a new entry).
func (b *Buffer) NoteRead(addr, value int64, sourceAge int) bool {
	idx, ok := b.probe(addr)
	if ok {
		// The location is already tracked; reads of the segment's own
		// value or repeated reads change nothing.
		e := &b.entries[b.slots[idx].ref]
		if !e.Written && !e.ReadFromBelow {
			e.ReadFromBelow = true
			e.SourceAge = sourceAge
			e.Value = value
		}
		return true
	}
	if !b.canAllocate(addr) {
		return false
	}
	b.allocate(idx, Entry{Addr: addr, Value: value, ReadFromBelow: true, SourceAge: sourceAge})
	return true
}

// Write records a write of value to addr. It reports false on overflow.
func (b *Buffer) Write(addr, value int64) bool {
	idx, ok := b.probe(addr)
	if ok {
		e := &b.entries[b.slots[idx].ref]
		e.Value = value
		e.Written = true
		return true
	}
	if !b.canAllocate(addr) {
		return false
	}
	b.allocate(idx, Entry{Addr: addr, Value: value, Written: true})
	return true
}

// Reset discards all entries without releasing storage (rollback — HOSE
// Property 4 — and recycling on commit/spawn reuse the same buffer).
func (b *Buffer) Reset() {
	b.entries = b.entries[:0]
	b.epoch++
	if b.epoch == 0 {
		// Epoch wrapped (after ~4 billion resets): physically clear the
		// index so stale stamps cannot alias the restarted epoch.
		for i := range b.slots {
			b.slots[i] = slot{}
		}
		b.epoch = 1
	}
	if b.sets > 1 {
		for i := range b.setCount {
			b.setCount[i] = 0
		}
	}
}

// Clear discards all entries; it is Reset under its historical name.
func (b *Buffer) Clear() { b.Reset() }

// WrittenEntries returns the segment-produced entries in address order
// (the values a commit transfers to non-speculative storage).
func (b *Buffer) WrittenEntries() []*Entry {
	out := make([]*Entry, 0, len(b.entries))
	for i := range b.entries {
		if b.entries[i].Written {
			out = append(out, &b.entries[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// AppendWritten appends the segment-produced entries to dst in address
// order and returns the extended slice. It is the allocation-free commit
// path: the engine passes a reusable scratch slice.
func (b *Buffer) AppendWritten(dst []Entry) []Entry {
	start := len(dst)
	for i := range b.entries {
		if b.entries[i].Written {
			dst = append(dst, b.entries[i])
		}
	}
	tail := dst[start:]
	slices.SortFunc(tail, func(a, b Entry) int {
		switch {
		case a.Addr < b.Addr:
			return -1
		case a.Addr > b.Addr:
			return 1
		default:
			return 0
		}
	})
	return dst
}

// PrematureRead returns the entry proving a premature read of addr
// relative to a write by the segment of age writerAge: the buffer's owner
// consumed the location from memory or from a source no younger than the
// writer, so after the write the consumed value is stale. (Equality counts:
// a value forwarded from the writer's own earlier version is stale once
// the writer stores again.) Returns nil when no violation exists.
func (b *Buffer) PrematureRead(addr int64, writerAge int) *Entry {
	e := b.Lookup(addr)
	if e == nil || !e.ReadFromBelow {
		return nil
	}
	if e.SourceAge <= writerAge {
		return e
	}
	return nil
}
