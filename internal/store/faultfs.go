package store

import (
	"errors"
	"io/fs"
	"sync"
)

// FaultKind selects which file-operation fault a FaultFS injects.
type FaultKind int

const (
	// FaultNone injects nothing; all operations pass through.
	FaultNone FaultKind = iota
	// FaultTornWrite makes one write persist only a prefix of its bytes
	// while reporting full success — the classic torn write a checksum
	// must catch. One-shot: later writes are clean.
	FaultTornWrite
	// FaultENOSPC makes writes fail with ErrNoSpace from the trigger
	// point until Heal — a full disk.
	FaultENOSPC
	// FaultRenameFail makes renames fail with ErrRenameFailed from the
	// trigger point until Heal.
	FaultRenameFail
	// FaultCrash abandons the process state mid-write: the triggering
	// write persists only a prefix, and every subsequent operation fails
	// with ErrCrashed until Heal — the in-process analogue of SIGKILL
	// between a temp write and its rename.
	FaultCrash
	// FaultReadCorrupt makes reads return payloads with a flipped byte
	// from the trigger point until Heal — bit rot the frame checksum
	// must catch.
	FaultReadCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTornWrite:
		return "torn-write"
	case FaultENOSPC:
		return "enospc"
	case FaultRenameFail:
		return "rename-fail"
	case FaultCrash:
		return "crash"
	case FaultReadCorrupt:
		return "read-corrupt"
	}
	return "unknown"
}

// Injected fault errors. They deliberately do not wrap fs errors: the
// serving layer must treat any unrecognized store error as a degrade
// signal, and the tests assert it does.
var (
	ErrCrashed      = errors.New("store: injected crash: process state abandoned mid-write")
	ErrNoSpace      = errors.New("store: injected ENOSPC")
	ErrRenameFailed = errors.New("store: injected rename failure")
)

// FaultFS is a fileOps layer that injects faults into the operations
// beneath an FS backend. Arm schedules a fault, Heal clears all fault
// state (the "disk" works again), Fired reports how many faults actually
// triggered. Safe for concurrent use.
//
// Open a store over it with OpenWithFaults; the recovery scan, Get, Put,
// Scan and Probe all run through the layer.
type FaultFS struct {
	inner fileOps

	mu        sync.Mutex
	kind      FaultKind
	remaining int  // eligible operations left before the fault triggers
	active    bool // persistent fault has triggered and is still in force
	crashed   bool
	fired     int64
}

// NewFaultFS returns a fault layer over the real filesystem.
func NewFaultFS() *FaultFS { return &FaultFS{inner: osOps{}} }

// OpenWithFaults opens a filesystem store whose every file operation
// runs through the fault layer.
func OpenWithFaults(dir string, f *FaultFS) (*FS, RecoveryStats, error) {
	return openWith(dir, f)
}

// Arm schedules a fault: the after-th eligible operation (1 = the next
// one) triggers it. Persistent kinds stay in force until Heal; a torn
// write is one-shot. Arming replaces any previously armed fault but does
// not clear a crash — only Heal revives a crashed layer.
func (f *FaultFS) Arm(kind FaultKind, after int) {
	if after < 1 {
		after = 1
	}
	f.mu.Lock()
	f.kind = kind
	f.remaining = after
	f.active = false
	f.mu.Unlock()
}

// Heal clears every fault: armed, active and crashed state.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	f.kind = FaultNone
	f.remaining = 0
	f.active = false
	f.crashed = false
	f.mu.Unlock()
}

// Fired reports how many faults have actually triggered.
func (f *FaultFS) Fired() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Crashed reports whether a FaultCrash has triggered and not been
// healed.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// fire consumes one eligible operation for kind and reports whether the
// fault triggers on it. Callers hold f.mu.
func (f *FaultFS) fire(kind FaultKind) bool {
	if f.kind != kind {
		return false
	}
	if f.active {
		return true
	}
	f.remaining--
	if f.remaining > 0 {
		return false
	}
	f.fired++
	switch kind {
	case FaultTornWrite:
		f.kind = FaultNone // one-shot
	case FaultCrash:
		f.crashed = true
		f.active = true
	default:
		f.active = true
	}
	return true
}

func (f *FaultFS) MkdirAll(path string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (writeFile, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	w, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, w: w}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	inject := f.fire(FaultRenameFail)
	f.mu.Unlock()
	if inject {
		return ErrRenameFailed
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	corrupt := f.fire(FaultReadCorrupt)
	f.mu.Unlock()
	raw, err := f.inner.ReadFile(path)
	if err != nil || !corrupt || len(raw) == 0 {
		return raw, err
	}
	// Flip one mid-file byte: lands in the frame body for any realistic
	// record, which the CRC must catch.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0xff
	return flipped, nil
}

func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(path)
}

func (f *FaultFS) Remove(path string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) SyncDir(path string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.inner.SyncDir(path)
}

// faultFile routes writes and syncs of one temp file through the fault
// layer.
type faultFile struct {
	f *FaultFS
	w writeFile
}

func (w *faultFile) Name() string { return w.w.Name() }

func (w *faultFile) Write(p []byte) (int, error) {
	w.f.mu.Lock()
	if w.f.crashed {
		w.f.mu.Unlock()
		return 0, ErrCrashed
	}
	switch {
	case w.f.fire(FaultCrash):
		w.f.mu.Unlock()
		// The process "dies" mid-write: a prefix lands on disk, nothing
		// after this operation happens. Flush what the torn page would
		// have contained so the partial state is really there.
		if n := len(p) / 2; n > 0 {
			w.w.Write(p[:n])
			w.w.Sync()
		}
		w.w.Close()
		return 0, ErrCrashed
	case w.f.fire(FaultTornWrite):
		w.f.mu.Unlock()
		// A prefix persists but the write reports success.
		if n := len(p) / 2; n > 0 {
			if _, err := w.w.Write(p[:n]); err != nil {
				return 0, err
			}
		}
		return len(p), nil
	case w.f.fire(FaultENOSPC):
		w.f.mu.Unlock()
		return 0, ErrNoSpace
	}
	w.f.mu.Unlock()
	return w.w.Write(p)
}

func (w *faultFile) Sync() error {
	w.f.mu.Lock()
	crashed := w.f.crashed
	w.f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return w.w.Sync()
}

func (w *faultFile) Close() error {
	w.f.mu.Lock()
	crashed := w.f.crashed
	w.f.mu.Unlock()
	if crashed {
		// The real descriptor still needs releasing or the test process
		// leaks it; the store's caller-visible error stays ErrCrashed.
		w.w.Close()
		return ErrCrashed
	}
	return w.w.Close()
}
