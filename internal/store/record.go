package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record frame layout. Every record file is exactly one frame:
//
//	offset 0  : magic "RIDMv1" (6 bytes)
//	offset 6  : key length,  uint32 big-endian
//	offset 10 : data length, uint32 big-endian
//	offset 14 : CRC-32 (IEEE) over key bytes ++ data bytes
//	offset 18 : key bytes (canonical Key encoding), then data bytes
//
// The explicit lengths make truncation detectable (the file must be
// exactly header+key+data long), the checksum makes torn or bit-flipped
// content detectable, and the embedded key makes every record
// self-describing for the recovery scan.
const (
	recordMagic  = "RIDMv1"
	recordHeader = len(recordMagic) + 12
	// maxFrameLen bounds a single record; anything larger in a header is
	// treated as corruption rather than attempted.
	maxFrameLen = 1 << 30
)

// encodeRecord frames a key+payload into record bytes.
func encodeRecord(key, data []byte) []byte {
	buf := make([]byte, recordHeader+len(key)+len(data))
	copy(buf, recordMagic)
	binary.BigEndian.PutUint32(buf[6:], uint32(len(key)))
	binary.BigEndian.PutUint32(buf[10:], uint32(len(data)))
	copy(buf[recordHeader:], key)
	copy(buf[recordHeader+len(key):], data)
	crc := crc32.ChecksumIEEE(buf[recordHeader:])
	binary.BigEndian.PutUint32(buf[14:], crc)
	return buf
}

// decodeRecord validates a frame and returns its key and payload (both
// aliasing raw). Every failure mode — short header, bad magic, length
// mismatch, trailing bytes, checksum mismatch — reports ErrCorrupt.
func decodeRecord(raw []byte) (key, data []byte, err error) {
	if len(raw) < recordHeader {
		return nil, nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(raw), recordHeader)
	}
	if string(raw[:len(recordMagic)]) != recordMagic {
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, raw[:len(recordMagic)])
	}
	keyLen := binary.BigEndian.Uint32(raw[6:])
	dataLen := binary.BigEndian.Uint32(raw[10:])
	if keyLen > maxFrameLen || dataLen > maxFrameLen {
		return nil, nil, fmt.Errorf("%w: implausible lengths key=%d data=%d", ErrCorrupt, keyLen, dataLen)
	}
	want := recordHeader + int(keyLen) + int(dataLen)
	if len(raw) != want {
		return nil, nil, fmt.Errorf("%w: frame is %d bytes, header says %d", ErrCorrupt, len(raw), want)
	}
	body := raw[recordHeader:]
	if crc := crc32.ChecksumIEEE(body); crc != binary.BigEndian.Uint32(raw[14:]) {
		return nil, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return body[:keyLen], body[keyLen:], nil
}
