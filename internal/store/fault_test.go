package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func mustOpenFaulty(t *testing.T, dir string) (*FS, *FaultFS) {
	t.Helper()
	ff := NewFaultFS()
	s, _, err := OpenWithFaults(dir, ff)
	if err != nil {
		t.Fatal(err)
	}
	return s, ff
}

// TestTornWriteNeverServed: a write that silently persists only a prefix
// must be caught by the frame checksum on read and quarantined — the
// fault the length+CRC header exists for.
func TestTornWriteNeverServed(t *testing.T) {
	dir := t.TempDir()
	s, ff := mustOpenFaulty(t, dir)
	k := testKey(1)
	ff.Arm(FaultTornWrite, 1)
	// The torn write reports success: from the writer's view the record
	// landed. Only validation can reveal the loss.
	if err := s.Put(k, []byte("a payload that will be torn in half")); err != nil {
		t.Fatalf("torn Put reported: %v (torn writes are silent)", err)
	}
	if ff.Fired() != 1 {
		t.Fatalf("fault fired %d times, want 1", ff.Fired())
	}
	if _, err := s.Get(k); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of torn record: err = %v, want ErrCorrupt", err)
	}
	if s.Quarantined() != 1 {
		t.Errorf("quarantined = %d, want 1", s.Quarantined())
	}
	// After quarantine the address is a clean miss and rewritable.
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-quarantine Get: err = %v, want ErrNotFound", err)
	}
	if err := s.Put(k, []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(k); err != nil || string(got) != "rewritten" {
		t.Fatalf("rewritten Get = %q, %v", got, err)
	}
}

func TestENOSPCFailsPutCleanly(t *testing.T) {
	dir := t.TempDir()
	s, ff := mustOpenFaulty(t, dir)
	k := testKey(1)
	ff.Arm(FaultENOSPC, 1)
	if err := s.Put(k, []byte("doomed")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Put under ENOSPC: err = %v, want ErrNoSpace", err)
	}
	// No record landed, and the failed temp file was cleaned up.
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after failed Put: err = %v, want ErrNotFound", err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("tmp dir holds %d files after failed Put, want 0", len(entries))
	}
	// Disk frees up: the same Put now succeeds.
	ff.Heal()
	if err := s.Put(k, []byte("landed")); err != nil {
		t.Fatal(err)
	}
}

func TestRenameFailureFailsPutCleanly(t *testing.T) {
	dir := t.TempDir()
	s, ff := mustOpenFaulty(t, dir)
	k := testKey(1)
	ff.Arm(FaultRenameFail, 1)
	if err := s.Put(k, []byte("doomed")); !errors.Is(err, ErrRenameFailed) {
		t.Fatalf("Put under rename failure: err = %v, want ErrRenameFailed", err)
	}
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after failed Put: err = %v, want ErrNotFound", err)
	}
	ff.Heal()
	if err := s.Put(k, []byte("landed")); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidWriteRecovers: a crash point abandons the process state
// mid-write; reopening the directory sweeps the abandoned temp file and
// the address reads as a clean miss.
func TestCrashMidWriteRecovers(t *testing.T) {
	dir := t.TempDir()
	s, ff := mustOpenFaulty(t, dir)
	committed, doomed := testKey(1), testKey(2)
	if err := s.Put(committed, []byte("committed before the crash")); err != nil {
		t.Fatal(err)
	}
	ff.Arm(FaultCrash, 1)
	if err := s.Put(doomed, []byte("interrupted by the crash")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Put across crash point: err = %v, want ErrCrashed", err)
	}
	if !ff.Crashed() {
		t.Fatal("fault layer not in crashed state")
	}
	// Everything after the crash fails: the process is gone.
	if _, err := s.Get(committed); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Get: err = %v, want ErrCrashed", err)
	}
	if err := s.Probe(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Probe: err = %v, want ErrCrashed", err)
	}

	// "Restart": a fresh store over the same directory with a healthy fs.
	s2, stats, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TempsSwept != 1 {
		t.Errorf("recovery swept %d temp files, want 1 (the abandoned write)", stats.TempsSwept)
	}
	if stats.Quarantined != 0 {
		t.Errorf("recovery quarantined %d, want 0 (the crash never renamed into records/)", stats.Quarantined)
	}
	if got, err := s2.Get(committed); err != nil || !bytes.Equal(got, []byte("committed before the crash")) {
		t.Fatalf("committed record after restart = %q, %v", got, err)
	}
	if _, err := s2.Get(doomed); !errors.Is(err, ErrNotFound) {
		t.Fatalf("interrupted record after restart: err = %v, want ErrNotFound", err)
	}
}

// TestReadCorruptionQuarantines: bit rot on the read path must never
// surface as data — the record is quarantined and reported corrupt.
func TestReadCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	s, ff := mustOpenFaulty(t, dir)
	k := testKey(1)
	if err := s.Put(k, []byte("pristine payload")); err != nil {
		t.Fatal(err)
	}
	ff.Arm(FaultReadCorrupt, 1)
	if _, err := s.Get(k); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted read: err = %v, want ErrCorrupt", err)
	}
	if s.Quarantined() != 1 {
		t.Errorf("quarantined = %d, want 1", s.Quarantined())
	}
	ff.Heal()
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-quarantine Get: err = %v, want ErrNotFound", err)
	}
}

// TestProbeReportsFaults: Probe must fail while the backing fs is broken
// and succeed again after it heals — the signal the serving layer's
// degraded-mode re-probe loop keys on.
func TestProbeReportsFaults(t *testing.T) {
	s, ff := mustOpenFaulty(t, t.TempDir())
	for _, kind := range []FaultKind{FaultENOSPC, FaultRenameFail} {
		ff.Arm(kind, 1)
		if err := s.Probe(); err == nil {
			t.Errorf("%v: probe passed under an active fault", kind)
		}
		ff.Heal()
		if err := s.Probe(); err != nil {
			t.Errorf("%v: probe failed after heal: %v", kind, err)
		}
	}
}
