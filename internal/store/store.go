// Package store is the crash-safe persistent result store behind the
// serving layer: a content-addressed map from analysis identity —
// program fingerprint, operation, parameters and analysis version — to
// the byte-deterministic response document computed for it. Because
// responses are a pure function of that identity (the service layer's
// byte-determinism guarantee), a record read back from the store is
// exactly the document a cold compute would produce, which is what makes
// cross-restart cache hits sound: a lost-then-recomputed entry and a
// persisted one are indistinguishable.
//
// Durability model (the filesystem backend, FS):
//
//   - every record is framed with a magic, explicit lengths and a CRC of
//     the key and payload, so a torn or partial write is detectable, not
//     silently servable;
//   - writes go through a temp file, fsync, atomic rename and a
//     directory sync, so a record either exists completely or not at all
//     under crash;
//   - a startup recovery scan validates every record; corrupt entries
//     are quarantined — moved aside and reported, never served and never
//     silently deleted — and abandoned temp files are swept;
//   - the analysis version is part of the key, so a new analysis release
//     simply misses old records instead of serving stale semantics.
//
// FaultFS wraps the backend's file operations with injectable faults
// (short/torn writes, ENOSPC, rename failures, read corruption,
// mid-write crash points) so the chaos tests can prove the properties
// above instead of asserting them.
package store

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"refidem/internal/ir"
)

// Typed store errors. Callers branch with errors.Is: ErrNotFound is the
// ordinary miss, ErrCorrupt means a record existed but failed validation
// (it has been quarantined), anything else is a backend fault the serving
// layer treats as a degrade signal.
var (
	// ErrNotFound reports that no record exists for the key.
	ErrNotFound = errors.New("store: record not found")
	// ErrCorrupt reports that the record's frame failed validation
	// (bad magic, truncated, checksum mismatch, key mismatch). The
	// backend quarantines the record before returning this.
	ErrCorrupt = errors.New("store: record corrupt")
	// ErrBadKey reports a key whose fields cannot be encoded (embedded
	// newlines).
	ErrBadKey = errors.New("store: invalid key")
)

// Key is the content address of one persisted result: the program's
// content fingerprint plus everything else that shapes the response
// bytes. Two requests with equal keys are answered with byte-identical
// documents, so persisting under this key is exact.
type Key struct {
	// Fingerprint is the program content hash (ir.FingerprintOf).
	Fingerprint ir.Fingerprint
	// Op is the operation that produced the record ("label", "simulate").
	Op string
	// Params is the canonical parameter encoding chosen by the caller;
	// it is opaque to the store but part of the address.
	Params string
	// Version is the analysis version that computed the record. Bumping
	// it invalidates every prior record by address, not by deletion.
	Version string
}

// Encode renders the key's canonical byte form — the form hashed into
// the record's filename and embedded in the record frame, so a record
// self-describes its address.
func (k Key) Encode() []byte {
	var b strings.Builder
	b.Grow(len(k.Version) + len(k.Op) + len(k.Params) + 2*len(k.Fingerprint) + 32)
	b.WriteString("version=")
	b.WriteString(k.Version)
	b.WriteString("\nop=")
	b.WriteString(k.Op)
	b.WriteString("\nfp=")
	b.WriteString(hex.EncodeToString(k.Fingerprint[:]))
	b.WriteString("\nparams=")
	b.WriteString(k.Params)
	b.WriteString("\n")
	return []byte(b.String())
}

// validate rejects keys whose encoding would be ambiguous.
func (k Key) validate() error {
	for _, f := range []struct{ name, v string }{
		{"version", k.Version}, {"op", k.Op}, {"params", k.Params},
	} {
		if strings.ContainsRune(f.v, '\n') {
			return fmt.Errorf("%w: %s contains a newline", ErrBadKey, f.name)
		}
	}
	if k.Op == "" {
		return fmt.Errorf("%w: empty op", ErrBadKey)
	}
	return nil
}

// DecodeKey parses a canonical key encoding (the inverse of Encode).
func DecodeKey(b []byte) (Key, error) {
	var k Key
	rest := string(b)
	for _, field := range []string{"version", "op", "fp", "params"} {
		line, tail, ok := strings.Cut(rest, "\n")
		if !ok {
			return Key{}, fmt.Errorf("%w: truncated key encoding", ErrCorrupt)
		}
		val, found := strings.CutPrefix(line, field+"=")
		if !found {
			return Key{}, fmt.Errorf("%w: key line %q is not %s=", ErrCorrupt, line, field)
		}
		switch field {
		case "version":
			k.Version = val
		case "op":
			k.Op = val
		case "fp":
			raw, err := hex.DecodeString(val)
			if err != nil || len(raw) != len(k.Fingerprint) {
				return Key{}, fmt.Errorf("%w: bad fingerprint %q", ErrCorrupt, val)
			}
			copy(k.Fingerprint[:], raw)
		case "params":
			k.Params = val
		}
		rest = tail
	}
	if rest != "" {
		return Key{}, fmt.Errorf("%w: trailing bytes after key encoding", ErrCorrupt)
	}
	return k, nil
}

// Backend is a pluggable persistent result store. The filesystem
// implementation is FS; an S3-compatible object backend can sit behind
// the same interface (ROADMAP direction 4's shared L2). Implementations
// must be safe for concurrent use.
type Backend interface {
	// Get returns the record's payload, ErrNotFound on a miss, or
	// ErrCorrupt after quarantining a record that failed validation.
	Get(k Key) ([]byte, error)
	// Put durably persists the payload under the key, replacing any
	// previous record atomically.
	Put(k Key, data []byte) error
	// Scan calls fn for every valid record. Corrupt records encountered
	// mid-scan are quarantined and skipped, never surfaced. A non-nil
	// error from fn stops the scan and is returned.
	Scan(fn func(k Key, data []byte) error) error
	// Probe performs a small write-then-read self check; the serving
	// layer uses it to decide when a degraded store has recovered.
	Probe() error
	// Quarantined reports the total number of records quarantined since
	// the backend was opened (recovery scan plus runtime detections).
	Quarantined() int64
	// Close releases backend resources. Records persist across Close.
	Close() error
}

// RecoveryStats reports what the startup recovery scan found.
type RecoveryStats struct {
	// Scanned counts record files examined.
	Scanned int
	// Valid counts records that passed frame validation.
	Valid int
	// Quarantined counts corrupt records moved to the quarantine
	// directory (never served, never silently deleted).
	Quarantined int
	// TempsSwept counts abandoned temp files (crashed mid-write, never
	// renamed into place — by construction invisible to readers) removed.
	TempsSwept int
}

func (s RecoveryStats) String() string {
	return fmt.Sprintf("scanned %d records: %d valid, %d quarantined, %d temp files swept",
		s.Scanned, s.Valid, s.Quarantined, s.TempsSwept)
}
