package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// fileOps is the seam between the FS backend and the operating system:
// every file operation the backend performs goes through it, so FaultFS
// can substitute faulty implementations without touching the backend's
// logic. osOps is the real implementation.
type fileOps interface {
	MkdirAll(path string) error
	CreateTemp(dir, pattern string) (writeFile, error)
	Rename(oldpath, newpath string) error
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]fs.DirEntry, error)
	Remove(path string) error
	// SyncDir fsyncs a directory so a completed rename is durable.
	SyncDir(path string) error
}

// writeFile is the writable handle CreateTemp returns.
type writeFile interface {
	io.Writer
	Name() string
	Sync() error
	Close() error
}

// osOps is the real-filesystem fileOps.
type osOps struct{}

func (osOps) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }
func (osOps) CreateTemp(dir, pattern string) (writeFile, error) {
	return os.CreateTemp(dir, pattern)
}
func (osOps) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osOps) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }
func (osOps) ReadDir(path string) ([]fs.DirEntry, error) {
	return os.ReadDir(path)
}
func (osOps) Remove(path string) error { return os.Remove(path) }
func (osOps) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// FS is the filesystem Backend. Layout under the root directory:
//
//	records/xx/<hash>.rec  one frame per record, fanned out by the first
//	                       two hex digits of the key hash
//	tmp/                   in-flight writes (swept at Open)
//	quarantine/            corrupt records moved aside by recovery/Get
//
// The record path is a pure function of the key, so Get is stateless: no
// in-memory index to rebuild or to fall out of sync with the directory —
// records written by another process with the same root are simply
// visible.
type FS struct {
	root string
	ops  fileOps

	// qmu serializes quarantine renames; qseq disambiguates quarantined
	// names when the same record is quarantined repeatedly.
	qmu  sync.Mutex
	qseq int

	quarantined atomic.Int64
}

// Open opens (creating if needed) a filesystem store rooted at dir and
// runs the recovery scan: every record is validated, corrupt records are
// quarantined, abandoned temp files are swept. The returned stats report
// what the scan found.
func Open(dir string) (*FS, RecoveryStats, error) {
	return openWith(dir, osOps{})
}

// openWith is Open on an explicit fileOps; the fault-injection tests use
// it to open a store over a FaultFS.
func openWith(dir string, ops fileOps) (*FS, RecoveryStats, error) {
	s := &FS{root: dir, ops: ops}
	for _, sub := range []string{s.recordsDir(), s.tmpDir(), s.quarantineDir()} {
		if err := ops.MkdirAll(sub); err != nil {
			return nil, RecoveryStats{}, fmt.Errorf("store: create %s: %w", sub, err)
		}
	}
	stats, err := s.recover()
	if err != nil {
		return nil, stats, err
	}
	return s, stats, nil
}

func (s *FS) recordsDir() string    { return filepath.Join(s.root, "records") }
func (s *FS) tmpDir() string        { return filepath.Join(s.root, "tmp") }
func (s *FS) quarantineDir() string { return filepath.Join(s.root, "quarantine") }

// pathFor maps a key to its record path: sha256 of the canonical key
// encoding, hex, fanned out on the first two digits.
func (s *FS) pathFor(enc []byte) (dir, path string) {
	sum := sha256.Sum256(enc)
	name := hex.EncodeToString(sum[:])
	dir = filepath.Join(s.recordsDir(), name[:2])
	return dir, filepath.Join(dir, name+".rec")
}

// recover scans every record file, quarantining the corrupt and sweeping
// abandoned temp files. Only fatal directory errors abort; per-file
// problems are handled and counted.
func (s *FS) recover() (RecoveryStats, error) {
	var stats RecoveryStats
	if temps, err := s.ops.ReadDir(s.tmpDir()); err == nil {
		for _, e := range temps {
			if e.IsDir() {
				continue
			}
			// A temp file was never renamed into records/, so no reader can
			// have observed it; sweeping it is cleanup, not data loss.
			if s.ops.Remove(filepath.Join(s.tmpDir(), e.Name())) == nil {
				stats.TempsSwept++
			}
		}
	}
	fanouts, err := s.ops.ReadDir(s.recordsDir())
	if err != nil {
		return stats, fmt.Errorf("store: scan %s: %w", s.recordsDir(), err)
	}
	for _, fan := range fanouts {
		if !fan.IsDir() {
			continue
		}
		dir := filepath.Join(s.recordsDir(), fan.Name())
		entries, err := s.ops.ReadDir(dir)
		if err != nil {
			return stats, fmt.Errorf("store: scan %s: %w", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".rec" {
				continue
			}
			stats.Scanned++
			path := filepath.Join(dir, e.Name())
			if _, _, err := s.loadRecord(path); err != nil {
				if errors.Is(err, ErrCorrupt) {
					s.quarantine(path)
					stats.Quarantined++
					continue
				}
				return stats, err
			}
			stats.Valid++
		}
	}
	return stats, nil
}

// loadRecord reads and validates one record file, returning its decoded
// key and payload.
func (s *FS) loadRecord(path string) (Key, []byte, error) {
	raw, err := s.ops.ReadFile(path)
	if err != nil {
		return Key{}, nil, err
	}
	keyEnc, data, err := decodeRecord(raw)
	if err != nil {
		return Key{}, nil, err
	}
	k, err := DecodeKey(keyEnc)
	if err != nil {
		return Key{}, nil, err
	}
	return k, data, nil
}

// quarantine moves a corrupt record aside — never served again, never
// silently deleted — under a unique name in quarantine/.
func (s *FS) quarantine(path string) {
	s.qmu.Lock()
	s.qseq++
	dst := filepath.Join(s.quarantineDir(), fmt.Sprintf("%s.%d.quarantined", filepath.Base(path), s.qseq))
	s.qmu.Unlock()
	// A failed quarantine rename leaves the corrupt record in place; it
	// still never serves (validation rejects it on every read).
	if s.ops.Rename(path, dst) == nil || !fileExists(s.ops, path) {
		s.quarantined.Add(1)
	}
}

func fileExists(ops fileOps, path string) bool {
	_, err := ops.ReadFile(path)
	return err == nil
}

// Get returns the payload persisted under k. A record that fails
// validation is quarantined and reported as ErrCorrupt.
func (s *FS) Get(k Key) ([]byte, error) {
	if err := k.validate(); err != nil {
		return nil, err
	}
	enc := k.Encode()
	_, path := s.pathFor(enc)
	raw, err := s.ops.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: read %s: %w", path, err)
	}
	keyEnc, data, err := decodeRecord(raw)
	if err != nil {
		s.quarantine(path)
		return nil, err
	}
	if !bytes.Equal(keyEnc, enc) {
		// The frame is internally consistent but describes a different
		// key: it cannot be the answer to this address.
		s.quarantine(path)
		return nil, fmt.Errorf("%w: record key does not match its address", ErrCorrupt)
	}
	return data, nil
}

// Put durably persists data under k: frame, temp write, fsync, atomic
// rename, directory sync. A crash at any point leaves either the old
// record or the new one, never a mix; a torn write that does land is
// caught by the frame checksum on read.
func (s *FS) Put(k Key, data []byte) error {
	if err := k.validate(); err != nil {
		return err
	}
	enc := k.Encode()
	dir, path := s.pathFor(enc)
	if err := s.ops.MkdirAll(dir); err != nil {
		return fmt.Errorf("store: create %s: %w", dir, err)
	}
	frame := encodeRecord(enc, data)
	f, err := s.ops.CreateTemp(s.tmpDir(), "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: create temp: %w", err)
	}
	tmpName := f.Name()
	cleanup := func() { _ = s.ops.Remove(tmpName) }
	if _, err := f.Write(frame); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("store: write %s: %w", tmpName, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("store: sync %s: %w", tmpName, err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("store: close %s: %w", tmpName, err)
	}
	if err := s.ops.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("store: rename into %s: %w", path, err)
	}
	if err := s.ops.SyncDir(dir); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}

// Scan calls fn for every valid record; corrupt records found mid-scan
// are quarantined and skipped.
func (s *FS) Scan(fn func(k Key, data []byte) error) error {
	fanouts, err := s.ops.ReadDir(s.recordsDir())
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", s.recordsDir(), err)
	}
	for _, fan := range fanouts {
		if !fan.IsDir() {
			continue
		}
		dir := filepath.Join(s.recordsDir(), fan.Name())
		entries, err := s.ops.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("store: scan %s: %w", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".rec" {
				continue
			}
			path := filepath.Join(dir, e.Name())
			k, data, err := s.loadRecord(path)
			if err != nil {
				if errors.Is(err, ErrCorrupt) {
					s.quarantine(path)
					continue
				}
				if errors.Is(err, fs.ErrNotExist) {
					continue // raced with a concurrent quarantine or rewrite
				}
				return err
			}
			if err := fn(k, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// probeKey addresses the Probe self-check record; its reserved op keeps
// it out of any real result's address space.
func probeKey() Key {
	return Key{Op: "__probe__", Version: "store-self-check"}
}

// Probe writes and reads back a small self-check record. The serving
// layer calls it periodically while degraded to detect recovery.
func (s *FS) Probe() error {
	payload := []byte("store probe\n")
	if err := s.Put(probeKey(), payload); err != nil {
		return err
	}
	got, err := s.Get(probeKey())
	if err != nil {
		return err
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("store: probe read back %q, want %q", got, payload)
	}
	return nil
}

// Quarantined reports the total records quarantined since Open.
func (s *FS) Quarantined() int64 { return s.quarantined.Load() }

// Close releases the backend. The filesystem store holds no open
// handles between operations, so this is a no-op kept for the Backend
// contract.
func (s *FS) Close() error { return nil }
