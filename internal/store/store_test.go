package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"refidem/internal/ir"
)

func testKey(i int) Key {
	var fp ir.Fingerprint
	fp[0] = byte(i)
	fp[1] = byte(i >> 8)
	return Key{
		Fingerprint: fp,
		Op:          "label",
		Params:      fmt.Sprintf("deps=false;procs=%d;cap=0", i%3),
		Version:     "v1",
	}
}

func mustOpen(t *testing.T, dir string) (*FS, RecoveryStats) {
	t.Helper()
	s, stats, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, stats
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, stats := mustOpen(t, dir)
	if stats != (RecoveryStats{}) {
		t.Errorf("fresh store recovery stats = %+v, want zero", stats)
	}
	k := testKey(1)
	if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: err = %v, want ErrNotFound", err)
	}
	payload := []byte(`{"op": "label"}` + "\n")
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}

	// Overwrite is atomic replace.
	payload2 := []byte("second version\n")
	if err := s.Put(k, payload2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(k); !bytes.Equal(got, payload2) {
		t.Fatalf("after overwrite Get = %q, want %q", got, payload2)
	}

	// A second open of the same directory sees the record.
	s2, stats2 := mustOpen(t, dir)
	if stats2.Scanned != 1 || stats2.Valid != 1 || stats2.Quarantined != 0 {
		t.Errorf("reopen stats = %+v, want 1 scanned, 1 valid", stats2)
	}
	if got, err := s2.Get(k); err != nil || !bytes.Equal(got, payload2) {
		t.Fatalf("reopened Get = %q, %v", got, err)
	}
}

func TestKeyEncodeDecodeRoundTrip(t *testing.T) {
	k := Key{Op: "simulate", Params: "deps=true;procs=8;cap=64", Version: "refidem/v6"}
	for i := range k.Fingerprint {
		k.Fingerprint[i] = byte(37 * i)
	}
	got, err := DecodeKey(k.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatalf("round trip = %+v, want %+v", got, k)
	}
	// Empty params and version survive too.
	k2 := Key{Op: "label"}
	if got, err := DecodeKey(k2.Encode()); err != nil || got != k2 {
		t.Fatalf("zero-field round trip = %+v, %v", got, err)
	}
}

func TestBadKeysRejected(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir())
	for _, k := range []Key{
		{Op: "label", Params: "a\nb", Version: "v1"},
		{Op: "la\nbel", Version: "v1"},
		{Op: "label", Version: "v\n1"},
		{}, // empty op
	} {
		if err := s.Put(k, []byte("x")); !errors.Is(err, ErrBadKey) {
			t.Errorf("Put(%+v): err = %v, want ErrBadKey", k, err)
		}
		if _, err := s.Get(k); !errors.Is(err, ErrBadKey) {
			t.Errorf("Get(%+v): err = %v, want ErrBadKey", k, err)
		}
	}
}

func TestDecodeRecordRejectsEveryCorruption(t *testing.T) {
	key := testKey(1).Encode()
	data := []byte("payload bytes")
	frame := encodeRecord(key, data)

	check := func(name string, raw []byte) {
		t.Helper()
		if _, _, err := decodeRecord(raw); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	check("empty", nil)
	check("short header", frame[:recordHeader-1])
	check("truncated body", frame[:len(frame)-3])
	check("trailing bytes", append(append([]byte(nil), frame...), 'x'))
	bad := append([]byte(nil), frame...)
	bad[0] ^= 0xff
	check("bad magic", bad)
	bad = append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x01
	check("flipped payload byte", bad)
	bad = append([]byte(nil), frame...)
	bad[recordHeader+2] ^= 0x01
	check("flipped key byte", bad)

	// The clean frame still decodes.
	gotKey, gotData, err := decodeRecord(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotKey, key) || !bytes.Equal(gotData, data) {
		t.Fatal("clean frame did not round trip")
	}
}

// TestRecoveryQuarantinesCorruptRecords corrupts records on disk and
// verifies the reopen scan quarantines them — never serves them, never
// silently deletes them.
func TestRecoveryQuarantinesCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir)
	keep, torn, flipped := testKey(1), testKey(2), testKey(3)
	for _, k := range []Key{keep, torn, flipped} {
		if err := s.Put(k, []byte("payload for "+k.Params)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt two of the three record files behind the store's back.
	_, tornPath := s.pathFor(torn.Encode())
	raw, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, flipPath := s.pathFor(flipped.Encode())
	raw, err = os.ReadFile(flipPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(flipPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, stats := mustOpen(t, dir)
	if stats.Scanned != 3 || stats.Valid != 1 || stats.Quarantined != 2 {
		t.Fatalf("recovery stats = %+v, want 3 scanned / 1 valid / 2 quarantined", stats)
	}
	if s2.Quarantined() != 2 {
		t.Errorf("Quarantined() = %d, want 2", s2.Quarantined())
	}
	// The corrupt records are gone from the address space...
	for _, k := range []Key{torn, flipped} {
		if _, err := s2.Get(k); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(corrupt %s): err = %v, want ErrNotFound after quarantine", k.Params, err)
		}
	}
	// ...the valid one still serves...
	if _, err := s2.Get(keep); err != nil {
		t.Errorf("Get(valid): %v", err)
	}
	// ...and nothing was silently deleted: both live in quarantine/.
	qEntries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qEntries) != 2 {
		t.Errorf("quarantine holds %d files, want 2", len(qEntries))
	}
	// Scan surfaces only the valid record.
	n := 0
	if err := s2.Scan(func(k Key, data []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Scan visited %d records, want 1", n)
	}
}

func TestVersionIsPartOfTheAddress(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir())
	k := testKey(1)
	if err := s.Put(k, []byte("v1 document")); err != nil {
		t.Fatal(err)
	}
	bumped := k
	bumped.Version = "v2"
	if _, err := s.Get(bumped); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bumped-version Get: err = %v, want ErrNotFound (old records invalid by address)", err)
	}
	if _, err := s.Get(k); err != nil {
		t.Fatal(err)
	}
}

func TestScanDecodesKeys(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir())
	want := map[Key][]byte{}
	for i := 0; i < 10; i++ {
		k := testKey(i)
		payload := []byte(fmt.Sprintf("payload %d", i))
		want[k] = payload
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	got := map[Key][]byte{}
	if err := s.Scan(func(k Key, data []byte) error {
		got[k] = append([]byte(nil), data...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d records, want %d", len(got), len(want))
	}
	for k, payload := range want {
		if !bytes.Equal(got[k], payload) {
			t.Errorf("key %v: payload %q, want %q", k.Params, got[k], payload)
		}
	}
}

func TestProbe(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir())
	if err := s.Probe(); err != nil {
		t.Fatalf("clean probe: %v", err)
	}
}

// TestConcurrentPutGet exercises the backend under the race detector:
// concurrent writers and readers over overlapping keys.
func TestConcurrentPutGet(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir())
	const workers, rounds = 8, 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := testKey(r % 4)
				if err := s.Put(k, []byte(fmt.Sprintf("w%d r%d", w, r))); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if q := s.Quarantined(); q != 0 {
		t.Errorf("quarantined %d records under clean concurrent use", q)
	}
}
