package store

import (
	"fmt"
	"testing"
)

// benchPayload approximates a label response document.
var benchPayload = func() []byte {
	b := make([]byte, 2048)
	for i := range b {
		b[i] = byte(' ' + i%90)
	}
	return b
}()

// BenchmarkStorePut measures one durable record write — frame, temp
// file, fsync, rename, directory sync. It is fs-bound by design (two
// fsyncs per op); the CI gate holds ns/op loosely and allocs/op with the
// fs-bound slack.
func BenchmarkStorePut(b *testing.B) {
	s, _, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]Key, 64)
	for i := range keys {
		keys[i] = testBenchKey(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(keys[i%len(keys)], benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures one validated read: file read, frame
// decode, CRC check, key comparison.
func BenchmarkStoreGet(b *testing.B) {
	s, _, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]Key, 64)
	for i := range keys {
		keys[i] = testBenchKey(i)
		if err := s.Put(keys[i], benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRecoveryScan measures reopening a directory of 256
// records — the warm-restart startup cost the daemon pays once.
func BenchmarkStoreRecoveryScan(b *testing.B) {
	dir := b.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if err := s.Put(testBenchKey(i), benchPayload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, stats, err := Open(dir); err != nil || stats.Valid != 256 {
			b.Fatalf("stats %+v, err %v", stats, err)
		}
	}
}

func testBenchKey(i int) Key {
	k := Key{Op: "label", Version: "bench", Params: fmt.Sprintf("i=%d", i)}
	k.Fingerprint[0] = byte(i)
	k.Fingerprint[1] = byte(i >> 8)
	return k
}
