// Package service is the serving layer of the reproduction: a
// long-running, concurrency-safe Server wrapping the full parse → label →
// simulate pipeline behind a request API, so the ~22 µs dense labeling
// core and the engine's compiled-region caches are amortized across
// requests instead of being rebuilt per CLI invocation.
//
// The architecture, socket to core:
//
//   - a sharded program cache: N idem.ProgramCache shards keyed by
//     ir.FingerprintOf, preserving the per-shard in-flight pinning and
//     single-flight guarantees under cross-shard concurrency;
//   - a batching/coalescing admission queue: identical in-flight requests
//     (same op, program fingerprint and parameters) deduplicate onto one
//     computation, and admitted tasks drain in bounded batches through an
//     internal/parallel worker pool;
//   - admission control and backpressure: the queue is bounded, a full
//     queue rejects with ErrOverloaded, and Close drains every admitted
//     request before returning;
//   - metrics: per-endpoint counters, aggregate cache hit/miss/eviction/
//     pinned statistics and a request latency histogram, rendered by
//     RenderMetricz.
//
// Responses are byte-deterministic: identical programs (and parameters)
// produce byte-identical response documents, so the golden and fuzzing
// oracles can target the server exactly like the CLIs.
package service

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"refidem/internal/deps"
	"refidem/internal/engine"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/obs"
	"refidem/internal/parallel"
	"refidem/internal/store"
)

// The typed service errors (ErrBadRequest, ErrOverloaded, ErrClosed,
// ErrTimeout, ErrUnknownBase) are the internal/api taxonomy, re-exported
// in request.go. The HTTP layer maps them to status codes; in-process
// callers test with errors.Is.

// Config parameterizes a Server. The zero value is normalized to the
// defaults documented per field; DefaultConfig spells them out.
type Config struct {
	// Shards is the program cache shard count (<= 0 selects 8). The shard
	// of a program is chosen by its content fingerprint.
	Shards int
	// CacheCapacity is the per-shard labeled-program capacity
	// (<= 0 selects 64).
	CacheCapacity int
	// Workers bounds the compute worker pool (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrOverloaded (<= 0 selects 1024).
	QueueDepth int
	// MaxBatch bounds how many queued tasks one dispatch admits to the
	// worker pool at a time (<= 0 selects 64).
	MaxBatch int
	// Coalesce deduplicates identical in-flight requests onto a single
	// computation. DefaultConfig enables it; the zero Config leaves it
	// off so the field composes with struct literals.
	Coalesce bool
	// ResponseCache is the per-shard capacity of the response byte cache
	// — the fast path answering repeat requests without touching the
	// parser or the queue (0 selects 4× CacheCapacity, negative disables
	// it). Responses are byte-deterministic, so serving cached bytes is
	// exact.
	ResponseCache int
	// Engine is the base simulated machine; per-request processors and
	// capacity override it. A zero Processors selects
	// engine.DefaultConfig.
	Engine engine.Config
	// Store is the persistent result store (nil disables persistence —
	// the zero value and DefaultConfig are memory-only). When set, the
	// server warm-starts from it at construction, persists computed
	// responses write-behind, and degrades to memory-only on backend
	// faults instead of failing requests. The backend belongs to the
	// caller: Close does not close it.
	Store store.Backend
	// StoreQueueDepth bounds the write-behind persistence queue; a full
	// queue drops writes (counted) instead of blocking the request path
	// (<= 0 selects 256).
	StoreQueueDepth int
	// StoreProbeInterval is how often a degraded store is re-probed
	// (<= 0 selects 3s).
	StoreProbeInterval time.Duration
	// RequestTimeout is the per-request deadline applied inside Do; a
	// request that exceeds it fails with ErrTimeout (HTTP 504). Zero
	// disables the deadline.
	RequestTimeout time.Duration
	// FlightSpans enables the request flight recorder with a ring of that
	// many spans (see internal/obs): every request records its per-stage
	// timings and outcome, served on /debug/tracez and identified to HTTP
	// clients by the X-Refidem-Trace-Id header. 0 (the default) disables
	// recording entirely — the request path then carries a single nil
	// check and no clock reads beyond the latency histogram's. Span
	// timings never reach response bytes, so responses are byte-identical
	// either way.
	FlightSpans int
	// Ensemble labels programs through the collaborative dependence
	// ensemble (idem.LabelProgramEnsemble) with the sound members (range
	// pre-filter, must-write-first) enabled. Responses stay byte-identical
	// to the plain labeler — speculative members only annotate
	// confidences, never labels — while /metricz gains per-member query,
	// hit and short-circuit counters.
	Ensemble bool
	// DeltaBases bounds the base registry: the canonical sources of the
	// most recently analyzed programs, addressable as delta bases by
	// fingerprint (0 selects 256, negative disables delta serving —
	// every delta request then answers ErrUnknownBase).
	DeltaBases int
	// DeltaFragments bounds the per-region fragment cache delta requests
	// reuse labelings from (0 selects 4096, negative disables reuse —
	// delta requests then re-label every region, still byte-identically).
	DeltaFragments int
}

// DefaultConfig returns the production defaults: 8 cache shards of 64
// programs, GOMAXPROCS workers, a 1024-deep admission queue drained in
// batches of 64, coalescing on, the paper's default machine.
func DefaultConfig() Config {
	return Config{
		Shards:        8,
		CacheCapacity: 64,
		QueueDepth:    1024,
		MaxBatch:      64,
		Coalesce:      true,
		Engine:        engine.DefaultConfig(),
	}
}

func (c Config) normalized() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.ResponseCache == 0 {
		c.ResponseCache = 4 * c.CacheCapacity
	}
	if c.Engine.Processors == 0 {
		c.Engine = engine.DefaultConfig()
	}
	if c.StoreQueueDepth <= 0 {
		c.StoreQueueDepth = 256
	}
	if c.DeltaBases == 0 {
		c.DeltaBases = 256
	}
	if c.DeltaFragments == 0 {
		c.DeltaFragments = 4096
	}
	if c.StoreProbeInterval <= 0 {
		c.StoreProbeInterval = 3 * time.Second
	}
	return c
}

// Server is the analysis service. Construct with New, submit with Label,
// Simulate, Batch or Do, and shut down with Close. All methods are safe
// for concurrent use.
type Server struct {
	cfg     Config
	shards  []*idem.ProgramCache
	resp    *respCache // nil when disabled
	metrics *Metrics
	flight  *obs.FlightRecorder // nil when disabled

	// Delta serving (see delta.go): the base registry resolves delta
	// requests, the fragment cache reuses per-region labelings across
	// requests and programs. Either is nil when disabled.
	bases *baseRegistry
	frags *fragCache

	mu       sync.Mutex
	closed   bool
	inflight map[taskKey]*task
	queue    chan *task
	// closing mirrors closed for lock-free reads on the fast path.
	closing atomic.Bool

	drained chan struct{}

	// Persistence tier (see persist.go). storeState holds a StoreState;
	// warm is the boot-time snapshot of persisted responses, drained as
	// entries are served; persistQ is the bounded write-behind queue.
	storeState  atomic.Int32
	warmMu      sync.Mutex
	warm        map[store.Key][]byte
	persistQ    chan persistWrite
	persistDone chan struct{}
	probeStop   chan struct{}
	storeOnce   sync.Once
}

// taskKey identifies a coalescable computation: the operation, the
// program content and every parameter that shapes the response.
type taskKey struct {
	op       string
	fp       ir.Fingerprint
	deps     bool
	procs    int
	capacity int
}

// task is one admitted computation plus its waiters. resp, err and the
// span fields are written by the worker before done is closed and
// read-only afterwards.
type task struct {
	key  taskKey
	prog *ir.Program
	done chan struct{}
	resp []byte
	err  error

	// delta marks tasks admitted from a delta request (Base set): label
	// computation goes through the per-region fragment path instead of
	// the whole-program cache. The response bytes are identical either
	// way, so coalescing full and delta requests onto one task is exact.
	delta bool

	// Flight-recorder stage timings of the worker-side phases (zero when
	// the recorder is off) and the response source ("store" or
	// "compute"). Coalesced waiters all report the one computation they
	// waited on.
	spanStoreRead  int64
	spanCompute    int64
	spanStoreWrite int64
	src            string
}

// New starts a Server: the admission queue is allocated and the
// dispatcher goroutine begins draining it in bounded batches.
func New(cfg Config) *Server {
	cfg = cfg.normalized()
	s := &Server{
		cfg:      cfg,
		shards:   make([]*idem.ProgramCache, cfg.Shards),
		metrics:  newMetrics(),
		inflight: make(map[taskKey]*task),
		queue:    make(chan *task, cfg.QueueDepth),
		drained:  make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i] = idem.NewProgramCache(cfg.CacheCapacity)
		if cfg.Ensemble {
			s.shards[i].SetLabeler(func(p *ir.Program) map[*ir.Region]*idem.Result {
				return idem.LabelProgramEnsemble(p, deps.Ensemble{Range: true, MustWriteFirst: true})
			})
		}
	}
	if cfg.ResponseCache > 0 {
		s.resp = newRespCache(cfg.Shards, cfg.ResponseCache)
	}
	if cfg.DeltaBases > 0 {
		s.bases = newBaseRegistry(cfg.DeltaBases)
	}
	if cfg.DeltaFragments > 0 {
		s.frags = newFragCache(cfg.DeltaFragments)
	}
	if cfg.FlightSpans > 0 {
		s.flight = obs.NewFlightRecorder(cfg.FlightSpans)
	}
	s.initStore()
	go s.dispatch()
	return s
}

// Close stops admission (further requests fail with ErrClosed), drains
// every already-admitted request to completion, then flushes the
// write-behind persistence queue and stops the store goroutines — after
// Close returns no store write can happen. It is idempotent and safe to
// call concurrently.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.closing.Store(true)
		close(s.queue)
	}
	s.mu.Unlock()
	<-s.drained
	// Every run() has returned, so nothing can enqueue persistence work
	// anymore; the persister drains what is already queued and exits.
	s.storeOnce.Do(s.closeStore)
}

// shardFor maps a program fingerprint to its cache shard.
func (s *Server) shardFor(fp ir.Fingerprint) *idem.ProgramCache {
	return s.shards[binary.BigEndian.Uint64(fp[:8])%uint64(len(s.shards))]
}

// Label runs the labeling pipeline on the request's program and returns
// the deterministic response document.
func (s *Server) Label(ctx context.Context, req Request) ([]byte, error) {
	req.Op = OpLabel
	return s.Do(ctx, req)
}

// Simulate labels the request's program and executes it under the
// sequential, HOSE and CASE models, returning the deterministic response
// document.
func (s *Server) Simulate(ctx context.Context, req Request) ([]byte, error) {
	req.Op = OpSimulate
	return s.Do(ctx, req)
}

// Batch submits every request concurrently and returns the per-item
// responses and errors, in request order. Item failures are independent:
// one bad program does not fail its neighbours.
func (s *Server) Batch(ctx context.Context, reqs []Request) ([][]byte, []error) {
	s.metrics.batchCalls.Add(1)
	resps := make([][]byte, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = s.Do(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	return resps, errs
}

// Do validates and admits one request, waits for its computation and
// returns the response bytes. Identical in-flight requests coalesce onto
// one computation when the server was configured with Coalesce.
func (s *Server) Do(ctx context.Context, req Request) ([]byte, error) {
	resp, _, err := s.DoTraced(ctx, req)
	return resp, err
}

// outcomeOf classifies a request error for the flight recorder.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrBadRequest):
		return "bad_request"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrClosed):
		return "closed"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return "error"
}

// finishSpan commits a request span to the flight recorder and returns
// its trace ID (0 when recording is off). The span is the caller's stack
// value; nothing here retains a pointer to it.
func (s *Server) finishSpan(fl *obs.FlightRecorder, sp *obs.Span, err error) uint64 {
	if fl == nil {
		return 0
	}
	sp.End(outcomeOf(err))
	fl.Record(*sp)
	return sp.TraceID
}

// DoTraced is Do plus the request's flight-recorder trace ID (0 when the
// recorder is disabled; see Config.FlightSpans). The HTTP layer echoes
// the ID as X-Refidem-Trace-Id so a response can be matched to its span
// on /debug/tracez. Responses are byte-identical with recording on or
// off — spans carry timings about the bytes, never into them.
func (s *Server) DoTraced(ctx context.Context, req Request) ([]byte, uint64, error) {
	start := time.Now()
	fl := s.flight
	var sp obs.Span
	if fl != nil {
		sp = obs.Begin(req.Op)
		sp.TraceID = fl.NextID()
	}
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	switch req.Op {
	case OpLabel:
		s.metrics.labelRequests.Add(1)
	case OpSimulate:
		s.metrics.simulateRequests.Add(1)
	default:
		s.metrics.badRequests.Add(1)
		err := fmt.Errorf("%w: unknown op %q (want %q or %q)", ErrBadRequest, req.Op, OpLabel, OpSimulate)
		return nil, s.finishSpan(fl, &sp, err), err
	}
	if s.closing.Load() {
		return nil, s.finishSpan(fl, &sp, ErrClosed), ErrClosed
	}
	// Structural validation runs before the response-cache lookup: the
	// cache keys on one program selector, so a malformed request (several
	// selectors set, or bad parameters) could otherwise collide with a
	// cached valid request and be accepted or rejected depending on
	// cache warmth.
	selectors := 0
	for _, set := range []bool{req.Program != "", req.Example != "", req.Base != ""} {
		if set {
			selectors++
		}
	}
	if selectors > 1 {
		s.metrics.badRequests.Add(1)
		err := fmt.Errorf("%w: use exactly one of program, example or base", ErrBadRequest)
		return nil, s.finishSpan(fl, &sp, err), err
	}
	if len(req.Patches) > 0 && req.Base == "" {
		s.metrics.badRequests.Add(1)
		err := fmt.Errorf("%w: patches require a base fingerprint", ErrBadRequest)
		return nil, s.finishSpan(fl, &sp, err), err
	}
	if req.Procs < 0 || req.Capacity < 0 {
		s.metrics.badRequests.Add(1)
		err := fmt.Errorf("%w: procs and capacity must be non-negative", ErrBadRequest)
		return nil, s.finishSpan(fl, &sp, err), err
	}
	if fl != nil {
		sp.Lap(obs.StageAdmission) // validation is part of admission
	}
	var rk respKey
	if s.resp != nil {
		rk = respKeyOf(req)
		resp, ok := s.resp.get(rk)
		if fl != nil {
			sp.Lap(obs.StageRespCache)
		}
		if ok {
			// Fast path: the identical request was answered before; its
			// bytes are exact by the determinism guarantee, no parse or
			// queue trip needed. Only successful responses are cached, so
			// unparseable or unknown-program requests always fall through
			// to full resolution below.
			s.metrics.respHits.Add(1)
			s.metrics.observeLatency(time.Since(start))
			if fl != nil {
				sp.Source = "resp_cache"
			}
			return resp, s.finishSpan(fl, &sp, nil), nil
		}
	}
	prog, err := s.resolveRequest(req)
	if err != nil {
		s.metrics.badRequests.Add(1)
		if !errors.Is(err, ErrUnknownBase) {
			err = fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return nil, s.finishSpan(fl, &sp, err), err
	}
	if fl != nil {
		sp.Lap(obs.StageSingleflight) // program resolution (parse/example)
	}

	t, coalesced, err := s.admit(req, prog)
	if err != nil {
		return nil, s.finishSpan(fl, &sp, err), err
	}
	if fl != nil {
		sp.Lap(obs.StageAdmission)
		sp.Coalesced = coalesced
		sp.Fingerprint = t.key.fp
		sp.HasFingerprint = true
	}
	select {
	case <-t.done:
	case <-ctx.Done():
		// The computation still completes for any coalesced waiters; this
		// caller alone abandons it. A deadline that came from the server's
		// own RequestTimeout maps to the typed ErrTimeout (HTTP 504) so a
		// stuck compute cannot hold an HTTP worker forever. The abandoned
		// task's span fields are still being written — only the immutable
		// key is safe to touch here.
		if s.cfg.RequestTimeout > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.metrics.timeouts.Add(1)
			err := fmt.Errorf("%w after %v", ErrTimeout, s.cfg.RequestTimeout)
			return nil, s.finishSpan(fl, &sp, err), err
		}
		return nil, s.finishSpan(fl, &sp, ctx.Err()), ctx.Err()
	}
	s.metrics.observeLatency(time.Since(start))
	if fl != nil {
		sp.Lap(obs.StageSingleflight) // the wait on the shared computation
		sp.Stages[obs.StageStoreRead] += t.spanStoreRead
		sp.Stages[obs.StageCompute] += t.spanCompute
		sp.Stages[obs.StageStoreWrite] += t.spanStoreWrite
		sp.Source = t.src
	}
	if t.err != nil {
		return nil, s.finishSpan(fl, &sp, t.err), t.err
	}
	if s.resp != nil {
		s.resp.put(rk, t.resp)
	}
	return t.resp, s.finishSpan(fl, &sp, nil), nil
}

// admit coalesces the request onto an in-flight task (reported by the
// second return) or enqueues a new one, applying backpressure when the
// queue is full.
func (s *Server) admit(req Request, prog *ir.Program) (*task, bool, error) {
	key := taskKey{op: req.Op, fp: ir.FingerprintOf(prog), deps: req.Deps,
		procs: req.Procs, capacity: req.Capacity}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if s.cfg.Coalesce {
		if t, ok := s.inflight[key]; ok {
			s.metrics.coalesced.Add(1)
			return t, true, nil
		}
	}
	t := &task{key: key, prog: prog, delta: req.Base != "", done: make(chan struct{})}
	select {
	case s.queue <- t:
	default:
		s.metrics.overloaded.Add(1)
		return nil, false, ErrOverloaded
	}
	if s.cfg.Coalesce {
		s.inflight[key] = t
	}
	return t, false, nil
}

// dispatch drains the admission queue in bounded batches, handing each
// batch to an internal/parallel worker pool. Up to Workers batches run
// concurrently (each bounded by the shared worker-slot pool, so total
// task concurrency never exceeds Workers); holding a batch slot *before*
// receiving from the queue keeps backpressure honest — when every slot is
// busy, admitted tasks accumulate in the bounded queue and overflow to
// ErrOverloaded instead of piling into unbounded launched-but-waiting
// batches. dispatch exits — signalling drained — once Close has closed
// the queue and every admitted task has completed.
func (s *Server) dispatch() {
	defer close(s.drained)
	batchSlots := make(chan struct{}, s.cfg.Workers)
	workerSlots := make(chan struct{}, s.cfg.Workers)
	var batches sync.WaitGroup
	defer batches.Wait()
	for {
		batchSlots <- struct{}{}
		t, ok := <-s.queue
		if !ok {
			<-batchSlots
			return
		}
		batch := make([]*task, 1, s.cfg.MaxBatch)
		batch[0] = t
		closed := false
		for len(batch) < s.cfg.MaxBatch && !closed {
			select {
			case t, ok := <-s.queue:
				if !ok {
					closed = true
					break
				}
				batch = append(batch, t)
			default:
				closed = true // queue momentarily empty: dispatch what we have
			}
		}
		s.metrics.batches.Add(1)
		s.metrics.batchTasks.Add(int64(len(batch)))
		batches.Add(1)
		go func(batch []*task) {
			defer batches.Done()
			defer func() { <-batchSlots }()
			// Worker panics are converted to task errors inside run, so
			// the pool's own panic propagation never fires here; the
			// background context keeps the pool draining even while Close
			// waits.
			parallel.ForEachCtx(context.Background(), len(batch), s.cfg.Workers, func(i int) {
				workerSlots <- struct{}{}
				defer func() { <-workerSlots }()
				s.run(batch[i])
			})
		}(batch)
	}
}

// run executes one task, publishes its response or error, and retires it
// from the coalescing table.
func (s *Server) run(t *task) {
	defer func() {
		if r := recover(); r != nil {
			t.err = fmt.Errorf("service: internal panic: %v", r)
		}
		s.mu.Lock()
		if s.inflight[t.key] == t {
			delete(s.inflight, t.key)
		}
		s.mu.Unlock()
		close(t.done)
	}()
	flight := s.flight != nil
	var lap time.Time
	if flight {
		lap = time.Now()
	}
	// The persistent tier answers before any compute: a warm-start or
	// store hit is byte-identical to the cold compute by the determinism
	// guarantee, so serving it is exact — the paper's thesis (idempotent
	// work may be skipped) applied to the analysis itself.
	if resp := s.storeLookup(t.key); resp != nil {
		t.resp = resp
		if flight {
			t.spanStoreRead = time.Since(lap).Nanoseconds()
			t.src = "store"
		}
		return
	}
	if flight {
		now := time.Now()
		t.spanStoreRead = now.Sub(lap).Nanoseconds()
		lap = now
	}
	s.metrics.computed.Add(1)
	s.compute(t)
	if t.err == nil {
		// The resolved program becomes addressable as a delta base — for
		// delta tasks too, so edits can chain base → patched → re-patched.
		s.registerBase(t.key.fp, t.prog)
	}
	if flight {
		now := time.Now()
		t.spanCompute = now.Sub(lap).Nanoseconds()
		lap = now
		t.src = "compute"
	}
	if t.err == nil && t.resp != nil {
		s.persistAsync(t.key, t.resp)
	}
	if flight {
		t.spanStoreWrite = time.Since(lap).Nanoseconds()
	}
}

// compute produces one task's response bytes. Delta label tasks go
// through the per-region fragment path (see delta.go); everything else
// labels the whole program through its cache shard and renders.
func (s *Server) compute(t *task) {
	if t.delta && t.key.op == OpLabel {
		t.resp, t.err = s.labelDelta(t.key, t.prog)
		return
	}
	shard := s.shardFor(t.key.fp)
	// The shard canonicalizes: identical programs share one labeled
	// program, so response rendering below sees identical inputs and the
	// response bytes are identical too.
	prog, labs, err := shard.Labeled(t.prog)
	if err != nil {
		t.err = fmt.Errorf("%w: %v", ErrBadRequest, err)
		return
	}
	switch t.key.op {
	case OpLabel:
		t.resp, t.err = renderLabelResponse(t.key.fp, prog, labs, t.key.deps)
		if t.err == nil {
			// Seed the fragment cache so a later delta against this
			// program reuses its unchanged regions.
			s.populateFragments(prog, labs)
		}
	case OpSimulate:
		cfg := s.cfg.Engine
		if t.key.procs > 0 {
			cfg.Processors = t.key.procs
		}
		if t.key.capacity > 0 {
			cfg.SpecCapacity = t.key.capacity
		}
		var tt traceTally
		t.resp, tt, t.err = renderSimulateResponse(t.key.fp, prog, labs, cfg)
		if t.err == nil {
			s.metrics.traceCompiled.Add(tt.compiled)
			s.metrics.traceBailouts.Add(tt.bailouts)
			s.metrics.guardElided.Add(tt.elided)
		}
	default:
		t.err = fmt.Errorf("%w: unknown op %q", ErrBadRequest, t.key.op)
	}
}

// CacheStats aggregates the detailed statistics of every shard.
func (s *Server) CacheStats() idem.CacheStats {
	var agg idem.CacheStats
	for _, shard := range s.shards {
		st := shard.DetailedStats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Entries += st.Entries
		agg.Pinned += st.Pinned
		agg.Capacity += st.Capacity
	}
	return agg
}

// Metrics exposes the server's counters (see Metrics for the fields).
func (s *Server) Metrics() *Metrics { return s.metrics }

// FlightRecorder exposes the request flight recorder (nil when
// Config.FlightSpans left recording disabled).
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight }
