package service

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"refidem/internal/workloads"
)

// TestTracedServerCounters runs a simulate request on a server with the
// trace JIT enabled and checks the observability surface: /metricz gains
// live trace counters and /healthz reports tracing on. The response
// itself must still verify (live-outs equal sequential) — tracing is an
// execution strategy, not a result change.
func TestTracedServerCounters(t *testing.T) {
	spec, ok := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	if !ok {
		t.Fatal("TOMCATV MAIN_DO80 missing")
	}
	cfg := testConfig()
	cfg.Engine.Traced = true
	s := New(cfg)
	defer s.Close()

	resp, err := s.Simulate(context.Background(), Request{Program: spec.Src})
	if err != nil {
		t.Fatal(err)
	}
	var doc SimulateResponse
	if err := json.Unmarshal(resp, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Verified {
		t.Error("traced simulate response not verified")
	}

	snap := s.Metrics().SnapshotNow()
	if snap.TraceCompiled == 0 {
		t.Error("trace JIT compiled nothing on a hot-loop program")
	}
	if snap.GuardElided == 0 {
		t.Error("CASE trace elided no guards on TOMCATV (idempotent refs abound)")
	}
	out := s.RenderMetricz()
	for _, name := range []string{"trace_compiled ", "trace_bailouts ", "guard_elided "} {
		if !strings.Contains(out, name) {
			t.Errorf("metricz missing %q:\n%s", name, out)
		}
	}
	if strings.Contains(out, "trace_compiled 0\n") {
		t.Error("metricz reports trace_compiled 0 after a traced simulate")
	}
	if !s.Health().Tracing {
		t.Error("healthz does not report tracing enabled")
	}
}

// TestUntracedServerCountersZero pins the default: no tracing flag, no
// trace activity, healthz says so.
func TestUntracedServerCountersZero(t *testing.T) {
	spec, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	s := New(testConfig())
	defer s.Close()
	if _, err := s.Simulate(context.Background(), Request{Program: spec.Src}); err != nil {
		t.Fatal(err)
	}
	out := s.RenderMetricz()
	for _, want := range []string{"trace_compiled 0\n", "trace_bailouts 0\n", "guard_elided 0\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("metricz missing %q on an untraced server", want)
		}
	}
	if s.Health().Tracing {
		t.Error("healthz reports tracing on an untraced server")
	}
}
