package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/store"
)

// storeTestConfig is testConfig plus a filesystem store at dir.
func storeTestConfig(t *testing.T, backend store.Backend) Config {
	t.Helper()
	cfg := testConfig()
	cfg.Store = backend
	cfg.StoreQueueDepth = 64
	return cfg
}

// waitFor polls cond until it holds or the deadline trips.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWarmStartServesPersistedBytes is the durability round trip: a server
// computes and persists, a second server on the same directory answers the
// same requests byte-identically from the warm-start index without a
// single pipeline compute.
func TestWarmStartServesPersistedBytes(t *testing.T) {
	dir := t.TempDir()
	st1, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{Op: OpLabel, Example: "fig2", Deps: true},
		{Op: OpSimulate, Example: "fig1", Procs: 4},
	}
	s1 := New(storeTestConfig(t, st1))
	ctx := context.Background()
	want := make([][]byte, len(reqs))
	for i, r := range reqs {
		if want[i], err = s1.Do(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close() // flushes the write-behind queue
	if got := s1.Metrics().SnapshotNow().StoreWrites; got != int64(len(reqs)) {
		t.Fatalf("store writes = %d, want %d", got, len(reqs))
	}
	st1.Close()

	st2, stats, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Valid != len(reqs) || stats.Quarantined != 0 {
		t.Fatalf("recovery stats = %v, want %d valid", stats, len(reqs))
	}
	s2 := New(storeTestConfig(t, st2))
	defer s2.Close()
	if h := s2.Health(); h.StoreWarmEntries != int64(len(reqs)) {
		t.Fatalf("warm entries = %d, want %d", h.StoreWarmEntries, len(reqs))
	}
	for i, r := range reqs {
		got, err := s2.Do(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("request %d: warm-restart response differs from cold-computed bytes", i)
		}
	}
	snap := s2.Metrics().SnapshotNow()
	if snap.Computed != 0 {
		t.Errorf("computed = %d, want 0 (warm restart must not recompute)", snap.Computed)
	}
	if snap.StoreWarmHits != int64(len(reqs)) {
		t.Errorf("warm hits = %d, want %d", snap.StoreWarmHits, len(reqs))
	}
	if h := s2.Health(); h.StoreWarmHits != int64(len(reqs)) || h.StoreWarmEntries != 0 {
		t.Errorf("health after serving = %+v, want all warm entries drained", h)
	}
}

// TestRuntimeStoreHit: the warm-start index is a one-shot snapshot; later
// identical tasks (with the response cache disabled so they re-enter the
// queue) are answered by a backend read, still with zero computes.
func TestRuntimeStoreHit(t *testing.T) {
	dir := t.TempDir()
	st1, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Op: OpLabel, Example: "fig3"}
	s1 := New(storeTestConfig(t, st1))
	want, err := s1.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	st1.Close()

	st2, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeTestConfig(t, st2)
	cfg.ResponseCache = -1 // force every repeat back through the queue
	s2 := New(cfg)
	defer s2.Close()
	for i := 0; i < 2; i++ {
		got, err := s2.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("request %d: store-served response differs", i)
		}
	}
	snap := s2.Metrics().SnapshotNow()
	if snap.Computed != 0 {
		t.Errorf("computed = %d, want 0", snap.Computed)
	}
	if snap.StoreWarmHits != 1 || snap.StoreHits != 1 {
		t.Errorf("warm/runtime hits = %d/%d, want 1/1", snap.StoreWarmHits, snap.StoreHits)
	}
}

// TestDegradedModeAndRecovery: a backend write fault degrades the store,
// requests keep succeeding memory-only, the health document reports the
// state, and the probe loop restores the store once the fault heals.
func TestDegradedModeAndRecovery(t *testing.T) {
	f := store.NewFaultFS()
	st, _, err := store.OpenWithFaults(t.TempDir(), f)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeTestConfig(t, st)
	cfg.StoreProbeInterval = 5 * time.Millisecond
	s := New(cfg)
	defer s.Close()
	ctx := context.Background()

	f.Arm(store.FaultENOSPC, 1)
	if _, err := s.Do(ctx, Request{Op: OpLabel, Example: "fig1"}); err != nil {
		t.Fatalf("request must not fail on a store fault: %v", err)
	}
	waitFor(t, "store to degrade", func() bool { return s.StoreStateNow() == StoreDegraded })
	if h := s.Health(); h.Status != "ok" || h.Store != "degraded" {
		t.Fatalf("health while degraded = %+v, want status ok / store degraded", h)
	}
	// Memory-only serving continues; the write for this compute is dropped.
	if _, err := s.Do(ctx, Request{Op: OpLabel, Example: "fig2"}); err != nil {
		t.Fatalf("degraded-mode request failed: %v", err)
	}
	out := s.RenderMetricz()
	for _, want := range []string{"store_enabled 1\n", "store_degraded 1\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("metricz while degraded missing %q", want)
		}
	}

	f.Heal()
	waitFor(t, "probe to recover the store", func() bool { return s.StoreStateNow() == StoreOK })
	snap := s.Metrics().SnapshotNow()
	if snap.StoreDegradedEvents != 1 || snap.StoreRecoveries != 1 {
		t.Errorf("degraded/recovered = %d/%d, want 1/1", snap.StoreDegradedEvents, snap.StoreRecoveries)
	}
	if snap.StoreWriteErrors == 0 {
		t.Error("write error counter = 0, want at least one")
	}
	// Post-recovery computes persist again.
	if _, err := s.Do(ctx, Request{Op: OpLabel, Example: "fig3"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-recovery write-behind", func() bool {
		return s.Metrics().SnapshotNow().StoreWrites >= 1
	})
}

// blockingBackend is a Backend double whose Put blocks until the gate
// opens, for racing Close against in-flight write-behind persistence.
type blockingBackend struct {
	gate      chan struct{}
	puts      atomic.Int64
	closedSrv atomic.Bool // set by the test after Server.Close returns
	lateWrite atomic.Bool
}

func (b *blockingBackend) Put(k store.Key, data []byte) error {
	<-b.gate
	if b.closedSrv.Load() {
		b.lateWrite.Store(true)
	}
	b.puts.Add(1)
	return nil
}
func (b *blockingBackend) Get(k store.Key) ([]byte, error)          { return nil, store.ErrNotFound }
func (b *blockingBackend) Scan(func(store.Key, []byte) error) error { return nil }
func (b *blockingBackend) Probe() error                             { return nil }
func (b *blockingBackend) Quarantined() int64                       { return 0 }
func (b *blockingBackend) Close() error                             { return nil }

// TestCloseRacesWriteBehind: Close must wait for the in-flight write-behind
// record, flush everything already queued, and leave no persistence write
// happening after it returns — with the store goroutines gone.
func TestCloseRacesWriteBehind(t *testing.T) {
	base := runtime.NumGoroutine()
	b := &blockingBackend{gate: make(chan struct{})}
	s := New(storeTestConfig(t, b))
	ctx := context.Background()
	for _, ex := range []string{"fig1", "fig2", "fig3"} {
		if _, err := s.Do(ctx, Request{Op: OpLabel, Example: ex}); err != nil {
			t.Fatal(err)
		}
	}

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a write-behind record was still being persisted")
	case <-time.After(20 * time.Millisecond):
	}
	close(b.gate)
	<-closed
	b.closedSrv.Store(true)

	if got := b.puts.Load(); got != 3 {
		t.Errorf("persisted writes = %d, want 3 (queue flushed before Close returned)", got)
	}
	select {
	case <-s.persistDone:
	default:
		t.Error("persist goroutine still running after Close")
	}
	time.Sleep(10 * time.Millisecond)
	if b.lateWrite.Load() {
		t.Error("a store write completed after Close returned")
	}
	if got := b.puts.Load(); got != 3 {
		t.Errorf("writes grew to %d after Close", got)
	}
	s.Close() // idempotent, must not panic or block
	waitFor(t, "store goroutines to exit", func() bool {
		return runtime.NumGoroutine() <= base
	})
}

// TestRequestTimeout: a stuck compute trips the configured per-request
// deadline, surfaces as the typed ErrTimeout in-process and as 504 over
// HTTP, and bumps the dedicated counter.
func TestRequestTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.RequestTimeout = 30 * time.Millisecond
	s := New(cfg)

	release := make(chan struct{})
	restore := idem.SetTestComputeHook(func(p *ir.Program) {
		if strings.HasPrefix(p.Name, "svc_slow") {
			<-release
		}
	})
	defer restore()
	slow := func(name string) string {
		return strings.Replace(testProgramSrc, "program svc_test", "program "+name, 1)
	}

	_, err := s.Label(context.Background(), Request{Program: slow("svc_slow_a")})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := s.Metrics().SnapshotNow().Timeouts; got != 1 {
		t.Errorf("timeout counter = %d, want 1", got)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/label", "application/json",
		strings.NewReader(`{"program":`+mustJSON(slow("svc_slow_b"))+`}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("HTTP status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("504 body %q does not mention the deadline", body)
	}
	if !strings.Contains(s.RenderMetricz(), "requests_timeout 2\n") {
		t.Error("metricz does not count both timeouts")
	}

	close(release) // unblock the abandoned computes so Close can drain
	s.Close()
	// The computes completed for the record; a fresh server answers fast.
	if _, err := New(testConfig()).Label(context.Background(), Request{Program: slow("svc_slow_c")}); err != nil {
		t.Fatal(err)
	}
}

func mustJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestHealthDocument covers the /healthz JSON body in every store state.
func TestHealthDocument(t *testing.T) {
	plain := New(testConfig())
	defer plain.Close()
	ts := httptest.NewServer(plain.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("healthz content type = %q", ct)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz body is not a Health document: %v", err)
	}
	if h.Status != "ok" || h.Store != "disabled" {
		t.Errorf("memory-only health = %+v, want status ok / store disabled", h)
	}

	st, _, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	withStore := New(storeTestConfig(t, st))
	defer withStore.Close()
	if h := withStore.Health(); h.Store != "ok" {
		t.Errorf("store-backed health = %+v, want store ok", h)
	}
}
