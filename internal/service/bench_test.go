package service

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"refidem/internal/gen"
	"refidem/internal/lang"
)

// benchSources returns n distinct generated program sources: the request
// mix a serving benchmark rotates through. Deterministic per (seed, n).
func benchSources(n int) []string {
	profiles := gen.Profiles()
	out := make([]string, n)
	for i := range out {
		sc := gen.FromProfile(profiles[i%len(profiles)], int64(1000+i))
		out[i] = sc.Program.Format()
	}
	return out
}

// BenchmarkServiceLabelThroughput measures end-to-end label request
// throughput under full parallelism — parse, fingerprint, shard lookup,
// queue, response render — over a rotation of 8 distinct programs, with
// the coalescing/batching queue on and off. ns/op is the per-request
// wall cost at saturation; the CI gate holds both modes.
func BenchmarkServiceLabelThroughput(b *testing.B) {
	for _, coalesce := range []bool{true, false} {
		b.Run(fmt.Sprintf("coalesce=%v", coalesce), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Coalesce = coalesce
			cfg.QueueDepth = 1 << 16
			cfg.ResponseCache = -1 // measure the queue path, not byte replay
			s := New(cfg)
			defer s.Close()
			srcs := benchSources(8)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					req := Request{Program: srcs[i%len(srcs)]}
					i++
					for {
						_, err := s.Label(ctx, req)
						if err == nil {
							break
						}
						if errors.Is(err, ErrOverloaded) {
							continue // backpressure working as intended: retry
						}
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			snap := s.Metrics().SnapshotNow()
			if snap.LabelRequests > 0 {
				b.ReportMetric(float64(snap.Coalesced)/float64(snap.LabelRequests), "coalesced/req")
			}
			cs := s.CacheStats()
			if lookups := cs.Hits + cs.Misses; lookups > 0 {
				b.ReportMetric(100*float64(cs.Hits)/float64(lookups), "cache-hit%")
			}
		})
	}
}

// BenchmarkServiceLabelSerial measures the single-caller steady state —
// every request after the first is answered from the response byte cache
// (hash the request, one LRU lookup, return the shared bytes) — with
// deterministic allocation counts, so the gate's allocs/op check applies
// cleanly.
func BenchmarkServiceLabelSerial(b *testing.B) {
	s := New(DefaultConfig())
	defer s.Close()
	src := benchSources(1)[0]
	ctx := context.Background()
	if _, err := s.Label(ctx, Request{Program: src}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Label(ctx, Request{Program: src}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if snap := s.Metrics().SnapshotNow(); snap.Computed != 1 {
		b.Fatalf("computed = %d, want 1 (steady state must be pure response hits)", snap.Computed)
	}
}

// BenchmarkServiceLabelTracedOff is BenchmarkServiceLabelSerial with the
// default (disabled) flight recorder made explicit: its alloc gate proves
// the recorder's off-path adds zero allocations to the response-cache hot
// path — DoTraced with a nil recorder must cost one pointer check.
func BenchmarkServiceLabelTracedOff(b *testing.B) {
	cfg := DefaultConfig()
	cfg.FlightSpans = 0
	s := New(cfg)
	defer s.Close()
	src := benchSources(1)[0]
	ctx := context.Background()
	if _, err := s.Label(ctx, Request{Program: src}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.DoTraced(ctx, Request{Op: OpLabel, Program: src}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if snap := s.Metrics().SnapshotNow(); snap.Computed != 1 {
		b.Fatalf("computed = %d, want 1 (steady state must be pure response hits)", snap.Computed)
	}
}

// BenchmarkServiceSimulateThroughput measures simulate request throughput
// (label + three engine runs + live-out verification per distinct
// program; coalescing collapses concurrent duplicates).
func BenchmarkServiceSimulateThroughput(b *testing.B) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 1 << 16
	cfg.ResponseCache = -1
	s := New(cfg)
	defer s.Close()
	srcs := benchSources(4)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := Request{Program: srcs[i%len(srcs)]}
			i++
			for {
				_, err := s.Simulate(ctx, req)
				if err == nil {
					break
				}
				if errors.Is(err, ErrOverloaded) {
					continue
				}
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServiceLabelDelta measures the steady-state delta path with
// the response byte cache off: resolve the base from the registry, apply
// the patch, parse and analyze the composed program, and serve every
// region from the fragment cache (the warm-up request re-labeled the
// patched region; iterations reuse it). This is the cost a client pays
// for an incremental edit versus BenchmarkServiceLabelThroughput's full
// pipeline. Single caller, so the allocs gate is exact.
func BenchmarkServiceLabelDelta(b *testing.B) {
	cfg := DefaultConfig()
	cfg.ResponseCache = -1 // measure the delta path, not byte replay
	s := New(cfg)
	defer s.Close()
	ctx := context.Background()

	src := benchSources(1)[0]
	p, err := lang.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Label(ctx, Request{Program: src}); err != nil {
		b.Fatal(err)
	}
	req := Request{Base: fpHexOf(b, src), Patches: []RegionPatch{mutateFirstRegion(b, src, p)}}
	if _, err := s.Label(ctx, req); err != nil {
		b.Fatal(err) // warm-up: re-labels the patched region once
	}
	relabeledWarm := s.Metrics().SnapshotNow().RegionsRelabeled

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Label(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if snap := s.Metrics().SnapshotNow(); snap.RegionsRelabeled != relabeledWarm {
		b.Fatalf("relabeled grew %d -> %d: steady state must be pure fragment reuse",
			relabeledWarm, snap.RegionsRelabeled)
	}
}
