package service

// Delta re-labeling: a client that already analyzed a program may submit
// its fingerprint plus region-level patches instead of the full source.
// The server resolves the request by applying the patches to the
// registered base source, then labels the resolved program region by
// region: a region whose analysis fingerprint (ir.RegionFingerprintOf —
// structure, procedure table, referenced dimensions, live-out bits) is
// unchanged reuses its cached, already-rendered response fragment; only
// regions the edit actually touched (directly, through a procedure, or
// through shifted inter-region liveness) are re-labeled. Fragments are
// rendered by the same renderRegionLabeling body as the full path, so a
// delta response is byte-identical to the full re-label by construction
// — the property the delta-equivalence tests pin.

import (
	"container/list"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"refidem/internal/dataflow"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/lang"
)

// baseRegistry is a bounded LRU of fingerprint → canonical source for
// programs the server has analyzed; delta requests resolve against it.
// Entries are registered on the compute path (run), so the registry only
// holds programs that labeled successfully.
type baseRegistry struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	order *list.List // front = most recently used; values are *baseEntry
}

type baseEntry struct{ fp, src string }

func newBaseRegistry(capacity int) *baseRegistry {
	return &baseRegistry{cap: capacity, m: make(map[string]*list.Element), order: list.New()}
}

func (b *baseRegistry) get(fp string) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	el, ok := b.m[fp]
	if !ok {
		return "", false
	}
	b.order.MoveToFront(el)
	return el.Value.(*baseEntry).src, true
}

func (b *baseRegistry) put(fp, src string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.m[fp]; ok {
		b.order.MoveToFront(el)
		el.Value.(*baseEntry).src = src
		return
	}
	b.m[fp] = b.order.PushFront(&baseEntry{fp: fp, src: src})
	for b.order.Len() > b.cap {
		victim := b.order.Back()
		b.order.Remove(victim)
		delete(b.m, victim.Value.(*baseEntry).fp)
	}
}

func (b *baseRegistry) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.order.Len()
}

// fragCache is a bounded LRU of region analysis fingerprint → rendered
// RegionLabeling fragment. Fragments are value structs rendered with the
// dependence list included (stripDeps removes it per request), shared
// across programs: any region anywhere with the same fingerprint reuses
// the row.
type fragCache struct {
	mu    sync.Mutex
	cap   int
	m     map[ir.Fingerprint]*list.Element
	order *list.List // values are *fragEntry
}

type fragEntry struct {
	key ir.Fingerprint
	row RegionLabeling
}

func newFragCache(capacity int) *fragCache {
	return &fragCache{cap: capacity, m: make(map[ir.Fingerprint]*list.Element), order: list.New()}
}

func (c *fragCache) get(k ir.Fingerprint) (RegionLabeling, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return RegionLabeling{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*fragEntry).row, true
}

func (c *fragCache) put(k ir.Fingerprint, row RegionLabeling) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.order.MoveToFront(el)
		el.Value.(*fragEntry).row = row
		return
	}
	c.m[k] = c.order.PushFront(&fragEntry{key: k, row: row})
	for c.order.Len() > c.cap {
		victim := c.order.Back()
		c.order.Remove(victim)
		delete(c.m, victim.Value.(*fragEntry).key)
	}
}

func (c *fragCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// resolveRequest resolves the request's program: delta requests (Base
// set) compose the registered base source with the patches; everything
// else goes through the stateless resolveProgram. A base the registry no
// longer holds fails with ErrUnknownBase — the caller serves it as 404
// and the client falls back to the full program.
func (s *Server) resolveRequest(req Request) (*ir.Program, error) {
	if req.Base == "" {
		return resolveProgram(req)
	}
	s.metrics.deltaRequests.Add(1)
	if s.bases == nil {
		s.metrics.deltaUnknownBase.Add(1)
		return nil, fmt.Errorf("%w: %s (delta serving disabled)", ErrUnknownBase, req.Base)
	}
	src, ok := s.bases.get(req.Base)
	if !ok {
		s.metrics.deltaUnknownBase.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrUnknownBase, req.Base)
	}
	composed, err := applyPatches(src, req.Patches)
	if err != nil {
		return nil, err
	}
	return lang.Parse(composed)
}

// registerBase records a successfully analyzed program's canonical source
// under its fingerprint, making it available as a delta base. Called on
// the compute path only — the per-request fast paths never pay the
// Format.
func (s *Server) registerBase(fp ir.Fingerprint, p *ir.Program) {
	if s.bases == nil {
		return
	}
	s.bases.put(hex.EncodeToString(fp[:]), p.Format())
}

// regionBlock is one region's canonical source text.
type regionBlock struct {
	name string
	text string
}

// splitSource splits canonical program source (ir.Program.Format output)
// into the header (program, var and proc lines) and the region blocks in
// order. The canonical format opens each region with a column-0
// "region NAME ..." line and closes it with a column-0 "}" line; nothing
// inside a region sits at column 0.
func splitSource(src string) (header string, blocks []regionBlock) {
	first := len(src)
	rest := src
	for off := 0; ; {
		i := strings.Index(rest, "region ")
		if i < 0 {
			break
		}
		if off+i == 0 || src[off+i-1] == '\n' {
			first = off + i
			break
		}
		rest = rest[i+1:]
		off += i + 1
	}
	header = src[:first]
	body := src[first:]
	for len(body) > 0 {
		end := strings.Index(body, "\n}\n")
		if end < 0 {
			// Malformed tail (cannot happen for canonical sources); keep it
			// attached so the parser reports it.
			blocks = append(blocks, regionBlock{name: regionNameOf(body), text: body})
			break
		}
		block := body[:end+3]
		blocks = append(blocks, regionBlock{name: regionNameOf(block), text: block})
		body = body[end+3:]
	}
	return header, blocks
}

// regionNameOf extracts the region name from a region block's first line.
func regionNameOf(block string) string {
	line := block
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) >= 2 && fields[0] == "region" {
		return fields[1]
	}
	return ""
}

// applyPatches composes a delta request's program source: each patch
// replaces the base region of the same name, or appends when the base has
// none. The composed source goes through the ordinary parser, so a patch
// referencing undeclared variables or procedures fails exactly like a
// full program would.
func applyPatches(src string, patches []RegionPatch) (string, error) {
	header, blocks := splitSource(src)
	for _, p := range patches {
		if p.Region == "" {
			return "", fmt.Errorf("patch with empty region name")
		}
		text := p.Source
		if !strings.HasSuffix(text, "\n") {
			text += "\n"
		}
		if name := regionNameOf(text); name != p.Region {
			return "", fmt.Errorf("patch for region %q carries source for region %q", p.Region, name)
		}
		replaced := false
		for i := range blocks {
			if blocks[i].name == p.Region {
				blocks[i].text = text
				replaced = true
				break
			}
		}
		if !replaced {
			blocks = append(blocks, regionBlock{name: p.Region, text: text})
		}
	}
	var b strings.Builder
	b.WriteString(header)
	for _, blk := range blocks {
		b.WriteString(blk.text)
	}
	return b.String(), nil
}

// labelDelta answers an OpLabel task for a delta-resolved program region
// by region: fragments cached under the region's analysis fingerprint are
// reused verbatim, the rest are re-labeled individually through the same
// pipeline body LabelProgram uses. The document is assembled from the
// same renderRegionLabeling fragments as the full path, so the response
// bytes are identical to a full re-label.
func (s *Server) labelDelta(key taskKey, prog *ir.Program) ([]byte, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	infos := dataflow.AnalyzeProgram(prog)
	doc := LabelResponse{
		Op:          OpLabel,
		Program:     prog.Name,
		Fingerprint: hex.EncodeToString(key.fp[:]),
		Regions:     make([]RegionLabeling, 0, len(prog.Regions)),
	}
	for _, r := range prog.Regions {
		info := infos[r]
		fk := ir.RegionFingerprintOf(prog, r, func(v *ir.Var) bool { return info.LiveOut(v) })
		var row RegionLabeling
		ok := false
		if s.frags != nil {
			row, ok = s.frags.get(fk)
		}
		if ok {
			s.metrics.regionsReused.Add(1)
		} else {
			res := idem.LabelRegionWithInfo(r, info)
			if errs := res.CheckTheorems(); len(errs) > 0 {
				return nil, fmt.Errorf("region %s: theorem check failed: %v", r.Name, errs[0])
			}
			row = renderRegionLabeling(r, res)
			if s.frags != nil {
				s.frags.put(fk, row)
			}
			s.metrics.regionsRelabeled.Add(1)
		}
		if !key.deps {
			row = stripDeps(row)
		}
		doc.Regions = append(doc.Regions, row)
	}
	return marshalResponse(doc)
}

// populateFragments caches the rendered fragment of every region of a
// fully labeled program, so a later delta against it reuses the unchanged
// regions. Runs on the compute path, after the response is rendered.
func (s *Server) populateFragments(p *ir.Program, labs map[*ir.Region]*idem.Result) {
	if s.frags == nil {
		return
	}
	for _, r := range p.Regions {
		res := labs[r]
		if res == nil || res.Info == nil {
			continue
		}
		fk := ir.RegionFingerprintOf(p, r, func(v *ir.Var) bool { return res.Info.LiveOut(v) })
		if _, ok := s.frags.get(fk); ok {
			continue
		}
		s.frags.put(fk, renderRegionLabeling(r, res))
	}
}
