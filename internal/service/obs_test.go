package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"refidem/internal/obs"
)

// TestFlightRecorderByteIdentity pins the tentpole invariant: the flight
// recorder must not change a single response byte. The same request
// sequence runs against a recording and a non-recording server and every
// answer must match exactly, including repeats served by the response
// cache and the store-less compute path.
func TestFlightRecorderByteIdentity(t *testing.T) {
	plain := New(testConfig())
	defer plain.Close()
	traced := New(func() Config { c := testConfig(); c.FlightSpans = 32; return c }())
	defer traced.Close()

	reqs := []Request{
		{Op: OpLabel, Example: "fig2"},
		{Op: OpSimulate, Example: "fig2"},
		{Op: OpLabel, Program: testProgramSrc},
		{Op: OpLabel, Example: "fig2"}, // response-cache repeat
		{Op: OpSimulate, Example: "intro", Procs: 2},
	}
	for i, req := range reqs {
		a, err1 := plain.Do(context.Background(), req)
		b, tid, err2 := traced.DoTraced(context.Background(), req)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("req %d: error divergence: %v vs %v", i, err1, err2)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("req %d: response bytes differ with flight recording on", i)
		}
		if tid == 0 {
			t.Fatalf("req %d: recording server returned trace ID 0", i)
		}
	}
	if got, _, _ := plain.DoTraced(context.Background(), Request{Op: OpLabel, Example: "fig2"}); got == nil {
		t.Fatal("DoTraced failed on the non-recording server")
	} else if _, tid, _ := plain.DoTraced(context.Background(), Request{Op: OpLabel, Example: "fig2"}); tid != 0 {
		t.Fatal("non-recording server handed out a trace ID")
	}
}

// TestFlightRecorderSpans checks the recorded spans carry the request's
// identity, outcome and source.
func TestFlightRecorderSpans(t *testing.T) {
	cfg := testConfig()
	cfg.FlightSpans = 16
	s := New(cfg)
	defer s.Close()

	if _, err := s.Label(context.Background(), Request{Example: "fig2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Label(context.Background(), Request{Example: "fig2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Label(context.Background(), Request{Example: "no_such_example"}); err == nil {
		t.Fatal("unknown example must fail")
	}

	spans := s.FlightRecorder().Snapshot()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	// Newest first: bad_request, resp_cache hit, compute.
	if spans[0].Outcome != "bad_request" || spans[0].HasFingerprint {
		t.Errorf("span 3 = %+v, want bad_request with no fingerprint", spans[0])
	}
	if spans[1].Outcome != "ok" || spans[1].Source != "resp_cache" {
		t.Errorf("span 2 = outcome %q source %q, want ok/resp_cache", spans[1].Outcome, spans[1].Source)
	}
	if spans[2].Outcome != "ok" || spans[2].Source != "compute" || !spans[2].HasFingerprint {
		t.Errorf("span 1 = %+v, want ok/compute with fingerprint", spans[2])
	}
	if spans[2].Op != "label" {
		t.Errorf("span 1 op = %q, want label", spans[2].Op)
	}
	if spans[2].Stages[obs.StageCompute] <= 0 {
		t.Errorf("computed span has no compute time: %v", spans[2].Stages)
	}
	if spans[1].Stages[obs.StageCompute] != 0 {
		t.Errorf("resp-cache span claims compute time: %v", spans[1].Stages)
	}
}

// TestTracezEndpoint drives the HTTP surface: the trace-ID header, the
// text table and the JSON document.
func TestTracezEndpoint(t *testing.T) {
	cfg := testConfig()
	cfg.FlightSpans = 16
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/label", "application/json",
		strings.NewReader(`{"example":"fig2"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tid := resp.Header.Get("X-Refidem-Trace-Id")
	if tid == "" {
		t.Fatal("no X-Refidem-Trace-Id header on a recorded request")
	}
	wantID, err := strconv.ParseUint(tid, 10, 64)
	if err != nil || wantID == 0 {
		t.Fatalf("bad trace id %q: %v", tid, err)
	}

	text, err := http.Get(ts.URL + "/debug/tracez")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(text.Body)
	text.Body.Close()
	if !strings.Contains(string(body), "label") || !strings.Contains(string(body), "ok") {
		t.Fatalf("tracez text lacks the recorded span:\n%s", body)
	}

	jr, err := http.Get(ts.URL + "/debug/tracez?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var doc tracezDoc
	if err := json.NewDecoder(jr.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if !doc.Enabled || doc.Capacity != 16 {
		t.Fatalf("tracez doc = enabled %v capacity %d, want true/16", doc.Enabled, doc.Capacity)
	}
	found := false
	for _, sp := range doc.Spans {
		if sp.TraceID == wantID {
			found = true
			if sp.Op != "label" || sp.Outcome != "ok" || sp.Fingerprint == "" {
				t.Fatalf("span %d = %+v, want ok label with fingerprint", wantID, sp)
			}
		}
	}
	if !found {
		t.Fatalf("span %d missing from tracez JSON: %+v", wantID, doc.Spans)
	}
}

// TestTracezDisabled pins the off-by-default rendering.
func TestTracezDisabled(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/label", "application/json",
		strings.NewReader(`{"example":"fig2"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get("X-Refidem-Trace-Id"); h != "" {
		t.Fatalf("disabled recorder still sent trace header %q", h)
	}
	text, _ := http.Get(ts.URL + "/debug/tracez")
	body, _ := io.ReadAll(text.Body)
	text.Body.Close()
	if !strings.Contains(string(body), "disabled") {
		t.Fatalf("tracez text should say disabled:\n%s", body)
	}
	jr, _ := http.Get(ts.URL + "/debug/tracez?format=json")
	var doc tracezDoc
	json.NewDecoder(jr.Body).Decode(&doc)
	jr.Body.Close()
	if doc.Enabled {
		t.Fatal("tracez JSON claims enabled on a disabled recorder")
	}
}

// TestTimelineEndpoint checks /v1/simulate?timeline=1: a valid,
// deterministic Chrome trace document with one process per speculative
// mode, counted under requests_timeline, leaving plain simulate answers
// untouched.
func TestTimelineEndpoint(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() []byte {
		resp, err := http.Post(ts.URL+"/v1/simulate?timeline=1", "application/json",
			strings.NewReader(`{"example":"fig2"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("timeline export: %d\n%s", resp.StatusCode, body)
		}
		return body
	}
	a, b := get(), get()
	if !bytes.Equal(a, b) {
		t.Fatal("timeline export is not deterministic")
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.Args.Name] = true
		}
	}
	if !procs["HOSE"] || !procs["CASE"] {
		t.Fatalf("trace processes = %v, want HOSE and CASE", procs)
	}

	if snap := s.Metrics().SnapshotNow(); snap.TimelineRequests != 2 {
		t.Fatalf("TimelineRequests = %d, want 2", snap.TimelineRequests)
	}
	if !strings.Contains(s.RenderMetricz(), "requests_timeline 2\n") {
		t.Fatal("metricz lacks requests_timeline")
	}

	// A plain simulate answer must be unaffected by timeline exports.
	resp, err := s.Simulate(context.Background(), Request{Example: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(testConfig())
	defer fresh.Close()
	want, err := fresh.Simulate(context.Background(), Request{Example: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, want) {
		t.Fatal("simulate response changed after timeline exports")
	}
}

func TestSimulateTimelineValidation(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	var buf bytes.Buffer
	err := s.SimulateTimeline(context.Background(), Request{Program: testProgramSrc, Example: "fig2"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "not both") {
		t.Fatalf("both selectors should fail validation, got %v", err)
	}
	if err := s.SimulateTimeline(context.Background(), Request{Example: "nope"}, &buf); err == nil {
		t.Fatal("unknown example should fail")
	}
	if buf.Len() != 0 {
		t.Fatal("failed exports must not write output")
	}
}

// TestSnapshotCoversEveryCounter is the satellite guard: every atomic
// counter on Metrics must surface in Snapshot (the bug being fixed:
// storeReadErrors, storeProbeFailures and storeWarmEntries silently
// missing from SnapshotNow).
func TestSnapshotCoversEveryCounter(t *testing.T) {
	atomicInt := reflect.TypeOf(atomic.Int64{})
	mt := reflect.TypeOf(Metrics{})
	st := reflect.TypeOf(Snapshot{})
	for i := 0; i < mt.NumField(); i++ {
		f := mt.Field(i)
		var want string
		switch {
		case f.Type == atomicInt:
			want = strings.ToUpper(f.Name[:1]) + f.Name[1:]
		case f.Name == "latency":
			want = "LatencyCount" // the histogram surfaces as its total
		default:
			continue
		}
		if _, ok := st.FieldByName(want); !ok {
			t.Errorf("Metrics.%s has no Snapshot field %s", f.Name, want)
		}
	}

	// Behavioral check for the three previously-dropped counters.
	m := newMetrics()
	m.storeReadErrors.Add(3)
	m.storeProbeFailures.Add(5)
	m.storeWarmEntries.Add(7)
	snap := m.SnapshotNow()
	if snap.StoreReadErrors != 3 || snap.StoreProbeFailures != 5 || snap.StoreWarmEntries != 7 {
		t.Fatalf("snapshot dropped store counters: %+v", snap)
	}
}
