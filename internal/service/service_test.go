package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"refidem/internal/engine"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/workloads"
)

// testConfig returns a small deterministic server configuration.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Shards = 4
	cfg.CacheCapacity = 8
	cfg.Workers = 2
	cfg.QueueDepth = 64
	cfg.MaxBatch = 8
	return cfg
}

const testProgramSrc = `program svc_test
var a[16]
var b[16]
region main loop k = 0 to 15 {
  a[k] = b[k] + 1
}
`

func TestLabelMatchesDirectPipeline(t *testing.T) {
	s := New(testConfig())
	defer s.Close()

	raw, err := s.Label(context.Background(), Request{Example: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	var doc LabelResponse
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	p := workloads.Figure2()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	labs := idem.LabelProgram(p)
	if doc.Program != p.Name {
		t.Errorf("program = %q, want %q", doc.Program, p.Name)
	}
	if len(doc.Regions) != len(p.Regions) {
		t.Fatalf("regions = %d, want %d", len(doc.Regions), len(p.Regions))
	}
	for ri, r := range p.Regions {
		res := labs[r]
		reg := doc.Regions[ri]
		if len(reg.Refs) != len(r.Refs) {
			t.Fatalf("region %s: %d refs, want %d", r.Name, len(reg.Refs), len(r.Refs))
		}
		for i, ref := range r.Refs {
			if reg.Refs[i].Label != res.Label(ref).String() {
				t.Errorf("region %s ref %d: label %q, want %q",
					r.Name, i, reg.Refs[i].Label, res.Label(ref))
			}
			if reg.Refs[i].Category != res.Category(ref).String() {
				t.Errorf("region %s ref %d: category %q, want %q",
					r.Name, i, reg.Refs[i].Category, res.Category(ref))
			}
		}
	}
}

func TestSimulateMatchesDirectEngine(t *testing.T) {
	s := New(testConfig())
	defer s.Close()

	raw, err := s.Simulate(context.Background(), Request{Example: "fig2", Procs: 8, Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	var doc SimulateResponse
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	p := workloads.Figure2()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	labs := idem.LabelProgram(p)
	cfg := engine.DefaultConfig()
	cfg.Processors = 8
	cfg.SpecCapacity = 64
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hose, err := engine.RunSpeculative(p, labs, cfg, engine.HOSE)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Processors != 8 || doc.SpecCapacity != 64 {
		t.Errorf("machine = %d procs / %d capacity, want 8/64", doc.Processors, doc.SpecCapacity)
	}
	if len(doc.Models) != 3 {
		t.Fatalf("models = %d, want 3", len(doc.Models))
	}
	if doc.Models[0].Cycles != seq.Cycles {
		t.Errorf("sequential cycles = %d, want %d", doc.Models[0].Cycles, seq.Cycles)
	}
	if doc.Models[1].Cycles != hose.Cycles {
		t.Errorf("HOSE cycles = %d, want %d", doc.Models[1].Cycles, hose.Cycles)
	}
	if !doc.Verified {
		t.Error("response not marked verified")
	}
}

// TestResponsesByteDeterministic is the acceptance-criteria guarantee:
// identical programs produce byte-identical responses — across repeated
// requests, across source-vs-repeat submissions, and across servers.
func TestResponsesByteDeterministic(t *testing.T) {
	cfg1 := testConfig()
	cfg1.ResponseCache = -1 // repeats on s1 must recompute, not replay bytes
	s1 := New(cfg1)
	defer s1.Close()
	s2 := New(testConfig())
	defer s2.Close()
	ctx := context.Background()

	for _, req := range []Request{
		{Op: OpLabel, Program: testProgramSrc, Deps: true},
		{Op: OpLabel, Example: "fig3"},
		{Op: OpSimulate, Example: "fig2", Procs: 4},
	} {
		first, err := s1.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			again, err := s1.Do(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, again) {
				t.Fatalf("op %s: response differs across repeated requests", req.Op)
			}
		}
		other, err := s2.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, other) {
			t.Fatalf("op %s: response differs across servers", req.Op)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ctx := context.Background()

	cases := []struct {
		name string
		req  Request
	}{
		{"unknown op", Request{Op: "mystery", Example: "fig1"}},
		{"no program", Request{Op: OpLabel}},
		{"both inputs", Request{Op: OpLabel, Program: testProgramSrc, Example: "fig1"}},
		{"unknown example", Request{Op: OpLabel, Example: "fig99"}},
		{"parse error", Request{Op: OpLabel, Program: "program broken\nregion {"}},
		{"negative procs", Request{Op: OpSimulate, Example: "fig1", Procs: -1}},
	}
	for _, tc := range cases {
		if _, err := s.Do(ctx, tc.req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
	}
	if got := s.Metrics().SnapshotNow().BadRequests; got != int64(len(cases)) {
		t.Errorf("bad request counter = %d, want %d", got, len(cases))
	}
}

func TestBatchMixedOpsAndErrors(t *testing.T) {
	s := New(testConfig())
	defer s.Close()

	reqs := []Request{
		{Op: OpLabel, Example: "fig2"},
		{Op: OpSimulate, Example: "fig1"},
		{Op: OpLabel, Example: "fig99"}, // bad item must not fail its neighbours
		{Op: OpLabel, Program: testProgramSrc},
	}
	resps, errs := s.Batch(context.Background(), reqs)
	if errs[0] != nil || errs[1] != nil || errs[3] != nil {
		t.Fatalf("unexpected item errors: %v", errs)
	}
	if !errors.Is(errs[2], ErrBadRequest) {
		t.Errorf("item 2 err = %v, want ErrBadRequest", errs[2])
	}
	solo, err := s.Label(context.Background(), Request{Example: "fig2"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resps[0], solo) {
		t.Error("batched label response differs from the solo response")
	}
	if got := s.Metrics().SnapshotNow().BatchCalls; got != 1 {
		t.Errorf("batch calls = %d, want 1", got)
	}
}

// TestCoalescingSingleCompute holds a computation in flight and verifies
// that concurrent identical requests attach to it instead of enqueueing
// their own tasks.
func TestCoalescingSingleCompute(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	s := New(cfg)
	defer s.Close()

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	restore := idem.SetTestComputeHook(func(p *ir.Program) {
		if p.Name == "svc_test" {
			entered <- struct{}{}
			<-release
		}
	})
	defer restore()

	const followers = 8
	results := make(chan error, followers+1)
	submit := func() {
		_, err := s.Label(context.Background(), Request{Program: testProgramSrc})
		results <- err
	}
	go submit()
	<-entered // the leader's compute is in flight
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); submit() }()
	}
	// Wait until every follower has coalesced onto the in-flight task.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().SnapshotNow().Coalesced < followers {
		if time.Now().After(deadline) {
			t.Fatalf("followers did not coalesce: %+v", s.Metrics().SnapshotNow())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i := 0; i < followers+1; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics().SnapshotNow()
	if snap.Computed != 1 {
		t.Errorf("computed = %d, want 1 (all requests share one task)", snap.Computed)
	}
	if snap.Coalesced != followers {
		t.Errorf("coalesced = %d, want %d", snap.Coalesced, followers)
	}
	if hits, misses := s.CacheStats().Hits, s.CacheStats().Misses; misses != 1 || hits != 0 {
		t.Errorf("cache hits/misses = %d/%d, want 0/1 (single compute)", hits, misses)
	}
}

// TestOverloadBackpressure fills the one-deep admission queue behind a
// blocked worker and verifies the typed rejection.
func TestOverloadBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.MaxBatch = 1
	cfg.Coalesce = false
	s := New(cfg)
	defer s.Close()

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	restore := idem.SetTestComputeHook(func(p *ir.Program) {
		if p.Name == "svc_test" {
			entered <- struct{}{}
			<-release
		}
	})
	defer restore()

	leader := make(chan error, 1)
	go func() {
		_, err := s.Label(context.Background(), Request{Program: testProgramSrc})
		leader <- err
	}()
	<-entered // worker busy; queue empty

	// Occupies the single queue slot behind the blocked worker.
	queued := make(chan error, 1)
	go func() {
		_, err := s.Label(context.Background(), Request{Example: "fig1"})
		queued <- err
	}()
	for len(s.queue) == 0 {
		time.Sleep(time.Millisecond)
	}

	if _, err := s.Label(context.Background(), Request{Example: "fig2"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := s.Metrics().SnapshotNow().Overloaded; got != 1 {
		t.Errorf("overloaded counter = %d, want 1", got)
	}
	close(release)
	if err := <-leader; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatal(err)
	}
}

// TestCloseDrainsInFlight verifies graceful shutdown: every admitted
// request completes with a real response, later submissions are refused.
func TestCloseDrainsInFlight(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.MaxBatch = 2
	cfg.Coalesce = false // duplicate examples below must each occupy a queue slot
	s := New(cfg)

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	restore := idem.SetTestComputeHook(func(p *ir.Program) {
		if p.Name == "svc_test" {
			select {
			case entered <- struct{}{}:
				<-release
			default:
			}
		}
	})
	defer restore()

	leader := make(chan error, 1)
	go func() {
		_, err := s.Label(context.Background(), Request{Program: testProgramSrc})
		leader <- err
	}()
	<-entered

	// Queue several distinct programs behind the blocked worker.
	const queued = 5
	examples := []string{"fig1", "fig2", "fig3", "buts", "fig1"}
	results := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func(i int) {
			_, err := s.Label(context.Background(), Request{Example: examples[i]})
			results <- err
		}(i)
	}
	for len(s.queue) < queued {
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	// Close must be blocked draining, not returning early.
	select {
	case <-closed:
		t.Fatal("Close returned while requests were still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-closed

	if err := <-leader; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < queued; i++ {
		if err := <-results; err != nil {
			t.Fatalf("drained request %d failed: %v", i, err)
		}
	}
	if _, err := s.Label(context.Background(), Request{Example: "fig1"}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close err = %v, want ErrClosed", err)
	}
}

// TestShardedSingleFlightUnderEviction extends the eviction-during-compute
// technique to the sharded path: M goroutines submitting the same program
// observe exactly one labeling compute even while cross-shard traffic of
// distinct programs applies eviction pressure to capacity-1 shards. Runs
// with -race in CI.
func TestShardedSingleFlightUnderEviction(t *testing.T) {
	const followers = 5 // same-program callers besides the leader
	cfg := testConfig()
	cfg.Shards = 4
	cfg.CacheCapacity = 1 // every shard evicts on its second program
	cfg.Coalesce = false  // the cache layer alone must single-flight
	cfg.Workers = followers + 3
	s := New(cfg)
	defer s.Close()

	var computes sync.Map // program name -> compute count
	hold := make(chan struct{})
	var holdOnce sync.Once
	entered := make(chan struct{}, 1)
	restore := idem.SetTestComputeHook(func(p *ir.Program) {
		n, _ := computes.LoadOrStore(p.Name, new(int64))
		// Counting is race-safe as long as single-flight holds: each
		// fingerprint computes under its entry's once.Do. If sharded
		// pinning ever broke, -race flags the duplicate compute here.
		*(n.(*int64))++
		if p.Name == "svc_test" {
			holdOnce.Do(func() {
				entered <- struct{}{}
				<-hold
			})
		}
	})
	defer restore()

	// Lead submission: holds the svc_test compute in flight, pinning its
	// cache entry.
	var wg sync.WaitGroup
	errs := make([]error, followers+7)
	submitAt := func(i int, req Request) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = s.Label(context.Background(), req)
		}()
	}
	submitAt(0, Request{Program: testProgramSrc})
	<-entered

	// Eviction pressure: six distinct programs spread across the shards
	// while the svc_test entry is pinned (capacity 1: every insertion
	// provokes an eviction attempt, which must skip the pinned entry).
	pressure := []string{"fig1", "fig2", "fig3", "buts"}
	for i := 0; i < 4; i++ {
		submitAt(1+i, Request{Example: pressure[i]})
	}
	variant := func(name, bound string) string {
		src := strings.Replace(testProgramSrc, "program svc_test", "program "+name, 1)
		return strings.Replace(src, "to 15", bound, 1)
	}
	submitAt(5, Request{Program: variant("svc_pressure_a", "to 7")})
	submitAt(6, Request{Program: variant("svc_pressure_b", "to 3")})

	// Same-program followers: each must find the pinned in-flight entry
	// and register a cache hit (counted at lookup, before blocking on the
	// entry's compute) instead of recomputing.
	for i := 0; i < followers; i++ {
		submitAt(7+i, Request{Program: testProgramSrc})
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.CacheStats().Hits < followers {
		if time.Now().After(deadline) {
			t.Fatalf("followers did not reach the pinned entry: %+v", s.CacheStats())
		}
		time.Sleep(time.Millisecond)
	}
	close(hold)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	n, ok := computes.Load("svc_test")
	if !ok || *(n.(*int64)) != 1 {
		got := int64(0)
		if ok {
			got = *(n.(*int64))
		}
		t.Errorf("svc_test computed %d times, want exactly 1 (single-flight across shards)", got)
	}
}

func TestMetriczRendering(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	if _, err := s.Label(context.Background(), Request{Example: "fig2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Label(context.Background(), Request{Example: "fig2"}); err != nil {
		t.Fatal(err)
	}
	out := s.RenderMetricz()
	for _, want := range []string{
		"requests_label 2\n",
		"response_cache_hits 1\n", // the repeat is served from response bytes
		"response_cache_entries 1\n",
		"cache_misses 1\n",
		"cache_shards 4\n",
		"latency_count 2\n",
		"rejected_overloaded 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metricz missing %q:\n%s", want, out)
		}
	}
}

// TestContextCancelledWaiter verifies an abandoned waiter gets its ctx
// error while the computation still completes for others.
func TestContextCancelledWaiter(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	s := New(cfg)
	defer s.Close()

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	restore := idem.SetTestComputeHook(func(p *ir.Program) {
		if p.Name == "svc_test" {
			entered <- struct{}{}
			<-release
		}
	})
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, err := s.Label(ctx, Request{Program: testProgramSrc})
		abandoned <- err
	}()
	<-entered
	cancel()
	if err := <-abandoned; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	// The computation finished and is cached; a fresh request hits.
	if _, err := s.Label(context.Background(), Request{Program: testProgramSrc}); err != nil {
		t.Fatal(err)
	}
}

// TestResponseCacheFastPath verifies repeat requests are answered from
// cached bytes without re-entering parser, queue, or program cache.
func TestResponseCacheFastPath(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ctx := context.Background()

	first, err := s.Label(ctx, Request{Program: testProgramSrc, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Label(ctx, Request{Program: testProgramSrc, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Error("cached response differs")
	}
	snap := s.Metrics().SnapshotNow()
	if snap.RespHits != 1 {
		t.Errorf("response cache hits = %d, want 1", snap.RespHits)
	}
	if snap.Computed != 1 {
		t.Errorf("computed = %d, want 1 (repeat never reached the queue)", snap.Computed)
	}
	// A parameter change is a different response: no false sharing.
	if _, err := s.Label(ctx, Request{Program: testProgramSrc}); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().SnapshotNow().Computed; got != 2 {
		t.Errorf("computed = %d, want 2 (deps=false is a distinct document)", got)
	}
}

// TestInvalidRequestRejectedRegardlessOfCacheWarmth: a malformed request
// whose program selector collides with a cached valid request must still
// be rejected — validation runs before the response-cache fast path.
func TestInvalidRequestRejectedRegardlessOfCacheWarmth(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Label(ctx, Request{Example: "fig2"}); err != nil {
		t.Fatal(err)
	}
	// The response cache now holds the fig2 document under the
	// example-only key; the invalid both-selectors request would hash to
	// the same key.
	if _, err := s.Label(ctx, Request{Example: "fig2", Program: "garbage"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("warm cache: err = %v, want ErrBadRequest", err)
	}
	if _, err := s.Simulate(ctx, Request{Example: "fig2", Procs: -3}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative procs: err = %v, want ErrBadRequest", err)
	}
}
