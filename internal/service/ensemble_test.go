package service

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"refidem/internal/deps"
)

// TestEnsembleResponsesByteIdentical pins the serving-layer contract of
// the dependence ensemble: with Config.Ensemble on, every response
// document is byte-identical to the plain labeler's — the sound members
// cannot move labels, and the speculative members are not enabled by the
// server — while /metricz gains live per-member counters.
func TestEnsembleResponsesByteIdentical(t *testing.T) {
	plain := New(testConfig())
	defer plain.Close()
	ecfg := testConfig()
	ecfg.Ensemble = true
	ens := New(ecfg)
	defer ens.Close()

	before := deps.MemberStatsNow()
	reqs := []Request{
		{Example: "fig2", Deps: true},
		{Example: "buts"},
		{Program: testProgramSrc, Deps: true},
	}
	ctx := context.Background()
	for i, req := range reqs {
		want, err := plain.Label(ctx, req)
		if err != nil {
			t.Fatalf("plain label %d: %v", i, err)
		}
		got, err := ens.Label(ctx, req)
		if err != nil {
			t.Fatalf("ensemble label %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("label request %d: ensemble response diverged\nplain:    %s\nensemble: %s", i, want, got)
		}
	}
	for i, req := range []Request{{Example: "fig2"}, {Example: "buts", Procs: 2}} {
		want, err := plain.Simulate(ctx, req)
		if err != nil {
			t.Fatalf("plain simulate %d: %v", i, err)
		}
		got, err := ens.Simulate(ctx, req)
		if err != nil {
			t.Fatalf("ensemble simulate %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("simulate request %d: ensemble response diverged", i)
		}
	}

	after := deps.MemberStatsNow()
	if after.Queries[deps.MemberRange] <= before.Queries[deps.MemberRange] {
		t.Error("ensemble labeling did not consult the range member")
	}
	if after.Queries[deps.MemberExact] <= before.Queries[deps.MemberExact] {
		t.Error("ensemble labeling did not consult the exact member")
	}

	out := ens.RenderMetricz()
	for _, name := range deps.MemberNames() {
		for _, suffix := range []string{"_queries", "_hits", "_short_circuits"} {
			if !strings.Contains(out, "deps_member_"+name+suffix+" ") {
				t.Errorf("metricz missing deps_member_%s%s line:\n%s", name, suffix, out)
			}
		}
	}
}
