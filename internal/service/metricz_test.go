package service

import (
	"strings"
	"testing"

	"refidem/internal/deps"
)

// metriczNames extracts the rendered counter names in order.
func metriczNames(doc string) []string {
	var names []string
	for _, line := range strings.Split(strings.TrimSuffix(doc, "\n"), "\n") {
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		names = append(names, name)
	}
	return names
}

// TestRenderMetriczLineOrder pins the exact line order of the /metricz
// document: scrapers parse it positionally and goldens diff it, so a
// reordering is a breaking change this test makes deliberate.
func TestRenderMetriczLineOrder(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	want := []string{
		"requests_label", "requests_simulate", "requests_batch_calls",
		"requests_timeline",
		"requests_bad", "requests_timeout",
		"rejected_overloaded", "coalesced_requests", "tasks_computed",
		"delta_requests", "delta_unknown_base",
		"delta_regions_reused", "delta_regions_relabeled",
		"delta_base_entries", "delta_fragment_entries",
		"dispatch_batches", "dispatch_batch_tasks",
		"trace_compiled", "trace_bailouts", "guard_elided",
	}
	for _, name := range deps.MemberNames() {
		want = append(want,
			"deps_member_"+name+"_queries",
			"deps_member_"+name+"_hits",
			"deps_member_"+name+"_short_circuits")
	}
	want = append(want,
		"response_cache_hits", "response_cache_entries",
		"store_enabled", "store_degraded",
		"store_warm_hits", "store_warm_entries", "store_hits",
		"store_writes", "store_write_errors", "store_dropped_writes",
		"store_corrupt_reads", "store_read_errors",
		"store_degraded_events", "store_recoveries", "store_probe_failures",
		"store_quarantined",
		"cache_shards", "cache_hits", "cache_misses", "cache_evictions",
		"cache_entries", "cache_pinned", "cache_capacity",
		"latency_count", "latency_mean_ns",
		"latency_p50_us", "latency_p95_us", "latency_p99_us",
	)
	got := metriczNames(s.RenderMetricz())
	// A fresh server has an empty histogram: no latency_le_us lines at
	// all, so the fixed prefix is the whole document.
	if len(got) != len(want) {
		t.Fatalf("rendered %d lines, want %d:\n%v\nvs\n%v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRenderMetriczHistogramElision pins the cumulative-bucket elision on
// crafted histogram states.
func TestRenderMetriczHistogramElision(t *testing.T) {
	leLines := func(s *Server) []string {
		var out []string
		for _, line := range strings.Split(s.RenderMetricz(), "\n") {
			if strings.HasPrefix(line, "latency_le_us{") {
				out = append(out, line)
			}
		}
		return out
	}

	t.Run("empty", func(t *testing.T) {
		s := New(testConfig())
		defer s.Close()
		if lines := leLines(s); len(lines) != 0 {
			t.Fatalf("empty histogram rendered buckets: %v", lines)
		}
		doc := s.RenderMetricz()
		for _, want := range []string{"latency_count 0\n", "latency_mean_ns 0\n",
			"latency_p50_us 0\n", "latency_p95_us 0\n", "latency_p99_us 0\n"} {
			if !strings.Contains(doc, want) {
				t.Errorf("empty histogram lacks %q", strings.TrimSpace(want))
			}
		}
	})

	t.Run("single-bucket", func(t *testing.T) {
		s := New(testConfig())
		defer s.Close()
		// Three observations in bucket 5 (<= 32 µs): leading buckets elide
		// and the render stops at the first bucket reaching the total.
		s.metrics.latency[5].Add(3)
		lines := leLines(s)
		if len(lines) != 1 || lines[0] != "latency_le_us{32} 3" {
			t.Fatalf("single-bucket render = %v, want exactly latency_le_us{32} 3", lines)
		}
	})

	t.Run("overflow-bucket", func(t *testing.T) {
		s := New(testConfig())
		defer s.Close()
		s.metrics.latency[latencyBuckets].Add(2)
		lines := leLines(s)
		if len(lines) != 1 || lines[0] != "latency_le_us{+inf} 2" {
			t.Fatalf("overflow render = %v, want exactly latency_le_us{+inf} 2", lines)
		}
	})

	t.Run("two-buckets", func(t *testing.T) {
		s := New(testConfig())
		defer s.Close()
		s.metrics.latency[3].Add(1)
		s.metrics.latency[6].Add(1)
		want := []string{
			"latency_le_us{8} 1",
			"latency_le_us{16} 1",
			"latency_le_us{32} 1",
			"latency_le_us{64} 2",
		}
		got := leLines(s)
		if len(got) != len(want) {
			t.Fatalf("render = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
			}
		}
	})
}

// TestLatencyQuantiles pins the histogram quantile estimator.
func TestLatencyQuantiles(t *testing.T) {
	var buckets [latencyBuckets + 1]int64
	if got := latencyQuantile(&buckets, 0, 50); got != 0 {
		t.Fatalf("empty p50 = %d, want 0", got)
	}
	// 50 fast (<= 1 µs), 45 medium (<= 8 µs), 5 slow (<= 1024 µs).
	buckets[0], buckets[3], buckets[10] = 50, 45, 5
	const count = 100
	if got := latencyQuantile(&buckets, count, 50); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := latencyQuantile(&buckets, count, 95); got != 8 {
		t.Errorf("p95 = %d, want 8", got)
	}
	if got := latencyQuantile(&buckets, count, 99); got != 1024 {
		t.Errorf("p99 = %d, want 1024", got)
	}
	// Overflow-only: quantiles report the overflow bound.
	var of [latencyBuckets + 1]int64
	of[latencyBuckets] = 4
	if got := latencyQuantile(&of, 4, 50); got != int64(1)<<latencyBuckets {
		t.Errorf("overflow p50 = %d, want %d", got, int64(1)<<latencyBuckets)
	}
	// Rendered lines agree with direct calls.
	s := New(testConfig())
	defer s.Close()
	for i, n := range map[int]int64{0: 50, 3: 45, 10: 5} {
		s.metrics.latency[i].Add(n)
	}
	doc := s.RenderMetricz()
	for _, want := range []string{"latency_p50_us 1\n", "latency_p95_us 8\n", "latency_p99_us 1024\n"} {
		if !strings.Contains(doc, want) {
			t.Errorf("metricz lacks %q", strings.TrimSpace(want))
		}
	}
}
