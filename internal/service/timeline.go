package service

// The speculation-timeline export endpoint: /v1/simulate?timeline=1
// answers with the Chrome trace-event JSON of the request's HOSE and
// CASE runs instead of the simulate response document. The export
// deliberately bypasses the admission queue, the response byte cache and
// the persistent store — it is a debugging artifact keyed to one
// request, not a cacheable response — but labeling still goes through
// the program-cache shard, so a timeline request warms the same labeled
// program later requests reuse. Timeline timestamps are simulated
// cycles: the document is deterministic for a given program and machine.

import (
	"context"
	"errors"
	"fmt"
	"io"

	"refidem/internal/engine"
	"refidem/internal/ir"
	"refidem/internal/obs"
)

// SimulateTimeline labels the request's program, runs it under HOSE and
// CASE with speculation timelines attached, and writes the combined
// Chrome trace-event document to w. Request parameters (procs, capacity)
// apply exactly as on Simulate.
func (s *Server) SimulateTimeline(ctx context.Context, req Request, w io.Writer) error {
	_ = ctx // the export runs inline; no queue wait to cancel
	s.metrics.timelineRequests.Add(1)
	if s.closing.Load() {
		return ErrClosed
	}
	if req.Program != "" && req.Example != "" {
		return fmt.Errorf("%w: use either program or example, not both", ErrBadRequest)
	}
	if req.Procs < 0 || req.Capacity < 0 {
		return fmt.Errorf("%w: procs and capacity must be non-negative", ErrBadRequest)
	}
	prog, err := s.resolveRequest(req)
	if err != nil {
		if !errors.Is(err, ErrUnknownBase) {
			err = fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return err
	}
	shard := s.shardFor(ir.FingerprintOf(prog))
	prog, labs, err := shard.Labeled(prog)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	cfg := s.cfg.Engine
	if req.Procs > 0 {
		cfg.Processors = req.Procs
	}
	if req.Capacity > 0 {
		cfg.SpecCapacity = req.Capacity
	}
	named := make([]obs.NamedTimeline, 0, 2)
	for _, mode := range []engine.Mode{engine.HOSE, engine.CASE} {
		tl := &obs.Timeline{}
		cfg.Timeline = tl
		if _, err := engine.RunSpeculative(prog, labs, cfg, mode); err != nil {
			return err
		}
		named = append(named, obs.NamedTimeline{Name: mode.String(), T: tl})
	}
	return obs.WriteChromeTrace(w, named)
}
