package service

import (
	"bytes"
	"context"
	"testing"
	"time"

	"refidem/internal/store"
)

// chaosRequests is the request mix each chaos iteration replays: both ops,
// parameter variants, multiple programs.
var chaosRequests = []Request{
	{Op: OpLabel, Example: "fig1"},
	{Op: OpLabel, Example: "fig2", Deps: true},
	{Op: OpSimulate, Example: "fig3", Procs: 4},
}

// TestChaosWall is the fault-injection wall: 240 iterations (48 per fault
// kind) of serve → fault → shutdown → heal → restart, asserting after every
// single one that
//
//   - no request ever fails or panics because the store faulted,
//   - every response — faulted, degraded, or warm-restarted — is
//     byte-identical to the cold-computed reference, so no quarantined or
//     corrupt record is ever served,
//   - the restart recovery scan never invents corrupt records from clean
//     shutdowns of non-corrupting faults.
func TestChaosWall(t *testing.T) {
	// Cold reference: one memory-only server, no store in the path.
	ref := New(testConfig())
	ctx := context.Background()
	want := make([][]byte, len(chaosRequests))
	for i, r := range chaosRequests {
		var err error
		if want[i], err = ref.Do(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	ref.Close()

	kinds := []store.FaultKind{
		store.FaultTornWrite,
		store.FaultENOSPC,
		store.FaultRenameFail,
		store.FaultCrash,
		store.FaultReadCorrupt,
	}
	const itersPerKind = 48 // 5 kinds × 48 = 240 fault-injected iterations
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			var fired int64
			for i := 0; i < itersPerKind; i++ {
				fired += chaosIteration(t, kind, i, want)
			}
			if fired == 0 {
				t.Fatalf("%s: no fault ever triggered across %d iterations — the wall is not testing anything", kind, itersPerKind)
			}
		})
	}
}

// chaosIteration runs one serve/fault/restart cycle and returns how many
// faults actually fired.
func chaosIteration(t *testing.T, kind store.FaultKind, iter int, want [][]byte) int64 {
	t.Helper()
	ctx := context.Background()
	dir := t.TempDir()
	f := store.NewFaultFS()
	st, _, err := store.OpenWithFaults(dir, f)
	if err != nil {
		t.Fatalf("iter %d: open: %v", iter, err)
	}

	cfg := storeTestConfig(t, st)
	cfg.StoreProbeInterval = time.Hour // recovery belongs to the restart, not a mid-test probe
	s := New(cfg)
	// Vary the trigger point so the fault lands in different file
	// operations (temp write, fsync, rename, read) across iterations.
	f.Arm(kind, 1+iter%7)
	for j, r := range chaosRequests {
		got, err := s.Do(ctx, r)
		if err != nil {
			t.Fatalf("iter %d req %d (%s): request failed under fault: %v", iter, j, kind, err)
		}
		if !bytes.Equal(got, want[j]) {
			t.Fatalf("iter %d req %d (%s): faulted response differs from cold-computed bytes", iter, j, kind)
		}
	}
	s.Close() // drains the write-behind queue through the (possibly faulty) backend
	fired := f.Fired()
	st.Close()
	f.Heal()

	// "Restart": a clean process reopens the directory. The recovery scan
	// quarantines whatever the fault corrupted; nothing corrupt is served.
	st2, stats, err := store.Open(dir)
	if err != nil {
		t.Fatalf("iter %d (%s): reopen after heal: %v", iter, kind, err)
	}
	if kind != store.FaultTornWrite && kind != store.FaultCrash && stats.Quarantined != 0 {
		// ENOSPC/rename/read faults fail writes cleanly or corrupt only
		// reads; they must never leave corrupt records on disk.
		t.Fatalf("iter %d (%s): recovery quarantined %d records from a non-corrupting fault", iter, kind, stats.Quarantined)
	}
	s2 := New(storeTestConfig(t, st2))
	for j, r := range chaosRequests {
		got, err := s2.Do(ctx, r)
		if err != nil {
			t.Fatalf("iter %d req %d (%s): post-restart request failed: %v", iter, j, kind, err)
		}
		if !bytes.Equal(got, want[j]) {
			t.Fatalf("iter %d req %d (%s): post-restart response differs from cold-computed bytes", iter, j, kind)
		}
	}
	if s2.StoreStateNow() == StoreDisabled {
		t.Fatalf("iter %d (%s): restarted server lost its store", iter, kind)
	}
	s2.Close()
	st2.Close()
	return fired
}
