package service

// /debug/tracez: the flight recorder's HTTP surface. Renders the ring's
// spans newest-first as a plain-text table (the default) or JSON
// (?format=json). Reads only the recorder — no clocks, no request state —
// so scraping it perturbs nothing but the slot mutexes it snapshots.

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"refidem/internal/obs"
)

// tracezSpan is one span in the JSON rendering. Stage durations are
// explicit fields (not a map) so the document is byte-deterministic
// given the spans.
type tracezSpan struct {
	TraceID        uint64 `json:"trace_id"`
	Op             string `json:"op"`
	Outcome        string `json:"outcome"`
	Source         string `json:"source,omitempty"`
	Coalesced      bool   `json:"coalesced,omitempty"`
	Fingerprint    string `json:"fingerprint,omitempty"`
	StartUnixNs    int64  `json:"start_unix_ns"`
	TotalNs        int64  `json:"total_ns"`
	AdmissionNs    int64  `json:"admission_ns"`
	RespCacheNs    int64  `json:"resp_cache_ns"`
	SingleflightNs int64  `json:"singleflight_ns"`
	StoreReadNs    int64  `json:"store_read_ns"`
	ComputeNs      int64  `json:"compute_ns"`
	StoreWriteNs   int64  `json:"store_write_ns"`
}

// tracezDoc is the JSON document of /debug/tracez?format=json.
type tracezDoc struct {
	Enabled  bool         `json:"enabled"`
	Capacity int          `json:"capacity,omitempty"`
	Spans    []tracezSpan `json:"spans,omitempty"`
}

func tracezSpanOf(sp *obs.Span) tracezSpan {
	out := tracezSpan{
		TraceID:        sp.TraceID,
		Op:             sp.Op,
		Outcome:        sp.Outcome,
		Source:         sp.Source,
		Coalesced:      sp.Coalesced,
		StartUnixNs:    sp.Start,
		TotalNs:        sp.Total,
		AdmissionNs:    sp.Stages[obs.StageAdmission],
		RespCacheNs:    sp.Stages[obs.StageRespCache],
		SingleflightNs: sp.Stages[obs.StageSingleflight],
		StoreReadNs:    sp.Stages[obs.StageStoreRead],
		ComputeNs:      sp.Stages[obs.StageCompute],
		StoreWriteNs:   sp.Stages[obs.StageStoreWrite],
	}
	if sp.HasFingerprint {
		out.Fingerprint = hex.EncodeToString(sp.Fingerprint[:])
	}
	return out
}

// handleTracez serves GET /debug/tracez.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	jsonFmt := r.URL.Query().Get("format") == "json"
	if jsonFmt {
		doc := tracezDoc{}
		if s.flight != nil {
			doc.Enabled = true
			doc.Capacity = s.flight.Cap()
			spans := s.flight.Snapshot()
			doc.Spans = make([]tracezSpan, len(spans))
			for i := range spans {
				doc.Spans[i] = tracezSpanOf(&spans[i])
			}
		}
		enc, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(enc, '\n'))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.flight == nil {
		fmt.Fprintln(w, "flight recorder disabled (start the server with Config.FlightSpans > 0)")
		return
	}
	spans := s.flight.Snapshot()
	fmt.Fprintf(w, "flight recorder: %d span capacity, %d recorded\n\n", s.flight.Cap(), len(spans))
	var b strings.Builder
	fmt.Fprintf(&b, "%8s  %-8s  %-11s  %-10s  %-9s  %12s", "TRACE", "OP", "OUTCOME", "SOURCE", "COALESCED", "TOTAL_US")
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		fmt.Fprintf(&b, "  %12s", strings.ToUpper(st.String()))
	}
	b.WriteString("  FINGERPRINT\n")
	for i := range spans {
		sp := &spans[i]
		fp := "-"
		if sp.HasFingerprint {
			fp = hex.EncodeToString(sp.Fingerprint[:8])
		}
		src := sp.Source
		if src == "" {
			src = "-"
		}
		fmt.Fprintf(&b, "%8d  %-8s  %-11s  %-10s  %-9v  %12.1f", sp.TraceID, sp.Op, sp.Outcome, src, sp.Coalesced, float64(sp.Total)/1e3)
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			fmt.Fprintf(&b, "  %12.1f", float64(sp.Stages[st])/1e3)
		}
		b.WriteString("  " + fp + "\n")
	}
	fmt.Fprint(w, b.String())
}
