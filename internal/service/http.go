package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"refidem/internal/api"
)

// maxRequestBody bounds a request document; maxBatchItems bounds how many
// items one /v1/batch call may carry. Both protect the admission queue
// from a single oversized request.
const (
	maxRequestBody = 4 << 20
	maxBatchItems  = 256
)

// Handler returns the server's HTTP API:
//
//	POST /v1/label             — label a program (Request document)
//	POST /v1/simulate          — label + simulate under seq/HOSE/CASE
//	POST /v1/simulate?timeline=1 — speculation timeline as Chrome trace JSON
//	POST /v1/batch             — up to 256 requests, answered in order
//	GET  /healthz              — liveness + store health (JSON Health document)
//	GET  /metricz              — counters, cache/store stats, latency histogram
//	GET  /debug/tracez         — flight-recorder spans (text; ?format=json)
//
// Responses for identical programs are byte-identical. Overload maps to
// 503 with Retry-After; malformed requests to 400; requests exceeding
// the configured per-request deadline to 504. When the flight recorder
// is on, /v1/label and /v1/simulate answers carry X-Refidem-Trace-Id.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/label", func(w http.ResponseWriter, r *http.Request) {
		s.handleOp(w, r, OpLabel)
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("timeline") == "1" {
			s.handleTimeline(w, r)
			return
		}
		s.handleOp(w, r, OpSimulate)
	})
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /debug/tracez", s.handleTracez)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Always 200 while the listener is up: a degraded store means
		// memory-only serving, not an unhealthy server. Routers and the
		// smoke scripts gate on the JSON body instead.
		doc, err := json.MarshalIndent(s.Health(), "", "  ")
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(doc, '\n'))
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.RenderMetricz())
	})
	return mux
}

func (s *Server) handleOp(w http.ResponseWriter, r *http.Request, op string) {
	var req Request
	if !decodeBody(w, r, &req) {
		return
	}
	req.Op = op
	resp, traceID, err := s.DoTraced(r.Context(), req)
	if traceID != 0 {
		// Headers only — the trace ID identifies the request's span on
		// /debug/tracez without touching the response bytes.
		w.Header().Set("X-Refidem-Trace-Id", strconv.FormatUint(traceID, 10))
	}
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)
}

// handleTimeline serves POST /v1/simulate?timeline=1: the request's
// speculation timeline as a Chrome trace-event JSON document. The export
// is buffered so an engine failure mid-run answers with a clean error
// document instead of truncated JSON.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !decodeBody(w, r, &req) {
		return
	}
	req.Op = OpSimulate
	var buf bytes.Buffer
	if err := s.SimulateTimeline(r.Context(), req, &buf); err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if !decodeBody(w, r, &batch) {
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, fmt.Errorf("%w: empty batch", ErrBadRequest))
		return
	}
	if len(batch.Requests) > maxBatchItems {
		writeError(w, fmt.Errorf("%w: batch of %d exceeds the %d-item limit",
			ErrBadRequest, len(batch.Requests), maxBatchItems))
		return
	}
	resps, errs := s.Batch(r.Context(), batch.Requests)
	out := BatchResponse{Responses: make([]json.RawMessage, len(resps))}
	for i := range resps {
		if errs[i] != nil {
			doc, _ := json.Marshal(api.ErrorDoc{Error: errs[i].Error()})
			out.Responses[i] = doc
			continue
		}
		out.Responses[i] = resps[i]
	}
	w.Header().Set("Content-Type", "application/json")
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		writeError(w, err)
		return
	}
	w.Write(append(enc, '\n'))
}

// decodeBody parses the request body into dst, answering 400 itself on
// failure.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return false
	}
	return true
}

// writeError maps a service error to its HTTP status and a JSON error
// document per the api taxonomy.
func writeError(w http.ResponseWriter, err error) { api.WriteError(w, err) }
