package service

import (
	"errors"
	"fmt"
	"time"

	"refidem/internal/store"
)

// AnalysisVersion identifies the semantics of the analysis pipeline and
// its response documents. It is part of every persisted record's address,
// so bumping it invalidates prior records without deleting them: a new
// release simply misses the old generation and recomputes. Bump it
// whenever labeling semantics, engine semantics or response rendering
// change in any byte-visible way.
const AnalysisVersion = "refidem-analysis/6"

// StoreState is the serving layer's view of its persistent store.
type StoreState int32

const (
	// StoreDisabled: no backend configured; the server is memory-only by
	// construction.
	StoreDisabled StoreState = iota
	// StoreOK: the backend is serving reads and writes.
	StoreOK
	// StoreDegraded: the backend faulted at runtime; the server continues
	// memory-only (requests never fail on store errors) and re-probes
	// periodically until the backend recovers.
	StoreDegraded
)

func (s StoreState) String() string {
	switch s {
	case StoreOK:
		return "ok"
	case StoreDegraded:
		return "degraded"
	}
	return "disabled"
}

// persistWrite is one queued write-behind record.
type persistWrite struct {
	key  store.Key
	data []byte
}

// storeKeyOf maps a coalescing task key onto the persistent store's
// address space: fingerprint + op + canonical params + analysis version.
func storeKeyOf(k taskKey) store.Key {
	return store.Key{
		Fingerprint: k.fp,
		Op:          k.op,
		Params:      fmt.Sprintf("deps=%t;procs=%d;cap=%d", k.deps, k.procs, k.capacity),
		Version:     AnalysisVersion,
	}
}

// initStore attaches the configured backend: warm-starts the in-memory
// tier from the recovery-scanned records, then starts the write-behind
// persister and the degraded-mode probe loop. Called once from New.
func (s *Server) initStore() {
	if s.cfg.Store == nil {
		return
	}
	s.storeState.Store(int32(StoreOK))
	s.persistQ = make(chan persistWrite, s.cfg.StoreQueueDepth)
	s.persistDone = make(chan struct{})
	s.probeStop = make(chan struct{})
	s.warm = make(map[store.Key][]byte)

	// Warm start: every valid record of the current analysis version
	// becomes an in-memory answer. Records from other versions are left
	// in place (a rollback finds them again) but never loaded.
	err := s.cfg.Store.Scan(func(k store.Key, data []byte) error {
		if k.Version != AnalysisVersion {
			return nil
		}
		if k.Op != OpLabel && k.Op != OpSimulate {
			return nil
		}
		s.warm[k] = append([]byte(nil), data...)
		return nil
	})
	if err != nil {
		s.degradeStore(err)
	}
	s.metrics.storeWarmEntries.Store(int64(len(s.warm)))

	go s.persistLoop()
	go s.probeLoop()
}

// StoreStateNow reports the current store state.
func (s *Server) StoreStateNow() StoreState {
	return StoreState(s.storeState.Load())
}

// degradeStore moves the store ok → degraded: the server keeps serving
// memory-only and the probe loop takes over recovery.
func (s *Server) degradeStore(err error) {
	if s.storeState.CompareAndSwap(int32(StoreOK), int32(StoreDegraded)) {
		s.metrics.storeDegradedEvents.Add(1)
		_ = err // the error is reflected in counters; the server never logs
	}
}

// storeLookup answers a task from the persistent tier: first the
// warm-start index (a boot-time snapshot, drained as entries are
// served), then the backend itself. Returns nil on any miss or store
// fault — the caller computes, requests never fail on store errors.
func (s *Server) storeLookup(key taskKey) []byte {
	if StoreState(s.storeState.Load()) == StoreDisabled {
		return nil
	}
	sk := storeKeyOf(key)
	s.warmMu.Lock()
	if data, ok := s.warm[sk]; ok {
		// The entry graduates to the response cache (the caller publishes
		// it); keeping it here would duplicate every served record.
		delete(s.warm, sk)
		s.warmMu.Unlock()
		s.metrics.storeWarmHits.Add(1)
		s.metrics.storeWarmEntries.Add(-1)
		return data
	}
	s.warmMu.Unlock()
	if StoreState(s.storeState.Load()) != StoreOK {
		return nil
	}
	data, err := s.cfg.Store.Get(sk)
	switch {
	case err == nil:
		s.metrics.storeHits.Add(1)
		return data
	case errors.Is(err, store.ErrNotFound):
		return nil
	case errors.Is(err, store.ErrCorrupt):
		// The backend quarantined the record; this address recomputes.
		s.metrics.storeCorrupt.Add(1)
		return nil
	default:
		s.metrics.storeReadErrors.Add(1)
		s.degradeStore(err)
		return nil
	}
}

// persistAsync enqueues a computed response for write-behind
// persistence. It never blocks the request path: a full queue drops the
// write (counted) rather than stalling the worker.
func (s *Server) persistAsync(key taskKey, resp []byte) {
	if StoreState(s.storeState.Load()) != StoreOK {
		if StoreState(s.storeState.Load()) == StoreDegraded {
			s.metrics.storeDroppedWrites.Add(1)
		}
		return
	}
	select {
	case s.persistQ <- persistWrite{key: storeKeyOf(key), data: resp}:
	default:
		s.metrics.storeDroppedWrites.Add(1)
	}
}

// persistLoop drains the write-behind queue. A write error degrades the
// store; queued writes arriving while degraded are dropped (counted),
// not retried — the probe loop decides when the backend is trustworthy
// again.
func (s *Server) persistLoop() {
	defer close(s.persistDone)
	for w := range s.persistQ {
		if StoreState(s.storeState.Load()) != StoreOK {
			s.metrics.storeDroppedWrites.Add(1)
			continue
		}
		if err := s.cfg.Store.Put(w.key, w.data); err != nil {
			s.metrics.storeWriteErrors.Add(1)
			s.degradeStore(err)
			continue
		}
		s.metrics.storeWrites.Add(1)
	}
}

// probeLoop periodically re-probes a degraded backend and restores it to
// service when the probe passes.
func (s *Server) probeLoop() {
	t := time.NewTicker(s.cfg.StoreProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.probeStop:
			return
		case <-t.C:
			if StoreState(s.storeState.Load()) != StoreDegraded {
				continue
			}
			if err := s.cfg.Store.Probe(); err != nil {
				s.metrics.storeProbeFailures.Add(1)
				continue
			}
			s.storeState.CompareAndSwap(int32(StoreDegraded), int32(StoreOK))
			s.metrics.storeRecoveries.Add(1)
		}
	}
}

// closeStore shuts the persistence machinery down after the request
// pipeline has drained: every already-queued write is flushed (or
// dropped if the store is degraded), the persister and probe goroutines
// exit, and no write can happen after Close returns. The backend itself
// belongs to the caller and is not closed.
func (s *Server) closeStore() {
	if s.cfg.Store == nil {
		return
	}
	close(s.persistQ)
	<-s.persistDone
	close(s.probeStop)
}

// Health reports the server's health document (served on /healthz). The
// document type lives in internal/api (aliased in request.go).
func (s *Server) Health() Health {
	h := Health{
		Status:           "ok",
		Store:            s.StoreStateNow().String(),
		Tracing:          s.cfg.Engine.Traced,
		StoreWarmHits:    s.metrics.storeWarmHits.Load(),
		StoreWarmEntries: s.metrics.storeWarmEntries.Load(),
	}
	if s.cfg.Store != nil {
		h.StoreQuarantined = s.cfg.Store.Quarantined()
	}
	return h
}
