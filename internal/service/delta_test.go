package service

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"refidem/internal/fuzz"
	"refidem/internal/ir"
	"refidem/internal/lang"
)

const deltaBaseSrc = `program delta_test
var a[16]
var b[16]
region r0 loop k = 0 to 15 {
  a[k] = (b[k] + 1)
}
region r1 loop k = 0 to 15 {
  b[k] = (a[k] + 2)
}
`

const deltaPatchR1 = `region r1 loop k = 0 to 15 {
  b[k] = (a[k] + 3)
}
`

func fpHexOf(t testing.TB, src string) string {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fp := ir.FingerprintOf(p)
	return hex.EncodeToString(fp[:])
}

// labelFresh answers "what would a server that never saw the base say
// about this full source?" — the delta-equivalence oracle.
func labelFresh(t testing.TB, src string, deps bool) []byte {
	t.Helper()
	s := New(testConfig())
	defer s.Close()
	raw, err := s.Label(context.Background(), Request{Program: src, Deps: deps})
	if err != nil {
		t.Fatalf("oracle full label: %v", err)
	}
	return raw
}

// A delta that touches one region must reuse every other region's
// fragment and still produce bytes identical to a full re-label.
func TestDeltaRelabelsOnlyChangedRegion(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Label(ctx, Request{Program: deltaBaseSrc}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Label(ctx, Request{
		Base:    fpHexOf(t, deltaBaseSrc),
		Patches: []RegionPatch{{Region: "r1", Source: deltaPatchR1}},
	})
	if err != nil {
		t.Fatal(err)
	}

	composed, err := applyPatches(deltaBaseSrc, []RegionPatch{{Region: "r1", Source: deltaPatchR1}})
	if err != nil {
		t.Fatal(err)
	}
	want := labelFresh(t, composed, false)
	if !bytes.Equal(got, want) {
		t.Fatalf("delta bytes differ from full re-label\ndelta: %s\nfull:  %s", got, want)
	}

	snap := s.Metrics().SnapshotNow()
	if snap.DeltaRequests != 1 {
		t.Fatalf("delta_requests = %d, want 1", snap.DeltaRequests)
	}
	// The patch changes r1's body but not r0's inputs (a and b stay
	// live-out of r0 either way): exactly one region re-labeled, one
	// reused.
	if snap.RegionsRelabeled != 1 || snap.RegionsReused != 1 {
		t.Fatalf("relabeled/reused = %d/%d, want 1/1", snap.RegionsRelabeled, snap.RegionsReused)
	}
}

// A patch that shifts inter-region liveness must re-label the upstream
// region too: dropping r1's read of `a` kills a's live-out at r0, which
// is one of r0's labeling inputs.
func TestDeltaLivenessShiftRelabelsDependents(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Label(ctx, Request{Program: deltaBaseSrc}); err != nil {
		t.Fatal(err)
	}
	patch := RegionPatch{Region: "r1", Source: "region r1 loop k = 0 to 15 {\n  b[k] = (k + 3)\n}\n"}
	got, err := s.Label(ctx, Request{Base: fpHexOf(t, deltaBaseSrc), Patches: []RegionPatch{patch}})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := applyPatches(deltaBaseSrc, []RegionPatch{patch})
	if err != nil {
		t.Fatal(err)
	}
	if want := labelFresh(t, composed, false); !bytes.Equal(got, want) {
		t.Fatalf("delta bytes differ from full re-label")
	}
	snap := s.Metrics().SnapshotNow()
	if snap.RegionsRelabeled != 2 || snap.RegionsReused != 0 {
		t.Fatalf("relabeled/reused = %d/%d, want 2/0 (liveness shift must invalidate r0)",
			snap.RegionsRelabeled, snap.RegionsReused)
	}
}

// Deps requests strip/keep the dependence lists identically on both
// paths.
func TestDeltaEquivalenceWithDeps(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Label(ctx, Request{Program: deltaBaseSrc, Deps: true}); err != nil {
		t.Fatal(err)
	}
	patches := []RegionPatch{{Region: "r1", Source: deltaPatchR1}}
	got, err := s.Label(ctx, Request{Base: fpHexOf(t, deltaBaseSrc), Patches: patches, Deps: true})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := applyPatches(deltaBaseSrc, patches)
	if err != nil {
		t.Fatal(err)
	}
	if want := labelFresh(t, composed, true); !bytes.Equal(got, want) {
		t.Fatalf("deps delta bytes differ from full re-label\ndelta: %s\nfull:  %s", got, want)
	}
}

// A patch naming a region the base lacks appends it.
func TestDeltaAppendsNewRegion(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ctx := context.Background()

	if _, err := s.Label(ctx, Request{Program: deltaBaseSrc}); err != nil {
		t.Fatal(err)
	}
	patch := RegionPatch{Region: "r2", Source: "region r2 loop k = 0 to 15 {\n  a[k] = (b[k] + 5)\n}\n"}
	got, err := s.Label(ctx, Request{Base: fpHexOf(t, deltaBaseSrc), Patches: []RegionPatch{patch}})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := applyPatches(deltaBaseSrc, []RegionPatch{patch})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(composed, "region r2") {
		t.Fatalf("patch did not append:\n%s", composed)
	}
	if want := labelFresh(t, composed, false); !bytes.Equal(got, want) {
		t.Fatalf("append delta bytes differ from full re-label")
	}
	var doc LabelResponse
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Regions) != 3 {
		t.Fatalf("composed program has %d regions, want 3", len(doc.Regions))
	}
}

// The corpus-wide equivalence sweep: for every fuzz reproducer, mutate
// its first region through the delta path and assert the response is
// byte-identical to fully labeling the composed program, with the
// recompute counters accounting for every region.
func TestDeltaEquivalenceCorpus(t *testing.T) {
	corpus, err := fuzz.LoadCorpus("../proptest/testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Skip("no corpus entries")
	}
	ctx := context.Background()
	tested := 0
	for _, entry := range corpus {
		entry := entry
		t.Run(strings.TrimSuffix(strings.TrimPrefix(entry.Path, "../proptest/testdata/corpus/"), ".prog"), func(t *testing.T) {
			p, err := entry.Program()
			if err != nil {
				t.Fatalf("corpus entry does not parse: %v", err)
			}
			if len(p.Regions) == 0 || len(p.Vars) == 0 {
				t.Skip("nothing to patch")
			}
			src := p.Format()

			s := New(testConfig())
			defer s.Close()
			if _, err := s.Label(ctx, Request{Program: src}); err != nil {
				t.Fatalf("base label: %v", err)
			}

			patch := mutateFirstRegion(t, src, p)
			got, err := s.Label(ctx, Request{Base: fpHexOf(t, src), Patches: []RegionPatch{patch}})
			if err != nil {
				t.Fatalf("delta label: %v", err)
			}
			composed, err := applyPatches(src, []RegionPatch{patch})
			if err != nil {
				t.Fatal(err)
			}
			if want := labelFresh(t, composed, false); !bytes.Equal(got, want) {
				t.Fatalf("delta bytes differ from full re-label of composed program\npatch: %s\ndelta: %s\nfull:  %s",
					patch.Source, got, want)
			}

			snap := s.Metrics().SnapshotNow()
			if snap.RegionsRelabeled < 1 {
				t.Fatalf("mutated region was not re-labeled (relabeled=%d)", snap.RegionsRelabeled)
			}
			cp, err := lang.Parse(composed)
			if err != nil {
				t.Fatal(err)
			}
			if total := snap.RegionsRelabeled + snap.RegionsReused; total != int64(len(cp.Regions)) {
				t.Fatalf("relabeled+reused = %d, want %d (every region accounted for)", total, len(cp.Regions))
			}
			tested++
		})
	}
	t.Logf("delta equivalence held across %d corpus programs", tested)
}

// mutateFirstRegion builds a patch replacing the first region's body
// with a single self-increment of the program's first variable — a
// mutation that parses for any program (the subscript arity comes from
// the variable's own dimensions).
func mutateFirstRegion(t testing.TB, src string, p *ir.Program) RegionPatch {
	t.Helper()
	_, blocks := splitSource(src)
	if len(blocks) == 0 {
		t.Fatal("splitSource found no region blocks")
	}
	block := blocks[0]
	nl := strings.IndexByte(block.text, '\n')
	if nl < 0 {
		t.Fatalf("malformed region block: %q", block.text)
	}
	header := block.text[:nl]
	ref := p.Vars[0].Name + strings.Repeat("[0]", len(p.Vars[0].Dims))
	stmt := ref + " = (" + ref + " + 1)"
	if strings.Contains(" "+header+" ", " cfg ") {
		// CFG regions need segment bodies; preserve the liveout line when
		// the original declares one.
		body := ""
		rest := block.text[nl+1:]
		if line, _, ok := strings.Cut(rest, "\n"); ok && strings.HasPrefix(line, "  liveout") {
			body = line + "\n"
		}
		return RegionPatch{
			Region: block.name,
			Source: header + "\n" + body + "  segment s0 {\n    " + stmt + "\n  }\n}\n",
		}
	}
	return RegionPatch{
		Region: block.name,
		Source: header + "\n  " + stmt + "\n}\n",
	}
}

func TestDeltaUnknownBase(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	_, err := s.Label(context.Background(), Request{Base: strings.Repeat("00", 32)})
	if !errors.Is(err, ErrUnknownBase) {
		t.Fatalf("err = %v, want ErrUnknownBase", err)
	}
	snap := s.Metrics().SnapshotNow()
	if snap.DeltaRequests != 1 || snap.DeltaUnknownBase != 1 {
		t.Fatalf("delta_requests/unknown = %d/%d, want 1/1", snap.DeltaRequests, snap.DeltaUnknownBase)
	}
}

func TestDeltaDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.DeltaBases = -1
	s := New(cfg)
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Label(ctx, Request{Program: deltaBaseSrc}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Label(ctx, Request{Base: fpHexOf(t, deltaBaseSrc)})
	if !errors.Is(err, ErrUnknownBase) {
		t.Fatalf("err = %v, want ErrUnknownBase when delta serving is disabled", err)
	}
}

func TestDeltaBaseRegistryEviction(t *testing.T) {
	cfg := testConfig()
	cfg.DeltaBases = 1
	s := New(cfg)
	defer s.Close()
	ctx := context.Background()

	other := strings.Replace(deltaBaseSrc, "program delta_test", "program delta_other", 1)
	if _, err := s.Label(ctx, Request{Program: deltaBaseSrc}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Label(ctx, Request{Program: other}); err != nil {
		t.Fatal(err)
	}
	// Capacity 1: labeling `other` evicted the first base.
	if _, err := s.Label(ctx, Request{Base: fpHexOf(t, deltaBaseSrc)}); !errors.Is(err, ErrUnknownBase) {
		t.Fatalf("err = %v, want ErrUnknownBase after eviction", err)
	}
	if _, err := s.Label(ctx, Request{Base: fpHexOf(t, other)}); err != nil {
		t.Fatalf("most recent base must survive: %v", err)
	}
}

func TestDeltaRequestValidation(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Label(ctx, Request{Program: deltaBaseSrc}); err != nil {
		t.Fatal(err)
	}
	base := fpHexOf(t, deltaBaseSrc)

	cases := []struct {
		name string
		req  Request
	}{
		{"base and program", Request{Base: base, Program: deltaBaseSrc}},
		{"base and example", Request{Base: base, Example: "fig2"}},
		{"patches without base", Request{Program: deltaBaseSrc, Patches: []RegionPatch{{Region: "r1", Source: deltaPatchR1}}}},
		{"patch name mismatch", Request{Base: base, Patches: []RegionPatch{{Region: "r0", Source: deltaPatchR1}}}},
		{"patch empty name", Request{Base: base, Patches: []RegionPatch{{Source: deltaPatchR1}}}},
		{"patch does not parse", Request{Base: base, Patches: []RegionPatch{{Region: "r1", Source: "region r1 {{{"}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Label(ctx, tc.req)
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("err = %v, want ErrBadRequest", err)
			}
		})
	}
}

// A no-patch delta resolves to the base itself and must serve the same
// bytes as the original full request.
func TestDeltaNoPatchesServesBase(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ctx := context.Background()
	full, err := s.Label(ctx, Request{Program: deltaBaseSrc})
	if err != nil {
		t.Fatal(err)
	}
	viaBase, err := s.Label(ctx, Request{Base: fpHexOf(t, deltaBaseSrc)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, viaBase) {
		t.Fatalf("base-only delta differs from original full response")
	}
}

func TestSplitSourceRoundTrip(t *testing.T) {
	p, err := lang.Parse(deltaBaseSrc)
	if err != nil {
		t.Fatal(err)
	}
	src := p.Format()
	header, blocks := splitSource(src)
	if len(blocks) != 2 || blocks[0].name != "r0" || blocks[1].name != "r1" {
		t.Fatalf("splitSource blocks = %+v", blocks)
	}
	var b strings.Builder
	b.WriteString(header)
	for _, blk := range blocks {
		b.WriteString(blk.text)
	}
	if b.String() != src {
		t.Fatalf("splitSource does not round-trip:\n%q\nvs\n%q", b.String(), src)
	}
}
