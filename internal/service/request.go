package service

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"refidem/internal/api"
	"refidem/internal/engine"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/lang"
	"refidem/internal/workloads"
)

// The wire protocol lives in internal/api — one versioned definition
// shared by this server, the typed client, the daemons and the router.
// The aliases keep the service package's historical names compiling for
// in-process callers; they are the same types, so the JSON bytes are
// unchanged by construction.
const (
	OpLabel    = api.OpLabel
	OpSimulate = api.OpSimulate
)

// Aliased wire documents (see internal/api for field documentation).
type (
	Request          = api.Request
	RegionPatch      = api.RegionPatch
	LabelResponse    = api.LabelResponse
	RegionLabeling   = api.RegionLabeling
	CategoryFraction = api.CategoryFraction
	RefLabel         = api.RefLabel
	SimulateResponse = api.SimulateResponse
	ModelRow         = api.ModelRow
	BatchRequest     = api.BatchRequest
	BatchResponse    = api.BatchResponse
	Health           = api.Health
)

// Aliased error taxonomy (see internal/api). errors.Is against these
// works for in-process and wire errors alike.
var (
	ErrBadRequest  = api.ErrBadRequest
	ErrOverloaded  = api.ErrOverloaded
	ErrClosed      = api.ErrClosed
	ErrTimeout     = api.ErrTimeout
	ErrUnknownBase = api.ErrUnknownBase
)

// resolveProgram parses or looks up the request's program. The program is
// validated here, in the submitting goroutine, so admission rejects
// malformed requests before they consume queue space. Delta requests
// (req.Base != "") are resolved by the server's resolveRequest, which has
// access to the base registry; this free function handles the stateless
// selectors.
func resolveProgram(req Request) (*ir.Program, error) {
	switch {
	case req.Program != "" && req.Example != "":
		return nil, fmt.Errorf("use either program or example, not both")
	case req.Program != "":
		return lang.Parse(req.Program)
	case req.Example != "":
		switch req.Example {
		case "fig1", "intro":
			return workloads.IntroExample(), nil
		case "fig2":
			return workloads.Figure2(), nil
		case "fig3":
			return workloads.Figure3(), nil
		case "buts", "fig4":
			return workloads.ButsDO1(8), nil
		default:
			return nil, fmt.Errorf("unknown example %q (want fig1, fig2, fig3, buts)", req.Example)
		}
	default:
		return nil, fmt.Errorf("empty request: pass program source, an example name, or a base fingerprint with patches")
	}
}

// marshalResponse renders a response document: two-space indent, trailing
// newline. encoding/json emits struct fields in declaration order and
// formats floats with the shortest round-trip representation, so the
// bytes are a pure function of the document.
func marshalResponse(doc any) ([]byte, error) {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// renderRegionLabeling builds one region's row of a label document from
// its labeling result. It is the single rendering body shared by the
// full-program path and the delta fragment cache, so a reused fragment
// is byte-identical to a fresh rendering by construction. The Deps list
// is always rendered (the fragment cache stores it once and strips it
// for requests that did not ask); stripDeps below removes it.
func renderRegionLabeling(r *ir.Region, res *idem.Result) RegionLabeling {
	total, byCat := res.IdempotentFraction()
	reg := RegionLabeling{
		Name:             r.Name,
		Kind:             fmt.Sprint(r.Kind),
		FullyIndependent: res.FullyIndependent,
		IdemFraction:     total,
		Refs:             make([]RefLabel, 0, len(r.Refs)),
	}
	for _, c := range []idem.Category{idem.CatReadOnly, idem.CatPrivate, idem.CatSharedDependent, idem.CatFullyIndependent} {
		if f := byCat[c]; f > 0 {
			reg.Categories = append(reg.Categories, CategoryFraction{Category: c.String(), Fraction: f})
		}
	}
	for _, ref := range r.Refs {
		segName := fmt.Sprint(ref.SegID)
		if s := r.Seg(ref.SegID); s != nil && s.Name != "" {
			segName = s.Name
		}
		row := RefLabel{
			Ref:       refText(ref),
			Segment:   segName,
			Label:     res.Label(ref).String(),
			Category:  res.Category(ref).String(),
			CrossSink: res.Deps.IsCrossSink(ref),
		}
		if ref.Access == ir.Write {
			isRFW := res.RFW.IsRFW(ref)
			row.RFW = &isRFW
		}
		reg.Refs = append(reg.Refs, row)
	}
	reg.Deps = make([]string, 0, len(res.Deps.All))
	for _, d := range res.Deps.All {
		reg.Deps = append(reg.Deps, fmt.Sprint(d))
	}
	sort.Strings(reg.Deps)
	return reg
}

// stripDeps returns the row without its dependence list (requests that
// did not set "deps"). Rows are value types, so the fragment cache's
// copy is untouched.
func stripDeps(reg RegionLabeling) RegionLabeling {
	reg.Deps = nil
	return reg
}

// renderLabelResponse builds the label document from a canonical labeled
// program (as returned by a cache shard). fp is the program's content
// fingerprint, already computed at admission.
func renderLabelResponse(fp ir.Fingerprint, p *ir.Program, labs map[*ir.Region]*idem.Result, withDeps bool) ([]byte, error) {
	doc := LabelResponse{
		Op:          OpLabel,
		Program:     p.Name,
		Fingerprint: hex.EncodeToString(fp[:]),
		Regions:     make([]RegionLabeling, 0, len(p.Regions)),
	}
	for _, r := range p.Regions {
		reg := renderRegionLabeling(r, labs[r])
		if !withDeps {
			reg = stripDeps(reg)
		}
		doc.Regions = append(doc.Regions, reg)
	}
	return marshalResponse(doc)
}

// traceTally aggregates the trace-JIT counters of one simulate
// computation (all zero when the server runs untraced). It rides next to
// the response bytes so the metrics counters can advance without the
// JSON document changing shape.
type traceTally struct {
	compiled int64
	bailouts int64
	elided   int64
}

// renderSimulateResponse executes the labeled program under all three
// models on cfg, verifies the speculative runs against the sequential
// memory state, and builds the simulate document.
func renderSimulateResponse(fp ir.Fingerprint, p *ir.Program, labs map[*ir.Region]*idem.Result, cfg engine.Config) ([]byte, traceTally, error) {
	var tt traceTally
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		return nil, tt, err
	}
	hose, err := engine.RunSpeculative(p, labs, cfg, engine.HOSE)
	if err != nil {
		return nil, tt, err
	}
	caseR, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
	if err != nil {
		return nil, tt, err
	}
	for _, r := range []*engine.Result{hose, caseR} {
		tt.compiled += r.Stats.TracesCompiled
		tt.bailouts += r.Stats.TraceBailouts
		tt.elided += r.Stats.TraceElidedOps
	}
	for _, r := range []*engine.Result{hose, caseR} {
		if err := engine.LiveOutMismatch(p, labs, seq, r); err != nil {
			return nil, tt, fmt.Errorf("%v run produced wrong results: %v", r.Mode, err)
		}
	}
	doc := SimulateResponse{
		Op:           OpSimulate,
		Program:      p.Name,
		Fingerprint:  hex.EncodeToString(fp[:]),
		Processors:   cfg.Processors,
		SpecCapacity: cfg.SpecCapacity,
		Verified:     true,
	}
	for _, r := range []*engine.Result{seq, hose, caseR} {
		row := ModelRow{
			Mode:                r.Mode.String(),
			Cycles:              r.Cycles,
			Speedup:             float64(seq.Cycles) / float64(r.Cycles),
			DynRefs:             r.Stats.DynRefs,
			IdemRefs:            r.Stats.IdemRefs,
			Overflows:           r.Stats.Overflows,
			OverflowStallCycles: r.Stats.OverflowStallCycles,
			FlowViolations:      r.Stats.FlowViolations,
			ControlViolations:   r.Stats.ControlViolations,
			PeakSpecOccupancy:   r.Stats.PeakSpecOccupancy,
		}
		if r.Mode != engine.Sequential && r.Cycles > 0 {
			row.UtilizationPct = 100 * float64(r.Stats.BusyCycles) /
				float64(int64(cfg.Processors)*r.Cycles)
		}
		doc.Models = append(doc.Models, row)
	}
	b, err := marshalResponse(doc)
	return b, tt, err
}

// refText renders a reference as "access var[subs]" (the cmd/idemlabel
// convention).
func refText(ref *ir.Ref) string {
	s := ref.Var.Name
	if len(ref.Subs) > 0 {
		s += "["
		for i, sub := range ref.Subs {
			if i > 0 {
				s += ","
			}
			s += sub.String()
		}
		s += "]"
	}
	return fmt.Sprintf("%s %s", ref.Access, s)
}
