package service

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"refidem/internal/engine"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/lang"
	"refidem/internal/workloads"
)

// Operation names. The HTTP endpoints imply them; batch items carry them
// explicitly.
const (
	OpLabel    = "label"
	OpSimulate = "simulate"
)

// Request is one analysis request. Exactly one of Program (mini-language
// source text) and Example (a built-in worked example: fig1, fig2, fig3,
// buts) selects the program.
type Request struct {
	// Op is the operation: OpLabel or OpSimulate. The typed endpoints
	// (Label, Simulate, /v1/label, /v1/simulate) fill it in; batch items
	// must set it.
	Op string `json:"op,omitempty"`
	// Program is mini-language source text (see internal/lang).
	Program string `json:"program,omitempty"`
	// Example names a built-in program: fig1, fig2, fig3, buts.
	Example string `json:"example,omitempty"`
	// Deps includes the may-dependence list in label responses.
	Deps bool `json:"deps,omitempty"`
	// Procs overrides the simulated processor count (simulate only;
	// 0 keeps the server's base machine).
	Procs int `json:"procs,omitempty"`
	// Capacity overrides the per-segment speculative storage capacity
	// (simulate only; 0 keeps the server's base machine).
	Capacity int `json:"capacity,omitempty"`
}

// resolveProgram parses or looks up the request's program. The program is
// validated here, in the submitting goroutine, so admission rejects
// malformed requests before they consume queue space.
func (req Request) resolveProgram() (*ir.Program, error) {
	switch {
	case req.Program != "" && req.Example != "":
		return nil, fmt.Errorf("use either program or example, not both")
	case req.Program != "":
		return lang.Parse(req.Program)
	case req.Example != "":
		switch req.Example {
		case "fig1", "intro":
			return workloads.IntroExample(), nil
		case "fig2":
			return workloads.Figure2(), nil
		case "fig3":
			return workloads.Figure3(), nil
		case "buts", "fig4":
			return workloads.ButsDO1(8), nil
		default:
			return nil, fmt.Errorf("unknown example %q (want fig1, fig2, fig3, buts)", req.Example)
		}
	default:
		return nil, fmt.Errorf("empty request: pass program source or an example name")
	}
}

// LabelResponse is the document served for label requests. Field order,
// slice ordering and float formatting are all deterministic: identical
// programs yield byte-identical documents.
type LabelResponse struct {
	Op          string           `json:"op"`
	Program     string           `json:"program"`
	Fingerprint string           `json:"fingerprint"`
	Regions     []RegionLabeling `json:"regions"`
}

// RegionLabeling is one region's labeling in a LabelResponse.
type RegionLabeling struct {
	Name             string             `json:"name"`
	Kind             string             `json:"kind"`
	FullyIndependent bool               `json:"fully_independent"`
	IdemFraction     float64            `json:"idem_fraction"`
	Categories       []CategoryFraction `json:"categories,omitempty"`
	Refs             []RefLabel         `json:"refs"`
	Deps             []string           `json:"deps,omitempty"`
}

// CategoryFraction reports the static fraction of one idempotency
// category (only categories with a non-zero fraction appear, in the
// paper's §4.1 order).
type CategoryFraction struct {
	Category string  `json:"category"`
	Fraction float64 `json:"fraction"`
}

// RefLabel is one reference row: the same evidence cmd/idemlabel prints.
type RefLabel struct {
	Ref      string `json:"ref"`
	Segment  string `json:"segment"`
	Label    string `json:"label"`
	Category string `json:"category"`
	// RFW reports re-occurring-first-write status; writes only.
	RFW       *bool `json:"rfw,omitempty"`
	CrossSink bool  `json:"cross_sink"`
}

// SimulateResponse is the document served for simulate requests.
type SimulateResponse struct {
	Op           string     `json:"op"`
	Program      string     `json:"program"`
	Fingerprint  string     `json:"fingerprint"`
	Processors   int        `json:"processors"`
	SpecCapacity int        `json:"spec_capacity"`
	Models       []ModelRow `json:"models"`
	// Verified reports that both speculative runs reproduced the
	// sequential live-out memory state (it is always true in a served
	// response; a mismatch is an error instead).
	Verified bool `json:"verified"`
}

// ModelRow is one execution model's outcome in a SimulateResponse.
type ModelRow struct {
	Mode                string  `json:"mode"`
	Cycles              int64   `json:"cycles"`
	Speedup             float64 `json:"speedup"`
	DynRefs             int64   `json:"dyn_refs"`
	IdemRefs            int64   `json:"idem_refs"`
	Overflows           int64   `json:"overflows"`
	OverflowStallCycles int64   `json:"overflow_stall_cycles"`
	FlowViolations      int64   `json:"flow_violations"`
	ControlViolations   int64   `json:"control_violations"`
	PeakSpecOccupancy   int     `json:"peak_spec_occupancy"`
	UtilizationPct      float64 `json:"utilization_pct"`
}

// marshalResponse renders a response document: two-space indent, trailing
// newline. encoding/json emits struct fields in declaration order and
// formats floats with the shortest round-trip representation, so the
// bytes are a pure function of the document.
func marshalResponse(doc any) ([]byte, error) {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// renderLabelResponse builds the label document from a canonical labeled
// program (as returned by a cache shard). fp is the program's content
// fingerprint, already computed at admission.
func renderLabelResponse(fp ir.Fingerprint, p *ir.Program, labs map[*ir.Region]*idem.Result, withDeps bool) ([]byte, error) {
	doc := LabelResponse{
		Op:          OpLabel,
		Program:     p.Name,
		Fingerprint: hex.EncodeToString(fp[:]),
		Regions:     make([]RegionLabeling, 0, len(p.Regions)),
	}
	for _, r := range p.Regions {
		res := labs[r]
		total, byCat := res.IdempotentFraction()
		reg := RegionLabeling{
			Name:             r.Name,
			Kind:             fmt.Sprint(r.Kind),
			FullyIndependent: res.FullyIndependent,
			IdemFraction:     total,
			Refs:             make([]RefLabel, 0, len(r.Refs)),
		}
		for _, c := range []idem.Category{idem.CatReadOnly, idem.CatPrivate, idem.CatSharedDependent, idem.CatFullyIndependent} {
			if f := byCat[c]; f > 0 {
				reg.Categories = append(reg.Categories, CategoryFraction{Category: c.String(), Fraction: f})
			}
		}
		for _, ref := range r.Refs {
			segName := fmt.Sprint(ref.SegID)
			if s := r.Seg(ref.SegID); s != nil && s.Name != "" {
				segName = s.Name
			}
			row := RefLabel{
				Ref:       refText(ref),
				Segment:   segName,
				Label:     res.Label(ref).String(),
				Category:  res.Category(ref).String(),
				CrossSink: res.Deps.IsCrossSink(ref),
			}
			if ref.Access == ir.Write {
				isRFW := res.RFW.IsRFW(ref)
				row.RFW = &isRFW
			}
			reg.Refs = append(reg.Refs, row)
		}
		if withDeps {
			reg.Deps = make([]string, 0, len(res.Deps.All))
			for _, d := range res.Deps.All {
				reg.Deps = append(reg.Deps, fmt.Sprint(d))
			}
			sort.Strings(reg.Deps)
		}
		doc.Regions = append(doc.Regions, reg)
	}
	return marshalResponse(doc)
}

// traceTally aggregates the trace-JIT counters of one simulate
// computation (all zero when the server runs untraced). It rides next to
// the response bytes so the metrics counters can advance without the
// JSON document changing shape.
type traceTally struct {
	compiled int64
	bailouts int64
	elided   int64
}

// renderSimulateResponse executes the labeled program under all three
// models on cfg, verifies the speculative runs against the sequential
// memory state, and builds the simulate document.
func renderSimulateResponse(fp ir.Fingerprint, p *ir.Program, labs map[*ir.Region]*idem.Result, cfg engine.Config) ([]byte, traceTally, error) {
	var tt traceTally
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		return nil, tt, err
	}
	hose, err := engine.RunSpeculative(p, labs, cfg, engine.HOSE)
	if err != nil {
		return nil, tt, err
	}
	caseR, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
	if err != nil {
		return nil, tt, err
	}
	for _, r := range []*engine.Result{hose, caseR} {
		tt.compiled += r.Stats.TracesCompiled
		tt.bailouts += r.Stats.TraceBailouts
		tt.elided += r.Stats.TraceElidedOps
	}
	for _, r := range []*engine.Result{hose, caseR} {
		if err := engine.LiveOutMismatch(p, labs, seq, r); err != nil {
			return nil, tt, fmt.Errorf("%v run produced wrong results: %v", r.Mode, err)
		}
	}
	doc := SimulateResponse{
		Op:           OpSimulate,
		Program:      p.Name,
		Fingerprint:  hex.EncodeToString(fp[:]),
		Processors:   cfg.Processors,
		SpecCapacity: cfg.SpecCapacity,
		Verified:     true,
	}
	for _, r := range []*engine.Result{seq, hose, caseR} {
		row := ModelRow{
			Mode:                r.Mode.String(),
			Cycles:              r.Cycles,
			Speedup:             float64(seq.Cycles) / float64(r.Cycles),
			DynRefs:             r.Stats.DynRefs,
			IdemRefs:            r.Stats.IdemRefs,
			Overflows:           r.Stats.Overflows,
			OverflowStallCycles: r.Stats.OverflowStallCycles,
			FlowViolations:      r.Stats.FlowViolations,
			ControlViolations:   r.Stats.ControlViolations,
			PeakSpecOccupancy:   r.Stats.PeakSpecOccupancy,
		}
		if r.Mode != engine.Sequential && r.Cycles > 0 {
			row.UtilizationPct = 100 * float64(r.Stats.BusyCycles) /
				float64(int64(cfg.Processors)*r.Cycles)
		}
		doc.Models = append(doc.Models, row)
	}
	b, err := marshalResponse(doc)
	return b, tt, err
}

// refText renders a reference as "access var[subs]" (the cmd/idemlabel
// convention).
func refText(ref *ir.Ref) string {
	s := ref.Var.Name
	if len(ref.Subs) > 0 {
		s += "["
		for i, sub := range ref.Subs {
			if i > 0 {
				s += ","
			}
			s += sub.String()
		}
		s += "]"
	}
	return fmt.Sprintf("%s %s", ref.Access, s)
}
