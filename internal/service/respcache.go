package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// respKey identifies a cacheable response: the operation, a content hash
// of the request's program text (or example name) and every parameter
// that shapes the response document. Two requests with equal keys are
// answered with byte-identical documents, so caching the bytes is exact.
type respKey struct {
	op       string
	src      [sha256.Size]byte
	deps     bool
	procs    int
	capacity int
}

// respKeyOf hashes the request's program selector. It is computed before
// parsing, so a response-cache hit skips the parser entirely; requests
// whose source text differs only in formatting miss here and are caught
// by the (post-parse, fingerprint-keyed) program cache instead. The
// []byte(prefix + text) form compiles to a single fused allocation —
// measurably cheaper than separate io.WriteString calls, and the
// allocs/op gate on BenchmarkServiceLabelSerial holds it there.
func respKeyOf(req Request) respKey {
	h := sha256.New()
	switch {
	case req.Example != "":
		h.Write([]byte("example:" + req.Example))
	case req.Base != "":
		// Delta selector: the base fingerprint plus every patch,
		// length-prefixed so adjacent fields cannot alias across requests.
		h.Write([]byte("base:" + req.Base))
		var lenbuf [8]byte
		for _, p := range req.Patches {
			binary.BigEndian.PutUint64(lenbuf[:], uint64(len(p.Region)))
			h.Write(lenbuf[:])
			h.Write([]byte(p.Region))
			binary.BigEndian.PutUint64(lenbuf[:], uint64(len(p.Source)))
			h.Write(lenbuf[:])
			h.Write([]byte(p.Source))
		}
	default:
		h.Write([]byte("src:" + req.Program))
	}
	k := respKey{op: req.Op, deps: req.Deps, procs: req.Procs, capacity: req.Capacity}
	h.Sum(k.src[:0])
	return k
}

// respShard is one LRU shard of the response cache. Responses are
// immutable byte slices, shared with callers.
type respShard struct {
	mu    sync.Mutex
	cap   int
	m     map[respKey]*list.Element
	order *list.List // front = most recently used; values are *respEntry
}

type respEntry struct {
	key  respKey
	resp []byte
}

func newRespShard(capacity int) *respShard {
	return &respShard{cap: capacity, m: make(map[respKey]*list.Element), order: list.New()}
}

func (rs *respShard) get(k respKey) ([]byte, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	el, ok := rs.m[k]
	if !ok {
		return nil, false
	}
	rs.order.MoveToFront(el)
	return el.Value.(*respEntry).resp, true
}

func (rs *respShard) put(k respKey, resp []byte) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if el, ok := rs.m[k]; ok {
		rs.order.MoveToFront(el)
		el.Value.(*respEntry).resp = resp
		return
	}
	rs.m[k] = rs.order.PushFront(&respEntry{key: k, resp: resp})
	for rs.order.Len() > rs.cap {
		victim := rs.order.Back()
		rs.order.Remove(victim)
		delete(rs.m, victim.Value.(*respEntry).key)
	}
}

func (rs *respShard) len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.order.Len()
}

// respCache is the sharded response cache. The shard of a key is chosen
// by its content hash, like the program cache's fingerprint sharding.
type respCache struct {
	shards []*respShard
}

func newRespCache(shards, capacityPerShard int) *respCache {
	c := &respCache{shards: make([]*respShard, shards)}
	for i := range c.shards {
		c.shards[i] = newRespShard(capacityPerShard)
	}
	return c
}

func (c *respCache) shardFor(k respKey) *respShard {
	return c.shards[binary.BigEndian.Uint64(k.src[:8])%uint64(len(c.shards))]
}

func (c *respCache) get(k respKey) ([]byte, bool) { return c.shardFor(k).get(k) }
func (c *respCache) put(k respKey, resp []byte)   { c.shardFor(k).put(k, resp) }

func (c *respCache) entries() int {
	n := 0
	for _, s := range c.shards {
		n += s.len()
	}
	return n
}
