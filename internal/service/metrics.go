package service

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"refidem/internal/deps"
)

// latencyBuckets is the number of power-of-two latency histogram buckets:
// bucket i counts requests with latency <= 2^i microseconds, so the
// histogram spans 1 µs .. ~67 s with one overflow bucket at the end.
const latencyBuckets = 27

// Metrics holds the server's counters. All fields are atomically updated
// and safe to read while the server runs; RenderMetricz produces the
// /metricz text document.
type Metrics struct {
	// Per-endpoint request counters (batch items count under their op;
	// batchCalls counts /v1/batch invocations themselves;
	// timelineRequests counts /v1/simulate?timeline=1 exports, which
	// bypass the queue and caches and so appear under no other counter).
	labelRequests    atomic.Int64
	simulateRequests atomic.Int64
	batchCalls       atomic.Int64
	timelineRequests atomic.Int64

	// Outcome counters.
	badRequests atomic.Int64
	overloaded  atomic.Int64
	coalesced   atomic.Int64
	computed    atomic.Int64
	// respHits counts requests answered from the response byte cache
	// without touching the parser or the queue.
	respHits atomic.Int64
	// timeouts counts requests that exceeded the configured per-request
	// deadline (served as 504 by the HTTP layer).
	timeouts atomic.Int64

	// Delta re-labeling counters (see delta.go). deltaRequests counts
	// requests that resolved through the base registry (response-cache
	// hits on repeated deltas do not reach resolution and are counted
	// under respHits); deltaUnknownBase counts delta requests whose base
	// the registry did not hold (served as 404). regionsReused and
	// regionsRelabeled count, over delta label computations, regions
	// answered from the fragment cache versus re-labeled — their ratio is
	// the realized incrementality.
	deltaRequests    atomic.Int64
	deltaUnknownBase atomic.Int64
	regionsReused    atomic.Int64
	regionsRelabeled atomic.Int64

	// Persistent-store counters (all zero when no store is configured).
	// storeWarmHits counts tasks answered from the warm-start index;
	// storeHits counts tasks answered by a runtime backend read;
	// storeWarmEntries tracks warm-start records not yet served.
	storeWarmHits    atomic.Int64
	storeHits        atomic.Int64
	storeWarmEntries atomic.Int64
	// storeWrites/storeWriteErrors count write-behind persistence
	// outcomes; storeDroppedWrites counts writes dropped by a full queue
	// or a degraded store; storeCorrupt counts corrupt records detected
	// (and quarantined) on the read path; storeReadErrors counts backend
	// read faults.
	storeWrites        atomic.Int64
	storeWriteErrors   atomic.Int64
	storeDroppedWrites atomic.Int64
	storeCorrupt       atomic.Int64
	storeReadErrors    atomic.Int64
	// storeDegradedEvents counts ok→degraded transitions;
	// storeRecoveries counts degraded→ok transitions; storeProbeFailures
	// counts failed re-probes while degraded.
	storeDegradedEvents atomic.Int64
	storeRecoveries     atomic.Int64
	storeProbeFailures  atomic.Int64

	// Dispatch counters: batches admitted to the worker pool and the
	// tasks they carried (their ratio is the realized batching factor).
	batches    atomic.Int64
	batchTasks atomic.Int64

	// Trace-JIT counters, aggregated over computed simulate requests
	// (all zero when Config.Engine.Traced is off). traceCompiled counts
	// superblocks compiled, traceBailouts counts guard failures and
	// overflow bailouts back to the interpreter, guardElided counts
	// memory references that ran direct inside traces because their
	// idempotency label removed the guard.
	traceCompiled atomic.Int64
	traceBailouts atomic.Int64
	guardElided   atomic.Int64

	// Latency histogram over completed requests (coalesced waiters
	// included): bucket i counts latencies <= 2^i µs.
	latency [latencyBuckets + 1]atomic.Int64
	// latencySumNs accumulates total latency for the mean.
	latencySumNs atomic.Int64
}

func newMetrics() *Metrics { return &Metrics{} }

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// observeLatency records one completed request's latency.
func (m *Metrics) observeLatency(d time.Duration) {
	us := d.Microseconds()
	b := 0
	for b < latencyBuckets && us > 1<<b {
		b++
	}
	m.latency[b].Add(1)
	m.latencySumNs.Add(d.Nanoseconds())
}

// Snapshot is a point-in-time copy of every counter, for tests and the
// load harness.
type Snapshot struct {
	LabelRequests, SimulateRequests, BatchCalls int64
	TimelineRequests                            int64
	BadRequests, Overloaded, Coalesced          int64
	Computed, RespHits, Batches, BatchTasks     int64
	LatencyCount, LatencySumNs                  int64
	Timeouts                                    int64
	DeltaRequests, DeltaUnknownBase             int64
	RegionsReused, RegionsRelabeled             int64
	StoreWarmHits, StoreHits, StoreWarmEntries  int64
	StoreWrites, StoreWriteErrors               int64
	StoreDroppedWrites, StoreCorrupt            int64
	StoreReadErrors                             int64
	StoreDegradedEvents, StoreRecoveries        int64
	StoreProbeFailures                          int64
	TraceCompiled, TraceBailouts, GuardElided   int64
}

// SnapshotNow copies the counters.
func (m *Metrics) SnapshotNow() Snapshot {
	s := Snapshot{
		LabelRequests:       m.labelRequests.Load(),
		SimulateRequests:    m.simulateRequests.Load(),
		BatchCalls:          m.batchCalls.Load(),
		TimelineRequests:    m.timelineRequests.Load(),
		BadRequests:         m.badRequests.Load(),
		Overloaded:          m.overloaded.Load(),
		Coalesced:           m.coalesced.Load(),
		Computed:            m.computed.Load(),
		RespHits:            m.respHits.Load(),
		Batches:             m.batches.Load(),
		BatchTasks:          m.batchTasks.Load(),
		LatencySumNs:        m.latencySumNs.Load(),
		Timeouts:            m.timeouts.Load(),
		DeltaRequests:       m.deltaRequests.Load(),
		DeltaUnknownBase:    m.deltaUnknownBase.Load(),
		RegionsReused:       m.regionsReused.Load(),
		RegionsRelabeled:    m.regionsRelabeled.Load(),
		StoreWarmHits:       m.storeWarmHits.Load(),
		StoreHits:           m.storeHits.Load(),
		StoreWarmEntries:    m.storeWarmEntries.Load(),
		StoreWrites:         m.storeWrites.Load(),
		StoreWriteErrors:    m.storeWriteErrors.Load(),
		StoreDroppedWrites:  m.storeDroppedWrites.Load(),
		StoreCorrupt:        m.storeCorrupt.Load(),
		StoreReadErrors:     m.storeReadErrors.Load(),
		StoreDegradedEvents: m.storeDegradedEvents.Load(),
		StoreRecoveries:     m.storeRecoveries.Load(),
		StoreProbeFailures:  m.storeProbeFailures.Load(),
		TraceCompiled:       m.traceCompiled.Load(),
		TraceBailouts:       m.traceBailouts.Load(),
		GuardElided:         m.guardElided.Load(),
	}
	for i := range m.latency {
		s.LatencyCount += m.latency[i].Load()
	}
	return s
}

// RenderMetricz renders the /metricz document: one "name value" line per
// counter in fixed order, followed by the aggregate cache statistics and
// the latency histogram (cumulative buckets; empty leading buckets are
// elided).
func (s *Server) RenderMetricz() string {
	m := s.metrics
	var b strings.Builder
	w := func(name string, v int64) { fmt.Fprintf(&b, "%s %d\n", name, v) }
	w("requests_label", m.labelRequests.Load())
	w("requests_simulate", m.simulateRequests.Load())
	w("requests_batch_calls", m.batchCalls.Load())
	w("requests_timeline", m.timelineRequests.Load())
	w("requests_bad", m.badRequests.Load())
	w("requests_timeout", m.timeouts.Load())
	w("rejected_overloaded", m.overloaded.Load())
	w("coalesced_requests", m.coalesced.Load())
	w("tasks_computed", m.computed.Load())
	w("delta_requests", m.deltaRequests.Load())
	w("delta_unknown_base", m.deltaUnknownBase.Load())
	w("delta_regions_reused", m.regionsReused.Load())
	w("delta_regions_relabeled", m.regionsRelabeled.Load())
	if s.bases != nil {
		w("delta_base_entries", int64(s.bases.len()))
	} else {
		w("delta_base_entries", 0)
	}
	if s.frags != nil {
		w("delta_fragment_entries", int64(s.frags.len()))
	} else {
		w("delta_fragment_entries", 0)
	}
	w("dispatch_batches", m.batches.Load())
	w("dispatch_batch_tasks", m.batchTasks.Load())
	w("trace_compiled", m.traceCompiled.Load())
	w("trace_bailouts", m.traceBailouts.Load())
	w("guard_elided", m.guardElided.Load())

	// Dependence-ensemble block: per-member query/answer/short-circuit
	// counters, rendered in chain order. The counters are package-wide in
	// internal/deps (labeling runs inside cache shards, not the server),
	// so they aggregate every ensemble consultation in the process; all
	// zero when Config.Ensemble is off.
	ms := deps.MemberStatsNow()
	names := deps.MemberNames()
	for i, name := range names {
		w("deps_member_"+name+"_queries", ms.Queries[i])
		w("deps_member_"+name+"_hits", ms.Hits[i])
		w("deps_member_"+name+"_short_circuits", ms.ShortCircuits[i])
	}

	w("response_cache_hits", m.respHits.Load())
	if s.resp != nil {
		w("response_cache_entries", int64(s.resp.entries()))
	} else {
		w("response_cache_entries", 0)
	}

	// Persistent-store block: store_enabled/store_degraded render the
	// state machine as flags, the rest are cumulative counters.
	state := s.StoreStateNow()
	w("store_enabled", boolToInt(state != StoreDisabled))
	w("store_degraded", boolToInt(state == StoreDegraded))
	w("store_warm_hits", m.storeWarmHits.Load())
	w("store_warm_entries", m.storeWarmEntries.Load())
	w("store_hits", m.storeHits.Load())
	w("store_writes", m.storeWrites.Load())
	w("store_write_errors", m.storeWriteErrors.Load())
	w("store_dropped_writes", m.storeDroppedWrites.Load())
	w("store_corrupt_reads", m.storeCorrupt.Load())
	w("store_read_errors", m.storeReadErrors.Load())
	w("store_degraded_events", m.storeDegradedEvents.Load())
	w("store_recoveries", m.storeRecoveries.Load())
	w("store_probe_failures", m.storeProbeFailures.Load())
	var quarantined int64
	if s.cfg.Store != nil {
		quarantined = s.cfg.Store.Quarantined()
	}
	w("store_quarantined", quarantined)

	cs := s.CacheStats()
	w("cache_shards", int64(len(s.shards)))
	w("cache_hits", cs.Hits)
	w("cache_misses", cs.Misses)
	w("cache_evictions", cs.Evictions)
	w("cache_entries", int64(cs.Entries))
	w("cache_pinned", int64(cs.Pinned))
	w("cache_capacity", int64(cs.Capacity))

	var buckets [latencyBuckets + 1]int64
	var count, cum int64
	for i := range m.latency {
		buckets[i] = m.latency[i].Load()
		count += buckets[i]
	}
	w("latency_count", count)
	if count > 0 {
		w("latency_mean_ns", m.latencySumNs.Load()/count)
	} else {
		w("latency_mean_ns", 0)
	}
	w("latency_p50_us", latencyQuantile(&buckets, count, 50))
	w("latency_p95_us", latencyQuantile(&buckets, count, 95))
	w("latency_p99_us", latencyQuantile(&buckets, count, 99))
	started := false
	for i := 0; i <= latencyBuckets; i++ {
		n := buckets[i]
		cum += n
		if !started && n == 0 && cum == 0 {
			continue
		}
		started = true
		if i < latencyBuckets {
			fmt.Fprintf(&b, "latency_le_us{%d} %d\n", int64(1)<<i, cum)
		} else {
			fmt.Fprintf(&b, "latency_le_us{+inf} %d\n", cum)
		}
		if cum == count {
			break
		}
	}
	return b.String()
}

// latencyQuantile reports the q-th percentile latency (in µs) from a
// histogram snapshot: the upper bound of the first bucket holding the
// rank-⌈count·q/100⌉ observation. A value in the overflow bucket reports
// that bucket's lower bound (2^latencyBuckets µs); an empty histogram
// reports 0. Bucket granularity (power-of-two) bounds the error.
func latencyQuantile(buckets *[latencyBuckets + 1]int64, count, q int64) int64 {
	if count == 0 {
		return 0
	}
	rank := (count*q + 99) / 100
	var cum int64
	for i := 0; i < latencyBuckets; i++ {
		cum += buckets[i]
		if cum >= rank {
			return int64(1) << i
		}
	}
	return int64(1) << latencyBuckets
}
