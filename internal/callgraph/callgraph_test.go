package callgraph

import (
	"strings"
	"testing"

	"refidem/internal/ir"
	"refidem/internal/lang"
)

func parse(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSummariesBottomUp(t *testing.T) {
	p := parse(t, `program p
var a[32]
var b[32]
var s
var t
proc leaf(x) {
  a[x] = b[x] + 1
}
proc mid(x) {
  t = 0
  call leaf(x)
  s = t + 1
}
region r loop i = 0 to 7 {
  liveout a, s
  call mid(i)
}
`)
	cg := Analyze(p)
	if cg.HasRecursion() {
		t.Fatalf("unexpected recursion: %v", cg.Cycle())
	}
	if len(cg.SCCs) != 2 {
		t.Fatalf("SCCs = %d, want 2", len(cg.SCCs))
	}
	// Bottom-up: leaf before mid.
	if cg.SCCs[0][0].Name != "leaf" || cg.SCCs[1][0].Name != "mid" {
		t.Fatalf("SCC order %v/%v, want leaf then mid", cg.SCCs[0][0].Name, cg.SCCs[1][0].Name)
	}
	leaf := cg.Summary(p.Proc("leaf"))
	mid := cg.Summary(p.Proc("mid"))
	if got := strings.Join(VarNames(leaf.Writes), ","); got != "a" {
		t.Fatalf("leaf writes %q, want a", got)
	}
	if got := strings.Join(VarNames(leaf.Reads), ","); got != "b" {
		t.Fatalf("leaf reads %q, want b", got)
	}
	// mid inherits leaf's effects transitively.
	if got := strings.Join(VarNames(mid.Writes), ","); got != "a,s,t" {
		t.Fatalf("mid writes %q, want a,s,t", got)
	}
	if got := strings.Join(VarNames(mid.Reads), ","); got != "b,t" {
		t.Fatalf("mid reads %q, want b,t", got)
	}
	if !leaf.ReadOnly(p.Var("b")) || mid.ReadOnly(p.Var("t")) {
		t.Fatalf("read-only classification wrong")
	}
	// t and s are both defined before any read on every path of mid's own
	// body; b is only read through the callee (not covered).
	if !mid.MustWriteFirst[p.Var("t")] || !mid.MustWriteFirst[p.Var("s")] {
		t.Fatalf("mid must-write-first %v, want s and t", mid.MustWriteFirst)
	}
	if mid.MustWriteFirst[p.Var("b")] {
		t.Fatalf("b is read through the callee, not must-written-first")
	}
	// Region effects: the region's single call carries mid's summary.
	reads, writes := cg.RegionEffects(p.Regions[0])
	if !writes[p.Var("a")] || !writes[p.Var("s")] || !reads[p.Var("b")] {
		t.Fatalf("region effects reads=%v writes=%v", VarNames(reads), VarNames(writes))
	}
}

func TestMayExitPropagates(t *testing.T) {
	p := parse(t, `program p
var s
proc inner(x) {
  exit if s > x
}
proc outer(x) {
  call inner(x)
}
region r loop i = 0 to 7 {
  liveout s
  s = s + i
  call outer(i)
}
`)
	cg := Analyze(p)
	if !cg.Summary(p.Proc("inner")).MayExit || !cg.Summary(p.Proc("outer")).MayExit {
		t.Fatalf("MayExit must propagate to callers")
	}
	if !p.Regions[0].HasEarlyExit() {
		t.Fatalf("region must report the call-carried early exit")
	}
}

func TestAffineParams(t *testing.T) {
	p := parse(t, `program p
var a[64]
var s
proc affine(x) {
  a[2 * x + 1] = 1
}
proc square(x) {
  a[x * x] = 1
}
proc chain(x) {
  call affine(x + 1)
}
proc badchain(x) {
  call square(x)
}
region r loop i = 0 to 3 {
  liveout a
  call affine(i)
  call square(i)
  call chain(i)
  call badchain(i)
  s = i
}
`)
	cg := Analyze(p)
	want := map[string]bool{"affine": true, "square": false, "chain": true, "badchain": false}
	for name, wantOK := range want {
		sum := cg.Summary(p.Proc(name))
		if got := sum.AffineParams["x"]; got != wantOK {
			t.Errorf("%s: AffineParams[x] = %v, want %v", name, got, wantOK)
		}
	}
}

func TestRecursiveSCC(t *testing.T) {
	// Mutual recursion is unrepresentable in the surface syntax; build it
	// directly.
	p := ir.NewProgram("rec")
	s := p.AddVar("s")
	a := p.AddVar("a", 8)
	f := p.AddProc("f", []string{"x"}, nil)
	g := p.AddProc("g", []string{"y"}, []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(a, ir.Idx("y")), RHS: ir.C(2)},
		&ir.Call{Callee: "f", Args: []ir.Expr{ir.Idx("y")}},
	})
	f.Body = []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(s), RHS: ir.C(1)},
		&ir.Call{Callee: "g", Args: []ir.Expr{ir.Idx("x")}},
	}
	if err := p.ResolveCalls(); err != nil {
		t.Fatal(err)
	}
	cg := Analyze(p)
	if !cg.HasRecursion() || cg.Cycle() == nil {
		t.Fatalf("recursion not detected")
	}
	if len(cg.SCCs) != 1 || len(cg.SCCs[0]) != 2 {
		t.Fatalf("SCCs = %v, want one component of two", cg.SCCs)
	}
	for _, pr := range []*ir.Proc{f, g} {
		sum := cg.Summary(pr)
		if !sum.Recursive {
			t.Fatalf("%s not marked recursive", pr.Name)
		}
		// The component union carries both procs' effects.
		if !sum.Writes[s] || !sum.Writes[a] {
			t.Fatalf("%s writes %v, want s and a", pr.Name, VarNames(sum.Writes))
		}
		if len(sum.AffineParams) != 0 {
			t.Fatalf("recursive proc must not mark affine params")
		}
	}
}
