// Package callgraph builds the procedure call graph of a program and
// computes bottom-up procedure summaries: the variables a procedure (and
// its transitive callees) may read or write, which scalars it must define
// before reading (the privatization-shaped effect), whether it may
// request a region exit, and which parameters stay affine through every
// subscript they reach (the affine parameter binding the dependence
// analysis relies on).
//
// The graph is condensed with Tarjan's strongly-connected-components
// algorithm; Tarjan emits SCCs in reverse topological order, which is
// exactly the bottom-up order summaries need (callees before callers).
// Members of a non-trivial SCC — recursive procedures — are summarized by
// a one-pass union over the component (the effect sets are monotone), and
// are flagged Recursive: the inline expansion cannot open them, so
// consumers (idem.LabelProgram) fall back to conservative labeling.
package callgraph

import (
	"sort"

	"refidem/internal/ir"
)

// Summary is the bottom-up effect summary of one procedure, including the
// effects of every transitive callee.
type Summary struct {
	Proc *ir.Proc

	// Calls lists the direct callees in first-call order (deduplicated).
	Calls []*ir.Proc

	// Reads and Writes are the variables the procedure may read or write,
	// transitively through callees.
	Reads  map[*ir.Var]bool
	Writes map[*ir.Var]bool

	// MustWriteFirst holds the scalars the procedure's own body defines on
	// every path before any read — the effect that keeps a caller-side
	// privatization sound across the call.
	MustWriteFirst map[*ir.Var]bool

	// MayExit reports that the procedure (or a callee) contains an
	// ExitRegion, giving every calling region a data-dependent trip count.
	MayExit bool

	// Recursive marks members of cyclic SCCs; their bodies cannot be
	// inline-expanded.
	Recursive bool

	// AffineParams marks parameters whose every use in a subscript — own
	// body or through call-argument composition into callees — stays
	// affine, so binding an affine argument yields an affine caller-side
	// subscript. Parameters of recursive procedures are never marked.
	AffineParams map[string]bool

	// OwnStmts and OwnRefs count the un-expanded body's statements and
	// reference occurrences.
	OwnStmts int
	OwnRefs  int
}

// ReadOnly reports whether the procedure reads v without ever writing it
// (transitively).
func (s *Summary) ReadOnly(v *ir.Var) bool { return s.Reads[v] && !s.Writes[v] }

// VarNames returns the names in the set, sorted (for deterministic
// rendering).
func VarNames(set map[*ir.Var]bool) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}

// Analysis is the call graph of one program plus its summaries.
type Analysis struct {
	// SCCs holds the condensation in bottom-up (callees-first) order;
	// each component lists its procedures in declaration order.
	SCCs [][]*ir.Proc

	summaries map[*ir.Proc]*Summary
	cycle     []string
}

// Summary returns the summary of pr, or nil for procedures outside the
// analyzed program.
func (a *Analysis) Summary(pr *ir.Proc) *Summary { return a.summaries[pr] }

// HasRecursion reports whether any SCC is cyclic.
func (a *Analysis) HasRecursion() bool { return a.cycle != nil }

// Cycle returns one recursive cycle of procedure names, or nil.
func (a *Analysis) Cycle() []string { return a.cycle }

// RegionEffects unions the summaries of every procedure a region calls
// directly, yielding the call-carried read and write sets of the region
// (its own direct references are visible in Region.Refs already).
func (a *Analysis) RegionEffects(r *ir.Region) (reads, writes map[*ir.Var]bool) {
	reads = make(map[*ir.Var]bool)
	writes = make(map[*ir.Var]bool)
	for _, seg := range r.Segments {
		ir.WalkStmts(seg.Body, func(st ir.Stmt) {
			c, ok := st.(*ir.Call)
			if !ok || c.Proc == nil {
				return
			}
			if sum := a.summaries[c.Proc]; sum != nil {
				for v := range sum.Reads {
					reads[v] = true
				}
				for v := range sum.Writes {
					writes[v] = true
				}
			}
		})
	}
	return reads, writes
}

// Analyze builds the call graph and the bottom-up summaries.
func Analyze(p *ir.Program) *Analysis {
	a := &Analysis{summaries: make(map[*ir.Proc]*Summary, len(p.Procs))}
	if len(p.Procs) == 0 {
		return a
	}
	order := make(map[*ir.Proc]int, len(p.Procs))
	for i, pr := range p.Procs {
		order[pr] = i
	}
	edges := make(map[*ir.Proc][]*ir.Proc, len(p.Procs))
	for _, pr := range p.Procs {
		edges[pr] = directCallees(p, pr)
	}
	a.SCCs = tarjan(p.Procs, edges)
	for _, scc := range a.SCCs {
		sort.Slice(scc, func(i, j int) bool { return order[scc[i]] < order[scc[j]] })
	}

	inSCC := make(map[*ir.Proc]int, len(p.Procs))
	for i, scc := range a.SCCs {
		for _, pr := range scc {
			inSCC[pr] = i
		}
	}
	for i, scc := range a.SCCs {
		recursive := len(scc) > 1 || selfCalls(p, scc[0])
		if recursive && a.cycle == nil {
			a.cycle = p.RecursionCycle()
		}
		// Component-wide effect union: direct effects of every member
		// plus the (already complete) summaries of out-of-component
		// callees. One pass suffices — the sets are monotone and
		// intra-component callees contribute exactly the component union.
		reads := make(map[*ir.Var]bool)
		writes := make(map[*ir.Var]bool)
		mayExit := false
		for _, pr := range scc {
			dr, dw, exit := directEffects(pr)
			for v := range dr {
				reads[v] = true
			}
			for v := range dw {
				writes[v] = true
			}
			mayExit = mayExit || exit
			for _, callee := range edges[pr] {
				if inSCC[callee] == i {
					continue
				}
				cs := a.summaries[callee]
				for v := range cs.Reads {
					reads[v] = true
				}
				for v := range cs.Writes {
					writes[v] = true
				}
				mayExit = mayExit || cs.MayExit
			}
		}
		for _, pr := range scc {
			sum := &Summary{
				Proc:           pr,
				Calls:          edges[pr],
				Reads:          reads,
				Writes:         writes,
				MustWriteFirst: mustWriteFirst(pr),
				MayExit:        mayExit,
				Recursive:      recursive,
			}
			ir.WalkStmts(pr.Body, func(ir.Stmt) { sum.OwnStmts++ })
			sum.OwnRefs = countOwnRefs(pr)
			a.summaries[pr] = sum
		}
	}
	// Affine parameter binding runs after every summary exists: a
	// parameter stays affine only if the callee parameters it flows into
	// are affine too, and the bottom-up SCC order makes one pass exact
	// for the acyclic part.
	for _, scc := range a.SCCs {
		for _, pr := range scc {
			a.summaries[pr].AffineParams = a.affineParams(pr)
		}
	}
	return a
}

// directCallees lists the procedures pr calls directly, deduplicated, in
// first-call order.
func directCallees(p *ir.Program, pr *ir.Proc) []*ir.Proc {
	var out []*ir.Proc
	seen := make(map[*ir.Proc]bool)
	ir.WalkStmts(pr.Body, func(st ir.Stmt) {
		c, ok := st.(*ir.Call)
		if !ok {
			return
		}
		callee := c.Proc
		if callee == nil {
			callee = p.Proc(c.Callee)
		}
		if callee != nil && !seen[callee] {
			seen[callee] = true
			out = append(out, callee)
		}
	})
	return out
}

func selfCalls(p *ir.Program, pr *ir.Proc) bool {
	for _, callee := range directCallees(p, pr) {
		if callee == pr {
			return true
		}
	}
	return false
}

// directEffects collects the variables pr's own body reads and writes and
// whether it contains an ExitRegion (callees excluded).
func directEffects(pr *ir.Proc) (reads, writes map[*ir.Var]bool, mayExit bool) {
	reads = make(map[*ir.Var]bool)
	writes = make(map[*ir.Var]bool)
	readExpr := func(e ir.Expr) {
		for _, ref := range ir.ExprRefs(e) {
			reads[ref.Var] = true
		}
	}
	ir.WalkStmts(pr.Body, func(st ir.Stmt) {
		switch s := st.(type) {
		case *ir.Assign:
			readExpr(s.RHS)
			for _, sub := range s.LHS.Subs {
				readExpr(sub)
			}
			writes[s.LHS.Var] = true
		case *ir.If:
			readExpr(s.Cond)
		case *ir.ExitRegion:
			readExpr(s.Cond)
			mayExit = true
		case *ir.Call:
			// Arguments are load-free index expressions; tolerate
			// unvalidated programs by folding any stray loads in.
			for _, a := range s.Args {
				readExpr(a)
			}
		}
	})
	return reads, writes, mayExit
}

func countOwnRefs(pr *ir.Proc) int {
	n := 0
	count := func(e ir.Expr) {
		n += len(ir.ExprRefs(e))
	}
	ir.WalkStmts(pr.Body, func(st ir.Stmt) {
		switch s := st.(type) {
		case *ir.Assign:
			count(s.RHS)
			for _, sub := range s.LHS.Subs {
				count(sub)
			}
			n++ // the write itself
		case *ir.If:
			count(s.Cond)
		case *ir.ExitRegion:
			count(s.Cond)
		case *ir.Call:
			for _, a := range s.Args {
				count(a)
			}
		}
	})
	return n
}

// mustWriteFirst runs a small structured walk over the body: a scalar is
// in the set when every path through the body writes it before any read.
// Calls are treated as opaque reads of everything the callee may read —
// conservative, and cheap enough for a summary.
func mustWriteFirst(pr *ir.Proc) map[*ir.Var]bool {
	states := make(map[*ir.Var]*mwState)
	get := func(v *ir.Var) *mwState {
		s, ok := states[v]
		if !ok {
			s = &mwState{}
			states[v] = s
		}
		return s
	}
	var readExpr func(e ir.Expr)
	readExpr = func(e ir.Expr) {
		for _, ref := range ir.ExprRefs(e) {
			s := get(ref.Var)
			if !s.mustDef {
				s.exposed = true
			}
		}
	}
	var walk func(stmts []ir.Stmt)
	walk = func(stmts []ir.Stmt) {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ir.Assign:
				readExpr(s.RHS)
				for _, sub := range s.LHS.Subs {
					readExpr(sub)
				}
				if s.LHS.Var.IsScalar() {
					get(s.LHS.Var).mustDef = true
				} else {
					// An element write reads nothing but does not
					// must-define the aggregate.
					get(s.LHS.Var)
				}
			case *ir.If:
				readExpr(s.Cond)
				// Conservative join: treat both arms as conditional —
				// reads expose unless already must-defined, and defines
				// do not count as covering.
				ir.WalkStmts(s.Then, func(st2 ir.Stmt) { condEffects(st2, get) })
				ir.WalkStmts(s.Else, func(st2 ir.Stmt) { condEffects(st2, get) })
			case *ir.For:
				walk(s.Body)
			case *ir.ExitRegion:
				readExpr(s.Cond)
			case *ir.Call:
				if s.Proc != nil {
					// Opaque: the callee may read anything it summarizes;
					// treat those as exposed reads unless already covered.
					dr, dw, _ := directEffects(s.Proc)
					for v := range dr {
						st := get(v)
						if !st.mustDef {
							st.exposed = true
						}
					}
					for v := range dw {
						get(v)
					}
				}
			}
		}
	}
	walk(pr.Body)
	out := make(map[*ir.Var]bool)
	for v, s := range states {
		if v.IsScalar() && s.mustDef && !s.exposed {
			out[v] = true
		}
	}
	return out
}

// mwState tracks one variable during the mustWriteFirst walk.
type mwState struct{ mustDef, exposed bool }

// condEffects applies the conservative conditional-arm effect of one
// statement: any read exposes (unless covered), writes never cover.
func condEffects(stmt ir.Stmt, get func(*ir.Var) *mwState) {
	mark := func(e ir.Expr) {
		for _, ref := range ir.ExprRefs(e) {
			s := get(ref.Var)
			if !s.mustDef {
				s.exposed = true
			}
		}
	}
	switch s := stmt.(type) {
	case *ir.Assign:
		mark(s.RHS)
		for _, sub := range s.LHS.Subs {
			mark(sub)
		}
		get(s.LHS.Var)
	case *ir.If:
		mark(s.Cond)
	case *ir.ExitRegion:
		mark(s.Cond)
	case *ir.Call:
		for _, a := range s.Args {
			mark(a)
		}
		if s.Proc != nil {
			dr, _, _ := directEffects(s.Proc)
			for v := range dr {
				st := get(v)
				if !st.mustDef {
					st.exposed = true
				}
			}
		}
	}
}

// affineParams decides which parameters stay affine through every
// subscript they reach. A parameter fails when it appears in a non-affine
// subscript of the own body, in a non-affine argument of a nested call,
// or flows into a callee parameter that itself is not affine. Recursive
// procedures get the empty set.
func (a *Analysis) affineParams(pr *ir.Proc) map[string]bool {
	sum := a.summaries[pr]
	out := make(map[string]bool, len(pr.Params))
	if sum.Recursive {
		return out
	}
	bad := make(map[string]bool)
	checkSub := func(e ir.Expr) {
		_, affine := ir.AffineOf(e)
		for _, name := range indexNamesIn(e) {
			if !affine {
				bad[name] = true
			}
		}
	}
	ir.WalkStmts(pr.Body, func(st ir.Stmt) {
		switch s := st.(type) {
		case *ir.Assign:
			for _, sub := range s.LHS.Subs {
				checkSub(sub)
			}
			for _, ref := range ir.ExprRefs(s.RHS) {
				for _, sub := range ref.Subs {
					checkSub(sub)
				}
			}
		case *ir.Call:
			callee := s.Proc
			for i, arg := range s.Args {
				_, affine := ir.AffineOf(arg)
				calleeOK := false
				if callee != nil && i < len(callee.Params) {
					if cs := a.summaries[callee]; cs != nil {
						calleeOK = cs.AffineParams[callee.Params[i]]
					}
				}
				for _, name := range indexNamesIn(arg) {
					if !affine || !calleeOK {
						bad[name] = true
					}
				}
			}
		}
	})
	for _, prm := range pr.Params {
		if !bad[prm] {
			out[prm] = true
		}
	}
	return out
}

// indexNamesIn collects the index names mentioned in the expression.
func indexNamesIn(e ir.Expr) []string {
	var out []string
	var walk func(ir.Expr)
	walk = func(e ir.Expr) {
		switch x := e.(type) {
		case *ir.Index:
			out = append(out, x.Name)
		case *ir.Bin:
			walk(x.L)
			walk(x.R)
		case *ir.Load:
			for _, sub := range x.Ref.Subs {
				walk(sub)
			}
		}
	}
	walk(e)
	return out
}

// tarjan computes strongly connected components; emission order is
// reverse topological (every component is emitted after all components it
// calls into), i.e. bottom-up for summaries.
func tarjan(procs []*ir.Proc, edges map[*ir.Proc][]*ir.Proc) [][]*ir.Proc {
	index := make(map[*ir.Proc]int, len(procs))
	low := make(map[*ir.Proc]int, len(procs))
	onStack := make(map[*ir.Proc]bool, len(procs))
	var stack []*ir.Proc
	var out [][]*ir.Proc
	next := 0
	var strongconnect func(v *ir.Proc)
	strongconnect = func(v *ir.Proc) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range edges[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*ir.Proc
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range procs {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}
