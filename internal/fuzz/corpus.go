package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"refidem/internal/ir"
	"refidem/internal/lang"
)

// Reproducer is one corpus entry: a minimized failing program together
// with the metadata needed to regenerate the original byte-exactly
// (generator seed + profile) and to understand the failure without
// running anything.
type Reproducer struct {
	// Seed and Profile replay the original generation:
	// gen.FromProfile(profile, seed) is the unshrunk program.
	Seed    int64
	Profile string
	// Kind and Detail describe the oracle violation observed.
	Kind   string
	Detail string
	// Stmts counts the statements of the minimized program.
	Stmts int
	// Source is the minimized program in mini-language syntax.
	Source string
	// Path is where the entry lives on disk (set by Load/Write).
	Path string
}

// Program parses the reproducer source.
func (r *Reproducer) Program() (*ir.Program, error) {
	return lang.Parse(r.Source)
}

// header keys, in emission order.
var headerKeys = []string{"seed", "profile", "kind", "detail", "stmts"}

// WriteReproducer persists one corpus entry under dir. The file is a
// self-contained mini-language program whose leading comments carry the
// metadata; the name embeds the failure kind and the minimized program's
// fingerprint, so re-found failures dedupe naturally.
func WriteReproducer(dir string, r Reproducer) (string, error) {
	p, err := r.Program()
	if err != nil {
		return "", fmt.Errorf("fuzz: reproducer source does not parse: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	fp := ir.FingerprintOf(p)
	name := fmt.Sprintf("%s-%x.prog", r.Kind, fp[:6])
	path := filepath.Join(dir, name)
	var b strings.Builder
	fmt.Fprintf(&b, "# refidem fuzz reproducer\n")
	fmt.Fprintf(&b, "# seed: %d\n", r.Seed)
	fmt.Fprintf(&b, "# profile: %s\n", r.Profile)
	fmt.Fprintf(&b, "# kind: %s\n", r.Kind)
	fmt.Fprintf(&b, "# detail: %s\n", strings.ReplaceAll(r.Detail, "\n", "; "))
	fmt.Fprintf(&b, "# stmts: %d\n", r.Stmts)
	b.WriteString(r.Source)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadReproducer loads one corpus file, splitting the metadata header
// from the program text (which the parser re-checks).
func ReadReproducer(path string) (Reproducer, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Reproducer{}, err
	}
	r := Reproducer{Path: path}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "#") {
			// Metadata is the leading comment block only: comments
			// inside the program body must not rewrite it.
			break
		}
		body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
		key, val, ok := strings.Cut(body, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "seed":
			r.Seed, _ = strconv.ParseInt(val, 10, 64)
		case "profile":
			r.Profile = val
		case "kind":
			r.Kind = val
		case "detail":
			r.Detail = val
		case "stmts":
			r.Stmts, _ = strconv.Atoi(val)
		}
	}
	r.Source = string(raw)
	if _, err := r.Program(); err != nil {
		return Reproducer{}, fmt.Errorf("fuzz: %s: %w", path, err)
	}
	return r, nil
}

// LoadCorpus reads every *.prog file under dir, sorted by name. A
// missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]Reproducer, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.prog"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]Reproducer, 0, len(paths))
	for _, path := range paths {
		r, err := ReadReproducer(path)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
