package fuzz

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"refidem/internal/gen"
	"refidem/internal/ir"
	"refidem/internal/lang"
)

// TestRunCleanOnMain: the oracle wall finds nothing on a healthy tree,
// across every profile.
func TestRunCleanOnMain(t *testing.T) {
	sum, err := Run(Options{Seed: 1, N: 120, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) != 0 {
		t.Fatalf("clean tree produced failures:\n%s", sum.Format())
	}
	if sum.Checked != 120 {
		t.Fatalf("checked %d != 120", sum.Checked)
	}
	// The rotation must actually reach every profile.
	if len(sum.ByProfile) != len(gen.Profiles()) {
		t.Errorf("only %d profiles reached: %v", len(sum.ByProfile), sum.ByProfile)
	}
}

// TestRunDeterministic: the summary is byte-identical run over run and
// independent of the shard count.
func TestRunDeterministic(t *testing.T) {
	var outs []string
	for _, shards := range []int{1, 5, 5} {
		sum, err := Run(Options{Seed: 7, N: 48, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, sum.Format())
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Fatalf("summaries differ across shard counts/runs:\n--- shards=1\n%s\n--- shards=5\n%s", outs[0], outs[1])
	}
}

// TestBrokenLabelingCaughtAndShrunk: deliberately forcing one
// non-idempotent reference idempotent must be caught by the wall, and
// the shrinker must reduce some failure to a <=3-statement reproducer.
func TestBrokenLabelingCaughtAndShrunk(t *testing.T) {
	sum, err := Run(Options{Seed: 1, N: 40, Shards: 4, BreakLabeling: true, ShrinkLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) == 0 {
		t.Fatal("broken labeling went unnoticed by the oracle wall")
	}
	best := -1
	for _, f := range sum.Failures {
		if best == -1 || f.ReducedStmts < best {
			best = f.ReducedStmts
		}
	}
	if best > 3 {
		t.Fatalf("smallest reproducer has %d statements (> 3):\n%s", best, sum.Format())
	}
	// Every reduced reproducer must still be a parseable program.
	for _, f := range sum.Failures {
		if _, err := lang.Parse(f.Reduced); err != nil {
			t.Fatalf("reduced program does not parse: %v\n%s", err, f.Reduced)
		}
	}
}

// TestBrokenEnsembleCaughtAndShrunk: the stage-9 self-test. Annotating
// real cross dependences "never aliases" must be caught by the threshold
// live-out oracle with the ensemble kind, and the failures must shrink.
func TestBrokenEnsembleCaughtAndShrunk(t *testing.T) {
	sum, err := Run(Options{Seed: 1, N: 30, Shards: 4, BreakEnsemble: true, ShrinkLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) == 0 {
		t.Fatal("broken dependence speculation went unnoticed by the oracle wall")
	}
	best := -1
	for _, f := range sum.Failures {
		if f.Kind != KindEnsemble {
			t.Errorf("failure %d has kind %s, want %s", f.Index, f.Kind, KindEnsemble)
		}
		if best == -1 || f.ReducedStmts < best {
			best = f.ReducedStmts
		}
		if _, err := lang.Parse(f.Reduced); err != nil {
			t.Fatalf("reduced program does not parse: %v\n%s", err, f.Reduced)
		}
	}
	if best > 6 {
		t.Fatalf("smallest reproducer has %d statements (> 6):\n%s", best, sum.Format())
	}
}

// TestShrinkPreservesFailureKind: the shrinker's output still fails with
// the kind it was shrunk for.
func TestShrinkPreservesFailureKind(t *testing.T) {
	opts := OracleOptions{BreakLabeling: true}
	prof, err := gen.ProfileByName("default")
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for seed := int64(0); seed < 30 && done < 5; seed++ {
		sc := gen.FromProfile(prof, seed)
		v := CheckProgram(sc.Program, opts)
		if v == nil {
			continue
		}
		done++
		red := Shrink(sc.Program, func(c *ir.Program) bool {
			cv := CheckProgram(c, opts)
			return cv != nil && cv.Kind == v.Kind
		}, 4000)
		rv := CheckProgram(red, opts)
		if rv == nil || rv.Kind != v.Kind {
			t.Fatalf("seed %d: shrink lost the failure (%v -> %v)\n%s",
				seed, v, rv, red.Format())
		}
		if CountStmts(red) > CountStmts(sc.Program) {
			t.Fatalf("seed %d: shrink grew the program", seed)
		}
	}
	if done == 0 {
		t.Fatal("no fault-injected failures found to shrink")
	}
}

// TestCorpusRoundTrip: reproducers written by a run load back, parse and
// carry their metadata.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sum, err := Run(Options{Seed: 3, N: 24, Shards: 2, BreakLabeling: true,
		ShrinkLimit: 2, CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) == 0 {
		t.Skip("no failures produced (unexpected but not this test's concern)")
	}
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("no corpus files written")
	}
	for _, r := range corpus {
		if r.Kind == "" || r.Profile == "" {
			t.Errorf("%s: missing metadata: %+v", r.Path, r)
		}
		p, err := r.Program()
		if err != nil {
			t.Errorf("%s: %v", r.Path, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", r.Path, err)
		}
	}
}

// TestReproducerHeaderStopsAtProgram: '#' comments inside the program
// body must not rewrite the metadata header.
func TestReproducerHeaderStopsAtProgram(t *testing.T) {
	dir := t.TempDir()
	src := `program demo
var a[8]
# seed: 999
# kind: bogus
region r0 loop k = 0 to 3 {
  liveout a
  a[k] = k
}
`
	path := filepath.Join(dir, "seed-demo.prog")
	content := "# refidem fuzz reproducer\n# seed: 7\n# profile: seed-corpus\n# kind: seed\n# detail: header-stop regression\n# stmts: 1\n" + src
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := ReadReproducer(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != 7 || r.Kind != "seed" {
		t.Fatalf("body comments rewrote the header: %+v", r)
	}
}

// TestSummaryFormatStable: pin a fragment of the summary format so the
// nightly logs stay greppable.
func TestSummaryFormatStable(t *testing.T) {
	sum, err := Run(Options{Seed: 2, N: 12, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	text := sum.Format()
	for _, want := range []string{
		"fuzz: seed=2 n=12 profile=all\n",
		"checked 12 programs, 0 failures\n",
		"sequence digest ",
		"programs per profile:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

// TestRunCtxCancelled verifies a cancelled sweep reports the ctx error
// instead of a (nondeterministic) partial summary.
func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, Options{Seed: 1, N: 50, Shards: 2}); err == nil {
		t.Error("expected an error from a pre-cancelled sweep")
	}
}

// TestRunCtxBackground matches Run: a background ctx changes nothing.
func TestRunCtxBackground(t *testing.T) {
	a, err := Run(Options{Seed: 7, N: 24, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), Options{Seed: 7, N: 24, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Error("digest differs between Run and RunCtx across shard counts")
	}
}
