// Package fuzz is the differential-fuzzing subsystem behind cmd/fuzz: it
// drives internal/gen scenarios through a wall of oracles — structural
// validation, printer/parser round-trip, theorem conformance of the
// labeling, sequential-vs-HOSE-vs-CASE final-memory equivalence under
// both the default and the buffer-pressure machine, the CASE occupancy
// bound, and traced-vs-untraced live-out identity with the trace JIT
// enabled — then shrinks any failing program to a minimal
// reproducer and records it in a seed corpus for byte-exact replay.
package fuzz

import (
	"fmt"
	"strings"

	ccfg "refidem/internal/cfg"
	"refidem/internal/deps"
	"refidem/internal/engine"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/lang"
)

// Failure kinds, in the order the oracle wall checks them.
const (
	KindValidate  = "validate"
	KindRoundTrip = "roundtrip"
	KindTheorem   = "theorem"
	KindLemma1    = "lemma1-hose"
	KindLemma2    = "lemma2-case"
	KindOccupancy = "occupancy"
	KindPressure  = "pressure"
	KindTraced    = "traced"
	KindEnsemble  = "ensemble"
	KindEngine    = "engine-error"
)

// Verdict describes one oracle violation. A nil *Verdict means the
// program passed the whole wall.
type Verdict struct {
	Kind   string
	Detail string
}

func (v *Verdict) String() string {
	if v == nil {
		return "ok"
	}
	return v.Kind + ": " + v.Detail
}

// OracleOptions tunes the wall.
type OracleOptions struct {
	// BreakLabeling deliberately corrupts the labeling before the
	// conformance and execution checks: the first write reference
	// Algorithm 2 labels speculative is forced idempotent. It exists to
	// prove the wall catches mislabelings — a clean tree must fail under
	// it, and the shrinker must reduce the failure to a tiny reproducer.
	BreakLabeling bool
	// BreakEnsemble deliberately corrupts the dependence ensemble before
	// the stage-9 checks: every read sinking a cross-iteration dependence
	// has all its incoming edges annotated "never aliases" at confidence
	// 0.99 (deps.Ensemble.BreakCrossReads), so the threshold engine run
	// promotes past real dependences. The live-out oracle must catch the
	// resulting misspeculation — the ensemble wall's self-test, mirroring
	// BreakLabeling.
	BreakEnsemble bool
}

func fail(kind, format string, args ...any) *Verdict {
	detail := fmt.Sprintf(format, args...)
	detail = strings.ReplaceAll(detail, "\n", "; ")
	return &Verdict{Kind: kind, Detail: detail}
}

// CheckProgram runs one program through the full oracle wall and returns
// the first violation, or nil. The wall, in order:
//
//  1. validate   — structural invariants hold
//  2. roundtrip  — Format() reparses to an identical fingerprint
//  3. theorem    — Algorithm 2 labels match the Theorem 1/2 oracle
//  4. lemma1     — HOSE final live-out memory equals sequential
//  5. lemma2     — CASE final live-out memory equals sequential
//  6. occupancy  — CASE peak speculative occupancy <= HOSE peak
//  7. pressure   — lemmas 1-2 again under a tiny speculative storage
//  8. traced     — both engines with the trace JIT on, under both the
//     default and the pressure machine, still match sequential live-outs
//     (superblock guards, elision and bailouts must be invisible)
//  9. ensemble   — the collaborative dependence ensemble (range, exact,
//     must-write-first, replay profile) is no less conservative than the
//     exact solver: the dependence set is identical once speculative
//     annotations are stripped, the annotations are well-formed
//     (confidence in [0, 1), member tag set exactly when annotated), the
//     base labels are byte-identical to LabelProgram's, and the
//     P(idempotent) overlay reaches 1 exactly on the proved set. Under
//     BreakEnsemble a deliberately wrong speculative annotation is
//     injected and the threshold CASE run must be caught by the live-out
//     oracle.
func CheckProgram(p *ir.Program, o OracleOptions) *Verdict {
	if err := p.Validate(); err != nil {
		return fail(KindValidate, "%v", err)
	}
	text := p.Format()
	q, err := lang.Parse(text)
	if err != nil {
		return fail(KindRoundTrip, "reparse: %v", err)
	}
	if ir.FingerprintOf(q) != ir.FingerprintOf(p) {
		return fail(KindRoundTrip, "reparsed program has a different fingerprint")
	}
	labs := idem.LabelProgram(p)
	if o.BreakLabeling {
		breakLabeling(p, labs)
	}
	for _, r := range p.Regions {
		if errs := labs[r].CheckTheorems(); len(errs) > 0 {
			return fail(KindTheorem, "region %s: %v", r.Name, errs[0])
		}
	}
	cfg := engine.DefaultConfig()
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		return fail(KindEngine, "sequential: %v", err)
	}
	hose, err := engine.RunSpeculative(p, labs, cfg, engine.HOSE)
	if err != nil {
		return fail(KindEngine, "HOSE: %v", err)
	}
	if err := engine.LiveOutMismatch(p, labs, seq, hose); err != nil {
		return fail(KindLemma1, "%v", err)
	}
	caseR, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
	if err != nil {
		return fail(KindEngine, "CASE: %v", err)
	}
	if err := engine.LiveOutMismatch(p, labs, seq, caseR); err != nil {
		return fail(KindLemma2, "%v", err)
	}
	// The occupancy bound (idempotent bypass can only shrink per-segment
	// speculative footprints) is a statement about the retired reference
	// stream, so it is only enforced on squash-free runs: a misspeculated
	// segment executes on stale values and may touch locations the
	// sequential stream never does, and because bypass changes timing, a
	// doomed CASE execution can get further — and buffer more — than its
	// HOSE counterpart before the squash lands. The fuzzer found exactly
	// that (default profile, seed 1777, minimized into the corpus as
	// occupancy-*.prog): a constant-false CFG branch whose not-taken arm
	// holds a dense write burst that only ever runs as misspeculation.
	if hose.Stats.SquashedSegments == 0 && caseR.Stats.SquashedSegments == 0 &&
		caseR.Stats.PeakSpecOccupancy > hose.Stats.PeakSpecOccupancy {
		return fail(KindOccupancy, "CASE peak %d > HOSE peak %d on squash-free runs",
			caseR.Stats.PeakSpecOccupancy, hose.Stats.PeakSpecOccupancy)
	}
	pc := engine.PressureConfig()
	pseq, err := engine.RunSequential(p, pc)
	if err != nil {
		return fail(KindEngine, "pressure sequential: %v", err)
	}
	for _, mode := range []engine.Mode{engine.HOSE, engine.CASE} {
		res, err := engine.RunSpeculative(p, labs, pc, mode)
		if err != nil {
			return fail(KindEngine, "pressure %v: %v", mode, err)
		}
		if err := engine.LiveOutMismatch(p, labs, pseq, res); err != nil {
			return fail(KindPressure, "%v under pressure: %v", mode, err)
		}
	}
	for _, tc := range []struct {
		name string
		cfg  engine.Config
		seq  *engine.Result
	}{{"default", cfg, seq}, {"pressure", pc, pseq}} {
		tcfg := tc.cfg
		tcfg.Traced = true
		for _, mode := range []engine.Mode{engine.HOSE, engine.CASE} {
			res, err := engine.RunSpeculative(p, labs, tcfg, mode)
			if err != nil {
				return fail(KindEngine, "traced %v (%s): %v", mode, tc.name, err)
			}
			if err := engine.LiveOutMismatch(p, labs, tc.seq, res); err != nil {
				return fail(KindTraced, "%v traced (%s machine): %v", mode, tc.name, err)
			}
		}
	}
	if v := checkEnsemble(p, labs, cfg, seq, o); v != nil {
		return v
	}
	return nil
}

// checkEnsemble is stage 9 of the wall. labs is the (possibly
// BreakLabeling-corrupted) base labeling; the label-identity check
// recomputes a clean baseline when it was corrupted.
func checkEnsemble(p *ir.Program, labs map[*ir.Region]*idem.Result,
	cfg engine.Config, seq *engine.Result, o OracleOptions) *Verdict {
	replay, err := engine.CollectProfile(p, cfg)
	if err != nil {
		return fail(KindEngine, "profile replay: %v", err)
	}
	ens := deps.Ensemble{
		Range: true, MustWriteFirst: true, Profile: replay,
		BreakCrossReads: o.BreakEnsemble,
	}

	// Conservativeness at the dependence level: member short-circuits and
	// annotations must leave the emitted set field-identical to the exact
	// solver's (the injected break only annotates, so it passes too).
	for _, r := range p.Regions {
		g := ccfg.FromRegion(r)
		exact := deps.Analyze(r, g)
		got := deps.AnalyzeWith(r, g, &deps.Ensemble{
			Range: true, Profile: replay, BreakCrossReads: o.BreakEnsemble,
		})
		if len(got.All) != len(exact.All) {
			return fail(KindEnsemble, "region %s: ensemble emits %d deps, exact %d",
				r.Name, len(got.All), len(exact.All))
		}
		for i := range got.All {
			d := got.All[i]
			if d.SpecConf < 0 || d.SpecConf >= 1 {
				return fail(KindEnsemble, "region %s: dep %v has confidence %v outside [0,1)",
					r.Name, d, d.SpecConf)
			}
			if (d.SpecConf > 0) != (d.SpecBy == deps.MemberMustWriteFirst || d.SpecBy == deps.MemberProfile) {
				return fail(KindEnsemble, "region %s: dep %v annotation conf=%v by=%v is ill-formed",
					r.Name, d, d.SpecConf, d.SpecBy)
			}
			d.SpecConf, d.SpecBy = 0, 0
			if d != exact.All[i] {
				return fail(KindEnsemble, "region %s: dep %d differs from exact: %v vs %v",
					r.Name, i, got.All[i], exact.All[i])
			}
		}
	}

	// Label and overlay invariants: base labels byte-identical, P in
	// [0, 1], P == 1 exactly on the proved-idempotent set, theorems hold.
	elabs := idem.LabelProgramEnsemble(p, ens)
	base := labs
	if o.BreakLabeling {
		base = idem.LabelProgram(p)
	}
	for _, r := range p.Regions {
		eres, bres := elabs[r], base[r]
		for _, ref := range r.Refs {
			if eres.Label(ref) != bres.Label(ref) {
				return fail(KindEnsemble, "region %s: ensemble label %v != %v on %v",
					r.Name, eres.Label(ref), bres.Label(ref), ref)
			}
			pr := eres.Prob(ref)
			if pr < 0 || pr > 1 {
				return fail(KindEnsemble, "region %s: P(%v) = %v outside [0,1]", r.Name, ref, pr)
			}
			if (pr == 1) != (eres.Label(ref) == idem.Idempotent) {
				return fail(KindEnsemble, "region %s: P(%v) = %v but label is %v",
					r.Name, ref, pr, eres.Label(ref))
			}
		}
		if errs := eres.CheckTheorems(); len(errs) > 0 {
			return fail(KindEnsemble, "region %s: %v", r.Name, errs[0])
		}
	}

	// The speculation policy under the live-out oracle. With an honest
	// ensemble the promoted bypass set is backed by replay evidence from
	// the very input being run, so a squash-free execution must match
	// sequential exactly; like the occupancy bound, runs with squashes are
	// exempt (a squashed wrong-path instance's promoted direct stores are
	// not undone, and may legitimately leave stray values). The injected
	// break annotates a genuine dependence, whose misspeculation is
	// invisible to violation detection precisely because the sink was
	// promoted — so under BreakEnsemble the comparison is unconditional,
	// and catching the divergence here is the wall's self-test.
	tcfg := cfg
	tcfg.SpecThreshold = 0.9
	res, err := engine.RunSpeculative(p, elabs, tcfg, engine.CASE)
	if err != nil {
		return fail(KindEngine, "threshold CASE: %v", err)
	}
	if o.BreakEnsemble || res.Stats.SquashedSegments == 0 {
		if err := engine.LiveOutMismatch(p, elabs, seq, res); err != nil {
			return fail(KindEnsemble, "threshold CASE diverged: %v", err)
		}
	}
	return nil
}

// breakLabeling forces the first speculative-labeled write reference
// idempotent, in region and reference-ID order. It returns whether a
// flip happened.
func breakLabeling(p *ir.Program, labs map[*ir.Region]*idem.Result) bool {
	for _, r := range p.Regions {
		lab := labs[r]
		for _, ref := range r.Refs {
			if ref.Access == ir.Write && lab.Label(ref) == idem.Speculative {
				lab.SetLabel(ref, idem.Idempotent)
				return true
			}
		}
	}
	return false
}
