// Package fuzz is the differential-fuzzing subsystem behind cmd/fuzz: it
// drives internal/gen scenarios through a wall of oracles — structural
// validation, printer/parser round-trip, theorem conformance of the
// labeling, sequential-vs-HOSE-vs-CASE final-memory equivalence under
// both the default and the buffer-pressure machine, the CASE occupancy
// bound, and traced-vs-untraced live-out identity with the trace JIT
// enabled — then shrinks any failing program to a minimal
// reproducer and records it in a seed corpus for byte-exact replay.
package fuzz

import (
	"fmt"
	"strings"

	"refidem/internal/engine"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/lang"
)

// Failure kinds, in the order the oracle wall checks them.
const (
	KindValidate  = "validate"
	KindRoundTrip = "roundtrip"
	KindTheorem   = "theorem"
	KindLemma1    = "lemma1-hose"
	KindLemma2    = "lemma2-case"
	KindOccupancy = "occupancy"
	KindPressure  = "pressure"
	KindTraced    = "traced"
	KindEngine    = "engine-error"
)

// Verdict describes one oracle violation. A nil *Verdict means the
// program passed the whole wall.
type Verdict struct {
	Kind   string
	Detail string
}

func (v *Verdict) String() string {
	if v == nil {
		return "ok"
	}
	return v.Kind + ": " + v.Detail
}

// OracleOptions tunes the wall.
type OracleOptions struct {
	// BreakLabeling deliberately corrupts the labeling before the
	// conformance and execution checks: the first write reference
	// Algorithm 2 labels speculative is forced idempotent. It exists to
	// prove the wall catches mislabelings — a clean tree must fail under
	// it, and the shrinker must reduce the failure to a tiny reproducer.
	BreakLabeling bool
}

func fail(kind, format string, args ...any) *Verdict {
	detail := fmt.Sprintf(format, args...)
	detail = strings.ReplaceAll(detail, "\n", "; ")
	return &Verdict{Kind: kind, Detail: detail}
}

// CheckProgram runs one program through the full oracle wall and returns
// the first violation, or nil. The wall, in order:
//
//  1. validate   — structural invariants hold
//  2. roundtrip  — Format() reparses to an identical fingerprint
//  3. theorem    — Algorithm 2 labels match the Theorem 1/2 oracle
//  4. lemma1     — HOSE final live-out memory equals sequential
//  5. lemma2     — CASE final live-out memory equals sequential
//  6. occupancy  — CASE peak speculative occupancy <= HOSE peak
//  7. pressure   — lemmas 1-2 again under a tiny speculative storage
//  8. traced     — both engines with the trace JIT on, under both the
//     default and the pressure machine, still match sequential live-outs
//     (superblock guards, elision and bailouts must be invisible)
func CheckProgram(p *ir.Program, o OracleOptions) *Verdict {
	if err := p.Validate(); err != nil {
		return fail(KindValidate, "%v", err)
	}
	text := p.Format()
	q, err := lang.Parse(text)
	if err != nil {
		return fail(KindRoundTrip, "reparse: %v", err)
	}
	if ir.FingerprintOf(q) != ir.FingerprintOf(p) {
		return fail(KindRoundTrip, "reparsed program has a different fingerprint")
	}
	labs := idem.LabelProgram(p)
	if o.BreakLabeling {
		breakLabeling(p, labs)
	}
	for _, r := range p.Regions {
		if errs := labs[r].CheckTheorems(); len(errs) > 0 {
			return fail(KindTheorem, "region %s: %v", r.Name, errs[0])
		}
	}
	cfg := engine.DefaultConfig()
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		return fail(KindEngine, "sequential: %v", err)
	}
	hose, err := engine.RunSpeculative(p, labs, cfg, engine.HOSE)
	if err != nil {
		return fail(KindEngine, "HOSE: %v", err)
	}
	if err := engine.LiveOutMismatch(p, labs, seq, hose); err != nil {
		return fail(KindLemma1, "%v", err)
	}
	caseR, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
	if err != nil {
		return fail(KindEngine, "CASE: %v", err)
	}
	if err := engine.LiveOutMismatch(p, labs, seq, caseR); err != nil {
		return fail(KindLemma2, "%v", err)
	}
	// The occupancy bound (idempotent bypass can only shrink per-segment
	// speculative footprints) is a statement about the retired reference
	// stream, so it is only enforced on squash-free runs: a misspeculated
	// segment executes on stale values and may touch locations the
	// sequential stream never does, and because bypass changes timing, a
	// doomed CASE execution can get further — and buffer more — than its
	// HOSE counterpart before the squash lands. The fuzzer found exactly
	// that (default profile, seed 1777, minimized into the corpus as
	// occupancy-*.prog): a constant-false CFG branch whose not-taken arm
	// holds a dense write burst that only ever runs as misspeculation.
	if hose.Stats.SquashedSegments == 0 && caseR.Stats.SquashedSegments == 0 &&
		caseR.Stats.PeakSpecOccupancy > hose.Stats.PeakSpecOccupancy {
		return fail(KindOccupancy, "CASE peak %d > HOSE peak %d on squash-free runs",
			caseR.Stats.PeakSpecOccupancy, hose.Stats.PeakSpecOccupancy)
	}
	pc := engine.PressureConfig()
	pseq, err := engine.RunSequential(p, pc)
	if err != nil {
		return fail(KindEngine, "pressure sequential: %v", err)
	}
	for _, mode := range []engine.Mode{engine.HOSE, engine.CASE} {
		res, err := engine.RunSpeculative(p, labs, pc, mode)
		if err != nil {
			return fail(KindEngine, "pressure %v: %v", mode, err)
		}
		if err := engine.LiveOutMismatch(p, labs, pseq, res); err != nil {
			return fail(KindPressure, "%v under pressure: %v", mode, err)
		}
	}
	for _, tc := range []struct {
		name string
		cfg  engine.Config
		seq  *engine.Result
	}{{"default", cfg, seq}, {"pressure", pc, pseq}} {
		tcfg := tc.cfg
		tcfg.Traced = true
		for _, mode := range []engine.Mode{engine.HOSE, engine.CASE} {
			res, err := engine.RunSpeculative(p, labs, tcfg, mode)
			if err != nil {
				return fail(KindEngine, "traced %v (%s): %v", mode, tc.name, err)
			}
			if err := engine.LiveOutMismatch(p, labs, tc.seq, res); err != nil {
				return fail(KindTraced, "%v traced (%s machine): %v", mode, tc.name, err)
			}
		}
	}
	return nil
}

// breakLabeling forces the first speculative-labeled write reference
// idempotent, in region and reference-ID order. It returns whether a
// flip happened.
func breakLabeling(p *ir.Program, labs map[*ir.Region]*idem.Result) bool {
	for _, r := range p.Regions {
		lab := labs[r]
		for _, ref := range r.Refs {
			if ref.Access == ir.Write && lab.Label(ref) == idem.Speculative {
				lab.SetLabel(ref, idem.Idempotent)
				return true
			}
		}
	}
	return false
}
