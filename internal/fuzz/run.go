package fuzz

import (
	"context"
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"refidem/internal/gen"
	"refidem/internal/ir"
	"refidem/internal/parallel"
)

// Options configures a fuzzing run.
type Options struct {
	// Seed is the base seed; program i uses generator seed Seed+i, so a
	// whole run is replayable and any single program is regenerable.
	Seed int64
	// N is the number of programs to generate and check.
	N int
	// Shards splits the run into contiguous index batches executed in
	// parallel (<= 0 selects GOMAXPROCS). The result is independent of
	// the shard count: results are merged in index order.
	Shards int
	// Profile pins one scenario profile by name; "" or "all" rotates
	// through every registered profile by index.
	Profile string
	// BreakLabeling injects the deliberate labeling fault (see
	// OracleOptions) — the wall's self-test.
	BreakLabeling bool
	// BreakEnsemble injects the deliberate dependence-speculation fault
	// (see OracleOptions) — the ensemble stage's self-test.
	BreakEnsemble bool
	// CorpusDir, when non-empty, receives a minimized reproducer file
	// per failure.
	CorpusDir string
	// ShrinkLimit bounds how many failures are shrunk (in index order);
	// later failures are still reported, unshrunk. <= 0 means 20.
	ShrinkLimit int
	// MaxShrinkEvals bounds oracle evaluations per shrink (<= 0: 4000).
	MaxShrinkEvals int
}

// Failure is one fuzz finding.
type Failure struct {
	Index   int
	Seed    int64
	Profile string
	Kind    string
	Detail  string
	// Stmts and ReducedStmts count statements before and after
	// shrinking; Reduced is the minimized program source (equal to the
	// original formatting when the failure was past the shrink limit).
	Stmts        int
	ReducedStmts int
	Reduced      string
	// File is the corpus path the reproducer was written to, if any.
	File string
}

// Summary aggregates a run. Format() renders it deterministically: two
// runs with equal Options (regardless of shard count) print identically.
type Summary struct {
	Seed      int64
	N         int
	Profile   string
	Checked   int
	ByProfile map[string]int
	// Feature tallies over all generated scenarios.
	CFGRegions, Indirect, Coupled, EarlyExit, Burst, Downto, Calls int
	// Digest fingerprints the exact program sequence: sha256 over the
	// concatenated program fingerprints in index order.
	Digest   string
	Failures []Failure
}

// Run generates N scenarios, drives each through the oracle wall in
// Shards parallel batches, shrinks failures and (optionally) writes
// reproducers to the corpus directory.
func Run(o Options) (*Summary, error) {
	return RunCtx(context.Background(), o)
}

// RunCtx is Run with cancellation: when ctx is done, in-flight shards
// finish their current program, no further programs are checked, and the
// ctx error is returned (a timed-out sweep is an error, not a partial
// summary — partial results would break the summary's determinism
// guarantee).
func RunCtx(ctx context.Context, o Options) (*Summary, error) {
	if o.N <= 0 {
		return nil, fmt.Errorf("fuzz: n must be positive")
	}
	var rotation []gen.Profile
	if o.Profile == "" || o.Profile == "all" {
		rotation = gen.Profiles()
	} else {
		p, err := gen.ProfileByName(o.Profile)
		if err != nil {
			return nil, err
		}
		rotation = []gen.Profile{p}
	}
	shards := o.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > o.N {
		shards = o.N
	}
	shrinkLimit := o.ShrinkLimit
	if shrinkLimit <= 0 {
		shrinkLimit = 20
	}
	maxEvals := o.MaxShrinkEvals
	if maxEvals <= 0 {
		maxEvals = 4000
	}

	scenarios := make([]*gen.Scenario, o.N)
	verdicts := make([]*Verdict, o.N)
	oopts := OracleOptions{BreakLabeling: o.BreakLabeling, BreakEnsemble: o.BreakEnsemble}
	err := parallel.ForEachCtx(ctx, shards, shards, func(s int) {
		lo, hi := s*o.N/shards, (s+1)*o.N/shards
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			sc := gen.FromProfile(rotation[i%len(rotation)], o.Seed+int64(i))
			scenarios[i] = sc
			verdicts[i] = CheckProgram(sc.Program, oopts)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("fuzz: sweep cancelled: %w", err)
	}

	sum := &Summary{
		Seed: o.Seed, N: o.N, Profile: o.Profile,
		ByProfile: make(map[string]int),
	}
	h := sha256.New()
	shrunk := 0
	for i, sc := range scenarios {
		sum.Checked++
		sum.ByProfile[sc.Profile]++
		h.Write(sc.Fingerprint[:])
		tally := func(on bool, c *int) {
			if on {
				*c++
			}
		}
		tally(sc.CFGRegions > 0, &sum.CFGRegions)
		tally(sc.Indirect, &sum.Indirect)
		tally(sc.Coupled, &sum.Coupled)
		tally(sc.EarlyExit, &sum.EarlyExit)
		tally(sc.WriteBurst, &sum.Burst)
		tally(sc.Downto, &sum.Downto)
		tally(sc.Calls, &sum.Calls)

		v := verdicts[i]
		if v == nil {
			continue
		}
		f := Failure{
			Index: i, Seed: sc.Seed, Profile: sc.Profile,
			Kind: v.Kind, Detail: v.Detail,
			Stmts: CountStmts(sc.Program),
		}
		reduced := sc.Program
		if shrunk < shrinkLimit {
			shrunk++
			reduced = Shrink(sc.Program, func(cand *ir.Program) bool {
				cv := CheckProgram(cand, oopts)
				return cv != nil && cv.Kind == v.Kind
			}, maxEvals)
		}
		f.Reduced = reduced.Format()
		f.ReducedStmts = CountStmts(reduced)
		if o.CorpusDir != "" {
			path, err := WriteReproducer(o.CorpusDir, Reproducer{
				Seed: sc.Seed, Profile: sc.Profile,
				Kind: v.Kind, Detail: v.Detail,
				Stmts: f.ReducedStmts, Source: f.Reduced,
			})
			if err != nil {
				return nil, err
			}
			f.File = path
		}
		sum.Failures = append(sum.Failures, f)
	}
	sum.Digest = fmt.Sprintf("%x", h.Sum(nil))
	return sum, nil
}

// Format renders the summary as deterministic text: no timing, no shard
// count, map keys sorted.
func (s *Summary) Format() string {
	var b strings.Builder
	profile := s.Profile
	if profile == "" {
		profile = "all"
	}
	fmt.Fprintf(&b, "fuzz: seed=%d n=%d profile=%s\n", s.Seed, s.N, profile)
	fmt.Fprintf(&b, "checked %d programs, %d failures\n", s.Checked, len(s.Failures))
	fmt.Fprintf(&b, "sequence digest %s\n", s.Digest)
	names := make([]string, 0, len(s.ByProfile))
	for name := range s.ByProfile {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("programs per profile:")
	for _, name := range names {
		fmt.Fprintf(&b, " %s=%d", name, s.ByProfile[name])
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "features: cfg=%d indirect=%d coupled=%d exits=%d bursts=%d downto=%d calls=%d\n",
		s.CFGRegions, s.Indirect, s.Coupled, s.EarlyExit, s.Burst, s.Downto, s.Calls)
	for _, f := range s.Failures {
		fmt.Fprintf(&b, "FAIL [%d] profile=%s seed=%d kind=%s stmts=%d->%d\n",
			f.Index, f.Profile, f.Seed, f.Kind, f.Stmts, f.ReducedStmts)
		fmt.Fprintf(&b, "  %s\n", f.Detail)
		if f.File != "" {
			fmt.Fprintf(&b, "  reproducer: %s\n", f.File)
		}
		for _, line := range strings.Split(strings.TrimRight(f.Reduced, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
