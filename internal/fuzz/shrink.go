package fuzz

import (
	"refidem/internal/ir"
)

// Shrink greedily minimizes a failing program: it tries structural
// reductions (drop a region, shrink region trip counts, delete a
// statement, unwrap a conditional, flatten an inner loop, zero an
// expression, drop unused variables) and keeps any candidate on which
// stillFailing holds, restarting until no reduction applies or maxEvals
// candidate evaluations have been spent. The result is a fresh program;
// the input is never mutated.
func Shrink(p *ir.Program, stillFailing func(*ir.Program) bool, maxEvals int) *ir.Program {
	cur := cloneProgram(p)
	evals := 0
	for {
		reduced := false
		for _, cand := range candidates(cur) {
			if evals >= maxEvals {
				return cur
			}
			if cand.Validate() != nil {
				continue
			}
			evals++
			if stillFailing(cand) {
				cur = cand
				reduced = true
				break
			}
		}
		if !reduced {
			return cur
		}
	}
}

// CountStmts counts every surface statement node of the program: region
// segment bodies plus procedure bodies (call expansions are derived and
// not counted).
func CountStmts(p *ir.Program) int {
	n := 0
	for _, pr := range p.Procs {
		ir.WalkStmts(pr.Body, func(ir.Stmt) { n++ })
	}
	for _, r := range p.Regions {
		for _, seg := range r.Segments {
			ir.WalkStmts(seg.Body, func(ir.Stmt) { n++ })
		}
	}
	return n
}

// cloneProgram deep-copies a program, remapping every reference onto the
// clone's own variable table (reference identity and variable identity
// both matter to the analyses).
func cloneProgram(p *ir.Program) *ir.Program {
	q := ir.NewProgram(p.Name)
	vmap := make(map[*ir.Var]*ir.Var, len(p.Vars))
	for _, v := range p.Vars {
		vmap[v] = q.AddVar(v.Name, v.Dims...)
	}
	pmap := make(map[*ir.Proc]*ir.Proc, len(p.Procs))
	for _, pr := range p.Procs {
		npr := q.AddProc(pr.Name, append([]string{}, pr.Params...), ir.CloneStmts(pr.Body))
		remapStmts(npr.Body, vmap)
		pmap[pr] = npr
	}
	for _, npr := range q.Procs {
		remapProcs(npr.Body, pmap)
	}
	for _, r := range p.Regions {
		nr := &ir.Region{
			Name: r.Name, Kind: r.Kind,
			Index: r.Index, From: r.From, To: r.To, Step: r.Step,
		}
		nr.Ann.Private = cloneSet(r.Ann.Private)
		nr.Ann.LiveOut = cloneSet(r.Ann.LiveOut)
		for _, seg := range r.Segments {
			ns := &ir.Segment{
				ID: seg.ID, Name: seg.Name,
				Body:  ir.CloneStmts(seg.Body),
				Succs: append([]int{}, seg.Succs...),
			}
			if seg.Branch != nil {
				ns.Branch = ir.CloneExpr(seg.Branch)
			}
			remapStmts(ns.Body, vmap)
			remapProcs(ns.Body, pmap)
			ns.Branch = remapExpr(ns.Branch, vmap)
			nr.Segments = append(nr.Segments, ns)
		}
		nr.Finalize()
		q.AddRegion(nr)
	}
	return q
}

// remapProcs repoints every Call's resolved procedure onto the clone's
// procedure table.
func remapProcs(stmts []ir.Stmt, pmap map[*ir.Proc]*ir.Proc) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ir.If:
			remapProcs(s.Then, pmap)
			remapProcs(s.Else, pmap)
		case *ir.For:
			remapProcs(s.Body, pmap)
		case *ir.Call:
			if np, ok := pmap[s.Proc]; ok {
				s.Proc = np
			}
			s.Inlined = nil
		}
	}
}

func cloneSet(m map[string]bool) map[string]bool {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = true
		}
	}
	return out
}

func remapStmts(stmts []ir.Stmt, vmap map[*ir.Var]*ir.Var) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ir.Assign:
			remapRef(s.LHS, vmap)
			s.RHS = remapExpr(s.RHS, vmap)
		case *ir.If:
			s.Cond = remapExpr(s.Cond, vmap)
			remapStmts(s.Then, vmap)
			remapStmts(s.Else, vmap)
		case *ir.For:
			remapStmts(s.Body, vmap)
		case *ir.ExitRegion:
			s.Cond = remapExpr(s.Cond, vmap)
		case *ir.Call:
			for i, a := range s.Args {
				s.Args[i] = remapExpr(a, vmap)
			}
		}
	}
}

func remapExpr(e ir.Expr, vmap map[*ir.Var]*ir.Var) ir.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ir.Load:
		remapRef(x.Ref, vmap)
	case *ir.Bin:
		x.L = remapExpr(x.L, vmap)
		x.R = remapExpr(x.R, vmap)
	}
	return e
}

func remapRef(r *ir.Ref, vmap map[*ir.Var]*ir.Var) {
	if nv, ok := vmap[r.Var]; ok {
		r.Var = nv
	}
	for i, sub := range r.Subs {
		r.Subs[i] = remapExpr(sub, vmap)
	}
}

// stmtEdit rewrites one statement (identified by preorder index) into a
// replacement list; returning ok=false leaves the statement alone.
type stmtEdit func(ir.Stmt) (repl []ir.Stmt, ok bool)

// editStmts applies edit to the statement with preorder index target,
// recursing through if/for bodies. ctr carries the running preorder
// counter across sibling lists.
func editStmts(stmts []ir.Stmt, ctr *int, target int, edit stmtEdit) []ir.Stmt {
	out := make([]ir.Stmt, 0, len(stmts))
	for _, st := range stmts {
		mine := *ctr == target
		*ctr++
		switch s := st.(type) {
		case *ir.If:
			s.Then = editStmts(s.Then, ctr, target, edit)
			s.Else = editStmts(s.Else, ctr, target, edit)
		case *ir.For:
			s.Body = editStmts(s.Body, ctr, target, edit)
		}
		if mine {
			if repl, ok := edit(st); ok {
				out = append(out, repl...)
				continue
			}
		}
		out = append(out, st)
	}
	return out
}

// applicableEdits returns the reduction kinds that apply to one
// statement: deletion always; arm-unwrapping for conditionals; trip
// collapse for multi-iteration loops; RHS and subscript zeroing for
// assignments that are not already constant.
func applicableEdits(st ir.Stmt) []stmtEdit {
	edits := []stmtEdit{
		func(ir.Stmt) ([]ir.Stmt, bool) { return nil, true },
	}
	switch s := st.(type) {
	case *ir.If:
		edits = append(edits, func(st ir.Stmt) ([]ir.Stmt, bool) {
			if s, ok := st.(*ir.If); ok {
				return s.Then, true
			}
			return nil, false
		})
		if len(s.Else) > 0 {
			edits = append(edits, func(st ir.Stmt) ([]ir.Stmt, bool) {
				if s, ok := st.(*ir.If); ok && len(s.Else) > 0 {
					return s.Else, true
				}
				return nil, false
			})
		}
	case *ir.For:
		if s.To != s.From {
			edits = append(edits, func(st ir.Stmt) ([]ir.Stmt, bool) {
				if s, ok := st.(*ir.For); ok && s.To != s.From {
					return []ir.Stmt{&ir.For{Index: s.Index, From: s.From, To: s.From, Step: s.Step, Body: s.Body}}, true
				}
				return nil, false
			})
		}
	case *ir.Assign:
		if _, isConst := s.RHS.(*ir.Const); !isConst {
			edits = append(edits, func(st ir.Stmt) ([]ir.Stmt, bool) {
				if s, ok := st.(*ir.Assign); ok {
					if _, isConst := s.RHS.(*ir.Const); !isConst {
						return []ir.Stmt{&ir.Assign{LHS: s.LHS, RHS: ir.C(0)}}, true
					}
				}
				return nil, false
			})
		}
		nonConstSub := false
		for _, sub := range s.LHS.Subs {
			if _, isConst := sub.(*ir.Const); !isConst {
				nonConstSub = true
			}
		}
		if nonConstSub {
			edits = append(edits, func(st ir.Stmt) ([]ir.Stmt, bool) {
				if s, ok := st.(*ir.Assign); ok && len(s.LHS.Subs) > 0 {
					changed := false
					for i, sub := range s.LHS.Subs {
						if _, isConst := sub.(*ir.Const); !isConst {
							s.LHS.Subs[i] = ir.C(0)
							changed = true
						}
					}
					return []ir.Stmt{s}, changed
				}
				return nil, false
			})
		}
	case *ir.Call:
		// Splice the call's expansion in place of the call: the program
		// keeps failing iff the failure did not depend on the call
		// boundary itself, and the now-call-free statements open up the
		// ordinary statement reductions.
		if len(s.Inlined) > 0 {
			edits = append(edits, func(st ir.Stmt) ([]ir.Stmt, bool) {
				if s, ok := st.(*ir.Call); ok && len(s.Inlined) > 0 {
					return ir.CloneStmts(s.Inlined), true
				}
				return nil, false
			})
		}
	}
	return edits
}

// candidates enumerates one-step reductions of p, biggest cuts first.
// Every candidate is an independent clone with its regions re-finalized.
func candidates(p *ir.Program) []*ir.Program {
	var out []*ir.Program
	emit := func(mutate func(*ir.Program) bool) {
		c := cloneProgram(p)
		if mutate(c) {
			for _, r := range c.Regions {
				r.Finalize()
			}
			out = append(out, c)
		}
	}

	// Drop whole regions.
	if len(p.Regions) > 1 {
		for i := range p.Regions {
			i := i
			emit(func(c *ir.Program) bool {
				c.Regions = append(c.Regions[:i:i], c.Regions[i+1:]...)
				return true
			})
		}
	}
	// Shrink loop-region trip counts (halve, then single iteration).
	for ri, r := range p.Regions {
		if r.Kind != ir.LoopRegion {
			continue
		}
		trips := r.InstanceCount()
		for _, want := range []int{trips / 2, 1} {
			if want < 1 || want >= trips {
				continue
			}
			ri, want := ri, want
			emit(func(c *ir.Program) bool {
				cr := c.Regions[ri]
				cr.To = cr.From + (want-1)*cr.Step
				return true
			})
		}
	}
	// Simplify CFG branches: keep one successor, drop the condition.
	for ri, r := range p.Regions {
		for si, seg := range r.Segments {
			if len(seg.Succs) != 2 {
				continue
			}
			for succ := 0; succ < 2; succ++ {
				ri, si, succ := ri, si, succ
				emit(func(c *ir.Program) bool {
					cs := c.Regions[ri].Segments[si]
					cs.Succs = []int{cs.Succs[succ]}
					cs.Branch = nil
					return true
				})
			}
		}
	}
	// Statement-level edits, per region/segment, preorder position t.
	// Applicability is probed on the original statement first, so a
	// clone is only built for (position, kind) pairs that will apply —
	// ir.WalkStmts visits in the same preorder editStmts counts.
	for ri, r := range p.Regions {
		for si, seg := range r.Segments {
			t := -1
			ir.WalkStmts(seg.Body, func(st ir.Stmt) {
				t++
				for _, e := range applicableEdits(st) {
					ri, si, t, e := ri, si, t, e
					emit(func(c *ir.Program) bool {
						cs := c.Regions[ri].Segments[si]
						ctr, applied := 0, false
						cs.Body = editStmts(cs.Body, &ctr, t, func(st ir.Stmt) ([]ir.Stmt, bool) {
							repl, ok := e(st)
							applied = applied || ok
							return repl, ok
						})
						// Reject no-op edits and edits that emptied the
						// whole segment: an empty body has no references
						// and proves nothing.
						return applied && len(cs.Body) > 0
					})
				}
			})
		}
	}
	// Drop procedures nothing calls anymore (directly from a region, or
	// transitively through a still-reachable procedure). The stale
	// procedure-name cache this leaves behind is harmless: dropped
	// procedures have no remaining call sites to resolve.
	if len(p.Procs) > 0 {
		emit(func(c *ir.Program) bool {
			reach := make(map[*ir.Proc]bool)
			var mark func(stmts []ir.Stmt)
			mark = func(stmts []ir.Stmt) {
				ir.WalkStmts(stmts, func(st ir.Stmt) {
					if call, ok := st.(*ir.Call); ok && call.Proc != nil && !reach[call.Proc] {
						reach[call.Proc] = true
						mark(call.Proc.Body)
					}
				})
			}
			for _, r := range c.Regions {
				for _, seg := range r.Segments {
					mark(seg.Body)
				}
			}
			var keep []*ir.Proc
			for _, pr := range c.Procs {
				if reach[pr] {
					keep = append(keep, pr)
				}
			}
			if len(keep) == len(c.Procs) {
				return false
			}
			c.Procs = keep
			return true
		})
	}
	// Drop variables no reference uses anymore.
	emit(func(c *ir.Program) bool {
		used := make(map[*ir.Var]bool)
		for _, r := range c.Regions {
			for _, ref := range r.Refs {
				used[ref.Var] = true
			}
		}
		var keep []*ir.Var
		for _, v := range c.Vars {
			if used[v] {
				keep = append(keep, v)
			}
		}
		if len(keep) == len(c.Vars) {
			return false
		}
		names := make(map[string]bool, len(keep))
		for _, v := range keep {
			names[v.Name] = true
		}
		c.Vars = keep
		for _, r := range c.Regions {
			for ann := range r.Ann.Private {
				if !names[ann] {
					delete(r.Ann.Private, ann)
				}
			}
			for ann := range r.Ann.LiveOut {
				if !names[ann] {
					delete(r.Ann.LiveOut, ann)
				}
			}
		}
		return true
	})
	return out
}
