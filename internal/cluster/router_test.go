package cluster

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"refidem/internal/api"
	"refidem/internal/api/client"
	"refidem/internal/ir"
	"refidem/internal/lang"
	"refidem/internal/service"
)

const clusterProg = `program cluster_test
var a[16]
var b[16]
region r0 loop k = 0 to 15 {
  a[k] = (b[k] + 1)
}
region r1 loop k = 0 to 15 {
  b[k] = (a[k] + 2)
}
`

// patchedR1 is the r1 region rewritten; clusterProgPatched is the full
// program with that rewrite applied, for the byte-identity oracle.
const patchedR1 = `region r1 loop k = 0 to 15 {
  b[k] = (a[k] + 3)
}
`

const clusterProgPatched = `program cluster_test
var a[16]
var b[16]
region r0 loop k = 0 to 15 {
  a[k] = (b[k] + 1)
}
` + patchedR1

func fingerprintOf(t testing.TB, src string) string {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fp := ir.FingerprintOf(p)
	return hex.EncodeToString(fp[:])
}

// testReplicaSet boots n in-process refidemd replicas behind httptest
// and returns a router over them plus the replica servers (for
// targeted shutdown). Probing is disabled unless probe > 0.
func testReplicaSet(t testing.TB, n int, probe time.Duration) (*Router, []*httptest.Server) {
	t.Helper()
	cfg := service.DefaultConfig()
	cfg.Shards = 2
	cfg.Workers = 2
	cfg.QueueDepth = 64
	var reps []Replica
	var servers []*httptest.Server
	for i := 0; i < n; i++ {
		svc := service.New(cfg)
		t.Cleanup(svc.Close)
		hs := httptest.NewServer(svc.Handler())
		t.Cleanup(hs.Close)
		servers = append(servers, hs)
		reps = append(reps, Replica{Name: fmt.Sprintf("rep-%d", i), URL: hs.URL})
	}
	if probe == 0 {
		probe = -1
	}
	rt, err := New(Config{Replicas: reps, ProbeInterval: probe, ProbeTimeout: time.Second, FailAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, servers
}

// singleNode answers the oracle question "what would one replica say?".
func singleNode(t testing.TB) *client.Client {
	t.Helper()
	cfg := service.DefaultConfig()
	cfg.Shards = 2
	cfg.Workers = 2
	svc := service.New(cfg)
	t.Cleanup(svc.Close)
	hs := httptest.NewServer(svc.Handler())
	t.Cleanup(hs.Close)
	return client.New(hs.URL)
}

func routerClient(t testing.TB, rt *Router) *client.Client {
	t.Helper()
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(hs.Close)
	return client.New(hs.URL)
}

// The router must be invisible at the byte level: any request answered
// through it returns exactly the bytes a single node would serve.
func TestRouterByteIdenticalToSingleNode(t *testing.T) {
	rt, _ := testReplicaSet(t, 3, 0)
	via := routerClient(t, rt)
	direct := singleNode(t)
	ctx := context.Background()

	requests := []api.Request{
		{Program: clusterProg},
		{Example: "fig2"},
		{Example: "fig2", Deps: true},
		{Op: api.OpSimulate, Example: "fig2", Procs: 8, Capacity: 64},
	}
	for i, req := range requests {
		got, err := via.Do(ctx, withOp(req))
		if err != nil {
			t.Fatalf("request %d via router: %v", i, err)
		}
		want, err := direct.Do(ctx, withOp(req))
		if err != nil {
			t.Fatalf("request %d direct: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("request %d: router bytes differ from single node\nrouter: %s\ndirect: %s", i, got, want)
		}
	}
}

func withOp(req api.Request) api.Request {
	if req.Op == "" {
		req.Op = api.OpLabel
	}
	return req
}

// A base program and a delta against it must land on the same replica:
// the delta finds the base registered and its response is byte-identical
// to fully labeling the patched program.
func TestRouterDeltaAffinity(t *testing.T) {
	rt, _ := testReplicaSet(t, 4, 0)
	via := routerClient(t, rt)
	direct := singleNode(t)
	ctx := context.Background()

	if _, err := via.Label(ctx, api.Request{Program: clusterProg}); err != nil {
		t.Fatalf("base label: %v", err)
	}
	delta := api.Request{
		Op:      api.OpLabel,
		Base:    fingerprintOf(t, clusterProg),
		Patches: []api.RegionPatch{{Region: "r1", Source: patchedR1}},
	}
	got, err := via.Label(ctx, delta)
	if err != nil {
		t.Fatalf("delta via router: %v (base and delta should share a replica)", err)
	}
	want, err := direct.Label(ctx, api.Request{Op: api.OpLabel, Program: clusterProgPatched})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("delta response differs from full label of patched program\ndelta: %s\nfull:  %s", got, want)
	}
	if RouteKey(api.Request{Program: clusterProg}) != RouteKey(delta) {
		t.Fatal("base and delta compute different route keys")
	}
}

// Replica-answered errors must be re-served verbatim, with the replica's
// status and Retry-After semantics surviving the hop.
func TestRouterErrorsVerbatim(t *testing.T) {
	rt, _ := testReplicaSet(t, 3, 0)
	via := routerClient(t, rt)
	direct := singleNode(t)
	ctx := context.Background()

	for _, req := range []api.Request{
		{Op: api.OpLabel, Program: "program broken\nnonsense"},
		{Op: api.OpLabel, Base: strings.Repeat("ab", 32)}, // unknown base
	} {
		_, gotErr := via.Label(ctx, req)
		_, wantErr := direct.Label(ctx, req)
		if gotErr == nil || wantErr == nil {
			t.Fatalf("expected errors, got %v / %v", gotErr, wantErr)
		}
		var gre, wre *api.RemoteError
		if !errors.As(gotErr, &gre) || !errors.As(wantErr, &wre) {
			t.Fatalf("errors are not RemoteError: %T / %T", gotErr, wantErr)
		}
		if gre.Msg != wre.Msg || gre.Status != wre.Status {
			t.Fatalf("router error differs from single node:\nrouter: %d %q\ndirect: %d %q",
				gre.Status, gre.Msg, wre.Status, wre.Msg)
		}
	}
	if got := rt.failovers.Load(); got != 0 {
		t.Fatalf("replica-answered errors caused %d failovers; they must not fail over", got)
	}
}

// Transport failures fail over along the ring: with one replica down,
// every request still succeeds and responses stay byte-identical.
func TestRouterFailover(t *testing.T) {
	rt, servers := testReplicaSet(t, 3, 0)
	via := routerClient(t, rt)
	direct := singleNode(t)
	ctx := context.Background()

	servers[1].Close() // rep-1 dies without being ejected: transport errors only

	for i := 0; i < 8; i++ {
		req := api.Request{Op: api.OpLabel, Program: fmt.Sprintf(
			"program failover_%d\nvar a[8]\nregion r0 loop k = 0 to 7 {\n  a[k] = (k + %d)\n}\n", i, i)}
		got, err := via.Label(ctx, req)
		if err != nil {
			t.Fatalf("request %d with rep-1 down: %v", i, err)
		}
		want, err := direct.Label(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("request %d: failover response differs from single node", i)
		}
	}
	// 8 distinct programs across 3 replicas: some must have been owned by
	// the dead one and failed over.
	if rt.failovers.Load() == 0 {
		t.Fatal("no failovers recorded; dead replica never owned a key?")
	}
}

// With every replica down the router answers overloaded, not a hang.
func TestRouterAllReplicasDown(t *testing.T) {
	rt, servers := testReplicaSet(t, 2, 0)
	via := routerClient(t, rt)
	for _, s := range servers {
		s.Close()
	}
	_, err := via.Label(context.Background(), api.Request{Op: api.OpLabel, Example: "fig2"})
	var re *api.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if re.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", re.Status)
	}
}

// flakyHealth wraps a replica handler and fails /healthz while tripped,
// driving the prober's eject/readmit cycle without killing the server.
type flakyHealth struct {
	inner   http.Handler
	tripped atomic.Bool
}

func (f *flakyHealth) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.tripped.Load() && r.URL.Path == "/healthz" {
		http.Error(w, "probe sink", http.StatusInternalServerError)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestRouterProbeEjectionAndReadmission(t *testing.T) {
	cfg := service.DefaultConfig()
	cfg.Shards = 2
	cfg.Workers = 2
	svcA, svcB := service.New(cfg), service.New(cfg)
	t.Cleanup(svcA.Close)
	t.Cleanup(svcB.Close)
	flaky := &flakyHealth{inner: svcB.Handler()}
	hsA := httptest.NewServer(svcA.Handler())
	hsB := httptest.NewServer(flaky)
	t.Cleanup(hsA.Close)
	t.Cleanup(hsB.Close)

	rt, err := New(Config{
		Replicas: []Replica{
			{Name: "rep-a", URL: hsA.URL},
			{Name: "rep-b", URL: hsB.URL},
		},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailAfter:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	aliveOf := func(name string) func() bool {
		return func() bool {
			for _, r := range rt.Health().Replicas {
				if r.Name == name {
					return r.Alive
				}
			}
			t.Fatalf("replica %s missing from health", name)
			return false
		}
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s\nmetricz:\n%s", what, rt.RenderMetricz())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	flaky.tripped.Store(true)
	waitFor("rep-b ejection", func() bool { return !aliveOf("rep-b")() })
	if rt.ejections.Load() == 0 {
		t.Fatal("ejection not counted")
	}
	// While ejected, requests route around rep-b with no failover (the
	// sequence already excludes it).
	via := routerClient(t, rt)
	before := rt.failovers.Load()
	for i := 0; i < 6; i++ {
		req := api.Request{Op: api.OpLabel, Program: fmt.Sprintf(
			"program eject_%d\nvar a[8]\nregion r0 loop k = 0 to 7 {\n  a[k] = (k + 1)\n}\n", i)}
		if _, err := via.Label(context.Background(), req); err != nil {
			t.Fatalf("request %d during ejection: %v", i, err)
		}
	}
	if got := rt.failovers.Load() - before; got != 0 {
		t.Fatalf("%d failovers while ejected; ejected replicas must not be tried", got)
	}

	flaky.tripped.Store(false)
	waitFor("rep-b readmission", aliveOf("rep-b"))
	if rt.readmissions.Load() == 0 {
		t.Fatal("readmission not counted")
	}
}

// Batch items route independently; failures become in-order error
// documents, same as the single-node batch contract.
func TestRouterBatch(t *testing.T) {
	rt, _ := testReplicaSet(t, 3, 0)
	via := routerClient(t, rt)
	direct := singleNode(t)
	ctx := context.Background()

	reqs := []api.Request{
		{Op: api.OpLabel, Example: "fig2"},
		{Op: api.OpLabel, Program: "program broken\nnonsense"},
		{Op: api.OpSimulate, Example: "fig1", Procs: 4, Capacity: 16},
	}
	got, err := via.Batch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Batch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("batch item %d differs\nrouter: %s\ndirect: %s", i, got[i], want[i])
		}
	}
}

// The timeline variant proxies with its query string intact.
func TestRouterTimelinePassthrough(t *testing.T) {
	rt, _ := testReplicaSet(t, 2, 0)
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(hs.Close)

	body := `{"op":"simulate","example":"fig2","procs":4,"capacity":16}`
	resp, err := http.Post(hs.URL+"/v1/simulate?timeline=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline via router: %d\n%s", resp.StatusCode, raw)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("timeline response is not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatalf("timeline document missing traceEvents field:\n%s", raw)
	}
}

func TestRouterHealthAndMetricz(t *testing.T) {
	rt, _ := testReplicaSet(t, 2, 0)
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(hs.Close)

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Replicas) != 2 {
		t.Fatalf("health = %+v", h)
	}

	mz, err := http.Get(hs.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer mz.Body.Close()
	raw, _ := io.ReadAll(mz.Body)
	for _, want := range []string{
		"router_requests_label", "router_failovers", "router_bounded_skips",
		"router_probe_ejections", "replica_rep-0_alive", "replica_rep-1_proxied",
	} {
		if !strings.Contains(string(raw), want+" ") {
			t.Fatalf("metricz missing %q:\n%s", want, raw)
		}
	}
}

// Bounded load rotates an overloaded owner out of the lead — except for
// sticky (delta) requests, which must reach the owner because only it
// holds the base registry entry.
func TestRouterStickySequenceSkipsBoundedLoad(t *testing.T) {
	rt, _ := testReplicaSet(t, 3, 0)
	const key = "fp:sticky-test"
	owner := rt.ring.Owner(key)
	rt.byName[owner].inflight.Store(1000)

	balanced := rt.sequence(key, false)
	if balanced[0].name == owner {
		t.Fatalf("bounded load left overloaded owner %s in the lead", owner)
	}
	if rt.boundedSkips.Load() == 0 {
		t.Fatal("bounded skip not counted")
	}
	sticky := rt.sequence(key, true)
	if sticky[0].name != owner {
		t.Fatalf("sticky sequence leads with %s, want owner %s", sticky[0].name, owner)
	}
}

func TestRouterConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if _, err := New(Config{Replicas: []Replica{{Name: "a", URL: "http://x"}, {Name: "a", URL: "http://y"}}, ProbeInterval: -1}); err == nil {
		t.Fatal("duplicate replica names accepted")
	}
	if _, err := New(Config{Replicas: []Replica{{Name: "", URL: "http://x"}}, ProbeInterval: -1}); err == nil {
		t.Fatal("unnamed replica accepted")
	}
}
