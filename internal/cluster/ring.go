// Package cluster is the multi-node scale-out layer: a consistent-hash
// ring with virtual nodes and bounded-load placement, and an HTTP router
// (see router.go) that spreads /v1 analysis requests across refidemd
// replicas by program fingerprint, ejects unhealthy replicas, and fails
// over deterministically along the ring's successor order.
//
// Placement is a pure function of the member set and the key: every
// router instance with the same replica list routes every key to the
// same replica, with the same failover order — no coordination, no
// shared state. Combined with the service's byte-deterministic
// responses, any replica's answer for a key is interchangeable with any
// other's, so failover and rebalancing are invisible to clients at the
// byte level.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when Ring callers
// pass 0: enough points that member loads stay within a few percent of
// even for realistic member counts, small enough that ring construction
// and memory stay trivial.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over a fixed member set. Construction
// is deterministic: equal member sets (in any order) produce identical
// rings. A Ring is immutable and safe for concurrent use; membership
// changes build a new Ring, which remaps only the keys whose owning arc
// moved (~K/N of them for one member joining or leaving N members).
type Ring struct {
	members []string
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member int32
}

// NewRing builds a ring over members with vnodes virtual nodes per
// member (0 selects DefaultVNodes). Duplicate member names collapse to
// one. An empty member set yields a ring whose lookups return nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := append([]string(nil), members...)
	sort.Strings(uniq)
	n := 0
	for i, m := range uniq {
		if i == 0 || uniq[i-1] != m {
			uniq[n] = m
			n++
		}
	}
	uniq = uniq[:n]
	r := &Ring{members: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			h := sha256.Sum256([]byte(m + "#" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{
				hash:   binary.BigEndian.Uint64(h[:8]),
				member: int32(mi),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the member names, sorted. The slice is shared; do not
// mutate.
func (r *Ring) Members() []string { return r.members }

// hashKey positions a key on the ring.
func hashKey(key string) uint64 {
	h := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(h[:8])
}

// succIdx returns the index of the first ring point at or after the
// key's position, wrapping.
func (r *Ring) succIdx(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.succIdx(key)].member]
}

// Sequence appends the key's deterministic failover order to buf and
// returns it: every member exactly once, ordered by first appearance
// walking the ring clockwise from the key's position. The first entry is
// the owner; a router that cannot reach it tries the rest in order, so
// every router agrees on where a key lands after any number of failures.
func (r *Ring) Sequence(key string, buf []string) []string {
	buf = buf[:0]
	if len(r.points) == 0 {
		return buf
	}
	start := r.succIdx(key)
	var seen uint64 // member-index bitset for the common (≤64 member) case
	var seenBig []bool
	if len(r.members) > 64 {
		seenBig = make([]bool, len(r.members))
	}
	for i := 0; i < len(r.points) && len(buf) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seenBig != nil {
			if seenBig[p.member] {
				continue
			}
			seenBig[p.member] = true
		} else {
			if seen&(1<<uint(p.member)) != 0 {
				continue
			}
			seen |= 1 << uint(p.member)
		}
		buf = append(buf, r.members[p.member])
	}
	return buf
}
