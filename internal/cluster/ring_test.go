package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func keysN(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

func membersN(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("replica-%d", i)
	}
	return ms
}

// Placement must be a pure function of the member *set*: shuffling the
// member list (and handing in duplicates) must not move a single key or
// change a single failover sequence.
func TestRingDeterministicPlacement(t *testing.T) {
	members := membersN(7)
	a := NewRing(members, 0)

	shuffled := append([]string(nil), members...)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	shuffled = append(shuffled, members[3], members[0]) // duplicates collapse
	b := NewRing(shuffled, 0)

	var bufA, bufB []string
	for _, k := range keysN(2000) {
		if oa, ob := a.Owner(k), b.Owner(k); oa != ob {
			t.Fatalf("Owner(%q) differs across member orderings: %q vs %q", k, oa, ob)
		}
		bufA = a.Sequence(k, bufA)
		bufB = b.Sequence(k, bufB)
		if len(bufA) != len(bufB) {
			t.Fatalf("Sequence(%q) lengths differ: %d vs %d", k, len(bufA), len(bufB))
		}
		for i := range bufA {
			if bufA[i] != bufB[i] {
				t.Fatalf("Sequence(%q)[%d] differs: %q vs %q", k, i, bufA[i], bufB[i])
			}
		}
	}
}

// Sequence must enumerate every member exactly once, owner first.
func TestRingSequenceCoversAllMembersOnce(t *testing.T) {
	r := NewRing(membersN(9), 0)
	var buf []string
	for _, k := range keysN(500) {
		buf = r.Sequence(k, buf)
		if len(buf) != 9 {
			t.Fatalf("Sequence(%q) has %d entries, want 9", k, len(buf))
		}
		if buf[0] != r.Owner(k) {
			t.Fatalf("Sequence(%q)[0] = %q, Owner = %q", k, buf[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range buf {
			if seen[m] {
				t.Fatalf("Sequence(%q) repeats member %q", k, m)
			}
			seen[m] = true
		}
	}
}

// The consistent-hashing contract: removing one member from N remaps
// exactly the removed member's keys (everything else stays put), which
// is ~K/N of them; adding a member remaps keys only *to* the new member.
func TestRingMembershipChangeRemapsFewKeys(t *testing.T) {
	const K = 10000
	members := membersN(10)
	keys := keysN(K)
	before := NewRing(members, 0)

	t.Run("remove", func(t *testing.T) {
		after := NewRing(members[1:], 0) // drop replica-0
		moved := 0
		for _, k := range keys {
			oldOwner, newOwner := before.Owner(k), after.Owner(k)
			if oldOwner == newOwner {
				continue
			}
			moved++
			if oldOwner != "replica-0" {
				t.Fatalf("key %q moved from surviving member %q to %q", k, oldOwner, newOwner)
			}
		}
		// Expect ~K/N moved; allow 2x for hash-arc variance at 64 vnodes.
		if max := 2 * K / len(members); moved > max {
			t.Fatalf("removal remapped %d of %d keys, want ≤ ~K/N (max %d)", moved, K, max)
		}
		if moved == 0 {
			t.Fatalf("removal remapped no keys; ring is not spreading load")
		}
	})

	t.Run("add", func(t *testing.T) {
		after := NewRing(append([]string{"replica-new"}, members...), 0)
		moved := 0
		for _, k := range keys {
			oldOwner, newOwner := before.Owner(k), after.Owner(k)
			if oldOwner == newOwner {
				continue
			}
			moved++
			if newOwner != "replica-new" {
				t.Fatalf("key %q moved to surviving member %q, not the new member", k, newOwner)
			}
		}
		if max := 2 * K / (len(members) + 1); moved > max {
			t.Fatalf("join remapped %d of %d keys, want ≤ ~K/(N+1) (max %d)", moved, K, max)
		}
		if moved == 0 {
			t.Fatalf("join remapped no keys; the new member owns nothing")
		}
	})
}

// Surviving-member failover must be consistent with the smaller ring:
// when a member dies, skipping it in the old Sequence yields the same
// leading order the rebuilt ring would produce for most keys. (They can
// differ only where the dead member's vnodes interleave the walk, which
// is exactly the ~K/N arc the consistency bound covers — so we assert
// the owner-after-failure matches the rebuilt ring's owner exactly.)
func TestRingFailoverMatchesRebuiltRing(t *testing.T) {
	members := membersN(6)
	full := NewRing(members, 0)
	rebuilt := NewRing(members[1:], 0) // replica-0 died
	var buf []string
	for _, k := range keysN(3000) {
		buf = full.Sequence(k, buf)
		next := ""
		for _, m := range buf {
			if m != "replica-0" {
				next = m
				break
			}
		}
		if want := rebuilt.Owner(k); next != want {
			t.Fatalf("failover owner for %q = %q, rebuilt ring says %q", k, next, want)
		}
	}
}

// Load must stay roughly even: no member owns more than ~2x fair share
// at DefaultVNodes.
func TestRingBalance(t *testing.T) {
	members := membersN(8)
	r := NewRing(members, 0)
	counts := map[string]int{}
	const K = 20000
	for _, k := range keysN(K) {
		counts[r.Owner(k)]++
	}
	fair := K / len(members)
	for _, m := range members {
		if c := counts[m]; c > 2*fair || c < fair/3 {
			t.Fatalf("member %q owns %d of %d keys (fair share %d): imbalance too large", m, c, K, fair)
		}
	}
}

// Ring must survive >64 members (the Sequence bitset falls back to a
// slice) and keep the exactly-once property.
func TestRingManyMembers(t *testing.T) {
	r := NewRing(membersN(70), 8)
	buf := r.Sequence("some-key", nil)
	if len(buf) != 70 {
		t.Fatalf("Sequence covers %d of 70 members", len(buf))
	}
	seen := map[string]bool{}
	for _, m := range buf {
		if seen[m] {
			t.Fatalf("member %q repeated", m)
		}
		seen[m] = true
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring Owner = %q, want \"\"", got)
	}
	if got := empty.Sequence("k", nil); len(got) != 0 {
		t.Fatalf("empty ring Sequence has %d entries", len(got))
	}
	one := NewRing([]string{"only"}, 0)
	for _, k := range keysN(10) {
		if got := one.Owner(k); got != "only" {
			t.Fatalf("single-member ring Owner(%q) = %q", k, got)
		}
	}
}

func BenchmarkRouterRoute(b *testing.B) {
	rt, err := New(Config{
		Replicas: []Replica{
			{Name: "a", URL: "http://127.0.0.1:1"},
			{Name: "b", URL: "http://127.0.0.1:2"},
			{Name: "c", URL: "http://127.0.0.1:3"},
			{Name: "d", URL: "http://127.0.0.1:4"},
		},
		ProbeInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	keys := keysN(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := rt.sequence(keys[i%len(keys)], false)
		if len(seq) == 0 {
			b.Fatal("no replica")
		}
	}
}
