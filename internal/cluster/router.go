package cluster

// The request router: an HTTP front for N refidemd replicas. Requests
// are routed by *program identity* — the router parses full-program
// requests just far enough to compute their content fingerprint, so a
// program and every delta against it (which carries that fingerprint as
// its Base) land on the same replica and the delta finds its base
// registered. Placement is the ring's bounded-load pick; health probes
// eject replicas that stop answering /healthz and readmit them when they
// recover; transport failures fail over along the ring's deterministic
// successor order. Replica-answered errors (400, 404, 503, ...) are
// re-served byte-identically — only transport errors fail over, so a bad
// request does not hammer every replica in turn.

import (
	"container/list"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"refidem/internal/api"
	"refidem/internal/api/client"
	"refidem/internal/ir"
	"refidem/internal/lang"
)

// maxRequestBody mirrors the service's request-body bound.
const maxRequestBody = 4 << 20

// Replica names one backend refidemd.
type Replica struct {
	// Name identifies the replica on the ring and in metrics; it must be
	// unique and stable across routers (placement hashes it).
	Name string
	// URL is the replica's base URL, e.g. "http://127.0.0.1:8347".
	URL string
}

// Config parameterizes a Router. The zero value of every field selects
// the documented default.
type Config struct {
	// Replicas is the backend set. Placement depends only on the Names.
	Replicas []Replica
	// VNodes is the virtual-node count per replica (0 selects
	// DefaultVNodes).
	VNodes int
	// LoadFactor bounds per-replica load under the bounded-load rule: a
	// replica is skipped (for this request) when its in-flight count
	// exceeds LoadFactor times the fair share. 0 selects 1.25; values
	// below 1 are raised to 1.
	LoadFactor float64
	// ProbeInterval is the health-probe period (0 selects 500ms;
	// negative disables probing — replicas then stay alive forever and
	// only per-request failover skips them).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (0 selects 1s).
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures eject a replica
	// (0 selects 2).
	FailAfter int
	// Client, when set, overrides the HTTP client used for proxying and
	// probes (tests inject httptest transports). nil uses each replica
	// client's default.
	Client *http.Client
}

func (c Config) normalized() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 1.25
	}
	if c.LoadFactor < 1 {
		c.LoadFactor = 1
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	return c
}

// replica is one backend's runtime state.
type replica struct {
	name string
	url  string
	c    *client.Client

	alive    atomic.Bool
	fails    atomic.Int32
	inflight atomic.Int64
	proxied  atomic.Int64
}

// Router proxies the /v1 API across a replica set. Construct with New,
// serve Handler, stop the prober with Close.
type Router struct {
	cfg  Config
	ring *Ring
	// reps is sorted by name; byName indexes it. Both are immutable
	// after New.
	reps   []*replica
	byName map[string]*replica
	routes *routeCache

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// Counters, rendered by RenderMetricz.
	labelRequests    atomic.Int64
	simulateRequests atomic.Int64
	batchCalls       atomic.Int64
	badRequests      atomic.Int64
	failovers        atomic.Int64
	boundedSkips     atomic.Int64
	noReplica        atomic.Int64
	ejections        atomic.Int64
	readmissions     atomic.Int64
}

// New builds a router over cfg's replicas and starts the health prober
// (unless probing is disabled). Every replica starts alive.
func New(cfg Config) (*Router, error) {
	cfg = cfg.normalized()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas configured")
	}
	names := make([]string, 0, len(cfg.Replicas))
	byName := make(map[string]*replica, len(cfg.Replicas))
	for _, rc := range cfg.Replicas {
		if rc.Name == "" || rc.URL == "" {
			return nil, fmt.Errorf("cluster: replica needs both name and url (got %q, %q)", rc.Name, rc.URL)
		}
		if byName[rc.Name] != nil {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", rc.Name)
		}
		rep := &replica{name: rc.Name, url: rc.URL, c: client.New(rc.URL)}
		if cfg.Client != nil {
			rep.c.HTTP = cfg.Client
		}
		rep.alive.Store(true)
		byName[rc.Name] = rep
		names = append(names, rc.Name)
	}
	rt := &Router{
		cfg:    cfg,
		ring:   NewRing(names, cfg.VNodes),
		byName: byName,
		routes: newRouteCache(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Ring members are sorted; keep reps in the same order for
	// deterministic metrics rendering.
	for _, n := range rt.ring.Members() {
		rt.reps = append(rt.reps, byName[n])
	}
	if cfg.ProbeInterval > 0 {
		go rt.probeLoop()
	} else {
		close(rt.done)
	}
	return rt, nil
}

// Close stops the health prober. Idempotent.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

// probeLoop polls every replica's /healthz each ProbeInterval,
// sequentially in name order. FailAfter consecutive failures eject a
// replica; one success readmits it.
func (rt *Router) probeLoop() {
	defer close(rt.done)
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
		for _, rep := range rt.reps {
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
			_, err := rep.c.Health(ctx)
			cancel()
			if err != nil {
				if fails := rep.fails.Add(1); int(fails) >= rt.cfg.FailAfter && rep.alive.CompareAndSwap(true, false) {
					rt.ejections.Add(1)
				}
				continue
			}
			rep.fails.Store(0)
			if rep.alive.CompareAndSwap(false, true) {
				rt.readmissions.Add(1)
			}
		}
	}
}

// RouteKey computes a request's placement key: the program's content
// fingerprint when it can be determined (parsing full-program requests,
// reusing the Base fingerprint of delta requests), so a base program and
// its deltas share a replica and the delta finds its base registered.
// Unparseable programs key on their raw text — the replica will answer
// the 400 and there is nothing to co-locate.
func RouteKey(req api.Request) string {
	switch {
	case req.Base != "":
		return "fp:" + req.Base
	case req.Example != "":
		return "example:" + req.Example
	default:
		if p, err := lang.Parse(req.Program); err == nil {
			fp := ir.FingerprintOf(p)
			return "fp:" + hex.EncodeToString(fp[:])
		}
		return "src:" + req.Program
	}
}

// routeKeyCacheCap bounds the router's source→placement-key LRU. Keying
// a full-program request means parsing it; under skewed popularity the
// same sources recur constantly, and the parse — not the proxying — is
// the router's dominant per-request cost.
const routeKeyCacheCap = 4096

// routeCache is a bounded LRU from program source to placement key.
type routeCache struct {
	mu    sync.Mutex
	m     map[string]*list.Element
	order *list.List // values are *routeEntry
}

type routeEntry struct{ src, key string }

func newRouteCache() *routeCache {
	return &routeCache{m: make(map[string]*list.Element), order: list.New()}
}

func (c *routeCache) get(src string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[src]
	if !ok {
		return "", false
	}
	c.order.MoveToFront(el)
	return el.Value.(*routeEntry).key, true
}

func (c *routeCache) put(src, key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[src]; ok {
		c.order.MoveToFront(el)
		el.Value.(*routeEntry).key = key
		return
	}
	c.m[src] = c.order.PushFront(&routeEntry{src: src, key: key})
	for c.order.Len() > routeKeyCacheCap {
		victim := c.order.Back()
		c.order.Remove(victim)
		delete(c.m, victim.Value.(*routeEntry).src)
	}
}

// routeKey is RouteKey through the router's source→key cache.
func (rt *Router) routeKey(req api.Request) string {
	if req.Base != "" || req.Example != "" || req.Program == "" {
		return RouteKey(req) // cheap cases: no parse involved
	}
	if key, ok := rt.routes.get(req.Program); ok {
		return key
	}
	key := RouteKey(req)
	rt.routes.put(req.Program, key)
	return key
}

// sequence returns the alive replicas in the key's failover order, with
// the bounded-load pick rotated to the front: if the ring owner's
// in-flight count exceeds LoadFactor times the fair share, the first
// underloaded successor leads instead (counted as a bounded skip).
// Sticky requests (deltas, whose base registry lives on the owner) skip
// the rotation: placement beats balance when only the owner can answer
// without a 404.
func (rt *Router) sequence(key string, sticky bool) []*replica {
	names := rt.ring.Sequence(key, make([]string, 0, len(rt.reps)))
	out := make([]*replica, 0, len(names))
	total := int64(0)
	for _, n := range names {
		rep := rt.byName[n]
		if rep.alive.Load() {
			out = append(out, rep)
			total += rep.inflight.Load()
		}
	}
	if len(out) <= 1 || sticky {
		return out
	}
	// Bounded-load capacity: ceil(LoadFactor * (total+1) / alive).
	capacity := int64(rt.cfg.LoadFactor*float64(total+1)/float64(len(out))) + 1
	for j, rep := range out {
		if rep.inflight.Load() < capacity {
			if j > 0 {
				rt.boundedSkips.Add(int64(j))
				lead := out[j]
				copy(out[1:j+1], out[:j])
				out[0] = lead
			}
			break
		}
	}
	return out
}

// Handler returns the router's HTTP API — the same /v1 surface as a
// replica (label, simulate, timeline, batch) plus the router's own
// /healthz and /metricz.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/label", func(w http.ResponseWriter, r *http.Request) {
		rt.labelRequests.Add(1)
		rt.handleOp(w, r, api.OpLabel, "/v1/label")
	})
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		rt.simulateRequests.Add(1)
		path := "/v1/simulate"
		if r.URL.Query().Get("timeline") == "1" {
			path += "?timeline=1"
		}
		rt.handleOp(w, r, api.OpSimulate, path)
	})
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		doc, err := json.MarshalIndent(rt.Health(), "", "  ")
		if err != nil {
			api.WriteError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(doc, '\n'))
	})
	mux.HandleFunc("GET /metricz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rt.RenderMetricz())
	})
	return mux
}

func (rt *Router) handleOp(w http.ResponseWriter, r *http.Request, op, path string) {
	var req api.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		rt.badRequests.Add(1)
		api.WriteError(w, fmt.Errorf("%w: %v", api.ErrBadRequest, err))
		return
	}
	req.Op = op
	resp, err := rt.proxy(r.Context(), path, req)
	if err != nil {
		api.WriteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)
}

// proxy routes one request and returns the winning replica's response
// bytes. Replica-answered errors return as *api.RemoteError (re-served
// verbatim by the caller); transport errors fail over along the
// sequence.
func (rt *Router) proxy(ctx context.Context, path string, req api.Request) ([]byte, error) {
	seq := rt.sequence(rt.routeKey(req), req.Base != "")
	if len(seq) == 0 {
		rt.noReplica.Add(1)
		return nil, fmt.Errorf("%w: no live replica", api.ErrOverloaded)
	}
	var lastErr error
	for i, rep := range seq {
		if i > 0 {
			rt.failovers.Add(1)
		}
		rep.inflight.Add(1)
		resp, err := rt.postRaw(ctx, rep, path, req)
		rep.inflight.Add(-1)
		if err == nil {
			rep.proxied.Add(1)
			return resp, nil
		}
		var re *api.RemoteError
		if errors.As(err, &re) {
			// The replica is up and answered: its verdict stands. A bad
			// request is bad everywhere; an overload is backpressure the
			// client's backoff handles.
			return nil, err
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The caller went away; trying more replicas helps nobody.
			return nil, err
		}
		lastErr = err
	}
	rt.noReplica.Add(1)
	return nil, fmt.Errorf("%w: no replica reachable (last error: %v)", api.ErrOverloaded, lastErr)
}

// postRaw posts the request document to one replica. The timeline path
// is not part of the typed client, so the router posts JSON itself
// through the replica client's transport.
func (rt *Router) postRaw(ctx context.Context, rep *replica, path string, req api.Request) ([]byte, error) {
	if !strings.Contains(path, "?") {
		switch req.Op {
		case api.OpLabel:
			return rep.c.Label(ctx, req)
		case api.OpSimulate:
			return rep.c.Simulate(ctx, req)
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+path, strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := rep.c.HTTP.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, api.ErrorFromStatus(resp.StatusCode, resp.Header.Get("Retry-After"), b)
	}
	return b, nil
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt.batchCalls.Add(1)
	var batch api.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		rt.badRequests.Add(1)
		api.WriteError(w, fmt.Errorf("%w: %v", api.ErrBadRequest, err))
		return
	}
	if len(batch.Requests) == 0 {
		api.WriteError(w, fmt.Errorf("%w: empty batch", api.ErrBadRequest))
		return
	}
	// Items route independently (different programs live on different
	// replicas) and concurrently, mirroring the single-node batch
	// semantics: item failures are per-item error documents, in order.
	out := api.BatchResponse{Responses: make([]json.RawMessage, len(batch.Requests))}
	var wg sync.WaitGroup
	for i := range batch.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := batch.Requests[i]
			path := "/v1/label"
			if req.Op == api.OpSimulate {
				path = "/v1/simulate"
			}
			resp, err := rt.proxy(r.Context(), path, req)
			if err != nil {
				doc, _ := json.Marshal(api.ErrorDoc{Error: err.Error()})
				out.Responses[i] = doc
				return
			}
			out.Responses[i] = resp
		}(i)
	}
	wg.Wait()
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		api.WriteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(enc, '\n'))
}

// Health is the router's /healthz document.
type Health struct {
	// Status is "ok" while at least one replica is alive, "degraded"
	// otherwise.
	Status string `json:"status"`
	// Replicas reports each backend, in name order.
	Replicas []ReplicaHealth `json:"replicas"`
}

// ReplicaHealth is one replica's row in the router's health document.
type ReplicaHealth struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
}

// Health snapshots the router's view of the replica set.
func (rt *Router) Health() Health {
	h := Health{Status: "degraded"}
	for _, rep := range rt.reps {
		alive := rep.alive.Load()
		if alive {
			h.Status = "ok"
		}
		h.Replicas = append(h.Replicas, ReplicaHealth{Name: rep.name, URL: rep.url, Alive: alive})
	}
	return h
}

// RenderMetricz renders the router's /metricz document: fixed-order
// counters, then one block per replica in name order.
func (rt *Router) RenderMetricz() string {
	var b strings.Builder
	w := func(name string, v int64) { fmt.Fprintf(&b, "%s %d\n", name, v) }
	w("router_requests_label", rt.labelRequests.Load())
	w("router_requests_simulate", rt.simulateRequests.Load())
	w("router_requests_batch_calls", rt.batchCalls.Load())
	w("router_requests_bad", rt.badRequests.Load())
	w("router_failovers", rt.failovers.Load())
	w("router_bounded_skips", rt.boundedSkips.Load())
	w("router_no_replica", rt.noReplica.Load())
	w("router_probe_ejections", rt.ejections.Load())
	w("router_probe_readmissions", rt.readmissions.Load())
	for _, rep := range rt.reps {
		alive := int64(0)
		if rep.alive.Load() {
			alive = 1
		}
		w("replica_"+rep.name+"_alive", alive)
		w("replica_"+rep.name+"_proxied", rep.proxied.Load())
		w("replica_"+rep.name+"_inflight", rep.inflight.Load())
	}
	return b.String()
}
