package proptest

// Corpus replay: every file under testdata/corpus is re-run through the
// fuzzer's full differential oracle wall. The directory holds the seed
// corpus (hand-minimized feature-covering programs) plus any minimized
// reproducer the fuzzing driver ever wrote there (cmd/fuzz -corpus
// internal/proptest/testdata/corpus), so every past failure stays a
// permanent regression test.

import (
	"path/filepath"
	"testing"

	"refidem/internal/deps"
	"refidem/internal/engine"
	"refidem/internal/fuzz"
	"refidem/internal/idem"
	"refidem/internal/ir"
)

func TestCorpusReplay(t *testing.T) {
	corpus, err := fuzz.LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("testdata/corpus is empty — the seed corpus should be checked in")
	}
	for _, r := range corpus {
		r := r
		t.Run(filepath.Base(r.Path), func(t *testing.T) {
			p, err := r.Program()
			if err != nil {
				t.Fatal(err)
			}
			if v := fuzz.CheckProgram(p, fuzz.OracleOptions{}); v != nil {
				t.Fatalf("corpus program fails the oracle wall: %v\n(metadata: seed=%d profile=%s kind=%s detail=%s)",
					v, r.Seed, r.Profile, r.Kind, r.Detail)
			}
		})
	}
}

// TestCorpusEnsembleIdentity replays the whole corpus through the
// collaborative dependence ensemble with every member enabled — the
// replay-profile member trained on each program's own run — and checks
// the threshold-1.0 contract: base labels are byte-for-byte those of the
// plain labeler (speculative members only annotate confidences), and a
// reference reaches P(idempotent) == 1 exactly when it is proved
// idempotent. Any past fuzz reproducer checked into the corpus is thereby
// also a permanent ensemble regression test.
func TestCorpusEnsembleIdentity(t *testing.T) {
	corpus, err := fuzz.LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range corpus {
		r := r
		t.Run(filepath.Base(r.Path), func(t *testing.T) {
			p, err := r.Program()
			if err != nil {
				t.Fatal(err)
			}
			ens := deps.Ensemble{Range: true, MustWriteFirst: true}
			if ir.CheckExecutable(p) == nil {
				prof, err := engine.CollectProfile(p, engine.DefaultConfig())
				if err != nil {
					t.Fatalf("collecting replay profile: %v", err)
				}
				ens.Profile = prof
			}
			base := idem.LabelProgram(p)
			got := idem.LabelProgramEnsemble(p, ens)
			for _, reg := range p.Regions {
				b, g := base[reg], got[reg]
				for _, ref := range reg.Refs {
					if g.Label(ref) != b.Label(ref) {
						t.Errorf("%s %v: ensemble label %v != plain label %v",
							reg.Name, ref, g.Label(ref), b.Label(ref))
					}
					pr := g.Prob(ref)
					if pr < 0 || pr > 1 {
						t.Errorf("%s %v: P(idempotent) = %v out of range", reg.Name, ref, pr)
					}
					if (pr == 1) != (g.Label(ref) == idem.Idempotent) {
						t.Errorf("%s %v: P == 1 must hold exactly for proved-idempotent refs (P=%v, label %v)",
							reg.Name, ref, pr, g.Label(ref))
					}
				}
			}
		})
	}
}
