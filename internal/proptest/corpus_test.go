package proptest

// Corpus replay: every file under testdata/corpus is re-run through the
// fuzzer's full differential oracle wall. The directory holds the seed
// corpus (hand-minimized feature-covering programs) plus any minimized
// reproducer the fuzzing driver ever wrote there (cmd/fuzz -corpus
// internal/proptest/testdata/corpus), so every past failure stays a
// permanent regression test.

import (
	"path/filepath"
	"testing"

	"refidem/internal/fuzz"
)

func TestCorpusReplay(t *testing.T) {
	corpus, err := fuzz.LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("testdata/corpus is empty — the seed corpus should be checked in")
	}
	for _, r := range corpus {
		r := r
		t.Run(filepath.Base(r.Path), func(t *testing.T) {
			p, err := r.Program()
			if err != nil {
				t.Fatal(err)
			}
			if v := fuzz.CheckProgram(p, fuzz.OracleOptions{}); v != nil {
				t.Fatalf("corpus program fails the oracle wall: %v\n(metadata: seed=%d profile=%s kind=%s detail=%s)",
					v, r.Seed, r.Profile, r.Kind, r.Detail)
			}
		})
	}
}
