package proptest

import (
	"testing"

	"refidem/internal/cfg"
	"refidem/internal/dataflow"
	"refidem/internal/engine"
	"refidem/internal/gen"
	"refidem/internal/idem"
	"refidem/internal/ir"
)

const seeds = 150

func genValid(t *testing.T, seed int64) *ir.Program {
	t.Helper()
	p := gen.Generate(seed, gen.Default()).Program
	if err := p.Validate(); err != nil {
		t.Fatalf("seed %d: generated program invalid: %v", seed, err)
	}
	return p
}

// TestGeneratedProgramsValidate is the generator's own sanity property.
func TestGeneratedProgramsValidate(t *testing.T) {
	for seed := int64(0); seed < seeds*2; seed++ {
		genValid(t, seed)
	}
}

// TestLemma1HOSEMatchesSequential: for random programs, hardware-only
// speculative execution produces the sequential memory state (live-out
// variables), per Lemma 1.
func TestLemma1HOSEMatchesSequential(t *testing.T) {
	cfg := engine.DefaultConfig()
	for seed := int64(0); seed < seeds; seed++ {
		p := genValid(t, seed)
		labs := idem.LabelProgram(p)
		seq, err := engine.RunSequential(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		hose, err := engine.RunSpeculative(p, labs, cfg, engine.HOSE)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := engine.LiveOutMismatch(p, labs, seq, hose); err != nil {
			t.Errorf("seed %d: Lemma 1 violated: %v\n%s", seed, err, p.Format())
		}
	}
}

// TestLemma2CASEMatchesSequential: with Algorithm 2 labels, compiler-
// assisted speculative execution also produces the sequential state, per
// Lemma 2 — even though idempotent references bypass all dependence
// tracking and may write temporarily incorrect values.
func TestLemma2CASEMatchesSequential(t *testing.T) {
	cfg := engine.DefaultConfig()
	for seed := int64(0); seed < seeds; seed++ {
		p := genValid(t, seed)
		labs := idem.LabelProgram(p)
		seq, err := engine.RunSequential(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		caseR, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := engine.LiveOutMismatch(p, labs, seq, caseR); err != nil {
			t.Errorf("seed %d: Lemma 2 violated: %v\n%s", seed, err, p.Format())
		}
	}
}

// TestLemma2UnderPressure re-runs the CASE-vs-sequential property with a
// tiny speculative storage and a single-entry commit cost, exercising the
// overflow/stall/bypass paths hard.
func TestLemma2UnderPressure(t *testing.T) {
	cfg := engine.PressureConfig()
	for seed := int64(0); seed < seeds; seed++ {
		p := genValid(t, seed)
		labs := idem.LabelProgram(p)
		seq, err := engine.RunSequential(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, mode := range []engine.Mode{engine.HOSE, engine.CASE} {
			res, err := engine.RunSpeculative(p, labs, cfg, mode)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, mode, err)
			}
			if err := engine.LiveOutMismatch(p, labs, seq, res); err != nil {
				t.Errorf("seed %d %v: %v\n%s", seed, mode, err, p.Format())
			}
		}
	}
}

// TestLabelsSatisfyTheorems: Algorithm 2's output always agrees with the
// independent Theorem 1/2 oracle.
func TestLabelsSatisfyTheorems(t *testing.T) {
	for seed := int64(0); seed < seeds*2; seed++ {
		p := genValid(t, seed)
		for _, res := range idem.LabelProgram(p) {
			if errs := res.CheckTheorems(); len(errs) > 0 {
				t.Errorf("seed %d: %v\n%s", seed, errs, p.Format())
			}
		}
	}
}

// TestCASEOccupancyBound: removing idempotent references from speculative
// storage can only shrink peak occupancy. The bound is over the retired
// reference stream, so it is only asserted on squash-free runs: a
// misspeculated segment executes on stale values, and a doomed CASE
// execution can transiently buffer more than its HOSE counterpart before
// the squash lands (the fuzzer's occupancy-*.prog corpus entry is the
// minimized counterexample).
func TestCASEOccupancyBound(t *testing.T) {
	cfg := engine.DefaultConfig()
	checked := 0
	for seed := int64(0); seed < seeds; seed++ {
		p := genValid(t, seed)
		labs := idem.LabelProgram(p)
		hose, err := engine.RunSpeculative(p, labs, cfg, engine.HOSE)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		caseR, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if hose.Stats.SquashedSegments > 0 || caseR.Stats.SquashedSegments > 0 {
			continue
		}
		checked++
		if caseR.Stats.PeakSpecOccupancy > hose.Stats.PeakSpecOccupancy {
			t.Errorf("seed %d: CASE peak %d > HOSE peak %d", seed,
				caseR.Stats.PeakSpecOccupancy, hose.Stats.PeakSpecOccupancy)
		}
	}
	if checked == 0 {
		t.Fatal("no squash-free seeds — the bound was never exercised")
	}
}

// TestRFWPathOracle re-validates Algorithm 1 on random CFG regions with an
// independent implementation: a write to x in segment s is a re-occurring
// first write only if, from every node that reaches s (a potential
// rollback origin), every path to the region exit encounters a
// must-write of x before any exposed read (with the exit counting as a
// read when x is live-out).
func TestRFWPathOracle(t *testing.T) {
	prof, err := gen.ProfileByName("cfg")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < seeds*2; seed++ {
		p := gen.FromProfile(prof, seed).Program
		r := p.Regions[0]
		if r.Kind != ir.CFGRegion {
			t.Fatalf("seed %d: cfg profile produced a %v region", seed, r.Kind)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := cfg.FromRegion(r)
		lab := idem.LabelRegion(p, r, nil)
		for _, ref := range r.Refs {
			if ref.Access != ir.Write || !lab.RFW.IsRFW(ref) {
				continue
			}
			if !pathOracleRFW(r, g, lab.Info, ref) {
				t.Errorf("seed %d: %v declared RFW but the path oracle disagrees\n%s",
					seed, ref, p.Format())
			}
		}
	}
}

// pathOracleRFW checks the Definition 5 path condition by explicit
// enumeration.
func pathOracleRFW(r *ir.Region, g *cfg.Graph, info *dataflow.RegionInfo, w *ir.Ref) bool {
	if !ir.AddrCertain(w) {
		return false
	}
	attr := func(seg int) dataflow.Attr {
		if seg == cfg.Exit {
			if info.LiveOut(w.Var) {
				return dataflow.ReadAttr
			}
			return dataflow.NullAttr
		}
		return info.Attrs(seg, w.Var)
	}
	for _, u := range g.Nodes {
		if u == w.SegID || !g.Reaches(u, w.SegID) {
			continue
		}
		// Every path from u's end to the exit must hit a must-write
		// before an exposed read.
		for _, path := range g.Paths(u, 4096) {
			// path starts at u; skip u itself (rollback lands at its
			// end).
			bad := false
			decided := false
			for _, node := range path[1:] {
				switch attr(node) {
				case dataflow.WriteAttr:
					decided = true
				case dataflow.ReadAttr:
					bad = true
					decided = true
				}
				if decided {
					break
				}
			}
			if !decided && info.LiveOut(w.Var) {
				bad = true // falls off the exit with x live and unwritten
			}
			if bad {
				return false
			}
		}
	}
	return true
}

// TestDeterministicEngine: identical runs give identical cycle counts and
// stats.
func TestDeterministicEngine(t *testing.T) {
	cfg := engine.DefaultConfig()
	for seed := int64(0); seed < 40; seed++ {
		p := genValid(t, seed)
		labs := idem.LabelProgram(p)
		a, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Cycles != b.Cycles || a.Stats != b.Stats {
			t.Errorf("seed %d: nondeterminism", seed)
		}
	}
}

// TestFractionConsistency: the dynamic idempotent fraction equals the sum
// of the per-category counts.
func TestFractionConsistency(t *testing.T) {
	cfg := engine.DefaultConfig()
	for seed := int64(0); seed < seeds; seed++ {
		p := genValid(t, seed)
		labs := idem.LabelProgram(p)
		res, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var catSum int64
		for c, n := range res.Stats.RefsByCategory {
			if idem.Category(c) != idem.CatSpeculative {
				catSum += n
			}
		}
		if catSum != res.Stats.IdemRefs {
			t.Errorf("seed %d: category sum %d != idempotent refs %d", seed, catSum, res.Stats.IdemRefs)
		}
		if res.Stats.IdemRefs > res.Stats.DynRefs {
			t.Errorf("seed %d: idem %d > total %d", seed, res.Stats.IdemRefs, res.Stats.DynRefs)
		}
	}
}
