package proptest

// Trace oracles: on the restricted affine/straight-line program shape
// (gen.AffineLoop), the Definition 5 RFW condition and the
// labeling soundness can be checked against an exact enumeration of the
// region's execution trace.

import (
	"testing"

	"refidem/internal/engine"
	"refidem/internal/gen"
	"refidem/internal/idem"
	"refidem/internal/ir"
)

// traceEvent is one executed reference instance.
type traceEvent struct {
	ref   *ir.Ref
	addr  int64 // variable base (by identity) not needed: (var, idx) key below
	write bool
}

// key identifies a storage location: the variable plus the linear index.
type locKey struct {
	v   *ir.Var
	idx int64
}

// iterationTraces enumerates per-iteration reference traces for an
// affine straight-line loop region.
func iterationTraces(t *testing.T, r *ir.Region) [][]struct {
	loc   locKey
	write bool
	ref   *ir.Ref
} {
	t.Helper()
	type ev = struct {
		loc   locKey
		write bool
		ref   *ir.Ref
	}
	evalAffine := func(e ir.Expr, env map[string]int64) int64 {
		a, ok := ir.AffineOf(e)
		if !ok {
			t.Fatalf("non-affine subscript %s", e)
		}
		v := a.Const
		for name, c := range a.Coeff {
			v += c * env[name]
		}
		return v
	}
	var out [][]ev
	for _, idxVal := range r.IndexValues() {
		var trace []ev
		env := map[string]int64{r.Index: idxVal}
		var walk func(stmts []ir.Stmt)
		emit := func(ref *ir.Ref, write bool) {
			var idx int64
			if len(ref.Subs) > 0 {
				idx = evalAffine(ref.Subs[0], env)
			}
			trace = append(trace, ev{loc: locKey{v: ref.Var, idx: idx}, write: write, ref: ref})
		}
		walk = func(stmts []ir.Stmt) {
			for _, st := range stmts {
				switch s := st.(type) {
				case *ir.Assign:
					for _, ref := range ir.ExprRefs(s.RHS) {
						emit(ref, false)
					}
					emit(s.LHS, true)
				case *ir.For:
					trips := ir.LoopInfo{From: s.From, To: s.To, Step: s.Step}.Trips()
					for i := 0; i < trips; i++ {
						env[s.Index] = int64(s.From + i*s.Step)
						walk(s.Body)
					}
					delete(env, s.Index)
				default:
					t.Fatalf("oracle does not support %T", st)
				}
			}
		}
		walk(r.Segments[0].Body)
		out = append(out, trace)
	}
	return out
}

// TestRFWDefinition5Oracle: every write the analysis marks as a
// re-occurring first write must satisfy the Definition 5 path condition,
// checked by exhaustive trace enumeration: for every instance of the
// write and every possible rollback restart point, the first access to
// the written location in the re-executed suffix must be a write; if the
// location is never touched again it must be dead (not live-out).
func TestRFWDefinition5Oracle(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		p := gen.AffineLoop(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := p.Regions[0]
		lab := idem.LabelRegion(p, r, nil)
		traces := iterationTraces(t, r)
		n := len(traces)
		for _, w := range r.Refs {
			if w.Access != ir.Write || !lab.RFW.IsRFW(w) {
				continue
			}
			// Collect the write's dynamic instances: (iteration, loc).
			for i := 0; i < n; i++ {
				for _, e := range traces[i] {
					if e.ref != w {
						continue
					}
					// Rollback restart points: iteration 1..i (rollback to
					// the end of any ancestor of iteration i).
					for restart := 1; restart <= i; restart++ {
						verdict := scanSuffix(traces, restart, e.loc)
						switch verdict {
						case "read-first":
							t.Fatalf("seed %d: %v marked RFW, but restarting at iteration %d reads %v[%d] before rewriting it\n%s",
								seed, w, restart, e.loc.v.Name, e.loc.idx, p.Format())
						case "untouched":
							if lab.Info.LiveOut(e.loc.v) {
								t.Fatalf("seed %d: %v marked RFW, but restarting at iteration %d never rewrites live-out %v[%d]\n%s",
									seed, w, restart, e.loc.v.Name, e.loc.idx, p.Format())
							}
						}
					}
				}
			}
		}
	}
}

// scanSuffix reports what happens first to loc when iterations
// restart..N-1 re-execute: "write-first", "read-first" or "untouched".
func scanSuffix(traces [][]struct {
	loc   locKey
	write bool
	ref   *ir.Ref
}, restart int, loc locKey) string {
	for i := restart; i < len(traces); i++ {
		for _, e := range traces[i] {
			if e.loc == loc {
				if e.write {
					return "write-first"
				}
				return "read-first"
			}
		}
	}
	return "untouched"
}

// TestAffineOracleProgramsExecuteCorrectly pushes the oracle corpus
// through both engines as an extra end-to-end check.
func TestAffineOracleProgramsExecuteCorrectly(t *testing.T) {
	cfg := engine.DefaultConfig()
	for seed := int64(0); seed < 100; seed++ {
		p := gen.AffineLoop(seed)
		labs := idem.LabelProgram(p)
		seq, err := engine.RunSequential(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, mode := range []engine.Mode{engine.HOSE, engine.CASE} {
			res, err := engine.RunSpeculative(p, labs, cfg, mode)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, mode, err)
			}
			if err := engine.LiveOutMismatch(p, labs, seq, res); err != nil {
				t.Errorf("seed %d %v: %v\n%s", seed, mode, err, p.Format())
			}
		}
	}
}

// TestMultiRegionPrograms: the lemmas hold across multi-region programs,
// where memory carries between regions and live-out sets come from the
// inter-region liveness pass.
func TestMultiRegionPrograms(t *testing.T) {
	gc := gen.Default()
	gc.Regions = 3
	cfg := engine.DefaultConfig()
	for seed := int64(0); seed < 100; seed++ {
		p := gen.Generate(seed, gc).Program
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(p.Regions) != 3 {
			t.Fatalf("seed %d: %d regions", seed, len(p.Regions))
		}
		labs := idem.LabelProgram(p)
		for _, res := range labs {
			if errs := res.CheckTheorems(); len(errs) > 0 {
				t.Fatalf("seed %d: %v", seed, errs)
			}
		}
		seq, err := engine.RunSequential(p, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, mode := range []engine.Mode{engine.HOSE, engine.CASE} {
			res, err := engine.RunSpeculative(p, labs, cfg, mode)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, mode, err)
			}
			if err := engine.LiveOutMismatch(p, labs, seq, res); err != nil {
				t.Errorf("seed %d %v: %v\n%s", seed, mode, err, p.Format())
			}
		}
	}
}

// TestBlockedProgramsStayCorrect: re-blocking segments (the granularity
// transform) preserves program semantics under all three models.
func TestBlockedProgramsStayCorrect(t *testing.T) {
	cfg := engine.DefaultConfig()
	for seed := int64(0); seed < 60; seed++ {
		p := gen.AffineLoop(seed)
		n := p.Regions[0].InstanceCount()
		for _, block := range []int{1, 2, 3} {
			if n%block != 0 {
				continue
			}
			bp, err := ir.BlockProgram(p, block)
			if err != nil {
				t.Fatalf("seed %d block %d: %v", seed, block, err)
			}
			if err := bp.Validate(); err != nil {
				t.Fatalf("seed %d block %d: %v", seed, block, err)
			}
			labs := idem.LabelProgram(bp)
			seq, err := engine.RunSequential(bp, cfg)
			if err != nil {
				t.Fatalf("seed %d block %d: %v", seed, block, err)
			}
			// The blocked program must compute the same live-out values
			// as the original sequential program.
			origSeq, err := engine.RunSequential(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			origLabs := idem.LabelProgram(p)
			if err := engine.LiveOutMismatch(p, origLabs, origSeq, seq); err != nil {
				t.Errorf("seed %d block %d: blocking changed semantics: %v", seed, block, err)
			}
			for _, mode := range []engine.Mode{engine.HOSE, engine.CASE} {
				res, err := engine.RunSpeculative(bp, labs, cfg, mode)
				if err != nil {
					t.Fatalf("seed %d block %d %v: %v", seed, block, mode, err)
				}
				if err := engine.LiveOutMismatch(bp, labs, seq, res); err != nil {
					t.Errorf("seed %d block %d %v: %v", seed, block, mode, err)
				}
			}
		}
	}
}
