// Package proptest holds the cross-cutting property-based tests:
// hundreds of seeded random programs are pushed through the full pipeline
// and both execution engines, validating the paper's lemmas end to end.
// All program generation goes through internal/gen — the same subsystem
// the differential fuzzer (cmd/fuzz) drives at scale.
//
// The package has no non-test API; this file exists so the package
// documents itself like every other package in the tree (and so
// scripts/doc_lint.sh can hold it to the same rule).
package proptest
