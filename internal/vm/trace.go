package vm

// Trace-guided superblocks: the VM's second execution tier.
//
// The interpreter (vm.go) pauses at every memory reference so the engine
// can resolve it speculatively. That protocol is what makes speculation
// simulatable, but it also makes every loop iteration pay the full
// event-dispatch cost even when the engine's labeling already proved most
// references idempotent. This file adds the machinery to buy that cost
// back:
//
//   - A Recorder counts backedge executions (loop-tail jumps) and, once a
//     backedge turns hot, captures a window of dynamically executed
//     instruction addresses.
//   - The hottest inter-backedge path in the window — one full iteration
//     of the hot loop, from the loop-header test back around to itself —
//     is compiled by CompileTrace into a straight-line Superblock:
//     branches become guards that bail back to the interpreter, and
//     memory references carry a Direct bit when the caller's idempotency
//     predicate proves they may bypass speculative buffering entirely.
//   - Machine.StepTraced interprets as usual but yields EvTraceEntry
//     whenever the program counter reaches the superblock entry, so the
//     caller (the engine's trace executor) can run compiled iterations
//     without per-instruction dispatch. Machine.StepRecorded interprets
//     while feeding the Recorder.
//
// The central invariant making bailouts trivial: a trace executes its
// instructions in the exact original order, with every guard placed at
// its original branch position and every register effect (including the
// shadow constant registers of fused superinstructions) replicated
// exactly. Machine state at any trace point therefore equals interpreter
// state at the corresponding original program counter — so any exit, be
// it a failed guard or a speculative-storage overflow, only has to set
// Machine.PC to the right original address and resume interpretation. No
// checkpointing, no undo log, no re-execution of committed work.

import (
	"refidem/internal/ir"
)

// TraceConfig tunes hot-trace detection and superblock size.
type TraceConfig struct {
	// HotThreshold is how many times a backedge must execute before the
	// recorder starts capturing (the counter-triggered part of "record N
	// dynamic instructions per hot loop").
	HotThreshold int
	// RecordWindow is the number of dynamic instructions captured once a
	// backedge is hot; the hottest inter-backedge path inside the window
	// becomes the trace.
	RecordWindow int
	// MaxTraceLen bounds the compiled superblock length; longer candidate
	// paths are rejected rather than truncated (a truncated trace could
	// not end on a backedge).
	MaxTraceLen int
}

// DefaultTraceConfig returns the tuning used by the engines: hot after 4
// backedges, a 2048-instruction window (roughly 30 iterations of a
// TOMCATV-sized loop body), superblocks up to 192 trace instructions.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{HotThreshold: 4, RecordWindow: 2048, MaxTraceLen: 192}
}

// TOp is a trace-instruction opcode. Trace ops mirror the interpreter ops
// they were compiled from but carry their control decision (taken or not)
// baked in; the ops that could go the other way become guards.
type TOp uint8

const (
	// TConst: Regs[Dst] = Val.
	TConst TOp = iota
	// TBin: Regs[Dst] = BinOp(Regs[A], Regs[B]).
	TBin
	// TImmR: Regs[SubR] = Val; Regs[Dst] = BinOp(Regs[A], Val) — the
	// trace form of OpFusedImmR, shadow register write included.
	TImmR
	// TImmL: Regs[SubR] = Val; Regs[Dst] = BinOp(Val, Regs[B]).
	TImmL
	// TGuardZ guards an OpJz: the trace recorded one direction; if
	// Regs[A]'s zeroness disagrees with ExpectZero the trace bails to
	// Bail (the other branch target).
	TGuardZ
	// TGuardTest guards an OpFusedTest (loop-header bound check): the
	// shadow write, comparison and condition-register write always
	// execute (matching the interpreter on both paths); a direction
	// mismatch bails to Bail.
	TGuardTest
	// TLoad is a memory read. Direct loads read non-speculative storage
	// inline; guarded loads go through the caller's speculative protocol
	// and may bail to OrigPC on overflow.
	TLoad
	// TStore is a memory write, with the same Direct/guarded split.
	TStore
	// TStepInner is an unconditional loop step executed mid-trace (the
	// backedge of a loop nested inside the traced one, or of an enclosing
	// loop): shadow write plus index increment, no control transfer.
	TStepInner
	// TStep ends the trace iteration via the hot backedge itself: shadow
	// write, index increment, and control returns to Entry.
	TStep
	// TEnd ends the trace iteration via an unfused backward jump (no
	// index arithmetic of its own).
	TEnd
)

// TInstr is one superblock instruction. Cost is the number of original
// interpreter ops this instruction accounts for (fused ops count as their
// shadowed triple, and folded-away unconditional jumps are added to the
// following instruction), so traced cycle accounting can reproduce the
// interpreter's exactly.
type TInstr struct {
	Op         TOp
	Dst        int32
	A          int32
	B          int32
	SubR       int32 // shadow constant register of fused-derived ops
	RefID      int32 // dense ir.Ref ID for memory ops
	Bail       int32 // original pc a failed guard resumes at
	OrigPC     int32 // original pc of a memory op (overflow bail target)
	Cost       int32
	ExpectZero bool // recorded direction of a guard
	Direct     bool // idempotent memory op: bypass speculation, no bail
	BinOp      ir.BinOp
	Val        int64
	Ref        *ir.Ref
	Subs       []int32 // subscript registers of memory ops
}

// Superblock is one compiled trace: a straight-line guarded instruction
// sequence covering a single iteration of a hot loop, entered when the
// interpreter reaches Entry and left either around the backedge (back to
// Entry) or through a bailout to the interpreter.
type Superblock struct {
	// Entry is the original pc of the trace head — the hot backedge's
	// target, which for compiled loops is the fused header test.
	Entry int
	// Instrs is the trace body; the final instruction is always TStep or
	// TEnd.
	Instrs []TInstr
	// Guards counts the instructions that can bail: branch guards plus
	// non-Direct memory operations. Elided counts the memory operations
	// the idempotency predicate proved Direct — the label-bought savings
	// the ablation measures.
	Guards int
	Elided int
}

// Recorder watches an interpreting machine (via Machine.StepRecorded),
// detects hot backedges, and captures the dynamic instruction window the
// trace is picked from. One Recorder serves one machine at a time; Reset
// re-arms it for new code.
type Recorder struct {
	cfg    TraceConfig
	code   *Code
	counts []uint32
	window []int32
	entry  int
	active bool
	full   bool
}

// NewRecorder returns a recorder with the given tuning.
func NewRecorder(cfg TraceConfig) *Recorder {
	if cfg.HotThreshold <= 0 {
		cfg.HotThreshold = 1
	}
	return &Recorder{cfg: cfg}
}

// Reset points the recorder at (new) code and clears all captured state.
func (r *Recorder) Reset(code *Code) {
	r.code = code
	if cap(r.counts) < len(code.Instrs) {
		r.counts = make([]uint32, len(code.Instrs))
	}
	r.counts = r.counts[:len(code.Instrs)]
	for i := range r.counts {
		r.counts[i] = 0
	}
	r.window = r.window[:0]
	r.entry = 0
	r.active = false
	r.full = false
}

// Full reports whether the capture window is complete; the caller should
// stop recording and Build.
func (r *Recorder) Full() bool { return r.full }

// Hot reports whether a hot backedge has been found (recording started).
func (r *Recorder) Hot() bool { return r.active }

// note observes one executed instruction address. Before a backedge turns
// hot it only counts; afterwards it captures the window.
func (r *Recorder) note(pc int) {
	if r.active {
		if len(r.window) < r.cfg.RecordWindow {
			r.window = append(r.window, int32(pc))
			if len(r.window) == r.cfg.RecordWindow {
				r.full = true
			}
		}
		return
	}
	in := &r.code.Instrs[pc]
	var target int
	switch {
	case in.Op == OpFusedStep:
		target = in.A
	case in.Op == OpJump && in.A <= pc:
		target = in.A
	default:
		return
	}
	r.counts[pc]++
	if int(r.counts[pc]) >= r.cfg.HotThreshold {
		// The backedge just executed; the next observed pc is target, so
		// the window starts exactly at an iteration boundary.
		r.active = true
		r.entry = target
		r.window = r.window[:0]
	}
}

// Build splits the captured window into inter-backedge paths (delimited
// by visits to the hot entry), picks the most frequent one, and compiles
// it. direct reports whether a memory reference may bypass speculative
// buffering (labeled idempotent); nil means no reference may. Build
// returns nil when no trace was captured or the hottest path is not
// compilable (too long, or containing region-exit or halt instructions).
func (r *Recorder) Build(direct func(*ir.Ref) bool) *Superblock {
	if !r.active || len(r.window) == 0 {
		return nil
	}
	// Chunk boundaries: every occurrence of entry starts an iteration.
	type cand struct {
		start, n int
		count    int
	}
	var cands []cand
	byKey := make(map[string]int)
	var keyBuf []byte
	start := -1
	for i, pc := range r.window {
		if int(pc) != r.entry {
			continue
		}
		if start >= 0 {
			chunk := r.window[start:i]
			keyBuf = keyBuf[:0]
			for _, p := range chunk {
				keyBuf = append(keyBuf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
			}
			if ci, ok := byKey[string(keyBuf)]; ok {
				cands[ci].count++
			} else {
				byKey[string(keyBuf)] = len(cands)
				cands = append(cands, cand{start: start, n: i - start, count: 1})
			}
		}
		start = i
	}
	best := -1
	for i := range cands {
		if best < 0 || cands[i].count > cands[best].count {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	path := r.window[cands[best].start : cands[best].start+cands[best].n]
	return CompileTrace(r.code, path, r.entry, r.cfg.MaxTraceLen, direct)
}

// CompileTrace compiles one recorded inter-backedge path into a
// superblock. path lists the original pcs executed during one iteration,
// starting at entry and ending with the backedge that returns to entry.
// It returns nil when the path is not a valid self-contained loop
// iteration (wrong shape, too long, or containing exit/halt/branch
// instructions, which never belong to an iteration body).
func CompileTrace(code *Code, path []int32, entry, maxLen int, direct func(*ir.Ref) bool) *Superblock {
	if entry <= 0 || len(path) < 2 || (maxLen > 0 && len(path) > maxLen) {
		return nil
	}
	if int(path[0]) != entry {
		return nil
	}
	sb := &Superblock{Entry: entry}
	pend := int32(0) // cost of folded unconditional jumps, charged to the next emitted op
	emit := func(t TInstr) {
		t.Cost += pend
		pend = 0
		sb.Instrs = append(sb.Instrs, t)
	}
	for i := 0; i < len(path); i++ {
		pc := int(path[i])
		if pc < 0 || pc >= len(code.Instrs) {
			return nil
		}
		in := &code.Instrs[pc]
		last := i == len(path)-1
		next := entry
		if !last {
			next = int(path[i+1])
		}
		// straight reports the recorded successor matches the only
		// possible one — a corrupt or truncated window fails compilation
		// instead of producing a wrong trace.
		straight := func(width int) bool { return last || next == pc+width }
		switch in.Op {
		case OpConst:
			if !straight(1) {
				return nil
			}
			emit(TInstr{Op: TConst, Dst: int32(in.Dst), Val: in.Val, Cost: 1})
		case OpBin:
			if !straight(1) {
				return nil
			}
			emit(TInstr{Op: TBin, Dst: int32(in.Dst), A: int32(in.A), B: int32(in.B), BinOp: in.BinOp, Cost: 1})
		case OpFusedImmR:
			if !straight(2) {
				return nil
			}
			emit(TInstr{Op: TImmR, Dst: int32(in.Dst), A: int32(in.A), Val: in.Val, BinOp: in.BinOp, SubR: int32(in.Subs[0]), Cost: 2})
		case OpFusedImmL:
			if !straight(2) {
				return nil
			}
			emit(TInstr{Op: TImmL, Dst: int32(in.Dst), B: int32(in.B), Val: in.Val, BinOp: in.BinOp, SubR: int32(in.Subs[0]), Cost: 2})
		case OpJump:
			if last {
				// The iteration's closing backedge as a plain jump (an
				// unfused loop tail).
				if in.A != entry {
					return nil
				}
				emit(TInstr{Op: TEnd, Cost: 1})
			} else {
				if next != in.A {
					return nil
				}
				pend++ // unconditional: fold the cost, emit nothing
			}
		case OpJz:
			if last {
				return nil // a conditional can never close the iteration
			}
			expectZero := next == in.B
			bail := pc + 1
			if !expectZero {
				if next != pc+1 {
					return nil
				}
				bail = in.B
			}
			if bail == entry {
				return nil // a bail must leave the trace, not re-enter it
			}
			sb.Guards++
			emit(TInstr{Op: TGuardZ, A: int32(in.A), ExpectZero: expectZero, Bail: int32(bail), Cost: 1})
		case OpFusedTest:
			if last {
				return nil
			}
			expectZero := next == in.B
			bail := pc + 3
			if !expectZero {
				if next != pc+3 {
					return nil
				}
				bail = in.B
			}
			if bail == entry {
				return nil
			}
			sb.Guards++
			emit(TInstr{Op: TGuardTest, Dst: int32(in.Dst), A: int32(in.A), Val: in.Val, BinOp: in.BinOp,
				SubR: int32(in.Subs[0]), ExpectZero: expectZero, Bail: int32(bail), Cost: 3})
		case OpFusedStep:
			if last {
				if in.A != entry {
					return nil
				}
				emit(TInstr{Op: TStep, Dst: int32(in.Dst), Val: in.Val, SubR: int32(in.Subs[0]), Cost: 3})
			} else {
				// A different loop's step executing mid-trace: it always
				// jumps to its fixed target, so no guard is needed.
				if next != in.A {
					return nil
				}
				emit(TInstr{Op: TStepInner, Dst: int32(in.Dst), Val: in.Val, SubR: int32(in.Subs[0]), Cost: 3})
			}
		case OpLoad, OpStore:
			// Executors keep a small fixed subscript scratch; arrays are
			// at most a few dimensions, so 8 never binds in practice.
			if !straight(1) || len(in.Subs) > 8 {
				return nil
			}
			d := direct != nil && direct(in.Ref)
			subs := make([]int32, len(in.Subs))
			for k, s := range in.Subs {
				subs[k] = int32(s)
			}
			t := TInstr{Dst: int32(in.Dst), A: int32(in.A), Ref: in.Ref, RefID: int32(in.Ref.ID),
				Subs: subs, Direct: d, OrigPC: int32(pc), Cost: 1}
			if in.Op == OpLoad {
				t.Op = TLoad
			} else {
				t.Op = TStore
			}
			if d {
				sb.Elided++
			} else {
				sb.Guards++
			}
			emit(t)
		default:
			// OpExit, OpBranch, OpHalt: never part of a loop iteration
			// worth speculating on.
			return nil
		}
	}
	if n := len(sb.Instrs); n == 0 || (sb.Instrs[n-1].Op != TStep && sb.Instrs[n-1].Op != TEnd) {
		return nil
	}
	return sb
}

// StepTraced is StepInto with a trace entry check: when the program
// counter reaches entry the machine pauses with EvTraceEntry instead of
// interpreting further, leaving its state exactly as the interpreter
// would have it at entry. The caller then executes the superblock and
// either leaves PC at entry (iteration completed around the backedge) or
// sets it to a bailout address.
func (m *Machine) StepTraced(ev *Event, entry int) int {
	return m.stepObserve(ev, entry, nil)
}

// StepRecorded is StepInto feeding every executed instruction address to
// the recorder. It is used only while hunting for a trace, so its extra
// cost is off the steady-state path.
func (m *Machine) StepRecorded(ev *Event, rec *Recorder) int {
	return m.stepObserve(ev, -1, rec)
}

// stepObserve is the shared observed-interpretation loop behind
// StepTraced (entry >= 0, rec nil) and StepRecorded (entry -1, rec set).
// It mirrors StepInto exactly — the hot unobserved interpreter keeps its
// own loop — plus the entry check and the recorder hook.
func (m *Machine) stepObserve(ev *Event, entry int, rec *Recorder) int {
	if m.pendingLoad {
		panic("vm: Step with unresolved load")
	}
	ops := 0
	pc := m.PC
	instrs := m.Code.Instrs
	regs := m.Regs
	for {
		if m.done {
			m.PC = pc
			*ev = Event{Kind: EvDone}
			return ops
		}
		if pc >= len(instrs) {
			m.done = true
			m.PC = pc
			*ev = Event{Kind: EvDone}
			return ops
		}
		if pc == entry {
			m.PC = pc
			*ev = Event{Kind: EvTraceEntry}
			return ops
		}
		if rec != nil {
			rec.note(pc)
		}
		in := &instrs[pc]
		switch in.Op {
		case OpConst:
			regs[in.Dst] = in.Val
			pc++
			ops++
		case OpBin:
			a, b := regs[in.A], regs[in.B]
			var v int64
			switch in.BinOp {
			case ir.Add:
				v = a + b
			case ir.Sub:
				v = a - b
			case ir.Mul:
				v = a * b
			default:
				v = in.BinOp.Apply(a, b)
			}
			regs[in.Dst] = v
			pc++
			ops++
		case OpJump:
			pc = in.A
			ops++
		case OpJz:
			if regs[in.A] == 0 {
				pc = in.B
			} else {
				pc++
			}
			ops++
		case OpExit:
			m.ExitRequested = true
			pc++
			ops++
		case OpLoad:
			subs := m.scratchSubs(len(in.Subs))
			for i, r := range in.Subs {
				subs[i] = regs[r]
			}
			m.pendingLoad = true
			m.pendingDst = in.Dst
			m.PC = pc + 1
			*ev = Event{Kind: EvLoad, Ref: in.Ref, Subs: subs, dst: in.Dst}
			return ops + 1
		case OpStore:
			subs := m.scratchSubs(len(in.Subs))
			for i, r := range in.Subs {
				subs[i] = regs[r]
			}
			m.PC = pc + 1
			*ev = Event{Kind: EvStore, Ref: in.Ref, Subs: subs, Value: regs[in.A]}
			return ops + 1
		case OpBranch:
			m.BranchVal = regs[in.A]
			m.Branched = true
			m.done = true
			m.PC = pc
			*ev = Event{Kind: EvDone}
			return ops + 1
		case OpHalt:
			m.done = true
			m.PC = pc
			*ev = Event{Kind: EvDone}
			return ops + 1
		case OpFusedTest:
			regs[in.Subs[0]] = in.Val
			cond := in.BinOp.Apply(regs[in.A], in.Val)
			regs[in.Dst] = cond
			if cond == 0 {
				pc = in.B
			} else {
				pc += 3
			}
			ops += 3
		case OpFusedStep:
			regs[in.Subs[0]] = in.Val
			regs[in.Dst] += in.Val
			pc = in.A
			ops += 3
		case OpFusedImmR:
			regs[in.Subs[0]] = in.Val
			a := regs[in.A]
			var v int64
			switch in.BinOp {
			case ir.Add:
				v = a + in.Val
			case ir.Sub:
				v = a - in.Val
			case ir.Mul:
				v = a * in.Val
			default:
				v = in.BinOp.Apply(a, in.Val)
			}
			regs[in.Dst] = v
			pc += 2
			ops += 2
		case OpFusedImmL:
			regs[in.Subs[0]] = in.Val
			b := regs[in.B]
			var v int64
			switch in.BinOp {
			case ir.Add:
				v = in.Val + b
			case ir.Sub:
				v = in.Val - b
			case ir.Mul:
				v = in.Val * b
			default:
				v = in.BinOp.Apply(in.Val, b)
			}
			regs[in.Dst] = v
			pc += 2
			ops += 2
		default:
			panic("vm: unknown opcode in observed step")
		}
	}
}
