// Package vm compiles segment bodies to a small register bytecode and
// interprets them as resumable machines. The execution engines (package
// engine) step a machine until its next memory reference, resolve the
// reference against the speculative or non-speculative storage, and resume
// it — which is what makes true speculative execution (stale value
// propagation, rollback, re-execution) simulatable deterministically.
package vm

import (
	"fmt"

	"refidem/internal/ir"
)

// Op is a bytecode opcode.
type Op uint8

const (
	// OpConst loads an immediate into Dst.
	OpConst Op = iota
	// OpBin applies BinOp to registers A and B, result in Dst.
	OpBin
	// OpLoad issues a memory read through Ref; subscript values are in
	// the Subs registers. The machine pauses; the engine supplies the
	// loaded value, which lands in Dst.
	OpLoad
	// OpStore issues a memory write through Ref of register A's value.
	OpStore
	// OpJump jumps to instruction A.
	OpJump
	// OpJz jumps to instruction B when register A is zero.
	OpJz
	// OpExit requests region exit after this segment completes.
	OpExit
	// OpBranch records register A as the segment's branch value and
	// halts.
	OpBranch
	// OpHalt ends the segment.
	OpHalt
)

var opNames = [...]string{
	OpConst: "const", OpBin: "bin", OpLoad: "load", OpStore: "store",
	OpJump: "jump", OpJz: "jz", OpExit: "exit", OpBranch: "branch", OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", o)
}

// Instr is one bytecode instruction.
type Instr struct {
	Op    Op
	Dst   int
	A     int
	B     int
	Val   int64
	BinOp ir.BinOp
	Ref   *ir.Ref
	Subs  []int
}

// Code is a compiled segment body.
type Code struct {
	Instrs  []Instr
	NumRegs int
}

// RegionIndexReg is the register that holds the region loop index value;
// the engine initializes it per segment instance.
const RegionIndexReg = 0

// compiler carries compilation state.
type compiler struct {
	code    *Code
	nextReg int
	indexes map[string]int // loop index name -> register
}

// Compile translates a segment body (and optional branch expression) to
// bytecode. regionIndex names the loop region's index variable ("" for CFG
// regions).
func Compile(seg *ir.Segment, regionIndex string) *Code {
	c := &compiler{
		code:    &Code{},
		nextReg: 1, // register 0 is the region index
		indexes: map[string]int{},
	}
	if regionIndex != "" {
		c.indexes[regionIndex] = RegionIndexReg
	}
	c.stmts(seg.Body)
	if seg.Branch != nil {
		r := c.expr(seg.Branch)
		c.emit(Instr{Op: OpBranch, A: r})
	} else {
		c.emit(Instr{Op: OpHalt})
	}
	return c.code
}

func (c *compiler) emit(i Instr) int {
	c.code.Instrs = append(c.code.Instrs, i)
	return len(c.code.Instrs) - 1
}

func (c *compiler) reg() int {
	r := c.nextReg
	c.nextReg++
	if r+1 > c.code.NumRegs {
		c.code.NumRegs = r + 1
	}
	return r
}

func (c *compiler) stmts(stmts []ir.Stmt) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ir.Assign:
			val := c.expr(s.RHS)
			subs := make([]int, len(s.LHS.Subs))
			for i, sub := range s.LHS.Subs {
				subs[i] = c.expr(sub)
			}
			c.emit(Instr{Op: OpStore, A: val, Ref: s.LHS, Subs: subs})
		case *ir.If:
			cond := c.expr(s.Cond)
			jz := c.emit(Instr{Op: OpJz, A: cond})
			c.stmts(s.Then)
			if len(s.Else) > 0 {
				jmp := c.emit(Instr{Op: OpJump})
				c.code.Instrs[jz].B = len(c.code.Instrs)
				c.stmts(s.Else)
				c.code.Instrs[jmp].A = len(c.code.Instrs)
			} else {
				c.code.Instrs[jz].B = len(c.code.Instrs)
			}
		case *ir.For:
			idx := c.reg()
			prev, shadowed := c.indexes[s.Index]
			c.indexes[s.Index] = idx
			c.emit(Instr{Op: OpConst, Dst: idx, Val: int64(s.From)})
			loopTop := len(c.code.Instrs)
			// Continue while idx <= To (ascending) or idx >= To
			// (descending).
			bound := c.reg()
			c.emit(Instr{Op: OpConst, Dst: bound, Val: int64(s.To)})
			cond := c.reg()
			cmp := ir.Le
			if s.Step < 0 {
				cmp = ir.Ge
			}
			c.emit(Instr{Op: OpBin, Dst: cond, A: idx, B: bound, BinOp: cmp})
			jz := c.emit(Instr{Op: OpJz, A: cond})
			c.stmts(s.Body)
			step := c.reg()
			c.emit(Instr{Op: OpConst, Dst: step, Val: int64(s.Step)})
			c.emit(Instr{Op: OpBin, Dst: idx, A: idx, B: step, BinOp: ir.Add})
			c.emit(Instr{Op: OpJump, A: loopTop})
			c.code.Instrs[jz].B = len(c.code.Instrs)
			if shadowed {
				c.indexes[s.Index] = prev
			} else {
				delete(c.indexes, s.Index)
			}
		case *ir.ExitRegion:
			cond := c.expr(s.Cond)
			jz := c.emit(Instr{Op: OpJz, A: cond})
			c.emit(Instr{Op: OpExit})
			c.code.Instrs[jz].B = len(c.code.Instrs)
		default:
			panic(fmt.Sprintf("vm: unknown statement %T", st))
		}
	}
}

func (c *compiler) expr(e ir.Expr) int {
	switch x := e.(type) {
	case *ir.Const:
		r := c.reg()
		c.emit(Instr{Op: OpConst, Dst: r, Val: x.Val})
		return r
	case *ir.Index:
		r, ok := c.indexes[x.Name]
		if !ok {
			panic(fmt.Sprintf("vm: unknown index %q", x.Name))
		}
		return r
	case *ir.Load:
		subs := make([]int, len(x.Ref.Subs))
		for i, sub := range x.Ref.Subs {
			subs[i] = c.expr(sub)
		}
		r := c.reg()
		c.emit(Instr{Op: OpLoad, Dst: r, Ref: x.Ref, Subs: subs})
		return r
	case *ir.Bin:
		l := c.expr(x.L)
		rr := c.expr(x.R)
		r := c.reg()
		c.emit(Instr{Op: OpBin, Dst: r, A: l, B: rr, BinOp: x.Op})
		return r
	}
	panic(fmt.Sprintf("vm: unknown expression %T", e))
}

// EventKind classifies what a machine paused for.
type EventKind uint8

const (
	// EvLoad: the machine needs a value for Ref at Subs; resume with
	// ResumeLoad.
	EvLoad EventKind = iota
	// EvStore: the machine wrote Value through Ref at Subs; no resume
	// data needed.
	EvStore
	// EvDone: the segment finished.
	EvDone
)

// Event is what Machine.Step returns when it pauses.
type Event struct {
	Kind  EventKind
	Ref   *ir.Ref
	Subs  []int64
	Value int64
	dst   int
}

// Machine is a resumable interpreter over compiled code.
type Machine struct {
	Code *Code
	PC   int
	Regs []int64
	// ExitRequested is set when an OpExit executed.
	ExitRequested bool
	// BranchVal holds the OpBranch value; Branched reports one executed.
	BranchVal int64
	Branched  bool
	done      bool

	pendingLoad bool
	pendingDst  int
}

// NewMachine creates a machine for the code with the region index value.
func NewMachine(code *Code, indexVal int64) *Machine {
	m := &Machine{Code: code, Regs: make([]int64, maxInt(code.NumRegs, 1))}
	m.Regs[RegionIndexReg] = indexVal
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Reset rewinds the machine to its initial state (used on rollback),
// preserving the region index value.
func (m *Machine) Reset() {
	idx := m.Regs[RegionIndexReg]
	for i := range m.Regs {
		m.Regs[i] = 0
	}
	m.Regs[RegionIndexReg] = idx
	m.PC = 0
	m.ExitRequested = false
	m.BranchVal = 0
	m.Branched = false
	m.done = false
	m.pendingLoad = false
}

// Done reports whether the machine has halted.
func (m *Machine) Done() bool { return m.done }

// ResumeLoad supplies the value for the pending load.
func (m *Machine) ResumeLoad(val int64) {
	if !m.pendingLoad {
		panic("vm: ResumeLoad without pending load")
	}
	m.Regs[m.pendingDst] = val
	m.pendingLoad = false
}

// Step runs instructions until the next memory event or completion. It
// returns the event and the number of non-memory instructions executed
// (for cycle accounting). Calling Step with an unresolved load panics.
func (m *Machine) Step() (Event, int) {
	if m.pendingLoad {
		panic("vm: Step with unresolved load")
	}
	ops := 0
	for {
		if m.done {
			return Event{Kind: EvDone}, ops
		}
		if m.PC >= len(m.Code.Instrs) {
			m.done = true
			return Event{Kind: EvDone}, ops
		}
		in := &m.Code.Instrs[m.PC]
		switch in.Op {
		case OpConst:
			m.Regs[in.Dst] = in.Val
			m.PC++
			ops++
		case OpBin:
			m.Regs[in.Dst] = in.BinOp.Apply(m.Regs[in.A], m.Regs[in.B])
			m.PC++
			ops++
		case OpJump:
			m.PC = in.A
			ops++
		case OpJz:
			if m.Regs[in.A] == 0 {
				m.PC = in.B
			} else {
				m.PC++
			}
			ops++
		case OpExit:
			m.ExitRequested = true
			m.PC++
			ops++
		case OpLoad:
			subs := make([]int64, len(in.Subs))
			for i, r := range in.Subs {
				subs[i] = m.Regs[r]
			}
			m.pendingLoad = true
			m.pendingDst = in.Dst
			m.PC++
			return Event{Kind: EvLoad, Ref: in.Ref, Subs: subs, dst: in.Dst}, ops + 1
		case OpStore:
			subs := make([]int64, len(in.Subs))
			for i, r := range in.Subs {
				subs[i] = m.Regs[r]
			}
			m.PC++
			return Event{Kind: EvStore, Ref: in.Ref, Subs: subs, Value: m.Regs[in.A]}, ops + 1
		case OpBranch:
			m.BranchVal = m.Regs[in.A]
			m.Branched = true
			m.done = true
			return Event{Kind: EvDone}, ops + 1
		case OpHalt:
			m.done = true
			return Event{Kind: EvDone}, ops + 1
		default:
			panic(fmt.Sprintf("vm: unknown opcode %v", in.Op))
		}
	}
}
