// Package vm compiles segment bodies to a small register bytecode and
// interprets them as resumable machines. The execution engines (package
// engine) step a machine until its next memory reference, resolve the
// reference against the speculative or non-speculative storage, and resume
// it — which is what makes true speculative execution (stale value
// propagation, rollback, re-execution) simulatable deterministically.
package vm

import (
	"fmt"

	"refidem/internal/ir"
)

// Op is a bytecode opcode.
type Op uint8

const (
	// OpConst loads an immediate into Dst.
	OpConst Op = iota
	// OpBin applies BinOp to registers A and B, result in Dst.
	OpBin
	// OpLoad issues a memory read through Ref; subscript values are in
	// the Subs registers. The machine pauses; the engine supplies the
	// loaded value, which lands in Dst.
	OpLoad
	// OpStore issues a memory write through Ref of register A's value.
	OpStore
	// OpJump jumps to instruction A.
	OpJump
	// OpJz jumps to instruction B when register A is zero.
	OpJz
	// OpExit requests region exit after this segment completes.
	OpExit
	// OpBranch records register A as the segment's branch value and
	// halts.
	OpBranch
	// OpHalt ends the segment.
	OpHalt
	// OpFusedTest is the peephole fusion of the Const/Bin/Jz triple the
	// compiler emits for loop headers and comparisons against constants:
	// Regs[Subs[0]] = Val; Regs[Dst] = BinOp(Regs[A], Val); jump to B when
	// zero, else skip the two shadowed instructions. Counts as 3 ops.
	OpFusedTest
	// OpFusedStep is the fusion of the Const/Bin(Add)/Jump loop-tail
	// triple: Regs[Subs[0]] = Val; Regs[Dst] += Val; jump to A. Counts as
	// 3 ops.
	OpFusedStep
	// OpFusedImmR fuses Const/Bin with the constant as right operand:
	// Regs[Subs[0]] = Val; Regs[Dst] = BinOp(Regs[A], Val). Counts as 2
	// ops and skips the shadowed Bin.
	OpFusedImmR
	// OpFusedImmL is the left-operand variant:
	// Regs[Subs[0]] = Val; Regs[Dst] = BinOp(Val, Regs[B]).
	OpFusedImmL
)

var opNames = [...]string{
	OpConst: "const", OpBin: "bin", OpLoad: "load", OpStore: "store",
	OpJump: "jump", OpJz: "jz", OpExit: "exit", OpBranch: "branch", OpHalt: "halt",
	OpFusedTest: "fused-test", OpFusedStep: "fused-step",
	OpFusedImmR: "fused-imm-r", OpFusedImmL: "fused-imm-l",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", o)
}

// Instr is one bytecode instruction.
type Instr struct {
	Op    Op
	Dst   int
	A     int
	B     int
	Val   int64
	BinOp ir.BinOp
	Ref   *ir.Ref
	Subs  []int
}

// Code is a compiled segment body.
type Code struct {
	Instrs  []Instr
	NumRegs int
}

// RegionIndexReg is the register that holds the region loop index value;
// the engine initializes it per segment instance.
const RegionIndexReg = 0

// compiler carries compilation state.
type compiler struct {
	code    *Code
	nextReg int
	indexes map[string]int // loop index name -> register
}

// Compile translates a segment body (and optional branch expression) to
// bytecode. regionIndex names the loop region's index variable ("" for CFG
// regions).
func Compile(seg *ir.Segment, regionIndex string) *Code {
	c := &compiler{
		code:    &Code{},
		nextReg: 1, // register 0 is the region index
		indexes: map[string]int{},
	}
	if regionIndex != "" {
		c.indexes[regionIndex] = RegionIndexReg
	}
	c.stmts(seg.Body)
	if seg.Branch != nil {
		r := c.expr(seg.Branch)
		c.emit(Instr{Op: OpBranch, A: r})
	} else {
		c.emit(Instr{Op: OpHalt})
	}
	fuse(c.code)
	return c.code
}

// fuse is a peephole pass over compiled code: the two three-instruction
// idioms the compiler emits for inner-loop control (header test, index
// step) collapse into single superinstructions. The shadowed original
// instructions stay in place, so every jump target remains valid — a jump
// into the middle of a fused triple simply executes the originals — and
// the fused ops charge exactly the same 3-instruction cost, keeping cycle
// accounting bit-identical.
func fuse(code *Code) {
	ins := code.Instrs
	// Pass 1: three-instruction loop-control idioms.
	for k := 0; k+2 < len(ins); k++ {
		c, b, j := &ins[k], &ins[k+1], &ins[k+2]
		if c.Op != OpConst || b.Op != OpBin {
			continue
		}
		switch {
		case j.Op == OpJz && b.B == c.Dst && b.A != c.Dst && j.A == b.Dst:
			// Const bound; Bin cond = A <op> bound; Jz cond, target
			ins[k] = Instr{Op: OpFusedTest, Dst: b.Dst, A: b.A, B: j.B,
				Val: c.Val, BinOp: b.BinOp, Subs: []int{c.Dst}}
			k += 2
		case j.Op == OpJump && b.BinOp == ir.Add && b.A == b.Dst && b.B == c.Dst && b.A != c.Dst:
			// Const step; Bin idx = idx + step; Jump target
			ins[k] = Instr{Op: OpFusedStep, Dst: b.Dst, A: j.A,
				Val: c.Val, Subs: []int{c.Dst}}
			k += 2
		}
	}
	// Pass 2: Const feeding an adjacent Bin (constant subscript and
	// expression operands). Writing the constant register first keeps
	// aliasing (A or B naming the constant register) exact.
	for k := 0; k+1 < len(ins); k++ {
		c, b := &ins[k], &ins[k+1]
		if c.Op != OpConst || b.Op != OpBin {
			continue
		}
		switch {
		case b.B == c.Dst:
			ins[k] = Instr{Op: OpFusedImmR, Dst: b.Dst, A: b.A,
				Val: c.Val, BinOp: b.BinOp, Subs: []int{c.Dst}}
			k++
		case b.A == c.Dst:
			ins[k] = Instr{Op: OpFusedImmL, Dst: b.Dst, B: b.B,
				Val: c.Val, BinOp: b.BinOp, Subs: []int{c.Dst}}
			k++
		}
	}
}

func (c *compiler) emit(i Instr) int {
	c.code.Instrs = append(c.code.Instrs, i)
	return len(c.code.Instrs) - 1
}

func (c *compiler) reg() int {
	r := c.nextReg
	c.nextReg++
	if r+1 > c.code.NumRegs {
		c.code.NumRegs = r + 1
	}
	return r
}

func (c *compiler) stmts(stmts []ir.Stmt) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ir.Assign:
			val := c.expr(s.RHS)
			subs := make([]int, len(s.LHS.Subs))
			for i, sub := range s.LHS.Subs {
				subs[i] = c.expr(sub)
			}
			c.emit(Instr{Op: OpStore, A: val, Ref: s.LHS, Subs: subs})
		case *ir.If:
			cond := c.expr(s.Cond)
			jz := c.emit(Instr{Op: OpJz, A: cond})
			c.stmts(s.Then)
			if len(s.Else) > 0 {
				jmp := c.emit(Instr{Op: OpJump})
				c.code.Instrs[jz].B = len(c.code.Instrs)
				c.stmts(s.Else)
				c.code.Instrs[jmp].A = len(c.code.Instrs)
			} else {
				c.code.Instrs[jz].B = len(c.code.Instrs)
			}
		case *ir.For:
			idx := c.reg()
			prev, shadowed := c.indexes[s.Index]
			c.indexes[s.Index] = idx
			c.emit(Instr{Op: OpConst, Dst: idx, Val: int64(s.From)})
			loopTop := len(c.code.Instrs)
			// Continue while idx <= To (ascending) or idx >= To
			// (descending).
			bound := c.reg()
			c.emit(Instr{Op: OpConst, Dst: bound, Val: int64(s.To)})
			cond := c.reg()
			cmp := ir.Le
			if s.Step < 0 {
				cmp = ir.Ge
			}
			c.emit(Instr{Op: OpBin, Dst: cond, A: idx, B: bound, BinOp: cmp})
			jz := c.emit(Instr{Op: OpJz, A: cond})
			c.stmts(s.Body)
			step := c.reg()
			c.emit(Instr{Op: OpConst, Dst: step, Val: int64(s.Step)})
			c.emit(Instr{Op: OpBin, Dst: idx, A: idx, B: step, BinOp: ir.Add})
			c.emit(Instr{Op: OpJump, A: loopTop})
			c.code.Instrs[jz].B = len(c.code.Instrs)
			if shadowed {
				c.indexes[s.Index] = prev
			} else {
				delete(c.indexes, s.Index)
			}
		case *ir.ExitRegion:
			cond := c.expr(s.Cond)
			jz := c.emit(Instr{Op: OpJz, A: cond})
			c.emit(Instr{Op: OpExit})
			c.code.Instrs[jz].B = len(c.code.Instrs)
		case *ir.Call:
			// Calls compile as their per-callsite expansion (parameters
			// already substituted, loop indices already uncaptured), so
			// the interpreter needs no frames and the hot loop is
			// untouched. Finalize numbered exactly these references.
			if s.Inlined == nil {
				panic(fmt.Sprintf("vm: call to %q has no expansion (unresolved or recursive)", s.Callee))
			}
			c.stmts(s.Inlined)
		default:
			panic(fmt.Sprintf("vm: unknown statement %T", st))
		}
	}
}

func (c *compiler) expr(e ir.Expr) int {
	switch x := e.(type) {
	case *ir.Const:
		r := c.reg()
		c.emit(Instr{Op: OpConst, Dst: r, Val: x.Val})
		return r
	case *ir.Index:
		r, ok := c.indexes[x.Name]
		if !ok {
			panic(fmt.Sprintf("vm: unknown index %q", x.Name))
		}
		return r
	case *ir.Load:
		subs := make([]int, len(x.Ref.Subs))
		for i, sub := range x.Ref.Subs {
			subs[i] = c.expr(sub)
		}
		r := c.reg()
		c.emit(Instr{Op: OpLoad, Dst: r, Ref: x.Ref, Subs: subs})
		return r
	case *ir.Bin:
		l := c.expr(x.L)
		rr := c.expr(x.R)
		r := c.reg()
		c.emit(Instr{Op: OpBin, Dst: r, A: l, B: rr, BinOp: x.Op})
		return r
	}
	panic(fmt.Sprintf("vm: unknown expression %T", e))
}

// EventKind classifies what a machine paused for.
type EventKind uint8

const (
	// EvLoad: the machine needs a value for Ref at Subs; resume with
	// ResumeLoad.
	EvLoad EventKind = iota
	// EvStore: the machine wrote Value through Ref at Subs; no resume
	// data needed.
	EvStore
	// EvDone: the segment finished.
	EvDone
	// EvTraceEntry: a machine stepped with StepTraced reached the
	// superblock entry point. The machine state corresponds exactly to the
	// interpreter paused at Entry; the caller runs the compiled trace.
	EvTraceEntry
)

// Event is what Machine.Step returns when it pauses. Subs aliases a
// per-machine scratch buffer: it is valid until the same machine's next
// Step, Reset or Reinit (engines consume the subscripts immediately, or
// park the whole event while the machine is frozen on a stall).
type Event struct {
	Kind  EventKind
	Ref   *ir.Ref
	Subs  []int64
	Value int64
	dst   int
}

// Machine is a resumable interpreter over compiled code.
type Machine struct {
	Code *Code
	PC   int
	Regs []int64
	// ExitRequested is set when an OpExit executed.
	ExitRequested bool
	// BranchVal holds the OpBranch value; Branched reports one executed.
	BranchVal int64
	Branched  bool
	done      bool

	pendingLoad bool
	pendingDst  int

	// subs is the scratch buffer memory events expose through Event.Subs;
	// reusing it keeps the interpreter hot loop allocation-free.
	subs []int64
}

// NewMachine creates a machine for the code with the region index value.
func NewMachine(code *Code, indexVal int64) *Machine {
	m := &Machine{Code: code, Regs: make([]int64, maxInt(code.NumRegs, 1))}
	m.Regs[RegionIndexReg] = indexVal
	return m
}

// Reinit repoints the machine at (possibly different) code with a new
// region index value, reusing the register file. It is the pooling
// counterpart of NewMachine: recycled machines are Reinit-ed instead of
// reallocated.
func (m *Machine) Reinit(code *Code, indexVal int64) {
	m.Code = code
	n := maxInt(code.NumRegs, 1)
	if cap(m.Regs) < n {
		m.Regs = make([]int64, n)
	} else {
		m.Regs = m.Regs[:n]
		for i := range m.Regs {
			m.Regs[i] = 0
		}
	}
	m.Regs[RegionIndexReg] = indexVal
	m.PC = 0
	m.ExitRequested = false
	m.BranchVal = 0
	m.Branched = false
	m.done = false
	m.pendingLoad = false
}

// scratchSubs returns the shared subscript buffer resized to n.
func (m *Machine) scratchSubs(n int) []int64 {
	if cap(m.subs) < n {
		m.subs = make([]int64, n)
	}
	return m.subs[:n]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Reset rewinds the machine to its initial state (used on rollback),
// preserving the region index value.
func (m *Machine) Reset() {
	idx := m.Regs[RegionIndexReg]
	for i := range m.Regs {
		m.Regs[i] = 0
	}
	m.Regs[RegionIndexReg] = idx
	m.PC = 0
	m.ExitRequested = false
	m.BranchVal = 0
	m.Branched = false
	m.done = false
	m.pendingLoad = false
}

// Done reports whether the machine has halted.
func (m *Machine) Done() bool { return m.done }

// ResumeLoad supplies the value for the pending load.
func (m *Machine) ResumeLoad(val int64) {
	if !m.pendingLoad {
		panic("vm: ResumeLoad without pending load")
	}
	m.Regs[m.pendingDst] = val
	m.pendingLoad = false
}

// Step runs instructions until the next memory event or completion. It
// returns the event and the number of non-memory instructions executed
// (for cycle accounting). Calling Step with an unresolved load panics.
func (m *Machine) Step() (Event, int) {
	var ev Event
	ops := m.StepInto(&ev)
	return ev, ops
}

// StepInto is Step writing the event into caller-owned storage, sparing
// the hot engine loop a 56-byte struct copy per event.
func (m *Machine) StepInto(ev *Event) int {
	if m.pendingLoad {
		panic("vm: Step with unresolved load")
	}
	ops := 0
	// Hot interpreter loop: the program counter, instruction stream and
	// register file live in locals so the compiler can keep them in
	// registers; m.PC is written back at every exit point.
	pc := m.PC
	instrs := m.Code.Instrs
	regs := m.Regs
	for {
		if m.done {
			m.PC = pc
			*ev = Event{Kind: EvDone}
			return ops
		}
		if pc >= len(instrs) {
			m.done = true
			m.PC = pc
			*ev = Event{Kind: EvDone}
			return ops
		}
		in := &instrs[pc]
		switch in.Op {
		case OpConst:
			regs[in.Dst] = in.Val
			pc++
			ops++
		case OpBin:
			// Inline dispatch for the dominant arithmetic ops; the rest
			// (comparisons, div, mod, ...) go through BinOp.Apply.
			a, b := regs[in.A], regs[in.B]
			var v int64
			switch in.BinOp {
			case ir.Add:
				v = a + b
			case ir.Sub:
				v = a - b
			case ir.Mul:
				v = a * b
			default:
				v = in.BinOp.Apply(a, b)
			}
			regs[in.Dst] = v
			pc++
			ops++
		case OpJump:
			pc = in.A
			ops++
		case OpJz:
			if regs[in.A] == 0 {
				pc = in.B
			} else {
				pc++
			}
			ops++
		case OpExit:
			m.ExitRequested = true
			pc++
			ops++
		case OpLoad:
			subs := m.scratchSubs(len(in.Subs))
			for i, r := range in.Subs {
				subs[i] = regs[r]
			}
			m.pendingLoad = true
			m.pendingDst = in.Dst
			m.PC = pc + 1
			*ev = Event{Kind: EvLoad, Ref: in.Ref, Subs: subs, dst: in.Dst}
			return ops + 1
		case OpStore:
			subs := m.scratchSubs(len(in.Subs))
			for i, r := range in.Subs {
				subs[i] = regs[r]
			}
			m.PC = pc + 1
			*ev = Event{Kind: EvStore, Ref: in.Ref, Subs: subs, Value: regs[in.A]}
			return ops + 1
		case OpBranch:
			m.BranchVal = regs[in.A]
			m.Branched = true
			m.done = true
			m.PC = pc
			*ev = Event{Kind: EvDone}
			return ops + 1
		case OpHalt:
			m.done = true
			m.PC = pc
			*ev = Event{Kind: EvDone}
			return ops + 1
		case OpFusedTest:
			regs[in.Subs[0]] = in.Val
			cond := in.BinOp.Apply(regs[in.A], in.Val)
			regs[in.Dst] = cond
			if cond == 0 {
				pc = in.B
			} else {
				pc += 3
			}
			ops += 3
		case OpFusedStep:
			regs[in.Subs[0]] = in.Val
			regs[in.Dst] += in.Val
			pc = in.A
			ops += 3
		case OpFusedImmR:
			regs[in.Subs[0]] = in.Val
			a := regs[in.A]
			var v int64
			switch in.BinOp {
			case ir.Add:
				v = a + in.Val
			case ir.Sub:
				v = a - in.Val
			case ir.Mul:
				v = a * in.Val
			default:
				v = in.BinOp.Apply(a, in.Val)
			}
			regs[in.Dst] = v
			pc += 2
			ops += 2
		case OpFusedImmL:
			regs[in.Subs[0]] = in.Val
			b := regs[in.B]
			var v int64
			switch in.BinOp {
			case ir.Add:
				v = in.Val + b
			case ir.Sub:
				v = in.Val - b
			case ir.Mul:
				v = in.Val * b
			default:
				v = in.BinOp.Apply(in.Val, b)
			}
			regs[in.Dst] = v
			pc += 2
			ops += 2
		default:
			panic(fmt.Sprintf("vm: unknown opcode %v", in.Op))
		}
	}
}
