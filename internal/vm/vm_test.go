package vm

import (
	"testing"

	"refidem/internal/ir"
)

// runAll drives a machine to completion against a flat scalar memory
// keyed by variable name (arrays keyed name+linear index), returning the
// memory and total op count.
func runAll(t *testing.T, m *Machine, mem map[string]int64) int {
	t.Helper()
	key := func(ref *ir.Ref, subs []int64) string {
		k := ref.Var.Name
		for _, s := range subs {
			k += "," + string(rune('0'+(s%10)))
		}
		return k
	}
	ops := 0
	for i := 0; i < 100000; i++ {
		ev, n := m.Step()
		ops += n
		switch ev.Kind {
		case EvDone:
			return ops
		case EvLoad:
			m.ResumeLoad(mem[key(ev.Ref, ev.Subs)])
		case EvStore:
			mem[key(ev.Ref, ev.Subs)] = ev.Value
		}
	}
	t.Fatal("machine did not halt")
	return ops
}

func compileBody(t *testing.T, regionIndex string, body ...ir.Stmt) *Code {
	t.Helper()
	return Compile(&ir.Segment{ID: 0, Body: body}, regionIndex)
}

func TestSimpleAssign(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	y := p.AddVar("y")
	code := compileBody(t, "k",
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(y), ir.C(5))},
	)
	m := NewMachine(code, 0)
	mem := map[string]int64{"y": 37}
	runAll(t, m, mem)
	if mem["x"] != 42 {
		t.Errorf("x = %d, want 42", mem["x"])
	}
}

func TestRegionIndexRegister(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	code := compileBody(t, "k",
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.MulE(ir.Idx("k"), ir.C(3))},
	)
	m := NewMachine(code, 7)
	mem := map[string]int64{}
	runAll(t, m, mem)
	if mem["x"] != 21 {
		t.Errorf("x = %d, want 21", mem["x"])
	}
}

func TestInnerLoopAscendingAndDescending(t *testing.T) {
	p := ir.NewProgram("t")
	s := p.AddVar("s")
	// s = 0; for j = 1 to 5 { s = s + j }  => 15
	code := compileBody(t, "",
		&ir.Assign{LHS: ir.Wr(s), RHS: ir.C(0)},
		&ir.For{Index: "j", From: 1, To: 5, Step: 1, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(s), RHS: ir.AddE(ir.Rd(s), ir.Idx("j"))},
		}},
	)
	mem := map[string]int64{}
	runAll(t, NewMachine(code, 0), mem)
	if mem["s"] != 15 {
		t.Errorf("ascending: s = %d, want 15", mem["s"])
	}
	// descending: for j = 5 downto 2 step -1 { s = s*10 + j } from 0 =>
	// 5432.
	code2 := compileBody(t, "",
		&ir.Assign{LHS: ir.Wr(s), RHS: ir.C(0)},
		&ir.For{Index: "j", From: 5, To: 2, Step: -1, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(s), RHS: ir.AddE(ir.MulE(ir.Rd(s), ir.C(10)), ir.Idx("j"))},
		}},
	)
	mem2 := map[string]int64{}
	runAll(t, NewMachine(code2, 0), mem2)
	if mem2["s"] != 5432 {
		t.Errorf("descending: s = %d, want 5432", mem2["s"])
	}
}

func TestNestedLoopsAndArrays(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 4, 4)
	s := p.AddVar("s")
	code := compileBody(t, "",
		&ir.For{Index: "i", From: 0, To: 2, Step: 1, Body: []ir.Stmt{
			&ir.For{Index: "j", From: 0, To: 2, Step: 1, Body: []ir.Stmt{
				&ir.Assign{LHS: ir.Wr(a, ir.Idx("i"), ir.Idx("j")),
					RHS: ir.AddE(ir.MulE(ir.Idx("i"), ir.C(3)), ir.Idx("j"))},
			}},
		}},
		&ir.Assign{LHS: ir.Wr(s), RHS: ir.Rd(a, ir.C(2), ir.C(1))},
	)
	mem := map[string]int64{}
	runAll(t, NewMachine(code, 0), mem)
	if mem["s"] != 7 {
		t.Errorf("s = %d, want 7", mem["s"])
	}
}

func TestIfElse(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	y := p.AddVar("y")
	mk := func() *Code {
		return compileBody(t, "",
			&ir.If{
				Cond: ir.Op(ir.Gt, ir.Rd(x), ir.C(0)),
				Then: []ir.Stmt{&ir.Assign{LHS: ir.Wr(y), RHS: ir.C(1)}},
				Else: []ir.Stmt{&ir.Assign{LHS: ir.Wr(y), RHS: ir.C(2)}},
			},
		)
	}
	mem := map[string]int64{"x": 5}
	runAll(t, NewMachine(mk(), 0), mem)
	if mem["y"] != 1 {
		t.Errorf("then branch: y = %d", mem["y"])
	}
	mem = map[string]int64{"x": -5}
	runAll(t, NewMachine(mk(), 0), mem)
	if mem["y"] != 2 {
		t.Errorf("else branch: y = %d", mem["y"])
	}
}

func TestIfWithoutElse(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	y := p.AddVar("y")
	code := compileBody(t, "",
		&ir.If{Cond: ir.Rd(x), Then: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(y), RHS: ir.C(9)},
		}},
	)
	mem := map[string]int64{"x": 0, "y": 3}
	runAll(t, NewMachine(code, 0), mem)
	if mem["y"] != 3 {
		t.Errorf("skipped then still ran: y = %d", mem["y"])
	}
}

func TestExitRegion(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	code := compileBody(t, "k",
		&ir.ExitRegion{Cond: ir.Op(ir.Ge, ir.Idx("k"), ir.C(3))},
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(1)},
	)
	m := NewMachine(code, 2)
	runAll(t, m, map[string]int64{})
	if m.ExitRequested {
		t.Error("exit should not trigger at k=2")
	}
	m2 := NewMachine(code, 3)
	mem := map[string]int64{}
	runAll(t, m2, mem)
	if !m2.ExitRequested {
		t.Error("exit should trigger at k=3")
	}
	if mem["x"] != 1 {
		t.Error("statements after exit-if must still execute")
	}
}

func TestBranch(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	seg := &ir.Segment{ID: 0, Succs: []int{1, 2}, Branch: ir.Rd(x)}
	code := Compile(seg, "")
	m := NewMachine(code, 0)
	for {
		ev, _ := m.Step()
		if ev.Kind == EvDone {
			break
		}
		if ev.Kind == EvLoad {
			m.ResumeLoad(7)
		}
	}
	if !m.Branched || m.BranchVal != 7 {
		t.Errorf("Branched=%v BranchVal=%d", m.Branched, m.BranchVal)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	code := compileBody(t, "k",
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Idx("k"), ir.Rd(x))},
	)
	m := NewMachine(code, 5)
	mem := map[string]int64{"x": 1}
	runAll(t, m, mem)
	if !m.Done() {
		t.Fatal("not done")
	}
	m.Reset()
	if m.Done() || m.PC != 0 || m.Regs[RegionIndexReg] != 5 {
		t.Error("Reset did not restore state")
	}
	mem2 := map[string]int64{"x": 1}
	runAll(t, m, mem2)
	if mem2["x"] != 6 {
		t.Errorf("re-execution: x = %d, want 6", mem2["x"])
	}
}

func TestStepPanicsOnUnresolvedLoad(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	code := compileBody(t, "", &ir.Assign{LHS: ir.Wr(x), RHS: ir.Rd(x)})
	m := NewMachine(code, 0)
	ev, _ := m.Step()
	if ev.Kind != EvLoad {
		t.Fatalf("expected load event, got %v", ev.Kind)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Step()
}

func TestOpCountsArePositive(t *testing.T) {
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	code := compileBody(t, "", &ir.Assign{LHS: ir.Wr(x), RHS: ir.C(1)})
	m := NewMachine(code, 0)
	ev, n := m.Step()
	if ev.Kind != EvStore || n < 1 {
		t.Errorf("ev=%v n=%d", ev.Kind, n)
	}
}
