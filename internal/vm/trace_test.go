package vm

import (
	"testing"

	"refidem/internal/ir"
)

// memKey matches runAll's addressing so traced and untraced runs hit the
// same map cells.
func memKey(ref *ir.Ref, subs []int64) string {
	k := ref.Var.Name
	for _, s := range subs {
		k += "," + string(rune('0'+(s%10)))
	}
	return k
}

// recordAll drives a machine to completion under StepRecorded, resolving
// memory against mem, and returns total ops.
func recordAll(t *testing.T, m *Machine, rec *Recorder, mem map[string]int64) int {
	t.Helper()
	ops := 0
	for i := 0; i < 100000; i++ {
		var ev Event
		ops += m.StepRecorded(&ev, rec)
		switch ev.Kind {
		case EvDone:
			return ops
		case EvLoad:
			m.ResumeLoad(mem[memKey(ev.Ref, ev.Subs)])
		case EvStore:
			mem[memKey(ev.Ref, ev.Subs)] = ev.Value
		}
	}
	t.Fatal("machine did not halt while recording")
	return 0
}

// execTrace runs one superblock iteration against m.Regs with every
// memory op resolved directly in mem (the vm-level stand-in for the
// engine's executor). It returns the ops charged and whether it bailed.
func execTrace(m *Machine, sb *Superblock, mem map[string]int64) (int, bool) {
	regs := m.Regs
	ops := 0
	var subs [8]int64
	for i := range sb.Instrs {
		in := &sb.Instrs[i]
		switch in.Op {
		case TConst:
			regs[in.Dst] = in.Val
		case TBin:
			regs[in.Dst] = in.BinOp.Apply(regs[in.A], regs[in.B])
		case TImmR:
			regs[in.SubR] = in.Val
			regs[in.Dst] = in.BinOp.Apply(regs[in.A], in.Val)
		case TImmL:
			regs[in.SubR] = in.Val
			regs[in.Dst] = in.BinOp.Apply(in.Val, regs[in.B])
		case TGuardZ:
			ops += int(in.Cost)
			if (regs[in.A] == 0) != in.ExpectZero {
				m.PC = int(in.Bail)
				return ops, true
			}
			continue
		case TGuardTest:
			regs[in.SubR] = in.Val
			cond := in.BinOp.Apply(regs[in.A], in.Val)
			regs[in.Dst] = cond
			ops += int(in.Cost)
			if (cond == 0) != in.ExpectZero {
				m.PC = int(in.Bail)
				return ops, true
			}
			continue
		case TLoad:
			for k, r := range in.Subs {
				subs[k] = regs[r]
			}
			regs[in.Dst] = mem[memKey(in.Ref, subs[:len(in.Subs)])]
		case TStore:
			for k, r := range in.Subs {
				subs[k] = regs[r]
			}
			mem[memKey(in.Ref, subs[:len(in.Subs)])] = regs[in.A]
		case TStepInner:
			regs[in.SubR] = in.Val
			regs[in.Dst] += in.Val
		case TStep:
			regs[in.SubR] = in.Val
			regs[in.Dst] += in.Val
			ops += int(in.Cost)
			m.PC = sb.Entry
			return ops, false
		case TEnd:
			ops += int(in.Cost)
			m.PC = sb.Entry
			return ops, false
		}
		ops += int(in.Cost)
	}
	panic("trace fell off the end without TStep/TEnd")
}

// runTracedAll drives a machine to completion under StepTraced plus the
// test executor, returning ops, completed trace iterations, and bails.
func runTracedAll(t *testing.T, m *Machine, sb *Superblock, mem map[string]int64) (int, int, int) {
	t.Helper()
	ops, iters, bails := 0, 0, 0
	for i := 0; i < 100000; i++ {
		var ev Event
		ops += m.StepTraced(&ev, sb.Entry)
		switch ev.Kind {
		case EvDone:
			return ops, iters, bails
		case EvLoad:
			m.ResumeLoad(mem[memKey(ev.Ref, ev.Subs)])
		case EvStore:
			mem[memKey(ev.Ref, ev.Subs)] = ev.Value
		case EvTraceEntry:
			n, bailed := execTrace(m, sb, mem)
			ops += n
			if bailed {
				bails++
			} else {
				iters++
			}
		}
	}
	t.Fatal("traced machine did not halt")
	return 0, 0, 0
}

// loopBody is a hot loop with loads, stores, and arithmetic, followed by
// straight-line code so the trace has a clean exit.
func traceTestCode(t *testing.T) *Code {
	t.Helper()
	p := ir.NewProgram("t")
	a := p.AddVar("a", 10)
	b := p.AddVar("b", 10)
	s := p.AddVar("s")
	return compileBody(t, "k",
		&ir.For{Index: "i", From: 0, To: 9, Step: 1, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(a, ir.Idx("i")),
				RHS: ir.AddE(ir.Rd(a, ir.Idx("i")), ir.MulE(ir.Rd(b, ir.Idx("i")), ir.C(2)))},
		}},
		&ir.Assign{LHS: ir.Wr(s), RHS: ir.Rd(a, ir.C(5))},
	)
}

func seedMem() map[string]int64 {
	mem := map[string]int64{}
	for i := 0; i < 10; i++ {
		k := string(rune('0' + i))
		mem["a,"+k] = int64(i * 3)
		mem["b,"+k] = int64(7 - i)
	}
	return mem
}

func TestRecordAndBuildSuperblock(t *testing.T) {
	code := traceTestCode(t)
	rec := NewRecorder(DefaultTraceConfig())
	rec.Reset(code)
	m := NewMachine(code, 0)
	recordAll(t, m, rec, seedMem())
	if !rec.Hot() {
		t.Fatal("recorder never found a hot backedge")
	}
	sb := rec.Build(func(*ir.Ref) bool { return true })
	if sb == nil {
		t.Fatal("Build returned no superblock")
	}
	if sb.Entry <= 0 {
		t.Fatalf("entry = %d, want > 0", sb.Entry)
	}
	if last := sb.Instrs[len(sb.Instrs)-1].Op; last != TStep && last != TEnd {
		t.Fatalf("trace ends with %d, want TStep/TEnd", last)
	}
	// One iteration touches a[i] (load+store) and b[i] (load); all direct
	// under the always-idempotent predicate, leaving only the header test
	// guarded.
	if sb.Elided != 3 {
		t.Errorf("Elided = %d, want 3", sb.Elided)
	}
	if sb.Guards != 1 {
		t.Errorf("Guards = %d, want 1 (header test)", sb.Guards)
	}

	// Labels withheld: every memory op needs a guard.
	sbNone := rec.Build(nil)
	if sbNone == nil {
		t.Fatal("Build with nil predicate failed")
	}
	if sbNone.Elided != 0 || sbNone.Guards != 4 {
		t.Errorf("unlabeled trace: Elided=%d Guards=%d, want 0 and 4", sbNone.Elided, sbNone.Guards)
	}
}

func TestTracedRunMatchesInterpreterExactly(t *testing.T) {
	code := traceTestCode(t)
	rec := NewRecorder(DefaultTraceConfig())
	rec.Reset(code)
	memRec := seedMem()
	recordAll(t, NewMachine(code, 0), rec, memRec)
	sb := rec.Build(func(*ir.Ref) bool { return true })
	if sb == nil {
		t.Fatal("no superblock")
	}

	memPlain := seedMem()
	mPlain := NewMachine(code, 0)
	opsPlain := runAll(t, mPlain, memPlain)

	memTraced := seedMem()
	mTraced := NewMachine(code, 0)
	opsTraced, iters, bails := runTracedAll(t, mTraced, sb, memTraced)

	if iters == 0 {
		t.Fatal("no trace iterations executed")
	}
	// Exactly one bail: the header-test guard failing when the loop
	// exhausts — the designed exit path of a traced loop.
	if bails != 1 {
		t.Errorf("bails = %d, want 1 (loop exit)", bails)
	}
	if opsTraced != opsPlain {
		t.Errorf("traced charged %d ops, interpreter %d", opsTraced, opsPlain)
	}
	for k, v := range memPlain {
		if memTraced[k] != v {
			t.Errorf("mem[%s] = %d traced, %d plain", k, memTraced[k], v)
		}
	}
	for i := range mPlain.Regs {
		if mTraced.Regs[i] != mPlain.Regs[i] {
			t.Errorf("reg %d = %d traced, %d plain", i, mTraced.Regs[i], mPlain.Regs[i])
		}
	}
}

func TestTraceGuardBailsToInterpreter(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 10)
	// The branch flips on the final two iterations, so a trace recorded
	// on the early ones must bail there and let the interpreter finish
	// the iteration.
	code := compileBody(t, "k",
		&ir.For{Index: "i", From: 0, To: 9, Step: 1, Body: []ir.Stmt{
			&ir.If{
				Cond: ir.Op(ir.Lt, ir.Idx("i"), ir.C(8)),
				Then: []ir.Stmt{&ir.Assign{LHS: ir.Wr(a, ir.Idx("i")), RHS: ir.C(1)}},
				Else: []ir.Stmt{&ir.Assign{LHS: ir.Wr(a, ir.Idx("i")), RHS: ir.C(2)}},
			},
		}},
	)
	rec := NewRecorder(DefaultTraceConfig())
	rec.Reset(code)
	recordAll(t, NewMachine(code, 0), rec, map[string]int64{})
	sb := rec.Build(func(*ir.Ref) bool { return true })
	if sb == nil {
		t.Fatal("no superblock")
	}

	memPlain := map[string]int64{}
	mPlain := NewMachine(code, 0)
	opsPlain := runAll(t, mPlain, memPlain)

	memTraced := map[string]int64{}
	mTraced := NewMachine(code, 0)
	opsTraced, iters, bails := runTracedAll(t, mTraced, sb, memTraced)

	if bails == 0 {
		t.Fatal("expected guard bails on the flipped branch")
	}
	if iters == 0 {
		t.Fatal("expected completed trace iterations")
	}
	if opsTraced != opsPlain {
		t.Errorf("traced charged %d ops, interpreter %d", opsTraced, opsPlain)
	}
	for k, v := range memPlain {
		if memTraced[k] != v {
			t.Errorf("mem[%s] = %d traced, %d plain", k, memTraced[k], v)
		}
	}
}

func TestBuildRejectsExitInTrace(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 10)
	// OpExit executes every iteration: no valid superblock may contain
	// it, so Build must refuse rather than speculate past a region exit.
	code := compileBody(t, "k",
		&ir.For{Index: "i", From: 0, To: 9, Step: 1, Body: []ir.Stmt{
			&ir.ExitRegion{Cond: ir.C(1)},
			&ir.Assign{LHS: ir.Wr(a, ir.Idx("i")), RHS: ir.C(1)},
		}},
	)
	rec := NewRecorder(DefaultTraceConfig())
	rec.Reset(code)
	recordAll(t, NewMachine(code, 0), rec, map[string]int64{})
	if !rec.Hot() {
		t.Fatal("recorder never went hot")
	}
	if sb := rec.Build(nil); sb != nil {
		t.Fatal("Build accepted a trace containing OpExit")
	}
}

func TestRecorderIgnoresColdLoops(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 4)
	// Two iterations: below the hot threshold, nothing records.
	code := compileBody(t, "k",
		&ir.For{Index: "i", From: 0, To: 1, Step: 1, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(a, ir.Idx("i")), RHS: ir.C(1)},
		}},
	)
	rec := NewRecorder(DefaultTraceConfig())
	rec.Reset(code)
	recordAll(t, NewMachine(code, 0), rec, map[string]int64{})
	if rec.Hot() {
		t.Fatal("two backedge executions must stay below the default hot threshold")
	}
	if sb := rec.Build(nil); sb != nil {
		t.Fatal("Build produced a superblock without a hot trace")
	}
}
