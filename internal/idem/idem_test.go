package idem

import (
	"testing"

	"refidem/internal/ir"
	"refidem/internal/workloads"
)

// refBy finds the unique reference to the named variable with the given
// access in the given segment, failing the test when ambiguous; pos
// selects among several (0 = first in textual order).
func refBy(t *testing.T, r *ir.Region, name string, acc ir.AccessType, segID, pos int) *ir.Ref {
	t.Helper()
	var found []*ir.Ref
	for _, ref := range r.Refs {
		if ref.Var.Name == name && ref.Access == acc && ref.SegID == segID {
			found = append(found, ref)
		}
	}
	if pos >= len(found) {
		t.Fatalf("no ref #%d to %s (%v) in segment %d; have %d", pos, name, acc, segID, len(found))
	}
	return found[pos]
}

func TestIntroExampleLabels(t *testing.T) {
	p := workloads.IntroExample()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res := LabelRegion(p, p.Regions[0], nil)
	r := p.Regions[0]

	// B is read-only: both reads idempotent.
	for _, ref := range r.VarRefs(p.Var("B")) {
		if res.Label(ref) != Idempotent || res.Category(ref) != CatReadOnly {
			t.Errorf("B ref %v: %v/%v, want idempotent/read-only", ref, res.Label(ref), res.Category(ref))
		}
	}
	// The first write to A (segment 1) is idempotent; the read of A in
	// segment 2 is the cross-segment flow sink and stays speculative.
	aw := refBy(t, r, "A", ir.Write, 0, 0)
	if res.Label(aw) != Idempotent || res.Category(aw) != CatSharedDependent {
		t.Errorf("A write: %v/%v, want idempotent/shared-dependent", res.Label(aw), res.Category(aw))
	}
	ar := refBy(t, r, "A", ir.Read, 1, 0)
	if res.Label(ar) != Speculative {
		t.Errorf("A read in segment 2 must be speculative, got %v", res.Label(ar))
	}
	// C is private to segment 2: all refs idempotent.
	for _, ref := range r.VarRefs(p.Var("C")) {
		if res.Label(ref) != Idempotent || res.Category(ref) != CatPrivate {
			t.Errorf("C ref %v: %v/%v, want idempotent/private", ref, res.Label(ref), res.Category(ref))
		}
	}
	if res.FullyIndependent {
		t.Error("intro region has a cross-segment dependence")
	}
	if errs := res.CheckTheorems(); len(errs) > 0 {
		t.Errorf("theorem check: %v", errs)
	}
}

func TestFigure2Labels(t *testing.T) {
	p := workloads.Figure2()
	res := LabelRegion(p, p.Regions[0], nil)
	r := p.Regions[0]

	type want struct {
		name  string
		acc   ir.AccessType
		seg   int
		pos   int
		label Label
		cat   Category
	}
	cases := []want{
		// Read-only G.
		{"G", ir.Read, 0, 0, Idempotent, CatReadOnly},
		{"G", ir.Read, 1, 0, Idempotent, CatReadOnly},
		{"G", ir.Read, 4, 0, Idempotent, CatReadOnly},
		// R0: C, N writes and covered reads idempotent.
		{"C", ir.Write, 0, 0, Idempotent, CatSharedDependent},
		{"C", ir.Read, 0, 0, Idempotent, CatSharedDependent},
		{"N", ir.Write, 0, 0, Idempotent, CatSharedDependent},
		{"N", ir.Read, 0, 0, Idempotent, CatSharedDependent},
		// J: R0 write idempotent, R1 write speculative (output sink).
		{"J", ir.Write, 0, 0, Idempotent, CatSharedDependent},
		{"J", ir.Write, 1, 0, Speculative, CatSpeculative},
		// E: write idempotent; reads in R2/R3 are cross flow sinks.
		{"E", ir.Write, 1, 0, Idempotent, CatSharedDependent},
		{"E", ir.Read, 2, 0, Speculative, CatSpeculative},
		{"E", ir.Read, 3, 0, Speculative, CatSpeculative},
		// A: both branch writes idempotent, covered reads idempotent.
		{"A", ir.Write, 2, 0, Idempotent, CatSharedDependent},
		{"A", ir.Write, 3, 0, Idempotent, CatSharedDependent},
		{"A", ir.Read, 2, 0, Idempotent, CatSharedDependent},
		{"A", ir.Read, 3, 0, Idempotent, CatSharedDependent},
		// B: conditional / not-on-all-paths writes stay speculative.
		{"B", ir.Write, 2, 0, Speculative, CatSpeculative},
		{"B", ir.Write, 3, 0, Speculative, CatSpeculative},
		// K(E): uncertain addresses stay speculative.
		{"K", ir.Write, 2, 0, Speculative, CatSpeculative},
		{"K", ir.Write, 3, 0, Speculative, CatSpeculative},
		// N read in R2: cross flow sink.
		{"N", ir.Read, 2, 0, Speculative, CatSpeculative},
		// F: read in R0 independent (idempotent); write in R4 is RFW but
		// an anti sink (speculative); the covered read in R4 follows a
		// speculative write so it stays speculative too (Theorem 2; the
		// paper's prose lists it under Lemma 6 — see DESIGN.md).
		{"F", ir.Read, 0, 0, Idempotent, CatSharedDependent},
		{"F", ir.Write, 4, 0, Speculative, CatSpeculative},
		{"F", ir.Read, 4, 0, Speculative, CatSpeculative},
		// H: read independent (idempotent by Lemma 4), write not RFW.
		{"H", ir.Read, 4, 0, Idempotent, CatSharedDependent},
		{"H", ir.Write, 4, 0, Speculative, CatSpeculative},
	}
	for _, c := range cases {
		ref := refBy(t, r, c.name, c.acc, c.seg, c.pos)
		if res.Label(ref) != c.label || res.Category(ref) != c.cat {
			t.Errorf("%s %v in R%d: got %v/%v, want %v/%v",
				c.name, c.acc, c.seg, res.Label(ref), res.Category(ref), c.label, c.cat)
		}
	}
	// Scratch temporaries are private.
	for _, name := range []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"} {
		for _, ref := range r.VarRefs(p.Var(name)) {
			if res.Category(ref) != CatPrivate {
				t.Errorf("%s should be private, got %v", name, res.Category(ref))
			}
		}
	}
	if errs := res.CheckTheorems(); len(errs) > 0 {
		t.Errorf("theorem check: %v", errs)
	}
}

func TestButsLabels(t *testing.T) {
	p := workloads.ButsDO1(6)
	res := LabelRegion(p, p.Regions[0], nil)
	r := p.Regions[0]
	v := p.Var("v")
	tv := p.Var("t")

	for _, ref := range r.Refs {
		switch {
		case ref.Var == tv:
			if res.Label(ref) != Idempotent || res.Category(ref) != CatPrivate {
				t.Errorf("t ref %v: %v/%v, want idempotent/private", ref, res.Label(ref), res.Category(ref))
			}
		case ref.Var == v && ref.Access == ir.Write:
			if res.Label(ref) != Speculative {
				t.Errorf("S2 write %v must stay speculative", ref)
			}
		case ref.Var == v && ref.Access == ir.Read:
			// The three S1 gather reads are idempotent (sources of anti
			// dependences only); so is the S2 read-modify-write read
			// (not a sink of anything).
			if res.Label(ref) != Idempotent {
				t.Errorf("v read %v should be idempotent", ref)
			}
		}
	}
	if res.FullyIndependent {
		t.Error("BUTS carries cross-iteration dependences")
	}
	if errs := res.CheckTheorems(); len(errs) > 0 {
		t.Errorf("theorem check: %v", errs)
	}
	// The paper's headline for this loop: a majority of references are
	// idempotent.
	frac, _ := res.IdempotentFraction()
	if frac < 0.6 {
		t.Errorf("BUTS idempotent fraction = %.2f, want > 0.6", frac)
	}
}

func TestFullyIndependentRegion(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 16)
	b := p.AddVar("b", 16)
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: 7, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.AddE(ir.Rd(b, ir.Idx("k")), ir.C(1))},
		}}}}
	r.Ann.LiveOut = map[string]bool{"a": true}
	r.Finalize()
	p.AddRegion(r)
	res := LabelRegion(p, r, nil)
	if !res.FullyIndependent {
		t.Fatal("region should be fully independent")
	}
	for _, ref := range r.Refs {
		if res.Label(ref) != Idempotent {
			t.Errorf("ref %v should be idempotent in a fully independent region", ref)
		}
	}
	// Category breakdown: b is read-only, a is shared (fully-independent).
	for _, ref := range r.VarRefs(b) {
		if res.Category(ref) != CatReadOnly {
			t.Errorf("b ref: %v, want read-only", res.Category(ref))
		}
	}
	for _, ref := range r.VarRefs(a) {
		if res.Category(ref) != CatFullyIndependent {
			t.Errorf("a ref: %v, want fully-independent", res.Category(ref))
		}
	}
	if errs := res.CheckTheorems(); len(errs) > 0 {
		t.Errorf("theorem check: %v", errs)
	}
}

func TestPrivateDepsDoNotBlockFullIndependence(t *testing.T) {
	// The scalar temporary carries cross-segment anti/output dependences
	// address-wise, but privatization removes them.
	p := ir.NewProgram("t")
	a := p.AddVar("a", 16)
	b := p.AddVar("b", 16)
	tv := p.AddVar("tv")
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: 7, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(tv), RHS: ir.Rd(b, ir.Idx("k"))},
			&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.Rd(tv)},
		}}}}
	r.Ann.LiveOut = map[string]bool{"a": true}
	r.Finalize()
	p.AddRegion(r)
	res := LabelRegion(p, r, nil)
	if !res.FullyIndependent {
		t.Error("private temporary should not block full independence")
	}
	for _, ref := range r.VarRefs(tv) {
		if res.Category(ref) != CatPrivate {
			t.Errorf("tv should be private, got %v", res.Category(ref))
		}
	}
}

func TestEarlyExitBlocksFullIndependence(t *testing.T) {
	p := ir.NewProgram("t")
	a := p.AddVar("a", 16)
	r := &ir.Region{Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: 7, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(a, ir.Idx("k")), RHS: ir.C(1)},
			&ir.ExitRegion{Cond: ir.Rd(a, ir.Idx("k"))},
		}}}}
	r.Finalize()
	p.AddRegion(r)
	res := LabelRegion(p, r, nil)
	if res.FullyIndependent {
		t.Error("early exit is a cross-segment control dependence")
	}
}

func TestIdempotentFraction(t *testing.T) {
	p := workloads.IntroExample()
	res := LabelRegion(p, p.Regions[0], nil)
	frac, byCat := res.IdempotentFraction()
	if frac <= 0 || frac > 1 {
		t.Errorf("fraction = %v", frac)
	}
	var sum float64
	for _, f := range byCat {
		sum += f
	}
	if diff := frac - sum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("category fractions sum to %v, total %v", sum, frac)
	}
}

func TestLabelProgramMultiRegionLiveness(t *testing.T) {
	// Region 1 writes x each iteration; region 2 reads x. The write in
	// region 1 is an output-dep sink across iterations, so it stays
	// speculative; x's liveness comes from region 2.
	p := ir.NewProgram("t")
	x := p.AddVar("x")
	out := p.AddVar("out", 8)
	r1 := &ir.Region{Name: "r1", Kind: ir.LoopRegion, Index: "k", From: 0, To: 7, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.Idx("k")},
		}}}}
	r1.Finalize()
	p.AddRegion(r1)
	r2 := &ir.Region{Name: "r2", Kind: ir.LoopRegion, Index: "k", From: 0, To: 7, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(out, ir.Idx("k")), RHS: ir.Rd(x)},
		}}}}
	r2.Ann.LiveOut = map[string]bool{"out": true}
	r2.Finalize()
	p.AddRegion(r2)

	results := LabelProgram(p)
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	res1 := results[r1]
	wx := r1.Refs[0]
	if res1.Label(wx) != Speculative {
		t.Errorf("x write is an output sink and x is live into region 2: must be speculative, got %v", res1.Label(wx))
	}
	// In region 2 x is read-only.
	res2 := results[r2]
	for _, ref := range r2.VarRefs(x) {
		if res2.Category(ref) != CatReadOnly {
			t.Errorf("x in r2: %v, want read-only", res2.Category(ref))
		}
	}
	for _, res := range results {
		if errs := res.CheckTheorems(); len(errs) > 0 {
			t.Errorf("theorem check: %v", errs)
		}
	}
}

func TestStringers(t *testing.T) {
	if Speculative.String() != "speculative" || Idempotent.String() != "idempotent" {
		t.Error("Label.String broken")
	}
	if CatReadOnly.String() != "read-only" || CatPrivate.String() != "private" ||
		CatSharedDependent.String() != "shared-dependent" || CatFullyIndependent.String() != "fully-independent" ||
		CatSpeculative.String() != "speculative" {
		t.Error("Category.String broken")
	}
}
