package idem

import (
	"testing"

	"refidem/internal/deps"
	"refidem/internal/gen"
	"refidem/internal/ir"
)

// buildIndirect is the canonical uncertain-address region: a[ia[k]] =
// a[ib[k]] + 1. The exact solver cannot refute the a-vs-a pairs, so the
// a-read and a-write stay speculative under Algorithm 2.
func buildIndirect(t *testing.T) (*ir.Program, *ir.Region, *ir.Ref, *ir.Ref) {
	t.Helper()
	p := ir.NewProgram("t")
	av := p.AddVar("a", 64)
	ia := p.AddVar("ia", 8)
	ib := p.AddVar("ib", 8)
	r := &ir.Region{
		Name: "r", Kind: ir.LoopRegion, Index: "k", From: 0, To: 3, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{
				LHS: ir.Wr(av, ir.Rd(ia, ir.Idx("k"))),
				RHS: ir.AddE(ir.Rd(av, ir.Rd(ib, ir.Idx("k"))), ir.C(1)),
			},
		}}},
	}
	r.Finalize()
	p.AddRegion(r)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var aRead, aWrite *ir.Ref
	for _, ref := range r.Refs {
		if ref.Var != av {
			continue
		}
		if ref.Access == ir.Read {
			aRead = ref
		} else {
			aWrite = ref
		}
	}
	if aRead == nil || aWrite == nil {
		t.Fatal("refs not found")
	}
	return p, r, aRead, aWrite
}

// TestProbDegeneratesToLabels: results from the plain entry points carry
// no overlay and Prob is exactly the label.
func TestProbDegeneratesToLabels(t *testing.T) {
	p, r, _, _ := buildIndirect(t)
	res := LabelProgram(p)[r]
	for _, ref := range r.Refs {
		want := 0.0
		if res.Label(ref) == Idempotent {
			want = 1
		}
		if got := res.Prob(ref); got != want {
			t.Errorf("ref %v: Prob = %v, want %v (label %v)", ref, got, want, res.Label(ref))
		}
	}
}

// TestProbWithoutSpecMembersIsExact: an ensemble with only sound members
// yields the base labels and a 1/0 overlay — P == 1 exactly on the
// proved-idempotent set.
func TestProbWithoutSpecMembersIsExact(t *testing.T) {
	p, r, _, _ := buildIndirect(t)
	base := LabelProgram(p)[r]
	res := LabelProgramEnsemble(p, deps.Ensemble{Range: true})[r]
	for _, ref := range r.Refs {
		if res.Label(ref) != base.Label(ref) {
			t.Errorf("ref %v: ensemble label %v != base %v", ref, res.Label(ref), base.Label(ref))
		}
		want := 0.0
		if base.Label(ref) == Idempotent {
			want = 1
		}
		if got := res.Prob(ref); got != want {
			t.Errorf("ref %v: Prob = %v, want %v", ref, got, want)
		}
	}
}

// TestProbSpeculativeOverlay: a profile claiming the a-read and a-write
// never alias lifts the read's P to the edge confidence; the write stays
// at 0 because its own cross output dependence (against itself) is not
// refutable, and nothing reaches exactly 1.
func TestProbSpeculativeOverlay(t *testing.T) {
	p, r, aRead, aWrite := buildIndirect(t)
	obs := make([]deps.RefObs, len(r.Refs))
	obs[aWrite.ID] = deps.RefObs{Min: 0, Max: 3, Count: 4}
	obs[aRead.ID] = deps.RefObs{Min: 10, Max: 13, Count: 4}
	prof := &deps.Profile{Obs: map[*ir.Region][]deps.RefObs{r: obs}}
	res := LabelProgramEnsemble(p, deps.Ensemble{Profile: prof})[r]

	if res.Label(aRead) != Speculative || res.Label(aWrite) != Speculative {
		t.Fatal("base labels must stay speculative under the overlay")
	}
	// The read's only dependence sink is the cross flow from the a-write,
	// annotated at 4/5.
	if got, want := res.Prob(aRead), 4.0/5.0; got != want {
		t.Errorf("P(read) = %v, want %v", got, want)
	}
	// The write is the sink of a cross output dependence on itself, which
	// no observation can refute (same ref, same range): P stays 0.
	if got := res.Prob(aWrite); got != 0 {
		t.Errorf("P(write) = %v, want 0", got)
	}
	for _, ref := range r.Refs {
		pr := res.Prob(ref)
		if pr < 0 || pr > 1 {
			t.Errorf("ref %v: P = %v out of range", ref, pr)
		}
		if (pr == 1) != (res.Label(ref) == Idempotent) {
			t.Errorf("ref %v: P == 1 must coincide with a proved label (P=%v, label=%v)",
				ref, pr, res.Label(ref))
		}
	}
}

// TestProbInvariantsRandom sweeps generated programs: ensemble labels
// identical to LabelProgram, P in [0,1], and P == 1 exactly on the
// proved set, with the full ensemble (minus profile, which needs a
// replay) enabled.
func TestProbInvariantsRandom(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 3
	}
	for _, prof := range gen.Profiles() {
		for seed := int64(0); seed < seeds; seed++ {
			sc := gen.Generate(seed*17+3, prof.Cfg)
			if err := sc.Program.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", prof.Name, seed, err)
			}
			base := LabelProgram(sc.Program)
			ens := LabelProgramEnsemble(sc.Program, deps.Ensemble{Range: true, MustWriteFirst: true})
			for _, r := range sc.Program.Regions {
				b, e := base[r], ens[r]
				for _, ref := range r.Refs {
					if b.Label(ref) != e.Label(ref) {
						t.Fatalf("%s seed %d %s: label drift on %v", prof.Name, seed, r.Name, ref)
					}
					pr := e.Prob(ref)
					if pr < 0 || pr > 1 {
						t.Fatalf("%s seed %d %s: P(%v) = %v", prof.Name, seed, r.Name, ref, pr)
					}
					if (pr == 1) != (e.Label(ref) == Idempotent) {
						t.Fatalf("%s seed %d %s: P==1 mismatch on %v (P=%v label=%v)",
							prof.Name, seed, r.Name, ref, pr, e.Label(ref))
					}
				}
				if errs := e.CheckTheorems(); len(errs) > 0 {
					t.Fatalf("%s seed %d %s: %v", prof.Name, seed, r.Name, errs[0])
				}
			}
		}
	}
}

// TestProbFallback: recursive programs take the conservative fallback,
// whose overlay is the 1/0 degenerate.
func TestProbFallback(t *testing.T) {
	p := ir.NewProgram("rec")
	x := p.AddVar("x")
	f := p.AddProc("f", nil, nil)
	f.Body = []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(x), RHS: ir.C(1)},
		&ir.Call{Callee: "f"},
	}
	r := &ir.Region{
		Name: "r", Kind: ir.LoopRegion, Index: "k", From: 1, To: 2, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.AddE(ir.Rd(x), ir.C(1))},
		}}},
	}
	p.AddRegion(r)
	if err := p.ResolveCalls(); err != nil {
		t.Fatal(err)
	}
	r.Finalize()
	out := LabelProgramEnsemble(p, deps.Ensemble{Range: true})
	res := out[r]
	if !res.Fallback {
		t.Fatal("expected the recursive fallback")
	}
	for _, ref := range r.Refs {
		want := 0.0
		if res.Label(ref) == Idempotent {
			want = 1
		}
		if got := res.Prob(ref); got != want {
			t.Errorf("fallback ref %v: Prob = %v, want %v", ref, got, want)
		}
	}
}
