package idem

// Confidence-weighted labeling: the probabilistic overlay on Algorithm 2
// (ROADMAP direction 2, after "Probabilistic data flow analysis: a linear
// equational approach"). The dependence ensemble (internal/deps,
// ensemble.go) annotates edges with SpecConf — a speculative member's
// confidence that the dependence does not actually occur. This file folds
// those per-edge confidences into a per-reference P(idempotent), stored
// as a dense float array beside the label bitsets.
//
// The model keeps every *intra-segment certainty* condition of the
// theorems (RFW for writes, the LC2 output-dependence strengthening,
// idempotent intra sources for reads) and relaxes only the
// edge-existence conditions: a cross-segment sink is idempotent exactly
// when its cross edges are all absent, and edges are absent
// independently with the members' stated probabilities. The resulting
// equation system
//
//	P(ref) = Π over d in SinksAt(ref) of factor(d)
//	  factor(cross d)        = SpecConf(d)
//	  factor(intra d)        = SpecConf(d) + (1-SpecConf(d))·P(Src(d))
//
// is monotone in P, so the Gauss-Seidel sweep from 0 converges from
// below; references Algorithm 2 already proved idempotent are pinned at
// exactly 1, and everything else is clamped strictly below 1, keeping
// "P == 1" a sound-analysis certificate. An engine threshold of 1.0
// therefore reproduces the base labeling bit for bit; thresholds below 1
// admit speculative promotions, which the engine's squash machinery (and
// the fuzz wall's live-out oracles) must then police.

import (
	"refidem/internal/callgraph"
	"refidem/internal/cfg"
	"refidem/internal/dataflow"
	"refidem/internal/deps"
	"refidem/internal/ir"
	"refidem/internal/rfw"
)

// maxSpecProb caps P(idempotent) for any reference Algorithm 2 did not
// prove: speculative confidence chains must never round up to certainty.
const maxSpecProb = 0.999999

// probSweeps bounds the fixpoint iteration; intra-segment chains are
// short, so the sweep count is a backstop, not a budget.
const probSweeps = 64

const probEps = 1e-12

// Prob returns P(idempotent) for a reference of the region: the
// probability, under the ensemble's speculative edge confidences, that
// the reference is in fact idempotent. Exactly 1 iff Algorithm 2 proved
// it (results from the non-ensemble entry points degenerate to 1/0 from
// the labels).
func (res *Result) Prob(ref *ir.Ref) float64 {
	if res.probs == nil {
		if res.labels[ref.ID] == Idempotent {
			return 1
		}
		return 0
	}
	return res.probs[ref.ID]
}

// LabelProgramEnsemble labels every region of the program through the
// dependence ensemble configured by ens and computes the per-reference
// P(idempotent) overlay. The base labels are always identical to
// LabelProgram's (speculative members only annotate, never remove,
// dependences). When the MustWriteFirst member is requested without
// summaries, the program's callgraph analysis is run here.
func LabelProgramEnsemble(p *ir.Program, ens deps.Ensemble) map[*ir.Region]*Result {
	if len(p.Procs) > 0 && p.RecursionCycle() != nil {
		out := fallbackLabels(p, callgraph.Analyze(p))
		for _, res := range out {
			res.fillProbsFromLabels()
		}
		return out
	}
	if ens.MustWriteFirst && ens.Summaries == nil {
		ens.Summaries = callgraph.Analyze(p)
	}
	infos := dataflow.AnalyzeProgram(p)
	out := make(map[*ir.Region]*Result, len(p.Regions))
	for _, r := range p.Regions {
		out[r] = labelRegionEnsemble(r, infos[r], &ens)
	}
	return out
}

// labelRegionEnsemble is labelRegion with the ensemble dependence pass
// and the probability overlay.
func labelRegionEnsemble(r *ir.Region, info *dataflow.RegionInfo, ens *deps.Ensemble) *Result {
	g := cfg.FromRegion(r)
	da := deps.AnalyzeWith(r, g, ens)
	rf := rfw.Analyze(r, g, info, da)
	res := label(r, g, info, da, rf)
	res.computeProbs()
	return res
}

// fillProbsFromLabels degenerates the overlay to the base labels
// (fallback results carry no dependence information to weight).
func (res *Result) fillProbsFromLabels() {
	res.probs = make([]float64, len(res.labels))
	for i, l := range res.labels {
		if l == Idempotent {
			res.probs[i] = 1
		}
	}
}

// computeProbs runs the monotone fixpoint described in the file comment.
func (res *Result) computeProbs() {
	r := res.Region
	probs := make([]float64, len(r.Refs))
	for _, ref := range r.Refs {
		if res.labels[ref.ID] == Idempotent {
			probs[ref.ID] = 1
		}
	}
	res.probs = probs
	if res.FullyIndependent {
		return // every reference is pinned at 1 already
	}
	for sweep := 0; sweep < probSweeps; sweep++ {
		delta := 0.0
		for _, ref := range r.Refs {
			if res.labels[ref.ID] == Idempotent {
				continue
			}
			p := res.refProb(ref, probs)
			if p > maxSpecProb {
				p = maxSpecProb
			}
			if p > probs[ref.ID] {
				delta += p - probs[ref.ID]
				probs[ref.ID] = p
			}
		}
		if delta < probEps {
			return
		}
	}
}

// refProb evaluates one reference's equation under the current
// assignment. Intra-segment certainty conditions stay hard: a
// non-re-occurring-first write has probability 0 regardless of edge
// confidences, and intra output/flow sources contribute through their
// own P.
func (res *Result) refProb(ref *ir.Ref, probs []float64) float64 {
	if ref.Access == ir.Write && !res.RFW.IsRFW(ref) {
		return 0
	}
	p := 1.0
	for _, d := range res.Deps.SinksAt(ref) {
		var f float64
		switch {
		case d.Cross:
			// The edge must be absent.
			f = d.SpecConf
		case ref.Access == ir.Read:
			// Absent, or present with an idempotent source (Theorem 2).
			f = d.SpecConf + (1-d.SpecConf)*probs[d.Src.ID]
		case d.Kind == deps.Output:
			// LC2 strengthening: an intra output source must itself be
			// idempotent (or the edge absent).
			f = d.SpecConf + (1-d.SpecConf)*probs[d.Src.ID]
		default:
			// Intra anti dependences into a write carry no condition.
			f = 1
		}
		p *= f
		if p == 0 {
			return 0
		}
	}
	return p
}
