// Package idem implements the paper's core contribution: reference
// idempotency labeling (Algorithm 2), backed by Theorems 1 and 2.
//
//	Theorem 1 (Idempotent Write): a write reference is idempotent iff it
//	is a re-occurring first write and it is not the sink of a
//	cross-segment dependence.
//
//	Theorem 2 (Idempotent Read): a read reference is idempotent iff it is
//	not the sink of any data dependence, or it is dependent on an
//	idempotent write reference within the same segment.
//
// The package also assigns every idempotent reference to one of the
// paper's §4.1 categories (fully-independent, read-only, private,
// shared-dependent), which the evaluation figures break down.
package idem

import (
	"fmt"

	"refidem/internal/cfg"
	"refidem/internal/dataflow"
	"refidem/internal/deps"
	"refidem/internal/ir"
	"refidem/internal/rfw"
)

// Label is the classification the compiler communicates to the hardware.
type Label uint8

const (
	// Speculative references are tracked in speculative storage, exactly
	// as under HOSE.
	Speculative Label = iota
	// Idempotent references bypass speculative storage and access the
	// non-speculative memory hierarchy directly.
	Idempotent
)

func (l Label) String() string {
	if l == Idempotent {
		return "idempotent"
	}
	return "speculative"
}

// Category is the idempotency category of §4.1 of the paper.
type Category uint8

const (
	// CatSpeculative marks references that stay in speculative storage
	// (no idempotency category applies).
	CatSpeculative Category = iota
	// CatFullyIndependent: all references of a region with no
	// cross-segment data or control dependences (Lemma 7).
	CatFullyIndependent
	// CatReadOnly: references to variables with no write in the region.
	CatReadOnly
	// CatPrivate: references to segment-private variables.
	CatPrivate
	// CatSharedDependent: idempotent references to shared variables in
	// regions that do carry dependences — the paper's most advanced
	// category.
	CatSharedDependent
)

var categoryNames = [...]string{
	CatSpeculative:      "speculative",
	CatFullyIndependent: "fully-independent",
	CatReadOnly:         "read-only",
	CatPrivate:          "private",
	CatSharedDependent:  "shared-dependent",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", c)
}

// Result is the labeling of one region together with the analysis
// artifacts it was derived from.
type Result struct {
	Region     *ir.Region
	Labels     map[*ir.Ref]Label
	Categories map[*ir.Ref]Category
	// FullyIndependent reports that the region carries no cross-segment
	// data or control dependences (Lemma 7 applies).
	FullyIndependent bool

	Info  *dataflow.RegionInfo
	Deps  *deps.Analysis
	RFW   *rfw.Result
	Graph *cfg.Graph
}

// LabelRegion runs the full pipeline (dataflow, dependences, RFW,
// Algorithm 2) on one region. liveOut overrides the live-out set; pass nil
// to use the region annotation or the conservative default.
func LabelRegion(p *ir.Program, r *ir.Region, liveOut map[*ir.Var]bool) *Result {
	g := cfg.FromRegion(r)
	info := dataflow.AnalyzeRegion(p, r, liveOut)
	da := deps.Analyze(r, g)
	rf := rfw.Analyze(r, g, info, da)
	return label(r, g, info, da, rf)
}

// LabelRegionConservative labels a region with direction-less (treated as
// bidirectional) may-dependences, modeling a compiler without
// execution-order direction information. Used by the dependence-direction
// ablation: every reference idempotent here is also idempotent under the
// precise analysis, but not vice versa.
func LabelRegionConservative(p *ir.Program, r *ir.Region, liveOut map[*ir.Var]bool) *Result {
	g := cfg.FromRegion(r)
	info := dataflow.AnalyzeRegion(p, r, liveOut)
	da := deps.Conservative(deps.Analyze(r, g))
	rf := rfw.Analyze(r, g, info, da)
	return label(r, g, info, da, rf)
}

// LabelProgram labels every region of the program, using the inter-region
// liveness pass for live-out sets.
func LabelProgram(p *ir.Program) map[*ir.Region]*Result {
	infos := dataflow.AnalyzeProgram(p)
	out := make(map[*ir.Region]*Result, len(p.Regions))
	for _, r := range p.Regions {
		g := cfg.FromRegion(r)
		info := infos[r]
		da := deps.Analyze(r, g)
		rf := rfw.Analyze(r, g, info, da)
		out[r] = label(r, g, info, da, rf)
	}
	return out
}

// label is Algorithm 2.
func label(r *ir.Region, g *cfg.Graph, info *dataflow.RegionInfo, da *deps.Analysis, rf *rfw.Result) *Result {
	res := &Result{
		Region:     r,
		Labels:     make(map[*ir.Ref]Label, len(r.Refs)),
		Categories: make(map[*ir.Ref]Category, len(r.Refs)),
		Info:       info,
		Deps:       da,
		RFW:        rf,
		Graph:      g,
	}
	// Initially, all references are labeled speculative.
	for _, ref := range r.Refs {
		res.Labels[ref] = Speculative
		res.Categories[ref] = CatSpeculative
	}

	// Step 2: fully independent region — label everything idempotent.
	// Dependences on private variables do not count: privatization gives
	// each segment its own storage, which removes them.
	res.FullyIndependent = isFullyIndependent(r, g, info, da)
	if res.FullyIndependent {
		for _, ref := range r.Refs {
			res.Labels[ref] = Idempotent
			switch {
			case info.ReadOnly[ref.Var]:
				res.Categories[ref] = CatReadOnly
			case info.Private[ref.Var]:
				res.Categories[ref] = CatPrivate
			default:
				res.Categories[ref] = CatFullyIndependent
			}
		}
		return res
	}

	// Step 3: dependent region.
	// Read-only and private references.
	for _, ref := range r.Refs {
		switch {
		case info.ReadOnly[ref.Var]:
			res.Labels[ref] = Idempotent
			res.Categories[ref] = CatReadOnly
		case info.Private[ref.Var]:
			res.Labels[ref] = Idempotent
			res.Categories[ref] = CatPrivate
		}
	}
	// RFW writes that are not cross-segment dependence sinks (Theorem 1),
	// with one strengthening over the paper's statement (found by the
	// property-based test suite, documented in DESIGN.md): a write that is
	// the sink of an *intra-segment output dependence from a speculative
	// write* must also stay speculative. The speculative source's value
	// reaches non-speculative storage at commit time — after the
	// idempotent sink's direct store — so the bypass would reorder the
	// two stores and violate LC2. Lemma 5's proof assumes sequential
	// execution satisfies intra-segment orderings, which holds for the
	// storage bypass only when the earlier write is idempotent too.
	// Demotion iterates to a fixpoint because intra-segment output
	// dependences between inner-loop iterations can run in both
	// directions.
	candidate := make(map[*ir.Ref]bool)
	for _, ref := range r.Refs {
		if ref.Access != ir.Write || res.Labels[ref] == Idempotent {
			continue
		}
		if rf.IsRFW[ref] && !da.IsCrossSink(ref) {
			candidate[ref] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for ref := range candidate {
			for _, d := range da.SinksAt(ref) {
				if d.Cross || d.Kind != deps.Output {
					continue
				}
				srcOK := candidate[d.Src] || res.Labels[d.Src] == Idempotent
				if !srcOK {
					delete(candidate, ref)
					changed = true
					break
				}
			}
		}
	}
	for ref := range candidate {
		res.Labels[ref] = Idempotent
		res.Categories[ref] = CatSharedDependent
	}
	// Reads: idempotent when not a dependence sink, or when every
	// dependence into them is intra-segment with an idempotent source
	// (Theorem 2; the all-quantifier is required — a read that is covered
	// intra-segment but also the sink of a cross-segment flow must stay
	// speculative by Lemma 3).
	for _, ref := range r.Refs {
		if ref.Access != ir.Read || res.Labels[ref] == Idempotent {
			continue
		}
		sinks := da.SinksAt(ref)
		ok := true
		for _, d := range sinks {
			if d.Cross || res.Labels[d.Src] != Idempotent {
				ok = false
				break
			}
		}
		if ok {
			res.Labels[ref] = Idempotent
			res.Categories[ref] = CatSharedDependent
		}
	}
	return res
}

// isFullyIndependent implements the Lemma 7 precondition: no cross-segment
// data dependences (ignoring privatized variables) and no cross-segment
// control dependences (no branches, no data-dependent trip count).
func isFullyIndependent(r *ir.Region, g *cfg.Graph, info *dataflow.RegionInfo, da *deps.Analysis) bool {
	if g.HasBranch() || r.HasEarlyExit() {
		return false
	}
	for _, d := range da.All {
		if d.Cross && !info.Private[d.Src.Var] {
			return false
		}
	}
	return true
}

// IdempotentFraction returns the fraction of static references labeled
// idempotent, and the per-category breakdown (fractions of the total).
func (res *Result) IdempotentFraction() (total float64, byCat map[Category]float64) {
	byCat = make(map[Category]float64)
	n := len(res.Region.Refs)
	if n == 0 {
		return 0, byCat
	}
	cnt := 0
	for _, ref := range res.Region.Refs {
		if res.Labels[ref] == Idempotent {
			cnt++
			byCat[res.Categories[ref]] += 1
		}
	}
	for c := range byCat {
		byCat[c] /= float64(n)
	}
	return float64(cnt) / float64(n), byCat
}

// CheckTheorems independently re-derives every label from Theorems 1 and 2
// and from the lemmas' side conditions, returning a list of violations.
// It is the oracle the property-based tests use: the Algorithm 2
// implementation and this checker must always agree.
func (res *Result) CheckTheorems() []error {
	var errs []error
	r := res.Region
	if res.FullyIndependent {
		// Lemma 7: everything idempotent; and the precondition must hold.
		for _, d := range res.Deps.All {
			if d.Cross && !res.Info.Private[d.Src.Var] {
				errs = append(errs, fmt.Errorf("region marked fully independent but has cross dep %v", d))
			}
		}
		for _, ref := range r.Refs {
			if res.Labels[ref] != Idempotent {
				errs = append(errs, fmt.Errorf("fully independent region has speculative ref %v", ref))
			}
		}
		return errs
	}
	wantWrites := res.expectedWrites()
	for _, ref := range r.Refs {
		got := res.Labels[ref] == Idempotent
		want := res.expectedIdempotent(ref, wantWrites)
		if got != want {
			errs = append(errs, fmt.Errorf("ref %v: labeled %v, theorems say idempotent=%v", ref, res.Labels[ref], want))
		}
	}
	// Lemma 3: the sink of a cross-segment dependence must be speculative
	// (unless privatization removed the dependence).
	for _, d := range res.Deps.All {
		if !d.Cross || res.Info.Private[d.Dst.Var] {
			continue
		}
		if res.Labels[d.Dst] == Idempotent {
			errs = append(errs, fmt.Errorf("cross-segment sink labeled idempotent: %v", d))
		}
	}
	return errs
}

// expectedWrites independently derives the idempotent write set: Theorem 1
// (RFW and not a cross-segment sink) plus the LC2 strengthening for
// intra-segment output dependences with speculative sources, iterated to a
// fixpoint.
func (res *Result) expectedWrites() map[*ir.Ref]bool {
	ok := make(map[*ir.Ref]bool)
	for _, ref := range res.Region.Refs {
		if ref.Access != ir.Write {
			continue
		}
		if res.Info.ReadOnly[ref.Var] || res.Info.Private[ref.Var] {
			ok[ref] = true
			continue
		}
		if res.RFW.IsRFW[ref] && !res.Deps.IsCrossSink(ref) {
			ok[ref] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for ref := range ok {
			if res.Info.Private[ref.Var] || res.Info.ReadOnly[ref.Var] {
				continue
			}
			for _, d := range res.Deps.SinksAt(ref) {
				if !d.Cross && d.Kind == deps.Output && !ok[d.Src] {
					delete(ok, ref)
					changed = true
					break
				}
			}
		}
	}
	return ok
}

// expectedIdempotent is the direct theorem-based classification.
func (res *Result) expectedIdempotent(ref *ir.Ref, wantWrites map[*ir.Ref]bool) bool {
	if res.Info.ReadOnly[ref.Var] || res.Info.Private[ref.Var] {
		return true
	}
	if ref.Access == ir.Write {
		return wantWrites[ref]
	}
	for _, d := range res.Deps.SinksAt(ref) {
		if d.Cross {
			return false
		}
		if !res.expectedIdempotent(d.Src, wantWrites) {
			return false
		}
	}
	return true
}
