// Package idem implements the paper's core contribution: reference
// idempotency labeling (Algorithm 2), backed by Theorems 1 and 2.
//
//	Theorem 1 (Idempotent Write): a write reference is idempotent iff it
//	is a re-occurring first write and it is not the sink of a
//	cross-segment dependence.
//
//	Theorem 2 (Idempotent Read): a read reference is idempotent iff it is
//	not the sink of any data dependence, or it is dependent on an
//	idempotent write reference within the same segment.
//
// The package also assigns every idempotent reference to one of the
// paper's §4.1 categories (fully-independent, read-only, private,
// shared-dependent), which the evaluation figures break down.
//
// Labels and categories are stored densely by reference ID (the region
// index numbering) and read through the Label/Category accessors; the
// whole pipeline — dataflow, dependences, RFW, Algorithm 2 — shares one
// code path between LabelRegion and LabelProgram and allocates only the
// returned Results in steady state.
package idem

import (
	"fmt"
	"sync"

	"refidem/internal/callgraph"
	"refidem/internal/cfg"
	"refidem/internal/dataflow"
	"refidem/internal/deps"
	"refidem/internal/ir"
	"refidem/internal/rfw"
)

// Label is the classification the compiler communicates to the hardware.
type Label uint8

const (
	// Speculative references are tracked in speculative storage, exactly
	// as under HOSE.
	Speculative Label = iota
	// Idempotent references bypass speculative storage and access the
	// non-speculative memory hierarchy directly.
	Idempotent
)

func (l Label) String() string {
	if l == Idempotent {
		return "idempotent"
	}
	return "speculative"
}

// Category is the idempotency category of §4.1 of the paper.
type Category uint8

const (
	// CatSpeculative marks references that stay in speculative storage
	// (no idempotency category applies).
	CatSpeculative Category = iota
	// CatFullyIndependent: all references of a region with no
	// cross-segment data or control dependences (Lemma 7).
	CatFullyIndependent
	// CatReadOnly: references to variables with no write in the region.
	CatReadOnly
	// CatPrivate: references to segment-private variables.
	CatPrivate
	// CatSharedDependent: idempotent references to shared variables in
	// regions that do carry dependences — the paper's most advanced
	// category.
	CatSharedDependent
)

var categoryNames = [...]string{
	CatSpeculative:      "speculative",
	CatFullyIndependent: "fully-independent",
	CatReadOnly:         "read-only",
	CatPrivate:          "private",
	CatSharedDependent:  "shared-dependent",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", c)
}

// Result is the labeling of one region together with the analysis
// artifacts it was derived from. Labels and categories are dense slices
// indexed by reference ID; use Label/Category/SetLabel to access them.
type Result struct {
	Region *ir.Region
	// FullyIndependent reports that the region carries no cross-segment
	// data or control dependences (Lemma 7 applies).
	FullyIndependent bool
	// Fallback marks results from the conservative interprocedural
	// fallback used when the program's call graph is recursive and
	// therefore cannot be inline-expanded: only reads of variables the
	// whole program (per callgraph summaries) never writes are labeled
	// idempotent, and the analysis artifacts (Info, Deps, RFW, Graph) are
	// nil.
	Fallback bool

	Info  *dataflow.RegionInfo
	Deps  *deps.Analysis
	RFW   *rfw.Result
	Graph *cfg.Graph

	labels []Label
	cats   []Category
	// probs is the confidence-weighted P(idempotent) overlay, computed
	// only by the ensemble entry points (prob.go); nil means the labels
	// are the whole story and Prob degenerates to 1/0.
	probs []float64
}

// Label returns the label of a reference of the region.
func (res *Result) Label(ref *ir.Ref) Label { return res.labels[ref.ID] }

// Category returns the idempotency category of a reference.
func (res *Result) Category(ref *ir.Ref) Category { return res.cats[ref.ID] }

// SetLabel overrides the label of a reference. Demoting an idempotent
// reference to speculative is always safe; the ablations and the fuzzer's
// forced-mislabeling mode use this.
func (res *Result) SetLabel(ref *ir.Ref, l Label) { res.labels[ref.ID] = l }

// IdempotentBits returns the region's per-reference idempotency as a
// dense bitset indexed by ir.Ref.ID: a set bit means Algorithm 2 proved
// the reference idempotent. This is the form the VM's superblock
// machinery consumes — the engine derives its guard-elision predicate and
// its trace-cache key from these bits, so a labeling override via
// SetLabel is picked up by the next traced run.
func (res *Result) IdempotentBits() ir.Bits {
	bits := ir.MakeBits(len(res.labels))
	for i, l := range res.labels {
		if l == Idempotent {
			bits.Set(int32(i))
		}
	}
	return bits
}

// LabelRegion runs the full pipeline (dataflow, dependences, RFW,
// Algorithm 2) on one region. liveOut overrides the live-out set; pass nil
// to use the region annotation or the conservative default.
func LabelRegion(p *ir.Program, r *ir.Region, liveOut map[*ir.Var]bool) *Result {
	return labelRegion(r, dataflow.AnalyzeRegion(p, r, liveOut), false)
}

// LabelRegionConservative labels a region with direction-less (treated as
// bidirectional) may-dependences, modeling a compiler without
// execution-order direction information. Used by the dependence-direction
// ablation: every reference idempotent here is also idempotent under the
// precise analysis, but not vice versa.
func LabelRegionConservative(p *ir.Program, r *ir.Region, liveOut map[*ir.Var]bool) *Result {
	return labelRegion(r, dataflow.AnalyzeRegion(p, r, liveOut), true)
}

// LabelRegionWithInfo labels one region from a precomputed dataflow
// RegionInfo (as produced by dataflow.AnalyzeProgram or AnalyzeRegion).
// It is the per-region body of LabelProgram: labeling a region through it
// with the RegionInfo a whole-program analysis produced yields exactly
// the Result LabelProgram would have produced for that region. The
// service's delta re-labeling path uses it to recompute only regions
// whose analysis inputs changed.
func LabelRegionWithInfo(r *ir.Region, info *dataflow.RegionInfo) *Result {
	return labelRegion(r, info, false)
}

// LabelProgram labels every region of the program, using the inter-region
// liveness pass for live-out sets.
func LabelProgram(p *ir.Program) map[*ir.Region]*Result {
	return labelProgram(p, false)
}

// LabelProgramConservative is LabelProgram under direction-less
// may-dependences (see LabelRegionConservative). The dependence-direction
// ablation uses it so multi-region programs get the same inter-region
// liveness under both analyses.
func LabelProgramConservative(p *ir.Program) map[*ir.Region]*Result {
	return labelProgram(p, true)
}

func labelProgram(p *ir.Program, conservative bool) map[*ir.Region]*Result {
	// Recursive call graphs cannot be inline-expanded, so the region
	// reference sets are incomplete; fall back to summary-driven
	// conservative labels instead of mislabeling. (Validate rejects such
	// programs, so this path only serves direct API users.)
	if len(p.Procs) > 0 && p.RecursionCycle() != nil {
		return fallbackLabels(p, callgraph.Analyze(p))
	}
	infos := dataflow.AnalyzeProgram(p)
	out := make(map[*ir.Region]*Result, len(p.Regions))
	for _, r := range p.Regions {
		out[r] = labelRegion(r, infos[r], conservative)
	}
	return out
}

// fallbackLabels is the conservative interprocedural fallback: the
// bottom-up callgraph summaries decide which variables the program may
// write anywhere (directly or through any call chain, recursive ones
// included — effect sets of cyclic SCCs are still sound unions); reads of
// variables never written are idempotent read-only references, and every
// other reference stays speculative.
func fallbackLabels(p *ir.Program, cg *callgraph.Analysis) map[*ir.Region]*Result {
	written := make(map[*ir.Var]bool)
	for _, r := range p.Regions {
		for _, ref := range r.Refs {
			if ref.Access == ir.Write {
				written[ref.Var] = true
			}
		}
		_, w := cg.RegionEffects(r)
		for v := range w {
			written[v] = true
		}
	}
	out := make(map[*ir.Region]*Result, len(p.Regions))
	for _, r := range p.Regions {
		n := len(r.Refs)
		res := &Result{
			Region:   r,
			Fallback: true,
			labels:   make([]Label, n),
			cats:     make([]Category, n),
		}
		for _, ref := range r.Refs {
			if ref.Access == ir.Read && !written[ref.Var] {
				res.labels[ref.ID] = Idempotent
				res.cats[ref.ID] = CatReadOnly
			}
		}
		out[r] = res
	}
	return out
}

// labelRegion is the one shared pipeline body: segment graph, dependence
// analysis (optionally direction-less), RFW, Algorithm 2.
func labelRegion(r *ir.Region, info *dataflow.RegionInfo, conservative bool) *Result {
	g := cfg.FromRegion(r)
	da := deps.Analyze(r, g)
	if conservative {
		da = deps.Conservative(da)
	}
	rf := rfw.Analyze(r, g, info, da)
	return label(r, g, info, da, rf)
}

// labelScratch pools the Algorithm 2 worklist state.
var labelPool = sync.Pool{New: func() any { return &labelScratch{} }}

type labelScratch struct {
	candidate ir.Bits
}

// label is Algorithm 2.
func label(r *ir.Region, g *cfg.Graph, info *dataflow.RegionInfo, da *deps.Analysis, rf *rfw.Result) *Result {
	idx := r.DenseIndex()
	n := len(r.Refs)
	res := &Result{
		Region: r,
		Info:   info,
		Deps:   da,
		RFW:    rf,
		Graph:  g,
		// Zero values are Speculative/CatSpeculative: initially, all
		// references are labeled speculative.
		labels: make([]Label, n),
		cats:   make([]Category, n),
	}

	// Step 2: fully independent region — label everything idempotent.
	// Dependences on private variables do not count: privatization gives
	// each segment its own storage, which removes them.
	res.FullyIndependent = isFullyIndependent(r, g, info, da, idx)
	if res.FullyIndependent {
		for _, ref := range r.Refs {
			res.labels[ref.ID] = Idempotent
			local := idx.VarOf[ref.ID]
			switch {
			case info.ReadOnlyAt(local):
				res.cats[ref.ID] = CatReadOnly
			case info.PrivateAt(local):
				res.cats[ref.ID] = CatPrivate
			default:
				res.cats[ref.ID] = CatFullyIndependent
			}
		}
		return res
	}

	// Step 3: dependent region.
	// Read-only and private references.
	for _, ref := range r.Refs {
		local := idx.VarOf[ref.ID]
		switch {
		case info.ReadOnlyAt(local):
			res.labels[ref.ID] = Idempotent
			res.cats[ref.ID] = CatReadOnly
		case info.PrivateAt(local):
			res.labels[ref.ID] = Idempotent
			res.cats[ref.ID] = CatPrivate
		}
	}
	// RFW writes that are not cross-segment dependence sinks (Theorem 1),
	// with one strengthening over the paper's statement (found by the
	// property-based test suite, documented in DESIGN.md): a write that is
	// the sink of an *intra-segment output dependence from a speculative
	// write* must also stay speculative. The speculative source's value
	// reaches non-speculative storage at commit time — after the
	// idempotent sink's direct store — so the bypass would reorder the
	// two stores and violate LC2. Lemma 5's proof assumes sequential
	// execution satisfies intra-segment orderings, which holds for the
	// storage bypass only when the earlier write is idempotent too.
	// Demotion iterates to a fixpoint because intra-segment output
	// dependences between inner-loop iterations can run in both
	// directions.
	sc := labelPool.Get().(*labelScratch)
	candidate := ir.GrowBits(sc.candidate, n)
	sc.candidate = candidate
	for _, ref := range r.Refs {
		if ref.Access != ir.Write || res.labels[ref.ID] == Idempotent {
			continue
		}
		if rf.IsRFW(ref) && !da.IsCrossSink(ref) {
			candidate.Set(int32(ref.ID))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ref := range r.Refs {
			if !candidate.Get(int32(ref.ID)) {
				continue
			}
			for _, d := range da.SinksAt(ref) {
				if d.Cross || d.Kind != deps.Output {
					continue
				}
				srcOK := candidate.Get(int32(d.Src.ID)) || res.labels[d.Src.ID] == Idempotent
				if !srcOK {
					candidate.Clear(int32(ref.ID))
					changed = true
					break
				}
			}
		}
	}
	for _, ref := range r.Refs {
		if candidate.Get(int32(ref.ID)) {
			res.labels[ref.ID] = Idempotent
			res.cats[ref.ID] = CatSharedDependent
		}
	}
	labelPool.Put(sc)
	// Reads: idempotent when not a dependence sink, or when every
	// dependence into them is intra-segment with an idempotent source
	// (Theorem 2; the all-quantifier is required — a read that is covered
	// intra-segment but also the sink of a cross-segment flow must stay
	// speculative by Lemma 3).
	for _, ref := range r.Refs {
		if ref.Access != ir.Read || res.labels[ref.ID] == Idempotent {
			continue
		}
		ok := true
		for _, d := range da.SinksAt(ref) {
			if d.Cross || res.labels[d.Src.ID] != Idempotent {
				ok = false
				break
			}
		}
		if ok {
			res.labels[ref.ID] = Idempotent
			res.cats[ref.ID] = CatSharedDependent
		}
	}
	return res
}

// isFullyIndependent implements the Lemma 7 precondition: no cross-segment
// data dependences (ignoring privatized variables) and no cross-segment
// control dependences (no branches, no data-dependent trip count).
func isFullyIndependent(r *ir.Region, g *cfg.Graph, info *dataflow.RegionInfo, da *deps.Analysis, idx *ir.RegionIndex) bool {
	if g.HasBranch() || r.HasEarlyExit() {
		return false
	}
	for _, d := range da.All {
		if d.Cross && !info.PrivateAt(idx.VarOf[d.Src.ID]) {
			return false
		}
	}
	return true
}

// IdempotentFraction returns the fraction of static references labeled
// idempotent, and the per-category breakdown (fractions of the total).
func (res *Result) IdempotentFraction() (total float64, byCat map[Category]float64) {
	byCat = make(map[Category]float64)
	n := len(res.Region.Refs)
	if n == 0 {
		return 0, byCat
	}
	cnt := 0
	for _, ref := range res.Region.Refs {
		if res.labels[ref.ID] == Idempotent {
			cnt++
			byCat[res.cats[ref.ID]] += 1
		}
	}
	for c := range byCat {
		byCat[c] /= float64(n)
	}
	return float64(cnt) / float64(n), byCat
}

// CheckTheorems independently re-derives every label from Theorems 1 and 2
// and from the lemmas' side conditions, returning a list of violations.
// It is the oracle the property-based tests use: the Algorithm 2
// implementation and this checker must always agree.
func (res *Result) CheckTheorems() []error {
	var errs []error
	r := res.Region
	if res.Fallback {
		// The conservative fallback carries no per-reference analysis to
		// re-derive; the only obligation is soundness of what it did
		// label: idempotent references must be reads (of globally
		// unwritten variables — writes always stay speculative).
		for _, ref := range r.Refs {
			if res.labels[ref.ID] == Idempotent && ref.Access != ir.Read {
				errs = append(errs, fmt.Errorf("fallback labeled non-read %v idempotent", ref))
			}
		}
		return errs
	}
	if res.FullyIndependent {
		// Lemma 7: everything idempotent; and the precondition must hold.
		for _, d := range res.Deps.All {
			if d.Cross && !res.Info.Private(d.Src.Var) {
				errs = append(errs, fmt.Errorf("region marked fully independent but has cross dep %v", d))
			}
		}
		for _, ref := range r.Refs {
			if res.labels[ref.ID] != Idempotent {
				errs = append(errs, fmt.Errorf("fully independent region has speculative ref %v", ref))
			}
		}
		return errs
	}
	wantWrites := res.expectedWrites()
	for _, ref := range r.Refs {
		got := res.labels[ref.ID] == Idempotent
		want := res.expectedIdempotent(ref, wantWrites)
		if got != want {
			errs = append(errs, fmt.Errorf("ref %v: labeled %v, theorems say idempotent=%v", ref, res.labels[ref.ID], want))
		}
	}
	// Lemma 3: the sink of a cross-segment dependence must be speculative
	// (unless privatization removed the dependence).
	for _, d := range res.Deps.All {
		if !d.Cross || res.Info.Private(d.Dst.Var) {
			continue
		}
		if res.labels[d.Dst.ID] == Idempotent {
			errs = append(errs, fmt.Errorf("cross-segment sink labeled idempotent: %v", d))
		}
	}
	return errs
}

// expectedWrites independently derives the idempotent write set: Theorem 1
// (RFW and not a cross-segment sink) plus the LC2 strengthening for
// intra-segment output dependences with speculative sources, iterated to a
// fixpoint. The set is a bitset over reference IDs.
func (res *Result) expectedWrites() ir.Bits {
	r := res.Region
	ok := ir.MakeBits(len(r.Refs))
	for _, ref := range r.Refs {
		if ref.Access != ir.Write {
			continue
		}
		if res.Info.ReadOnly(ref.Var) || res.Info.Private(ref.Var) {
			ok.Set(int32(ref.ID))
			continue
		}
		if res.RFW.IsRFW(ref) && !res.Deps.IsCrossSink(ref) {
			ok.Set(int32(ref.ID))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, ref := range r.Refs {
			if !ok.Get(int32(ref.ID)) {
				continue
			}
			if res.Info.Private(ref.Var) || res.Info.ReadOnly(ref.Var) {
				continue
			}
			for _, d := range res.Deps.SinksAt(ref) {
				if !d.Cross && d.Kind == deps.Output && !ok.Get(int32(d.Src.ID)) {
					ok.Clear(int32(ref.ID))
					changed = true
					break
				}
			}
		}
	}
	return ok
}

// expectedIdempotent is the direct theorem-based classification.
func (res *Result) expectedIdempotent(ref *ir.Ref, wantWrites ir.Bits) bool {
	if res.Info.ReadOnly(ref.Var) || res.Info.Private(ref.Var) {
		return true
	}
	if ref.Access == ir.Write {
		return wantWrites.Get(int32(ref.ID))
	}
	for _, d := range res.Deps.SinksAt(ref) {
		if d.Cross {
			return false
		}
		if !res.expectedIdempotent(d.Src, wantWrites) {
			return false
		}
	}
	return true
}
