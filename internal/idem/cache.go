package idem

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"refidem/internal/ir"
)

// ProgramCache memoizes validated program labelings by content
// fingerprint. Sweeps (capacity, processors, associativity, ...) rebuild
// the same program at every point; through the cache they run the full
// analysis pipeline — Validate, dataflow, dependences, RFW, Algorithm 2,
// CheckTheorems — exactly once and replay the canonical program plus its
// labeling everywhere else.
//
// The cache is safe for concurrent use (the experiment harness fans
// sweep points out across workers): the first caller of a fingerprint
// computes, concurrent callers of the same fingerprint wait on its entry,
// and eviction is LRU. Entries whose computation is still in flight are
// pinned: eviction skips them (temporarily exceeding capacity when every
// resident entry is pinned), so a concurrent same-fingerprint caller
// always finds the computing entry and the single-flight guarantee holds
// even under eviction pressure.
type ProgramCache struct {
	mu      sync.Mutex
	cap     int
	entries map[ir.Fingerprint]*cacheEntry
	order   *list.List // front = most recently used; values are *cacheEntry

	// labeler overrides LabelProgram for entry computation (SetLabeler);
	// nil means LabelProgram. Every labeler must satisfy CheckTheorems —
	// the cache verifies each computed labeling either way.
	labeler func(*ir.Program) map[*ir.Region]*Result

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// CacheStats is a point-in-time snapshot of a ProgramCache's counters and
// occupancy (Stats keeps the original two-value accessor for the common
// case; the service /metricz endpoint reports the full snapshot).
type CacheStats struct {
	// Hits and Misses count lookups since construction or ResetStats.
	Hits, Misses int64
	// Evictions counts entries dropped by LRU capacity pressure (Purge
	// does not count).
	Evictions int64
	// Entries is the current resident entry count (may transiently exceed
	// capacity while every resident entry is pinned).
	Entries int
	// Pinned is the number of resident entries currently pinned by
	// in-flight callers (waiters > 0).
	Pinned int
	// Capacity is the configured maximum entry count.
	Capacity int
}

type cacheEntry struct {
	once sync.Once
	fp   ir.Fingerprint
	elem *list.Element

	// waiters counts callers between lookup and computation completion;
	// guarded by ProgramCache.mu. A non-zero count pins the entry
	// against eviction.
	waiters int

	// seed is the program the entry was created with; compute labels it.
	seed *ir.Program
	labs map[*ir.Region]*Result
	err  error
}

// testComputeHook, when non-nil, runs at the start of every entry
// computation. Tests use it to hold a computation in flight while they
// provoke eviction.
var testComputeHook func(*ir.Program)

// SetTestComputeHook installs a hook that runs at the start of every
// cache entry computation and returns a function restoring the previous
// hook. Test-only: the service tests use it to hold a sharded computation
// in flight while they provoke cross-shard eviction pressure.
func SetTestComputeHook(hook func(*ir.Program)) (restore func()) {
	prev := testComputeHook
	testComputeHook = hook
	return func() { testComputeHook = prev }
}

// SetLabeler replaces the labeling function used for entry computation
// (nil restores LabelProgram). Configure before serving: the cache does
// not re-key on labeler identity, so switching it with resident entries
// would mix labelings — call Purge if the cache has been used.
func (c *ProgramCache) SetLabeler(fn func(*ir.Program) map[*ir.Region]*Result) {
	c.mu.Lock()
	c.labeler = fn
	c.mu.Unlock()
}

// NewProgramCache returns a cache holding up to capacity labeled
// programs (minimum 1).
func NewProgramCache(capacity int) *ProgramCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ProgramCache{
		cap:     capacity,
		entries: make(map[ir.Fingerprint]*cacheEntry),
		order:   list.New(),
	}
}

// Labeled returns the canonical program for p's content together with its
// labeling. The returned program is p itself on a miss and the previously
// labeled structurally-identical program on a hit; callers must run the
// returned program (the labeling maps are keyed by its ref identities).
// The labeling is shared and must not be mutated.
func (c *ProgramCache) Labeled(p *ir.Program) (*ir.Program, map[*ir.Region]*Result, error) {
	fp := ir.FingerprintOf(p)

	c.mu.Lock()
	e, ok := c.entries[fp]
	if ok {
		c.order.MoveToFront(e.elem)
		c.hits.Add(1)
	} else {
		e = &cacheEntry{fp: fp, seed: p}
		e.elem = c.order.PushFront(e)
		c.entries[fp] = e
		c.misses.Add(1)
	}
	e.waiters++
	c.evictExcessLocked()
	c.mu.Unlock()
	// The unpin must run even if the compute body panics, or the entry
	// would stay pinned against eviction for the process lifetime.
	defer func() {
		c.mu.Lock()
		e.waiters--
		// An entry kept over capacity because it was pinned is reclaimed
		// as soon as its last waiter drains.
		c.evictExcessLocked()
		c.mu.Unlock()
	}()

	e.once.Do(func() {
		if hook := testComputeHook; hook != nil {
			hook(e.seed)
		}
		if err := e.seed.Validate(); err != nil {
			e.err = err
			return
		}
		labeler := c.labeler
		if labeler == nil {
			labeler = LabelProgram
		}
		labs := labeler(e.seed)
		for r, res := range labs {
			if errs := res.CheckTheorems(); len(errs) > 0 {
				e.err = fmt.Errorf("region %s: theorem check failed: %v", r.Name, errs[0])
				return
			}
		}
		e.labs = labs
	})

	if e.err != nil {
		return e.seed, nil, e.err
	}
	return e.seed, e.labs, nil
}

// evictExcessLocked trims the cache to capacity, oldest first, skipping
// pinned (in-flight) entries. When every resident entry is pinned the
// cache stays over capacity until a waiter drains. Callers must hold mu.
func (c *ProgramCache) evictExcessLocked() {
	for c.order.Len() > c.cap {
		var victim *list.Element
		for el := c.order.Back(); el != nil; el = el.Prev() {
			if el.Value.(*cacheEntry).waiters == 0 {
				victim = el
				break
			}
		}
		if victim == nil {
			return
		}
		v := victim.Value.(*cacheEntry)
		c.order.Remove(victim)
		delete(c.entries, v.fp)
		c.evictions.Add(1)
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *ProgramCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// DetailedStats returns the full counter and occupancy snapshot,
// including evictions and the currently-pinned entry count.
func (c *ProgramCache) DetailedStats() CacheStats {
	c.mu.Lock()
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.order.Len(),
		Capacity:  c.cap,
	}
	for el := c.order.Front(); el != nil; el = el.Next() {
		if el.Value.(*cacheEntry).waiters > 0 {
			s.Pinned++
		}
	}
	c.mu.Unlock()
	return s
}

// ResetStats zeroes the hit/miss/eviction counters (the cached entries
// stay).
func (c *ProgramCache) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}

// Purge drops every cached entry and zeroes the counters. In-flight
// computations complete on their (now unreachable) entries; later callers
// of the same fingerprint recompute.
func (c *ProgramCache) Purge() {
	c.mu.Lock()
	c.entries = make(map[ir.Fingerprint]*cacheEntry)
	c.order.Init()
	c.mu.Unlock()
	c.ResetStats()
}
