package idem

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"refidem/internal/ir"
)

// ProgramCache memoizes validated program labelings by content
// fingerprint. Sweeps (capacity, processors, associativity, ...) rebuild
// the same program at every point; through the cache they run the full
// analysis pipeline — Validate, dataflow, dependences, RFW, Algorithm 2,
// CheckTheorems — exactly once and replay the canonical program plus its
// labeling everywhere else.
//
// The cache is safe for concurrent use (the experiment harness fans
// sweep points out across workers): the first caller of a fingerprint
// computes, concurrent callers of the same fingerprint wait on its entry,
// and eviction is LRU.
type ProgramCache struct {
	mu      sync.Mutex
	cap     int
	entries map[ir.Fingerprint]*cacheEntry
	order   *list.List // front = most recently used; values are *cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	fp   ir.Fingerprint
	elem *list.Element

	// seed is the program the entry was created with; compute labels it.
	seed *ir.Program
	labs map[*ir.Region]*Result
	err  error
}

// NewProgramCache returns a cache holding up to capacity labeled
// programs (minimum 1).
func NewProgramCache(capacity int) *ProgramCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ProgramCache{
		cap:     capacity,
		entries: make(map[ir.Fingerprint]*cacheEntry),
		order:   list.New(),
	}
}

// Labeled returns the canonical program for p's content together with its
// labeling. The returned program is p itself on a miss and the previously
// labeled structurally-identical program on a hit; callers must run the
// returned program (the labeling maps are keyed by its ref identities).
// The labeling is shared and must not be mutated.
func (c *ProgramCache) Labeled(p *ir.Program) (*ir.Program, map[*ir.Region]*Result, error) {
	fp := ir.FingerprintOf(p)

	c.mu.Lock()
	e, ok := c.entries[fp]
	if ok {
		c.order.MoveToFront(e.elem)
		c.hits.Add(1)
	} else {
		e = &cacheEntry{fp: fp, seed: p}
		e.elem = c.order.PushFront(e)
		c.entries[fp] = e
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			victim := oldest.Value.(*cacheEntry)
			c.order.Remove(oldest)
			delete(c.entries, victim.fp)
		}
		c.misses.Add(1)
	}
	c.mu.Unlock()

	e.once.Do(func() {
		if err := e.seed.Validate(); err != nil {
			e.err = err
			return
		}
		labs := LabelProgram(e.seed)
		for r, res := range labs {
			if errs := res.CheckTheorems(); len(errs) > 0 {
				e.err = fmt.Errorf("region %s: theorem check failed: %v", r.Name, errs[0])
				return
			}
		}
		e.labs = labs
	})
	if e.err != nil {
		return e.seed, nil, e.err
	}
	return e.seed, e.labs, nil
}

// Stats returns the cumulative hit and miss counts.
func (c *ProgramCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// ResetStats zeroes the hit/miss counters (the cached entries stay).
func (c *ProgramCache) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
}

// Purge drops every cached entry and zeroes the counters.
func (c *ProgramCache) Purge() {
	c.mu.Lock()
	c.entries = make(map[ir.Fingerprint]*cacheEntry)
	c.order.Init()
	c.mu.Unlock()
	c.ResetStats()
}
