package idem

import (
	"testing"

	"refidem/internal/workloads"
)

// TestLabelProgramAllocs locks in the dense pipeline's allocation budget:
// a steady-state LabelProgram call allocates only the returned Result
// structures (labels, categories, analysis artifacts), not per-reference
// scratch. The BUTS_DO1 loop is the analysis benchmark's program.
func TestLabelProgramAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under the race detector (sync.Pool sheds items)")
	}
	p := workloads.ButsDO1(8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Warm the pools.
	LabelProgram(p)
	got := testing.AllocsPerRun(20, func() { LabelProgram(p) })
	// 43 at the time of writing; the returned Result accounts for all of
	// them. Headroom for toolchain variation, but far below the map-based
	// pipeline's 2330.
	if got > 60 {
		t.Errorf("LabelProgram allocations: got %.0f, want <= 60", got)
	}
}
