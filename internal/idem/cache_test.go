package idem

import (
	"sync"
	"testing"

	"refidem/internal/ir"
)

func cacheProgram(bound int) *ir.Program {
	p := ir.NewProgram("cache_test")
	a := p.AddVar("a", 32)
	b := p.AddVar("b", 32)
	seg := &ir.Segment{ID: 0, Name: "body", Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(a, ir.Idx("i")), RHS: ir.AddE(ir.Rd(b, ir.Idx("i")), ir.C(2))},
	}}
	r := &ir.Region{Name: "loop", Kind: ir.LoopRegion, Index: "i", From: 0, To: bound, Step: 1,
		Segments: []*ir.Segment{seg}}
	r.Finalize()
	p.AddRegion(r)
	return p
}

func TestProgramCacheHitReturnsCanonical(t *testing.T) {
	c := NewProgramCache(4)
	p1, labs1, err := c.Labeled(cacheProgram(9))
	if err != nil {
		t.Fatal(err)
	}
	p2, labs2, err := c.Labeled(cacheProgram(9))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("hit did not return the canonical program")
	}
	if labs1[p1.Regions[0]] != labs2[p2.Regions[0]] {
		t.Error("hit did not share the labeling")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestProgramCacheLabelsMatchDirectPipeline(t *testing.T) {
	c := NewProgramCache(4)
	p, labs, err := c.Labeled(cacheProgram(9))
	if err != nil {
		t.Fatal(err)
	}
	direct := LabelProgram(p)
	r := p.Regions[0]
	for _, ref := range r.Refs {
		if labs[r].Label(ref) != direct[r].Label(ref) {
			t.Errorf("ref %v: cached label %v != direct label %v", ref, labs[r].Label(ref), direct[r].Label(ref))
		}
	}
}

func TestProgramCacheEvictsLRU(t *testing.T) {
	c := NewProgramCache(2)
	for bound := 1; bound <= 3; bound++ {
		if _, _, err := c.Labeled(cacheProgram(bound)); err != nil {
			t.Fatal(err)
		}
	}
	// bound=1 is the LRU victim; re-labeling it must miss again.
	if _, _, err := c.Labeled(cacheProgram(1)); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != 4 {
		t.Errorf("misses = %d, want 4 (three inserts + one post-eviction recompute)", misses)
	}
}

func TestProgramCacheConcurrentSingleCompute(t *testing.T) {
	c := NewProgramCache(4)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Labeled(cacheProgram(5)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if _, misses := c.Stats(); misses != 1 {
		t.Errorf("misses = %d, want 1 (single compute under contention)", misses)
	}
}

func TestProgramCacheReportsValidationErrors(t *testing.T) {
	c := NewProgramCache(4)
	p := cacheProgram(5)
	p.Regions[0].Step = 0 // invalid: zero step
	if _, _, err := c.Labeled(p); err == nil {
		t.Error("invalid program labeled without error")
	}
}

// TestProgramCacheEvictionDuringCompute provokes the single-flight hazard
// the waiter pinning exists for: under a capacity-1 cache, inserting a
// second program while the first is still computing must NOT evict the
// in-flight entry — a concurrent caller with the first fingerprint has to
// find it and wait instead of recomputing.
func TestProgramCacheEvictionDuringCompute(t *testing.T) {
	c := NewProgramCache(1)
	slow := cacheProgram(7)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	testComputeHook = func(p *ir.Program) {
		if p == slow {
			entered <- struct{}{}
			<-release
		}
	}
	defer func() { testComputeHook = nil }()

	type outcome struct {
		p   *ir.Program
		err error
	}
	first := make(chan outcome, 1)
	go func() {
		p, _, err := c.Labeled(slow)
		first <- outcome{p, err}
	}()
	<-entered // the slow computation is now in flight and pins its entry

	// Insert a different program; with capacity 1 this forces an eviction
	// attempt while the slow entry is pinned.
	if _, _, err := c.Labeled(cacheProgram(3)); err != nil {
		t.Fatal(err)
	}

	// A same-fingerprint caller must hit the pinned entry and wait.
	second := make(chan outcome, 1)
	go func() {
		p, _, err := c.Labeled(cacheProgram(7))
		second <- outcome{p, err}
	}()
	// Wait until the second caller has registered its lookup (a hit; with
	// the pinning broken it registers a third miss instead, which the
	// assertions below report) so releasing the computation cannot race
	// its arrival.
	for {
		hits, misses := c.Stats()
		if hits >= 1 || misses >= 3 {
			break
		}
	}
	close(release)

	o1, o2 := <-first, <-second
	if o1.err != nil || o2.err != nil {
		t.Fatalf("errors: %v / %v", o1.err, o2.err)
	}
	if o1.p != o2.p {
		t.Error("second caller did not share the in-flight entry's canonical program")
	}
	hits, misses := c.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 (slow program computed once, other program once)", misses)
	}
	if hits != 1 {
		t.Errorf("hits = %d, want 1 (second caller joined the in-flight entry)", hits)
	}
}

// TestProgramCacheDetailedStats locks the eviction counter and occupancy
// reporting the service /metricz endpoint surfaces.
func TestProgramCacheDetailedStats(t *testing.T) {
	c := NewProgramCache(2)
	for bound := 1; bound <= 3; bound++ {
		if _, _, err := c.Labeled(cacheProgram(bound)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.DetailedStats()
	if s.Misses != 3 || s.Hits != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/3", s.Hits, s.Misses)
	}
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1 (bound=1 was the LRU victim)", s.Evictions)
	}
	if s.Entries != 2 || s.Capacity != 2 {
		t.Errorf("entries/capacity = %d/%d, want 2/2", s.Entries, s.Capacity)
	}
	if s.Pinned != 0 {
		t.Errorf("pinned = %d, want 0 (no computation in flight)", s.Pinned)
	}
	c.ResetStats()
	if s := c.DetailedStats(); s.Hits != 0 || s.Misses != 0 || s.Evictions != 0 {
		t.Errorf("counters after ResetStats = %+v, want zeros", s)
	}
}

// TestProgramCacheDetailedStatsPinned observes a pinned entry while its
// computation is held in flight through the test hook.
func TestProgramCacheDetailedStatsPinned(t *testing.T) {
	c := NewProgramCache(2)
	slow := cacheProgram(11)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	restore := SetTestComputeHook(func(p *ir.Program) {
		if p == slow {
			entered <- struct{}{}
			<-release
		}
	})
	defer restore()

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Labeled(slow)
		done <- err
	}()
	<-entered
	if s := c.DetailedStats(); s.Pinned != 1 {
		t.Errorf("pinned = %d, want 1 while the computation is in flight", s.Pinned)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if s := c.DetailedStats(); s.Pinned != 0 {
		t.Errorf("pinned = %d, want 0 after the waiter drained", s.Pinned)
	}
}
