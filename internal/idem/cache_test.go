package idem

import (
	"sync"
	"testing"

	"refidem/internal/ir"
)

func cacheProgram(bound int) *ir.Program {
	p := ir.NewProgram("cache_test")
	a := p.AddVar("a", 32)
	b := p.AddVar("b", 32)
	seg := &ir.Segment{ID: 0, Name: "body", Body: []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(a, ir.Idx("i")), RHS: ir.AddE(ir.Rd(b, ir.Idx("i")), ir.C(2))},
	}}
	r := &ir.Region{Name: "loop", Kind: ir.LoopRegion, Index: "i", From: 0, To: bound, Step: 1,
		Segments: []*ir.Segment{seg}}
	r.Finalize()
	p.AddRegion(r)
	return p
}

func TestProgramCacheHitReturnsCanonical(t *testing.T) {
	c := NewProgramCache(4)
	p1, labs1, err := c.Labeled(cacheProgram(9))
	if err != nil {
		t.Fatal(err)
	}
	p2, labs2, err := c.Labeled(cacheProgram(9))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("hit did not return the canonical program")
	}
	if labs1[p1.Regions[0]] != labs2[p2.Regions[0]] {
		t.Error("hit did not share the labeling")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

func TestProgramCacheLabelsMatchDirectPipeline(t *testing.T) {
	c := NewProgramCache(4)
	p, labs, err := c.Labeled(cacheProgram(9))
	if err != nil {
		t.Fatal(err)
	}
	direct := LabelProgram(p)
	r := p.Regions[0]
	for _, ref := range r.Refs {
		if labs[r].Labels[ref] != direct[r].Labels[ref] {
			t.Errorf("ref %v: cached label %v != direct label %v", ref, labs[r].Labels[ref], direct[r].Labels[ref])
		}
	}
}

func TestProgramCacheEvictsLRU(t *testing.T) {
	c := NewProgramCache(2)
	for bound := 1; bound <= 3; bound++ {
		if _, _, err := c.Labeled(cacheProgram(bound)); err != nil {
			t.Fatal(err)
		}
	}
	// bound=1 is the LRU victim; re-labeling it must miss again.
	if _, _, err := c.Labeled(cacheProgram(1)); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != 4 {
		t.Errorf("misses = %d, want 4 (three inserts + one post-eviction recompute)", misses)
	}
}

func TestProgramCacheConcurrentSingleCompute(t *testing.T) {
	c := NewProgramCache(4)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.Labeled(cacheProgram(5)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if _, misses := c.Stats(); misses != 1 {
		t.Errorf("misses = %d, want 1 (single compute under contention)", misses)
	}
}

func TestProgramCacheReportsValidationErrors(t *testing.T) {
	c := NewProgramCache(4)
	p := cacheProgram(5)
	p.Regions[0].Step = 0 // invalid: zero step
	if _, _, err := c.Labeled(p); err == nil {
		t.Error("invalid program labeled without error")
	}
}
