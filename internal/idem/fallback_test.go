package idem

import (
	"testing"

	"refidem/internal/ir"
)

// TestRecursiveFallback: a program with a recursive call graph (only
// constructible programmatically — the parser rejects it) must label
// through the conservative interprocedural fallback: writes and reads of
// possibly-written variables stay speculative, reads of globally
// unwritten variables are idempotent read-only, and CheckTheorems accepts
// the fallback result.
func TestRecursiveFallback(t *testing.T) {
	p := ir.NewProgram("rec")
	s := p.AddVar("s")
	ro := p.AddVar("ro", 16)
	f := p.AddProc("f", []string{"x"}, nil)
	f.Body = []ir.Stmt{
		&ir.Assign{LHS: ir.Wr(s), RHS: ir.C(1)},
		&ir.Call{Callee: "f", Args: []ir.Expr{ir.Idx("x")}},
	}
	r := &ir.Region{
		Name: "r", Kind: ir.LoopRegion, Index: "i", From: 0, To: 3, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Body: []ir.Stmt{
			// Direct refs: a read of the never-written array and a write
			// of s (also written inside the recursive callee).
			&ir.Assign{LHS: ir.Wr(s), RHS: ir.Rd(ro, ir.Idx("i"))},
			&ir.Call{Callee: "f", Args: []ir.Expr{ir.Idx("i")}},
		}}},
	}
	p.AddRegion(r)
	if err := p.ResolveCalls(); err != nil {
		t.Fatal(err)
	}
	r.Finalize()
	labs := LabelProgram(p)
	res := labs[r]
	if !res.Fallback {
		t.Fatalf("expected fallback labeling for a recursive program")
	}
	for _, ref := range r.Refs {
		want := Speculative
		if ref.Var == ro && ref.Access == ir.Read {
			want = Idempotent
		}
		if got := res.Label(ref); got != want {
			t.Errorf("ref %v: label %v, want %v", ref, got, want)
		}
		if ref.Var == ro && res.Category(ref) != CatReadOnly {
			t.Errorf("ref %v: category %v, want read-only", ref, res.Category(ref))
		}
	}
	if errs := res.CheckTheorems(); len(errs) > 0 {
		t.Fatalf("CheckTheorems on fallback: %v", errs)
	}
	// The same program is analyzable but not executable: the engines must
	// refuse with an error (not a compiler panic).
	if err := ir.CheckExecutable(p); err == nil {
		t.Fatalf("recursive program reported executable")
	}
}
