//go:build race

package idem

// raceEnabled gates allocation-count assertions: sync.Pool sheds items
// nondeterministically under the race detector, so steady-state counts
// are only stable without it.
const raceEnabled = true
