//go:build !race

package idem

// raceEnabled: see race_enabled_test.go.
const raceEnabled = false
