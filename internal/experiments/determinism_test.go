package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"refidem/internal/engine"
)

// marshal renders experiment rows to canonical JSON bytes for
// byte-identity comparison.
func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFigure5Deterministic proves the labeling cache and the engine's
// pooling did not break the submission-order determinism promised by
// internal/parallel: Figure 5 regenerated serially and with full fan-out
// must be byte-identical, run after run.
func TestFigure5Deterministic(t *testing.T) {
	cfg := engine.DefaultConfig()
	cfg.Processors = 2

	var outs [][]byte
	for run := 0; run < 2; run++ {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			rows, err := Figure5(cfg, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			outs = append(outs, marshal(t, rows))
		}
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("Figure5 output %d differs from output 0:\n%s\nvs\n%s", i, outs[i], outs[0])
		}
	}
}

// TestFigureLoopsDeterministic is the loop-figure counterpart: Figure 6
// serially and with full fan-out, twice, byte-identical.
func TestFigureLoopsDeterministic(t *testing.T) {
	cfg := engine.DefaultConfig()
	cfg.Processors = 2

	var outs [][]byte
	for run := 0; run < 2; run++ {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			rows, err := FigureLoops(6, cfg, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			js := make([]LoopJSON, len(rows))
			for i, lr := range rows {
				js[i] = toLoopJSON(lr)
			}
			outs = append(outs, marshal(t, js))
		}
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("FigureLoops(6) output %d differs from output 0:\n%s\nvs\n%s", i, outs[i], outs[0])
		}
	}
}
