package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"refidem/internal/engine"
)

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, engine.DefaultConfig(), 0); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(s.Figure5) != 13 {
		t.Errorf("figure5 rows = %d", len(s.Figure5))
	}
	if len(s.Loops) != 11 {
		t.Errorf("loop rows = %d", len(s.Loops))
	}
	if len(s.Capacity) == 0 || len(s.Categories) == 0 || len(s.Processors) == 0 ||
		len(s.Directions) == 0 || len(s.Granularity) == 0 || len(s.Assoc) == 0 {
		t.Error("missing ablation sections")
	}
	for _, l := range s.Loops {
		if l.CaseSpeedup <= 0 || l.HoseSpeedup <= 0 {
			t.Errorf("%s %s: non-positive speedups", l.Bench, l.Loop)
		}
	}
}
