package experiments

import (
	"testing"

	"refidem/internal/engine"
	"refidem/internal/workloads"
)

// sweepCfg is a small machine so sweep tests stay fast.
func sweepCfg() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Processors = 2
	return cfg
}

// assertLabeledOnce runs a sweep of n points over one program and asserts
// the labeling pipeline ran exactly once, with every other point served
// from the fingerprint cache.
func assertLabeledOnce(t *testing.T, name string, n int, sweep func() error) {
	t.Helper()
	ResetLabelCache()
	if err := sweep(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	hits, misses := LabelCacheStats()
	if misses != 1 {
		t.Errorf("%s: labeling computed %d times, want exactly 1", name, misses)
	}
	if hits != int64(n-1) {
		t.Errorf("%s: cache hits = %d, want %d (one per remaining sweep point)", name, hits, n-1)
	}
}

func TestAblationCapacityLabelsOnce(t *testing.T) {
	spec, ok := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	if !ok {
		t.Fatal("TOMCATV MAIN_DO80 not found")
	}
	caps := []int{8, 32, 128, 512}
	assertLabeledOnce(t, "AblationCapacity", len(caps), func() error {
		_, err := AblationCapacity(spec, caps, sweepCfg(), 0)
		return err
	})
}

func TestAblationProcessorsLabelsOnce(t *testing.T) {
	spec, ok := workloads.FindLoop("MGRID", "RESID_DO600")
	if !ok {
		t.Fatal("MGRID RESID_DO600 not found")
	}
	procs := []int{1, 2, 4}
	assertLabeledOnce(t, "AblationProcessors", len(procs), func() error {
		_, err := AblationProcessors(spec, procs, sweepCfg(), 0)
		return err
	})
}

func TestAblationAssociativityLabelsOnce(t *testing.T) {
	spec, ok := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	if !ok {
		t.Fatal("TOMCATV MAIN_DO80 not found")
	}
	// AblationAssociativity sweeps its five built-in organizations.
	assertLabeledOnce(t, "AblationAssociativity", 5, func() error {
		_, err := AblationAssociativity(spec, sweepCfg(), 0)
		return err
	})
}

// TestCacheSharedAcrossWorkers runs a sweep with maximum fan-out and
// asserts the workers still share one labeling computation.
func TestCacheSharedAcrossWorkers(t *testing.T) {
	spec, ok := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	if !ok {
		t.Fatal("TOMCATV MAIN_DO80 not found")
	}
	ResetLabelCache()
	caps := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	if _, err := AblationCapacity(spec, caps, sweepCfg(), len(caps)); err != nil {
		t.Fatal(err)
	}
	_, misses := LabelCacheStats()
	if misses != 1 {
		t.Errorf("parallel sweep computed the labeling %d times, want exactly 1", misses)
	}
}
