package experiments

import (
	"math"
	"testing"

	"refidem/internal/idem"
	"refidem/internal/ir"
)

// twoRegionDirectionProgram builds a program whose first region's
// labeling depends on inter-region liveness: r1 def-before-uses the
// scalar x every iteration, and r2 never references x, so x is
// privatizable (dead after r1) under program-level liveness but blocked
// from privatization under the per-region everything-live default.
func twoRegionDirectionProgram() *ir.Program {
	p := ir.NewProgram("direction_two_regions")
	x := p.AddVar("x")
	w := p.AddVar("w", 16)
	y := p.AddVar("y", 16)
	r1 := &ir.Region{Name: "r1", Kind: ir.LoopRegion, Index: "i", From: 0, To: 7, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Name: "body", Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(x), RHS: ir.MulE(ir.Idx("i"), ir.C(2))},
			&ir.Assign{LHS: ir.Wr(w, ir.Idx("i")), RHS: ir.Rd(x)},
		}}}}
	r1.Finalize()
	r2 := &ir.Region{Name: "r2", Kind: ir.LoopRegion, Index: "i", From: 0, To: 7, Step: 1,
		Segments: []*ir.Segment{{ID: 0, Name: "body", Body: []ir.Stmt{
			&ir.Assign{LHS: ir.Wr(y, ir.Idx("i")), RHS: ir.Rd(w, ir.Idx("i"))},
		}}}}
	r2.Finalize()
	p.AddRegion(r1)
	p.AddRegion(r2)
	return p
}

// TestAblationDepDirectionMultiRegion pins the bugfix: the ablation must
// label multi-region programs with the same inter-region liveness
// LabelProgram uses everywhere else, not region 0 under the per-region
// conservative default.
func TestAblationDepDirectionMultiRegion(t *testing.T) {
	make_ := func() *ir.Program { return twoRegionDirectionProgram() }
	rows := AblationDepDirection([]NamedProgram{{Name: "two-regions", Make: make_}})
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}

	// Expected: aggregate static idempotent fraction over all regions of
	// LabelProgram / LabelProgramConservative.
	wantPrecise := staticIdemFraction(idem.LabelProgram(make_()))
	wantCons := staticIdemFraction(idem.LabelProgramConservative(make_()))
	if math.Abs(rows[0].PreciseFrac-wantPrecise) > 1e-12 {
		t.Errorf("precise frac = %v, want %v", rows[0].PreciseFrac, wantPrecise)
	}
	if math.Abs(rows[0].ConservativeFrac-wantCons) > 1e-12 {
		t.Errorf("conservative frac = %v, want %v", rows[0].ConservativeFrac, wantCons)
	}

	// The old implementation labeled only Regions[0] with the per-region
	// conservative live-out default (everything live). Under program
	// liveness x is dead after r1, so r1's labeling differs — guard that
	// the two disagree here, i.e. this test actually exercises the fix.
	p := make_()
	old := idem.LabelRegion(p, p.Regions[0], nil)
	oldFrac, _ := old.IdempotentFraction()
	if math.Abs(rows[0].PreciseFrac-oldFrac) < 1e-12 {
		t.Fatalf("test program does not distinguish program-level from per-region liveness (both %v)", oldFrac)
	}
}

// TestAblationDepDirectionSingleRegionUnchanged pins that the canonical
// single-region inputs (the golden-figure rows) report the same fractions
// as the per-region computation they historically used.
func TestAblationDepDirectionSingleRegionUnchanged(t *testing.T) {
	rows := AblationDepDirection(DefaultDirectionPrograms())
	for i, np := range DefaultDirectionPrograms() {
		p := np.Make()
		if len(p.Regions) != 1 {
			t.Fatalf("%s: expected single region", np.Name)
		}
		pf, _ := idem.LabelRegion(p, p.Regions[0], nil).IdempotentFraction()
		p2 := np.Make()
		cf, _ := idem.LabelRegionConservative(p2, p2.Regions[0], nil).IdempotentFraction()
		if math.Abs(rows[i].PreciseFrac-pf) > 1e-12 || math.Abs(rows[i].ConservativeFrac-cf) > 1e-12 {
			t.Errorf("%s: rows = (%v, %v), per-region = (%v, %v)",
				np.Name, rows[i].PreciseFrac, rows[i].ConservativeFrac, pf, cf)
		}
	}
}
