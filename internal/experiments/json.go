package experiments

import (
	"encoding/json"
	"io"

	"refidem/internal/engine"
	"refidem/internal/ir"
	"refidem/internal/workloads"
)

// LoopJSON is the serializable slice of a LoopResult.
type LoopJSON struct {
	Bench         string  `json:"bench"`
	Loop          string  `json:"loop"`
	Figure        int     `json:"figure"`
	ReadOnly      float64 `json:"read_only_frac"`
	Private       float64 `json:"private_frac"`
	SharedDep     float64 `json:"shared_dependent_frac"`
	FullyInd      float64 `json:"fully_independent_frac"`
	Idem          float64 `json:"idempotent_frac"`
	SeqCycles     int64   `json:"seq_cycles"`
	HoseCycles    int64   `json:"hose_cycles"`
	CaseCycles    int64   `json:"case_cycles"`
	HoseSpeedup   float64 `json:"hose_speedup"`
	CaseSpeedup   float64 `json:"case_speedup"`
	HoseOverflows int64   `json:"hose_overflows"`
	CaseOverflows int64   `json:"case_overflows"`
}

func toLoopJSON(lr LoopResult) LoopJSON {
	return LoopJSON{
		Bench: lr.Spec.Bench, Loop: lr.Spec.Name, Figure: lr.Spec.Fig,
		ReadOnly: lr.ReadOnly, Private: lr.Private, SharedDep: lr.SharedDep,
		FullyInd: lr.FullyInd, Idem: lr.Idem,
		SeqCycles: lr.SeqCycles, HoseCycles: lr.HoseCycles, CaseCycles: lr.CaseCycles,
		HoseSpeedup: lr.HoseSpeedup, CaseSpeedup: lr.CaseSpeedup,
		HoseOverflows: lr.HoseStats.Overflows, CaseOverflows: lr.CaseStats.Overflows,
	}
}

// Summary bundles every experiment's data in one JSON document, so the
// whole evaluation can be re-plotted outside Go.
type Summary struct {
	Figure5     []Fig5Row             `json:"figure5"`
	Loops       []LoopJSON            `json:"figures6to9"`
	Capacity    []CapacityPoint       `json:"ablation_capacity"`
	Categories  []CategoryAblationRow `json:"ablation_categories"`
	Processors  []ProcessorPoint      `json:"ablation_processors"`
	Directions  []DirectionRow        `json:"ablation_directions"`
	Granularity []GranularityPoint    `json:"ablation_granularity"`
	Assoc       []AssocPoint          `json:"ablation_associativity"`
	Ensemble    []EnsembleRow         `json:"ablation_ensemble"`
}

// CollectSummary runs every experiment and gathers the results.
func CollectSummary(cfg engine.Config, workers int) (*Summary, error) {
	s := &Summary{}
	var err error
	if s.Figure5, err = Figure5(cfg, workers); err != nil {
		return nil, err
	}
	for _, fig := range []int{6, 7, 8, 9} {
		results, err := FigureLoops(fig, cfg, workers)
		if err != nil {
			return nil, err
		}
		for _, lr := range results {
			s.Loops = append(s.Loops, toLoopJSON(lr))
		}
	}
	tom, _ := workloads.FindLoop("TOMCATV", "MAIN_DO80")
	if s.Capacity, err = AblationCapacity(tom, []int{8, 16, 32, 64, 128, 256, 512, 1024}, cfg, workers); err != nil {
		return nil, err
	}
	if s.Categories, err = AblationCategories(tom, cfg); err != nil {
		return nil, err
	}
	resid, _ := workloads.FindLoop("MGRID", "RESID_DO600")
	if s.Processors, err = AblationProcessors(resid, []int{1, 2, 4, 8, 16}, cfg, workers); err != nil {
		return nil, err
	}
	s.Directions = AblationDepDirection(DefaultDirectionPrograms())
	if s.Granularity, err = AblationGranularity(residNamed(resid), []int{1, 2, 3, 5, 6}, cfg, workers); err != nil {
		return nil, err
	}
	if s.Assoc, err = AblationAssociativity(tom, cfg, workers); err != nil {
		return nil, err
	}
	if s.Ensemble, err = AblationEnsemble(DefaultEnsemblePrograms(), engine.PressureConfig()); err != nil {
		return nil, err
	}
	return s, nil
}

func residNamed(spec workloads.LoopSpec) NamedProgram {
	return NamedProgram{Name: spec.String(), Make: func() *ir.Program { return spec.Program() }}
}

// WriteJSON runs everything and writes the indented JSON document.
func WriteJSON(w io.Writer, cfg engine.Config, workers int) error {
	s, err := CollectSummary(cfg, workers)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
