package experiments

import (
	"reflect"
	"testing"

	"refidem/internal/engine"
)

// TestAblationEnsembleInvariants pins the figure's structural claims:
// the run is deterministic, the range member never moves labels or
// probabilities (its row equals the exact row), the speculative profile
// member strictly increases the promotable fraction on at least one
// pinned generator program, and promotable fractions never decrease as
// members are added.
func TestAblationEnsembleInvariants(t *testing.T) {
	cfg := engine.PressureConfig()
	rows, err := AblationEnsemble(DefaultEnsemblePrograms(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := AblationEnsemble(DefaultEnsemblePrograms(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Error("ensemble ablation is not deterministic")
	}

	perProg := make(map[string]map[string]EnsembleRow)
	for _, r := range rows {
		if perProg[r.Program] == nil {
			perProg[r.Program] = make(map[string]EnsembleRow)
		}
		perProg[r.Program][r.Members] = r
	}
	gain := false
	for prog, m := range perProg {
		exact, rng, mwf, full := m["exact"], m["+range"], m["+mwf"], m["+profile"]
		if exact.PromFrac != rng.PromFrac || exact.Speedup != rng.Speedup || exact.Overflows != rng.Overflows {
			t.Errorf("%s: the range member changed measured behavior (%+v vs %+v)", prog, exact, rng)
		}
		if mwf.PromFrac < rng.PromFrac || full.PromFrac < mwf.PromFrac {
			t.Errorf("%s: promotable fraction decreased along the member ladder", prog)
		}
		if full.PromFrac > mwf.PromFrac {
			gain = true
		}
		for _, r := range m {
			if r.PromFrac < 0 || r.PromFrac > 1 {
				t.Errorf("%s/%s: promotable fraction %v out of range", prog, r.Members, r.PromFrac)
			}
		}
	}
	if !gain {
		t.Error("the profile member must strictly increase the promotable fraction on at least one program")
	}
}
