package experiments

import (
	"fmt"
	"strings"

	"refidem/internal/report"
)

// RenderFigure5 draws the Figure 5 stacked bars: fraction of idempotent
// references in non-parallelizable sections, split into read-only ('#'),
// private ('+') and shared-dependent ('*').
func RenderFigure5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5: Fraction of idempotent references in code sections that\n")
	b.WriteString("cannot be detected as parallel (# read-only, + private, * shared-dependent)\n\n")
	for _, r := range rows {
		if r.FullyParallel {
			fmt.Fprintf(&b, "%-12s (fully parallel: no non-parallelizable sections)\n", r.Bench)
			continue
		}
		b.WriteString(report.StackedBar(r.Bench,
			[]float64{r.ReadOnly, r.Private, r.SharedDep},
			[]rune{'#', '+', '*'}, 1, 50))
		b.WriteString("\n")
	}
	over := 0
	for _, r := range rows {
		if r.Total > 0.6 {
			over++
		}
	}
	fmt.Fprintf(&b, "\n%d of %d benchmarks have more than 60%% idempotent references.\n", over, len(rows))
	return b.String()
}

var figureTitles = map[int]string{
	6: "Figure 6: loops with idempotent references in category read-only",
	7: "Figure 7: loops with idempotent references in category private",
	8: "Figure 8: loops with idempotent references in category shared-dependent",
	9: "Figure 9: fully-independent regions",
}

// categoryForFig names the category panel (a) of each loop figure reports.
func categoryForFig(fig int, lr LoopResult) float64 {
	switch fig {
	case 6:
		return lr.ReadOnly
	case 7:
		return lr.Private
	case 8:
		return lr.SharedDep
	default:
		return lr.Idem
	}
}

// RenderFigureLoops draws panels (a) (category reference ratio) and (b)
// (loop speedups before/after labeling) of Figures 6-9.
func RenderFigureLoops(fig int, results []LoopResult) string {
	var b strings.Builder
	b.WriteString(figureTitles[fig])
	b.WriteString("\n\n(a) ratio of category references to total memory references\n")
	for _, lr := range results {
		b.WriteString(report.Bar(lr.Spec.Bench+" "+lr.Spec.Name, categoryForFig(fig, lr), 1, 40))
		b.WriteString("\n")
	}
	b.WriteString("\n(b) loop speedups relative to a uniprocessor, before (HOSE) and after (CASE) labeling\n")
	t := report.NewTable("", "loop", "HOSE", "CASE", "HOSE ovf", "CASE ovf", "peak spec HOSE", "peak spec CASE")
	for _, lr := range results {
		t.AddRowf(lr.Spec.String(), lr.HoseSpeedup, lr.CaseSpeedup,
			lr.HoseStats.Overflows, lr.CaseStats.Overflows,
			lr.HoseStats.PeakSpecOccupancy, lr.CaseStats.PeakSpecOccupancy)
	}
	b.WriteString(t.String())
	if fig == 9 {
		b.WriteString("\n(c) idempotent sub-categories (read-only vs write-shared)\n")
		t2 := report.NewTable("", "loop", "read-only", "fully-indep (shared)", "private")
		for _, lr := range results {
			t2.AddRowf(lr.Spec.String(), lr.ReadOnly, lr.FullyInd, lr.Private)
		}
		b.WriteString(t2.String())
	}
	return b.String()
}

// RenderCapacity draws the capacity-sweep ablation.
func RenderCapacity(loop string, pts []CapacityPoint) string {
	t := report.NewTable(
		fmt.Sprintf("Ablation: speculative storage capacity sweep on %s", loop),
		"capacity (entries)", "HOSE speedup", "CASE speedup", "HOSE overflows")
	for _, p := range pts {
		t.AddRowf(p.Capacity, p.HoseSpeedup, p.CaseSpeedup, p.HoseOverflows)
	}
	return t.String()
}

// RenderCategories draws the per-category labeling ablation.
func RenderCategories(loop string, rows []CategoryAblationRow) string {
	t := report.NewTable(
		fmt.Sprintf("Ablation: labeling restricted by category on %s", loop),
		"categories enabled", "speedup", "idempotent fraction")
	for _, r := range rows {
		t.AddRowf(r.Enabled, r.Speedup, r.IdemFrac)
	}
	return t.String()
}

// RenderAssociativity draws the storage-organization ablation.
func RenderAssociativity(loop string, pts []AssocPoint) string {
	t := report.NewTable(
		fmt.Sprintf("Ablation: speculative storage organization (equal capacity) on %s", loop),
		"organization", "HOSE speedup", "CASE speedup", "HOSE overflows")
	for _, p := range pts {
		t.AddRowf(p.Label, p.HoseSpeedup, p.CaseSpeedup, p.HoseOverflows)
	}
	return t.String()
}

// RenderGranularity draws the segment-granularity ablation.
func RenderGranularity(loop string, pts []GranularityPoint) string {
	t := report.NewTable(
		fmt.Sprintf("Ablation: segment granularity (iterations per segment) on %s", loop),
		"iters/segment", "HOSE speedup", "CASE speedup", "HOSE overflows", "HOSE peak", "CASE peak")
	for _, p := range pts {
		t.AddRowf(p.Block, p.HoseSpeedup, p.CaseSpeedup, p.HoseOverflows, p.HosePeak, p.CasePeak)
	}
	return t.String()
}

// RenderDirections draws the dependence-direction ablation.
func RenderDirections(rows []DirectionRow) string {
	t := report.NewTable(
		"Ablation: idempotent fraction with precise vs direction-less dependences",
		"loop", "precise", "conservative")
	for _, r := range rows {
		t.AddRowf(r.Loop, r.PreciseFrac, r.ConservativeFrac)
	}
	return t.String()
}

// RenderProcessors draws the processor scaling ablation.
func RenderProcessors(loop string, pts []ProcessorPoint) string {
	t := report.NewTable(
		fmt.Sprintf("Ablation: processor count sweep on %s", loop),
		"processors", "HOSE speedup", "CASE speedup")
	for _, p := range pts {
		t.AddRowf(p.Processors, p.HoseSpeedup, p.CaseSpeedup)
	}
	return t.String()
}
