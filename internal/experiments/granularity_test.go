package experiments

import (
	"strings"
	"testing"

	"refidem/internal/engine"
	"refidem/internal/ir"
	"refidem/internal/workloads"
)

func residProgram() NamedProgram {
	spec, _ := workloads.FindLoop("MGRID", "RESID_DO600")
	return NamedProgram{Name: spec.String(), Make: func() *ir.Program { return spec.Program() }}
}

func TestAblationGranularity(t *testing.T) {
	pts, err := AblationGranularity(residProgram(), []int{1, 2, 5}, engine.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// The paper's argument: larger segments exacerbate overflow under
	// HOSE (more locations per segment), while CASE — tracking nothing on
	// this fully-independent loop — degrades far less.
	if pts[2].HoseOverflows <= pts[0].HoseOverflows {
		t.Errorf("HOSE overflows should grow with segment size: %d -> %d",
			pts[0].HoseOverflows, pts[2].HoseOverflows)
	}
	if pts[2].HoseSpeedup >= pts[0].HoseSpeedup {
		t.Errorf("HOSE should degrade with segment size: %.2f -> %.2f",
			pts[0].HoseSpeedup, pts[2].HoseSpeedup)
	}
	hoseDrop := pts[0].HoseSpeedup - pts[2].HoseSpeedup
	caseDrop := pts[0].CaseSpeedup - pts[2].CaseSpeedup
	if caseDrop >= hoseDrop {
		t.Errorf("CASE should degrade less than HOSE: CASE drop %.2f vs HOSE drop %.2f",
			caseDrop, hoseDrop)
	}
	for _, p := range pts {
		if p.CasePeak != 0 {
			t.Errorf("block %d: fully-independent CASE should track nothing, peak %d", p.Block, p.CasePeak)
		}
	}
	if s := RenderGranularity("x", pts); !strings.Contains(s, "iters/segment") {
		t.Error("render broken")
	}
}

func TestAblationGranularityRejectsBadBlocks(t *testing.T) {
	if _, err := AblationGranularity(residProgram(), []int{7}, engine.DefaultConfig(), 0); err == nil {
		t.Error("non-dividing block accepted (RESID has 30 iterations)")
	}
}

func TestAblationDepDirectionShape(t *testing.T) {
	rows := AblationDepDirection(DefaultDirectionPrograms())
	if len(rows) < 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.ConservativeFrac > r.PreciseFrac+1e-9 {
			t.Errorf("%s: conservative %.2f exceeds precise %.2f", r.Loop, r.ConservativeFrac, r.PreciseFrac)
		}
	}
	// BUTS is the canonical case: the precise direction information is
	// what allows the S1 reads to be labeled.
	if rows[0].PreciseFrac-rows[0].ConservativeFrac < 0.3 {
		t.Errorf("BUTS should lose >30 points without direction info: %.2f vs %.2f",
			rows[0].PreciseFrac, rows[0].ConservativeFrac)
	}
	if s := RenderDirections(rows); !strings.Contains(s, "precise") {
		t.Error("render broken")
	}
}
