// Package experiments regenerates every figure of the paper's evaluation
// (§5): Figure 5 (idempotent reference fractions across the 13-benchmark
// suite) and Figures 6-9 (per-category loop studies: reference ratios and
// HOSE-vs-CASE speedups), plus the ablations DESIGN.md calls out.
// cmd/figures prints them; bench_test.go wraps each in a testing.B
// benchmark.
package experiments

import (
	"fmt"

	"refidem/internal/engine"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/parallel"
	"refidem/internal/workloads"
)

// LoopResult holds everything the loop figures report about one loop.
type LoopResult struct {
	Spec workloads.LoopSpec
	// Fractions of dynamic references per idempotency category, measured
	// on the CASE run's retired executions.
	ReadOnly  float64
	Private   float64
	SharedDep float64
	FullyInd  float64
	Idem      float64

	SeqCycles   int64
	HoseCycles  int64
	CaseCycles  int64
	HoseSpeedup float64
	CaseSpeedup float64

	HoseStats engine.Stats
	CaseStats engine.Stats
}

// labelCache memoizes program labelings by content fingerprint across
// every experiment and sweep in the process. Sweeps rebuild the same
// program per point; the cache runs dataflow+deps+RFW+Algorithm 2 (and
// the theorem cross-check) once per distinct program and shares the
// canonical labeled program with all workers — parallel.Map fan-outs
// included, since the cache is concurrency-safe.
var labelCache = idem.NewProgramCache(128)

// LabelCacheStats exposes the shared labeling cache's hit/miss counters
// (tests assert sweeps label each program exactly once).
func LabelCacheStats() (hits, misses int64) { return labelCache.Stats() }

// ResetLabelCache clears the shared labeling cache and its counters.
func ResetLabelCache() { labelCache.Purge() }

// RunLoop executes one named loop under all three models and cross-checks
// correctness (any mismatch is an error: the experiments refuse to report
// numbers from a broken run).
func RunLoop(spec workloads.LoopSpec, cfg engine.Config) (LoopResult, error) {
	p := spec.Program()
	return runProgram(p, cfg, LoopResult{Spec: spec})
}

func runProgram(p *ir.Program, cfg engine.Config, out LoopResult) (LoopResult, error) {
	p, labs, err := labelCache.Labeled(p)
	if err != nil {
		return out, fmt.Errorf("%s: %w", p.Name, err)
	}
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		return out, err
	}
	hose, err := engine.RunSpeculative(p, labs, cfg, engine.HOSE)
	if err != nil {
		return out, err
	}
	caseR, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
	if err != nil {
		return out, err
	}
	if err := engine.LiveOutMismatch(p, labs, seq, hose); err != nil {
		return out, fmt.Errorf("%s: HOSE incorrect: %w", p.Name, err)
	}
	if err := engine.LiveOutMismatch(p, labs, seq, caseR); err != nil {
		return out, fmt.Errorf("%s: CASE incorrect: %w", p.Name, err)
	}
	s := caseR.Stats
	total := float64(s.DynRefs)
	if total > 0 {
		out.ReadOnly = float64(s.RefsByCategory[idem.CatReadOnly]) / total
		out.Private = float64(s.RefsByCategory[idem.CatPrivate]) / total
		out.SharedDep = float64(s.RefsByCategory[idem.CatSharedDependent]) / total
		out.FullyInd = float64(s.RefsByCategory[idem.CatFullyIndependent]) / total
		out.Idem = float64(s.IdemRefs) / total
	}
	out.SeqCycles = seq.Cycles
	out.HoseCycles = hose.Cycles
	out.CaseCycles = caseR.Cycles
	out.HoseSpeedup = float64(seq.Cycles) / float64(hose.Cycles)
	out.CaseSpeedup = float64(seq.Cycles) / float64(caseR.Cycles)
	out.HoseStats = hose.Stats
	out.CaseStats = caseR.Stats
	return out, nil
}

// Fig5Row is one benchmark bar of Figure 5.
type Fig5Row struct {
	Bench         string  `json:"bench"`
	FullyParallel bool    `json:"fully_parallel"`
	ReadOnly      float64 `json:"read_only_frac"`
	Private       float64 `json:"private_frac"`
	SharedDep     float64 `json:"shared_dependent_frac"`
	Total         float64 `json:"idempotent_frac"`
}

// Figure5 measures the fraction of idempotent references (by category) in
// the non-parallelizable sections of the 13-benchmark suite. workers
// bounds the parallel simulator fan-out (<=0: all cores).
func Figure5(cfg engine.Config, workers int) ([]Fig5Row, error) {
	suite := workloads.Suite()
	type res struct {
		row Fig5Row
		err error
	}
	rows := parallel.Map(len(suite), workers, func(i int) res {
		b := suite[i]
		if b.FullyParallel {
			// No non-parallelizable sections: the Figure 5 fraction is
			// measured over an empty set.
			return res{row: Fig5Row{Bench: b.Name, FullyParallel: true}}
		}
		lr, err := runProgram(b.Program(), cfg, LoopResult{})
		if err != nil {
			return res{err: fmt.Errorf("%s: %w", b.Name, err)}
		}
		return res{row: Fig5Row{
			Bench:     b.Name,
			ReadOnly:  lr.ReadOnly,
			Private:   lr.Private,
			SharedDep: lr.SharedDep,
			Total:     lr.Idem,
		}}
	})
	out := make([]Fig5Row, 0, len(rows))
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.row)
	}
	return out, nil
}

// FigureLoops runs the named loops of one figure (6, 7, 8 or 9).
func FigureLoops(fig int, cfg engine.Config, workers int) ([]LoopResult, error) {
	var specs []workloads.LoopSpec
	for _, s := range workloads.NamedLoops() {
		if s.Fig == fig {
			specs = append(specs, s)
		}
	}
	type res struct {
		lr  LoopResult
		err error
	}
	rows := parallel.Map(len(specs), workers, func(i int) res {
		lr, err := RunLoop(specs[i], cfg)
		return res{lr: lr, err: err}
	})
	out := make([]LoopResult, 0, len(rows))
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.lr)
	}
	return out, nil
}

// CapacityPoint is one speculative-storage-capacity sweep sample.
type CapacityPoint struct {
	Capacity      int     `json:"capacity"`
	HoseSpeedup   float64 `json:"hose_speedup"`
	CaseSpeedup   float64 `json:"case_speedup"`
	HoseOverflows int64   `json:"hose_overflows"`
}

// AblationCapacity sweeps the speculative storage capacity on one loop,
// showing where HOSE falls off the overflow cliff and how insensitive
// CASE is (the central claim of the paper).
func AblationCapacity(spec workloads.LoopSpec, capacities []int, cfg engine.Config, workers int) ([]CapacityPoint, error) {
	type res struct {
		pt  CapacityPoint
		err error
	}
	rows := parallel.Map(len(capacities), workers, func(i int) res {
		c := cfg
		c.SpecCapacity = capacities[i]
		lr, err := RunLoop(spec, c)
		if err != nil {
			return res{err: err}
		}
		return res{pt: CapacityPoint{
			Capacity:      capacities[i],
			HoseSpeedup:   lr.HoseSpeedup,
			CaseSpeedup:   lr.CaseSpeedup,
			HoseOverflows: lr.HoseStats.Overflows,
		}}
	})
	out := make([]CapacityPoint, 0, len(rows))
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.pt)
	}
	return out, nil
}

// CategoryAblationRow reports CASE speedup with only a subset of
// categories allowed to bypass speculative storage.
type CategoryAblationRow struct {
	Enabled  string  `json:"enabled"`
	Speedup  float64 `json:"speedup"`
	IdemFrac float64 `json:"idempotent_frac"`
}

// AblationCategories re-runs a loop with labeling restricted to one
// category at a time (demoting a reference to speculative is always
// safe), quantifying each category's contribution to the CASE speedup.
func AblationCategories(spec workloads.LoopSpec, cfg engine.Config) ([]CategoryAblationRow, error) {
	cats := []struct {
		name string
		keep map[idem.Category]bool
	}{
		{"none (HOSE)", map[idem.Category]bool{}},
		{"read-only", map[idem.Category]bool{idem.CatReadOnly: true}},
		{"private", map[idem.Category]bool{idem.CatPrivate: true}},
		{"shared-dependent", map[idem.Category]bool{idem.CatSharedDependent: true}},
		{"all (CASE)", map[idem.Category]bool{
			idem.CatReadOnly: true, idem.CatPrivate: true,
			idem.CatSharedDependent: true, idem.CatFullyIndependent: true,
		}},
	}
	p := spec.Program()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	seq, err := engine.RunSequential(p, cfg)
	if err != nil {
		return nil, err
	}
	var out []CategoryAblationRow
	for _, c := range cats {
		labs := idem.LabelProgram(p)
		for _, res := range labs {
			for _, ref := range res.Region.Refs {
				if res.Label(ref) == idem.Idempotent && !c.keep[res.Category(ref)] {
					res.SetLabel(ref, idem.Speculative)
				}
			}
		}
		r, err := engine.RunSpeculative(p, labs, cfg, engine.CASE)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		if err := engine.LiveOutMismatch(p, labs, seq, r); err != nil {
			return nil, fmt.Errorf("%s: incorrect: %w", c.name, err)
		}
		frac := 0.0
		if r.Stats.DynRefs > 0 {
			frac = float64(r.Stats.IdemRefs) / float64(r.Stats.DynRefs)
		}
		out = append(out, CategoryAblationRow{
			Enabled:  c.name,
			Speedup:  float64(seq.Cycles) / float64(r.Cycles),
			IdemFrac: frac,
		})
	}
	return out, nil
}

// GranularityPoint is one segment-size sample of the granularity sweep.
type GranularityPoint struct {
	Block         int     `json:"iters_per_segment"`
	HoseSpeedup   float64 `json:"hose_speedup"`
	CaseSpeedup   float64 `json:"case_speedup"`
	HoseOverflows int64   `json:"hose_overflows"`
	HosePeak      int     `json:"hose_peak_occupancy"`
	CasePeak      int     `json:"case_peak_occupancy"`
}

// AblationGranularity re-partitions a loop into segments of `block`
// iterations each and measures both models. This quantifies the paper's
// introductory argument: "larger threads exacerbate the overflow problem
// but are preferable to smaller threads, as larger threads uncover more
// parallelism" — under CASE, idempotent references don't occupy
// speculative storage, so large segments become affordable.
func AblationGranularity(np NamedProgram, blocks []int, cfg engine.Config, workers int) ([]GranularityPoint, error) {
	type res struct {
		pt  GranularityPoint
		err error
	}
	rows := parallel.Map(len(blocks), workers, func(i int) res {
		p, err := ir.BlockProgram(np.Make(), blocks[i])
		if err != nil {
			return res{err: fmt.Errorf("block %d: %w", blocks[i], err)}
		}
		lr, err := runProgram(p, cfg, LoopResult{})
		if err != nil {
			return res{err: fmt.Errorf("block %d: %w", blocks[i], err)}
		}
		return res{pt: GranularityPoint{
			Block:         blocks[i],
			HoseSpeedup:   lr.HoseSpeedup,
			CaseSpeedup:   lr.CaseSpeedup,
			HoseOverflows: lr.HoseStats.Overflows,
			HosePeak:      lr.HoseStats.PeakSpecOccupancy,
			CasePeak:      lr.CaseStats.PeakSpecOccupancy,
		}}
	})
	out := make([]GranularityPoint, 0, len(rows))
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.pt)
	}
	return out, nil
}

// DirectionRow compares idempotent fractions under the precise
// (execution-order directed) dependence analysis and under a conservative
// direction-less one.
type DirectionRow struct {
	Loop             string  `json:"loop"`
	PreciseFrac      float64 `json:"precise_frac"`
	ConservativeFrac float64 `json:"conservative_frac"`
}

// AssocPoint is one speculative-storage-organization sample.
type AssocPoint struct {
	Label         string  `json:"organization"`
	HoseSpeedup   float64 `json:"hose_speedup"`
	CaseSpeedup   float64 `json:"case_speedup"`
	HoseOverflows int64   `json:"hose_overflows"`
}

// AblationAssociativity compares speculative storage organizations at
// equal total capacity: fully associative versus set-associative with
// increasing conflict pressure. Set conflicts overflow before capacity is
// exhausted, so HOSE degrades; CASE's bypassed references feel none of it.
func AblationAssociativity(spec workloads.LoopSpec, cfg engine.Config, workers int) ([]AssocPoint, error) {
	orgs := []struct {
		label string
		sets  int
	}{
		{"fully associative", 0},
		{"16 sets x 8 ways", 16},
		{"32 sets x 4 ways", 32},
		{"64 sets x 2 ways", 64},
		{"128 sets x 1 way", 128},
	}
	type res struct {
		pt  AssocPoint
		err error
	}
	rows := parallel.Map(len(orgs), workers, func(i int) res {
		c := cfg
		c.SpecSets = orgs[i].sets
		lr, err := RunLoop(spec, c)
		if err != nil {
			return res{err: fmt.Errorf("%s: %w", orgs[i].label, err)}
		}
		return res{pt: AssocPoint{
			Label:         orgs[i].label,
			HoseSpeedup:   lr.HoseSpeedup,
			CaseSpeedup:   lr.CaseSpeedup,
			HoseOverflows: lr.HoseStats.Overflows,
		}}
	})
	out := make([]AssocPoint, 0, len(rows))
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.pt)
	}
	return out, nil
}

// NamedProgram pairs a display name with a fresh-program constructor
// (labelings must not share reference identities across runs).
type NamedProgram struct {
	Name string
	Make func() *ir.Program
}

// AblationDepDirection quantifies how much the execution-order direction
// information in the dependence analysis is worth: with bidirectional
// may-dependences, anti-dependence sources become sinks and Lemma 3
// forces them speculative. (Static fractions; the BUTS_DO1 S1 reads of
// Figure 4 are the canonical casualties.)
//
// Both labelings run at program level so multi-region programs see the
// same inter-region liveness every other consumer of LabelProgram does;
// the reported fraction aggregates static references across all regions.
// For the canonical single-region loops this equals the former per-region
// computation with the conservative live-out default.
func AblationDepDirection(progs []NamedProgram) []DirectionRow {
	var out []DirectionRow
	for _, np := range progs {
		pf := staticIdemFraction(idem.LabelProgram(np.Make()))
		cf := staticIdemFraction(idem.LabelProgramConservative(np.Make()))
		out = append(out, DirectionRow{Loop: np.Name, PreciseFrac: pf, ConservativeFrac: cf})
	}
	return out
}

// staticIdemFraction is the fraction of static references labeled
// idempotent over every region of the program.
func staticIdemFraction(labs map[*ir.Region]*idem.Result) float64 {
	total, cnt := 0, 0
	for _, res := range labs {
		total += len(res.Region.Refs)
		for _, ref := range res.Region.Refs {
			if res.Label(ref) == idem.Idempotent {
				cnt++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cnt) / float64(total)
}

// DefaultDirectionPrograms returns the canonical inputs for the
// dependence-direction ablation: the Figure 4 BUTS loop plus the Figure
// 6/8 loops.
func DefaultDirectionPrograms() []NamedProgram {
	out := []NamedProgram{
		{Name: "APPLU BUTS_DO1", Make: func() *ir.Program { return workloads.ButsDO1(8) }},
	}
	for _, s := range workloads.NamedLoops() {
		if s.Fig == 6 || s.Fig == 8 {
			spec := s
			out = append(out, NamedProgram{Name: spec.String(), Make: func() *ir.Program { return spec.Program() }})
		}
	}
	return out
}

// ProcessorPoint is one processor-count scaling sample.
type ProcessorPoint struct {
	Processors  int     `json:"processors"`
	HoseSpeedup float64 `json:"hose_speedup"`
	CaseSpeedup float64 `json:"case_speedup"`
}

// AblationProcessors sweeps the processor count.
func AblationProcessors(spec workloads.LoopSpec, procs []int, cfg engine.Config, workers int) ([]ProcessorPoint, error) {
	type res struct {
		pt  ProcessorPoint
		err error
	}
	rows := parallel.Map(len(procs), workers, func(i int) res {
		c := cfg
		c.Processors = procs[i]
		lr, err := RunLoop(spec, c)
		if err != nil {
			return res{err: err}
		}
		return res{pt: ProcessorPoint{
			Processors:  procs[i],
			HoseSpeedup: lr.HoseSpeedup,
			CaseSpeedup: lr.CaseSpeedup,
		}}
	})
	out := make([]ProcessorPoint, 0, len(rows))
	for _, r := range rows {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.pt)
	}
	return out, nil
}
