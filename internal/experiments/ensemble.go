package experiments

import (
	"fmt"

	"refidem/internal/deps"
	"refidem/internal/engine"
	"refidem/internal/gen"
	"refidem/internal/idem"
	"refidem/internal/ir"
	"refidem/internal/report"
)

// EnsembleThreshold is the speculation threshold the ensemble ablation
// measures at: a reference is "promotable" when the confidence-weighted
// labeling assigns it P(idempotent) >= this value, and the simulated
// CASE runs use it as engine.Config.SpecThreshold.
const EnsembleThreshold = 0.9

// EnsembleRow is one (program, member set) sample of the ensemble
// ablation: which members were enabled, the fraction of static
// references at or above the speculation threshold, and the simulated
// CASE speedup with the threshold policy active.
type EnsembleRow struct {
	Program   string  `json:"program"`
	Members   string  `json:"members"`
	PromFrac  float64 `json:"promotable_frac"`
	Speedup   float64 `json:"case_speedup"`
	Overflows int64   `json:"case_overflows"`
}

// ensembleConfigs is the member ladder the ablation climbs. The range
// member cannot move labels or probabilities (it only short-circuits
// pairs the exact solver would refute anyway), so its row doubles as a
// built-in soundness display: it must equal the exact row.
var ensembleConfigs = []struct {
	label   string
	mwf     bool
	profile bool
	rng     bool
}{
	{"exact", false, false, false},
	{"+range", false, false, true},
	{"+mwf", true, false, true},
	{"+profile", true, true, true},
}

// DefaultEnsemblePrograms returns the pinned generator scenarios the
// ensemble ablation measures. The seeds are chosen so the replay-profile
// member has genuinely disjoint observed address ranges to speculate on:
// each program carries indirect or coupled subscripts the exact solver
// must keep, which the profiled input never realizes.
func DefaultEnsemblePrograms() []NamedProgram {
	specs := []struct {
		profile string
		seed    int64
	}{
		{"calls-mixed", 4},
		{"coupled", 26},
		{"default", 13},
	}
	progs := make([]NamedProgram, 0, len(specs))
	for _, s := range specs {
		s := s
		progs = append(progs, NamedProgram{
			Name: fmt.Sprintf("%s/seed%d", s.profile, s.seed),
			Make: func() *ir.Program {
				prof, err := gen.ProfileByName(s.profile)
				if err != nil {
					panic(err)
				}
				return gen.FromProfile(prof, s.seed).Program
			},
		})
	}
	return progs
}

// AblationEnsemble measures what each dependence-ensemble member is
// worth: for every program and member ladder rung it reports the
// fraction of static references promotable at EnsembleThreshold, plus
// the simulated CASE speedup and overflow count with
// Config.SpecThreshold set to it. The profile member trains on the same
// seeded input the simulation runs, collected once per program via
// engine.CollectProfile. Callers pass the machine; the canonical figure
// uses engine.PressureConfig(), because promotion pays off exactly where
// speculative storage is scarce — on the default machine the promoted
// references were never the bottleneck.
func AblationEnsemble(progs []NamedProgram, cfg engine.Config) ([]EnsembleRow, error) {
	var out []EnsembleRow
	for _, np := range progs {
		p := np.Make()
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("ensemble ablation %s: %w", np.Name, err)
		}
		seq, err := engine.RunSequential(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("ensemble ablation %s: %w", np.Name, err)
		}
		replay, err := engine.CollectProfile(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("ensemble ablation %s: %w", np.Name, err)
		}
		tcfg := cfg
		tcfg.SpecThreshold = EnsembleThreshold
		for _, mc := range ensembleConfigs {
			ens := deps.Ensemble{Range: mc.rng, MustWriteFirst: mc.mwf}
			if mc.profile {
				ens.Profile = replay
			}
			labs := idem.LabelProgramEnsemble(p, ens)
			res, err := engine.RunSpeculative(p, labs, tcfg, engine.CASE)
			if err != nil {
				return nil, fmt.Errorf("ensemble ablation %s (%s): %w", np.Name, mc.label, err)
			}
			out = append(out, EnsembleRow{
				Program:   np.Name,
				Members:   mc.label,
				PromFrac:  promotableFraction(p, labs, EnsembleThreshold),
				Speedup:   float64(seq.Cycles) / float64(res.Cycles),
				Overflows: res.Stats.Overflows,
			})
		}
	}
	return out, nil
}

// promotableFraction is the fraction of static references across all
// regions with P(idempotent) >= th under the given labeling.
func promotableFraction(p *ir.Program, labs map[*ir.Region]*idem.Result, th float64) float64 {
	total, cnt := 0, 0
	for _, r := range p.Regions {
		total += len(r.Refs)
		res := labs[r]
		for _, ref := range r.Refs {
			if res.Prob(ref) >= th {
				cnt++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cnt) / float64(total)
}

// RenderEnsemble draws the ensemble-ablation table.
func RenderEnsemble(rows []EnsembleRow) string {
	t := report.NewTable(
		fmt.Sprintf("Ablation: dependence-ensemble members on the pressure machine (promotable at P >= %.1f, CASE at that threshold)",
			EnsembleThreshold),
		"program", "members", "promotable", "CASE speedup", "overflows")
	for _, r := range rows {
		t.AddRowf(r.Program, r.Members, r.PromFrac, r.Speedup, r.Overflows)
	}
	return t.String()
}
